// Quickstart: fabricate a chip, enroll it, and authenticate it with the
// paper's model-assisted zero-Hamming-distance protocol.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xorpuf"
)

func main() {
	// Fabricate a chip with 4 parallel arbiter PUFs (a 4-input XOR PUF)
	// using the parameters calibrated against the paper's 32 nm silicon.
	params := xorpuf.DefaultParams()
	chip := xorpuf.NewChip(42, params, 4)
	fmt.Printf("fabricated chip: %d PUFs × %d stages, counter depth %d\n",
		chip.NumPUFs(), chip.Stages(), params.CounterDepth)

	// Enrollment (paper Fig 6): while the one-time fuses are intact,
	// measure soft responses of each PUF, fit the linear delay models,
	// and tighten the stability thresholds with the β search.
	cfg := xorpuf.DefaultEnrollConfig()
	cfg.BlowFuses = true // revoke individual-PUF access afterwards
	enr, err := xorpuf.Enroll(chip, 7, cfg)
	if err != nil {
		log.Fatalf("enrollment failed: %v", err)
	}
	fmt.Printf("enrolled: %d PUF models, β0=%.2f β1=%.2f, fuses blown: %v\n",
		enr.Model.Width(), enr.Model.Beta0, enr.Model.Beta1, chip.FusesBlown())

	// The server database stores only the models — not a CRP table.
	blob, err := xorpuf.EncodeChipModel(enr.Model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server database entry: %d bytes of model parameters\n", len(blob))

	// Authentication (paper Fig 7): the server picks fresh random
	// challenges predicted stable on every member PUF, the chip answers
	// with one-shot XOR responses, and approval requires a 100 % match.
	res, err := xorpuf.Authenticate(enr.Model, chip, 99, 100, xorpuf.Nominal)
	if err != nil {
		log.Fatalf("authentication error: %v", err)
	}
	fmt.Printf("genuine chip:   approved=%v (%d/%d mismatches, %d challenges examined)\n",
		res.Approved, res.Mismatches, res.Challenges, res.Examined)

	// An impostor chip from the same process cannot answer correctly.
	impostor := xorpuf.NewChip(1337, params, 4)
	res, err = xorpuf.Authenticate(enr.Model, impostor, 99, 100, xorpuf.Nominal)
	if err != nil {
		log.Fatalf("authentication error: %v", err)
	}
	fmt.Printf("impostor chip:  approved=%v (%d/%d mismatches)\n",
		res.Approved, res.Mismatches, res.Challenges)
}
