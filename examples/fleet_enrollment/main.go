// Fleet enrollment at manufacturing scale: a worker pool enrolls hundreds of
// chips in parallel into a persistent sharded registry, a crash (process
// death without shutdown) loses nothing, and — the security-critical part —
// the paper's never-reuse challenge rule (Fig 7 "Record challenge") holds
// ACROSS the crash: the recovered registry regenerates the exact same
// candidate challenge streams, yet reissues none of the pre-crash
// challenges, because the issued-challenge history is journaled in the WAL.
//
//	go run ./examples/fleet_enrollment
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"xorpuf"
	"xorpuf/internal/registry"
	"xorpuf/internal/registry/fleet"
)

func main() {
	dir, err := os.MkdirTemp("", "xorpuf-fleet-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Manufacturing run: enroll a fleet of 4-XOR chips in parallel.  Every
	// chip's silicon and enrollment randomness derive from per-chip
	// sub-streams of one seed, so the fleet is reproducible regardless of
	// worker count.
	reg, err := registry.Open(dir, registry.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	enrollCfg := xorpuf.DefaultEnrollConfig()
	enrollCfg.TrainingSize = 500
	enrollCfg.ValidationSize = 2000
	rep, err := fleet.Run(fleet.Config{
		Chips:    200,
		XORWidth: 4,
		Seed:     1,
		Enroll:   enrollCfg,
		Budget:   10000, // lifetime CRP exposure cap per chip
	}, reg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled %d chips in %v (%.0f chips/s)\n",
		rep.Enrolled, rep.Duration.Round(time.Millisecond), rep.PerSecond)

	// The verifier starts issuing challenges: 40 for chip-57.  Each one is
	// journaled as burned before it ever leaves the server.
	before := make(map[uint64]bool)
	cs, _, err := reg.Lookup("chip-57").Issue(40, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cs {
		before[c.Word()] = true
	}
	st := reg.Lookup("chip-57").Status()
	fmt.Printf("chip-57: issued %d challenges, %d of budget remaining\n", st.Issued, st.Remaining)

	// Simulate a crash: the process dies without Close.  No snapshot was
	// compacted; everything lives in the write-ahead log.
	fmt.Println("\n-- crash (no shutdown) --")

	start := time.Now()
	reg2, err := registry.Open(dir, registry.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer reg2.Close()
	fmt.Printf("recovered %d chips from the WAL in %v\n", reg2.Len(), time.Since(start).Round(time.Microsecond))
	st = reg2.Lookup("chip-57").Status()
	fmt.Printf("chip-57: %d issued challenges remembered, %d of budget remaining\n", st.Issued, st.Remaining)

	// Same registry seed ⇒ chip-57's selector regenerates the same candidate
	// stream that produced the pre-crash session.  The recovered history
	// must filter every one of them out.
	cs, _, err = reg2.Lookup("chip-57").Issue(40, 0)
	if err != nil {
		log.Fatal(err)
	}
	reused := 0
	for _, c := range cs {
		if before[c.Word()] {
			reused++
		}
	}
	fmt.Printf("post-recovery session: %d fresh challenges, %d reused (must be 0)\n", len(cs), reused)
	if reused != 0 {
		log.Fatal("never-reuse guarantee violated across restart")
	}
}
