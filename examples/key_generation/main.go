// Key generation: derive a device-unique 256-bit key from a 4-XOR PUF via
// a BCH code-offset fuzzy extractor, and see why the paper's stable
// challenge selection matters — selected challenges reproduce the key at
// every voltage/temperature corner almost without error correction, while
// random challenges drown the code.
//
//	go run ./examples/key_generation
package main

import (
	"fmt"
	"log"

	"xorpuf"
	"xorpuf/internal/core"
	"xorpuf/internal/keygen"
	"xorpuf/internal/rng"
)

func main() {
	params := xorpuf.DefaultParams()
	chip := xorpuf.NewChip(2718, params, 4)

	// Enroll the chip models (V/T-hardened) to drive challenge selection.
	ecfg := xorpuf.DefaultEnrollConfig()
	ecfg.Conditions = xorpuf.Corners()
	enr, err := xorpuf.Enroll(chip, 1, ecfg)
	if err != nil {
		log.Fatal(err)
	}
	selector := core.NewSelector(enr.Model, rng.New(2))

	// BCH(127, 64, 10): 127 response bits → 256-bit key, up to 10
	// correctable flips.
	selected := keygen.Config{M: 7, T: 10, Selector: selector}
	random := keygen.Config{M: 7, T: 10}

	enrSel, keySel, err := keygen.Enroll(chip, chip.Stages(), rng.New(3), xorpuf.Nominal, selected)
	if err != nil {
		log.Fatal(err)
	}
	enrRnd, keyRnd, err := keygen.Enroll(chip, chip.Stages(), rng.New(4), xorpuf.Nominal, random)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled two keys from the same chip (BCH(127,64,10), one-shot reads)\n")
	fmt.Printf("  key (selected challenges): %x…\n", keySel[:8])
	fmt.Printf("  key (random challenges):   %x…\n\n", keyRnd[:8])

	fmt.Printf("%-14s  %-28s  %-28s\n", "condition", "selected: corrections", "random: corrections")
	for _, cond := range xorpuf.Corners() {
		kS, fixS, errS := keygen.Reproduce(chip, enrSel, cond, selected)
		kR, fixR, errR := keygen.Reproduce(chip, enrRnd, cond, random)
		selStatus := fmt.Sprintf("%d fixed, key ok=%v", fixS, errS == nil && kS == keySel)
		rndStatus := fmt.Sprintf("%d fixed, key ok=%v", fixR, errR == nil && kR == keyRnd)
		if errR != nil {
			rndStatus = "FAILED (too many flips)"
		}
		fmt.Printf("%-14s  %-28s  %-28s\n", cond, selStatus, rndStatus)
	}
	fmt.Println("\nreading: stable-challenge selection turns key storage into a")
	fmt.Println("zero-maintenance operation; without it the error-correction budget")
	fmt.Println("(and helper-data leakage) balloons or reproduction fails outright.")
}
