// Modeling attack walkthrough (paper §2.3): train the 35-25-25 MLP and the
// logistic-regression baseline on stable XOR-PUF CRPs and watch security
// grow with the XOR width.
//
//	go run ./examples/modeling_attack
package main

import (
	"fmt"

	"xorpuf"
)

func main() {
	params := xorpuf.DefaultParams()
	const trainN, testN = 6000, 1500

	fmt.Println("attacking XOR arbiter PUFs with 6,000 stable CRPs (paper §2.3 methodology)")
	fmt.Printf("%-6s  %-18s  %-18s  %s\n", "width", "logistic test acc", "MLP test acc", "notes")
	for _, width := range []int{1, 2, 3, 6} {
		chip := xorpuf.NewChip(uint64(100+width), params, width)
		x := xorpuf.NewXORPUF(chip, width)
		// The attacker harvests only 100 %-stable CRPs — the paper
		// found unstable CRPs mislead model training.
		crps, examined := x.StableCRPs(xorpuf.NewSource(uint64(500+width)),
			trainN+testN, xorpuf.Nominal, 0.999)
		train := xorpuf.DatasetFromCRPs(crps[:trainN])
		test := xorpuf.DatasetFromCRPs(crps[trainN:])

		lr := xorpuf.RunLogisticAttack(train, test, 1e-4)
		mlp := xorpuf.RunMLPAttack(uint64(900+width), train, test, xorpuf.DefaultMLPAttackConfig())

		fmt.Printf("%-6d  %16.1f%%  %16.1f%%  %.0f µs/CRP, %d stable of %d examined\n",
			width, 100*lr.TestAccuracy, 100*mlp.TestAccuracy,
			float64(mlp.PerCRP.Microseconds()), trainN+testN, examined)
	}
	fmt.Println("\nreading: logistic regression breaks a single PUF outright; the MLP")
	fmt.Println("still breaks narrow XORs, but accuracy collapses toward chance as the")
	fmt.Println("width grows — the paper's case for n ≥ 10.")
}
