// Lifetime reliability walkthrough: a chip ages out of its enrolled model,
// the server's drift detectors catch it and quarantine it (a structured
// denial that burns no challenges — the zero-HD acceptance criterion is
// never loosened), and the automatic re-enrollment pipeline re-measures the
// aged silicon, refits the model, and swaps the registry entry so the same
// physical chip authenticates at zero HD again.  The old challenge history
// stays burned across the swap.
//
//	go run ./examples/lifetime_health
package main

import (
	"fmt"
	"log"

	"xorpuf/internal/core"
	"xorpuf/internal/health"
	"xorpuf/internal/registry"
	"xorpuf/internal/registry/fleet"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

const (
	fleetSeed = 7
	xorWidth  = 2
	perAuth   = 25
)

func enrollConfig() core.EnrollConfig {
	cfg := core.DefaultEnrollConfig()
	cfg.TrainingSize = 400
	cfg.ValidationSize = 1500
	return cfg
}

func authenticate(e *registry.Entry, dev core.Device) (approved bool, mismatches int) {
	cs, predicted, err := e.Issue(perAuth, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range cs {
		if dev.ReadXOR(c, silicon.Nominal) != predicted[i] {
			mismatches++
		}
	}
	approved = mismatches == 0 // the paper's zero-HD criterion — never loosened
	e.RecordAuth(health.Outcome{Approved: approved, Mismatches: mismatches, Challenges: len(cs)})
	return approved, mismatches
}

func main() {
	reg, err := registry.Open("", registry.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()

	// Factory: fabricate and enroll one chip.
	if _, err := fleet.Run(fleet.Config{
		Chips: 1, XORWidth: xorWidth, Seed: fleetSeed, Enroll: enrollConfig(),
	}, reg); err != nil {
		log.Fatal(err)
	}
	e := reg.Lookup("chip-0")
	device := fleet.Chip(fleetSeed, 0, silicon.DefaultParams(), xorWidth)

	ok, mm := authenticate(e, device)
	fmt.Printf("factory-fresh:   approved=%v (%d/%d mismatches), health=%v\n",
		ok, mm, perAuth, e.HealthState())

	// Years in the field: a deterministic stress profile drives the chip
	// through voltage droops, temperature ramps, and heavy cumulative aging.
	profile, err := silicon.NewStressProfile(rng.New(99), silicon.StressConfig{
		Epochs: 2, DriftSigma: 1.8, DroopsPerEpoch: 1, RampsPerEpoch: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	const agingSeed = 4242
	profile.Replay(device, agingSeed, len(profile.Steps))
	fmt.Printf("aged %d epochs:  cumulative drift %.2f·σ_process\n",
		profile.Epochs(), profile.CumulativeDrift(len(profile.Steps)-1))

	// The detectors watch every session: sustained mismatches walk the chip
	// through degraded into (sticky) quarantine.
	for e.HealthState() != health.Quarantined {
		ok, mm = authenticate(e, device)
		fmt.Printf("field session:   approved=%v (%d/%d mismatches), health=%v\n",
			ok, mm, perAuth, e.HealthState())
	}
	burned := e.Status().Issued
	fmt.Printf("quarantined after %d sessions; %d challenges burned so far\n",
		e.Status().HealthStats.Sessions, burned)

	// Repair: the re-enrollment pipeline re-measures the aged silicon's soft
	// responses, refits the model, re-pools β0/β1, and atomically swaps the
	// registry entry.  The provider re-derives the fielded device by
	// replaying its stress history onto refabricated silicon.
	repair, err := fleet.NewReEnroller(reg, fleet.ReEnrollConfig{
		Seed: 2001, Enroll: enrollConfig(),
		Chip: func(id string) (*silicon.Chip, error) {
			c := fleet.Chip(fleetSeed, 0, silicon.DefaultParams(), xorWidth)
			profile.Replay(c, agingSeed, len(profile.Steps))
			return c, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := repair.ReEnroll("chip-0"); err != nil {
		log.Fatal(err)
	}
	st := e.Status()
	fmt.Printf("re-enrolled:     health=%v, issued history preserved (%d ≥ %d burned)\n",
		st.Health, st.Issued, burned)

	ok, mm = authenticate(e, device)
	fmt.Printf("same aged chip:  approved=%v (%d/%d mismatches) — zero HD again\n",
		ok, mm, perAuth)
}
