// Enrollment lifecycle (paper Figs 5–6): one-time fuses expose the
// individual PUFs to the enrolling tester, then permanently lock the chip
// down to its XOR output; the server keeps only the model database.
//
//	go run ./examples/enrollment_lifecycle
package main

import (
	"errors"
	"fmt"
	"log"

	"xorpuf"
)

func main() {
	params := xorpuf.DefaultParams()
	chip := xorpuf.NewChip(7777, params, 4)
	probe := xorpuf.RandomChallenges(1, 1, chip.Stages())[0]

	// Phase 1 — enrollment access: individual soft responses readable.
	soft, err := chip.SoftResponse(2, probe, xorpuf.Nominal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrollment phase: PUF 2 soft response for probe challenge = %.5f\n", soft)

	// Enroll and blow the fuses in one step.
	cfg := xorpuf.DefaultEnrollConfig()
	cfg.BlowFuses = true
	enr, err := xorpuf.Enroll(chip, 5, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled %d PUF models; fuses blown\n", enr.Model.Width())

	// Phase 2 — the fuses are gone: individual access must fail, XOR
	// access must survive.
	if _, err := chip.SoftResponse(2, probe, xorpuf.Nominal); errors.Is(err, xorpuf.ErrFusesBlown) {
		fmt.Println("individual access now returns ErrFusesBlown ✓")
	} else {
		log.Fatalf("expected ErrFusesBlown, got %v", err)
	}
	fmt.Printf("XOR output still readable: bit=%d ✓\n", chip.ReadXOR(probe, xorpuf.Nominal))

	// Re-enrollment must be impossible.
	if _, err := xorpuf.Enroll(chip, 6, cfg); err != nil {
		fmt.Printf("re-enrollment rejected: %v ✓\n", err)
	} else {
		log.Fatal("re-enrollment unexpectedly succeeded")
	}

	// Phase 3 — the server database round-trips through serialization;
	// a restored model authenticates the chip years later.
	blob, err := xorpuf.EncodeChipModel(enr.Model)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := xorpuf.DecodeChipModel(blob)
	if err != nil {
		log.Fatal(err)
	}
	res, err := xorpuf.Authenticate(restored, chip, 9, 100, xorpuf.Nominal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("authentication with restored %d-byte model database: approved=%v (%d mismatches)\n",
		len(blob), res.Approved, res.Mismatches)
}
