// Voltage/temperature robustness (paper §5.2): challenges selected with the
// V/T-hardened thresholds stay stable at every corner from 0.8 V/0 °C to
// 1.0 V/60 °C, while unselected challenges flip.
//
//	go run ./examples/voltage_temp
package main

import (
	"fmt"
	"log"

	"xorpuf"
)

func main() {
	params := xorpuf.DefaultParams()
	chip := xorpuf.NewChip(2024, params, 6)

	// Enroll at the nominal condition but harden the thresholds across
	// all nine V/T corners, exactly as Section 5.2 prescribes.
	cfg := xorpuf.DefaultEnrollConfig()
	cfg.Conditions = xorpuf.Corners()
	enr, err := xorpuf.Enroll(chip, 3, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled 6-XOR chip with V/T-hardened thresholds: β0=%.2f β1=%.2f\n\n",
		enr.Model.Beta0, enr.Model.Beta1)

	// Select 200 challenges with the hardened model and also draw 200
	// purely random ones as the control group.
	selected, predicted, examined, err := enr.Model.SelectChallenges(xorpuf.NewSource(11), 200, 0)
	if err != nil {
		log.Fatal(err)
	}
	random := xorpuf.RandomChallenges(12, 200, chip.Stages())
	fmt.Printf("selected 200 challenges (examined %d; yield %.2f%%)\n\n",
		examined, 100*200/float64(examined))

	x := xorpuf.NewXORPUF(chip, 6)
	refRandom := make([]uint8, len(random))
	for i, c := range random {
		refRandom[i] = x.NoiselessResponse(c, xorpuf.Nominal)
	}

	fmt.Printf("%-14s  %-24s  %-24s\n", "condition", "selected: flipped bits", "random: flipped bits")
	src := xorpuf.NewSource(13)
	for _, cond := range xorpuf.Corners() {
		selFlips, rndFlips := 0, 0
		for i, c := range selected {
			if x.Eval(src, c, cond) != predicted[i] {
				selFlips++
			}
		}
		for i, c := range random {
			if x.Eval(src, c, cond) != refRandom[i] {
				rndFlips++
			}
		}
		fmt.Printf("%-14s  %5d / 200               %5d / 200\n", cond, selFlips, rndFlips)
	}
	fmt.Println("\nreading: model-selected CRPs survive every corner with (near-)zero flips,")
	fmt.Println("so the server can require a perfect match; random CRPs flip constantly.")
}
