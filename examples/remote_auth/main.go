// Remote authentication: the paper's server/chip split over a real TCP
// connection — the verification server holds only the model database; the
// device side holds the chip and answers freshly selected challenges with
// one-shot XOR reads.
//
// This example runs the hardened deployment: the link is deliberately
// unreliable (seeded faultnet injection of resets, stalls, and byte
// corruption), the device rides out the faults with a retrying client, and
// the server enforces the abuse controls — per-chip lockout after
// consecutive denials and a lifetime challenge budget.
//
//	go run ./examples/remote_auth
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"xorpuf"
	"xorpuf/internal/faultnet"
	"xorpuf/internal/netauth"
)

func main() {
	// Enrollment facility: fabricate and enroll the chip, then hand the
	// model to the server and the chip to the device.
	params := xorpuf.DefaultParams()
	chip := xorpuf.NewChip(31337, params, 6)
	cfg := xorpuf.DefaultEnrollConfig()
	cfg.Conditions = xorpuf.Corners()
	cfg.BlowFuses = true
	enr, err := xorpuf.Enroll(chip, 8, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled 6-XOR chip (β0=%.2f β1=%.2f), fuses blown\n",
		enr.Model.Beta0, enr.Model.Beta1)

	// Verification server with the resilience controls switched on: three
	// consecutive denials quarantine a chip, and each chip may burn at
	// most 5,000 challenges over its lifetime.
	srv := netauth.NewServer(100, 99)
	srv.SetTimeout(300 * time.Millisecond) // per message, not per connection
	srv.SetLockout(3)
	srv.SetChallengeBudget(5000)
	if err := srv.Register("device-0042", enr.Model); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// The server reads from a hostile network: 6 % of I/O ops reset the
	// connection, 6 % stall past the message deadline, and 6 % of writes
	// corrupt a byte.  Seeded, so every run injects the same faults.
	fln := faultnet.WrapListener(ln, faultnet.Config{
		Seed:        2024,
		ResetProb:   0.06,
		StallProb:   0.06,
		Stall:       500 * time.Millisecond,
		CorruptProb: 0.06,
	})
	go srv.Serve(fln) //nolint:errcheck
	defer srv.Close()
	fmt.Printf("verification server listening on %s (faulty link)\n\n", ln.Addr())

	// Genuine device authenticates from several operating corners,
	// retrying transient faults with jittered exponential backoff.
	client := &netauth.Client{
		Addr:    ln.Addr().String(),
		ChipID:  "device-0042",
		Device:  chip,
		Timeout: 300 * time.Millisecond,
		Policy: netauth.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    200 * time.Millisecond,
			Multiplier:  2,
			Jitter:      0.5,
		},
	}
	for _, cond := range []xorpuf.Condition{
		xorpuf.Nominal,
		{VDD: 0.8, TempC: 0},
		{VDD: 1.0, TempC: 60},
	} {
		client.Cond = cond
		res, err := client.Authenticate(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("genuine device at %-12s → approved=%v (%d/%d mismatches, %d attempt(s))\n",
			cond, res.Approved, res.Mismatches, res.Challenges, res.Attempts)
	}

	// A counterfeit device with its own silicon is denied, and after
	// three consecutive denials the server quarantines the chip ID: the
	// fourth attempt fails terminally without burning any challenges.
	counterfeit := xorpuf.NewChip(666, params, 6)
	fmt.Println()
	for i := 1; ; i++ {
		imp := &netauth.Client{
			Addr: ln.Addr().String(), ChipID: "device-0042",
			Device: counterfeit, Cond: xorpuf.Nominal,
			Timeout: 300 * time.Millisecond, Policy: client.Policy,
		}
		res, err := imp.Authenticate(context.Background())
		var pe *netauth.ProtocolError
		if errors.As(err, &pe) && pe.Code == netauth.CodeLockedOut {
			fmt.Printf("counterfeit attempt %d     → %v\n", i, err)
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("counterfeit attempt %d     → approved=%v (%d/%d mismatches)\n",
			i, res.Approved, res.Mismatches, res.Challenges)
	}
	st := srv.ChipStatus("device-0042")
	fmt.Printf("chip status: locked=%v, consecutive denials=%d, "+
		"challenges burned=%d (budget remaining %d)\n",
		st.Locked, st.ConsecutiveDenials, st.Issued, st.Remaining)

	// Note: a software clone built from the stolen *model database* would
	// succeed — the database, unlike the PUF, must be kept secret
	// (paper §1: the server stores delay parameters).
	approved, denied := srv.Stats()
	fmt.Printf("\nserver decision log: %d approved, %d denied\n", approved, denied)
}
