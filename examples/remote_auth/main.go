// Remote authentication: the paper's server/chip split over a real TCP
// connection — the verification server holds only the model database; the
// device side holds the chip and answers freshly selected challenges with
// one-shot XOR reads.
//
//	go run ./examples/remote_auth
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"xorpuf"
	"xorpuf/internal/netauth"
)

func main() {
	// Enrollment facility: fabricate and enroll the chip, then hand the
	// model to the server and the chip to the device.
	params := xorpuf.DefaultParams()
	chip := xorpuf.NewChip(31337, params, 6)
	cfg := xorpuf.DefaultEnrollConfig()
	cfg.Conditions = xorpuf.Corners()
	cfg.BlowFuses = true
	enr, err := xorpuf.Enroll(chip, 8, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled 6-XOR chip (β0=%.2f β1=%.2f), fuses blown\n",
		enr.Model.Beta0, enr.Model.Beta1)

	// Verification server.
	srv := netauth.NewServer(100, 99)
	if err := srv.Register("device-0042", enr.Model); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	fmt.Printf("verification server listening on %s\n\n", ln.Addr())

	// Genuine device authenticates from several operating corners.
	for _, cond := range []xorpuf.Condition{
		xorpuf.Nominal,
		{VDD: 0.8, TempC: 0},
		{VDD: 1.0, TempC: 60},
	} {
		res, err := netauth.Authenticate(ln.Addr().String(), "device-0042",
			chip, cond, 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("genuine device at %-12s → approved=%v (%d/%d mismatches)\n",
			cond, res.Approved, res.Mismatches, res.Challenges)
	}

	// A counterfeit device with its own silicon fails.
	counterfeit := xorpuf.NewChip(666, params, 6)
	res, err := netauth.Authenticate(ln.Addr().String(), "device-0042",
		counterfeit, xorpuf.Nominal, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counterfeit device        → approved=%v (%d/%d mismatches)\n",
		res.Approved, res.Mismatches, res.Challenges)

	// Note: a software clone built from the stolen *model database* would
	// succeed — the database, unlike the PUF, must be kept secret
	// (paper §1: the server stores delay parameters).
	approved, denied := srv.Stats()
	fmt.Printf("\nserver decision log: %d approved, %d denied\n", approved, denied)
}
