// Package xorpuf is a library-scale reproduction of "Secure and Reliable
// XOR Arbiter PUF Design: An Experimental Study based on 1 Trillion
// Challenge Response Pair Measurements" (Zhou, Parhi, Kim — DAC 2017).
//
// The library provides, in dependency order:
//
//   - a calibrated silicon model of 32 nm MUX arbiter PUF test chips —
//     per-stage process variation, per-evaluation arbiter noise,
//     voltage/temperature sensitivity, on-chip soft-response counters and
//     one-time enrollment fuses (internal/silicon);
//   - the n-input XOR arbiter PUF composition with exact response and
//     stability arithmetic (internal/xorpuf);
//   - the paper's contribution: linear-regression delay extraction from
//     soft responses, three-category stability thresholding, β threshold
//     adjustment, model-based stable-challenge selection and
//     zero-Hamming-distance authentication (internal/core);
//   - from-scratch modeling attacks: an MLP (35-25-25) trained with L-BFGS
//     and a logistic-regression baseline (internal/mlattack);
//   - authentication-protocol comparators: measurement-based selection,
//     classic Hamming-threshold, noise bifurcation, lockdown
//     (internal/authproto);
//   - per-figure experiment drivers reproducing the paper's evaluation
//     (internal/experiments) and the puflab CLI (cmd/puflab).
//
// This root package is the public facade: it re-exports the library's main
// types as aliases and wraps the constructors, so downstream code never
// imports internal/ paths.  See the examples/ directory for runnable
// walkthroughs and EXPERIMENTS.md for the paper-versus-measured record.
package xorpuf
