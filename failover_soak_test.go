package xorpuf_test

// Failover soak: the acceptance test for the replication layer.  A fleet is
// enrolled into a primary registry and served over real TCP behind the
// session gateway, with a follower tailing the primary's WAL under strict
// quorum (no challenge leaves the server unacked).  Mid-traffic the primary
// is killed -9 (server torn down, registry abandoned without Close), the
// follower is promoted, and the gateway re-routes the same device addresses
// onto the promoted copy.  The test asserts the replication contract:
//
//   - no challenge word is ever issued twice to any chip ID, across the
//     whole history spanning both server incarnations — the Fig 7
//     never-reuse invariant survives the failover;
//   - genuine devices keep authenticating at zero HD after promotion, via
//     the same gateway address, with no device-side reconfiguration;
//   - impostor traffic mixed into the stream stays denied on both sides of
//     the failover and burns from the same per-chip pools;
//   - the whole stack (gateway, both servers, primary, follower) unwinds
//     without leaking goroutines.

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/netauth"
	"xorpuf/internal/registry"
	"xorpuf/internal/registry/fleet"
	"xorpuf/internal/registry/repl"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

const (
	failChips      = 24
	failXOR        = 2
	failFleetSeed  = 616
	failRegSeed    = 23
	failPerSession = 10
	failWorkers    = 4
	// Chips 22 and 23 also see counterfeit silicon; their post-failover
	// health is not asserted (impostor mismatches feed the drift detectors).
	failImpostorFrom = 22
)

func failChipID(i int) string { return fmt.Sprintf("chip-%d", i) }

// recordingDevice wraps fielded silicon and logs every challenge word the
// verifier sends for one chip ID — the raw material of the never-reuse
// audit.  Both the genuine and the counterfeit device for a chip ID share
// the same map: they draw from the same server-side pool.
type recordingDevice struct {
	inner core.Device
	mu    *sync.Mutex
	seen  map[uint64]int
}

func (d recordingDevice) ReadXOR(c challenge.Challenge, cond silicon.Condition) uint8 {
	d.mu.Lock()
	d.seen[c.Word()]++
	d.mu.Unlock()
	return d.inner.ReadXOR(c, cond)
}

func TestFailoverSoakNeverReusesChallenges(t *testing.T) {
	if testing.Short() {
		t.Skip("failover soak skipped in -short mode")
	}
	baseGoroutines := runtime.NumGoroutine()

	// --- Two registries with the same Seed: primary and follower must draw
	// identical selector candidate streams or the replicated Used-sets would
	// filter different words.
	reg1, err := registry.Open(t.TempDir(), registry.Options{Seed: failRegSeed})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(fleet.Config{
		Chips: failChips, Workers: 4, XORWidth: failXOR,
		Seed: failFleetSeed, Enroll: soakEnroll(),
	}, reg1)
	if err != nil || rep.Enrolled != failChips {
		t.Fatalf("fleet enrollment: %+v, %v", rep, err)
	}
	reg2, err := registry.Open(t.TempDir(), registry.Options{Seed: failRegSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()

	// --- Replication under strict quorum 1: an issuance only completes once
	// the follower has journaled it, so primary loss cannot lose burns.
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	prim := repl.NewPrimary(reg1, repl.PrimaryConfig{Quorum: 1, Strict: true})
	go prim.Serve(replLn) //nolint:errcheck
	follCtx, follCancel := context.WithCancel(context.Background())
	defer follCancel()
	foll := repl.NewFollower(reg2, replLn.Addr().String(), repl.FollowerConfig{
		ReconnectMin: 10 * time.Millisecond, ReconnectMax: 100 * time.Millisecond,
	})
	go foll.Run(follCtx)
	deadline := time.Now().Add(10 * time.Second)
	for foll.Status().State != repl.StateStreaming {
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached streaming: %+v", foll.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// --- Auth plane: the primary's server is live; the failover replica's
	// listener is pre-bound so the gateway's shard list is fixed up front,
	// but no server accepts on it until promotion.
	srv1 := netauth.NewServerWithRegistry(failPerSession, failRegSeed, reg1)
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv1.Serve(ln1) //nolint:errcheck
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	gw, err := netauth.NewGateway([]netauth.GatewayShard{
		{Name: "shard-0", Addrs: []string{ln1.Addr().String(), ln2.Addr().String()}},
	}, netauth.GatewayConfig{DialTimeout: time.Second, Cooldown: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(gwLn) //nolint:errcheck
	defer gw.Close()
	gwAddr := gwLn.Addr().String()

	// --- Devices: genuine silicon for every chip, counterfeits for the
	// impostor subset, every read recorded for the audit.
	var seenMu sync.Mutex
	seen := make([]map[uint64]int, failChips)
	genuine := make([]core.Device, failChips)
	counterfeit := make([]core.Device, failChips)
	for i := 0; i < failChips; i++ {
		seen[i] = make(map[uint64]int)
		genuine[i] = recordingDevice{
			inner: fleet.Chip(failFleetSeed, i, silicon.DefaultParams(), failXOR),
			mu:    &seenMu, seen: seen[i],
		}
		counterfeit[i] = recordingDevice{
			inner: silicon.NewChip(rng.New(^uint64(failFleetSeed)).Fork("counterfeit", i),
				silicon.DefaultParams(), failXOR),
			mu: &seenMu, seen: seen[i],
		}
	}

	// --- Traffic: workers hammer the gateway with mixed sessions.  Errors
	// are tolerated (the kill window refuses, resets, and times out) — the
	// audit is about what was issued, not about availability during the cut.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var statMu sync.Mutex
	approvals, denials, failures := 0, 0, 0
	for w := 0; w < failWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (w + j*failWorkers) % failChips
				dev := genuine[i]
				if i >= failImpostorFrom && j%2 == 1 {
					dev = counterfeit[i]
				}
				res, err := netauth.Authenticate(gwAddr, failChipID(i), dev, silicon.Nominal, 5*time.Second)
				statMu.Lock()
				switch {
				case err != nil:
					failures++
				case res.Approved:
					approvals++
				default:
					denials++
				}
				statMu.Unlock()
			}
		}(w)
	}
	awaitApprovals := func(want int, phase string) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			statMu.Lock()
			n := approvals
			statMu.Unlock()
			if n >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: only %d approvals after 30s", phase, n)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	awaitApprovals(2*failChips, "pre-failover traffic")

	// --- Kill -9 the primary mid-traffic: tear the server down and abandon
	// its registry without Close.  Every challenge that left it was acked by
	// the follower first (strict quorum), so the burn history is complete on
	// the surviving copy.
	srv1.Close()
	prim.Close()
	// reg1 is deliberately NOT closed: the primary process is dead.

	// --- Failover: promote the follower and start serving its registry on
	// the pre-bound replica address.  The gateway finds it by re-routing.
	promotedSeq := foll.Promote()
	if promotedSeq == 0 {
		t.Fatal("promoted at seq 0 — follower never applied anything")
	}
	srv2 := netauth.NewServerWithRegistry(failPerSession, failRegSeed, reg2)
	go srv2.Serve(ln2) //nolint:errcheck

	statMu.Lock()
	preFailoverApprovals := approvals
	statMu.Unlock()
	awaitApprovals(preFailoverApprovals+2*failChips, "post-failover traffic")
	close(stop)
	wg.Wait()

	// --- Post-failover sweep: every non-impostor chip still authenticates
	// at zero HD through the same gateway address.
	for i := 0; i < failImpostorFrom; i++ {
		res, err := netauth.Authenticate(gwAddr, failChipID(i), genuine[i], silicon.Nominal, 10*time.Second)
		if err != nil {
			t.Fatalf("post-failover auth %s: %v", failChipID(i), err)
		}
		if !res.Approved || res.Mismatches != 0 {
			t.Fatalf("post-failover auth %s: %+v, want zero-HD approval", failChipID(i), res)
		}
		if got := srv2.ChipStatus(failChipID(i)).Issued; got == 0 {
			t.Fatalf("%s authenticated but the promoted replica issued nothing — gateway still on the corpse", failChipID(i))
		}
	}
	// Counterfeit silicon stays counterfeit on the promoted copy.
	res, err := netauth.Authenticate(gwAddr, failChipID(failChips-1), counterfeit[failChips-1],
		silicon.Nominal, 10*time.Second)
	if err == nil && res.Approved {
		t.Fatal("impostor approved after failover")
	}

	// --- The audit: across the entire history — both server incarnations,
	// genuine and impostor sessions, the kill window included — no challenge
	// word was ever issued twice for the same chip ID.
	seenMu.Lock()
	total := 0
	for i, m := range seen {
		for word, n := range m {
			total++
			if n > 1 {
				t.Errorf("chip-%d: challenge %#x issued %d times across the failover", i, word, n)
			}
		}
	}
	seenMu.Unlock()
	if total < failChips*failPerSession {
		t.Fatalf("audit saw only %d distinct challenges — traffic never ran?", total)
	}
	t.Logf("audit: %d distinct challenges, %d approvals, %d denials, %d transport failures",
		total, approvals, denials, failures)

	// --- Shutdown unwinds cleanly: no goroutine may outlive its owner.
	srv2.Close()
	gw.Close()
	follCancel()
	if err := reg2.Close(); err != nil {
		t.Fatal(err)
	}
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseGoroutines && time.Now().Before(leakDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseGoroutines {
		t.Errorf("goroutine leak: %d before, %d after shutdown", baseGoroutines, n)
	}
}
