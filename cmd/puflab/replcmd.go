// repl/gateway: operate a replicated deployment from the shell.
//
//	puflab repl status  -addr <admin>   show a node's replication state
//	puflab repl promote -addr <admin>   promote a follower to serving
//	puflab gateway -listen <addr> -shard name=addr1,addr2 [...]
//	                                    run the session gateway in front of
//	                                    the shard owners
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xorpuf/internal/netauth"
	"xorpuf/internal/registry/repl"
	"xorpuf/internal/telemetry"
	"xorpuf/internal/telemetry/dtrace"
)

func runRepl(args []string) {
	if len(args) < 1 || (args[0] != "status" && args[0] != "promote") {
		fmt.Fprintln(os.Stderr, `puflab repl — inspect and drive registry replication

usage: puflab repl status  [-addr HOST:PORT] [-json]
       puflab repl promote [-addr HOST:PORT]

"status" prints the node's role and replication lag; "promote" tells a
follower to stop replicating and start serving authentication (failover).
-addr is the serve instance's admin plane (its -admin flag).`)
		os.Exit(2)
	}
	sub := args[0]
	fs := flag.NewFlagSet("repl "+sub, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "admin HTTP address of a serve instance (its -admin flag)")
	asJSON := fs.Bool("json", false, "dump the raw JSON instead of a summary")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}

	if sub == "promote" {
		resp, err := client.Post("http://"+*addr+"/repl/promote", "application/json", nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab repl promote: %v\n", err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		var doc struct {
			Promoted bool   `json:"promoted"`
			Seq      uint64 `json:"seq"`
		}
		if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&doc) != nil || !doc.Promoted {
			fmt.Fprintf(os.Stderr, "puflab repl promote: %s refused (%s) — is it a follower with -admin?\n",
				*addr, resp.Status)
			os.Exit(1)
		}
		fmt.Printf("promoted: %s serving authentication at seq %d\n", *addr, doc.Seq)
		return
	}

	body := adminGet(client, *addr, "/repl")
	if *asJSON {
		fmt.Printf("%s\n", body)
		return
	}
	var doc replStatusDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "puflab repl status: decoding /repl: %v\n", err)
		os.Exit(1)
	}
	switch {
	case doc.Primary != nil:
		p := doc.Primary
		fmt.Printf("role: primary  seq=%d  quorum=%d  strict=%v  followers=%d\n",
			p.Seq, p.Quorum, p.Strict, len(p.Followers))
		for _, f := range p.Followers {
			fmt.Printf("  follower %-21s acked=%d lag=%d records\n", f.Addr, f.Acked, f.Lag)
		}
	case doc.Follower != nil:
		f := doc.Follower
		fmt.Printf("role: follower  state=%s  primary=%s\n", f.State, f.Primary)
		fmt.Printf("  applied=%d  primary-seq=%d  lag=%d records / %d bytes  disconnects=%d\n",
			f.AppliedSeq, f.PrimarySeq, f.LagRecords, f.LagBytes, f.Disconnects)
		if f.LastError != "" {
			fmt.Printf("  last error: %s\n", f.LastError)
		}
		if f.State == repl.StateDegraded {
			os.Exit(1) // scriptable: degraded replication is a failed check
		}
	default:
		fmt.Println("role: standalone (no -primary / -follower)")
	}
}

func runGateway(args []string) {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7400", "device-facing listen address")
	admin := fs.String("admin", "", "admin HTTP address serving /metrics and /trace/spans (empty = off)")
	virtual := fs.Int("virtual-nodes", 64, "ring points per shard")
	dialTimeout := fs.Duration("dial-timeout", 2*time.Second, "backend dial timeout")
	cooldown := fs.Duration("cooldown", 3*time.Second, "down-mark cooldown before a failed backend is re-probed")
	var shards []netauth.GatewayShard
	fs.Func("shard", "shard spec name=addr1,addr2 (repeatable; replicas in priority order, primary first)", func(s string) error {
		name, addrs, ok := strings.Cut(s, "=")
		if !ok || name == "" || addrs == "" {
			return fmt.Errorf("want name=addr1,addr2, got %q", s)
		}
		shards = append(shards, netauth.GatewayShard{Name: name, Addrs: strings.Split(addrs, ",")})
		return nil
	})
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "puflab gateway: at least one -shard name=addr1,addr2 is required")
		os.Exit(2)
	}

	g, err := netauth.NewGateway(shards, netauth.GatewayConfig{
		VirtualNodes: *virtual,
		DialTimeout:  *dialTimeout,
		Cooldown:     *cooldown,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab gateway: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab gateway: %v\n", err)
		os.Exit(1)
	}
	for _, s := range shards {
		fmt.Printf("shard %s → %s\n", s.Name, strings.Join(s.Addrs, ", "))
	}
	fmt.Printf("session gateway on %s (%d shards, %d ring points each)\n", ln.Addr(), len(shards), *virtual)

	// Observability plane: the gateway's routing counters (reroutes,
	// redirects, down-marks) in /metrics and its gateway.session /
	// gateway.hop spans in /trace/spans, so `puflab trace collect` can fold
	// the gateway hop into the cross-process tree.
	dtrace.SetService("gateway@" + *listen)
	var adminLn net.Listener
	if *admin != "" {
		adminLn, err = net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab gateway: admin listener: %v\n", err)
			os.Exit(1)
		}
		mux := telemetry.AdminMux(telemetry.Default, nil, nil, telemetry.Endpoint{
			Path: "/trace/spans", Handler: dtrace.Handler(dtrace.Default),
		})
		go func() {
			if err := http.Serve(adminLn, mux); err != nil && !isClosedErr(err) {
				fmt.Fprintf(os.Stderr, "puflab gateway: admin server: %v\n", err)
			}
		}()
		fmt.Printf("admin plane on http://%s (/metrics /trace/spans)\n", adminLn.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- g.Serve(ln) }()
	select {
	case s := <-sig:
		fmt.Printf("\n%v: draining gateway sessions…\n", s)
		g.Close()
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab gateway: %v\n", err)
			os.Exit(1)
		}
	}
	if adminLn != nil {
		_ = adminLn.Close()
	}
}
