// bench: measure the authentication hot path with the standard benchmark
// harness and report instrumented-vs-bare overhead, so the observability
// plane's cost is a number in CI instead of a guess.  -json emits the
// machine-readable report checked into the repo as BENCH_PR4.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"testing"

	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/keyex"
	"xorpuf/internal/netauth"
	"xorpuf/internal/registry"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/telemetry"
	"xorpuf/internal/telemetry/dtrace"
)

// benchResult is one benchmark's outcome in the JSON report.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SessionsPerSec is set only by throughput benchmarks that report a
	// sessions/sec custom metric (the pipelined v2 arm).
	SessionsPerSec float64 `json:"sessions_per_sec,omitempty"`
}

// benchReport is the BENCH_PR4.json schema.
type benchReport struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// PipelinedGOMAXPROCS is the parallelism the pipelined v2 throughput
	// benchmark ran at (the -procs flag); the serial latency benchmarks
	// keep the ambient GOMAXPROCS so their ns/op stay comparable across
	// reports.
	PipelinedGOMAXPROCS int           `json:"pipelined_gomaxprocs"`
	Benchmarks          []benchResult `json:"benchmarks"`
	OverheadPercent     float64       `json:"auth_session_overhead_percent"`
	// TracedOverheadPercent is the traced arm (every session carrying a
	// distributed-trace context, the server recording a span tree per
	// session) vs the plain instrumented arm.  Gated at -trace-tolerance.
	TracedOverheadPercent float64 `json:"traced_session_overhead_percent"`
}

func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the machine-readable JSON report instead of a table")
	out := fs.String("o", "", "also write the JSON report to this path")
	outLong := fs.String("out", "", "alias for -o")
	baseline := fs.String("baseline", "", "prior JSON report to compare against (fails on regression)")
	tolerance := fs.Float64("tolerance", 15, "max %% auth_session_e2e ns/op regression vs -baseline before failing")
	n := fs.Int("n", 16, "challenges per benchmarked authentication session")
	seed := fs.Uint64("seed", 1, "model seed")
	best := fs.Int("best", 3, "repetitions per benchmark; the fastest is reported")
	traceTolerance := fs.Float64("trace-tolerance", 5, "max %% traced-vs-untraced session overhead before failing")
	procs := fs.Int("procs", 0, "GOMAXPROCS for the pipelined v2 throughput benchmark (0 = max(2, NumCPU)); serial benchmarks keep the ambient setting")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *out == "" {
		*out = *outLong
	}
	if *procs <= 0 {
		*procs = runtime.NumCPU()
		if *procs < 2 {
			*procs = 2
		}
	}

	report := benchReport{
		GoVersion:           runtime.Version(),
		GOOS:                runtime.GOOS,
		GOARCH:              runtime.GOARCH,
		CPUs:                runtime.NumCPU(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		PipelinedGOMAXPROCS: *procs,
	}
	nsPerOp := func(r testing.BenchmarkResult) float64 {
		if r.N == 0 {
			return 0
		}
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	// bestOf reruns a benchmark and keeps the fastest result.  Virtualized
	// and shared runners inflate wall-clock measurements erratically; the
	// minimum over a few repetitions is a far better estimate of intrinsic
	// cost than any single run, and it is what the regression gate compares.
	bestOf := func(run func() testing.BenchmarkResult) testing.BenchmarkResult {
		r := run()
		for i := 1; i < *best; i++ {
			if c := run(); nsPerOp(c) < nsPerOp(r) {
				r = c
			}
		}
		return r
	}
	add := func(name string, r testing.BenchmarkResult) benchResult {
		br := benchResult{
			Name:           name,
			Iterations:     r.N,
			NsPerOp:        nsPerOp(r),
			AllocsPerOp:    r.AllocsPerOp(),
			BytesPerOp:     r.AllocedBytesPerOp(),
			SessionsPerSec: r.Extra["sessions/sec"],
		}
		report.Benchmarks = append(report.Benchmarks, br)
		return br
	}

	// Micro: the two instruments on every hot path.
	ctr := telemetry.NewRegistry().Counter("bench_counter")
	add("counter_inc", bestOf(func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctr.Inc()
			}
		})
	}))
	hist := telemetry.NewRegistry().Histogram("bench_hist", telemetry.LatencyBuckets)
	add("histogram_observe", bestOf(func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hist.Observe(float64(i&1023) * 1e-6)
			}
		})
	}))

	// Micro: the reverse fuzzy extractor's cryptographic core — server-side
	// helper generation plus device-side reproduction, no network.
	kcfg := keyex.Config{M: 7, T: 8}
	ksrc := rng.New(*seed)
	w := make([]uint8, kcfg.N())
	for i := range w {
		w[i] = uint8(ksrc.Uint64() & 1)
	}
	add("keyex_derive", bestOf(func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				master, helper, err := keyex.Generate(kcfg, ksrc, w)
				if err != nil {
					b.Fatal(err)
				}
				key, _, err := keyex.Reproduce(kcfg, w, helper)
				if err != nil || key != master {
					b.Fatal("key did not reproduce")
				}
			}
		})
	}))

	// Macro: full client↔server sessions over loopback TCP, instrumented
	// (Default registry + tracer) vs bare (telemetry disabled), plus the
	// traced arm: same instrumented server, but every hello carries a
	// distributed-trace context so the server records the full span tree
	// (session, select, device_rtt) per session.  The traced-vs-untraced
	// delta is the cost of tracing itself and gates at -trace-tolerance.
	e2e := add("auth_session_e2e", bestOf(func() testing.BenchmarkResult {
		return benchAuthSession(*n, *seed, true, "")
	}))
	bare := add("auth_session_e2e_bare", bestOf(func() testing.BenchmarkResult {
		return benchAuthSession(*n, *seed, false, "")
	}))
	if bare.NsPerOp > 0 {
		report.OverheadPercent = (e2e.NsPerOp - bare.NsPerOp) / bare.NsPerOp * 100
	}
	benchTrace := dtrace.Context{Trace: dtrace.NewTraceID(), Span: dtrace.NewSpanID()}.String()
	traced := add("auth_session_traced", bestOf(func() testing.BenchmarkResult {
		return benchAuthSession(*n, *seed, true, benchTrace)
	}))
	if e2e.NsPerOp > 0 {
		report.TracedOverheadPercent = (traced.NsPerOp - e2e.NsPerOp) / e2e.NsPerOp * 100
	}

	// Macro: the same session over binary wire protocol v2 — first a single
	// session per op on one warm persistent connection, then the pipelined
	// arm (one worker per proc, 16 multiplexed sessions per round trip)
	// whose sessions/sec figure is the BENCH_PR9 headline.  Only the
	// throughput arm runs at -procs: raising GOMAXPROCS above the core
	// count would turn the serial latency loops' cooperative goroutine
	// handoffs into OS context switches and skew their ns/op.
	add("auth_session_v2_e2e", bestOf(func() testing.BenchmarkResult {
		return benchAuthSessionV2(*n, *seed, false)
	}))
	prevProcs := runtime.GOMAXPROCS(*procs)
	add("auth_session_v2_pipelined", bestOf(func() testing.BenchmarkResult {
		return benchAuthSessionV2(*n, *seed, true)
	}))
	runtime.GOMAXPROCS(prevProcs)

	// Macro: a full key exchange — burn, helper generation, device
	// reproduction, mutual confirmation, channel upgrade — plus one
	// encrypted 1 KiB payload round-trip over the established channel.
	add("keyex_session_e2e", bestOf(func() testing.BenchmarkResult {
		return benchKeyexSession(*seed, kcfg)
	}))

	if *asJSON || *out != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
			os.Exit(1)
		}
		b = append(b, '\n')
		if *out != "" {
			if err := os.WriteFile(*out, b, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
		}
		if *asJSON {
			os.Stdout.Write(b)
		}
	} else {
		fmt.Printf("%-26s %12s %14s %10s %10s\n", "benchmark", "iterations", "ns/op", "B/op", "allocs/op")
		for _, r := range report.Benchmarks {
			fmt.Printf("%-26s %12d %14.1f %10d %10d", r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
			if r.SessionsPerSec > 0 {
				fmt.Printf("  (%.0f sessions/sec)", r.SessionsPerSec)
			}
			fmt.Println()
		}
		fmt.Printf("\nauth session overhead (instrumented vs bare): %+.2f%%\n", report.OverheadPercent)
		fmt.Printf("traced session overhead (traced vs untraced): %+.2f%%\n", report.TracedOverheadPercent)
	}
	if report.TracedOverheadPercent > *traceTolerance {
		fmt.Fprintf(os.Stderr, "puflab bench: traced session overhead %.2f%% exceeds %.0f%% tolerance\n",
			report.TracedOverheadPercent, *traceTolerance)
		os.Exit(1)
	}
	if *baseline != "" {
		if err := compareBaseline(report, *baseline, *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// gatedBenchmarks are the macro benchmarks that fail CI on regression.
// Micro benchmarks are printed for context but never gate — single-digit
// nanosecond measurements on shared runners swing too wildly.  Baselines
// that predate an entry simply skip it ("new, no baseline entry"), so
// adding a gate here is backward-compatible with older reports.
var gatedBenchmarks = []string{"auth_session_e2e", "auth_session_v2_e2e", "keyex_session_e2e"}

// compareBaseline prints the per-metric delta against a prior report for
// every benchmark both reports know, then fails if any gated macro
// benchmark regressed more than tolerance percent.
func compareBaseline(report benchReport, path string, tolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("decoding baseline %s: %w", path, err)
	}
	prev := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		prev[b.Name] = b
	}
	gated := make(map[string]bool, len(gatedBenchmarks))
	for _, name := range gatedBenchmarks {
		gated[name] = true
	}
	fmt.Fprintf(os.Stderr, "baseline %s (tolerance %.0f%% on gated benchmarks):\n", path, tolerance)
	var failures []string
	for _, cur := range report.Benchmarks {
		p, ok := prev[cur.Name]
		if !ok || p.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "  %-24s %38.1f ns/op  (new, no baseline entry)\n", cur.Name, cur.NsPerOp)
			continue
		}
		change := (cur.NsPerOp - p.NsPerOp) / p.NsPerOp * 100
		mark := ""
		if gated[cur.Name] {
			mark = "  [gated]"
			if change > tolerance {
				mark = "  [gated: REGRESSED]"
				failures = append(failures,
					fmt.Sprintf("%s regressed %.2f%% (> %.0f%% tolerance)", cur.Name, change, tolerance))
			}
		}
		fmt.Fprintf(os.Stderr, "  %-24s %15.1f → %15.1f ns/op  %+8.2f%%%s\n",
			cur.Name, p.NsPerOp, cur.NsPerOp, change, mark)
	}
	gateSeen := false
	for _, name := range gatedBenchmarks {
		if _, ok := prev[name]; ok {
			gateSeen = true
		}
	}
	if !gateSeen {
		return fmt.Errorf("baseline %s has no usable gated benchmark entry", path)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s vs %s", failures[0], path)
	}
	return nil
}

// benchKeyexSession measures one full key exchange plus an encrypted 1 KiB
// payload per iteration against a loopback server.  The model-backed device
// reproduces the key with zero bit errors, so this times the protocol and
// cryptography, not the error-correction tail.
func benchKeyexSession(seed uint64, kcfg keyex.Config) testing.BenchmarkResult {
	model := benchModel(seed, 4, 64)
	reg, err := registry.Open("", registry.Options{Seed: seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
		os.Exit(1)
	}
	defer reg.Close()
	const chipID = "bench-chip"
	if err := reg.Register(chipID, model, 0); err != nil {
		fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
		os.Exit(1)
	}
	srv := netauth.NewServerWithRegistry(16, seed, reg)
	if err := srv.SetKeyExchange(kcfg); err != nil {
		fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
		os.Exit(1)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	client := &netauth.Client{
		Addr:   ln.Addr().String(),
		ChipID: chipID,
		Device: modelDevice{m: model},
		Cond:   silicon.Nominal,
	}
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	ctx := context.Background()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ss, err := client.Establish(ctx)
			if err != nil {
				b.Fatalf("session %d: %v", i, err)
			}
			if err := ss.SendPayload(payload); err != nil {
				b.Fatalf("session %d payload: %v", i, err)
			}
			if err := ss.Close(); err != nil {
				b.Fatalf("session %d close: %v", i, err)
			}
		}
	})
}

// benchModel fabricates a synthetic ChipModel whose predictions need no
// silicon: random θ with thresholds that classify most random challenges
// stable.  Cheap to build, deterministic to answer.
func benchModel(seed uint64, width, stages int) *core.ChipModel {
	src := rng.New(seed)
	m := &core.ChipModel{Beta0: 1, Beta1: 1}
	for p := 0; p < width; p++ {
		theta := make([]float64, stages+1)
		for i := range theta {
			theta[i] = src.Float64()*0.5 - 0.25
		}
		theta[stages] = 0.5
		m.PUFs = append(m.PUFs, &core.PUFModel{Theta: theta, Thr0: 0.45, Thr1: 0.55})
	}
	return m
}

// modelDevice answers challenges straight from the enrolled model — a
// perfectly genuine, perfectly stable device, so every benchmarked session
// takes the zero-HD approve path.
type modelDevice struct{ m *core.ChipModel }

func (d modelDevice) ReadXOR(c challenge.Challenge, _ silicon.Condition) uint8 {
	bit, _ := d.m.PredictXOR(c)
	return bit
}

// fastModelDevice is modelDevice through the shared-feature fast path:
// Φ(c) is computed once into a scratch buffer and dotted against every
// member PUF.  The scratch makes it single-goroutine — allocate one per
// benchmark worker.
type fastModelDevice struct {
	m   *core.ChipModel
	phi []float64
}

func newFastModelDevice(m *core.ChipModel) *fastModelDevice {
	return &fastModelDevice{m: m, phi: make([]float64, challenge.FeatureDim(m.Stages()))}
}

func (d *fastModelDevice) ReadXOR(c challenge.Challenge, _ silicon.Condition) uint8 {
	challenge.FeaturesInto(c, d.phi)
	bit, _ := d.m.PredictXORFeatures(d.phi)
	return bit
}

// benchAuthSessionV2 measures authentication over the binary protocol
// against a loopback server.  Plain mode runs one session per iteration
// on a single warm connection; pipelined mode runs GOMAXPROCS workers,
// each multiplexing 16 sessions per round trip over its own connection,
// and reports a sessions/sec custom metric.
func benchAuthSessionV2(n int, seed uint64, pipelined bool) testing.BenchmarkResult {
	model := benchModel(seed, 4, 64)
	reg, err := registry.Open("", registry.Options{Seed: seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
		os.Exit(1)
	}
	defer reg.Close()
	const chipID = "bench-chip"
	if err := reg.Register(chipID, model, 0); err != nil {
		fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
		os.Exit(1)
	}
	srv := netauth.NewServerWithRegistry(n, seed, reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
		os.Exit(1)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	addr := ln.Addr().String()
	ctx := context.Background()

	newClient := func() *netauth.V2Client {
		return &netauth.V2Client{
			Addr:   addr,
			ChipID: chipID,
			Device: newFastModelDevice(model),
			Cond:   silicon.Nominal,
			Policy: netauth.RetryPolicy{MaxAttempts: 1},
		}
	}
	if !pipelined {
		client := newClient()
		defer client.Close()
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := client.Authenticate(ctx)
				if err != nil || !res.Approved {
					b.Fatalf("session %d: approved=%v err=%v", i, res.Approved, err)
				}
			}
		})
	}
	const batch = 16
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			client := newClient()
			defer client.Close()
			for pb.Next() {
				results, err := client.AuthenticateBatch(ctx, batch)
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					if !res.Approved {
						b.Fatal("session denied")
					}
				}
			}
		})
		b.StopTimer()
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N*batch)/sec, "sessions/sec")
		}
	})
}

// benchAuthSession measures one full authentication session per iteration
// against a loopback server, with telemetry either wired or disabled.  A
// non-empty trace is sent as each session's distributed-trace context, so
// the server records the full per-session span tree.
func benchAuthSession(n int, seed uint64, instrumented bool, trace string) testing.BenchmarkResult {
	model := benchModel(seed, 4, 64)
	reg, err := registry.Open("", registry.Options{Seed: seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
		os.Exit(1)
	}
	defer reg.Close()
	const chipID = "bench-chip"
	if err := reg.Register(chipID, model, 0); err != nil {
		fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
		os.Exit(1)
	}
	srv := netauth.NewServerWithRegistry(n, seed, reg)
	if !instrumented {
		srv.SetTelemetry(nil)
		srv.SetTracer(nil)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab bench: %v\n", err)
		os.Exit(1)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	client := &netauth.Client{
		Addr:   ln.Addr().String(),
		ChipID: chipID,
		Device: modelDevice{m: model},
		Cond:   silicon.Nominal,
		Policy: netauth.RetryPolicy{MaxAttempts: 1},
		Trace:  trace,
	}
	ctx := context.Background()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := client.Authenticate(ctx)
			if err != nil || !res.Approved {
				b.Fatalf("session %d: approved=%v err=%v", i, res.Approved, err)
			}
		}
	})
}
