// metrics: scrape a running serve instance's admin plane and pretty-print
// the observability snapshot — counters, gauges, and histogram summaries
// (count, mean, p50/p90/p99) — without needing a Prometheus stack.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"xorpuf/internal/telemetry"
)

func runMetrics(args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "admin HTTP address of a serve instance (its -admin flag)")
	raw := fs.Bool("raw", false, "dump the raw text scrape instead of the summary table")
	asJSON := fs.Bool("json", false, "dump the raw JSON snapshot instead of the summary table")
	timeout := fs.Duration("timeout", 5*time.Second, "scrape timeout")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	url := "http://" + *addr + "/metrics"
	if *asJSON || !*raw {
		url += "?format=json"
	}
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab metrics: scraping %s: %v\n", url, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab metrics: reading scrape: %v\n", err)
		os.Exit(1)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "puflab metrics: %s returned %s\n%s", url, resp.Status, body)
		os.Exit(1)
	}
	if *raw || *asJSON {
		os.Stdout.Write(body)
		if len(body) > 0 && body[len(body)-1] != '\n' {
			fmt.Println()
		}
		return
	}

	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		fmt.Fprintf(os.Stderr, "puflab metrics: decoding snapshot: %v\n", err)
		os.Exit(1)
	}
	printSnapshot(os.Stdout, snap)
}

// printSnapshot renders the operator-facing summary: sorted counters and
// gauges, then one row per histogram with its distribution summary.
func printSnapshot(w io.Writer, snap telemetry.Snapshot) {
	section := func(title string) { fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title))) }

	if len(snap.Counters) > 0 {
		section("counters")
		for _, name := range sortedKeys(snap.Counters) {
			fmt.Fprintf(w, "  %-40s %d\n", name, snap.Counters[name])
		}
		fmt.Fprintln(w)
	}
	if len(snap.Gauges) > 0 {
		section("gauges")
		for _, name := range sortedKeys(snap.Gauges) {
			fmt.Fprintf(w, "  %-40s %d\n", name, snap.Gauges[name])
		}
		fmt.Fprintln(w)
	}
	if len(snap.Histograms) > 0 {
		section("histograms")
		fmt.Fprintf(w, "  %-40s %10s %12s %12s %12s %12s\n", "name", "count", "mean", "p50", "p90", "p99")
		for _, name := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[name]
			fmt.Fprintf(w, "  %-40s %10d %12s %12s %12s %12s\n", name, h.Count,
				sig3(h.Mean()), sig3(h.Quantile(0.5)), sig3(h.Quantile(0.9)), sig3(h.Quantile(0.99)))
		}
	}
}

// sig3 renders a value to three significant digits, the right precision for
// eyeballing latencies that span microseconds to seconds.
func sig3(v float64) string {
	return fmt.Sprintf("%.3g", v)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
