// fleet: exercise the registry + enrollment pipeline at manufacturing scale
// and report its throughput numbers — registrations/sec out of the parallel
// worker pool, lookups/sec against the sharded store, and (with -dir)
// crash-recovery time from snapshot + WAL.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/registry"
	"xorpuf/internal/registry/fleet"
)

// fleetProgress returns a Progress callback that prints a coarse ticker
// (every ~5 % of the fleet, and on completion) without drowning stdout.
func fleetProgress(total int) func(done, total int) {
	step := total / 20
	if step < 1 {
		step = 1
	}
	return func(done, total int) {
		if done == total || done%step == 0 {
			fmt.Printf("\renrolling fleet: %d/%d", done, total)
			if done == total {
				fmt.Println()
			}
		}
	}
}

func runFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	chips := fs.Int("chips", 1000, "fleet size to enroll")
	workers := fs.Int("workers", 0, "enrollment worker-pool size (0 = GOMAXPROCS)")
	xorWidth := fs.Int("xor", 4, "XOR width of each chip")
	seed := fs.Uint64("seed", 1, "simulation seed")
	dir := fs.String("dir", "", "registry state directory (empty = in-memory, skips the recovery phase)")
	budget := fs.Int("budget", 0, "lifetime challenge budget per chip (0 = unlimited)")
	train := fs.Int("train", 500, "enrollment training-set size per PUF")
	validate := fs.Int("validate", 2000, "enrollment validation-set size")
	lookups := fs.Int("lookups", 200000, "total lookups in the concurrent probe phase")
	snapEvery := fs.Int("snap-every", 0, "WAL records between snapshots (0 = default 4096, negative = manual only)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "puflab fleet: "+format+"\n", args...)
		os.Exit(1)
	}

	reg, err := registry.Open(*dir, registry.Options{Seed: *seed + 1, SnapshotEvery: *snapEvery})
	if err != nil {
		fail("opening registry: %v", err)
	}
	enrollCfg := core.DefaultEnrollConfig()
	enrollCfg.TrainingSize = *train
	enrollCfg.ValidationSize = *validate

	rep, err := fleet.Run(fleet.Config{
		Chips:        *chips,
		Workers:      *workers,
		XORWidth:     *xorWidth,
		Seed:         *seed,
		Enroll:       enrollCfg,
		Budget:       *budget,
		SkipExisting: true,
		Progress:     fleetProgress(*chips),
	}, reg)
	if err != nil {
		fail("enrollment: %v (enrolled %d, failed %d)", err, rep.Enrolled, rep.Failed)
	}
	fmt.Printf("enrollment: %d chips (%d already present) in %v — %.1f registrations/s\n",
		rep.Enrolled, rep.Skipped, rep.Duration.Round(time.Millisecond), rep.PerSecond)

	// Concurrent lookup probe: every worker hammers random IDs through the
	// sharded read path (Lookup + Status), the per-session admission work of
	// a verification server.
	probeWorkers := runtime.GOMAXPROCS(0)
	perWorker := *lookups / probeWorkers
	var misses atomic.Int64
	var wg sync.WaitGroup
	probeStart := time.Now()
	for w := 0; w < probeWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("chip-%d", src.Intn(*chips))
				e := reg.Lookup(id)
				if e == nil {
					misses.Add(1)
					continue
				}
				_ = e.Status()
			}
		}(w)
	}
	wg.Wait()
	probed := probeWorkers * perWorker
	elapsed := time.Since(probeStart)
	if misses.Load() > 0 {
		fail("lookup probe: %d missing chips", misses.Load())
	}
	fmt.Printf("lookup probe: %d lookups across %d workers in %v — %.0f lookups/s\n",
		probed, probeWorkers, elapsed.Round(time.Millisecond),
		float64(probed)/elapsed.Seconds())

	if err := reg.Close(); err != nil { // compacts into the snapshot
		fail("close: %v", err)
	}
	if *dir == "" {
		return
	}

	// Recovery phase: reopen the persisted state and verify the fleet.
	recStart := time.Now()
	reg2, err := registry.Open(*dir, registry.Options{Seed: *seed + 1, SnapshotEvery: *snapEvery})
	if err != nil {
		fail("recovery: %v", err)
	}
	recElapsed := time.Since(recStart)
	if got := reg2.Len(); got != *chips {
		fail("recovery: %d chips recovered, want %d", got, *chips)
	}
	fmt.Printf("recovery: %d chips restored from %s in %v\n", *chips, *dir, recElapsed.Round(time.Microsecond))
	if err := reg2.Close(); err != nil {
		fail("close after recovery: %v", err)
	}
}
