// top: a live terminal dashboard over a serve instance's admin plane —
// windowed rates and quantiles from /timeseries, objective burn rates from
// /slo, and active alerts from /alerts, redrawn in place every interval.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"xorpuf/internal/telemetry/history"
	"xorpuf/internal/telemetry/slo"
)

func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "admin HTTP address of a serve instance (its -admin flag)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	count := fs.Int("count", 0, "number of refreshes before exiting (0 = run until interrupted)")
	window := fs.Duration("window", time.Minute, "trailing window for rates and quantiles")
	timeout := fs.Duration("timeout", 5*time.Second, "per-fetch timeout")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		frame, err := renderTopFrame(client, *addr, *window)
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab top: %v\n", err)
			os.Exit(1)
		}
		// ANSI clear-and-home keeps the dashboard in place between frames.
		fmt.Print("\x1b[2J\x1b[H" + frame)
	}
}

// renderTopFrame fetches one round of admin-plane state and renders it.
func renderTopFrame(client *http.Client, addr string, window time.Duration) (string, error) {
	var dump history.Dump
	if err := json.Unmarshal(adminGet(client, addr, fmt.Sprintf("/timeseries?window=%s", window)), &dump); err != nil {
		return "", fmt.Errorf("decoding /timeseries: %w", err)
	}
	var statuses []slo.ObjectiveStatus
	if err := json.Unmarshal(adminGet(client, addr, "/slo"), &statuses); err != nil {
		return "", fmt.Errorf("decoding /slo: %w", err)
	}
	var alerts alertsDoc
	if err := json.Unmarshal(adminGet(client, addr, "/alerts?events=5"), &alerts); err != nil {
		return "", fmt.Errorf("decoding /alerts: %w", err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "puflab top — %s  window %s  ticks %d  %s\n\n",
		addr, window, dump.Ticks, dump.At.Format("15:04:05"))

	fmt.Fprintf(&b, "%-22s %-9s %10s %10s\n", "objective", "state", "long-burn", "short-burn")
	for _, s := range statuses {
		fmt.Fprintf(&b, "%-22s %-9s %10.2f %10.2f\n", s.Name, s.State, s.LongBurn, s.ShortBurn)
	}

	firing := 0
	for _, a := range alerts.Alerts {
		if a.State == "firing" || a.State == "pending" {
			if firing == 0 {
				b.WriteString("\nALERTS\n")
			}
			firing++
			fmt.Fprintf(&b, "  %-9s %-40s %s\n", a.State, a.Name, a.Reason)
		}
	}
	if firing == 0 {
		b.WriteString("\nno pending/firing alerts\n")
	}

	b.WriteString("\nrates (/s)\n")
	for _, name := range sortedKeys(dump.Counters) {
		c := dump.Counters[name]
		if c.Rate == 0 && c.Last == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-40s %10s   total %.0f\n", name, sig3(c.Rate), c.Last)
	}

	if len(dump.Histograms) > 0 {
		b.WriteString("\nlatencies (windowed)\n")
		fmt.Fprintf(&b, "  %-40s %8s %10s %10s %10s\n", "histogram", "count", "p50", "p90", "p99")
		names := make([]string, 0, len(dump.Histograms))
		for n := range dump.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			h := dump.Histograms[name]
			fmt.Fprintf(&b, "  %-40s %8d %10s %10s %10s\n",
				name, h.Count, sig3(h.P50), sig3(h.P90), sig3(h.P99))
		}
	}

	b.WriteString("\ngauges\n")
	for _, name := range sortedKeys(dump.Gauges) {
		fmt.Fprintf(&b, "  %-40s %10s\n", name, sig3(dump.Gauges[name].Last))
	}
	return b.String(), nil
}
