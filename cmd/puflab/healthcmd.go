// health: the operator's view of the lifetime-reliability loop.  Inspect
// the drift detectors of every chip in a persistent registry, force a
// suspect chip into quarantine, or re-enroll a drifted chip in place —
// re-measuring the (simulated) silicon, refitting its model, and swapping
// the registry entry while keeping its issued-challenge history burned.
//
//	puflab health report     -state DIR
//	puflab health quarantine -state DIR -chip chip-3
//	puflab health reenroll   -state DIR -chip chip-3 [-seed -xor -train -validate -budget]
//
// The registry directory and -seed must match the `serve` instance that owns
// it; reenroll refabricates the device from the fleet seed, exactly as
// `serve` enrolled it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"xorpuf/internal/core"
	"xorpuf/internal/health"
	"xorpuf/internal/registry"
	"xorpuf/internal/registry/fleet"
	"xorpuf/internal/silicon"
)

func runHealth(args []string) {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		healthUsage()
		os.Exit(2)
	}
	sub := args[0]
	fs := flag.NewFlagSet("health "+sub, flag.ExitOnError)
	state := fs.String("state", "", "registry state directory (required)")
	seed := fs.Uint64("seed", 1, "simulation seed (must match the serve side)")
	chip := fs.String("chip", "", "chip ID to operate on")
	xorWidth := fs.Int("xor", 6, "reenroll: XOR width of the refabricated chip")
	train := fs.Int("train", 0, "reenroll: training-set size per PUF (0 = paper default)")
	validate := fs.Int("validate", 0, "reenroll: validation-set size (0 = paper default)")
	budget := fs.Int("budget", 0, "reenroll: lifetime challenge budget for the new enrollment (0 = unlimited)")
	if err := fs.Parse(args[1:]); err != nil {
		os.Exit(2)
	}
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "puflab health: "+format+"\n", args...)
		os.Exit(1)
	}
	if *state == "" {
		fail("-state is required: health state lives in a persistent registry")
	}
	reg, err := registry.Open(*state, registry.Options{Seed: *seed + 1})
	if err != nil {
		fail("opening registry: %v", err)
	}
	defer reg.Close()

	needChip := func() *registry.Entry {
		if *chip == "" {
			fail("%s needs -chip", sub)
		}
		e := reg.Lookup(*chip)
		if e == nil {
			fail("chip %q is not registered", *chip)
		}
		return e
	}

	switch sub {
	case "report":
		healthReport(reg)
	case "quarantine":
		e := needChip()
		if ev, ok := e.ForceHealth(health.Quarantined); ok {
			fmt.Printf("%s: %v → %v (%s)\n", *chip, ev.From, ev.To, ev.Cause)
		} else {
			fmt.Printf("%s: already quarantined\n", *chip)
		}
	case "reenroll":
		needChip()
		enrollCfg := core.DefaultEnrollConfig()
		if *train > 0 {
			enrollCfg.TrainingSize = *train
		}
		if *validate > 0 {
			enrollCfg.ValidationSize = *validate
		}
		re, err := fleet.NewReEnroller(reg, fleet.ReEnrollConfig{
			Seed:   *seed,
			Enroll: enrollCfg,
			Budget: *budget,
			Chip: func(id string) (*silicon.Chip, error) {
				var idx int
				if _, err := fmt.Sscanf(id, "chip-%d", &idx); err != nil {
					return nil, fmt.Errorf("cannot derive fleet index from id %q", id)
				}
				return fleet.Chip(*seed, idx, silicon.DefaultParams(), *xorWidth), nil
			},
		})
		if err != nil {
			fail("%v", err)
		}
		if err := re.ReEnroll(*chip); err != nil {
			fail("%v", err)
		}
		st := reg.Lookup(*chip).Status()
		fmt.Printf("%s re-enrolled: health=%v, issued history preserved (%d challenges stay burned)\n",
			*chip, st.Health, st.Issued)
	default:
		fmt.Fprintf(os.Stderr, "puflab health: unknown subcommand %q\n\n", sub)
		healthUsage()
		os.Exit(2)
	}

	if err := reg.Close(); err != nil {
		fail("flushing registry: %v", err)
	}
}

// healthReport prints one row per chip plus a fleet summary.
func healthReport(reg *registry.Registry) {
	type row struct {
		id string
		st registry.Status
	}
	var rows []row
	reg.Range(func(e *registry.Entry) bool {
		rows = append(rows, row{e.ID(), e.Status()})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })

	fmt.Printf("%-12s %-12s %9s %9s %9s %9s %8s %8s %7s\n",
		"CHIP", "HEALTH", "SESSIONS", "FAILURES", "EWMA", "CUSUM", "ISSUED", "DENIALS", "LOCKED")
	counts := map[health.State]int{}
	for _, r := range rows {
		hs := r.st.HealthStats
		counts[r.st.Health]++
		fmt.Printf("%-12s %-12s %9d %9d %9.4f %9.4f %8d %8d %7v\n",
			r.id, r.st.Health, hs.Sessions, hs.Failures, hs.FailEWMA, hs.CUSUM,
			r.st.Issued, r.st.Denials, r.st.Locked)
	}
	fmt.Printf("\n%d chips: %d healthy, %d degraded, %d quarantined\n",
		len(rows), counts[health.Healthy], counts[health.Degraded], counts[health.Quarantined])
}

func healthUsage() {
	fmt.Fprintln(os.Stderr, `usage: puflab health <report|quarantine|reenroll> -state DIR [flags]

  report      drift-detector state of every registered chip
  quarantine  force a chip into quarantine (-chip chip-N)
  reenroll    re-measure, refit, and swap a chip's enrollment (-chip chip-N)

run "puflab health report -h" etc. for per-subcommand flags`)
}
