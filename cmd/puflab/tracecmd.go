// trace: assemble one session's distributed span tree from several
// processes' admin planes.
//
//	puflab trace collect -admin a1,a2,... [-o spans.json] [-trace ID]
//	puflab trace show <trace-id> [-in spans.json | -admin a1,a2,...]
//
// Each serve instance (and a gateway run with -admin) exposes its span ring
// on /trace/spans; "collect" scrapes several of those planes and merges the
// dumps, "show" renders the parent/child tree of one trace ID across all of
// them — gateway hop, shard session, quorum-follower ack, one indented tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"xorpuf/internal/telemetry/dtrace"
)

func runTrace(args []string) {
	if len(args) < 1 || (args[0] != "collect" && args[0] != "show") {
		fmt.Fprintln(os.Stderr, `puflab trace — cross-process distributed span trees

usage: puflab trace collect -admin HOST:PORT[,HOST:PORT...] [-o FILE] [-trace ID]
       puflab trace show <trace-id> [-in FILE] [-admin HOST:PORT,...] [-min-procs N]

"collect" scrapes /trace/spans from each admin plane (serve -admin,
gateway -admin) and merges the dumps into one JSON document; "show"
renders one trace's span tree, from that document or scraped live, and
exits nonzero unless the tree spans at least -min-procs processes.`)
		os.Exit(2)
	}
	if args[0] == "collect" {
		runTraceCollect(args[1:])
		return
	}
	runTraceShow(args[1:])
}

// traceDump is the merged multi-process document "collect" writes and
// "show -in" reads.  A single process's /trace/spans or spans_final.json
// (dtrace.Dump) unmarshals into it too — both carry a "spans" array — so
// every span source in the system is accepted interchangeably.
type traceDump struct {
	Services []string      `json:"services,omitempty"`
	Count    int           `json:"count"`
	Spans    []dtrace.View `json:"spans"`
}

func runTraceCollect(args []string) {
	fs := flag.NewFlagSet("trace collect", flag.ExitOnError)
	admins := fs.String("admin", "127.0.0.1:7411", "comma-separated admin plane addresses to scrape")
	out := fs.String("o", "", "output path for the merged JSON document (empty = stdout)")
	traceID := fs.String("trace", "", "keep only spans of this trace ID (32 hex chars)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-scrape request timeout")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	merged, errs := collectSpans(splitAddrs(*admins), *traceID, *timeout)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "puflab trace collect: %v\n", e)
	}
	if len(merged.Spans) == 0 && len(errs) > 0 {
		os.Exit(1)
	}
	b, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab trace collect: %v\n", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
	} else {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "puflab trace collect: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%d spans from %d process(es) written to %s\n",
			len(merged.Spans), len(merged.Services), *out)
	}
}

func runTraceShow(args []string) {
	fs := flag.NewFlagSet("trace show", flag.ExitOnError)
	in := fs.String("in", "", "read spans from a collected JSON document instead of scraping")
	admins := fs.String("admin", "", "comma-separated admin plane addresses to scrape (when -in is unset)")
	minProcs := fs.Int("min-procs", 0, "fail unless the tree spans at least this many processes")
	timeout := fs.Duration("timeout", 5*time.Second, "per-scrape request timeout")
	// flag.Parse stops at the first non-flag token, so accept the trace ID
	// either before the flags (the documented form) or after them.
	var idArg string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		idArg, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	switch {
	case idArg == "" && fs.NArg() == 1:
		idArg = fs.Arg(0)
	case idArg != "" && fs.NArg() == 0:
	default:
		fmt.Fprintln(os.Stderr, "puflab trace show: exactly one trace ID argument required")
		os.Exit(2)
	}
	tid, ok := dtrace.ParseTraceID(idArg)
	if !ok {
		fmt.Fprintf(os.Stderr, "puflab trace show: %q is not a trace ID (32 hex chars)\n", idArg)
		os.Exit(2)
	}

	var dump traceDump
	switch {
	case *in != "":
		b, err := os.ReadFile(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab trace show: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(b, &dump); err != nil {
			fmt.Fprintf(os.Stderr, "puflab trace show: decoding %s: %v\n", *in, err)
			os.Exit(1)
		}
	case *admins != "":
		var errs []error
		dump, errs = collectSpans(splitAddrs(*admins), tid.String(), *timeout)
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "puflab trace show: %v\n", e)
		}
	default:
		fmt.Fprintln(os.Stderr, "puflab trace show: need -in FILE or -admin addresses")
		os.Exit(2)
	}

	var spans []dtrace.View
	for _, v := range dump.Spans {
		if v.TraceID == tid.String() {
			spans = append(spans, v)
		}
	}
	if len(spans) == 0 {
		fmt.Fprintf(os.Stderr, "puflab trace show: no spans recorded for trace %s\n", tid)
		os.Exit(1)
	}
	procs := renderTree(os.Stdout, spans)
	fmt.Printf("%d spans across %d process(es)\n", len(spans), procs)
	if *minProcs > 0 && procs < *minProcs {
		fmt.Fprintf(os.Stderr, "puflab trace show: tree spans %d process(es), want ≥ %d\n", procs, *minProcs)
		os.Exit(1)
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// collectSpans scrapes /trace/spans from each admin plane and merges the
// dumps, deduplicating by span ID (re-scraping the same plane twice is
// harmless).  Unreachable planes become errors, not a failed merge — a
// collected trace with one process missing is still worth rendering.
func collectSpans(addrs []string, traceID string, timeout time.Duration) (traceDump, []error) {
	client := &http.Client{Timeout: timeout}
	merged := traceDump{Spans: []dtrace.View{}}
	seen := make(map[string]bool)
	var errs []error
	for _, addr := range addrs {
		u := "http://" + addr + "/trace/spans"
		if traceID != "" {
			u += "?trace=" + url.QueryEscape(traceID)
		}
		resp, err := client.Get(u)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			errs = append(errs, fmt.Errorf("%s: %s", u, resp.Status))
			continue
		}
		var d dtrace.Dump
		if err := json.Unmarshal(body, &d); err != nil {
			errs = append(errs, fmt.Errorf("%s: %v", u, err))
			continue
		}
		merged.Services = append(merged.Services, d.Service)
		for _, v := range d.Spans {
			if !seen[v.SpanID] {
				seen[v.SpanID] = true
				merged.Spans = append(merged.Spans, v)
			}
		}
	}
	merged.Count = len(merged.Spans)
	return merged, errs
}

// renderTree prints the spans as an indented parent/child tree and returns
// the number of distinct services (≈ processes) in it.  A span whose parent
// is not among the collected spans renders as a root: the device's own root
// span lives in the device process, which has no admin plane to scrape, so
// the gateway's session span is routinely an "orphan" — that is the normal
// shape, not an error.
func renderTree(w io.Writer, spans []dtrace.View) int {
	byID := make(map[string]dtrace.View, len(spans))
	children := make(map[string][]dtrace.View)
	services := make(map[string]bool)
	for _, v := range spans {
		byID[v.SpanID] = v
		services[v.Service] = true
	}
	var roots []dtrace.View
	for _, v := range spans {
		if v.ParentID != "" {
			if _, ok := byID[v.ParentID]; ok {
				children[v.ParentID] = append(children[v.ParentID], v)
				continue
			}
		}
		roots = append(roots, v)
	}
	byStart := func(vs []dtrace.View) {
		sort.Slice(vs, func(i, j int) bool {
			if !vs[i].Start.Equal(vs[j].Start) {
				return vs[i].Start.Before(vs[j].Start)
			}
			return vs[i].SpanID < vs[j].SpanID
		})
	}
	byStart(roots)
	for _, vs := range children {
		byStart(vs)
	}
	var walk func(v dtrace.View, depth int)
	walk = func(v dtrace.View, depth int) {
		fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", depth), formatSpan(v))
		for _, c := range children[v.SpanID] {
			walk(c, depth+1)
		}
	}
	if len(roots) > 0 {
		fmt.Fprintf(w, "trace %s\n", roots[0].TraceID)
	}
	for _, r := range roots {
		walk(r, 1)
	}
	return len(services)
}

func formatSpan(v dtrace.View) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", v.Name)
	fmt.Fprintf(&b, " %9.3fms", v.Seconds*1e3)
	fmt.Fprintf(&b, "  [%s]", v.Service)
	if v.Status != "" {
		fmt.Fprintf(&b, "  %s", v.Status)
	}
	if len(v.Attrs) > 0 {
		keys := make([]string, 0, len(v.Attrs))
		for k := range v.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, v.Attrs[k])
		}
	}
	return b.String()
}
