// serve/auth: run the Fig 7 authentication protocol over real TCP, with
// the resilience layer (retries, throttling, lockout, challenge budgets)
// and optional deterministic fault injection on either side of the link.
//
// The device fleet is simulated: `serve` fabricates and enrolls -chips
// chips derived from -seed, registering them as chip-0, chip-1, …; `auth`
// re-derives the same silicon from the same seed, so a client started with
// matching -seed/-xor flags is the genuine device and one started with
// -impostor is a counterfeit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/faultnet"
	"xorpuf/internal/health"
	"xorpuf/internal/keyex"
	"xorpuf/internal/netauth"
	"xorpuf/internal/registry"
	"xorpuf/internal/registry/fleet"
	"xorpuf/internal/registry/rebalance"
	"xorpuf/internal/registry/repl"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/telemetry"
	"xorpuf/internal/telemetry/dtrace"
	"xorpuf/internal/telemetry/history"
	"xorpuf/internal/telemetry/slo"
)

// faultFlags registers the shared fault-injection knobs and returns a
// loader that builds the config after flag parsing.
func faultFlags(fs *flag.FlagSet) func() faultnet.Config {
	seed := fs.Uint64("fault-seed", 1, "fault-injection rng seed")
	reset := fs.Float64("fault-reset", 0, "probability of an injected connection reset per I/O op")
	corrupt := fs.Float64("fault-corrupt", 0, "probability of one corrupted byte per write")
	stall := fs.Float64("fault-stall", 0, "probability of a stalled I/O op")
	stallFor := fs.Duration("fault-stall-for", 500*time.Millisecond, "stall duration")
	partial := fs.Float64("fault-partial", 0, "probability of a partial write followed by a reset")
	latency := fs.Duration("fault-latency", 0, "max uniform latency added per I/O op")
	return func() faultnet.Config {
		return faultnet.Config{
			Seed:             *seed,
			ResetProb:        *reset,
			CorruptProb:      *corrupt,
			StallProb:        *stall,
			Stall:            *stallFor,
			PartialWriteProb: *partial,
			MaxLatency:       *latency,
		}
	}
}

func (c netConfig) chip(i int, impostor bool) *silicon.Chip {
	src := rng.New(c.seed).Fork("chip", i)
	if impostor {
		src = rng.New(^c.seed).Fork("counterfeit", i)
	}
	return silicon.NewChip(src, silicon.DefaultParams(), c.xor)
}

type netConfig struct {
	seed uint64
	xor  int
}

func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7410", "listen address")
	chips := fs.Int("chips", 2, "number of simulated chips to enroll and register (0 = none; e.g. a migration target)")
	xorWidth := fs.Int("xor", 6, "XOR width of each chip")
	n := fs.Int("n", 100, "challenges per authentication")
	seed := fs.Uint64("seed", 1, "simulation seed (must match the auth side)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-message I/O deadline")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
	maxConns := fs.Int("maxconns", 0, "concurrent session cap (0 = unlimited)")
	lockout := fs.Int("lockout", 5, "consecutive denials before a chip is locked out (0 = off)")
	throttle := fs.Duration("throttle", 0, "minimum interval between attempts per chip (0 = off)")
	budget := fs.Int("budget", 0, "lifetime challenge budget per chip (0 = unlimited)")
	keyexOn := fs.Bool("keyex", false, "enable the reverse fuzzy-extractor key exchange (encrypted sessions)")
	keyexM := fs.Int("keyex-m", 8, "key exchange BCH field degree m (code length 2^m−1 challenges per derivation)")
	keyexT := fs.Int("keyex-t", 12, "key exchange BCH correction capability t")
	state := fs.String("state", "", "registry state directory (empty = in-memory; set to survive restarts)")
	admin := fs.String("admin", "", "admin HTTP address serving /metrics, /healthz, /traces, /debug/pprof (empty = off)")
	workers := fs.Int("workers", 0, "enrollment worker-pool size (0 = GOMAXPROCS)")
	autoReenroll := fs.Bool("auto-reenroll", false, "automatically re-enroll chips the drift detectors quarantine")
	sample := fs.Duration("sample", 2*time.Second, "telemetry sampling / SLO evaluation interval (0 = SLO plane off)")
	attackLockout := fs.Bool("attack-lockout", false, "force-lock any chip whose suspected-modeling-attack alert fires")
	primaryAddr := fs.String("primary", "", "replication listen address: serve as a replication primary for followers")
	followerAddr := fs.String("follower", "", "primary's replication address: replicate instead of serving (auth starts on promotion)")
	replQuorum := fs.Int("repl-quorum", 1, "follower acks required before an issued challenge leaves the server (with -primary)")
	replStrict := fs.Bool("repl-strict", false, "fail issuance when the quorum cannot ack, instead of degrading to async (with -primary)")
	replFault := fs.Bool("repl-fault", false, "apply the -fault-* chaos knobs to the replication link instead of the auth port")
	migrateListen := fs.String("migrate-listen", "", "listen address for inbound chip-range migrations (empty = off; see \"puflab rebalance\")")
	v2 := fs.Bool("v2", true, "accept binary wire protocol v2 (JSON v1 clients keep working either way)")
	fault := faultFlags(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *primaryAddr != "" && *followerAddr != "" {
		fmt.Fprintln(os.Stderr, "puflab serve: -primary and -follower are mutually exclusive")
		os.Exit(2)
	}
	if *followerAddr != "" && *admin == "" {
		fmt.Fprintln(os.Stderr, "puflab serve: -follower needs -admin (promotion happens via POST /repl/promote)")
		os.Exit(2)
	}
	if *followerAddr != "" && *autoReenroll {
		fmt.Fprintln(os.Stderr, "puflab serve: -auto-reenroll is a primary-side repair; a follower must not mutate its registry")
		os.Exit(2)
	}
	if *followerAddr != "" && *migrateListen != "" {
		fmt.Fprintln(os.Stderr, "puflab serve: -migrate-listen installs chips locally; a follower must not mutate its registry")
		os.Exit(2)
	}

	// Tag every span this process records with its role and auth address,
	// so `puflab trace collect` can tell the shard apart from the follower
	// it fails over to.
	if *followerAddr != "" {
		dtrace.SetService("follower@" + *addr)
	} else {
		dtrace.SetService("shard@" + *addr)
	}

	// The model database lives in a registry keyed by *seed+1 (selector
	// streams); with -state it persists enrollments AND the never-reuse
	// challenge history across server restarts.
	openStart := time.Now()
	reg, err := registry.Open(*state, registry.Options{Seed: *seed + 1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab serve: opening registry: %v\n", err)
		os.Exit(1)
	}
	defer reg.Close()
	if recovered := reg.Len(); recovered > 0 {
		fmt.Printf("recovered %d chips from %s in %v\n",
			recovered, *state, time.Since(openStart).Round(time.Millisecond))
	}
	srv := netauth.NewServerWithRegistry(*n, *seed+1, reg)
	srv.SetTimeout(*timeout)
	srv.SetDrainTimeout(*drain)
	srv.SetMaxConns(*maxConns)
	srv.SetLockout(*lockout)
	srv.SetThrottle(*throttle)
	srv.SetChallengeBudget(*budget)
	srv.SetV2(*v2)
	if !*v2 {
		fmt.Println("binary wire protocol v2 disabled: v2 clients will negotiate down to JSON")
	}
	if *keyexOn {
		kcfg := keyex.Config{M: *keyexM, T: *keyexT}
		if err := srv.SetKeyExchange(kcfg); err != nil {
			fmt.Fprintf(os.Stderr, "puflab serve: key exchange config: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("key exchange enabled: BCH(m=%d,t=%d), %d challenges burned per key derivation\n",
			*keyexM, *keyexT, kcfg.N())
	}

	// A follower never enrolls: its whole registry arrives from the primary
	// (snapshot, then the tailed log), and local mutations would fork it.
	// -chips 0 also skips enrollment: a migration target starts empty and
	// receives its whole fleet from rebalancing sources.
	if *followerAddr == "" && *chips > 0 {
		rep, err := fleet.Run(fleet.Config{
			Chips:        *chips,
			Workers:      *workers,
			XORWidth:     *xorWidth,
			Seed:         *seed,
			Enroll:       core.DefaultEnrollConfig(),
			Budget:       *budget,
			SkipExisting: true, // resume over recovered state
			Progress:     fleetProgress(*chips),
		}, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab serve: fleet enrollment: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("enrolled %d chips (%d already present) in %v — %.1f chips/s\n",
			rep.Enrolled, rep.Skipped, rep.Duration.Round(time.Millisecond), rep.PerSecond)
	}

	// Health transitions are always reported; with -auto-reenroll a
	// quarantined chip is also repaired in place (re-measured, refit,
	// swapped) without restarting the server.
	var repair *fleet.ReEnroller
	if *autoReenroll {
		nc := netConfig{seed: *seed, xor: *xorWidth}
		repair, err = fleet.NewReEnroller(reg, fleet.ReEnrollConfig{
			Seed:   *seed,
			Budget: *budget,
			Chip: func(id string) (*silicon.Chip, error) {
				var idx int
				if _, err := fmt.Sscanf(id, "chip-%d", &idx); err != nil {
					return nil, fmt.Errorf("cannot derive fleet index from id %q", id)
				}
				return nc.chip(idx, false), nil
			},
			OnResult: func(id string, err error) {
				if err != nil {
					fmt.Fprintf(os.Stderr, "puflab serve: auto re-enroll %s: %v\n", id, err)
					return
				}
				fmt.Printf("health: %s re-enrolled and restored to service\n", id)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab serve: %v\n", err)
			os.Exit(1)
		}
	}
	srv.SetHealthHandler(func(ev health.Event) {
		fmt.Printf("health: %s %v → %v (%s)\n", ev.ChipID, ev.From, ev.To, ev.Cause)
		if repair != nil {
			repair.Handle(ev)
		}
	})

	// Replication roles.  A primary ships its journal to followers and gates
	// issuance on their acks; a follower tails the primary into this
	// process's registry and serves no authentication until promoted.
	var prim *repl.Primary
	var foll *repl.Follower
	var follCancel context.CancelFunc
	if *primaryAddr != "" {
		replLn, err := net.Listen("tcp", *primaryAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab serve: replication listener: %v\n", err)
			os.Exit(1)
		}
		if *replFault {
			replLn = faultnet.WrapListener(replLn, fault())
			fmt.Printf("fault injection active on the replication link: %+v\n", fault())
		}
		prim = repl.NewPrimary(reg, repl.PrimaryConfig{Quorum: *replQuorum, Strict: *replStrict})
		go func() {
			if err := prim.Serve(replLn); err != nil {
				fmt.Fprintf(os.Stderr, "puflab serve: replication primary: %v\n", err)
			}
		}()
		fmt.Printf("replication primary on %s (quorum=%d, strict=%v)\n", replLn.Addr(), *replQuorum, *replStrict)
	}
	if *followerAddr != "" {
		var follCfg repl.FollowerConfig
		if *replFault {
			follCfg.Dial = faultnet.NewDialer(fault()).DialContext
			fmt.Printf("fault injection active on the replication link: %+v\n", fault())
		}
		foll = repl.NewFollower(reg, *followerAddr, follCfg)
		var follCtx context.Context
		follCtx, follCancel = context.WithCancel(context.Background())
		go foll.Run(follCtx)
		fmt.Printf("replicating from %s; authentication serving deferred until promotion\n", *followerAddr)
	}

	// Rebalancing.  The acceptor serves INBOUND migrations (this process is
	// the target: snapshot install, delta apply, cutover journal); the
	// manager owns at most one OUTBOUND migration at a time, driven through
	// the admin plane by `puflab rebalance`.
	var migAcc *rebalance.Acceptor
	if *migrateListen != "" {
		migLn, err := net.Listen("tcp", *migrateListen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab serve: migration listener: %v\n", err)
			os.Exit(1)
		}
		migAcc = rebalance.NewAcceptor(reg, migLn, rebalance.AcceptorConfig{
			Logf: func(format string, args ...interface{}) {
				fmt.Printf("rebalance: "+format+"\n", args...)
			},
		})
		fmt.Printf("migration acceptor on %s (inbound chip-range transfers)\n", migLn.Addr())
	}
	rebal := &rebalanceManager{reg: reg}

	// SLO plane: a sampler snapshots the process-wide registry (runtime
	// collector included) on every tick; the burn-rate engine and the
	// attack-pattern anomaly detector evaluate on the same timeline.
	sampler := history.NewSampler(telemetry.Default, history.Options{
		Collectors: []func(){telemetry.RuntimeCollector(telemetry.Default, time.Now)},
	})
	engine := slo.NewEngine(sampler, slo.DefaultRules())
	// Latency alerts carry a concrete offending trace ID: the engine pulls
	// each rule's histogram exemplar on every evaluation.
	engine.SetExemplarSource(func(hist string) (string, float64) {
		if h := telemetry.Default.FindHistogram(hist); h != nil {
			return h.Exemplar()
		}
		return "", 0
	})
	detector := slo.NewAnomalyDetector(slo.AnomalyConfig{}, sampler.Now)
	engine.Attach(detector)
	srv.SetTraceObserver(func(tr telemetry.SessionTrace) {
		detector.ObserveSession(tr.ChipID, tr.Challenges, tr.Verdict != "approved")
	})
	engine.OnEvent(func(ev slo.Event) {
		fmt.Printf("alert: %s [%s] %s → %s (%s)\n", ev.Name, ev.Severity, ev.FromState, ev.ToState, ev.Reason)
		if *attackLockout && ev.ToState == "firing" {
			if chip := slo.ChipIDFromAlert(ev.Name); chip != "" && srv.ForceLockout(chip) {
				fmt.Printf("alert: %s locked out (suspected modeling attack)\n", chip)
			}
		}
	})
	var sloStop chan struct{}
	if *sample > 0 {
		sloStop = make(chan struct{})
		go func() {
			tick := time.NewTicker(*sample)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					sampler.Tick()
					engine.Evaluate()
				case <-sloStop:
					return
				}
			}
		}()
	}

	// Authentication serving is a closure so a follower can defer it to the
	// moment of promotion; every other role starts it immediately.
	done := make(chan error, 1)
	var authOnce sync.Once
	var authStarted atomic.Bool
	startAuth := func() error {
		var startErr error
		authOnce.Do(func() {
			ln, err := net.Listen("tcp", *addr)
			if err != nil {
				startErr = err
				return
			}
			var serveLn net.Listener = ln
			if cfg := fault(); !*replFault && (cfg.ResetProb > 0 || cfg.CorruptProb > 0 || cfg.StallProb > 0 ||
				cfg.PartialWriteProb > 0 || cfg.MaxLatency > 0) {
				serveLn = faultnet.WrapListener(ln, cfg)
				fmt.Printf("fault injection active: %+v\n", cfg)
			}
			fmt.Printf("verification server on %s (n=%d, lockout=%d, throttle=%v, budget=%d)\n",
				ln.Addr(), *n, *lockout, *throttle, *budget)
			authStarted.Store(true)
			go func() { done <- srv.Serve(serveLn) }()
		})
		return startErr
	}

	// Observability plane: metrics, health, session traces, time series,
	// SLOs, alerts, replication state, and pprof on a separate listener so
	// operational scraping never competes with (or exposes) the
	// authentication port.
	var adminLn net.Listener
	if *admin != "" {
		adminLn, err = net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab serve: admin listener: %v\n", err)
			os.Exit(1)
		}
		endpoints := []telemetry.Endpoint{
			{Path: "/trace/spans", Handler: dtrace.Handler(dtrace.Default)},
			{Path: "/timeseries", Handler: sampler.Handler()},
			{Path: "/slo", Handler: engine.SLOHandler()},
			{Path: "/alerts", Handler: engine.AlertsHandler()},
			{Path: "/repl", Handler: replStatusHandler(prim, foll)},
			{Path: "/rebalance", Handler: rebal.statusHandler()},
			{Path: "/rebalance/start", Handler: rebal.startHandler()},
			{Path: "/rebalance/abort", Handler: rebal.abortHandler()},
		}
		if foll != nil {
			endpoints = append(endpoints, telemetry.Endpoint{
				Path: "/repl/promote", Handler: promoteHandler(foll, startAuth),
			})
		}
		mux := telemetry.AdminMux(telemetry.Default, srv.Tracer(), func() any {
			approved, denied := srv.Stats()
			payload := map[string]any{
				"status":   "ok",
				"chips":    reg.Len(),
				"approved": approved,
				"denied":   denied,
			}
			if doc := replStatusDocFor(prim, foll); doc.Role != "standalone" {
				payload["repl"] = doc
				// A degraded replication link is a health event: the
				// never-reuse guarantee is running on one copy.
				if doc.Follower != nil && doc.Follower.State == repl.StateDegraded {
					payload["status"] = "degraded"
				}
			}
			return payload
		}, endpoints...)
		go func() {
			if err := http.Serve(adminLn, mux); err != nil && !isClosedErr(err) {
				fmt.Fprintf(os.Stderr, "puflab serve: admin server: %v\n", err)
			}
		}()
		fmt.Printf("admin plane on http://%s (/metrics /healthz /traces /trace/spans /timeseries /slo /alerts /repl /rebalance /debug/pprof)\n", adminLn.Addr())
	}

	if *followerAddr == "" {
		if err := startAuth(); err != nil {
			fmt.Fprintf(os.Stderr, "puflab serve: %v\n", err)
			os.Exit(1)
		}
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("\n%v: draining in-flight sessions (signal again to force exit)…\n", s)
		go func() {
			<-sig
			// A second signal abandons the drain; the WAL makes this safe —
			// recovery replays it, exactly like a kill -9.
			fmt.Fprintln(os.Stderr, "puflab serve: forced exit; state recovers from the WAL")
			os.Exit(1)
		}()
		srv.Close()
		if authStarted.Load() {
			<-done
		}
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab serve: %v\n", err)
			os.Exit(1)
		}
	}
	if follCancel != nil {
		follCancel() // stop replicating (no-op after promotion)
	}
	if migAcc != nil {
		_ = migAcc.Close() // drop inbound migration sessions (sources retry)
	}
	if prim != nil {
		prim.Close() // drop follower links and detach the commit gate
	}
	if repair != nil {
		repair.Close() // finish any in-flight re-enrollment before flushing
	}
	// Shutdown order matters: stop the admin plane first so no scrape races
	// the final snapshot, then persist that snapshot next to the WAL, then
	// flush the registry.
	if adminLn != nil {
		_ = adminLn.Close()
	}
	if sloStop != nil {
		close(sloStop)
	}
	// One last sample + evaluation so the final state reflects traffic that
	// landed after the last ticker fire.
	sampler.Tick()
	engine.Evaluate()
	approved, denied := srv.Stats()
	fmt.Printf("decision log: %d approved, %d denied\n", approved, denied)
	if *state != "" {
		if err := writeFinalMetrics(*state); err != nil {
			fmt.Fprintf(os.Stderr, "puflab serve: final metrics snapshot: %v\n", err)
		}
		if err := writeFinalSLO(*state, engine); err != nil {
			fmt.Fprintf(os.Stderr, "puflab serve: final SLO snapshot: %v\n", err)
		}
		if err := writeFinalSpans(*state); err != nil {
			fmt.Fprintf(os.Stderr, "puflab serve: final span snapshot: %v\n", err)
		}
	}
	// Flush explicitly so shutdown compacts the WAL into a snapshot; the
	// deferred Close is then a no-op.
	if err := reg.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "puflab serve: flushing registry: %v\n", err)
		os.Exit(1)
	}
	if *state != "" {
		fmt.Printf("registry flushed to %s\n", *state)
	}
}

// writeFinalMetrics persists the closing metrics snapshot beside the WAL, so
// a post-mortem of a stopped server still has its last counters.
func writeFinalMetrics(stateDir string) error {
	b, err := telemetry.Default.Snapshot().MarshalJSONIndent()
	if err != nil {
		return err
	}
	path := filepath.Join(stateDir, "metrics_final.json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("final metrics snapshot written to %s\n", path)
	return nil
}

// writeFinalSLO persists the engine's closing alert/objective state beside
// metrics_final.json, so a post-mortem also sees what was firing at exit.
func writeFinalSLO(stateDir string, engine *slo.Engine) error {
	b, err := json.MarshalIndent(engine.Final(), "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(stateDir, "slo_final.json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("final SLO snapshot written to %s\n", path)
	return nil
}

// writeFinalSpans persists the closing distributed-trace span ring beside
// metrics_final.json, so `puflab trace show -in` works on a stopped server.
func writeFinalSpans(stateDir string) error {
	b, err := dtrace.Default.MarshalJSONIndent()
	if err != nil {
		return err
	}
	path := filepath.Join(stateDir, "spans_final.json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("final span snapshot written to %s\n", path)
	return nil
}

// replStatusDoc is the /repl payload (and the "repl" key in /healthz).
type replStatusDoc struct {
	Role     string               `json:"role"`
	Primary  *repl.PrimaryStatus  `json:"primary,omitempty"`
	Follower *repl.FollowerStatus `json:"follower,omitempty"`
}

func replStatusDocFor(prim *repl.Primary, foll *repl.Follower) replStatusDoc {
	switch {
	case prim != nil:
		st := prim.Status()
		return replStatusDoc{Role: "primary", Primary: &st}
	case foll != nil:
		st := foll.Status()
		return replStatusDoc{Role: "follower", Follower: &st}
	default:
		return replStatusDoc{Role: "standalone"}
	}
}

// replStatusHandler serves /repl: the process's replication role and state.
func replStatusHandler(prim *repl.Primary, foll *repl.Follower) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(replStatusDocFor(prim, foll))
	})
}

// promoteHandler serves POST /repl/promote on a follower: stop replicating
// and start serving authentication from the replicated registry.  The call
// is idempotent — repeated posts re-report the promotion.
func promoteHandler(foll *repl.Follower, startAuth func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "promotion requires POST", http.StatusMethodNotAllowed)
			return
		}
		seq := foll.Promote()
		if err := startAuth(); err != nil {
			http.Error(w, fmt.Sprintf("promoted at seq %d but auth serving failed: %v", seq, err),
				http.StatusInternalServerError)
			return
		}
		fmt.Printf("promoted: serving authentication from replicated state at seq %d\n", seq)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"promoted": true, "seq": seq})
	})
}

// isClosedErr reports whether err is the routine "use of closed network
// connection" an http.Serve returns when its listener is shut down.
func isClosedErr(err error) bool {
	return errors.Is(err, http.ErrServerClosed) || errors.Is(err, net.ErrClosed)
}

func runAuth(args []string) {
	fs := flag.NewFlagSet("auth", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7410", "server address")
	chipIdx := fs.Int("chip", 0, "chip index (authenticates as chip-<index>)")
	xorWidth := fs.Int("xor", 6, "XOR width (must match the serve side)")
	seed := fs.Uint64("seed", 1, "simulation seed (must match the serve side)")
	impostor := fs.Bool("impostor", false, "present counterfeit silicon for the chip ID")
	sessions := fs.Int("sessions", 1, "number of authentication sessions to run")
	timeout := fs.Duration("timeout", 5*time.Second, "per-message I/O deadline")
	attempts := fs.Int("attempts", 4, "retry budget per session (including the first try)")
	baseDelay := fs.Duration("base-delay", 50*time.Millisecond, "initial retry backoff")
	maxDelay := fs.Duration("max-delay", 2*time.Second, "retry backoff cap")
	vdd := fs.Float64("vdd", silicon.Nominal.VDD, "supply voltage the device is read at")
	tempC := fs.Float64("temp", silicon.Nominal.TempC, "temperature (°C) the device is read at")
	encrypt := fs.Bool("encrypt", false, "establish a PUF-derived session key first and authenticate inside the encrypted channel (server must run -keyex)")
	proto := fs.String("proto", "auto", "wire protocol: auto (binary v2, fall back to JSON), 1 (JSON only), 2 (binary only, no fallback)")
	batch := fs.Int("batch", 1, "sessions pipelined per round trip over one v2 connection (ignored with -proto 1 or -encrypt)")
	traced := fs.Bool("trace", false, "mint a distributed-trace context, propagate it to the server, and print the trace ID")
	fault := faultFlags(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	nc := netConfig{seed: *seed, xor: *xorWidth}
	chip := nc.chip(*chipIdx, *impostor)
	policy := netauth.RetryPolicy{
		MaxAttempts: *attempts,
		BaseDelay:   *baseDelay,
		MaxDelay:    *maxDelay,
		Multiplier:  2,
		Jitter:      0.5,
	}
	client := &netauth.Client{
		Addr:    *addr,
		ChipID:  fmt.Sprintf("chip-%d", *chipIdx),
		Device:  chip,
		Cond:    silicon.Condition{VDD: *vdd, TempC: *tempC},
		Timeout: *timeout,
		Policy:  policy,
	}
	if *traced {
		// The device is the trace root: every server-side span nests under
		// this context, and the printed ID is what `puflab trace show`
		// takes.  All -sessions share one trace — each session is a
		// separate subtree under it.
		tc := dtrace.Context{Trace: dtrace.NewTraceID(), Span: dtrace.NewSpanID()}
		client.Trace = tc.String()
		fmt.Printf("trace ID: %s\n", tc.Trace)
	}
	var v2c *netauth.V2Client
	switch *proto {
	case "1":
	case "auto", "2":
		v2c = &netauth.V2Client{
			Addr:      client.Addr,
			ChipID:    client.ChipID,
			Device:    chip,
			Cond:      client.Cond,
			Timeout:   *timeout,
			Policy:    policy,
			RequireV2: *proto == "2",
			Trace:     client.Trace,
		}
		defer v2c.Close()
	default:
		fmt.Fprintf(os.Stderr, "puflab auth: -proto must be auto, 1, or 2 (got %q)\n", *proto)
		os.Exit(2)
	}
	if cfg := fault(); cfg.ResetProb > 0 || cfg.CorruptProb > 0 || cfg.StallProb > 0 ||
		cfg.PartialWriteProb > 0 || cfg.MaxLatency > 0 {
		dc := faultnet.NewDialer(cfg).DialContext
		client.DialContext = dc
		if v2c != nil {
			v2c.DialContext = dc
		}
		fmt.Printf("fault injection active: %+v\n", cfg)
	}
	authenticate, establish := client.Authenticate, client.Establish
	if v2c != nil {
		authenticate, establish = v2c.Authenticate, v2c.Establish
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if v2c != nil && !*encrypt && *batch > 1 {
		runAuthBatched(ctx, v2c, *sessions, *batch)
		return
	}

	exitCode := 0
	for i := 0; i < *sessions; i++ {
		start := time.Now()
		var res netauth.Result
		var err error
		if *encrypt {
			var ss *netauth.SecureSession
			ss, err = establish(ctx)
			if err == nil {
				fmt.Printf("session %d: key established (%s, %d challenges, %d bits corrected)\n",
					i+1, ss.Result.Cipher, ss.Result.Challenges, ss.Result.Corrected)
				res, err = ss.Authenticate()
				_ = ss.Close()
			}
		} else {
			res, err = authenticate(ctx)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		switch {
		case err != nil:
			kind := "terminal"
			if netauth.Transient(err) {
				kind = "retry budget exhausted"
			}
			fmt.Printf("session %d: FAILED (%s) after %d attempt(s) in %v: %v\n",
				i+1, kind, res.Attempts, elapsed, err)
			exitCode = 1
			if !netauth.Transient(err) {
				os.Exit(1)
			}
		case res.Approved:
			fmt.Printf("session %d: APPROVED (%d/%d mismatches, %d attempt(s), %v)\n",
				i+1, res.Mismatches, res.Challenges, res.Attempts, elapsed)
		default:
			fmt.Printf("session %d: DENIED (%d/%d mismatches, %d attempt(s), %v)\n",
				i+1, res.Mismatches, res.Challenges, res.Attempts, elapsed)
			exitCode = 1
		}
	}
	if v2c != nil && v2c.FellBack() {
		fmt.Println("note: server speaks protocol v1 only; sessions ran over the JSON fallback")
	}
	os.Exit(exitCode)
}

// runAuthBatched drives the pipelined arm of `puflab auth`: batches of
// sessions multiplexed over one persistent v2 connection, reporting
// aggregate throughput instead of per-session latency.
func runAuthBatched(ctx context.Context, c *netauth.V2Client, sessions, batch int) {
	exitCode := 0
	approved, denied := 0, 0
	start := time.Now()
	for done := 0; done < sessions; {
		k := batch
		if rem := sessions - done; rem < k {
			k = rem
		}
		results, err := c.AuthenticateBatch(ctx, k)
		if err != nil {
			kind := "terminal"
			if netauth.Transient(err) {
				kind = "retry budget exhausted"
			}
			fmt.Printf("batch of %d (after %d sessions): FAILED (%s): %v\n", k, done, kind, err)
			os.Exit(1)
		}
		for _, res := range results {
			done++
			if res.Approved {
				approved++
			} else {
				denied++
				fmt.Printf("session %d: DENIED (%d/%d mismatches)\n",
					done, res.Mismatches, res.Challenges)
				exitCode = 1
			}
		}
	}
	elapsed := time.Since(start)
	rate := float64(approved+denied) / elapsed.Seconds()
	fmt.Printf("%d sessions in batches of %d: %d approved, %d denied in %v (%.0f sessions/sec)\n",
		sessions, batch, approved, denied, elapsed.Round(time.Millisecond), rate)
	if c.FellBack() {
		fmt.Println("note: server speaks protocol v1 only; sessions ran over the JSON fallback")
	}
	os.Exit(exitCode)
}
