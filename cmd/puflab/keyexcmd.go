// keyex: establish PUF-derived session keys against a serve instance
// running with -keyex, then exercise the encrypted channel — an
// authentication inside it and an integrity-checked payload — before
// tearing the session down.  The device side is the same simulated silicon
// as `auth`: matching -seed/-xor is the genuine chip, -impostor is a
// counterfeit that cannot reproduce the key.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xorpuf/internal/faultnet"
	"xorpuf/internal/netauth"
	"xorpuf/internal/silicon"
)

func runKeyex(args []string) {
	fs := flag.NewFlagSet("keyex", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7410", "server address")
	chipIdx := fs.Int("chip", 0, "chip index (establishes as chip-<index>)")
	xorWidth := fs.Int("xor", 6, "XOR width (must match the serve side)")
	seed := fs.Uint64("seed", 1, "simulation seed (must match the serve side)")
	impostor := fs.Bool("impostor", false, "present counterfeit silicon for the chip ID")
	sessions := fs.Int("sessions", 1, "number of key-exchange sessions to run")
	timeout := fs.Duration("timeout", 10*time.Second, "per-message I/O deadline")
	vdd := fs.Float64("vdd", silicon.Nominal.VDD, "supply voltage the device is read at")
	tempC := fs.Float64("temp", silicon.Nominal.TempC, "temperature (°C) the device is read at")
	payload := fs.Int("payload", 1024, "bytes of application payload to ship over the channel (0 = none)")
	skipAuth := fs.Bool("no-auth", false, "skip the authentication exchange inside the channel")
	proto := fs.String("proto", "auto", "wire protocol for the key exchange: auto (binary v2, fall back to JSON), 1 (JSON only), 2 (binary only, no fallback)")
	fault := faultFlags(fs)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	nc := netConfig{seed: *seed, xor: *xorWidth}
	device := nc.chip(*chipIdx, *impostor)
	cond := silicon.Condition{VDD: *vdd, TempC: *tempC}
	chipID := fmt.Sprintf("chip-%d", *chipIdx)
	client := &netauth.Client{
		Addr:    *addr,
		ChipID:  chipID,
		Device:  device,
		Cond:    cond,
		Timeout: *timeout,
	}
	var v2c *netauth.V2Client
	switch *proto {
	case "1":
	case "auto", "2":
		v2c = &netauth.V2Client{
			Addr:      *addr,
			ChipID:    chipID,
			Device:    device,
			Cond:      cond,
			Timeout:   *timeout,
			RequireV2: *proto == "2",
		}
		defer v2c.Close()
	default:
		fmt.Fprintf(os.Stderr, "puflab keyex: -proto must be auto, 1, or 2 (got %q)\n", *proto)
		os.Exit(2)
	}
	if cfg := fault(); cfg.ResetProb > 0 || cfg.CorruptProb > 0 || cfg.StallProb > 0 ||
		cfg.PartialWriteProb > 0 || cfg.MaxLatency > 0 {
		dc := faultnet.NewDialer(cfg).DialContext
		client.DialContext = dc
		if v2c != nil {
			v2c.DialContext = dc
		}
		fmt.Printf("fault injection active: %+v\n", cfg)
	}
	establish := client.Establish
	if v2c != nil {
		establish = v2c.Establish
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	exitCode := 0
	for i := 0; i < *sessions; i++ {
		start := time.Now()
		ss, err := establish(ctx)
		if err != nil {
			kind := "transient"
			if !netauth.Transient(err) {
				kind = "terminal"
			}
			fmt.Printf("session %d: FAILED (%s) in %v: %v\n",
				i+1, kind, time.Since(start).Round(time.Millisecond), err)
			exitCode = 1
			if !netauth.Transient(err) {
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("session %d: KEY ESTABLISHED %s (cipher=%s, %d challenges burned, %d bits corrected, %v)\n",
			i+1, ss.Result.Session, ss.Result.Cipher, ss.Result.Challenges,
			ss.Result.Corrected, time.Since(start).Round(time.Millisecond))

		if !*skipAuth {
			res, err := ss.Authenticate()
			switch {
			case err != nil:
				fmt.Printf("session %d: encrypted auth FAILED: %v\n", i+1, err)
				exitCode = 1
			case res.Approved:
				fmt.Printf("session %d: encrypted auth APPROVED (%d/%d mismatches)\n",
					i+1, res.Mismatches, res.Challenges)
			default:
				fmt.Printf("session %d: encrypted auth DENIED (%d/%d mismatches)\n",
					i+1, res.Mismatches, res.Challenges)
				exitCode = 1
			}
		}
		if *payload > 0 {
			data := make([]byte, *payload)
			for j := range data {
				data[j] = byte(j)
			}
			pStart := time.Now()
			if err := ss.SendPayload(data); err != nil {
				fmt.Printf("session %d: payload FAILED: %v\n", i+1, err)
				exitCode = 1
			} else {
				fmt.Printf("session %d: %d-byte payload acknowledged with matching digest in %v\n",
					i+1, *payload, time.Since(pStart).Round(time.Millisecond))
			}
		}
		if err := ss.Close(); err != nil {
			fmt.Printf("session %d: close: %v\n", i+1, err)
		}
	}
	if v2c != nil && v2c.FellBack() {
		fmt.Println("note: server speaks protocol v1 only; key exchange ran over the JSON fallback")
	}
	os.Exit(exitCode)
}
