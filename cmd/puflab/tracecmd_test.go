package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xorpuf/internal/telemetry/dtrace"
)

// fakePlane serves one process's /trace/spans dump, as a serve or gateway
// admin plane would.
func fakePlane(t *testing.T, d dtrace.Dump) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/trace/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestCollectSpansMergesAndDedups(t *testing.T) {
	tid := "00112233445566778899aabbccddeeff"
	gw := dtrace.View{TraceID: tid, SpanID: "1111111111111111", Service: "gateway@a", Name: "gateway.session"}
	shard := dtrace.View{TraceID: tid, SpanID: "2222222222222222", ParentID: "1111111111111111",
		Service: "shard@b", Name: "netauth.session"}
	a := fakePlane(t, dtrace.Dump{Service: "gateway@a", Count: 1, Spans: []dtrace.View{gw}})
	// The shard's plane also returns the gateway span (say, after a re-scrape
	// of a merged file): the duplicate must collapse.
	b := fakePlane(t, dtrace.Dump{Service: "shard@b", Count: 2, Spans: []dtrace.View{shard, gw}})

	merged, errs := collectSpans([]string{a, b}, "", 5*time.Second)
	if len(errs) != 0 {
		t.Fatalf("collect errors: %v", errs)
	}
	if len(merged.Spans) != 2 || merged.Count != 2 {
		t.Fatalf("merged %d spans, want 2: %+v", len(merged.Spans), merged.Spans)
	}
	if len(merged.Services) != 2 {
		t.Fatalf("services = %v, want both planes", merged.Services)
	}

	// An unreachable plane is an error, not a failed merge.
	merged, errs = collectSpans([]string{a, "127.0.0.1:1"}, "", 200*time.Millisecond)
	if len(errs) != 1 || len(merged.Spans) != 1 {
		t.Fatalf("partial collect: %d spans, errs %v", len(merged.Spans), errs)
	}
}

func TestRenderTreeCrossProcess(t *testing.T) {
	tid := "00112233445566778899aabbccddeeff"
	now := time.Now()
	spans := []dtrace.View{
		// The device root was never collected: gateway.session's parent is
		// unknown and it must render as the tree root.
		{TraceID: tid, SpanID: "aaaaaaaaaaaaaaaa", ParentID: "ffffffffffffffff",
			Service: "gateway@gw", Name: "gateway.session", Start: now, Status: "ok"},
		{TraceID: tid, SpanID: "bbbbbbbbbbbbbbbb", ParentID: "aaaaaaaaaaaaaaaa",
			Service: "gateway@gw", Name: "gateway.hop", Start: now.Add(time.Millisecond), Status: "ok",
			Attrs: map[string]string{"backend": "127.0.0.1:7410"}},
		{TraceID: tid, SpanID: "cccccccccccccccc", ParentID: "aaaaaaaaaaaaaaaa",
			Service: "shard@s1", Name: "netauth.session", Start: now.Add(2 * time.Millisecond), Status: "ok"},
		{TraceID: tid, SpanID: "dddddddddddddddd", ParentID: "cccccccccccccccc",
			Service: "shard@s1", Name: "repl.quorum_wait", Start: now.Add(3 * time.Millisecond)},
		{TraceID: tid, SpanID: "eeeeeeeeeeeeeeee", ParentID: "dddddddddddddddd",
			Service: "follower@f1", Name: "repl.apply_ack", Start: now.Add(4 * time.Millisecond)},
	}
	var b strings.Builder
	procs := renderTree(&b, spans)
	if procs != 3 {
		t.Fatalf("renderTree counted %d processes, want 3 (gateway, shard, follower)", procs)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines, want header + 5 spans:\n%s", len(lines), out)
	}
	// Indentation encodes the parent chain: each level nests two spaces
	// deeper than its parent.
	depth := func(line string) int {
		return (len(line) - len(strings.TrimLeft(line, " "))) / 2
	}
	wantDepth := map[string]int{
		"gateway.session":  1,
		"gateway.hop":      2,
		"netauth.session":  2,
		"repl.quorum_wait": 3,
		"repl.apply_ack":   4,
	}
	for name, want := range wantDepth {
		found := false
		for _, line := range lines[1:] {
			if strings.Contains(line, name) {
				found = true
				if got := depth(line); got != want {
					t.Errorf("%s rendered at depth %d, want %d:\n%s", name, got, want, out)
				}
			}
		}
		if !found {
			t.Errorf("%s missing from rendering:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "backend=127.0.0.1:7410") {
		t.Errorf("hop attrs not rendered:\n%s", out)
	}
}
