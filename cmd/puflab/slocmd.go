// slo: one-shot evaluation of a running serve instance's SLO plane —
// fetch /slo and /alerts from the admin listener, render the objective
// table and any alerts, and exit nonzero if anything is firing (so shell
// scripts and CI health gates can use it directly).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"xorpuf/internal/telemetry/slo"
)

// adminGet fetches one admin-plane path and returns the body, exiting the
// process on transport or HTTP errors (these commands are terminal tools).
func adminGet(client *http.Client, addr, path string) []byte {
	url := "http://" + addr + path
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab: fetching %s: %v\n", url, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab: reading %s: %v\n", url, err)
		os.Exit(1)
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "puflab: %s returned %s\n%s", url, resp.Status, body)
		os.Exit(1)
	}
	return body
}

// alertsDoc mirrors the /alerts payload.
type alertsDoc struct {
	Alerts []slo.Status `json:"alerts"`
	Events []slo.Event  `json:"events"`
}

func runSLO(args []string) {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "admin HTTP address of a serve instance (its -admin flag)")
	asJSON := fs.Bool("json", false, "dump the raw /slo and /alerts JSON instead of tables")
	events := fs.Int("events", 8, "recent alert transitions to show")
	timeout := fs.Duration("timeout", 5*time.Second, "fetch timeout")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	sloBody := adminGet(client, *addr, "/slo")
	alertBody := adminGet(client, *addr, fmt.Sprintf("/alerts?events=%d", *events))

	if *asJSON {
		fmt.Printf("{\"slo\":%s,\"alerts\":%s}\n", sloBody, alertBody)
	}

	var statuses []slo.ObjectiveStatus
	if err := json.Unmarshal(sloBody, &statuses); err != nil {
		fmt.Fprintf(os.Stderr, "puflab slo: decoding /slo: %v\n", err)
		os.Exit(1)
	}
	var alerts alertsDoc
	if err := json.Unmarshal(alertBody, &alerts); err != nil {
		fmt.Fprintf(os.Stderr, "puflab slo: decoding /alerts: %v\n", err)
		os.Exit(1)
	}

	firing := 0
	for _, a := range alerts.Alerts {
		if a.State == "firing" {
			firing++
		}
	}
	if !*asJSON {
		printSLO(statuses, alerts)
	}
	if firing > 0 {
		os.Exit(1)
	}
}

// printSLO renders the objective table, the non-inactive alerts, and the
// recent transition log.
func printSLO(statuses []slo.ObjectiveStatus, alerts alertsDoc) {
	fmt.Printf("%-22s %-8s %-9s %10s %10s %10s %8s\n",
		"objective", "kind", "state", "long-burn", "short-burn", "value", "budget")
	for _, s := range statuses {
		value := "-"
		switch {
		case !s.HasData:
			value = "no data"
		case s.Kind == slo.KindRatio:
			value = fmt.Sprintf("good %.3f", s.GoodFraction)
		case s.Kind == slo.KindLatency:
			value = sig3(s.QuantileSeconds) + "s"
		case s.Kind == slo.KindGauge:
			value = sig3(s.GaugeValue)
		}
		budget := "-"
		if s.Kind == slo.KindRatio && s.HasData {
			budget = fmt.Sprintf("%.0f%%", 100*s.BudgetRemaining)
		}
		fmt.Printf("%-22s %-8s %-9s %10.2f %10.2f %10s %8s\n",
			s.Name, s.Kind, s.State, s.LongBurn, s.ShortBurn, value, budget)
	}

	active := 0
	for _, a := range alerts.Alerts {
		if a.State == "inactive" {
			continue
		}
		if active == 0 {
			fmt.Println("\nalerts")
		}
		active++
		fmt.Printf("  %-9s %-40s %s\n", a.State, a.Name, a.Reason)
	}
	if active == 0 {
		fmt.Println("\nno active alerts")
	}
	if len(alerts.Events) > 0 {
		fmt.Println("\nrecent transitions")
		for _, ev := range alerts.Events {
			fmt.Printf("  %s  %-40s %s → %s  %s\n",
				ev.At.Format("15:04:05"), ev.Name, ev.FromState, ev.ToState, ev.Reason)
		}
	}
}
