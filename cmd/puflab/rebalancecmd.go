// rebalance: drive and observe live chip-range migrations between serve
// instances, and audit the never-reuse invariant across the WAL journals
// a migration leaves behind.
//
// The data plane (snapshot + delta stream + cutover) runs between the two
// serve processes over the migration listener (`serve -migrate-listen`);
// this command only talks to the source's admin plane, which owns the
// migration lifecycle:
//
//	puflab rebalance start  -addr <src-admin> -id m1 -lo chip-3 -hi chip-6 -target <dst-migrate>
//	puflab rebalance status -addr <src-admin>
//	puflab rebalance abort  -addr <src-admin>
//	puflab rebalance audit  <wal-file> [<wal-file> ...]
//
// audit is the offline closing argument for the paper's Fig 7 never-reuse
// rule across a topology change: it replays every journal of the fleet —
// source and target, including journals from killed processes — and fails
// if any (chip, challenge-word) pair was freshly issued more than once
// anywhere in the combined history.  Migrated-burn records (the target's
// re-journaled copies of history it inherited) are verified to be copies,
// never counted as fresh issuance.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sync"
	"time"

	"xorpuf/internal/registry"
	"xorpuf/internal/registry/rebalance"
)

// rebalanceDoc is the GET /rebalance payload: the active (or most recent)
// outbound migration plus the registry's durable ownership state.
type rebalanceDoc struct {
	Epoch    uint64                   `json:"epoch"`
	Active   *rebalance.SourceStatus  `json:"active,omitempty"`
	Departed []registry.DepartedRange `json:"departed"`
	Fences   []rebalanceFence         `json:"fences"`
}

type rebalanceFence struct {
	ID string `json:"id"`
	Lo string `json:"lo"`
	Hi string `json:"hi"`
}

func runRebalance(args []string) {
	if len(args) < 1 {
		rebalanceUsage()
		os.Exit(2)
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "start":
		runRebalanceStart(rest)
	case "status":
		runRebalanceStatus(rest)
	case "abort":
		runRebalanceAbort(rest)
	case "audit":
		runRebalanceAudit(rest)
	default:
		fmt.Fprintf(os.Stderr, "puflab rebalance: unknown subcommand %q\n\n", sub)
		rebalanceUsage()
		os.Exit(2)
	}
}

func rebalanceUsage() {
	fmt.Fprintln(os.Stderr, `usage: puflab rebalance <start|status|abort|audit> [flags]

  start   begin migrating a chip range out of a serve instance
          (-addr, -id, -lo, -hi, -target, -redirect, -wait)
  status  report the migration phase and durable ownership state (-addr, -json)
  abort   abort the in-flight migration, pre-cutover only (-addr)
  audit   offline never-reuse audit over WAL journals: fails if any
          (chip, challenge) was freshly issued twice across all files`)
}

// adminPost posts to one admin-plane path and returns the body, exiting the
// process on transport errors; HTTP errors are surfaced with the body so
// the operator sees the server's refusal reason.
func adminPost(client *http.Client, addr, path string, form url.Values) ([]byte, bool) {
	u := "http://" + addr + path
	resp, err := client.PostForm(u, form)
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab: posting %s: %v\n", u, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "puflab: reading %s: %v\n", u, err)
		os.Exit(1)
	}
	return bytes.TrimSpace(body), resp.StatusCode == http.StatusOK
}

func runRebalanceStart(args []string) {
	fs := flag.NewFlagSet("rebalance start", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "admin HTTP address of the SOURCE serve instance")
	id := fs.String("id", "", "migration ID, stable across retries (required)")
	lo := fs.String("lo", "", "inclusive low chip-ID bound of the range (required)")
	hi := fs.String("hi", "", "exclusive high chip-ID bound (empty = to end of keyspace)")
	target := fs.String("target", "", "target's migration listener address, its -migrate-listen (required)")
	redirect := fs.String("redirect", "", "address departed chips are redirected to (default: -target)")
	wait := fs.Bool("wait", false, "poll until the migration reaches a terminal phase and exit accordingly")
	interval := fs.Duration("interval", 200*time.Millisecond, "poll interval with -wait")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	form := url.Values{
		"id":       {*id},
		"lo":       {*lo},
		"hi":       {*hi},
		"target":   {*target},
		"redirect": {*redirect},
	}
	body, ok := adminPost(client, *addr, "/rebalance/start", form)
	if !ok {
		fmt.Fprintf(os.Stderr, "puflab rebalance: start refused: %s\n", body)
		os.Exit(1)
	}
	fmt.Printf("migration %s started: [%s, %s) → %s\n", *id, *lo, *hi, *target)
	if !*wait {
		return
	}
	for {
		time.Sleep(*interval)
		var doc rebalanceDoc
		if err := json.Unmarshal(adminGet(client, *addr, "/rebalance"), &doc); err != nil {
			fmt.Fprintf(os.Stderr, "puflab rebalance: bad /rebalance payload: %v\n", err)
			os.Exit(1)
		}
		st := doc.Active
		if st == nil || st.MigrationID != *id {
			fmt.Fprintf(os.Stderr, "puflab rebalance: migration %s no longer reported\n", *id)
			os.Exit(1)
		}
		switch st.Phase {
		case rebalance.PhaseDone:
			fmt.Printf("migration %s done: %d chips, %d delta records, %d restarts, fence %dms, epoch %d\n",
				st.MigrationID, st.Chips, st.DeltaRecords, st.Restarts, st.FenceMillis, st.Epoch)
			return
		case rebalance.PhaseAborted, rebalance.PhaseFailed:
			fmt.Fprintf(os.Stderr, "puflab rebalance: migration %s %s: %s\n", st.MigrationID, st.Phase, st.Error)
			os.Exit(1)
		}
	}
}

func runRebalanceStatus(args []string) {
	fs := flag.NewFlagSet("rebalance status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "admin HTTP address of a serve instance")
	asJSON := fs.Bool("json", false, "dump the raw /rebalance JSON")
	timeout := fs.Duration("timeout", 5*time.Second, "fetch timeout")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	body := adminGet(client, *addr, "/rebalance")
	if *asJSON {
		os.Stdout.Write(body)
		return
	}
	var doc rebalanceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "puflab rebalance: bad /rebalance payload: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ownership epoch %d\n", doc.Epoch)
	if st := doc.Active; st != nil {
		fmt.Printf("migration %-12s [%s, %s) → %s\n", st.MigrationID, st.Lo, st.Hi, st.Target)
		fmt.Printf("  phase %s, %d chips, %d delta records, %d restarts",
			st.Phase, st.Chips, st.DeltaRecords, st.Restarts)
		if st.FenceMillis > 0 {
			fmt.Printf(", fence %dms", st.FenceMillis)
		}
		fmt.Println()
		if st.Error != "" {
			fmt.Printf("  error: %s\n", st.Error)
		}
	} else {
		fmt.Println("no outbound migration")
	}
	for _, f := range doc.Fences {
		fmt.Printf("fence    %-12s [%s, %s) — issuance paused\n", f.ID, f.Lo, f.Hi)
	}
	for _, d := range doc.Departed {
		fmt.Printf("departed [%s, %s) epoch %d → %s\n", d.Lo, d.Hi, d.Epoch, d.Redirect)
	}
}

func runRebalanceAbort(args []string) {
	fs := flag.NewFlagSet("rebalance abort", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "admin HTTP address of the SOURCE serve instance")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	body, ok := adminPost(client, *addr, "/rebalance/abort", url.Values{})
	if !ok {
		fmt.Fprintf(os.Stderr, "puflab rebalance: abort refused: %s\n", body)
		os.Exit(1)
	}
	fmt.Println("abort requested; status reports the terminal phase")
}

// runRebalanceAudit replays every given WAL and checks the global
// never-reuse invariant.  Fresh issuance records (recIssued, recKeyIssued)
// claim their (chip, word) pairs exactly once across ALL journals; the
// target's migrated-burn copies must land on pairs some journal already
// claimed — a migrated burn with no fresh original means history was lost.
func runRebalanceAudit(args []string) {
	fs := flag.NewFlagSet("rebalance audit", flag.ExitOnError)
	quiet := fs.Bool("q", false, "suppress per-file progress, print only the verdict")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "puflab rebalance audit: no WAL files given")
		os.Exit(2)
	}

	type claim struct{ file string }
	fresh := map[string]map[uint64]claim{} // chip → word → first fresh issuer
	copies := map[string][]uint64{}        // chip → migrated-burn words, resolved after all files
	var records, burns, migrated int
	duplicates := 0
	for _, path := range files {
		before := records
		err := registry.IterateWAL(path, func(seq uint64, typ byte, payload []byte) error {
			records++
			id, words, isFresh, ok := registry.RecordIssuedWords(typ, payload)
			if !ok {
				return nil
			}
			if !isFresh {
				migrated += len(words)
				copies[id] = append(copies[id], words...)
				return nil
			}
			burns += len(words)
			m := fresh[id]
			if m == nil {
				m = map[uint64]claim{}
				fresh[id] = m
			}
			for _, w := range words {
				if prev, dup := m[w]; dup {
					duplicates++
					fmt.Fprintf(os.Stderr, "REUSE: chip %s word %d issued fresh in %s and again in %s\n",
						id, w, prev.file, path)
					continue
				}
				m[w] = claim{file: path}
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab rebalance audit: %s: %v\n", path, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("%s: %d records\n", path, records-before)
		}
	}
	// Every migrated-burn copy must trace back to a fresh original somewhere.
	orphans := 0
	for id, words := range copies {
		for _, w := range words {
			if _, ok := fresh[id][w]; !ok {
				orphans++
				fmt.Fprintf(os.Stderr, "LOST HISTORY: chip %s word %d migrated but never freshly issued in any journal\n", id, w)
			}
		}
	}
	fmt.Printf("audit: %d records, %d fresh burns, %d migrated copies, %d chips\n",
		records, burns, migrated, len(fresh))
	if duplicates > 0 || orphans > 0 {
		fmt.Fprintf(os.Stderr, "audit FAILED: %d reused challenges, %d orphaned migrated burns\n", duplicates, orphans)
		os.Exit(1)
	}
	fmt.Println("audit OK: no challenge issued twice across the fleet's combined history")
}

// rebalanceManager owns the serve process's outbound migration slot: one
// live migration at a time, started and aborted through the admin plane.
// The last terminal status stays visible until the next start, so a -wait
// poller never races the slot being cleared.
type rebalanceManager struct {
	reg *registry.Registry
	mu  sync.Mutex
	src *rebalance.Source
}

func (m *rebalanceManager) start(cfg rebalance.SourceConfig) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.src != nil {
		select {
		case <-m.src.Done():
		default:
			return fmt.Errorf("migration %s is still running", m.src.Status().MigrationID)
		}
	}
	src, err := rebalance.StartSource(m.reg, cfg)
	if err != nil {
		return err
	}
	m.src = src
	return nil
}

func (m *rebalanceManager) doc() rebalanceDoc {
	doc := rebalanceDoc{
		Epoch:    m.reg.OwnershipEpoch(),
		Departed: m.reg.Departed(),
		Fences:   []rebalanceFence{},
	}
	if doc.Departed == nil {
		doc.Departed = []registry.DepartedRange{}
	}
	for _, f := range m.reg.Fences() {
		doc.Fences = append(doc.Fences, rebalanceFence{ID: f.ID, Lo: f.Lo, Hi: f.Hi})
	}
	m.mu.Lock()
	if m.src != nil {
		st := m.src.Status()
		doc.Active = &st
	}
	m.mu.Unlock()
	return doc
}

// statusHandler serves GET /rebalance.
func (m *rebalanceManager) statusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.doc())
	})
}

// startHandler serves POST /rebalance/start (form params: id, lo, hi,
// target, redirect).
func (m *rebalanceManager) startHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "starting a migration requires POST", http.StatusMethodNotAllowed)
			return
		}
		cfg := rebalance.SourceConfig{
			MigrationID: r.FormValue("id"),
			Lo:          r.FormValue("lo"),
			Hi:          r.FormValue("hi"),
			TargetAddr:  r.FormValue("target"),
			Redirect:    r.FormValue("redirect"),
			Logf: func(format string, args ...interface{}) {
				fmt.Printf("rebalance: "+format+"\n", args...)
			},
		}
		if err := m.start(cfg); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Printf("rebalance: migration %s started: [%s, %s) → %s\n", cfg.MigrationID, cfg.Lo, cfg.Hi, cfg.TargetAddr)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"started": true, "migration_id": cfg.MigrationID})
	})
}

// abortHandler serves POST /rebalance/abort.
func (m *rebalanceManager) abortHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "aborting a migration requires POST", http.StatusMethodNotAllowed)
			return
		}
		m.mu.Lock()
		src := m.src
		m.mu.Unlock()
		if src == nil {
			http.Error(w, "no migration to abort", http.StatusConflict)
			return
		}
		if err := src.Abort(); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"aborting": true})
	})
}
