// Command puflab regenerates the paper's evaluation figures from the
// simulated silicon and prints the same rows/series the paper plots.
//
// Usage:
//
//	puflab <experiment> [flags]
//
// Experiments:
//
//	fig2     soft-response distribution of one arbiter PUF
//	fig3     % stable CRPs vs XOR width (measured)
//	fig4     MLP modeling-attack accuracy sweep
//	fig8     measured vs predicted soft responses; threshold extraction
//	fig9     β threshold scaling at nominal, per chip
//	fig10    stable-challenge yield vs training-set size
//	fig11    threshold adjustment under voltage/temperature variation
//	fig12     % stable CRPs vs XOR width for all three selection regimes
//	metrics   uniqueness / reliability / uniformity panel
//	protocols paper's protocol vs refs [1],[6],[7] and classic HD
//	avalanche bit-position sensitivity of single vs XOR PUFs
//	campaign  dump a measurement dataset to CSV (-o, -corners)
//	serve     run a TCP verification server over enrolled simulated chips
//	          (-addr, -chips, -xor, -n, -lockout, -throttle, -maxconns,
//	          -budget, -drain, -state, -workers, -auto-reenroll, -admin
//	          for the observability plane, -keyex/-keyex-m/-keyex-t for
//	          the key exchange, and -fault-* chaos knobs)
//	fleet     benchmark the persistent chip registry at manufacturing scale:
//	          parallel enrollment throughput, concurrent lookups/s, and
//	          crash-recovery time (-chips, -workers, -xor, -dir, -budget,
//	          -train, -validate, -lookups, -snap-every)
//	auth      authenticate a simulated device against a serve instance
//	          (-addr, -chip, -impostor, -sessions, -attempts, -base-delay,
//	          -max-delay, -vdd, -temp, -encrypt to authenticate inside a
//	          PUF-keyed encrypted channel, and -fault-* chaos knobs)
//	keyex     establish a PUF-derived session key via the reverse fuzzy
//	          extractor and exercise the encrypted channel (-addr, -chip,
//	          -impostor, -sessions, -vdd, -temp, -payload, -no-auth;
//	          the serve side needs -keyex)
//	health    inspect and repair drift-health state in a persistent registry
//	          (report / quarantine / reenroll subcommands; -state, -chip)
//	metrics   scrape a serve instance's admin plane and pretty-print the
//	          snapshot (-addr, -raw, -json)
//	bench     measure the authentication hot path and the observability
//	          plane's overhead (-json, -o, -out, -n, -seed, -baseline,
//	          -tolerance, -best)
//	top       live terminal dashboard over a serve admin plane: windowed
//	          rates, quantiles, burn rates, alerts (-addr, -interval,
//	          -count, -window)
//	slo       one-shot SLO evaluation against a serve admin plane; exits
//	          nonzero while any alert is firing (-addr, -json, -events)
//	trace     collect distributed-trace spans from several admin planes and
//	          render one session's cross-process span tree (collect / show
//	          subcommands; -admin, -o, -in, -min-procs; "puflab auth -trace"
//	          mints the trace ID)
//	repl      inspect or drive registry replication via a serve admin plane
//	          (status / promote subcommands; -addr, -json)
//	gateway   consistent-hashing session gateway routing devices to shard
//	          owners with failover re-routing (-listen, -shard, -cooldown)
//	rebalance migrate a chip range live between serve instances and audit
//	          the never-reuse invariant across their WAL journals
//	          (start / status / abort / audit subcommands; the target needs
//	          -migrate-listen)
//	all       every experiment above (fig4 at fast scale)
//
// Common flags:
//
//	-full      run at the paper's scale (1M challenges, 10 chips; fig4
//	           sweeps n=4..11 up to 100k CRPs — hours of CPU)
//	-seed N    reseed the whole simulation (default 1)
//	-csv       emit CSV instead of aligned tables
//	-plot      fig3/fig12: ASCII log-scale chart
//
// fig4 also accepts -widths, -sizes, -testsize, -restarts and -maxiter.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"xorpuf/internal/campaign"
	"xorpuf/internal/experiments"
	"xorpuf/internal/silicon"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	switch cmd {
	case "serve":
		runServe(os.Args[2:])
		return
	case "auth":
		runAuth(os.Args[2:])
		return
	case "keyex":
		runKeyex(os.Args[2:])
		return
	case "fleet":
		runFleet(os.Args[2:])
		return
	case "health":
		runHealth(os.Args[2:])
		return
	case "metrics":
		runMetrics(os.Args[2:])
		return
	case "bench":
		runBench(os.Args[2:])
		return
	case "top":
		runTop(os.Args[2:])
		return
	case "slo":
		runSLO(os.Args[2:])
		return
	case "repl":
		runRepl(os.Args[2:])
		return
	case "gateway":
		runGateway(os.Args[2:])
		return
	case "rebalance":
		runRebalance(os.Args[2:])
		return
	case "trace":
		runTrace(os.Args[2:])
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	full := fs.Bool("full", false, "run at the paper's scale (slow)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	histogram := fs.Bool("hist", false, "fig2: also draw the ASCII histogram")
	widths := fs.String("widths", "", "fig4: comma-separated XOR widths to attack (overrides scale default)")
	sizes := fs.String("sizes", "", "fig4: comma-separated training-set sizes (overrides scale default)")
	testSize := fs.Int("testsize", 0, "fig4: test-set size (overrides scale default)")
	restarts := fs.Int("restarts", 0, "fig4: MLP restarts (overrides scale default)")
	maxIter := fs.Int("maxiter", 0, "fig4: L-BFGS iteration cap (overrides scale default)")
	out := fs.String("o", "campaign.csv", "campaign: output CSV path")
	corners := fs.Bool("corners", false, "campaign: measure at all nine V/T corners")
	plot := fs.Bool("plot", false, "fig3/fig12: draw an ASCII log-scale chart after the table")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	cfg := experiments.Fast()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Seed = *seed
	if *widths != "" {
		cfg.AttackWidths = parseInts(*widths)
	}
	if *sizes != "" {
		cfg.AttackSizes = parseInts(*sizes)
	}
	if *testSize > 0 {
		cfg.AttackTestSize = *testSize
	}
	if *restarts > 0 {
		cfg.AttackMLP.Restarts = *restarts
	}
	if *maxIter > 0 {
		cfg.AttackMLP.LBFGS.MaxIter = *maxIter
	}

	runners := map[string]func(experiments.Config) *experiments.Table{
		"fig2": func(c experiments.Config) *experiments.Table {
			r := experiments.Fig2(c)
			if *histogram {
				fmt.Println(r.Hist.Render(60))
			}
			return r.Table()
		},
		"fig3": func(c experiments.Config) *experiments.Table {
			r := experiments.Fig3(c)
			if *plot {
				fmt.Println(r.Plot(50))
			}
			return r.Table()
		},
		"fig4":  func(c experiments.Config) *experiments.Table { return experiments.Fig4(c).Table() },
		"fig8":  func(c experiments.Config) *experiments.Table { return experiments.Fig8(c).Table() },
		"fig9":  func(c experiments.Config) *experiments.Table { return experiments.Fig9(c).Table() },
		"fig10": func(c experiments.Config) *experiments.Table { return experiments.Fig10(c).Table() },
		"fig11": func(c experiments.Config) *experiments.Table { return experiments.Fig11(c).Table() },
		"fig12": func(c experiments.Config) *experiments.Table {
			r := experiments.Fig12(c)
			if *plot {
				fmt.Println(r.Plot(50))
			}
			return r.Table()
		},
		"protocols": func(c experiments.Config) *experiments.Table { return experiments.Protocols(c).Table() },
		"metrics":   func(c experiments.Config) *experiments.Table { return experiments.Metrics(c).Table() },
		"avalanche": func(c experiments.Config) *experiments.Table { return experiments.Avalanche(c).Table() },
	}

	emit := func(t *experiments.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	switch cmd {
	case "campaign":
		conds := []silicon.Condition{silicon.Nominal}
		if *corners {
			conds = silicon.Corners()
		}
		ccfg := campaign.Config{
			Seed:       cfg.Seed,
			Params:     cfg.Params,
			Chips:      cfg.Chips,
			PUFsEach:   cfg.PUFsPerChip,
			Challenges: cfg.Challenges / 10,
			Conditions: conds,
		}
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "puflab: %v\n", err)
			os.Exit(1)
		}
		start := time.Now()
		sum, err := campaign.Run(ccfg, f)
		cerr := f.Close()
		if err != nil || cerr != nil {
			fmt.Fprintf(os.Stderr, "puflab: campaign failed: %v %v\n", err, cerr)
			os.Exit(1)
		}
		fmt.Printf("campaign: %d records (%d chips × %d PUFs × %d challenges × %d conditions)\n",
			sum.Records, ccfg.Chips, ccfg.PUFsEach, ccfg.Challenges, len(conds))
		fmt.Printf("simulated evaluations: %d; stable fraction: %.4f\n", sum.Evaluations, sum.StableFrac)
		fmt.Printf("dataset written to %s in %v\n", *out, time.Since(start).Round(time.Millisecond))
		return
	case "all":
		order := []string{"fig2", "fig3", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12", "metrics", "protocols", "avalanche"}
		for _, name := range order {
			c := cfg
			if name == "fig4" && *full {
				// Keep `all -full` tractable: fig4 full-scale is
				// hours of CPU and must be requested explicitly.
				c = experiments.Fast()
				c.Seed = *seed
				fmt.Println("(fig4 runs at fast scale under `all`; use `puflab fig4 -full` for the n=4..11 sweep)")
			}
			start := time.Now()
			emit(runners[name](c))
			fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	default:
		run, ok := runners[cmd]
		if !ok {
			fmt.Fprintf(os.Stderr, "puflab: unknown experiment %q\n\n", cmd)
			usage()
			os.Exit(2)
		}
		start := time.Now()
		emit(run(cfg))
		fmt.Fprintf(os.Stderr, "[completed in %v]\n", time.Since(start).Round(time.Millisecond))
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "puflab: bad integer list entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func usage() {
	fmt.Fprintln(os.Stderr, `puflab — regenerate the DAC'17 XOR arbiter PUF evaluation

usage: puflab <experiment> [-full] [-seed N] [-csv]

experiments: fig2 fig3 fig4 fig8 fig9 fig10 fig11 fig12 metrics protocols avalanche campaign all
network:     serve auth keyex gateway (run "puflab serve -h" / "puflab auth -h" for the resilience and
             fault-injection knobs; "puflab serve -keyex" + "puflab keyex" establish PUF-derived session keys;
             "puflab serve -primary/-follower" replicates the registry; "puflab gateway" fronts the shards)
replication: repl         (status / promote against a serve admin plane; promote fails over to a follower)
rebalancing: rebalance    (live chip-range migration between serves: start / status / abort, plus an offline
             never-reuse audit over WAL journals; the target serve needs -migrate-listen)
fleet:       fleet        (persistent registry benchmark: enrollment throughput, lookups/s, recovery time)
lifecycle:   health       (drift-detector report, force-quarantine, re-enrollment; "puflab health" for usage)
observe:     metrics bench top slo trace ("puflab metrics" scrapes a serve -admin plane; "puflab bench"
             measures hot-path overhead; "puflab top" is a live dashboard; "puflab slo" gates on firing
             alerts; "puflab trace" renders one session's span tree across gateway, shard, and follower)`)
}
