// Package stats provides the descriptive statistics the experiment harness
// reports: soft-response histograms in the paper's format (exact-0.00 and
// exact-1.00 end bins plus 0.05-wide interior bins, Figs 2/8/9/11), the
// classical PUF quality metrics (uniformity, uniqueness, reliability,
// bit-aliasing), and exponential-decay fits for the 0.8ⁿ-style curves of
// Figs 3 and 12.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (n−1 denominator; 0 if n < 2).
func Std(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// MinMax returns the smallest and largest values of xs; it panics on empty
// input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics; it panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SoftHistogram accumulates soft responses the way the paper plots them:
// the exactly-0.00 and exactly-1.00 measurements (the 100 %-stable CRPs) are
// separate end bins, and the open interval (0, 1) is split into fixed-width
// interior bins.
type SoftHistogram struct {
	BinWidth float64
	Interior []int // interior bin counts over (0, 1)
	Exact0   int   // soft response exactly 0.00
	Exact1   int   // soft response exactly 1.00
	Total    int
}

// NewSoftHistogram returns a histogram with the given interior bin width
// (the paper uses 0.05).
func NewSoftHistogram(binWidth float64) *SoftHistogram {
	if binWidth <= 0 || binWidth > 1 {
		panic(fmt.Sprintf("stats: bin width %v outside (0,1]", binWidth))
	}
	n := int(math.Ceil(1/binWidth - 1e-9))
	return &SoftHistogram{BinWidth: binWidth, Interior: make([]int, n)}
}

// Add records one soft response in [0, 1].
func (h *SoftHistogram) Add(v float64) {
	switch {
	case v < 0 || v > 1 || math.IsNaN(v):
		panic(fmt.Sprintf("stats: soft response %v outside [0,1]", v))
	case v == 0:
		h.Exact0++
	case v == 1:
		h.Exact1++
	default:
		idx := int(v / h.BinWidth)
		if idx >= len(h.Interior) {
			idx = len(h.Interior) - 1
		}
		h.Interior[idx]++
	}
	h.Total++
}

// FracStable0 returns the fraction of exactly-0.00 measurements.
func (h *SoftHistogram) FracStable0() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Exact0) / float64(h.Total)
}

// FracStable1 returns the fraction of exactly-1.00 measurements.
func (h *SoftHistogram) FracStable1() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Exact1) / float64(h.Total)
}

// FracStable returns the 100 %-stable fraction (both end bins).
func (h *SoftHistogram) FracStable() float64 {
	return h.FracStable0() + h.FracStable1()
}

// Render draws an ASCII version of the histogram, one row per bin, with the
// end bins labeled as the paper labels them.
func (h *SoftHistogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	maxCount := h.Exact0
	if h.Exact1 > maxCount {
		maxCount = h.Exact1
	}
	for _, c := range h.Interior {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		maxCount = 1
	}
	var b strings.Builder
	bar := func(label string, count int) {
		n := count * width / maxCount
		fmt.Fprintf(&b, "%-12s %8d  %s\n", label, count, strings.Repeat("#", n))
	}
	bar("=0.00", h.Exact0)
	for i, c := range h.Interior {
		lo := float64(i) * h.BinWidth
		hi := lo + h.BinWidth
		if hi > 1 {
			hi = 1
		}
		bar(fmt.Sprintf("(%.2f,%.2f)", lo, hi), c)
	}
	bar("=1.00", h.Exact1)
	return b.String()
}

// ValueHistogram is a plain fixed-bin histogram over an arbitrary range,
// used for the model-prediction distributions of Figs 8/9/11 (which extend
// beyond [0, 1]).
type ValueHistogram struct {
	Lo, Hi   float64
	BinWidth float64
	Counts   []int
	Below    int // values < Lo
	Above    int // values > Hi
	Total    int
}

// NewValueHistogram covers [lo, hi] with the given bin width.
func NewValueHistogram(lo, hi, binWidth float64) *ValueHistogram {
	if hi <= lo || binWidth <= 0 {
		panic("stats: invalid value-histogram range")
	}
	n := int(math.Ceil((hi - lo) / binWidth))
	return &ValueHistogram{Lo: lo, Hi: hi, BinWidth: binWidth, Counts: make([]int, n)}
}

// Add records one value.
func (h *ValueHistogram) Add(v float64) {
	h.Total++
	switch {
	case v < h.Lo:
		h.Below++
	case v > h.Hi:
		h.Above++
	default:
		idx := int((v - h.Lo) / h.BinWidth)
		if idx >= len(h.Counts) {
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// ExpFit fits frac ≈ A·baseⁿ by least squares on log(frac); points with
// frac ≤ 0 are skipped.  It returns the base, the prefactor A, and the
// number of points used.  This is how the 0.800ⁿ/0.545ⁿ/0.342ⁿ annotations
// of Figs 3 and 12 are produced.
func ExpFit(ns []int, fracs []float64) (base, prefactor float64, used int) {
	if len(ns) != len(fracs) {
		panic("stats: ExpFit length mismatch")
	}
	// Least squares on log frac = log A + n·log base.
	var sx, sy, sxx, sxy float64
	for i, n := range ns {
		if fracs[i] <= 0 {
			continue
		}
		x := float64(n)
		y := math.Log(fracs[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		used++
	}
	if used < 2 {
		return 0, 0, used
	}
	fn := float64(used)
	slope := (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
	intercept := (sy - slope*sx) / fn
	return math.Exp(slope), math.Exp(intercept), used
}
