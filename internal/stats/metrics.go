package stats

import "fmt"

// The classical PUF quality metrics, computed over response matrices.
// Conventions: a "response matrix" R has one row per chip (or PUF instance)
// and one column per challenge, entries 0/1.

// Uniformity returns the fraction of 1s in a single instance's responses;
// ideal is 0.5.
func Uniformity(responses []uint8) float64 {
	if len(responses) == 0 {
		return 0
	}
	ones := 0
	for _, r := range responses {
		ones += int(r)
	}
	return float64(ones) / float64(len(responses))
}

// HammingFrac returns the normalized Hamming distance between two
// equal-length response vectors.
func HammingFrac(a, b []uint8) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("stats: Hamming length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return float64(d) / float64(len(a))
}

// Uniqueness returns the mean pairwise normalized inter-chip Hamming
// distance over the rows of the response matrix; ideal is 0.5.
func Uniqueness(matrix [][]uint8) float64 {
	n := len(matrix)
	if n < 2 {
		return 0
	}
	var sum float64
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += HammingFrac(matrix[i], matrix[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

// Reliability returns 1 − mean intra-chip Hamming distance between a
// reference readout and repeated readouts of the same instance; ideal is 1.
func Reliability(reference []uint8, repeats [][]uint8) float64 {
	if len(repeats) == 0 {
		return 1
	}
	var sum float64
	for _, r := range repeats {
		sum += HammingFrac(reference, r)
	}
	return 1 - sum/float64(len(repeats))
}

// BitAliasing returns, per challenge, the fraction of chips answering 1;
// ideal is 0.5 everywhere.  Input is a response matrix (rows = chips).
func BitAliasing(matrix [][]uint8) []float64 {
	if len(matrix) == 0 {
		return nil
	}
	cols := len(matrix[0])
	out := make([]float64, cols)
	for _, row := range matrix {
		if len(row) != cols {
			panic("stats: ragged response matrix")
		}
		for j, r := range row {
			out[j] += float64(r)
		}
	}
	for j := range out {
		out[j] /= float64(len(matrix))
	}
	return out
}
