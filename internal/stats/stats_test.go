package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := Std(xs); math.Abs(s-2.13809) > 1e-4 {
		t.Errorf("Std = %v, want ≈2.138", s)
	}
	if Mean(nil) != 0 || Std([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v)", lo, hi)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 3}, {1, 5}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7, 2}
	if err := quick.Check(func(a, b uint8) bool {
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftHistogramEndBins(t *testing.T) {
	h := NewSoftHistogram(0.05)
	h.Add(0)
	h.Add(0)
	h.Add(1)
	h.Add(0.5)
	h.Add(0.999) // interior, not the exact-1 bin
	if h.Exact0 != 2 || h.Exact1 != 1 {
		t.Fatalf("end bins %d/%d, want 2/1", h.Exact0, h.Exact1)
	}
	if h.Total != 5 {
		t.Fatalf("total %d, want 5", h.Total)
	}
	if got := h.FracStable(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("FracStable = %v, want 0.6", got)
	}
	if h.Interior[len(h.Interior)-1] != 1 {
		t.Error("0.999 should land in the last interior bin")
	}
	if h.Interior[10] != 1 {
		t.Error("0.5 should land in bin 10")
	}
}

func TestSoftHistogramCountsConserved(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		h := NewSoftHistogram(0.05)
		for _, r := range raw {
			h.Add(float64(r) / 65535)
		}
		sum := h.Exact0 + h.Exact1
		for _, c := range h.Interior {
			sum += c
		}
		return sum == h.Total && h.Total == len(raw)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftHistogramRender(t *testing.T) {
	h := NewSoftHistogram(0.5)
	h.Add(0)
	h.Add(0.25)
	h.Add(1)
	out := h.Render(10)
	if !strings.Contains(out, "=0.00") || !strings.Contains(out, "=1.00") {
		t.Errorf("render missing end-bin labels:\n%s", out)
	}
}

func TestValueHistogramOverflowBins(t *testing.T) {
	h := NewValueHistogram(-0.5, 1.5, 0.1)
	h.Add(-1)  // below
	h.Add(2)   // above
	h.Add(0.5) // interior
	h.Add(1.5) // boundary: last bin
	if h.Below != 1 || h.Above != 1 {
		t.Fatalf("overflow bins %d/%d, want 1/1", h.Below, h.Above)
	}
	sum := h.Below + h.Above
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Total || h.Total != 4 {
		t.Fatalf("counts not conserved: %d vs %d", sum, h.Total)
	}
}

func TestExpFitRecoversBase(t *testing.T) {
	ns := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	fracs := make([]float64, len(ns))
	for i, n := range ns {
		fracs[i] = 0.95 * math.Pow(0.8, float64(n))
	}
	base, pre, used := ExpFit(ns, fracs)
	if used != 10 {
		t.Fatalf("used %d points, want 10", used)
	}
	if math.Abs(base-0.8) > 1e-9 || math.Abs(pre-0.95) > 1e-9 {
		t.Errorf("fit (%v, %v), want (0.8, 0.95)", base, pre)
	}
}

func TestExpFitSkipsZeros(t *testing.T) {
	base, _, used := ExpFit([]int{1, 2, 3}, []float64{0.5, 0, 0.125})
	if used != 2 {
		t.Fatalf("used %d, want 2", used)
	}
	if math.Abs(base-0.5) > 1e-9 {
		t.Errorf("base %v, want 0.5", base)
	}
}

func TestUniformity(t *testing.T) {
	if got := Uniformity([]uint8{1, 1, 0, 0}); got != 0.5 {
		t.Errorf("Uniformity = %v", got)
	}
	if Uniformity(nil) != 0 {
		t.Error("empty uniformity should be 0")
	}
}

func TestHammingFrac(t *testing.T) {
	a := []uint8{0, 1, 0, 1}
	b := []uint8{0, 1, 1, 0}
	if got := HammingFrac(a, b); got != 0.5 {
		t.Errorf("HammingFrac = %v, want 0.5", got)
	}
	if HammingFrac(a, a) != 0 {
		t.Error("self-distance should be 0")
	}
}

func TestHammingSymmetricProperty(t *testing.T) {
	if err := quick.Check(func(x, y uint64) bool {
		a := make([]uint8, 64)
		b := make([]uint8, 64)
		for i := 0; i < 64; i++ {
			a[i] = uint8((x >> uint(i)) & 1)
			b[i] = uint8((y >> uint(i)) & 1)
		}
		return HammingFrac(a, b) == HammingFrac(b, a)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestUniqueness(t *testing.T) {
	m := [][]uint8{
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{0, 0, 1, 1},
	}
	// Pairs: (0,1)=1.0, (0,2)=0.5, (1,2)=0.5 → mean 2/3.
	if got := Uniqueness(m); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Uniqueness = %v, want 2/3", got)
	}
	if Uniqueness(m[:1]) != 0 {
		t.Error("single-row uniqueness should be 0")
	}
}

func TestReliability(t *testing.T) {
	ref := []uint8{0, 1, 0, 1}
	repeats := [][]uint8{
		{0, 1, 0, 1}, // identical
		{0, 1, 1, 1}, // 1 flip
	}
	want := 1 - (0.0+0.25)/2
	if got := Reliability(ref, repeats); math.Abs(got-want) > 1e-12 {
		t.Errorf("Reliability = %v, want %v", got, want)
	}
	if Reliability(ref, nil) != 1 {
		t.Error("no repeats should give reliability 1")
	}
}

func TestBitAliasing(t *testing.T) {
	m := [][]uint8{
		{0, 1, 1},
		{0, 1, 0},
	}
	got := BitAliasing(m)
	want := []float64{0, 1, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("BitAliasing = %v, want %v", got, want)
			break
		}
	}
}
