// Package dtrace is a dependency-free distributed-tracing substrate for the
// multi-process fleet: 128-bit trace IDs, 64-bit span IDs, parent links, a
// process-level service tag, and a fixed-capacity concurrent span ring per
// process.  One authentication session yields one trace tree spanning every
// process it touched — gateway, shard primary, quorum follower — assembled
// after the fact by scraping each process's ring (`puflab trace collect`).
//
// The context travels on the wire as a single string, "32hex-16hex"
// (trace-span).  Parsing is strict and total: anything that is not exactly
// that shape is reported as absent, never as an error, so a hostile or
// corrupted trace field can only cost the trace, not the session.
//
// Recording is designed so the untraced path costs nothing: every method on a
// nil *Span or nil *Recorder is a no-op, and StartSpan on an invalid parent
// context returns nil.  A server that receives no trace context therefore
// executes only nil checks.
package dtrace

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceID identifies one distributed trace (one session end to end).
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Context is the propagated trace context: which trace a downstream span
// belongs to and which span is its parent.
type Context struct {
	Trace TraceID
	Span  SpanID
}

// ContextLen is the exact wire length of an encoded context:
// 32 hex trace chars, a dash, 16 hex span chars.
const ContextLen = 32 + 1 + 16

// Valid reports whether the context carries a usable trace and span ID.
func (c Context) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// String encodes the context in its wire form, or "" when invalid — so an
// absent context injects nothing into a frame.
func (c Context) String() string {
	if !c.Valid() {
		return ""
	}
	b := make([]byte, 0, ContextLen)
	b = hex.AppendEncode(b, c.Trace[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, c.Span[:])
	return string(b)
}

// ParseContext parses a wire-form context.  It is strict — exactly
// ContextLen characters, hex (either case) with the dash at offset 32, and
// non-zero trace and span IDs — and total: malformed input yields (zero,
// false), never an error, which is what lets every protocol layer treat a
// hostile trace field as "untraced" instead of a fault.
func ParseContext(s string) (Context, bool) {
	if len(s) != ContextLen || s[32] != '-' {
		return Context{}, false
	}
	var c Context
	if _, err := hex.Decode(c.Trace[:], []byte(s[:32])); err != nil {
		return Context{}, false
	}
	if _, err := hex.Decode(c.Span[:], []byte(s[33:])); err != nil {
		return Context{}, false
	}
	if !c.Valid() {
		return Context{}, false
	}
	return c, true
}

// ParseTraceID parses a bare 32-hex-character trace ID (the lookup key for
// `puflab trace show` and the ?trace= query filter), with the same
// total-function discipline as ParseContext.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 32 {
		return TraceID{}, false
	}
	var t TraceID
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	if t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// NewTraceID mints a random trace ID.
func NewTraceID() TraceID {
	var t TraceID
	mustRand(t[:])
	return t
}

// NewSpanID mints a random span ID.
func NewSpanID() SpanID {
	var s SpanID
	mustRand(s[:])
	return s
}

// mustRand fills b from the CSPRNG.  crypto/rand is documented never to fail
// on supported platforms; if it somehow returns short, the zero-ID guard in
// Valid keeps a degenerate ID from propagating as a real context.
func mustRand(b []byte) {
	_, _ = crand.Read(b)
}

// Span is one timed operation within a trace.  Spans are created by a
// Recorder (StartSpan / StartRoot), annotated, and recorded into the ring by
// End.  A nil *Span is the untraced case: every method no-ops.
type Span struct {
	Trace   TraceID
	ID      SpanID
	Parent  SpanID // zero for a root span
	Service string
	Name    string
	Start   time.Time
	Seconds float64
	Status  string
	Attrs   map[string]string

	rec   *Recorder
	ended bool
}

// Context returns the context downstream work should propagate: same trace,
// this span as parent.  Nil-safe: a nil span yields the invalid zero context.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.Trace, Span: s.ID}
}

// SetAttr attaches one key/value annotation.
func (s *Span) SetAttr(k, v string) {
	if s == nil || v == "" {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
}

// SetStatus sets the span's outcome ("ok", "denied:throttled", "moved", …).
func (s *Span) SetStatus(st string) {
	if s == nil {
		return
	}
	s.Status = st
}

// End stamps the duration and records the span into its recorder's ring.
// Idempotent; nil-safe.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Seconds = time.Since(s.Start).Seconds()
	s.rec.Record(*s)
}

// View is the JSON shape of one recorded span — shared by the /trace/spans
// admin endpoint, spans_final.json, and the `puflab trace` collector, so one
// process's output is another's input.
type View struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Service  string            `json:"service"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Seconds  float64           `json:"seconds"`
	Status   string            `json:"status,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// View converts a recorded span to its JSON shape.
func (s Span) View() View {
	v := View{
		TraceID: s.Trace.String(),
		SpanID:  s.ID.String(),
		Service: s.Service,
		Name:    s.Name,
		Start:   s.Start,
		Seconds: s.Seconds,
		Status:  s.Status,
		Attrs:   s.Attrs,
	}
	if !s.Parent.IsZero() {
		v.ParentID = s.Parent.String()
	}
	return v
}

// Recorder is a fixed-capacity concurrent ring of finished spans plus the
// process's service tag.  All methods are safe for concurrent use and
// nil-safe, mirroring the telemetry registry's discipline: tracing can be
// disabled by simply not attaching a recorder.
type Recorder struct {
	mu      sync.Mutex
	service string
	ring    []Span
	next    int
	full    bool
}

// NewRecorder creates a recorder keeping the most recent capacity spans
// (minimum 16).
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{ring: make([]Span, capacity)}
}

// SetService sets the process/service tag stamped on every span this
// recorder starts.
func (r *Recorder) SetService(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.service = name
	r.mu.Unlock()
}

// Service returns the process/service tag.
func (r *Recorder) Service() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.service
}

// StartRoot mints a fresh trace and returns its root span — the gateway's
// (or a tracing client's) entry point.
func (r *Recorder) StartRoot(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{
		Trace:   NewTraceID(),
		ID:      NewSpanID(),
		Service: r.Service(),
		Name:    name,
		Start:   time.Now(),
		rec:     r,
	}
}

// StartSpan starts a child span under parent.  An invalid parent context
// returns nil — the untraced fast path: callers thread the nil span through
// and every annotation no-ops.
func (r *Recorder) StartSpan(parent Context, name string) *Span {
	return r.StartSpanAt(parent, name, time.Now())
}

// StartSpanAt is StartSpan with an explicit start time, for spans whose
// beginning was observed before the decision to trace (e.g. a device
// round-trip timed from challenge issuance).
func (r *Recorder) StartSpanAt(parent Context, name string, start time.Time) *Span {
	if r == nil || !parent.Valid() {
		return nil
	}
	return &Span{
		Trace:   parent.Trace,
		ID:      NewSpanID(),
		Parent:  parent.Span,
		Service: r.Service(),
		Name:    name,
		Start:   start,
		rec:     r,
	}
}

// Record places one finished span in the ring, evicting the oldest when
// full.  Used directly by layers that reconstruct spans from wire markers
// (the replication follower) rather than timing them in place.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if s.Service == "" {
		s.Service = r.service
	}
	r.ring[r.next] = s
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len returns how many spans the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.ring)
	}
	return r.next
}

// Spans returns the recorded spans, newest first.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.ring)
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.ring)) % len(r.ring)
		out = append(out, r.ring[idx])
	}
	return out
}

// ByTrace returns the recorded spans belonging to one trace, newest first.
func (r *Recorder) ByTrace(id TraceID) []Span {
	var out []Span
	for _, s := range r.Spans() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// Default is the process-wide recorder, mirroring telemetry.Default: every
// subsystem records here unless a test swaps in its own.
var Default = NewRecorder(4096)

// SetService tags the process-wide recorder.
func SetService(name string) { Default.SetService(name) }

type ctxKey struct{}

// Inject returns a context.Context carrying c, for threading trace context
// through call chains (netauth issuance → registry → replication quorum
// wait) without widening every signature.  An invalid c returns ctx
// unchanged.
func Inject(ctx context.Context, c Context) context.Context {
	if !c.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext extracts the trace context injected by Inject, or the invalid
// zero context.
func FromContext(ctx context.Context) Context {
	if ctx == nil {
		return Context{}
	}
	c, _ := ctx.Value(ctxKey{}).(Context)
	return c
}
