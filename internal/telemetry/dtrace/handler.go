package dtrace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Dump is the JSON document served by /trace/spans and written to
// spans_final.json: one process's service tag and its recorded spans, newest
// first.  `puflab trace collect` merges several of these into one
// cross-process view.
type Dump struct {
	Service string `json:"service"`
	Count   int    `json:"count"`
	Spans   []View `json:"spans"`
}

// Snapshot captures the recorder's current contents as a Dump.
func (r *Recorder) Snapshot() Dump {
	spans := r.Spans()
	d := Dump{Service: r.Service(), Count: len(spans), Spans: make([]View, 0, len(spans))}
	for _, s := range spans {
		d.Spans = append(d.Spans, s.View())
	}
	return d
}

// MarshalJSONIndent renders the snapshot as indented JSON — the
// spans_final.json companion to telemetry's metrics_final.json.
func (r *Recorder) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// Handler serves the recorder's spans as JSON.  Query parameters, all
// tolerant of junk (ignored rather than erroring, matching /traces):
//
//	?n=N            keep only the N most recent spans
//	?trace=<32hex>  keep only spans of one trace (full-ring lookup)
func Handler(r *Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		d := r.Snapshot()
		if tid, ok := ParseTraceID(req.URL.Query().Get("trace")); ok {
			kept := d.Spans[:0]
			for _, v := range d.Spans {
				if v.TraceID == tid.String() {
					kept = append(kept, v)
				}
			}
			d.Spans = kept
		}
		if n, err := strconv.Atoi(req.URL.Query().Get("n")); err == nil && n >= 0 && n < len(d.Spans) {
			d.Spans = d.Spans[:n]
		}
		d.Count = len(d.Spans)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(d) //nolint:errcheck
	}
}
