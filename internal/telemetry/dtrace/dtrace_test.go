package dtrace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestContextRoundTrip(t *testing.T) {
	c := Context{Trace: NewTraceID(), Span: NewSpanID()}
	s := c.String()
	if len(s) != ContextLen {
		t.Fatalf("encoded context %q: len %d, want %d", s, len(s), ContextLen)
	}
	got, ok := ParseContext(s)
	if !ok || got != c {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, c)
	}
	if _, ok := ParseContext(strings.ToUpper(s)); !ok {
		t.Fatalf("uppercase hex rejected; ParseContext should accept either case")
	}
}

func TestParseContextStrict(t *testing.T) {
	valid := Context{Trace: NewTraceID(), Span: NewSpanID()}.String()
	bad := []string{
		"",
		"nonsense",
		valid[:ContextLen-1], // truncated
		valid + "0",          // oversized
		strings.Replace(valid, "-", "_", 1),
		valid[:32] + "-" + strings.Repeat("g", 16), // non-hex span
		strings.Repeat("z", 32) + "-" + valid[33:], // non-hex trace
		strings.Repeat("0", 32) + "-" + valid[33:], // zero trace ID
		valid[:32] + "-" + strings.Repeat("0", 16), // zero span ID
		strings.Repeat("0", ContextLen),            // dash missing
	}
	for _, s := range bad {
		if c, ok := ParseContext(s); ok {
			t.Errorf("ParseContext(%q) accepted as %+v, want rejection", s, c)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	id := NewTraceID()
	got, ok := ParseTraceID(id.String())
	if !ok || got != id {
		t.Fatalf("ParseTraceID round trip failed: %v ok=%v", got, ok)
	}
	for _, s := range []string{"", "xyz", strings.Repeat("0", 32), id.String() + "0"} {
		if _, ok := ParseTraceID(s); ok {
			t.Errorf("ParseTraceID(%q) accepted, want rejection", s)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	var sp *Span
	// None of these may panic, and all must report "untraced".
	r.SetService("x")
	r.Record(Span{})
	if r.StartRoot("a") != nil || r.StartSpan(Context{}, "b") != nil {
		t.Fatalf("nil recorder minted a span")
	}
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder has spans: %v", got)
	}
	if r.Len() != 0 || r.Service() != "" {
		t.Fatalf("nil recorder not empty")
	}
	sp.SetAttr("k", "v")
	sp.SetStatus("ok")
	sp.End()
	if sp.Context().Valid() {
		t.Fatalf("nil span has a valid context")
	}
	// A live recorder still refuses to start a child of an invalid parent.
	live := NewRecorder(16)
	if live.StartSpan(Context{}, "c") != nil {
		t.Fatalf("StartSpan with invalid parent should return nil")
	}
}

func TestSpanTreeRecording(t *testing.T) {
	r := NewRecorder(64)
	r.SetService("test-svc")
	root := r.StartRoot("session")
	root.SetAttr("chip", "chip-1")
	child := r.StartSpan(root.Context(), "select")
	child.SetStatus("ok")
	child.End()
	root.SetStatus("approved")
	root.End()
	root.End() // idempotent

	if r.Len() != 2 {
		t.Fatalf("recorded %d spans, want 2", r.Len())
	}
	spans := r.ByTrace(root.Trace)
	if len(spans) != 2 {
		t.Fatalf("ByTrace: %d spans, want 2", len(spans))
	}
	// Newest first: root ended last.
	if spans[0].Name != "session" || spans[1].Name != "select" {
		t.Fatalf("order: got %q,%q", spans[0].Name, spans[1].Name)
	}
	if spans[1].Parent != root.ID || spans[1].Trace != root.Trace {
		t.Fatalf("child not linked to root: %+v", spans[1])
	}
	if spans[0].Service != "test-svc" || spans[0].Attrs["chip"] != "chip-1" {
		t.Fatalf("root annotations lost: %+v", spans[0])
	}
	if spans[0].Status != "approved" || spans[1].Status != "ok" {
		t.Fatalf("statuses lost: %q %q", spans[0].Status, spans[1].Status)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 40; i++ {
		sp := r.StartRoot("s")
		sp.End()
	}
	if r.Len() != 16 {
		t.Fatalf("ring holds %d, want 16", r.Len())
	}
	if got := len(r.Spans()); got != 16 {
		t.Fatalf("Spans returned %d, want 16", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				root := r.StartRoot("p")
				c := r.StartSpan(root.Context(), "c")
				c.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 256 {
		t.Fatalf("ring holds %d, want full 256", r.Len())
	}
}

func TestContextInjection(t *testing.T) {
	c := Context{Trace: NewTraceID(), Span: NewSpanID()}
	ctx := Inject(context.Background(), c)
	if got := FromContext(ctx); got != c {
		t.Fatalf("FromContext: %+v, want %+v", got, c)
	}
	if got := FromContext(context.Background()); got.Valid() {
		t.Fatalf("empty context yielded %+v", got)
	}
	if ctx := Inject(context.Background(), Context{}); FromContext(ctx).Valid() {
		t.Fatalf("invalid context was injected")
	}
}

func TestHandler(t *testing.T) {
	r := NewRecorder(64)
	r.SetService("h-svc")
	keep := r.StartRoot("keep")
	keep.End()
	other := r.StartRoot("other")
	other.End()

	get := func(url string) Dump {
		t.Helper()
		req := httptest.NewRequest("GET", url, nil)
		w := httptest.NewRecorder()
		Handler(r)(w, req)
		if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Fatalf("content type %q", ct)
		}
		var d Dump
		if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, w.Body.String())
		}
		return d
	}

	d := get("/trace/spans")
	if d.Service != "h-svc" || d.Count != 2 || len(d.Spans) != 2 {
		t.Fatalf("full dump: %+v", d)
	}
	d = get("/trace/spans?trace=" + keep.Trace.String())
	if d.Count != 1 || d.Spans[0].Name != "keep" {
		t.Fatalf("trace filter: %+v", d)
	}
	d = get("/trace/spans?n=1")
	if d.Count != 1 {
		t.Fatalf("n filter: %+v", d)
	}
	// Junk parameters are ignored, not errors.
	d = get("/trace/spans?trace=zzz&n=bogus")
	if d.Count != 2 {
		t.Fatalf("junk params: %+v", d)
	}
}

func TestViewJSON(t *testing.T) {
	r := NewRecorder(16)
	r.SetService("v")
	root := r.StartRoot("root")
	child := r.StartSpan(root.Context(), "child")
	child.Start = time.Now()
	child.End()
	root.End()
	b, err := r.MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for _, v := range d.Spans {
		if _, ok := ParseTraceID(v.TraceID); !ok {
			t.Fatalf("view trace id %q unparseable", v.TraceID)
		}
		if v.Name == "child" && v.ParentID != root.ID.String() {
			t.Fatalf("child parent %q, want %q", v.ParentID, root.ID.String())
		}
		if v.Name == "root" && v.ParentID != "" {
			t.Fatalf("root has parent %q", v.ParentID)
		}
	}
}

func FuzzParseContext(f *testing.F) {
	f.Add(Context{Trace: NewTraceID(), Span: NewSpanID()}.String())
	f.Add("")
	f.Add(strings.Repeat("0", ContextLen))
	f.Add(strings.Repeat("f", 32) + "-" + strings.Repeat("f", 16))
	f.Fuzz(func(t *testing.T, s string) {
		c, ok := ParseContext(s)
		if ok {
			if !c.Valid() {
				t.Fatalf("accepted invalid context from %q", s)
			}
			if strings.ToLower(s) != c.String() {
				t.Fatalf("accepted %q but re-encodes as %q", s, c.String())
			}
		}
	})
}
