package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestAdminMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total").Add(3)
	tracer := NewTracer(8)
	tracer.Record(SessionTrace{Session: "s1", Verdict: "approved"})
	tracer.Record(SessionTrace{Session: "s2", Verdict: "denied"})
	mux := AdminMux(reg, tracer, func() any {
		return map[string]any{"status": "ok", "chips": 2}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "counter requests_total 3") {
		t.Fatalf("/metrics: status %d body %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}

	resp, body = get("/metrics?format=json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics?format=json did not parse: %v\n%s", err, body)
	}
	if snap.Counters["requests_total"] != 3 {
		t.Fatalf("JSON snapshot counters = %+v", snap.Counters)
	}

	resp, body = get("/healthz")
	var hz map[string]any
	if err := json.Unmarshal([]byte(body), &hz); err != nil || hz["status"] != "ok" || hz["chips"] != float64(2) {
		t.Fatalf("/healthz = %q err=%v", body, err)
	}

	resp, body = get("/traces?n=1")
	var traces []SessionTrace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/traces did not parse: %v", err)
	}
	if len(traces) != 1 || traces[0].Session != "s2" {
		t.Fatalf("/traces?n=1 = %+v, want newest only", traces)
	}

	resp, _ = get("/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}

// TestAdminMuxContentTypes pins the content-type contract: /metrics is the
// text scrape format, every JSON endpoint (including extras mounted the way
// /timeseries, /slo, and /alerts are) serves exactly ContentTypeJSON.
// Regression test for the header being set after the first body write (at
// which point it is silently ignored) or drifting between endpoints.
func TestAdminMuxContentTypes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total").Inc()
	extra := Endpoint{Path: "/extra", Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]int{"ok": 1})
	})}
	srv := httptest.NewServer(AdminMux(reg, NewTracer(4), nil, extra))
	defer srv.Close()

	cases := []struct {
		path string
		want string
	}{
		{"/metrics", ContentTypeText},
		{"/metrics?format=json", ContentTypeJSON},
		{"/healthz", ContentTypeJSON},
		{"/traces", ContentTypeJSON},
		{"/traces?n=2", ContentTypeJSON},
		{"/extra", ContentTypeJSON},
	}
	for _, tc := range cases {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.want {
			t.Errorf("%s Content-Type = %q, want %q", tc.path, got, tc.want)
		}
	}
}

// TestAdminMuxNilDependencies: every dependency may be nil and the plane
// must still serve.
func TestAdminMuxNilDependencies(t *testing.T) {
	srv := httptest.NewServer(AdminMux(nil, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/metrics?format=json", "/healthz", "/traces"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d with nil deps", path, resp.StatusCode)
		}
	}
}
