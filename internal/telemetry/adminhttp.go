package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Content types the admin plane serves.  /metrics is the text scrape
// format; every other endpoint is JSON.  These are package constants (not
// inline literals) so the regression test and every handler agree on the
// exact header value.
const (
	ContentTypeText = "text/plain; charset=utf-8"
	ContentTypeJSON = "application/json"
)

// writeJSON encodes v with the JSON content type set before the first
// body byte — after the first Write the header is immutable, so every
// error path must decide its type up front.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", ContentTypeJSON)
	_ = json.NewEncoder(w).Encode(v)
}

// Endpoint is an extra handler to mount on the admin mux — the time-series
// and SLO planes register /timeseries, /slo, and /alerts this way (their
// packages sit above telemetry in the import graph, so the mux cannot
// import them).  Extra endpoints returning JSON must set ContentTypeJSON
// themselves; history.Sampler.Handler and the slo.Engine handlers do.
type Endpoint struct {
	Path    string
	Handler http.Handler
}

// AdminMux builds the operator-facing HTTP surface `puflab serve -admin`
// exposes:
//
//	/metrics        text scrape format (?format=json for the JSON snapshot)
//	/healthz        JSON liveness payload from the healthz callback
//	/traces         recent authentication session traces (?n=K caps the count)
//	/debug/pprof/*  the standard runtime profiler endpoints
//
// plus any extra endpoints (/timeseries, /slo, /alerts in production).
//
// Content-type contract, pinned by TestAdminMuxContentTypes: /metrics
// serves ContentTypeText; every JSON endpoint serves ContentTypeJSON.
//
// reg, tracer, and healthz may each be nil; the endpoints degrade to empty
// snapshots, empty trace lists, and a bare {"status":"ok"}.  The mux is
// deliberately built by hand (not net/http.DefaultServeMux) so importing
// net/http/pprof's handlers never leaks profiling onto a mux the caller
// didn't ask for.
func AdminMux(reg *Registry, tracer *Tracer, healthz func() any, extra ...Endpoint) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			body, err := snap.MarshalJSONIndent()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", ContentTypeJSON)
			_, _ = w.Write(body)
			return
		}
		w.Header().Set("Content-Type", ContentTypeText)
		_ = snap.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var payload any = map[string]string{"status": "ok"}
		if healthz != nil {
			payload = healthz()
		}
		writeJSON(w, payload)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			// Tolerant parse: a bad n means "all retained".
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		// Filters select before the ?n= cap is applied, so "the last 5
		// denied sessions of chip-7" works as expected: fetch everything,
		// filter, then truncate.
		chip := r.URL.Query().Get("chip")
		verdict := r.URL.Query().Get("verdict")
		traces := tracer.Recent(0)
		if chip != "" || verdict != "" {
			kept := traces[:0]
			for _, tr := range traces {
				if chip != "" && tr.ChipID != chip {
					continue
				}
				if verdict != "" && tr.Verdict != verdict {
					continue
				}
				kept = append(kept, tr)
			}
			traces = kept
		}
		if n > 0 && n < len(traces) {
			traces = traces[:n]
		}
		if traces == nil {
			traces = []SessionTrace{}
		}
		writeJSON(w, traces)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, e := range extra {
		if e.Handler != nil {
			mux.Handle(e.Path, e.Handler)
		}
	}
	return mux
}
