package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// AdminMux builds the operator-facing HTTP surface `puflab serve -admin`
// exposes:
//
//	/metrics        text scrape format (?format=json for the JSON snapshot)
//	/healthz        JSON liveness payload from the healthz callback
//	/traces         recent authentication session traces (?n=K caps the count)
//	/debug/pprof/*  the standard runtime profiler endpoints
//
// reg, tracer, and healthz may each be nil; the endpoints degrade to empty
// snapshots, empty trace lists, and a bare {"status":"ok"}.  The mux is
// deliberately built by hand (not net/http.DefaultServeMux) so importing
// net/http/pprof's handlers never leaks profiling onto a mux the caller
// didn't ask for.
func AdminMux(reg *Registry, tracer *Tracer, healthz func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			body, err := snap.MarshalJSONIndent()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(body)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = snap.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		var payload any = map[string]string{"status": "ok"}
		if healthz != nil {
			payload = healthz()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(payload)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			// Tolerant parse: a bad n means "all retained".
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		traces := tracer.Recent(n)
		if traces == nil {
			traces = []SessionTrace{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(traces)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
