package telemetry

import (
	"runtime"
	"time"
)

// RuntimeCollector returns a collector function that refreshes the
// process-health instruments in reg each time it runs:
//
//	runtime_goroutines            gauge    live goroutine count
//	runtime_heap_inuse_bytes      gauge    bytes in in-use heap spans
//	runtime_heap_alloc_bytes      gauge    bytes of live allocated objects
//	runtime_gc_cycles_total       counter  completed GC cycles
//	runtime_gc_pause_seconds      histogram  individual stop-the-world pauses
//	runtime_uptime_seconds        gauge    seconds since the collector was built
//
// The intended caller is the history sampler (Options.Collectors), so the
// same tick that samples auth latency also samples process health and the
// two land on the same timeline.  now is the clock uptime is measured on —
// inject a fake for deterministic tests; nil means time.Now.
//
// Each run calls runtime.ReadMemStats, which briefly stops the world;
// at sampling cadences (seconds) the cost is noise, but do not call the
// collector on a per-request path.
func RuntimeCollector(reg *Registry, now func() time.Time) func() {
	if reg == nil {
		return func() {}
	}
	if now == nil {
		now = time.Now
	}
	var (
		start      = now()
		goroutines = reg.Gauge("runtime_goroutines")
		heapInuse  = reg.Gauge("runtime_heap_inuse_bytes")
		heapAlloc  = reg.Gauge("runtime_heap_alloc_bytes")
		gcCycles   = reg.Counter("runtime_gc_cycles_total")
		gcPause    = reg.Histogram("runtime_gc_pause_seconds", LatencyBuckets)
		uptime     = reg.Gauge("runtime_uptime_seconds")
		lastNumGC  uint32
	)
	return func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapInuse.Set(int64(ms.HeapInuse))
		heapAlloc.Set(int64(ms.HeapAlloc))
		if ms.NumGC > lastNumGC {
			gcCycles.Add(uint64(ms.NumGC - lastNumGC))
			// PauseNs is a circular buffer of the last 256 pause times;
			// feed only the cycles completed since the previous run.
			newCycles := ms.NumGC - lastNumGC
			if newCycles > uint32(len(ms.PauseNs)) {
				newCycles = uint32(len(ms.PauseNs))
			}
			for i := uint32(0); i < newCycles; i++ {
				idx := (ms.NumGC - i + 255) % 256
				gcPause.Observe(float64(ms.PauseNs[idx]) / 1e9)
			}
			lastNumGC = ms.NumGC
		}
		uptime.Set(int64(now().Sub(start).Seconds()))
	}
}
