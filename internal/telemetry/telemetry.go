// Package telemetry is the observability plane: a dependency-free,
// concurrency-safe metrics registry (counters, gauges, bounded-bucket
// latency histograms) plus a per-session trace recorder for the
// authentication hot path.
//
// Design constraints, in order:
//
//  1. Allocation-free on the hot path.  Instruments are looked up (or
//     created) once, at construction time, and the returned pointers are
//     incremented with single atomic operations.  Counter.Inc, Gauge.Set,
//     and Histogram.Observe allocate nothing and take no locks.
//  2. Dependency-free.  Only the standard library; anything in this
//     repository may import telemetry without cycles (it imports no other
//     xorpuf package).
//  3. Deterministic export.  Snapshot orders every metric by name, so the
//     text scrape format is stable byte-for-byte for a given set of values
//     — a golden-file test pins it.
//
// The package-level Default registry is what production wiring (netauth,
// registry, fleet, health, silicon) instruments into; `puflab serve -admin`
// serves its snapshot over HTTP.  Tests that need isolation construct their
// own NewRegistry and inject it (e.g. netauth.Server.SetTelemetry).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.  The zero value is ready to
// use; all methods are safe for concurrent use and nil-safe, so disabled
// instrumentation can hold nil pointers at no cost beyond a branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed value (active sessions, registered
// chips).  The zero value is ready to use; methods are concurrency- and
// nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named instruments.  Lookup methods are get-or-create and
// safe for concurrent use; hot paths should capture the returned pointer
// once rather than looking up per event.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry production wiring instruments into.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it if absent.
// A nil registry returns nil (a no-op instrument).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if absent.  Bounds must be strictly
// increasing; an implicit +Inf bucket catches the overflow.  Re-registering
// an existing name returns the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// FindHistogram returns the histogram registered under name, or nil — a
// pure lookup for consumers (the SLO engine's exemplar source) that must not
// create instruments with guessed bucket layouts.
func (r *Registry) FindHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.histograms[name]
}

// HistogramSnapshot is the point-in-time state of one histogram.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
	// Bounds are the bucket upper bounds (exclusive of the implicit +Inf).
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; Counts[i] is the number of
	// observations v with Bounds[i-1] < v ≤ Bounds[i] (the final entry is
	// the +Inf overflow bucket).
	Counts []uint64 `json:"counts"`
	// ExemplarTrace is the trace ID of the most recent traced observation
	// (empty when none occurred) — the concrete session behind the
	// aggregate.  JSON-snapshot only; the text scrape format is unchanged.
	ExemplarTrace string `json:"exemplar_trace,omitempty"`
	// ExemplarValue is the value that observation recorded.
	ExemplarValue float64 `json:"exemplar_value,omitempty"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket.  Estimates saturate at the last finite
// bound when the quantile falls in the +Inf bucket.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(prev)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot is a consistent-enough point-in-time copy of a registry: each
// instrument is read atomically, though the set as a whole is not a single
// atomic cut (metrics are monotone or instantaneous, so a skewed cut is
// harmless for monitoring).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered instrument.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// formatFloat renders floats deterministically and round-trippably.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the snapshot in the stable scrape format, one metric
// per line, sorted by name within each section:
//
//	counter <name> <value>
//	gauge <name> <value>
//	histogram <name> count <n> sum <sum>
//	bucket <name> le <bound> <cumulative-count>
//
// Bucket lines are cumulative (each includes every bucket below it) and end
// with the le +Inf total, prometheus-style.  The format is pinned by a
// golden-file test; extend it, don't mutate it.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histogram %s count %d sum %s\n",
			name, h.Count, formatFloat(h.Sum)); err != nil {
			return err
		}
		cum := uint64(0)
		for i, c := range h.Counts {
			cum += c
			bound := math.Inf(1)
			if i < len(h.Bounds) {
				bound = h.Bounds[i]
			}
			if _, err := fmt.Fprintf(w, "bucket %s le %s %d\n",
				name, formatFloat(bound), cum); err != nil {
				return err
			}
		}
	}
	return nil
}

// Text renders WriteText to a string.
func (s Snapshot) Text() string {
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}

// MarshalJSONIndent renders the snapshot as indented JSON (the
// ?format=json scrape body and the metrics_final.json post-mortem file).
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
