// Package history turns the telemetry registry's point-in-time snapshots
// into queryable time series.  A Sampler periodically snapshots a
// telemetry.Registry into fixed-capacity ring buffers — one per counter,
// gauge, and histogram — and answers windowed questions the raw registry
// cannot: "what is the session rate over the last minute?", "what was auth
// p99 over the last five minutes?", "how many WAL fsyncs happened since the
// spike started?".
//
// Design constraints mirror the parent package's:
//
//  1. Bounded memory.  Every series is a ring of Capacity points; a server
//     that runs for a year holds exactly as much history as one that ran
//     for an hour.  A fleet-wide cardinality explosion is impossible
//     because series only exist for instruments already in the registry.
//  2. Injectable time.  The sampler never reads the wall clock itself: the
//     Now function is configuration, and Tick() takes one sample at
//     whatever Now returns.  Tests drive a fake clock through arbitrary
//     timelines with zero sleeps; production wraps Tick in a time.Ticker
//     loop.
//  3. Windowed deltas, not instantaneous guesses.  Counters are cumulative,
//     so rates come from the first-vs-last sample inside the window.
//     Histograms keep whole bucket snapshots, so a windowed quantile is
//     computed over exactly the observations that fell inside the window
//     (bucket-wise delta), not diluted by the process's whole lifetime.
package history

import (
	"time"
)

// Point is one sample of one series.
type Point struct {
	// T is the sample's timestamp (the sampler's Now at Tick time).
	T time.Time `json:"t"`
	// V is the sampled value.
	V float64 `json:"v"`
}

// Series is a fixed-capacity ring buffer of points in append order.  It is
// not safe for concurrent use on its own; the Sampler serialises access.
type Series struct {
	ring []Point
	next int
	full bool
}

// newSeries returns a series retaining the last capacity points
// (minimum 2 — a single point can answer no windowed question).
func newSeries(capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	return &Series{ring: make([]Point, capacity)}
}

// Append stores one sample, evicting the oldest when full.
func (s *Series) Append(p Point) {
	s.ring[s.next] = p
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
}

// Len returns how many points are retained.
func (s *Series) Len() int {
	if s.full {
		return len(s.ring)
	}
	return s.next
}

// at returns the i-th retained point, oldest first.
func (s *Series) at(i int) Point {
	if s.full {
		return s.ring[(s.next+i)%len(s.ring)]
	}
	return s.ring[i]
}

// Last returns the newest point and whether one exists.
func (s *Series) Last() (Point, bool) {
	n := s.Len()
	if n == 0 {
		return Point{}, false
	}
	return s.at(n - 1), true
}

// Window returns the retained points with T >= since, oldest first.
func (s *Series) Window(since time.Time) []Point {
	n := s.Len()
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		if p := s.at(i); !p.T.Before(since) {
			out = append(out, p)
		}
	}
	return out
}

// bounds returns the first and last point with T >= since and whether the
// window holds at least two distinct-in-time samples.
func (s *Series) bounds(since time.Time) (first, last Point, ok bool) {
	w := s.Window(since)
	if len(w) < 2 {
		return Point{}, Point{}, false
	}
	first, last = w[0], w[len(w)-1]
	return first, last, last.T.After(first.T)
}

// Delta returns the value change across the window (newest minus oldest
// retained sample with T >= since).  Negative deltas — a counter reset
// after a restart — are clamped to zero: a reset destroys the baseline,
// and reporting a huge negative rate would be worse than reporting none.
func (s *Series) Delta(since time.Time) (float64, bool) {
	first, last, ok := s.bounds(since)
	if !ok {
		return 0, false
	}
	d := last.V - first.V
	if d < 0 {
		d = 0
	}
	return d, true
}

// Rate returns the per-second change across the window.
func (s *Series) Rate(since time.Time) (float64, bool) {
	first, last, ok := s.bounds(since)
	if !ok {
		return 0, false
	}
	d := last.V - first.V
	if d < 0 {
		d = 0
	}
	return d / last.T.Sub(first.T).Seconds(), true
}
