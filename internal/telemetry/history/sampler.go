package history

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"xorpuf/internal/telemetry"
)

// DefaultCapacity is how many samples each series retains when Options
// leaves Capacity zero.  At the default 2 s interval that is 20 minutes of
// history — enough for every burn-rate window the SLO engine ships with.
const DefaultCapacity = 600

// Options configures a Sampler.
type Options struct {
	// Capacity is the per-series ring size (default DefaultCapacity).
	Capacity int
	// Now supplies timestamps for Tick (default time.Now).  Tests inject a
	// fake clock here; the sampler itself never reads the wall clock.
	Now func() time.Time
	// Collectors run, in order, at the start of every Tick — before the
	// registry snapshot is taken.  telemetry.RuntimeCollector is the
	// canonical member: it refreshes the runtime_* instruments so the same
	// tick that samples auth latency also samples goroutine count.
	Collectors []func()
}

// histSeries retains whole histogram snapshots so windowed quantiles can be
// computed over exactly the observations inside the window.
type histSeries struct {
	ring []telemetry.HistogramSnapshot
	ts   []time.Time
	next int
	full bool
}

func newHistSeries(capacity int) *histSeries {
	if capacity < 2 {
		capacity = 2
	}
	return &histSeries{
		ring: make([]telemetry.HistogramSnapshot, capacity),
		ts:   make([]time.Time, capacity),
	}
}

func (h *histSeries) append(t time.Time, s telemetry.HistogramSnapshot) {
	h.ring[h.next] = s
	h.ts[h.next] = t
	h.next++
	if h.next == len(h.ring) {
		h.next = 0
		h.full = true
	}
}

func (h *histSeries) len() int {
	if h.full {
		return len(h.ring)
	}
	return h.next
}

func (h *histSeries) at(i int) (time.Time, telemetry.HistogramSnapshot) {
	if h.full {
		i = (h.next + i) % len(h.ring)
	}
	return h.ts[i], h.ring[i]
}

// window returns the oldest and newest snapshot with timestamp >= since.
func (h *histSeries) window(since time.Time) (first, last telemetry.HistogramSnapshot, ok bool) {
	n := h.len()
	found := false
	for i := 0; i < n; i++ {
		t, s := h.at(i)
		if t.Before(since) {
			continue
		}
		if !found {
			first, found = s, true
		}
		last = s
	}
	return first, last, found
}

// deltaSnapshot subtracts two cumulative snapshots bucket-wise, clamping
// each bucket at zero so a histogram reset (process restart) yields an
// empty window instead of garbage.
func deltaSnapshot(first, last telemetry.HistogramSnapshot) telemetry.HistogramSnapshot {
	if len(first.Counts) != len(last.Counts) {
		return last // bucket layout changed: treat the window as fresh
	}
	d := telemetry.HistogramSnapshot{
		Bounds: last.Bounds,
		Counts: make([]uint64, len(last.Counts)),
		Sum:    last.Sum - first.Sum,
	}
	for i := range last.Counts {
		if last.Counts[i] >= first.Counts[i] {
			d.Counts[i] = last.Counts[i] - first.Counts[i]
		}
	}
	if last.Count >= first.Count {
		d.Count = last.Count - first.Count
	}
	if d.Sum < 0 {
		d.Sum = 0
	}
	return d
}

// Sampler snapshots a telemetry.Registry into per-instrument time series.
// All methods are safe for concurrent use: production runs Tick from a
// ticker goroutine while the admin plane answers queries.
type Sampler struct {
	reg        *telemetry.Registry
	capacity   int
	now        func() time.Time
	collectors []func()

	mu       sync.Mutex
	counters map[string]*Series
	gauges   map[string]*Series
	hists    map[string]*histSeries
	ticks    int
	lastTick time.Time
}

// NewSampler builds a sampler over reg.  reg may be nil (every query
// reports no data) so wiring can be unconditional.
func NewSampler(reg *telemetry.Registry, opts Options) *Sampler {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Sampler{
		reg:        reg,
		capacity:   opts.Capacity,
		now:        opts.Now,
		collectors: opts.Collectors,
		counters:   make(map[string]*Series),
		gauges:     make(map[string]*Series),
		hists:      make(map[string]*histSeries),
	}
}

// Now reports the sampler's current time — the injected clock, so every
// consumer (SLO engine, anomaly detector, admin handlers) shares one
// notion of "now".
func (s *Sampler) Now() time.Time { return s.now() }

// Tick takes one sample of every registered instrument at Now, running the
// collectors first, and returns the sample timestamp.
func (s *Sampler) Tick() time.Time {
	for _, c := range s.collectors {
		c()
	}
	t := s.now()
	if s.reg == nil {
		return t
	}
	snap := s.reg.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, v := range snap.Counters {
		sr := s.counters[name]
		if sr == nil {
			sr = newSeries(s.capacity)
			s.counters[name] = sr
			// Backfill a zero baseline at the previous tick: a counter
			// appearing mid-run provably sat at zero before it was
			// registered, and without the baseline its entire first
			// burst would be invisible to windowed deltas until the
			// second sample.
			if s.ticks > 0 {
				sr.Append(Point{T: s.lastTick, V: 0})
			}
		}
		sr.Append(Point{T: t, V: float64(v)})
	}
	for name, v := range snap.Gauges {
		sr := s.gauges[name]
		if sr == nil {
			sr = newSeries(s.capacity)
			s.gauges[name] = sr
		}
		sr.Append(Point{T: t, V: float64(v)})
	}
	for name, h := range snap.Histograms {
		hs := s.hists[name]
		if hs == nil {
			hs = newHistSeries(s.capacity)
			s.hists[name] = hs
			// Same zero-baseline backfill as counters: an empty snapshot
			// with the new histogram's bucket layout.
			if s.ticks > 0 {
				hs.append(s.lastTick, telemetry.HistogramSnapshot{
					Bounds: h.Bounds, Counts: make([]uint64, len(h.Counts)),
				})
			}
		}
		hs.append(t, h)
	}
	s.ticks++
	s.lastTick = t
	return t
}

// Ticks returns how many samples have been taken.
func (s *Sampler) Ticks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// CounterRate returns the counter's per-second rate over the trailing
// window, and whether the window held enough samples to answer.
func (s *Sampler) CounterRate(name string, window time.Duration) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.counters[name]
	if sr == nil {
		return 0, false
	}
	return sr.Rate(s.now().Add(-window))
}

// CounterDelta returns how much the counter grew over the trailing window.
func (s *Sampler) CounterDelta(name string, window time.Duration) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.counters[name]
	if sr == nil {
		return 0, false
	}
	return sr.Delta(s.now().Add(-window))
}

// GaugeLast returns the gauge's most recent sample.
func (s *Sampler) GaugeLast(name string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.gauges[name]
	if sr == nil {
		return 0, false
	}
	p, ok := sr.Last()
	return p.V, ok
}

// GaugeQuantile estimates the q-th quantile of the gauge's sampled values
// inside the trailing window — "p99 of replication lag over 5 minutes" is a
// quantile over samples of a level, not over histogram observations, so it
// gets its own estimator.
func (s *Sampler) GaugeQuantile(name string, window time.Duration, q float64) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.gauges[name]
	if sr == nil {
		return 0, false
	}
	w := sr.Window(s.now().Add(-window))
	if len(w) == 0 {
		return 0, false
	}
	vals := make([]float64, len(w))
	for i, p := range w {
		vals[i] = p.V
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0], true
	}
	if q >= 1 {
		return vals[len(vals)-1], true
	}
	// Nearest-rank on the sampled values: the smallest sample with at least
	// a q fraction of the window at or below it.
	idx := int(math.Ceil(q*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx], true
}

// HistWindow returns the bucket-wise delta snapshot of the named histogram
// over the trailing window — exactly the observations recorded inside it.
func (s *Sampler) HistWindow(name string, window time.Duration) (telemetry.HistogramSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	hs := s.hists[name]
	if hs == nil {
		return telemetry.HistogramSnapshot{}, false
	}
	first, last, ok := hs.window(s.now().Add(-window))
	if !ok {
		return telemetry.HistogramSnapshot{}, false
	}
	d := deltaSnapshot(first, last)
	return d, d.Count > 0
}

// HistQuantile estimates the q-th quantile of observations recorded inside
// the trailing window.
func (s *Sampler) HistQuantile(name string, window time.Duration, q float64) (float64, bool) {
	d, ok := s.HistWindow(name, window)
	if !ok {
		return 0, false
	}
	return d.Quantile(q), true
}

// SeriesStats summarises one counter or gauge series for the /timeseries
// endpoint and `puflab top`.
type SeriesStats struct {
	// Last is the newest sampled value.
	Last float64 `json:"last"`
	// Rate is the per-second change over the window (counters only).
	Rate float64 `json:"rate,omitempty"`
	// Samples is how many points fell inside the window.
	Samples int `json:"samples"`
	// Points holds the raw samples when the dump was asked for them.
	Points []Point `json:"points,omitempty"`
}

// HistStats summarises one histogram's trailing window.
type HistStats struct {
	// Count is how many observations fell inside the window.
	Count uint64 `json:"count"`
	// Rate is observations per second over the window.
	Rate float64 `json:"rate"`
	// Mean, P50, P90, P99 describe the windowed distribution.
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
}

// Dump is the /timeseries payload: every series summarised over one
// trailing window.
type Dump struct {
	// At is the dump's evaluation time (the sampler's clock).
	At time.Time `json:"at"`
	// WindowSeconds is the trailing window the stats cover.
	WindowSeconds float64 `json:"window_seconds"`
	// Ticks is how many samples the sampler has taken in total.
	Ticks      int                    `json:"ticks"`
	Counters   map[string]SeriesStats `json:"counters"`
	Gauges     map[string]SeriesStats `json:"gauges"`
	Histograms map[string]HistStats   `json:"histograms"`
}

// Dump summarises every series over the trailing window.  withPoints
// includes the raw counter/gauge samples (the payload grows accordingly).
func (s *Sampler) Dump(window time.Duration, withPoints bool) Dump {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	since := now.Add(-window)
	d := Dump{
		At:            now,
		WindowSeconds: window.Seconds(),
		Ticks:         s.ticks,
		Counters:      make(map[string]SeriesStats, len(s.counters)),
		Gauges:        make(map[string]SeriesStats, len(s.gauges)),
		Histograms:    make(map[string]HistStats, len(s.hists)),
	}
	for name, sr := range s.counters {
		w := sr.Window(since)
		st := SeriesStats{Samples: len(w)}
		if p, ok := sr.Last(); ok {
			st.Last = p.V
		}
		if rate, ok := sr.Rate(since); ok {
			st.Rate = rate
		}
		if withPoints {
			st.Points = w
		}
		d.Counters[name] = st
	}
	for name, sr := range s.gauges {
		w := sr.Window(since)
		st := SeriesStats{Samples: len(w)}
		if p, ok := sr.Last(); ok {
			st.Last = p.V
		}
		if withPoints {
			st.Points = w
		}
		d.Gauges[name] = st
	}
	for name, hs := range s.hists {
		first, last, ok := hs.window(since)
		if !ok {
			continue
		}
		delta := deltaSnapshot(first, last)
		st := HistStats{
			Count: delta.Count,
			Mean:  delta.Mean(),
			P50:   delta.Quantile(0.5),
			P90:   delta.Quantile(0.9),
			P99:   delta.Quantile(0.99),
		}
		if window > 0 {
			st.Rate = float64(delta.Count) / window.Seconds()
		}
		d.Histograms[name] = st
	}
	return d
}

// SeriesNames returns the names of every retained series, sorted, for
// operator discovery.
func (s *Sampler) SeriesNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.counters)+len(s.gauges)+len(s.hists))
	for n := range s.counters {
		names = append(names, n)
	}
	for n := range s.gauges {
		names = append(names, n)
	}
	for n := range s.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler serves the /timeseries admin endpoint as application/json.
// Query parameters: window (Go duration, default 60s), points=1 to include
// raw samples.
func (s *Sampler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		window := time.Minute
		if q := r.URL.Query().Get("window"); q != "" {
			// Tolerant parse: a bad window means the default.
			if d, err := time.ParseDuration(q); err == nil && d > 0 {
				window = d
			}
		}
		withPoints := r.URL.Query().Get("points") == "1"
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Dump(window, withPoints))
	})
}
