package history

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"xorpuf/internal/telemetry"
)

// fakeClock is the injectable time source every test drives.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func TestSeriesRing(t *testing.T) {
	s := newSeries(4)
	base := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		s.Append(Point{T: base.Add(time.Duration(i) * time.Second), V: float64(i)})
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", s.Len())
	}
	// Oldest retained is i=6; newest i=9.
	if got := s.at(0).V; got != 6 {
		t.Fatalf("oldest = %v, want 6", got)
	}
	last, ok := s.Last()
	if !ok || last.V != 9 {
		t.Fatalf("Last = %+v ok=%v, want V=9", last, ok)
	}
	w := s.Window(base.Add(8 * time.Second))
	if len(w) != 2 || w[0].V != 8 || w[1].V != 9 {
		t.Fatalf("Window = %+v, want points 8,9", w)
	}
}

func TestSeriesRateAndDelta(t *testing.T) {
	s := newSeries(16)
	base := time.Unix(0, 0)
	// Counter growing 5/s for 10 samples, 1 s apart.
	for i := 0; i <= 10; i++ {
		s.Append(Point{T: base.Add(time.Duration(i) * time.Second), V: float64(5 * i)})
	}
	d, ok := s.Delta(base.Add(5 * time.Second))
	if !ok || d != 25 {
		t.Fatalf("Delta = %v ok=%v, want 25", d, ok)
	}
	r, ok := s.Rate(base.Add(5 * time.Second))
	if !ok || math.Abs(r-5) > 1e-9 {
		t.Fatalf("Rate = %v ok=%v, want 5/s", r, ok)
	}
	// A single in-window point answers nothing.
	if _, ok := s.Rate(base.Add(10 * time.Second)); ok {
		t.Fatal("Rate over a one-point window should report no data")
	}
}

// TestSeriesCounterReset: a counter reset (restart) must clamp to zero,
// not report a huge negative rate.
func TestSeriesCounterReset(t *testing.T) {
	s := newSeries(8)
	base := time.Unix(0, 0)
	s.Append(Point{T: base, V: 1000})
	s.Append(Point{T: base.Add(time.Second), V: 3}) // reset
	d, ok := s.Delta(base.Add(-time.Second))
	if !ok || d != 0 {
		t.Fatalf("Delta after reset = %v ok=%v, want clamped 0", d, ok)
	}
}

func TestSamplerTickAndQueries(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("sessions_total")
	g := reg.Gauge("active")
	h := reg.Histogram("latency_seconds", telemetry.LatencyBuckets)

	s := NewSampler(reg, Options{Capacity: 64, Now: clk.Now})
	// Ten ticks, 1 s apart: counter +10/s, gauge = tick index, one 2 ms
	// observation per tick.
	for i := 0; i < 10; i++ {
		ctr.Add(10)
		g.Set(int64(i))
		h.Observe(0.002)
		s.Tick()
		clk.Advance(time.Second)
	}
	if s.Ticks() != 10 {
		t.Fatalf("Ticks = %d", s.Ticks())
	}
	rate, ok := s.CounterRate("sessions_total", 5*time.Second)
	if !ok || math.Abs(rate-10) > 1e-9 {
		t.Fatalf("CounterRate = %v ok=%v, want 10/s", rate, ok)
	}
	v, ok := s.GaugeLast("active")
	if !ok || v != 9 {
		t.Fatalf("GaugeLast = %v ok=%v, want 9", v, ok)
	}
	q, ok := s.HistQuantile("latency_seconds", 5*time.Second, 0.99)
	if !ok || q <= 0 || q > 0.0025 {
		t.Fatalf("HistQuantile = %v ok=%v, want ~2ms (in the 2.5ms bucket)", q, ok)
	}
	if _, ok := s.CounterRate("never_registered", time.Minute); ok {
		t.Fatal("unknown series should report no data")
	}
}

// TestSamplerGaugeQuantile: nearest-rank quantiles over a gauge's sampled
// trajectory — the estimator behind level SLOs like replication lag p99.
func TestSamplerGaugeQuantile(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	g := reg.Gauge("lag")
	s := NewSampler(reg, Options{Capacity: 128, Now: clk.Now})

	// 100 samples, 1 s apart, values 1..100.
	for i := 1; i <= 100; i++ {
		g.Set(int64(i))
		s.Tick()
		clk.Advance(time.Second)
	}
	// All 100 samples in-window: nearest-rank p50 = 50, p99 = 99, and the
	// extremes clamp to min/max.
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 50}, {0.99, 99}, {0, 1}, {1, 100}} {
		v, ok := s.GaugeQuantile("lag", 200*time.Second, tc.q)
		if !ok || v != tc.want {
			t.Fatalf("GaugeQuantile(q=%v) = %v ok=%v, want %v", tc.q, v, ok, tc.want)
		}
	}
	// A narrow window sees only the tail samples.
	v, ok := s.GaugeQuantile("lag", 10*time.Second, 0.5)
	if !ok || v < 90 {
		t.Fatalf("windowed GaugeQuantile = %v ok=%v, want >= 90 (tail only)", v, ok)
	}
	// Unknown gauges and empty windows report no data, not zero.
	if _, ok := s.GaugeQuantile("never_registered", time.Minute, 0.99); ok {
		t.Fatal("unknown gauge should report no data")
	}
	if _, ok := s.GaugeQuantile("lag", 0, 0.99); ok {
		t.Fatal("empty window should report no data")
	}
}

// TestSamplerWindowedQuantileIsolatesSpike: the windowed histogram delta
// must reflect only observations inside the window — the whole point of
// keeping snapshot rings instead of scalar quantiles.
func TestSamplerWindowedQuantileIsolatesSpike(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat", telemetry.LatencyBuckets)
	s := NewSampler(reg, Options{Now: clk.Now})

	// Empty baseline sample, then phase 1: 1000 fast (1 ms) observations.
	s.Tick()
	clk.Advance(10 * time.Second)
	for i := 0; i < 1000; i++ {
		h.Observe(0.001)
	}
	s.Tick()
	clk.Advance(10 * time.Second)

	// Phase 2: 100 slow (400 ms) observations only.
	for i := 0; i < 100; i++ {
		h.Observe(0.4)
	}
	s.Tick()

	// Over the last 15 s (covering only the phase-2 delta), p99 must be in
	// the 400 ms bucket despite the 1000 fast observations dominating the
	// cumulative histogram.
	q, ok := s.HistQuantile("lat", 15*time.Second, 0.99)
	if !ok || q < 0.25 {
		t.Fatalf("windowed p99 = %v ok=%v, want >= 0.25 (spike bucket)", q, ok)
	}
	// The lifetime window still sees mostly fast traffic.
	q, ok = s.HistQuantile("lat", time.Hour, 0.5)
	if !ok || q > 0.01 {
		t.Fatalf("lifetime p50 = %v ok=%v, want ~1ms", q, ok)
	}
}

func TestSamplerCollectorsRunPerTick(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	runs := 0
	s := NewSampler(reg, Options{Now: clk.Now, Collectors: []func(){func() { runs++ }}})
	s.Tick()
	s.Tick()
	if runs != 2 {
		t.Fatalf("collector ran %d times, want 2", runs)
	}
}

// TestRuntimeCollectorSampled: the runtime collector's instruments land in
// the same sampler timeline as everything else (satellite: runtime
// collector registered into the registry and sampled by the history
// ticker).
func TestRuntimeCollectorSampled(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	s := NewSampler(reg, Options{Now: clk.Now, Collectors: []func(){
		telemetry.RuntimeCollector(reg, clk.Now),
	}})
	s.Tick()
	clk.Advance(30 * time.Second)
	s.Tick()

	g, ok := s.GaugeLast("runtime_goroutines")
	if !ok || g < 1 {
		t.Fatalf("runtime_goroutines = %v ok=%v, want >= 1", g, ok)
	}
	heap, ok := s.GaugeLast("runtime_heap_inuse_bytes")
	if !ok || heap <= 0 {
		t.Fatalf("runtime_heap_inuse_bytes = %v ok=%v", heap, ok)
	}
	up, ok := s.GaugeLast("runtime_uptime_seconds")
	if !ok || up != 30 {
		t.Fatalf("runtime_uptime_seconds = %v ok=%v, want 30 (fake clock)", up, ok)
	}
}

func TestDumpAndHandler(t *testing.T) {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("c_total")
	h := reg.Histogram("h_seconds", telemetry.LatencyBuckets)
	s := NewSampler(reg, Options{Now: clk.Now})
	for i := 0; i < 5; i++ {
		ctr.Add(7)
		h.Observe(0.01)
		s.Tick()
		clk.Advance(2 * time.Second)
	}

	d := s.Dump(time.Minute, true)
	cs, ok := d.Counters["c_total"]
	if !ok || cs.Last != 35 || len(cs.Points) != 5 {
		t.Fatalf("counter stats = %+v ok=%v", cs, ok)
	}
	hs, ok := d.Histograms["h_seconds"]
	if !ok || hs.Count != 4 { // delta between first and last in-window sample
		t.Fatalf("hist stats = %+v ok=%v", hs, ok)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/timeseries?window=30s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/timeseries Content-Type = %q, want application/json", ct)
	}
	var got Dump
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decoding /timeseries: %v", err)
	}
	if got.WindowSeconds != 30 || got.Counters["c_total"].Last != 35 {
		t.Fatalf("dump over HTTP = %+v", got)
	}
	if len(got.Counters["c_total"].Points) != 0 {
		t.Fatal("points included without points=1")
	}
}

func TestSeriesNames(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("b_total")
	reg.Gauge("a_gauge")
	clk := newFakeClock()
	s := NewSampler(reg, Options{Now: clk.Now})
	s.Tick()
	names := s.SeriesNames()
	if len(names) != 2 || names[0] != "a_gauge" || names[1] != "b_total" {
		t.Fatalf("SeriesNames = %v", names)
	}
}

// TestNilRegistry: a sampler over a nil registry must answer (with no
// data) rather than panic, so wiring can be unconditional.
func TestNilRegistry(t *testing.T) {
	s := NewSampler(nil, Options{Now: newFakeClock().Now})
	s.Tick()
	if _, ok := s.CounterRate("x", time.Minute); ok {
		t.Fatal("nil-registry sampler should have no data")
	}
}
