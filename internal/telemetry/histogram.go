package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution: counts per bucket plus a total
// count and sum.  Observe is lock-free and allocation-free: one binary
// search over the bounds, one atomic add, one CAS loop for the float sum.
// Buckets use "less than or equal" upper-bound semantics: an observation
// equal to a bound lands in that bound's bucket.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated

	// ex is the most recent exemplar — a trace ID attached to one
	// observation, linking the aggregate back to a concrete session.  An
	// atomically swapped pointer: ObserveExemplar stays lock-free and the
	// plain Observe path is untouched.
	ex atomic.Pointer[exemplar]
}

// exemplar pairs one observed value with the trace that produced it.
type exemplar struct {
	trace string
	value float64
}

// NewHistogram creates a histogram with the given strictly increasing
// bucket upper bounds (an implicit +Inf bucket is appended).  It panics on
// empty or non-increasing bounds — bucket layouts are static configuration,
// not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must be sorted ascending")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			panic("telemetry: duplicate histogram bound")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.  Safe for concurrent use; nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Binary search for the first bound ≥ v; sort.SearchFloat64s would
	// allocate a closure-free path too, but an inline loop keeps this in
	// the few-ns range.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the idiom for
// latency instrumentation: defer h.ObserveSince(time.Now()).
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// ObserveExemplar records one value and, when trace is non-empty, retains it
// as the histogram's exemplar: the trace ID of a concrete session behind the
// aggregate, surfaced in the JSON snapshot and by SLO alerts.  Untraced
// observations (trace == "") are exactly Observe — they never clobber a
// retained exemplar.
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.Observe(v)
	if trace != "" {
		h.ex.Store(&exemplar{trace: trace, value: v})
	}
}

// Exemplar returns the most recently retained exemplar trace ID and its
// observed value, or ("", 0) when no traced observation has occurred.
func (h *Histogram) Exemplar() (trace string, value float64) {
	if h == nil {
		return "", 0
	}
	if e := h.ex.Load(); e != nil {
		return e.trace, e.value
	}
	return "", 0
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot copies the histogram state.  Bucket counts and the total are
// read without a global lock, so a snapshot taken under concurrent Observe
// calls may be skewed by in-flight observations; totals never go backward.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.Sum(),
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.ExemplarTrace, s.ExemplarValue = h.Exemplar()
	return s
}

// LatencyBuckets spans 1 µs to 10 s in a 1-2.5-5 decade ladder — wide
// enough for an in-memory WAL append and a cross-continent authentication
// round trip on the same scale.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// SizeBuckets spans 64 B to 1 MiB in powers of four — frame and payload
// sizes, capped by the 1 MiB netauth frame limit.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
}
