package telemetry

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create: second lookup returned a different instrument")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-10)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Inc()
	h.Observe(1)
	h.ObserveSince(time.Now())
	tr.Record(SessionTrace{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Len() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var nilReg *Registry
	if s := nilReg.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestHistogramBucketBoundaries pins the ≤-bound semantics: a value equal to
// a bound lands in that bound's bucket, a value above every bound lands in
// the implicit +Inf bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 2.5, 5, 10}
	cases := []struct {
		value  float64
		bucket int // index into counts, len(bounds) = +Inf
	}{
		{-1, 0},
		{0, 0},
		{0.5, 0},
		{1, 0},      // equal to bound 1 → its bucket
		{1.0001, 1}, // just above → next bucket
		{2.5, 1},    // equal to bound 2.5
		{2.6, 2},    //
		{5, 2},      // equal to bound 5
		{9.999, 3},  //
		{10, 3},     // equal to the last finite bound
		{10.001, 4}, // above every bound → +Inf bucket
		{1e300, 4},  //
		{math.Inf(1), 4},
	}
	for _, tc := range cases {
		h := NewHistogram(bounds)
		h.Observe(tc.value)
		s := h.Snapshot()
		for i, c := range s.Counts {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if c != want {
				t.Errorf("Observe(%g): bucket[%d] = %d, want %d", tc.value, i, c, want)
			}
		}
		if s.Count != 1 {
			t.Errorf("Observe(%g): count = %d, want 1", tc.value, s.Count)
		}
	}

	t.Run("nan-ignored", func(t *testing.T) {
		h := NewHistogram(bounds)
		h.Observe(math.NaN())
		if h.Count() != 0 {
			t.Fatal("NaN observation must be dropped")
		}
	})
	t.Run("bad-bounds-panic", func(t *testing.T) {
		for _, bad := range [][]float64{nil, {}, {2, 1}, {1, 1}} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("NewHistogram(%v) did not panic", bad)
					}
				}()
				NewHistogram(bad)
			}()
		}
	})
}

func TestHistogramMeanAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4})
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Mean(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("mean = %g, want 2", got)
	}
	if q := s.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("p0 = %g, want within first bucket", q)
	}
	if q := s.Quantile(1); math.Abs(q-4) > 1e-9 {
		t.Fatalf("p100 = %g, want 4", q)
	}
	// Everything in the +Inf bucket: quantiles saturate at the last bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if q := h2.Snapshot().Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %g, want saturation at 2", q)
	}
	var empty HistogramSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot statistics must be zero")
	}
}

// TestSnapshotTextGolden pins the /metrics text format against a golden
// file.  The format is an interface consumed by scrapers; changes must be
// deliberate (regenerate with -update).
var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestSnapshotTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("auth_total").Add(42)
	r.Counter("a_first").Inc()
	r.Gauge("active_sessions").Set(-3)
	h := r.Histogram("latency_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.01)
	h.Observe(5)

	got := r.Snapshot().Text()
	golden := filepath.Join("testdata", "metrics.golden")
	if update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("text format drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(-1)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	b, err := r.Snapshot().MarshalJSONIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 7 || back.Gauges["g"] != -1 || back.Histograms["h"].Count != 1 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

// TestConcurrentIncrements hammers every instrument type from many
// goroutines; totals must be exact and the race detector must stay quiet.
func TestConcurrentIncrements(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Get-or-create from every goroutine: the registry map itself
			// is part of the contract under test.
			c := r.Counter("shared_counter")
			g := r.Gauge("shared_gauge")
			h := r.Histogram("shared_hist", []float64{0.5, 1.5})
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["shared_counter"]; got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := s.Gauges["shared_gauge"]; got != goroutines*perG {
		t.Fatalf("gauge = %d, want %d", got, goroutines*perG)
	}
	hs := s.Histograms["shared_hist"]
	if hs.Count != goroutines*perG || hs.Counts[1] != goroutines*perG {
		t.Fatalf("histogram count = %d bucket1 = %d, want %d", hs.Count, hs.Counts[1], goroutines*perG)
	}
	if math.Abs(hs.Sum-goroutines*perG) > 1e-6 {
		t.Fatalf("histogram sum = %g, want %d", hs.Sum, goroutines*perG)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(SessionTrace{Session: string(rune('a' + i))})
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", tr.Len())
	}
	recent := tr.Recent(10)
	if len(recent) != 3 {
		t.Fatalf("Recent returned %d, want 3", len(recent))
	}
	// Newest first: e, d, c survived the wrap.
	for i, want := range []string{"e", "d", "c"} {
		if recent[i].Session != want {
			t.Fatalf("recent[%d] = %q, want %q", i, recent[i].Session, want)
		}
	}
	if got := tr.Recent(1); len(got) != 1 || got[0].Session != "e" {
		t.Fatalf("Recent(1) = %+v, want just the newest", got)
	}
}

func TestTraceStepHelper(t *testing.T) {
	var st SessionTrace
	st.Step("hello", 2*time.Millisecond)
	st.Step("verdict", time.Millisecond)
	if len(st.Steps) != 2 || st.Steps[0].Name != "hello" || st.Steps[1].Seconds != 0.001 {
		t.Fatalf("steps = %+v", st.Steps)
	}
}
