package telemetry

import (
	"sync"
	"time"
)

// TraceStep is one timed phase of an authentication session — a message
// round trip, a challenge-selection pass, a verdict write.
type TraceStep struct {
	// Name labels the phase ("hello", "select", "device_rtt", "verdict").
	Name string `json:"name"`
	// Seconds is the phase's wall-clock duration.
	Seconds float64 `json:"seconds"`
}

// SessionTrace is the record of one authentication session as the server
// (or client) saw it: identity, per-phase timings, and the outcome.
type SessionTrace struct {
	// Session is the server-assigned session ID (empty when the session
	// failed before one was assigned).
	Session string `json:"session,omitempty"`
	// TraceID is the distributed trace this session belongs to (32 hex
	// chars, empty for untraced sessions) — the cross-link from the
	// per-process session ring into the dtrace span trees.
	TraceID string `json:"trace_id,omitempty"`
	// ChipID identifies the chip, as claimed in the hello.
	ChipID string `json:"chip_id,omitempty"`
	// Start is when the session began.
	Start time.Time `json:"start"`
	// Verdict is the outcome: "approved", "denied", or "error".
	Verdict string `json:"verdict"`
	// DenialCode is the wire error code for "error" verdicts (one of the
	// netauth Code* constants).
	DenialCode string `json:"denial_code,omitempty"`
	// Mismatches is the mismatched-bit count of a completed verdict.
	Mismatches int `json:"mismatches"`
	// Challenges is how many challenges the session burned (0 for sessions
	// refused before selection) — the anomaly detector's velocity signal.
	Challenges int `json:"challenges"`
	// Retries counts protocol retries beyond the first attempt
	// (client-side traces; servers see each attempt as its own session).
	Retries int `json:"retries"`
	// Steps are the per-phase timings in execution order.
	Steps []TraceStep `json:"steps,omitempty"`
	// TotalSeconds is the whole session's wall-clock duration.
	TotalSeconds float64 `json:"total_seconds"`
}

// Step appends a timed phase.
func (t *SessionTrace) Step(name string, d time.Duration) {
	t.Steps = append(t.Steps, TraceStep{Name: name, Seconds: d.Seconds()})
}

// Tracer retains the most recent session traces in a fixed-capacity ring.
// Recording is O(1) with one short critical section; the ring never grows,
// so a flood of sessions cannot balloon memory.  All methods are safe for
// concurrent use and nil-safe.
type Tracer struct {
	mu   sync.Mutex
	ring []SessionTrace
	next int
	full bool
}

// NewTracer returns a tracer retaining the last capacity sessions
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]SessionTrace, capacity)}
}

// Record stores one completed session trace, evicting the oldest when the
// ring is full.
func (t *Tracer) Record(tr SessionTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = tr
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Len returns how many traces are retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}

// Recent returns up to n traces, newest first.  n ≤ 0 returns everything
// retained.
func (t *Tracer) Recent(n int) []SessionTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.full {
		size = len(t.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]SessionTrace, 0, n)
	for i := 1; i <= n; i++ {
		idx := t.next - i
		if idx < 0 {
			idx += len(t.ring)
		}
		out = append(out, t.ring[idx])
	}
	return out
}
