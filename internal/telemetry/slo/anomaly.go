package slo

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// AnomalyConfig tunes the per-chip attack-pattern detector.  The zero
// value takes every default.
//
// Rationale: the paper's security argument is quantitative — an n ≥ 10 XOR
// PUF resists modeling at ~10⁶ CRPs — and the chosen-challenge /
// reliability-assisted attacks all share one observable precondition: the
// attacker must pull CRPs out of one chip far faster, and with a far
// stranger denial mix, than any legitimate device ever authenticates.
// Challenge-consumption velocity and denial fraction per chip are therefore
// the two signals; a chip tripping both (or velocity alone at extreme rate)
// raises a suspected-modeling-attack alert through the same pending →
// firing → resolved machine as the SLO rules.
type AnomalyConfig struct {
	// Window is the trailing window velocities are measured over
	// (default 1 min).
	Window time.Duration
	// MaxChallengesPerMin is the per-chip challenge-consumption velocity
	// that alone marks farming, regardless of verdicts (default 1000 —
	// a legitimate device authenticates a handful of times a minute at
	// ~100 challenges each).
	MaxChallengesPerMin float64
	// SuspectChallengesPerMin and SuspectDenialFraction together mark the
	// cheaper signature: moderately elevated consumption whose sessions
	// mostly fail (an impostor or a model still below the zero-HD bar).
	// Defaults 300 and 0.5.
	SuspectChallengesPerMin float64
	SuspectDenialFraction   float64
	// MinSessions is how many sessions must fall in the window before the
	// detector judges at all (default 5).
	MinSessions int
	// PendingFor / ResolveAfter are the alert dwells (defaults 10 s / 30 s).
	PendingFor   time.Duration
	ResolveAfter time.Duration
	// MaxChips bounds tracked per-chip state; when exceeded, the
	// longest-idle chip is evicted (default 4096).
	MaxChips int
}

func (c *AnomalyConfig) fillDefaults() {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.MaxChallengesPerMin <= 0 {
		c.MaxChallengesPerMin = 1000
	}
	if c.SuspectChallengesPerMin <= 0 {
		c.SuspectChallengesPerMin = 300
	}
	if c.SuspectDenialFraction <= 0 {
		c.SuspectDenialFraction = 0.5
	}
	if c.MinSessions <= 0 {
		c.MinSessions = 5
	}
	if c.PendingFor < 0 {
		c.PendingFor = 0
	} else if c.PendingFor == 0 {
		c.PendingFor = 10 * time.Second
	}
	if c.ResolveAfter <= 0 {
		c.ResolveAfter = 30 * time.Second
	}
	if c.MaxChips <= 0 {
		c.MaxChips = 4096
	}
}

// sessionSample is one observed session in a chip's sliding window.
type sessionSample struct {
	at         time.Time
	challenges int
	denied     bool
}

// chipWindow is one chip's sliding window plus its alert machine.
type chipWindow struct {
	samples []sessionSample
	alert   alertMachine
	lastAt  time.Time
}

// trim drops samples older than the window.
func (c *chipWindow) trim(since time.Time) {
	keep := c.samples[:0]
	for _, s := range c.samples {
		if !s.at.Before(since) {
			keep = append(keep, s)
		}
	}
	c.samples = keep
}

// AnomalyDetector watches per-chip challenge-consumption velocity and
// denial mix and raises suspected-modeling-attack alerts.  It implements
// Evaluator; attach it to an Engine so its alerts share the /alerts
// surface.  Feeding (ObserveSession) and evaluation are both
// concurrency-safe.
type AnomalyDetector struct {
	cfg AnomalyConfig
	now func() time.Time

	mu    sync.Mutex
	chips map[string]*chipWindow
}

// NewAnomalyDetector builds a detector on the given clock (required — the
// detector, like the sampler, never reads the wall clock itself).
func NewAnomalyDetector(cfg AnomalyConfig, now func() time.Time) *AnomalyDetector {
	if now == nil {
		now = time.Now
	}
	cfg.fillDefaults()
	return &AnomalyDetector{cfg: cfg, now: now, chips: make(map[string]*chipWindow)}
}

// AlertNameFor is the alert identity for one chip's detector.
func AlertNameFor(chipID string) string { return "suspected-modeling-attack:" + chipID }

// ChipIDFromAlert inverts AlertNameFor, returning "" for non-anomaly
// alert names — the enforcement hook uses it to find which chip to lock.
func ChipIDFromAlert(name string) string {
	const prefix = "suspected-modeling-attack:"
	if len(name) > len(prefix) && name[:len(prefix)] == prefix {
		return name[len(prefix):]
	}
	return ""
}

// ObserveSession feeds one completed (or refused) session: how many
// challenges it burned and whether it ended in a denial.  Refused sessions
// (throttled, locked out) burn zero challenges but still count toward the
// denial mix — a lockout storm on one chip is itself an attack signature.
func (d *AnomalyDetector) ObserveSession(chipID string, challenges int, denied bool) {
	if chipID == "" {
		return
	}
	now := d.now()
	d.mu.Lock()
	defer d.mu.Unlock()
	cw := d.chips[chipID]
	if cw == nil {
		if len(d.chips) >= d.cfg.MaxChips {
			d.evictIdlest()
		}
		cw = &chipWindow{}
		d.chips[chipID] = cw
	}
	cw.samples = append(cw.samples, sessionSample{at: now, challenges: challenges, denied: denied})
	cw.lastAt = now
	cw.trim(now.Add(-d.cfg.Window))
}

// evictIdlest drops the longest-idle chip; caller holds d.mu.  Chips with
// a non-inactive alert are never evicted — an attacker must not be able to
// flush their own alert by spraying other chip IDs.
func (d *AnomalyDetector) evictIdlest() {
	var (
		victim string
		oldest time.Time
	)
	for id, cw := range d.chips {
		if cw.alert.state == Pending || cw.alert.state == Firing {
			continue
		}
		if victim == "" || cw.lastAt.Before(oldest) {
			victim, oldest = id, cw.lastAt
		}
	}
	if victim != "" {
		delete(d.chips, victim)
	}
}

// judge computes one chip's condition over its trimmed window.
func (d *AnomalyDetector) judge(cw *chipWindow) (cond bool, velocity float64, reason string) {
	sessions := len(cw.samples)
	challenges, denials := 0, 0
	for _, s := range cw.samples {
		challenges += s.challenges
		if s.denied {
			denials++
		}
	}
	perMin := float64(challenges) / d.cfg.Window.Minutes()
	if sessions < d.cfg.MinSessions {
		return false, perMin, ""
	}
	denialFrac := float64(denials) / float64(sessions)
	switch {
	case perMin >= d.cfg.MaxChallengesPerMin:
		return true, perMin, fmt.Sprintf(
			"challenge velocity %.0f/min over %v exceeds %.0f/min (CRP farming)",
			perMin, d.cfg.Window, d.cfg.MaxChallengesPerMin)
	case perMin >= d.cfg.SuspectChallengesPerMin && denialFrac >= d.cfg.SuspectDenialFraction:
		return true, perMin, fmt.Sprintf(
			"challenge velocity %.0f/min with %.0f%% denials over %v (chosen-challenge probing)",
			perMin, denialFrac*100, d.cfg.Window)
	}
	return false, perMin, ""
}

// Evaluate advances every tracked chip's alert to now (Evaluator).
func (d *AnomalyDetector) Evaluate(now time.Time) []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []Event
	for id, cw := range d.chips {
		cw.trim(now.Add(-d.cfg.Window))
		cond, velocity, reason := d.judge(cw)
		from, to, changed := cw.alert.step(cond, velocity, reason, now, d.cfg.PendingFor, d.cfg.ResolveAfter)
		if changed {
			out = append(out, Event{
				Name: AlertNameFor(id), Severity: "page",
				From: from, To: to, FromState: from.String(), ToState: to.String(),
				At: now, Value: velocity, Reason: cw.alert.lastReason,
			})
		}
		// Forget chips that have gone fully quiet and never fired, so the
		// map tracks the active fleet, not every chip ever seen.  Resolved
		// chips stay visible on /alerts until evicted by MaxChips pressure.
		if len(cw.samples) == 0 && cw.alert.state == Inactive {
			delete(d.chips, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Alerts snapshots every tracked chip's alert state (Evaluator).
func (d *AnomalyDetector) Alerts() []Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Status, 0, len(d.chips))
	for id, cw := range d.chips {
		out = append(out, cw.alert.status(AlertNameFor(id), "page"))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Tracked returns how many chips currently hold window state.
func (d *AnomalyDetector) Tracked() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.chips)
}
