// Package slo evaluates declarative service-level objectives against the
// time-series history and runs every alert in the process — burn-rate SLO
// alerts and attack-pattern anomaly alerts — through one pending → firing →
// resolved state machine.
//
// Objectives come in two kinds:
//
//   - Ratio: a bad-event fraction against an error budget.  The budget is
//     1 − Target; the burn rate is badFraction / budget, so burn 1.0 means
//     "spending budget exactly as fast as the SLO allows" and burn 14
//     means "the whole month's budget gone in ~2 hours".
//   - Latency: a windowed quantile of a histogram against a threshold; the
//     burn rate is quantile / threshold.
//   - Gauge: a windowed quantile of a sampled gauge level against a limit;
//     the burn rate is quantile / limit.  This covers objectives over
//     levels rather than events — "replication lag p99 stays under N
//     records" is a statement about a gauge's trajectory, not a counter's.
//
// Rules are multi-window: the condition requires the burn rate to exceed
// the rule's threshold over BOTH a long and a short trailing window.  The
// long window keeps one transient spike from paging; the short window makes
// the alert resolve promptly once the bleeding stops (a long window alone
// would stay red for its whole width).  This is the classic SRE-workbook
// construction, scaled down to the windows a test (or a demo fleet) wants.
//
// Everything is clocked by the history.Sampler's injected Now, so unit
// tests drive the full pending → firing → resolved lifecycle with a fake
// clock and zero sleeps.
package slo

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"xorpuf/internal/telemetry/history"
)

// Kind distinguishes objective arithmetic.
type Kind string

const (
	// KindRatio: bad-event fraction vs an error budget.
	KindRatio Kind = "ratio"
	// KindLatency: windowed histogram quantile vs a threshold.
	KindLatency Kind = "latency"
	// KindGauge: windowed gauge-level quantile vs a limit.
	KindGauge Kind = "gauge"
)

// Objective declares one SLO.
type Objective struct {
	// Name identifies the objective ("auth-success-rate").
	Name string `json:"name"`
	Kind Kind   `json:"kind"`

	// Ratio objectives: either Good/Total (success counters) or Bad/Total
	// (failure counters).  Exactly one of Good or Bad is set.  The bad
	// fraction is 1 − good/total, or bad/total.
	Good  string `json:"good,omitempty"`
	Bad   string `json:"bad,omitempty"`
	Total string `json:"total,omitempty"`
	// Target is the objective on the good fraction (0.999 = "99.9 % of
	// sessions complete"); the error budget is 1 − Target.
	Target float64 `json:"target,omitempty"`

	// Latency objectives: Quantile of Histogram must stay at or below
	// Threshold seconds.
	Histogram string  `json:"histogram,omitempty"`
	Quantile  float64 `json:"quantile,omitempty"`
	Threshold float64 `json:"threshold_seconds,omitempty"`

	// Gauge objectives: Quantile of the sampled Gauge level must stay at
	// or below Limit (in the gauge's own unit).
	Gauge string  `json:"gauge,omitempty"`
	Limit float64 `json:"limit,omitempty"`
}

// Rule binds an objective to its burn-rate windows and alert dwells.
type Rule struct {
	Objective Objective `json:"objective"`
	// LongWindow and ShortWindow are the two trailing windows whose burn
	// rates must BOTH exceed Burn for the condition to hold.
	LongWindow  time.Duration `json:"long_window"`
	ShortWindow time.Duration `json:"short_window"`
	// Burn is the burn-rate threshold (ratio kind: multiples of budget
	// spend; latency kind: multiples of the threshold, so 1.0 = "p99 over
	// the limit").
	Burn float64 `json:"burn"`
	// PendingFor is how long the condition must hold before Firing;
	// ResolveAfter how long it must stay clear before Resolved.
	PendingFor   time.Duration `json:"pending_for"`
	ResolveAfter time.Duration `json:"resolve_after"`
	// Severity labels the page ("page", "ticket").
	Severity string `json:"severity"`
}

// AlertName is the rule's entry in the alert set.
func (r Rule) AlertName() string { return "slo:" + r.Objective.Name }

// ObjectiveStatus is one objective's evaluation, served on /slo.
type ObjectiveStatus struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// GoodFraction is the long-window good fraction (ratio kind).
	GoodFraction float64 `json:"good_fraction,omitempty"`
	// QuantileSeconds is the long-window quantile (latency kind).
	QuantileSeconds float64 `json:"quantile_seconds,omitempty"`
	// GaugeValue is the long-window gauge quantile (gauge kind).
	GaugeValue float64 `json:"gauge_value,omitempty"`
	// LongBurn and ShortBurn are the two windows' burn rates.
	LongBurn  float64 `json:"long_burn"`
	ShortBurn float64 `json:"short_burn"`
	// BudgetRemaining is 1 − badFraction/budget over the long window
	// (ratio kind), clamped at 0: how much of the window's error budget is
	// left.
	BudgetRemaining float64 `json:"budget_remaining,omitempty"`
	// HasData reports whether both windows held enough samples to judge.
	HasData bool `json:"has_data"`
	// State is the bound alert's current state.
	State string `json:"state"`
}

// Evaluator is an external alert source stepped by the engine on every
// Evaluate — the anomaly detector implements it.  Implementations must be
// safe for concurrent use with their own feeding paths.
type Evaluator interface {
	// Evaluate advances the source's alerts to now and returns any
	// transitions.
	Evaluate(now time.Time) []Event
	// Alerts snapshots the source's alert states.
	Alerts() []Status
}

// Engine owns the burn-rate rules and the merged alert surface.
type Engine struct {
	hist *history.Sampler

	mu       sync.Mutex
	rules    []Rule
	alerts   map[string]*alertMachine
	last     map[string]ObjectiveStatus
	external []Evaluator
	events   []Event
	onEvent  func(Event)
	// exemplar, when set, maps a histogram name to the trace ID (and value)
	// of its most recent traced observation; latency rules consult it each
	// evaluation so alerts carry a concrete offending trace.
	exemplar func(hist string) (trace string, value float64)
}

// maxEventLog bounds the retained transition history.
const maxEventLog = 256

// NewEngine builds an engine over the sampler's history and clock.
func NewEngine(hist *history.Sampler, rules []Rule) *Engine {
	e := &Engine{
		hist:   hist,
		alerts: make(map[string]*alertMachine),
		last:   make(map[string]ObjectiveStatus),
	}
	for _, r := range rules {
		e.AddRule(r)
	}
	return e
}

// AddRule registers one burn-rate rule.
func (e *Engine) AddRule(r Rule) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = append(e.rules, r)
	e.alerts[r.AlertName()] = &alertMachine{}
}

// Attach registers an external alert source (the anomaly detector).
func (e *Engine) Attach(ev Evaluator) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.external = append(e.external, ev)
}

// OnEvent registers fn to observe every alert transition.  fn runs on the
// evaluating goroutine with no engine lock held; keep it fast or hand off.
func (e *Engine) OnEvent(fn func(Event)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onEvent = fn
}

// SetExemplarSource wires the engine to histogram exemplars: fn maps a
// histogram name to the trace ID of its most recent traced observation (and
// the observed value), typically telemetry.Registry.FindHistogram(name).
// Exemplar().  Latency rules consult it every evaluation; the latest
// non-empty trace rides the rule's events and /alerts status, so a burning
// SLO points at a session to pull up with `puflab trace show`.  fn must be
// safe for concurrent use; an empty trace return means "no exemplar yet"
// and leaves the previous one in place.
func (e *Engine) SetExemplarSource(fn func(hist string) (trace string, value float64)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.exemplar = fn
}

// burnRatio evaluates a ratio objective over one window.
func (e *Engine) burnRatio(o Objective, window time.Duration) (burn, goodFrac, badFrac float64, ok bool) {
	total, ok := e.hist.CounterDelta(o.Total, window)
	if !ok || total <= 0 {
		return 0, 0, 0, false
	}
	var bad float64
	if o.Bad != "" {
		b, okB := e.hist.CounterDelta(o.Bad, window)
		if !okB {
			// The bad counter may simply not have been registered yet (no
			// bad events ever): treat as zero rather than no-data.
			b = 0
		}
		bad = b
	} else {
		good, okG := e.hist.CounterDelta(o.Good, window)
		if !okG {
			return 0, 0, 0, false
		}
		bad = total - good
	}
	if bad < 0 {
		bad = 0
	}
	if bad > total {
		bad = total
	}
	badFrac = bad / total
	budget := 1 - o.Target
	if budget <= 0 {
		budget = 1e-9 // a 100% target burns infinitely fast on any failure
	}
	return badFrac / budget, 1 - badFrac, badFrac, true
}

// burnLatency evaluates a latency objective over one window.
func (e *Engine) burnLatency(o Objective, window time.Duration) (burn, quantile float64, ok bool) {
	q, ok := e.hist.HistQuantile(o.Histogram, window, o.Quantile)
	if !ok {
		return 0, 0, false
	}
	thr := o.Threshold
	if thr <= 0 {
		return 0, q, false
	}
	return q / thr, q, true
}

// burnGauge evaluates a gauge objective over one window.  A gauge that has
// never been sampled (this deployment does not replicate, say) reports
// no-data, which keeps the bound alert inactive rather than green-washing
// or paging on absence.
func (e *Engine) burnGauge(o Objective, window time.Duration) (burn, quantile float64, ok bool) {
	q, ok := e.hist.GaugeQuantile(o.Gauge, window, o.Quantile)
	if !ok {
		return 0, 0, false
	}
	if o.Limit <= 0 {
		return 0, q, false
	}
	return q / o.Limit, q, true
}

// Evaluate advances every rule and attached evaluator to the sampler's
// current time and returns the transitions that fired.  Call it after each
// sampler Tick.
func (e *Engine) Evaluate() []Event {
	now := e.hist.Now()

	e.mu.Lock()
	rules := make([]Rule, len(e.rules))
	copy(rules, e.rules)
	external := make([]Evaluator, len(e.external))
	copy(external, e.external)
	exemplar := e.exemplar
	e.mu.Unlock()

	var out []Event
	for _, r := range rules {
		st := ObjectiveStatus{Name: r.Objective.Name, Kind: r.Objective.Kind}
		var (
			longBurn, shortBurn float64
			okLong, okShort     bool
			value               float64
			reason              string
			exTrace             string
		)
		switch r.Objective.Kind {
		case KindLatency:
			var qLong float64
			longBurn, qLong, okLong = e.burnLatency(r.Objective, r.LongWindow)
			shortBurn, _, okShort = e.burnLatency(r.Objective, r.ShortWindow)
			st.QuantileSeconds = qLong
			value = longBurn
			reason = fmt.Sprintf("%s p%g = %.4gs over %v (threshold %.4gs)",
				r.Objective.Histogram, r.Objective.Quantile*100, qLong, r.LongWindow, r.Objective.Threshold)
			if exemplar != nil {
				exTrace, _ = exemplar(r.Objective.Histogram)
			}
		case KindGauge:
			var qLong float64
			longBurn, qLong, okLong = e.burnGauge(r.Objective, r.LongWindow)
			shortBurn, _, okShort = e.burnGauge(r.Objective, r.ShortWindow)
			st.GaugeValue = qLong
			value = longBurn
			reason = fmt.Sprintf("%s p%g = %.4g over %v (limit %.4g)",
				r.Objective.Gauge, r.Objective.Quantile*100, qLong, r.LongWindow, r.Objective.Limit)
		default:
			var goodFrac, badFrac float64
			longBurn, goodFrac, badFrac, okLong = e.burnRatio(r.Objective, r.LongWindow)
			shortBurn, _, _, okShort = e.burnRatio(r.Objective, r.ShortWindow)
			st.GoodFraction = goodFrac
			budget := 1 - r.Objective.Target
			if budget > 0 {
				st.BudgetRemaining = 1 - badFrac/budget
				if st.BudgetRemaining < 0 {
					st.BudgetRemaining = 0
				}
			}
			value = longBurn
			reason = fmt.Sprintf("bad fraction %.4g over %v burns budget at %.3gx (target %.4g)",
				badFrac, r.LongWindow, longBurn, r.Objective.Target)
		}
		st.LongBurn, st.ShortBurn = longBurn, shortBurn
		st.HasData = okLong && okShort
		cond := st.HasData && longBurn >= r.Burn && shortBurn >= r.Burn

		e.mu.Lock()
		m := e.alerts[r.AlertName()]
		from, to, changed := m.step(cond, value, reason, now, r.PendingFor, r.ResolveAfter)
		if exTrace != "" {
			m.lastExemplar = exTrace
		}
		exNow := m.lastExemplar
		st.State = to.String()
		e.last[r.Objective.Name] = st
		e.mu.Unlock()
		if changed {
			out = append(out, Event{
				Name: r.AlertName(), Severity: r.Severity,
				From: from, To: to, FromState: from.String(), ToState: to.String(),
				At: now, Value: value, Reason: reason, ExemplarTrace: exNow,
			})
		}
	}
	for _, ev := range external {
		out = append(out, ev.Evaluate(now)...)
	}

	if len(out) > 0 {
		e.mu.Lock()
		e.events = append(e.events, out...)
		if n := len(e.events); n > maxEventLog {
			e.events = append(e.events[:0], e.events[n-maxEventLog:]...)
		}
		fn := e.onEvent
		e.mu.Unlock()
		if fn != nil {
			for _, ev := range out {
				fn(ev)
			}
		}
	}
	return out
}

// Status returns every objective's latest evaluation, sorted by name.
func (e *Engine) Status() []ObjectiveStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveStatus, 0, len(e.last))
	for _, st := range e.last {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Alerts returns every alert's state — burn-rate rules and attached
// evaluators — sorted by name.
func (e *Engine) Alerts() []Status {
	e.mu.Lock()
	rules := make([]Rule, len(e.rules))
	copy(rules, e.rules)
	out := make([]Status, 0, len(rules))
	for _, r := range rules {
		out = append(out, e.alerts[r.AlertName()].status(r.AlertName(), r.Severity))
	}
	external := make([]Evaluator, len(e.external))
	copy(external, e.external)
	e.mu.Unlock()
	for _, ev := range external {
		out = append(out, ev.Alerts()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Firing returns the subset of Alerts currently firing.
func (e *Engine) Firing() []Status {
	var out []Status
	for _, a := range e.Alerts() {
		if a.State == Firing.String() {
			out = append(out, a)
		}
	}
	return out
}

// Events returns up to n recent transitions, oldest first (n <= 0 returns
// everything retained).
func (e *Engine) Events(n int) []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	evs := e.events
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	out := make([]Event, len(evs))
	copy(out, evs)
	return out
}

// FinalState is the shutdown flush written beside metrics_final.json.
type FinalState struct {
	At         time.Time         `json:"at"`
	Objectives []ObjectiveStatus `json:"objectives"`
	Alerts     []Status          `json:"alerts"`
	Events     []Event           `json:"events"`
}

// Final captures the engine's closing state for the post-mortem file.
func (e *Engine) Final() FinalState {
	return FinalState{
		At:         e.hist.Now(),
		Objectives: e.Status(),
		Alerts:     e.Alerts(),
		Events:     e.Events(0),
	}
}

// SLOHandler serves /slo: the objective statuses as application/json.
func (e *Engine) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(e.Status())
	})
}

// alertsPayload is the /alerts body.
type alertsPayload struct {
	Alerts []Status `json:"alerts"`
	Events []Event  `json:"events"`
}

// AlertsHandler serves /alerts: alert states plus recent transitions as
// application/json.  ?events=N caps the transition history (default 32).
func (e *Engine) AlertsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 32
		if q := r.URL.Query().Get("events"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v >= 0 {
				n = v
			}
		}
		payload := alertsPayload{Alerts: e.Alerts(), Events: e.Events(n)}
		if payload.Alerts == nil {
			payload.Alerts = []Status{}
		}
		if payload.Events == nil {
			payload.Events = []Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(payload)
	})
}

// DefaultRules is the shipped objective catalog, evaluated by `puflab
// serve` and rendered by `puflab slo` / `puflab top`:
//
//	auth-success-rate   99% of accepted sessions reach a verdict
//	                    (failures are wire/protocol errors, not impostor
//	                    denials — denying an impostor is the SLO being met)
//	session-latency-p99 p99 of netauth_session_seconds ≤ 250 ms
//	wal-fsync-p99       p99 of registry_wal_fsync_seconds ≤ 50 ms
//	quarantine-rate     ≤ 1% of completed sessions quarantine a chip
//	replication-lag-p99 p99 of repl_lag_records ≤ 512 records behind
//	                    (inactive on deployments that never replicate —
//	                    the gauge is only sampled once a follower runs)
//	keyex-success-rate  99% of admitted key exchanges establish a key
//	                    (inactive until a key exchange runs; rejected key
//	                    confirmations are the adversary being stopped, but
//	                    a fleet of genuine devices failing to reproduce
//	                    keys is an ECC-margin regression worth paging on)
//	rebalance-fence-p99 p99 of rebalance_fence_seconds ≤ 500 ms — the
//	                    fence is the only window in a live migration when
//	                    a chip's issuance pauses, so a slow fence IS the
//	                    downtime a "zero-downtime" migration promised away
//	                    (inactive until a migration runs)
//
// Windows are minutes, not the SRE workbook's hours, because the demo
// fleets this repo runs live for minutes; the arithmetic is identical.
func DefaultRules() []Rule {
	return []Rule{
		{
			Objective: Objective{
				Name: "auth-success-rate", Kind: KindRatio,
				Good:   "netauth_sessions_completed_total",
				Total:  "netauth_sessions_started_total",
				Target: 0.99,
			},
			LongWindow: 5 * time.Minute, ShortWindow: time.Minute,
			Burn: 2, PendingFor: 10 * time.Second, ResolveAfter: 30 * time.Second,
			Severity: "page",
		},
		{
			Objective: Objective{
				Name: "session-latency-p99", Kind: KindLatency,
				Histogram: "netauth_session_seconds", Quantile: 0.99, Threshold: 0.25,
			},
			LongWindow: 5 * time.Minute, ShortWindow: time.Minute,
			Burn: 1, PendingFor: 10 * time.Second, ResolveAfter: 30 * time.Second,
			Severity: "page",
		},
		{
			Objective: Objective{
				Name: "wal-fsync-p99", Kind: KindLatency,
				Histogram: "registry_wal_fsync_seconds", Quantile: 0.99, Threshold: 0.05,
			},
			LongWindow: 5 * time.Minute, ShortWindow: time.Minute,
			Burn: 1, PendingFor: 20 * time.Second, ResolveAfter: time.Minute,
			Severity: "ticket",
		},
		{
			Objective: Objective{
				Name: "quarantine-rate", Kind: KindRatio,
				Bad:    "health_transitions_quarantined_total",
				Total:  "netauth_sessions_completed_total",
				Target: 0.99,
			},
			LongWindow: 10 * time.Minute, ShortWindow: 2 * time.Minute,
			Burn: 2, PendingFor: 20 * time.Second, ResolveAfter: time.Minute,
			Severity: "ticket",
		},
		{
			Objective: Objective{
				Name: "replication-lag-p99", Kind: KindGauge,
				Gauge: "repl_lag_records", Quantile: 0.99, Limit: 512,
			},
			LongWindow: 5 * time.Minute, ShortWindow: time.Minute,
			Burn: 1, PendingFor: 20 * time.Second, ResolveAfter: time.Minute,
			Severity: "page",
		},
		{
			Objective: Objective{
				Name: "keyex-success-rate", Kind: KindRatio,
				Good:   "netauth_keyex_established_total",
				Total:  "netauth_keyex_started_total",
				Target: 0.99,
			},
			LongWindow: 5 * time.Minute, ShortWindow: time.Minute,
			Burn: 2, PendingFor: 10 * time.Second, ResolveAfter: 30 * time.Second,
			Severity: "page",
		},
		{
			Objective: Objective{
				Name: "rebalance-fence-p99", Kind: KindLatency,
				Histogram: "rebalance_fence_seconds", Quantile: 0.99, Threshold: 0.5,
			},
			LongWindow: 5 * time.Minute, ShortWindow: time.Minute,
			Burn: 1, PendingFor: 10 * time.Second, ResolveAfter: 30 * time.Second,
			Severity: "page",
		},
	}
}
