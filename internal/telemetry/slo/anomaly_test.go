package slo

import (
	"fmt"
	"testing"
	"time"
)

func newDetector(cfg AnomalyConfig) (*AnomalyDetector, *fakeClock) {
	clk := newFakeClock()
	return NewAnomalyDetector(cfg, clk.Now), clk
}

// TestFarmingVelocityFires: a chip being drained of CRPs at high velocity
// fires suspected-modeling-attack regardless of verdicts.
func TestFarmingVelocityFires(t *testing.T) {
	d, clk := newDetector(AnomalyConfig{
		Window:              time.Minute,
		MaxChallengesPerMin: 500,
		MinSessions:         5,
		PendingFor:          10 * time.Second,
		ResolveAfter:        30 * time.Second,
	})

	// 20 approved sessions × 100 challenges inside one minute: 2000/min.
	for i := 0; i < 20; i++ {
		d.ObserveSession("chip-0", 100, false)
		clk.Advance(2 * time.Second)
	}
	evs := d.Evaluate(clk.Now())
	if len(evs) != 1 || evs[0].ToState != "pending" || evs[0].Name != AlertNameFor("chip-0") {
		t.Fatalf("first evaluate = %+v, want pending", evs)
	}
	// Keep farming through the dwell → firing.
	clk.Advance(10 * time.Second)
	d.ObserveSession("chip-0", 100, false)
	evs = d.Evaluate(clk.Now())
	if len(evs) != 1 || evs[0].ToState != "firing" {
		t.Fatalf("post-dwell evaluate = %+v, want firing", evs)
	}

	// Silence: the window empties, the alert clears and resolves.
	clk.Advance(2 * time.Minute)
	if evs = d.Evaluate(clk.Now()); len(evs) != 0 {
		// First clear evaluation starts the resolve dwell.
		t.Fatalf("clearing evaluate = %+v, want none yet", evs)
	}
	clk.Advance(time.Minute)
	evs = d.Evaluate(clk.Now())
	if len(evs) != 1 || evs[0].ToState != "resolved" {
		t.Fatalf("resolve evaluate = %+v, want resolved", evs)
	}
}

// TestDenialMixFires: moderate velocity with a hostile denial mix (an
// impostor probing chosen challenges) trips the cheaper signature.
func TestDenialMixFires(t *testing.T) {
	d, clk := newDetector(AnomalyConfig{
		Window:                  time.Minute,
		MaxChallengesPerMin:     10000,
		SuspectChallengesPerMin: 300,
		SuspectDenialFraction:   0.5,
		MinSessions:             5,
		PendingFor:              -1, // fire on first evaluation
	})
	for i := 0; i < 6; i++ {
		d.ObserveSession("chip-1", 100, true) // 600/min, all denied
		clk.Advance(time.Second)
	}
	evs := d.Evaluate(clk.Now())
	if len(evs) != 1 || evs[0].ToState != "firing" {
		t.Fatalf("evaluate = %+v, want immediate firing", evs)
	}
}

// TestLegitimateTrafficStaysQuiet: a genuine device authenticating at a
// normal cadence never trips either signature.
func TestLegitimateTrafficStaysQuiet(t *testing.T) {
	d, clk := newDetector(AnomalyConfig{
		Window:                  time.Minute,
		MaxChallengesPerMin:     1000,
		SuspectChallengesPerMin: 300,
		SuspectDenialFraction:   0.5,
		MinSessions:             5,
	})
	// Two sessions a minute at 100 challenges, every one approved, with
	// an occasional legitimate denial (transient mismatch).
	for i := 0; i < 30; i++ {
		d.ObserveSession("chip-2", 100, i%10 == 0)
		if evs := d.Evaluate(clk.Now()); len(evs) != 0 {
			t.Fatalf("legitimate traffic produced events: %+v", evs)
		}
		clk.Advance(30 * time.Second)
	}
}

// TestBelowMinSessionsNeverJudged: tiny windows are not judged at all —
// one big session must not page.
func TestBelowMinSessionsNeverJudged(t *testing.T) {
	d, clk := newDetector(AnomalyConfig{MinSessions: 5, MaxChallengesPerMin: 100})
	d.ObserveSession("chip-3", 100000, true)
	if evs := d.Evaluate(clk.Now()); len(evs) != 0 {
		t.Fatalf("single session judged: %+v", evs)
	}
}

// TestEvictionSparesActiveAlerts: spraying many chip IDs must not evict a
// chip whose alert is pending/firing.
func TestEvictionSparesActiveAlerts(t *testing.T) {
	d, clk := newDetector(AnomalyConfig{
		Window:              time.Minute,
		MaxChallengesPerMin: 200,
		MinSessions:         2,
		PendingFor:          -1,
		MaxChips:            8,
	})
	// chip-hot goes firing.
	for i := 0; i < 5; i++ {
		d.ObserveSession("chip-hot", 100, true)
	}
	d.Evaluate(clk.Now())
	if st := d.Alerts(); len(st) != 1 || st[0].State != "firing" {
		t.Fatalf("setup: %+v", st)
	}
	// Spray 50 other chips through the 8-chip cap.
	for i := 0; i < 50; i++ {
		d.ObserveSession(fmt.Sprintf("chip-%d", i), 1, false)
		clk.Advance(time.Millisecond)
	}
	found := false
	for _, a := range d.Alerts() {
		if a.Name == AlertNameFor("chip-hot") && a.State == "firing" {
			found = true
		}
	}
	if !found {
		t.Fatal("firing chip evicted by ID spray")
	}
	if d.Tracked() > 9 { // 8 cap + the protected firing chip can exceed by design
		t.Fatalf("Tracked = %d, want bounded", d.Tracked())
	}
}

func TestChipIDFromAlert(t *testing.T) {
	if got := ChipIDFromAlert(AlertNameFor("chip-7")); got != "chip-7" {
		t.Fatalf("ChipIDFromAlert = %q", got)
	}
	if got := ChipIDFromAlert("slo:latency"); got != "" {
		t.Fatalf("non-anomaly name returned %q", got)
	}
}
