package slo

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"xorpuf/internal/telemetry"
	"xorpuf/internal/telemetry/history"
)

// fakeClock drives every test timeline — no sleeps anywhere in this suite.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// harness bundles a registry, sampler, and engine on one fake clock.
type harness struct {
	clk     *fakeClock
	reg     *telemetry.Registry
	sampler *history.Sampler
	engine  *Engine
}

func newHarness(rules []Rule) *harness {
	clk := newFakeClock()
	reg := telemetry.NewRegistry()
	sampler := history.NewSampler(reg, history.Options{Now: clk.Now})
	return &harness{clk: clk, reg: reg, sampler: sampler, engine: NewEngine(sampler, rules)}
}

// tick advances the clock by d, samples, and evaluates.
func (h *harness) tick(d time.Duration) []Event {
	h.clk.Advance(d)
	h.sampler.Tick()
	return h.engine.Evaluate()
}

func ratioRule(pendingFor, resolveAfter time.Duration) Rule {
	return Rule{
		Objective: Objective{
			Name: "success", Kind: KindRatio,
			Good: "good_total", Total: "all_total", Target: 0.99,
		},
		LongWindow: time.Minute, ShortWindow: 20 * time.Second,
		Burn: 2, PendingFor: pendingFor, ResolveAfter: resolveAfter,
		Severity: "page",
	}
}

func stateOf(e *Engine, name string) string {
	for _, a := range e.Alerts() {
		if a.Name == name {
			return a.State
		}
	}
	return "<absent>"
}

// TestAlertMachineLifecycle drives pending → firing → resolved end to end
// on the fake clock.
func TestAlertMachineLifecycle(t *testing.T) {
	h := newHarness([]Rule{ratioRule(10*time.Second, 20*time.Second)})
	good := h.reg.Counter("good_total")
	all := h.reg.Counter("all_total")

	// Healthy baseline: 100 sessions, all good, across several ticks.
	for i := 0; i < 4; i++ {
		good.Add(25)
		all.Add(25)
		h.tick(5 * time.Second)
	}
	if st := stateOf(h.engine, "slo:success"); st != "inactive" {
		t.Fatalf("baseline state = %s, want inactive", st)
	}

	// Failure burst: 50%% bad events — burn 50x against a 1%% budget.
	all.Add(40)
	good.Add(20)
	evs := h.tick(5 * time.Second)
	if len(evs) != 1 || evs[0].ToState != "pending" {
		t.Fatalf("after burst: events %+v, want pending transition", evs)
	}

	// Condition persists past PendingFor → firing.
	all.Add(40)
	good.Add(20)
	evs = h.tick(10 * time.Second)
	if len(evs) != 1 || evs[0].ToState != "firing" {
		t.Fatalf("after dwell: events %+v, want firing", evs)
	}
	if f := h.engine.Firing(); len(f) != 1 || f[0].Name != "slo:success" {
		t.Fatalf("Firing() = %+v", f)
	}

	// Recovery: all-good traffic until both windows clear, then the
	// resolve dwell elapses → resolved.
	var resolved bool
	for i := 0; i < 12 && !resolved; i++ {
		good.Add(50)
		all.Add(50)
		for _, ev := range h.tick(10 * time.Second) {
			if ev.ToState == "resolved" {
				resolved = true
			}
		}
	}
	if !resolved {
		t.Fatalf("alert never resolved; state = %s", stateOf(h.engine, "slo:success"))
	}
	if len(h.engine.Firing()) != 0 {
		t.Fatal("Firing() not empty after resolution")
	}
}

// TestFlapSuppression: a condition that clears before PendingFor elapses
// must return to inactive without ever firing.  The 25 s dwell outlasts
// the 20 s short window, so a one-sample blip washes out of the short
// window (flipping the condition off) before the dwell can escalate it.
func TestFlapSuppression(t *testing.T) {
	h := newHarness([]Rule{ratioRule(25*time.Second, 20*time.Second)})
	good := h.reg.Counter("good_total")
	all := h.reg.Counter("all_total")
	for i := 0; i < 3; i++ {
		good.Add(30)
		all.Add(30)
		h.tick(5 * time.Second)
	}

	// One bad blip: enters pending…
	all.Add(10)
	h.tick(5 * time.Second)
	if st := stateOf(h.engine, "slo:success"); st != "pending" {
		t.Fatalf("after blip state = %s, want pending", st)
	}
	// …then traffic goes clean.  The short window (20 s) washes the blip
	// out before the 25 s dwell is up, flipping the condition off.
	var fired bool
	for i := 0; i < 8; i++ {
		good.Add(100)
		all.Add(100)
		for _, ev := range h.tick(5 * time.Second) {
			if ev.ToState == "firing" {
				fired = true
			}
		}
	}
	if fired {
		t.Fatal("flap fired despite clearing within PendingFor")
	}
	if st := stateOf(h.engine, "slo:success"); st != "inactive" {
		t.Fatalf("post-flap state = %s, want inactive (suppressed)", st)
	}
}

// TestMultiWindowGating: a spike inside the short window only must NOT
// trip the rule while the long window is still healthy — and vice versa a
// long-ago burn with a clean short window must not hold the alert up.
func TestMultiWindowGating(t *testing.T) {
	// Long window dominated by good traffic laid down first.
	h := newHarness([]Rule{{
		Objective: Objective{
			Name: "success", Kind: KindRatio,
			Good: "good_total", Total: "all_total", Target: 0.9,
		},
		LongWindow: 2 * time.Minute, ShortWindow: 10 * time.Second,
		Burn: 3, PendingFor: 0, ResolveAfter: 10 * time.Second,
		Severity: "page",
	}})
	good := h.reg.Counter("good_total")
	all := h.reg.Counter("all_total")
	for i := 0; i < 10; i++ {
		good.Add(100)
		all.Add(100)
		h.tick(5 * time.Second)
	}
	// Short burst of badness: short-window burn is huge, long-window burn
	// is diluted by the 1000 good sessions → condition must stay false.
	all.Add(30)
	h.tick(5 * time.Second)
	if st := stateOf(h.engine, "slo:success"); st != "inactive" {
		t.Fatalf("short-only spike tripped the rule: state = %s", st)
	}
}

// TestLatencyObjective: windowed p99 against a threshold, including the
// no-data gate when the histogram has no in-window observations.
func TestLatencyObjective(t *testing.T) {
	h := newHarness([]Rule{{
		Objective: Objective{
			Name: "latency", Kind: KindLatency,
			Histogram: "lat_seconds", Quantile: 0.99, Threshold: 0.005,
		},
		LongWindow: time.Minute, ShortWindow: 15 * time.Second,
		Burn: 1, PendingFor: 0, ResolveAfter: 10 * time.Second,
		Severity: "page",
	}})
	lat := h.reg.Histogram("lat_seconds", telemetry.LatencyBuckets)

	// No observations at all: no data, no alert.
	h.tick(5 * time.Second)
	h.tick(5 * time.Second)
	st := h.engine.Status()
	if len(st) != 1 || st[0].HasData {
		t.Fatalf("status with empty histogram = %+v, want HasData=false", st)
	}

	// Fast traffic: 1 ms, well under the 5 ms threshold.
	for i := 0; i < 3; i++ {
		for j := 0; j < 100; j++ {
			lat.Observe(0.001)
		}
		h.tick(5 * time.Second)
	}
	if s := stateOf(h.engine, "slo:latency"); s != "inactive" {
		t.Fatalf("fast traffic state = %s", s)
	}

	// Latency spike: 50 ms observations push windowed p99 over 5 ms in
	// both windows → fires immediately (PendingFor 0).
	var fired bool
	for i := 0; i < 4 && !fired; i++ {
		for j := 0; j < 100; j++ {
			lat.Observe(0.05)
		}
		for _, ev := range h.tick(5 * time.Second) {
			if ev.ToState == "firing" {
				fired = true
			}
		}
	}
	if !fired {
		t.Fatalf("latency spike never fired; status %+v", h.engine.Status())
	}
}

// TestGaugeObjective: windowed gauge-level quantile against a limit — the
// replication-lag shape.  A gauge that is never sampled (no follower in
// this deployment) must read as no-data, keeping the alert inactive.
func TestGaugeObjective(t *testing.T) {
	h := newHarness([]Rule{{
		Objective: Objective{
			Name: "lag", Kind: KindGauge,
			Gauge: "repl_lag", Quantile: 0.99, Limit: 100,
		},
		LongWindow: time.Minute, ShortWindow: 15 * time.Second,
		Burn: 1, PendingFor: 0, ResolveAfter: 10 * time.Second,
		Severity: "page",
	}})

	// The gauge does not exist yet: no data, alert inactive.
	h.tick(5 * time.Second)
	st := h.engine.Status()
	if len(st) != 1 || st[0].HasData {
		t.Fatalf("status with absent gauge = %+v, want HasData=false", st)
	}
	if s := stateOf(h.engine, "slo:lag"); s != "inactive" {
		t.Fatalf("absent-gauge state = %s", s)
	}

	// Healthy replication: lag bounded well under the limit.
	lag := h.reg.Gauge("repl_lag")
	for i := 0; i < 4; i++ {
		lag.Set(int64(5 + i))
		h.tick(5 * time.Second)
	}
	st = h.engine.Status()
	if len(st) != 1 || !st[0].HasData || st[0].GaugeValue > 100 {
		t.Fatalf("healthy status = %+v, want HasData under limit", st)
	}
	if s := stateOf(h.engine, "slo:lag"); s != "inactive" {
		t.Fatalf("healthy state = %s", s)
	}

	// The follower falls behind: lag over the limit in both windows fires
	// immediately (PendingFor 0).
	var fired bool
	for i := 0; i < 16 && !fired; i++ {
		lag.Set(800)
		for _, ev := range h.tick(5 * time.Second) {
			if ev.ToState == "firing" {
				fired = true
			}
		}
	}
	if !fired {
		t.Fatalf("lag spike never fired; status %+v", h.engine.Status())
	}

	// Catch-up: lag returns to near zero until both windows clear, then the
	// resolve dwell elapses.
	var resolvedAt string
	for i := 0; i < 24 && resolvedAt == ""; i++ {
		lag.Set(2)
		for _, ev := range h.tick(10 * time.Second) {
			if ev.ToState == "resolved" {
				resolvedAt = ev.Reason
			}
		}
	}
	if resolvedAt == "" {
		t.Fatalf("lag alert never resolved; state = %s", stateOf(h.engine, "slo:lag"))
	}
}

// TestBadCounterRatio: quarantine-rate-style objectives use Bad/Total with
// the bad counter possibly never registered — that must read as zero bad,
// not no-data.
func TestBadCounterRatio(t *testing.T) {
	h := newHarness([]Rule{{
		Objective: Objective{
			Name: "quarantine", Kind: KindRatio,
			Bad: "quarantined_total", Total: "sessions_total", Target: 0.99,
		},
		LongWindow: time.Minute, ShortWindow: 20 * time.Second,
		Burn: 2, PendingFor: 0, ResolveAfter: 10 * time.Second,
	}})
	sessions := h.reg.Counter("sessions_total")
	for i := 0; i < 4; i++ {
		sessions.Add(10)
		h.tick(5 * time.Second)
	}
	st := h.engine.Status()
	if len(st) != 1 || !st[0].HasData || st[0].GoodFraction != 1 {
		t.Fatalf("bad-absent status = %+v, want HasData good=1", st)
	}
	// Now quarantines appear: 5 of 10 new sessions → burn 50x.
	h.reg.Counter("quarantined_total").Add(5)
	sessions.Add(10)
	h.tick(5 * time.Second)
	if s := stateOf(h.engine, "slo:quarantine"); s != "firing" {
		t.Fatalf("quarantine burst state = %s, want firing", s)
	}
}

// TestEventLogAndHandlers covers the /slo and /alerts JSON surfaces,
// including content-type (the admin-mux contract for new endpoints).
func TestEventLogAndHandlers(t *testing.T) {
	h := newHarness([]Rule{ratioRule(0, 10*time.Second)})
	good := h.reg.Counter("good_total")
	all := h.reg.Counter("all_total")
	h.tick(5 * time.Second) // empty baseline sample
	good.Add(10)
	all.Add(20) // 50% bad → burn 50x, fires immediately (PendingFor 0)
	h.tick(5 * time.Second)

	sloSrv := httptest.NewServer(h.engine.SLOHandler())
	defer sloSrv.Close()
	resp, err := http.Get(sloSrv.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/slo Content-Type = %q", ct)
	}
	var statuses []ObjectiveStatus
	if err := json.NewDecoder(resp.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 1 || statuses[0].Name != "success" {
		t.Fatalf("/slo = %+v", statuses)
	}

	alertSrv := httptest.NewServer(h.engine.AlertsHandler())
	defer alertSrv.Close()
	resp2, err := http.Get(alertSrv.URL + "/alerts?events=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/alerts Content-Type = %q", ct)
	}
	var payload struct {
		Alerts []Status `json:"alerts"`
		Events []Event  `json:"events"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Alerts) != 1 || payload.Alerts[0].State != "firing" {
		t.Fatalf("/alerts alerts = %+v", payload.Alerts)
	}
	if len(payload.Events) == 0 || payload.Events[len(payload.Events)-1].ToState != "firing" {
		t.Fatalf("/alerts events = %+v", payload.Events)
	}
}

// TestDefaultRulesCatalog sanity-checks the shipped catalog: every rule
// names a real metric family and carries sane windows.
func TestDefaultRulesCatalog(t *testing.T) {
	rules := DefaultRules()
	if len(rules) != 7 {
		t.Fatalf("DefaultRules count = %d", len(rules))
	}
	if rules[len(rules)-1].Objective.Name != "rebalance-fence-p99" {
		t.Fatalf("last rule = %q, want rebalance-fence-p99", rules[len(rules)-1].Objective.Name)
	}
	seen := map[string]bool{}
	for _, r := range rules {
		if r.Objective.Name == "" || seen[r.Objective.Name] {
			t.Fatalf("bad or duplicate objective name %q", r.Objective.Name)
		}
		seen[r.Objective.Name] = true
		if r.LongWindow <= r.ShortWindow {
			t.Errorf("%s: long window %v not > short %v", r.Objective.Name, r.LongWindow, r.ShortWindow)
		}
		if r.Burn <= 0 {
			t.Errorf("%s: burn %v", r.Objective.Name, r.Burn)
		}
		switch r.Objective.Kind {
		case KindRatio:
			if r.Objective.Total == "" || (r.Objective.Good == "") == (r.Objective.Bad == "") {
				t.Errorf("%s: ratio objective needs Total and exactly one of Good/Bad", r.Objective.Name)
			}
		case KindLatency:
			if r.Objective.Histogram == "" || r.Objective.Threshold <= 0 {
				t.Errorf("%s: latency objective incomplete", r.Objective.Name)
			}
		case KindGauge:
			if r.Objective.Gauge == "" || r.Objective.Limit <= 0 {
				t.Errorf("%s: gauge objective incomplete", r.Objective.Name)
			}
		}
	}
}

// TestLatencyExemplarTrace: a fired latency alert must carry the histogram's
// most recent exemplar trace ID on both the transition event and the /alerts
// status, so the page names a concrete session to pull up.
func TestLatencyExemplarTrace(t *testing.T) {
	h := newHarness([]Rule{{
		Objective: Objective{
			Name: "latency", Kind: KindLatency,
			Histogram: "lat_seconds", Quantile: 0.99, Threshold: 0.005,
		},
		LongWindow: time.Minute, ShortWindow: 15 * time.Second,
		Burn: 1, PendingFor: 0, ResolveAfter: 10 * time.Second,
		Severity: "page",
	}})
	lat := h.reg.Histogram("lat_seconds", telemetry.LatencyBuckets)
	h.engine.SetExemplarSource(func(hist string) (string, float64) {
		if hi := h.reg.FindHistogram(hist); hi != nil {
			return hi.Exemplar()
		}
		return "", 0
	})

	const trace = "0123456789abcdef0123456789abcdef"
	var fired *Event
	for i := 0; i < 4 && fired == nil; i++ {
		for j := 0; j < 100; j++ {
			lat.ObserveExemplar(0.05, trace)
		}
		for _, ev := range h.tick(5 * time.Second) {
			if ev.ToState == "firing" {
				e := ev
				fired = &e
			}
		}
	}
	if fired == nil {
		t.Fatalf("latency spike never fired; status %+v", h.engine.Status())
	}
	if fired.ExemplarTrace != trace {
		t.Fatalf("firing event exemplar = %q, want %q", fired.ExemplarTrace, trace)
	}
	for _, a := range h.engine.Alerts() {
		if a.Name != "slo:latency" {
			continue
		}
		if a.ExemplarTrace != trace {
			t.Fatalf("alert status exemplar = %q, want %q", a.ExemplarTrace, trace)
		}
		return
	}
	t.Fatal("slo:latency alert missing from Alerts()")
}
