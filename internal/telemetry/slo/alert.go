package slo

import (
	"time"
)

// State is an alert's position in the pending → firing → resolved machine.
type State uint8

const (
	// Inactive: the condition has not held recently.
	Inactive State = iota
	// Pending: the condition holds but has not yet held for PendingFor —
	// the flap-suppression dwell before paging anyone.
	Pending
	// Firing: the condition held for the full dwell; the alert is live.
	Firing
	// Resolved: a previously firing alert whose condition has been clear
	// for ResolveAfter.  Distinct from Inactive so operators (and tests)
	// can see that it fired and recovered rather than never firing.
	Resolved
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Inactive:
		return "inactive"
	case Pending:
		return "pending"
	case Firing:
		return "firing"
	case Resolved:
		return "resolved"
	default:
		return "unknown"
	}
}

// Event is one alert transition, as delivered to OnEvent observers and the
// engine's event log.
type Event struct {
	// Name identifies the alert ("slo:auth-success-rate" or
	// "suspected-modeling-attack:chip-7").
	Name string `json:"name"`
	// Severity is the rule's severity label ("page", "ticket").
	Severity string `json:"severity,omitempty"`
	// From and To are the states on either side of the transition.
	From State `json:"-"`
	To   State `json:"-"`
	// FromState and ToState are their wire spellings.
	FromState string `json:"from"`
	ToState   string `json:"to"`
	// At is the evaluation time of the transition (the injected clock).
	At time.Time `json:"at"`
	// Value is the metric that drove the evaluation (burn rate, windowed
	// quantile, challenge velocity).
	Value float64 `json:"value"`
	// Reason is a human-readable explanation.
	Reason string `json:"reason,omitempty"`
	// ExemplarTrace is a distributed-trace ID of a concrete recent
	// observation behind the driving metric (latency rules only, and only
	// when the engine has an exemplar source): `puflab trace show <id>`
	// turns the page into one offending session's span tree.
	ExemplarTrace string `json:"exemplar_trace,omitempty"`
}

// alertMachine is the per-alert state: shared by burn-rate rules and
// anomaly conditions so every alert in the process moves through the same
// dwell semantics.
type alertMachine struct {
	state State
	// since is when the current state was entered.
	since time.Time
	// condSince is when the condition most recently became true (Pending
	// dwell); clearSince when it most recently became false (Firing dwell).
	condSince  time.Time
	clearSince time.Time
	lastValue  float64
	lastReason string
	// lastExemplar is the most recent exemplar trace ID attached by the
	// engine's exemplar source (latency rules); carried on events and the
	// /alerts status so a fired alert names a concrete trace.
	lastExemplar string
}

// step advances the machine one evaluation and reports the transition, if
// any.  pendingFor is the dwell before Pending escalates to Firing;
// resolveAfter is the clear dwell before Firing decays to Resolved.  Both
// dwells are measured on the injected clock, so a fake-clock test can walk
// the machine deterministically.
func (a *alertMachine) step(cond bool, value float64, reason string, now time.Time, pendingFor, resolveAfter time.Duration) (from, to State, changed bool) {
	from = a.state
	a.lastValue = value
	if reason != "" {
		a.lastReason = reason
	}
	switch a.state {
	case Inactive, Resolved:
		if cond {
			a.condSince = now
			a.state = Pending
			// A zero dwell fires immediately — one evaluation, one page.
			if pendingFor <= 0 {
				a.state = Firing
			}
			a.since = now
		}
	case Pending:
		switch {
		case !cond:
			// The condition flapped before the dwell elapsed: suppress.
			// A previously fired alert returns to Resolved, a fresh one
			// to Inactive, so history is not erased by a flap.
			a.state = Inactive
			a.since = now
		case now.Sub(a.condSince) >= pendingFor:
			a.state = Firing
			a.since = now
		}
	case Firing:
		if cond {
			a.clearSince = time.Time{}
			break
		}
		if a.clearSince.IsZero() {
			a.clearSince = now
		}
		if now.Sub(a.clearSince) >= resolveAfter {
			a.state = Resolved
			a.since = now
			a.clearSince = time.Time{}
		}
	}
	return from, a.state, a.state != from
}

// Status is one alert's externally visible state, served on /alerts.
type Status struct {
	Name     string    `json:"name"`
	Severity string    `json:"severity,omitempty"`
	State    string    `json:"state"`
	Since    time.Time `json:"since"`
	// Value is the most recent evaluation's driving metric.
	Value float64 `json:"value"`
	// Reason explains the most recent non-empty evaluation.
	Reason string `json:"reason,omitempty"`
	// ExemplarTrace is the trace ID of a recent observation behind the
	// driving metric, when one is known (see Event.ExemplarTrace).
	ExemplarTrace string `json:"exemplar_trace,omitempty"`
}

func (a *alertMachine) status(name, severity string) Status {
	return Status{
		Name:          name,
		Severity:      severity,
		State:         a.state.String(),
		Since:         a.since,
		Value:         a.lastValue,
		Reason:        a.lastReason,
		ExemplarTrace: a.lastExemplar,
	}
}
