// Package crpstore implements a compact binary on-disk format for CRP
// databases and enrolled-model databases — the "storage requirement" axis
// the paper weighs protocols on (§1: storage is a first-class design
// consideration; refs [4-7] store delay parameters instead of exhaustive
// CRP tables precisely to shrink it).
//
// CRP database format (little-endian):
//
//	magic   [4]byte  "XPC1"
//	stages  uint16   challenge length in bits
//	count   uint32   number of records
//	records count × (⌈stages/8⌉ bytes of packed challenge, LSB-first)
//	responses ⌈count/8⌉ bytes of packed response bits, LSB-first
//
// A 64-stage CRP costs 8 bytes + 1 bit versus 65 float64s (520 bytes) for a
// naive float encoding — the difference between a CRP table that fits a
// server and one that does not.
package crpstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"xorpuf/internal/challenge"
)

// magic identifies the CRP database format, version 1.
var magic = [4]byte{'X', 'P', 'C', '1'}

// CRP is one stored challenge–response pair.
type CRP struct {
	Challenge challenge.Challenge
	Response  uint8
}

// ErrBadFormat is returned when decoding input that is not a CRP database.
var ErrBadFormat = errors.New("crpstore: not a CRP database")

// maxCount bounds databases in both directions (1 GiB of packed 64-stage
// challenges): on decode so a corrupted header cannot trigger an absurd
// allocation, on encode so the count always fits the header's uint32 — a
// larger slice would silently truncate the count field and every reader
// would mis-frame the records that follow.
const maxCount = 1 << 27

// checkCount validates a record count against the format's limits.
func checkCount(n int) error {
	switch {
	case n == 0:
		return errors.New("crpstore: refusing to write an empty database")
	case n > maxCount:
		return fmt.Errorf("crpstore: %d records exceed the format limit %d", n, maxCount)
	}
	return nil
}

// validateRecords checks every record against the header geometry before
// anything is written, so a bad record cannot leave a torn database behind.
func validateRecords(crps []CRP, stages int) error {
	for i, crp := range crps {
		if len(crp.Challenge) != stages {
			return fmt.Errorf("crpstore: record %d has %d stages, want %d", i, len(crp.Challenge), stages)
		}
		for _, b := range crp.Challenge {
			if b > 1 {
				return fmt.Errorf("crpstore: record %d has invalid challenge bit %d", i, b)
			}
		}
		if crp.Response > 1 {
			return fmt.Errorf("crpstore: record %d has invalid response %d", i, crp.Response)
		}
	}
	return nil
}

// Write encodes the CRPs to w.  All challenges must share the same length.
// Validation happens up front: on error, nothing has been written.
func Write(w io.Writer, crps []CRP) error {
	if err := checkCount(len(crps)); err != nil {
		return err
	}
	stages := len(crps[0].Challenge)
	if stages == 0 || stages > 65535 {
		return fmt.Errorf("crpstore: unsupported challenge length %d", stages)
	}
	if err := validateRecords(crps, stages); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(stages)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(crps))); err != nil {
		return err
	}
	chalBytes := (stages + 7) / 8
	buf := make([]byte, chalBytes)
	for _, crp := range crps {
		for j := range buf {
			buf[j] = 0
		}
		for j, b := range crp.Challenge {
			buf[j/8] |= b << uint(j%8)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	respBytes := make([]byte, (len(crps)+7)/8)
	for i, crp := range crps {
		respBytes[i/8] |= crp.Response << uint(i%8)
	}
	if _, err := bw.Write(respBytes); err != nil {
		return err
	}
	return bw.Flush()
}

// Read decodes a CRP database from r.
func Read(r io.Reader) ([]CRP, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m)
	}
	var stages uint16
	if err := binary.Read(br, binary.LittleEndian, &stages); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadFormat, err)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadFormat, err)
	}
	if stages == 0 {
		return nil, fmt.Errorf("%w: zero stages", ErrBadFormat)
	}
	if count == 0 || count > maxCount {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadFormat, count)
	}
	chalBytes := (int(stages) + 7) / 8
	crps := make([]CRP, count)
	buf := make([]byte, chalBytes)
	for i := range crps {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated record %d: %v", ErrBadFormat, i, err)
		}
		c := make(challenge.Challenge, stages)
		for j := range c {
			c[j] = (buf[j/8] >> uint(j%8)) & 1
		}
		crps[i].Challenge = c
	}
	respBytes := make([]byte, (int(count)+7)/8)
	if _, err := io.ReadFull(br, respBytes); err != nil {
		return nil, fmt.Errorf("%w: truncated responses: %v", ErrBadFormat, err)
	}
	for i := range crps {
		crps[i].Response = (respBytes[i/8] >> uint(i%8)) & 1
	}
	return crps, nil
}

// EncodedSize returns the exact byte size of a database with the given
// record count and challenge length — the number the protocol-comparison
// storage column uses.
func EncodedSize(count, stages int) int {
	return 4 + 2 + 4 + count*((stages+7)/8) + (count+7)/8
}
