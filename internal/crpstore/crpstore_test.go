package crpstore

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
)

func randomCRPs(seed uint64, n, stages int) []CRP {
	src := rng.New(seed)
	out := make([]CRP, n)
	for i := range out {
		out[i] = CRP{
			Challenge: challenge.Random(src, stages),
			Response:  src.Bit(),
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, stages int }{
		{1, 32}, {7, 32}, {8, 32}, {9, 64}, {1000, 32}, {33, 17}, {5, 1},
	} {
		crps := randomCRPs(uint64(tc.n*100+tc.stages), tc.n, tc.stages)
		var buf bytes.Buffer
		if err := Write(&buf, crps); err != nil {
			t.Fatalf("n=%d stages=%d: Write: %v", tc.n, tc.stages, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("n=%d stages=%d: Read: %v", tc.n, tc.stages, err)
		}
		if len(got) != len(crps) {
			t.Fatalf("count %d, want %d", len(got), len(crps))
		}
		for i := range crps {
			if got[i].Response != crps[i].Response {
				t.Fatalf("record %d response mismatch", i)
			}
			for j := range crps[i].Challenge {
				if got[i].Challenge[j] != crps[i].Challenge[j] {
					t.Fatalf("record %d challenge bit %d mismatch", i, j)
				}
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw, sRaw uint8) bool {
		n := int(nRaw%64) + 1
		stages := int(sRaw%80) + 1
		crps := randomCRPs(seed, n, stages)
		var buf bytes.Buffer
		if err := Write(&buf, crps); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range crps {
			if got[i].Response != crps[i].Response ||
				got[i].Challenge.Word() != crps[i].Challenge.Word() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEncodedSizeMatchesActual(t *testing.T) {
	for _, tc := range []struct{ n, stages int }{{1, 32}, {100, 32}, {17, 64}, {9, 7}} {
		crps := randomCRPs(1, tc.n, tc.stages)
		var buf bytes.Buffer
		if err := Write(&buf, crps); err != nil {
			t.Fatal(err)
		}
		if got, want := buf.Len(), EncodedSize(tc.n, tc.stages); got != want {
			t.Errorf("n=%d stages=%d: size %d, want %d", tc.n, tc.stages, got, want)
		}
	}
}

func TestCompactness(t *testing.T) {
	// 10,000 32-stage CRPs must cost ~4 bytes + 1 bit each.
	if size := EncodedSize(10000, 32); size > 42000 {
		t.Errorf("10k CRPs cost %d bytes; format not compact", size)
	}
}

func TestWriteValidation(t *testing.T) {
	if err := Write(&bytes.Buffer{}, nil); err == nil {
		t.Error("empty database should be rejected")
	}
	crps := randomCRPs(2, 3, 8)
	crps[1].Challenge = challenge.Challenge{0, 1} // ragged
	if err := Write(&bytes.Buffer{}, crps); err == nil {
		t.Error("ragged challenges should be rejected")
	}
	crps = randomCRPs(3, 2, 8)
	crps[0].Response = 2
	if err := Write(&bytes.Buffer{}, crps); err == nil {
		t.Error("invalid response should be rejected")
	}
	crps = randomCRPs(4, 2, 8)
	crps[1].Challenge[3] = 5
	if err := Write(&bytes.Buffer{}, crps); err == nil {
		t.Error("invalid challenge bit should be rejected")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a database at all"),
		[]byte("XPC1"),                          // truncated after magic
		{'X', 'P', 'C', '1', 32, 0, 0, 0, 0, 0}, // zero count
		{'X', 'P', 'C', '1', 0, 0, 1, 0, 0, 0},  // zero stages
	}
	for i, data := range cases {
		if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("case %d: err = %v, want ErrBadFormat", i, err)
		}
	}
}

func TestReadRejectsTruncatedBody(t *testing.T) {
	crps := randomCRPs(5, 50, 32)
	var buf bytes.Buffer
	if err := Write(&buf, crps); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-10])); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncated body: err = %v, want ErrBadFormat", err)
	}
}

func TestReadRejectsAbsurdCount(t *testing.T) {
	header := []byte{'X', 'P', 'C', '1', 32, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Read(bytes.NewReader(header)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("absurd count: err = %v, want ErrBadFormat", err)
	}
}

func BenchmarkWrite10k(b *testing.B) {
	crps := randomCRPs(6, 10000, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, crps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead10k(b *testing.B) {
	crps := randomCRPs(7, 10000, 32)
	var buf bytes.Buffer
	if err := Write(&buf, crps); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWriteRejectsOverflowingCounts(t *testing.T) {
	// A count beyond maxCount would truncate in the header's uint32 (or at
	// best produce a database Read refuses), so Write must reject it.  The
	// slice itself would be hundreds of GiB, so the check is exercised
	// through the same helper Write calls.
	for _, n := range []int{maxCount + 1, 1 << 32, (1 << 32) + 5} {
		if err := checkCount(n); err == nil {
			t.Errorf("count %d accepted, want rejection", n)
		}
	}
	if err := checkCount(0); err == nil {
		t.Error("count 0 accepted, want rejection")
	}
	for _, n := range []int{1, 1000, maxCount} {
		if err := checkCount(n); err != nil {
			t.Errorf("count %d rejected: %v", n, err)
		}
	}
}

func TestWriteValidatesBeforeWriting(t *testing.T) {
	// A record whose stage width disagrees with the header must fail the
	// whole Write with NOTHING emitted — a torn database that parses up to
	// the bad record is worse than no database.
	crps := randomCRPs(5, 5, 16)
	crps[3].Challenge = challenge.Challenge{1, 0, 1} // width 3, header says 16
	var buf bytes.Buffer
	if err := Write(&buf, crps); err == nil {
		t.Fatal("stage-width mismatch accepted")
	}
	if buf.Len() != 0 {
		t.Fatalf("failed Write left %d bytes behind", buf.Len())
	}
	crps = randomCRPs(6, 6, 16)
	crps[5].Response = 7
	buf.Reset()
	if err := Write(&buf, crps); err == nil {
		t.Fatal("invalid response accepted")
	}
	if buf.Len() != 0 {
		t.Fatalf("failed Write left %d bytes behind", buf.Len())
	}
}
