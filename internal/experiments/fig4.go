package experiments

import (
	"fmt"

	"xorpuf/internal/mlattack"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/xorpuf"
)

// Fig4Cell is one point of the attack sweep: a width, a training-set size,
// and the resulting model accuracy.
type Fig4Cell struct {
	Width         int
	TrainSize     int
	TestSize      int
	TestAccuracy  float64
	TrainAccuracy float64
	Iterations    int
	PerCRPMicros  float64 // training microseconds per CRP (paper: 395 µs)
}

// Fig4Result is the prediction-accuracy sweep of paper Fig 4: MLP
// (35-25-25, L-BFGS) trained on stable XOR-PUF CRPs, for several widths and
// training-set sizes.  The paper's reading: ≥90 % accuracy is reachable with
// <100 k CRPs for n < 10, so a secure XOR PUF needs ≥10 members.
type Fig4Result struct {
	Cells []Fig4Cell
}

// Fig4 runs the attack sweep defined by cfg.AttackWidths × cfg.AttackSizes.
// CRP sets contain only 100 %-stable responses for both training and test,
// mirroring §2.3 ("models trained with only stable CRPs are more accurate").
func Fig4(cfg Config) *Fig4Result {
	root := rng.New(cfg.Seed)
	res := &Fig4Result{}
	maxTrain := 0
	for _, s := range cfg.AttackSizes {
		if s > maxTrain {
			maxTrain = s
		}
	}
	for _, width := range cfg.AttackWidths {
		chip := silicon.NewChip(root.Fork("fig4-chip", width), cfg.Params, width)
		x := xorpuf.FromChip(chip, width)
		pool, _ := x.StableCRPs(root.Fork("fig4-crps", width), maxTrain+cfg.AttackTestSize,
			silicon.Nominal, 0.999)
		test := mlattack.DatasetFromCRPs(pool[maxTrain:])
		full := mlattack.DatasetFromCRPs(pool[:maxTrain])
		for _, size := range cfg.AttackSizes {
			train := full.Head(size)
			attack := mlattack.RunMLPAttack(root.Fork("fig4-init", width*1000000+size),
				train, test, cfg.AttackMLP)
			res.Cells = append(res.Cells, Fig4Cell{
				Width:         width,
				TrainSize:     size,
				TestSize:      test.Len(),
				TestAccuracy:  attack.TestAccuracy,
				TrainAccuracy: attack.TrainAccuracy,
				Iterations:    attack.Iterations,
				PerCRPMicros:  float64(attack.PerCRP.Microseconds()),
			})
		}
	}
	return res
}

// Table renders the sweep with one row per (n, training size) point.
func (r *Fig4Result) Table() *Table {
	t := &Table{
		Title:  "Fig 4: MLP modeling-attack accuracy vs training size and XOR width (paper: >90% for n<10 under 100k CRPs; 10-XOR stays near chance)",
		Header: []string{"n", "train CRPs", "test acc %", "train acc %", "iters", "µs/CRP"},
	}
	for _, c := range r.Cells {
		t.AddRowf(c.Width, c.TrainSize, 100*c.TestAccuracy, 100*c.TrainAccuracy,
			c.Iterations, c.PerCRPMicros)
	}
	return t
}

// BestAccuracy returns the best test accuracy achieved for a width, or 0 if
// the width was not swept.
func (r *Fig4Result) BestAccuracy(width int) float64 {
	best := 0.0
	for _, c := range r.Cells {
		if c.Width == width && c.TestAccuracy > best {
			best = c.TestAccuracy
		}
	}
	return best
}

// String summarizes the security conclusion like the paper's §2.3.
func (r *Fig4Result) String() string {
	broken := -1
	resisted := -1
	for _, c := range r.Cells {
		if c.TestAccuracy >= 0.9 && (broken < 0 || c.Width > broken) {
			broken = c.Width
		}
	}
	for _, c := range r.Cells {
		if r.BestAccuracy(c.Width) < 0.9 && (resisted < 0 || c.Width < resisted) {
			resisted = c.Width
		}
	}
	return fmt.Sprintf("widths broken (≥90%% test acc) up to n=%d; first resisting width within budget: n=%d",
		broken, resisted)
}
