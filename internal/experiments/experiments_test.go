package experiments

import (
	"math"
	"strings"
	"testing"
)

// fastCfg shrinks the Fast config further so the whole experiment suite
// runs inside the unit-test budget while still exercising every code path.
func fastCfg() Config {
	cfg := Fast()
	cfg.Challenges = 8000
	cfg.ValidationSize = 8000
	cfg.Chips = 3
	cfg.AttackWidths = []int{2}
	cfg.AttackSizes = []int{2000}
	cfg.AttackTestSize = 800
	cfg.AttackMLP.LBFGS.MaxIter = 80
	return cfg
}

func TestFig2Calibration(t *testing.T) {
	res := Fig2(fastCfg())
	total := res.FracStable0 + res.FracStable1
	if total < 0.74 || total > 0.86 {
		t.Errorf("stable fraction %.3f, want ≈0.80 (paper Fig 2)", total)
	}
	// The distribution must be strongly bimodal: interior bins together
	// hold the minority of mass.
	interior := 1 - total
	if interior > 0.3 {
		t.Errorf("interior mass %.3f too high; distribution not bimodal", interior)
	}
	tbl := res.Table()
	if !strings.Contains(tbl.String(), "Pr(stable0)") {
		t.Error("table missing summary rows")
	}
}

func TestFig3ExponentialDecay(t *testing.T) {
	res := Fig3(fastCfg())
	if len(res.Widths) != 10 {
		t.Fatalf("got %d widths, want 10", len(res.Widths))
	}
	if res.FitBase < 0.75 || res.FitBase > 0.86 {
		t.Errorf("fitted base %.3f, want ≈0.80 (paper Fig 3)", res.FitBase)
	}
	// n = 10 point near 10.9 %.
	last := res.Measured[9]
	if last < 0.04 || last > 0.20 {
		t.Errorf("n=10 stable fraction %.4f, want ≈0.109", last)
	}
	// Monotone decreasing.
	for i := 1; i < len(res.Measured); i++ {
		if res.Measured[i] > res.Measured[i-1] {
			t.Errorf("stable fraction increased at n=%d", res.Widths[i])
		}
	}
}

func TestFig4NarrowBreaks(t *testing.T) {
	res := Fig4(fastCfg())
	if len(res.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(res.Cells))
	}
	if acc := res.BestAccuracy(2); acc < 0.85 {
		t.Errorf("2-XOR best accuracy %.3f, want > 0.85", acc)
	}
	if !strings.Contains(res.Table().String(), "train CRPs") {
		t.Error("table missing header")
	}
}

func TestFig8ThresholdsAndDiscards(t *testing.T) {
	res := Fig8(fastCfg())
	if !(res.Thr0 > 0 && res.Thr0 < 0.5 && res.Thr1 > 0.5 && res.Thr1 < 1) {
		t.Errorf("thresholds (%.3f, %.3f) outside expected bands", res.Thr0, res.Thr1)
	}
	n := res.PredStable0 + res.PredUnstable + res.PredStable1
	if n != res.TrainingSize {
		t.Fatalf("classification counts %d != training size %d", n, res.TrainingSize)
	}
	// Key paper observation: some measured-stable CRPs are discarded as
	// marginally stable, so predicted-stable < measured-stable.
	predStable := res.PredStable0 + res.PredStable1
	if predStable >= res.MeasuredStable {
		t.Errorf("predicted stable (%d) should be below measured stable (%d)",
			predStable, res.MeasuredStable)
	}
	if res.MeasuredStableDiscarded == 0 {
		t.Error("expected some measured-stable-but-discarded CRPs")
	}
	// Predictions must span a wider range than [0,1].
	if res.PredHist.Below+res.PredHist.Above == 0 &&
		res.PredHist.Counts[0] == 0 && res.PredHist.Counts[len(res.PredHist.Counts)-1] == 0 {
		t.Log("note: predictions all inside [-1.5, 2.5] core band")
	}
}

func TestFig9BetaRanges(t *testing.T) {
	res := Fig9(fastCfg())
	if len(res.PerPUF) != 3 {
		t.Fatalf("got %d PUFs, want 3", len(res.PerPUF))
	}
	for i, b := range res.PerPUF {
		if b.Beta0 > 1 || b.Beta0 < 0.3 {
			t.Errorf("chip %d: β0 = %.2f outside plausible range", i, b.Beta0)
		}
		if b.Beta1 < 1 || b.Beta1 > 1.7 {
			t.Errorf("chip %d: β1 = %.2f outside plausible range", i, b.Beta1)
		}
	}
	if res.Pooled0 > 1 || res.Pooled1 < 1 {
		t.Errorf("pooled (%v, %v) not conservative", res.Pooled0, res.Pooled1)
	}
}

func TestFig10PredictedBelowMeasuredAndSaturating(t *testing.T) {
	res := Fig10(fastCfg())
	if len(res.Points) != 7 {
		t.Fatalf("got %d points, want 7", len(res.Points))
	}
	for _, p := range res.Points {
		if p.PredictedPct >= p.MeasuredPct {
			t.Errorf("size %d: predicted %.1f%% not below measured %.1f%%",
				p.TrainSize, p.PredictedPct, p.MeasuredPct)
		}
		if p.MeasuredPct < 70 || p.MeasuredPct > 90 {
			t.Errorf("measured %.1f%%, want ≈80%%", p.MeasuredPct)
		}
		// Model-selected challenges must essentially all be stable.
		if float64(p.SelectedWrong) > 0.005*float64(res.Challenges) {
			t.Errorf("size %d: %d selected-but-unstable challenges", p.TrainSize, p.SelectedWrong)
		}
	}
	// Larger training sets must not hurt yield much: the largest size
	// should beat the smallest.
	if res.Points[len(res.Points)-1].PredictedPct <= res.Points[0].PredictedPct {
		t.Errorf("yield did not improve with training size: %.1f%% (500) vs %.1f%% (10000)",
			res.Points[0].PredictedPct, res.Points[len(res.Points)-1].PredictedPct)
	}
}

func TestFig11VTHardening(t *testing.T) {
	res := Fig11(fastCfg())
	if res.Beta0VT > res.Beta0Nom || res.Beta1VT < res.Beta1Nom {
		t.Errorf("V/T β (%v, %v) not at least as stringent as nominal (%v, %v)",
			res.Beta0VT, res.Beta1VT, res.Beta0Nom, res.Beta1Nom)
	}
	if res.PredictedVTPct > res.PredictedNomPct {
		t.Errorf("V/T selection %.2f%% exceeds nominal %.2f%%", res.PredictedVTPct, res.PredictedNomPct)
	}
	if res.MeasuredStableAllPct >= res.MeasuredStableNomPct {
		t.Errorf("all-corner stability %.1f%% should be below nominal %.1f%%",
			res.MeasuredStableAllPct, res.MeasuredStableNomPct)
	}
	// The paper's point: hardened selection keeps its picks stable at
	// every corner (at most a stray marginal case).
	if float64(res.SelectedWrongVTB) > 0.002*float64(res.Challenges) {
		t.Errorf("hardened β selected %d V/T-unstable challenges out of %d",
			res.SelectedWrongVTB, res.Challenges)
	}
	// Hardened selection must cut V/T-unstable picks relative to nominal β.
	if res.SelectedWrongVTB > res.SelectedWrongNominalB {
		t.Errorf("hardened β selected more V/T-unstable challenges (%d) than nominal (%d)",
			res.SelectedWrongVTB, res.SelectedWrongNominalB)
	}
}

func TestFig12ThreeCurves(t *testing.T) {
	cfg := fastCfg()
	cfg.Challenges = 20000 // deeper test set so the n=10 points have counts
	res := Fig12(cfg)
	if len(res.Widths) != 10 {
		t.Fatalf("got %d widths, want 10", len(res.Widths))
	}
	// Ordering at every width: measured ≥ predicted-nominal ≥ predicted-V/T.
	for i := range res.Widths {
		if res.PredNomPct[i] > res.MeasuredPct[i]+1e-9 {
			t.Errorf("n=%d: predicted-nominal %.3f%% above measured %.3f%%",
				res.Widths[i], res.PredNomPct[i], res.MeasuredPct[i])
		}
		if res.PredVTPct[i] > res.PredNomPct[i]+1e-9 {
			t.Errorf("n=%d: predicted-V/T %.3f%% above predicted-nominal %.3f%%",
				res.Widths[i], res.PredVTPct[i], res.PredNomPct[i])
		}
	}
	// Bases ordered like the paper's 0.800 / 0.545 / 0.342.
	if !(res.BaseMeasured > res.BaseNom && res.BaseNom > res.BaseVT) {
		t.Errorf("fitted bases not ordered: measured %.3f, nominal %.3f, V/T %.3f",
			res.BaseMeasured, res.BaseNom, res.BaseVT)
	}
	if res.BaseMeasured < 0.75 || res.BaseMeasured > 0.86 {
		t.Errorf("measured base %.3f, want ≈0.80", res.BaseMeasured)
	}
}

func TestMetricsPanel(t *testing.T) {
	res := Metrics(fastCfg())
	if math.Abs(res.Uniqueness-0.5) > 0.06 {
		t.Errorf("uniqueness %.3f, want ≈0.5", res.Uniqueness)
	}
	if math.Abs(res.XORUniqueness-0.5) > 0.06 {
		t.Errorf("XOR uniqueness %.3f, want ≈0.5", res.XORUniqueness)
	}
	if res.Reliability < 0.93 {
		t.Errorf("single-PUF reliability %.3f, want > 0.93", res.Reliability)
	}
	// Raw XOR responses are less reliable than single-PUF responses —
	// the stability cost of the XOR construction.
	if res.XORReliability >= res.Reliability {
		t.Errorf("XOR reliability %.3f should be below single-PUF %.3f",
			res.XORReliability, res.Reliability)
	}
	if math.Abs(res.UniformityMean-0.5) > 0.08 {
		t.Errorf("uniformity %.3f, want ≈0.5", res.UniformityMean)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRowf(1, 2.5)
	tbl.AddRow("x", "y")
	s := tbl.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "2.5") {
		t.Errorf("render:\n%s", s)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Errorf("csv:\n%s", csv)
	}
}

func TestProtocolsComparison(t *testing.T) {
	cfg := fastCfg()
	res := Protocols(cfg)
	if len(res.Rows) != 4 {
		t.Fatalf("got %d protocol rows, want 4", len(res.Rows))
	}
	byName := map[string]ProtocolRow{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	ma := byName["model-assisted (paper)"]
	classic := byName["classic HD (10% threshold)"]
	// The paper's protocol must not false-reject across corners and must
	// not false-accept the impostor.
	if ma.FalseRejects != 0 {
		t.Errorf("model-assisted false-rejected %d/%d across corners", ma.FalseRejects, ma.AuthTrials)
	}
	if ma.FalseAccepts != 0 {
		t.Errorf("model-assisted false-accepted %d/%d impostors", ma.FalseAccepts, ma.AuthTrials)
	}
	// The classic protocol should false-reject at least as often at the
	// corners (its references were recorded at nominal only).
	if classic.FalseRejects < ma.FalseRejects {
		t.Errorf("classic HD false-rejects (%d) below model-assisted (%d)",
			classic.FalseRejects, ma.FalseRejects)
	}
	// Model storage must be far below any CRP-table protocol.
	for name, r := range byName {
		if name == "model-assisted (paper)" {
			continue
		}
		if ma.StoredBytes >= r.StoredBytes {
			t.Errorf("model storage %dB not below %s storage %dB", ma.StoredBytes, name, r.StoredBytes)
		}
		if !r.DBBound {
			t.Errorf("%s should deplete its DB", name)
		}
	}
	if ma.DBBound {
		t.Error("model-assisted protocol must not deplete a DB")
	}
}

func TestAvalancheStructure(t *testing.T) {
	cfg := fastCfg()
	cfg.Challenges = 4000
	res := Avalanche(cfg)
	if len(res.SingleFlip) != 32 {
		t.Fatalf("got %d positions, want 32", len(res.SingleFlip))
	}
	// Single PUF: late bits must be far more sensitive than early bits
	// (flipping bit i negates features 0..i).
	early := (res.SingleFlip[0] + res.SingleFlip[1] + res.SingleFlip[2]) / 3
	late := (res.SingleFlip[29] + res.SingleFlip[30] + res.SingleFlip[31]) / 3
	if late <= early {
		t.Errorf("late-bit sensitivity %.3f not above early-bit %.3f", late, early)
	}
	// Flipping the last stage bit negates every non-constant feature
	// (Δ → 2w_k − Δ), so late-bit flip probability runs well ABOVE 0.5 —
	// the single PUF's notorious anti-avalanche structure.
	if late < 0.55 {
		t.Errorf("late-bit sensitivity %.3f, want > 0.55", late)
	}
	if early > 0.25 {
		t.Errorf("early-bit sensitivity %.3f, want small", early)
	}
	// XOR composition must pull every position toward the ideal 0.5:
	// |1−2p_xor| = Π|1−2p_i| ≤ |1−2p_single| for independent members.
	for bit := 0; bit < 32; bit++ {
		devXOR := math.Abs(res.XORFlip[bit] - 0.5)
		devSingle := math.Abs(res.SingleFlip[bit] - 0.5)
		if devXOR > devSingle+0.03 {
			t.Errorf("bit %d: XOR deviation %.3f exceeds single-PUF %.3f",
				bit, devXOR, devSingle)
		}
		if devXOR > 0.10 {
			t.Errorf("bit %d: XOR flip %.3f too far from 0.5", bit, res.XORFlip[bit])
		}
	}
}

func TestRenderBars(t *testing.T) {
	out := RenderBars("T", []string{"a", "b"}, []Series{
		{Name: "s1", Values: []float64{1, 100}},
		{Name: "s2", Values: []float64{10, 0}},
	}, 20, true)
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "s1") || !strings.Contains(out, "s2") {
		t.Errorf("render:\n%s", out)
	}
	// The 100 bar must be longer than the 1 bar.
	lines := strings.Split(out, "\n")
	var bar1, bar100 int
	for _, l := range lines {
		if strings.Contains(l, "s1") {
			n := strings.Count(l, "█")
			if strings.HasSuffix(l, " 1") {
				bar1 = n
			}
			if strings.HasSuffix(l, " 100") {
				bar100 = n
			}
		}
	}
	if bar100 <= bar1 {
		t.Errorf("bar lengths not ordered: %d vs %d", bar1, bar100)
	}
	empty := RenderBars("E", []string{"x"}, []Series{{Name: "s", Values: []float64{0}}}, 10, false)
	if !strings.Contains(empty, "no positive data") {
		t.Errorf("empty render:\n%s", empty)
	}
}

func TestFigPlotsRender(t *testing.T) {
	cfg := fastCfg()
	cfg.Challenges = 3000
	f3 := Fig3(cfg)
	if p := f3.Plot(40); !strings.Contains(p, "n=10") {
		t.Errorf("fig3 plot:\n%s", p)
	}
	f12 := Fig12(cfg)
	if p := f12.Plot(40); !strings.Contains(p, "V/T-β") {
		t.Errorf("fig12 plot:\n%s", p)
	}
}
