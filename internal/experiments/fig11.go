package experiments

import (
	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// Fig11Result is the threshold adjustment under voltage/temperature
// variation (paper Fig 11): the model is trained at 0.9 V / 25 °C, the test
// set spans the nine corners, and the β search must produce more stringent
// values than the nominal case for the selected CRPs to survive everywhere.
type Fig11Result struct {
	Thr0, Thr1            float64
	Beta0Nom, Beta1Nom    float64
	Beta0VT, Beta1VT      float64
	MeasuredStableNomPct  float64 // % stable at nominal
	MeasuredStableAllPct  float64 // % stable at every corner
	PredictedNomPct       float64 // % selected with nominal β
	PredictedVTPct        float64 // % selected with V/T-hardened β
	SelectedWrongNominalB int     // V/T-unstable challenges selected by nominal β
	SelectedWrongVTB      int     // V/T-unstable challenges selected by hardened β
	// UnstableNomPct / UnstableAllCondPct measure the width of the
	// soft-response distribution's middle region: the fraction of
	// (challenge, condition) measurements that are not 100 %-stable, at
	// nominal only and across all nine corners.  The paper's Fig 11
	// observation is that the corner-spanning test distribution is much
	// wider than the nominal training distribution.
	UnstableNomPct         float64
	UnstableAllCondPct     float64
	Challenges, Train, Val int
}

// Fig11 trains at nominal, searches β both nominal-only and across all
// corners, and scores both on a corner-spanning test set.
func Fig11(cfg Config) *Fig11Result {
	root := rng.New(cfg.Seed)
	chip := silicon.NewChip(root.Fork("chip", 0), cfg.Params, 1)
	corners := silicon.Corners()

	enrollCfg := core.DefaultEnrollConfig()
	enrollCfg.TrainingSize = cfg.TrainingSize
	enrollCfg.ValidationSize = cfg.ValidationSize
	model, err := core.EnrollPUF(chip, 0, root.Split("fig11-train"), enrollCfg)
	if err != nil {
		panic(err)
	}
	nom, err := core.SearchBetas(chip, 0, model, root.Split("fig11-val"), enrollCfg)
	if err != nil {
		panic(err)
	}
	vtCfg := enrollCfg
	vtCfg.Conditions = corners
	vt, err := core.SearchBetas(chip, 0, model, root.Split("fig11-val"), vtCfg)
	if err != nil {
		panic(err)
	}

	res := &Fig11Result{
		Thr0: model.Thr0, Thr1: model.Thr1,
		Beta0Nom: nom.Beta0, Beta1Nom: nom.Beta1,
		Beta0VT: vt.Beta0, Beta1VT: vt.Beta1,
		Challenges: cfg.Challenges, Train: cfg.TrainingSize, Val: cfg.ValidationSize,
	}

	// Test set: measure at nominal and at every corner.
	testSrc := root.Split("fig11-test")
	var stableNom, stableAll, selNom, selVT int
	var unstableNomMeas, unstableAllMeas, allCondMeas int
	for i := 0; i < cfg.Challenges; i++ {
		c := challenge.Random(testSrc, chip.Stages())
		sNom, err := chip.SoftResponse(0, c, silicon.Nominal)
		if err != nil {
			panic(err)
		}
		nomStable := core.StableMeasurement(sNom)
		if nomStable {
			stableNom++
		} else {
			unstableNomMeas++
			unstableAllMeas++
		}
		allCondMeas++
		allStable := nomStable
		for _, cond := range corners {
			if cond == silicon.Nominal {
				continue
			}
			s, err := chip.SoftResponse(0, c, cond)
			if err != nil {
				panic(err)
			}
			allCondMeas++
			if !core.StableMeasurement(s) {
				allStable = false
				unstableAllMeas++
			}
		}
		if allStable {
			stableAll++
		}
		if model.ClassifyChallenge(c, nom.Beta0, nom.Beta1) != core.Unstable {
			selNom++
			if !allStable {
				res.SelectedWrongNominalB++
			}
		}
		if model.ClassifyChallenge(c, vt.Beta0, vt.Beta1) != core.Unstable {
			selVT++
			if !allStable {
				res.SelectedWrongVTB++
			}
		}
	}
	n := float64(cfg.Challenges)
	res.MeasuredStableNomPct = 100 * float64(stableNom) / n
	res.MeasuredStableAllPct = 100 * float64(stableAll) / n
	res.PredictedNomPct = 100 * float64(selNom) / n
	res.PredictedVTPct = 100 * float64(selVT) / n
	res.UnstableNomPct = 100 * float64(unstableNomMeas) / n
	res.UnstableAllCondPct = 100 * float64(unstableAllMeas) / float64(allCondMeas)
	return res
}

// Table summarizes the V/T hardening.
func (r *Fig11Result) Table() *Table {
	t := &Table{
		Title:  "Fig 11: threshold adjustment under 0.8–1.0V / 0–60°C (paper: β must tighten beyond the nominal values)",
		Header: []string{"quantity", "nominal β", "V/T-hardened β"},
	}
	t.AddRowf("β0", r.Beta0Nom, r.Beta0VT)
	t.AddRowf("β1", r.Beta1Nom, r.Beta1VT)
	t.AddRowf("% selected", r.PredictedNomPct, r.PredictedVTPct)
	t.AddRowf("selected but V/T-unstable", r.SelectedWrongNominalB, r.SelectedWrongVTB)
	t.AddRowf("% measured stable (nominal / all corners)", r.MeasuredStableNomPct, r.MeasuredStableAllPct)
	t.AddRowf("% unstable measurements (nominal / per-corner avg)", r.UnstableNomPct, r.UnstableAllCondPct)
	return t
}
