package experiments

import (
	"fmt"

	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/xorpuf"
)

// AvalancheResult is the bit-position sensitivity analysis of the MUX
// arbiter PUF (the statistical-analysis companion results of Lao & Parhi
// that the paper's linear model rests on): the probability that flipping
// challenge bit i flips the response.
//
// For the linear additive model, flipping bit i negates parity features
// Φ_0..Φ_i, so late stages perturb almost the whole delay sum (flip
// probability → 0.5) while early stages perturb a single term (flip
// probability ≪ 0.5) — a structural non-avalanche property that the XOR
// composition flattens toward the ideal 0.5.
type AvalancheResult struct {
	Stages     int
	SingleFlip []float64 // per bit position, single PUF
	XORFlip    []float64 // per bit position, width-XORWidth XOR PUF
	XORWidth   int
	Challenges int
}

// Avalanche measures flip probabilities on noiseless responses.
func Avalanche(cfg Config) *AvalancheResult {
	root := rng.New(cfg.Seed)
	width := cfg.PUFsPerChip
	if width > 10 {
		width = 10
	}
	chip := silicon.NewChip(root.Fork("chip", 0), cfg.Params, width)
	x := xorpuf.FromChip(chip, width)
	stages := chip.Stages()
	res := &AvalancheResult{
		Stages:     stages,
		SingleFlip: make([]float64, stages),
		XORFlip:    make([]float64, stages),
		XORWidth:   width,
		Challenges: cfg.Challenges,
	}
	src := root.Split("avalanche")
	n := cfg.Challenges
	if n > 50000 {
		n = 50000 // 2·k evaluations per challenge; cap the quadratic cost
	}
	for i := 0; i < n; i++ {
		c := challenge.Random(src, stages)
		baseSingle := chip.PUF(0).Delay(c, silicon.Nominal) > 0
		baseXOR := x.NoiselessResponse(c, silicon.Nominal)
		for bit := 0; bit < stages; bit++ {
			c[bit] ^= 1
			if (chip.PUF(0).Delay(c, silicon.Nominal) > 0) != baseSingle {
				res.SingleFlip[bit]++
			}
			if x.NoiselessResponse(c, silicon.Nominal) != baseXOR {
				res.XORFlip[bit]++
			}
			c[bit] ^= 1
		}
	}
	for bit := 0; bit < stages; bit++ {
		res.SingleFlip[bit] /= float64(n)
		res.XORFlip[bit] /= float64(n)
	}
	res.Challenges = n
	return res
}

// Table renders flip probability versus bit position.
func (r *AvalancheResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Avalanche: response-flip probability vs challenge bit position (%d challenges; ideal 0.5)",
			r.Challenges),
		Header: []string{"bit", "single PUF", fmt.Sprintf("%d-XOR PUF", r.XORWidth)},
	}
	for bit := 0; bit < r.Stages; bit++ {
		t.AddRowf(bit, r.SingleFlip[bit], r.XORFlip[bit])
	}
	return t
}
