package experiments

import (
	"fmt"
	"math"

	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/stats"
)

// Fig3Result is the percentage of 100 %-stable CRPs versus XOR width
// (paper Fig 3: ≈0.800ⁿ, 10.9 % at n = 10).
type Fig3Result struct {
	Widths     []int
	Measured   []float64 // fraction of challenges stable on all first-n PUFs
	FitBase    float64   // fitted base of A·baseⁿ
	FitPre     float64
	Challenges int
}

// Fig3 measures, for every challenge, which member PUFs read 100 %-stable
// over the counter window, then accumulates the all-stable fraction for each
// XOR width — the methodology of paper §2.2.
func Fig3(cfg Config) *Fig3Result {
	root := rng.New(cfg.Seed)
	width := cfg.PUFsPerChip
	if width > 10 {
		width = 10 // the paper's Fig 3 sweeps n = 1..10
	}
	chip := silicon.NewChip(root.Fork("chip", 0), cfg.Params, width)
	challengeSrc := root.Split("fig3-challenges")
	stableCount := make([]int, width+1) // index = XOR width
	for i := 0; i < cfg.Challenges; i++ {
		c := challenge.Random(challengeSrc, chip.Stages())
		allStable := true
		for j := 0; j < width && allStable; j++ {
			soft, err := chip.SoftResponse(j, c, silicon.Nominal)
			if err != nil {
				panic(err)
			}
			if soft != 0 && soft != 1 {
				allStable = false
				break
			}
			stableCount[j+1]++
		}
	}
	res := &Fig3Result{Challenges: cfg.Challenges}
	for n := 1; n <= width; n++ {
		res.Widths = append(res.Widths, n)
		res.Measured = append(res.Measured, float64(stableCount[n])/float64(cfg.Challenges))
	}
	res.FitBase, res.FitPre, _ = stats.ExpFit(res.Widths, res.Measured)
	return res
}

// Table renders the width sweep with the fitted exponential, as the paper
// annotates Fig 3 with "Pr(stable) = (0.800)ⁿ".
func (r *Fig3Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig 3: %% stable CRPs vs XOR width (%d challenges; fit %.3f·%.3fⁿ; paper: 0.800ⁿ, 10.9%% at n=10)",
			r.Challenges, r.FitPre, r.FitBase),
		Header: []string{"n", "measured %", "fit %"},
	}
	for i, n := range r.Widths {
		fit := r.FitPre * math.Pow(r.FitBase, float64(n))
		t.AddRowf(n, 100*r.Measured[i], 100*fit)
	}
	return t
}
