// Package experiments contains one driver per figure of the paper's
// evaluation (Figs 2, 3, 4, 8, 9, 10, 11, 12) plus the PUF-metrics summary.
// Each driver fabricates the silicon it needs, runs the measurement or
// attack workload, and returns both structured results and a formatted
// table whose rows mirror what the paper plots.  The drivers are shared by
// the puflab CLI and the repository's benchmark suite.
package experiments

import (
	"xorpuf/internal/mlattack"
	"xorpuf/internal/silicon"
)

// Config scales the experiment workloads.  Full reproduces the paper's
// sizes (1 M challenges, 100 k-deep counters, 10 chips); Fast keeps every
// code path identical but shrinks the sample counts so the whole suite runs
// in seconds.
type Config struct {
	// Seed drives all fabrication and measurement randomness.
	Seed uint64
	// Params is the fabrication/measurement parameter set.
	Params silicon.Params
	// Chips is the lot size (paper: 10).
	Chips int
	// PUFsPerChip is the number of parallel PUFs fabricated per chip
	// (the paper sweeps XOR widths up to 10, attacks up to 11).
	PUFsPerChip int
	// Challenges is the test-set size (paper: 1,000,000).
	Challenges int
	// TrainingSize is the enrollment regression set (paper: 5,000).
	TrainingSize int
	// ValidationSize is the β-search set.
	ValidationSize int

	// Attack sweep (Fig 4).
	AttackWidths    []int
	AttackSizes     []int
	AttackTestSize  int
	AttackMLP       mlattack.MLPAttackConfig
	AttackChallenge int // unused sizes guard
}

// Fast returns a configuration that exercises every experiment end to end
// in seconds.  Counter depth stays at the paper's 100,000 (the Binomial
// counter makes depth free); only population sizes shrink.
func Fast() Config {
	mlp := mlattack.DefaultMLPAttackConfig()
	mlp.Restarts = 1
	mlp.LBFGS.MaxIter = 120
	return Config{
		Seed:           1,
		Params:         silicon.DefaultParams(),
		Chips:          4,
		PUFsPerChip:    10,
		Challenges:     40000,
		TrainingSize:   5000,
		ValidationSize: 20000,
		AttackWidths:   []int{2, 4, 6},
		AttackSizes:    []int{1000, 4000, 10000},
		AttackTestSize: 2000,
		AttackMLP:      mlp,
	}
}

// Full returns the paper-scale configuration.  The measurement experiments
// (Figs 2, 3, 8–12) run the genuine 1 M-challenge workloads; the Fig 4
// attack sweep covers n = 4..11 with training sets up to 100,000 stable
// CRPs, which is hours of CPU — run it deliberately.
func Full() Config {
	cfg := Fast()
	cfg.Chips = 10
	cfg.PUFsPerChip = 11
	cfg.Challenges = 1000000
	cfg.ValidationSize = 200000
	cfg.AttackWidths = []int{4, 5, 6, 7, 8, 9, 10, 11}
	cfg.AttackSizes = []int{1000, 5000, 10000, 20000, 50000, 100000}
	cfg.AttackTestSize = 10000
	cfg.AttackMLP = mlattack.DefaultMLPAttackConfig()
	return cfg
}
