package experiments

import (
	"fmt"
	"strings"
)

// Table is a titled grid of result rows, rendered as aligned text or CSV.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built by applying fmt.Sprintf("%v") to each value,
// with float64 values rendered compactly.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = formatFloat(x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, cells)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 0.001 && x < 100000:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", x), "0"), ".")
	default:
		return fmt.Sprintf("%.3e", x)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting — cells are
// numeric or simple labels).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
