package experiments

import (
	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/stats"
	"xorpuf/internal/xorpuf"
)

// MetricsResult carries the classical PUF quality metrics for the simulated
// lot, at both the single-PUF and XOR levels.  These are not a paper figure
// but the standard sanity panel any silicon PUF study reports.
type MetricsResult struct {
	Chips, Challenges int
	XORWidth          int

	UniformityMean float64 // mean per-chip fraction of 1s (ideal 0.5)
	UniformityStd  float64
	Uniqueness     float64 // mean pairwise inter-chip HD (ideal 0.5)
	Reliability    float64 // 1 − intra-chip HD over repeated noisy reads (ideal 1)
	AliasingStd    float64 // std of per-challenge bit-aliasing (ideal 0)

	XORUniformity  float64
	XORUniqueness  float64
	XORReliability float64
}

// Metrics fabricates the lot and computes the metric panel on shared random
// challenges.  Reliability uses single-shot noisy reads against the
// noiseless reference (so it reflects raw, unselected responses).
func Metrics(cfg Config) *MetricsResult {
	root := rng.New(cfg.Seed)
	width := cfg.PUFsPerChip
	if width > 10 {
		width = 10
	}
	lot := silicon.FabricateLot(root.Split("lot"), cfg.Params, cfg.Chips, width)
	cs := challenge.RandomBatch(root.Split("metrics-challenges"), cfg.Challenges, cfg.Params.Stages)

	// Response matrices: single PUF (index 0 of each chip) and full XOR.
	single := make([][]uint8, cfg.Chips)
	xorMat := make([][]uint8, cfg.Chips)
	for i, chip := range lot {
		x := xorpuf.FromChip(chip, width)
		srow := make([]uint8, len(cs))
		xrow := make([]uint8, len(cs))
		for j, c := range cs {
			if chip.PUF(0).Delay(c, silicon.Nominal) > 0 {
				srow[j] = 1
			}
			xrow[j] = x.NoiselessResponse(c, silicon.Nominal)
		}
		single[i] = srow
		xorMat[i] = xrow
	}

	res := &MetricsResult{
		Chips:      cfg.Chips,
		Challenges: cfg.Challenges,
		XORWidth:   width,
		Uniqueness: stats.Uniqueness(single),
	}
	uniform := make([]float64, cfg.Chips)
	for i, row := range single {
		uniform[i] = stats.Uniformity(row)
	}
	res.UniformityMean = stats.Mean(uniform)
	res.UniformityStd = stats.Std(uniform)
	res.AliasingStd = stats.Std(stats.BitAliasing(single))
	res.XORUniqueness = stats.Uniqueness(xorMat)
	xuniform := make([]float64, cfg.Chips)
	for i, row := range xorMat {
		xuniform[i] = stats.Uniformity(row)
	}
	res.XORUniformity = stats.Mean(xuniform)

	// Reliability: repeated noisy reads of chip 0 against the noiseless
	// reference.
	chip := lot[0]
	x := xorpuf.FromChip(chip, width)
	noise := root.Split("metrics-noise")
	const repeats = 5
	sRepeats := make([][]uint8, repeats)
	xRepeats := make([][]uint8, repeats)
	for r := 0; r < repeats; r++ {
		srow := make([]uint8, len(cs))
		xrow := make([]uint8, len(cs))
		for j, c := range cs {
			srow[j] = chip.PUF(0).Eval(noise, c, silicon.Nominal)
			xrow[j] = x.Eval(noise, c, silicon.Nominal)
		}
		sRepeats[r] = srow
		xRepeats[r] = xrow
	}
	res.Reliability = stats.Reliability(single[0], sRepeats)
	res.XORReliability = stats.Reliability(xorMat[0], xRepeats)
	return res
}

// Table renders the metric panel.
func (r *MetricsResult) Table() *Table {
	t := &Table{
		Title:  "PUF quality metrics (simulated lot)",
		Header: []string{"metric", "single PUF", "XOR PUF", "ideal"},
	}
	t.AddRowf("uniformity", r.UniformityMean, r.XORUniformity, 0.5)
	t.AddRowf("uniqueness (inter-HD)", r.Uniqueness, r.XORUniqueness, 0.5)
	t.AddRowf("reliability (1−intra-HD)", r.Reliability, r.XORReliability, 1.0)
	t.AddRowf("bit-aliasing std", r.AliasingStd, "—", 0.0)
	return t
}
