package experiments

import (
	"fmt"

	"xorpuf/internal/authproto"
	"xorpuf/internal/core"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// ProtocolRow is one protocol's scorecard in the comparison table.
type ProtocolRow struct {
	Name string
	// FalseRejects / AuthTrials: genuine-chip rejections across all nine
	// V/T corners.
	FalseRejects int
	// FalseAccepts / AuthTrials: impostor-chip acceptances at nominal.
	FalseAccepts int
	AuthTrials   int
	// CRPsPerAuth is the number of challenge exchanges per decision.
	CRPsPerAuth int
	// EnrollMeasurements is the chip-measurement cost of enrollment.
	EnrollMeasurements int
	// StoredBytes approximates the server database size.
	StoredBytes int
	// DBBound notes whether the server database depletes with use.
	DBBound bool
}

// ProtocolsResult compares the paper's protocol against the published
// baselines on the same chip: false-reject rate across V/T corners,
// false-accept rate against impostors, enrollment cost and server storage.
type ProtocolsResult struct {
	Width int
	Rows  []ProtocolRow
}

// Protocols runs the comparison on one XOR-4 chip (4 keeps the classic
// protocols' noise tolerable so the comparison is about selection, not
// about drowning the baselines).
func Protocols(cfg Config) *ProtocolsResult {
	root := rng.New(cfg.Seed)
	const width = 4
	const authCRPs = 60
	trials := 18 // 2 per corner
	chip := silicon.NewChip(root.Fork("chip", 0), cfg.Params, width)
	impostor := silicon.NewChip(root.Fork("impostor", 0), cfg.Params, width)
	corners := silicon.Corners()

	res := &ProtocolsResult{Width: width}

	// --- Model-assisted (the paper), V/T hardened.
	maCfg := core.DefaultEnrollConfig()
	maCfg.TrainingSize = cfg.TrainingSize
	maCfg.ValidationSize = cfg.ValidationSize
	maCfg.Conditions = corners
	ma, err := authproto.EnrollModelAssisted(chip, root.Split("ma"), maCfg)
	if err != nil {
		panic(err)
	}
	row := ProtocolRow{
		Name: "model-assisted (paper)", AuthTrials: trials, CRPsPerAuth: authCRPs,
		EnrollMeasurements: ma.Cost.Measurements, StoredBytes: ma.Cost.StoredBytes,
	}
	authSrc := root.Split("ma-auth")
	for i := 0; i < trials; i++ {
		cond := corners[i%len(corners)]
		d, err := ma.Authenticate(chip, authSrc, authCRPs, cond)
		if err != nil {
			panic(err)
		}
		if !d.Approved {
			row.FalseRejects++
		}
		d2, err := ma.Authenticate(impostor, authSrc, authCRPs, silicon.Nominal)
		if err != nil {
			panic(err)
		}
		if d2.Approved {
			row.FalseAccepts++
		}
	}
	res.Rows = append(res.Rows, row)

	// --- Measurement-based selection (ref [1]); enrollment at nominal
	// only, as the paper notes testing all corners is impractical.
	mb, err := authproto.EnrollMeasurementBased(chip, root.Split("mb"),
		8*authCRPs*trials, silicon.Nominal)
	if err != nil {
		panic(err)
	}
	row = ProtocolRow{
		Name: "measurement-based (ref [1])", AuthTrials: trials, CRPsPerAuth: authCRPs,
		EnrollMeasurements: mb.Cost.Measurements, StoredBytes: mb.Cost.StoredBytes,
		DBBound: true,
	}
	mbImp, err := authproto.EnrollMeasurementBased(chip, root.Split("mb2"),
		4*authCRPs*trials, silicon.Nominal)
	if err != nil {
		panic(err)
	}
	for i := 0; i < trials; i++ {
		cond := corners[i%len(corners)]
		d, err := mb.Authenticate(chip, authCRPs, cond)
		if err != nil {
			panic(err)
		}
		if !d.Approved {
			row.FalseRejects++
		}
		d2, err := mbImp.Authenticate(impostor, authCRPs, silicon.Nominal)
		if err != nil {
			panic(err)
		}
		if d2.Approved {
			row.FalseAccepts++
		}
	}
	res.Rows = append(res.Rows, row)

	// --- Classic Hamming-threshold protocol (10 % threshold).
	classic := authproto.EnrollClassicHD(chip, root.Split("hd"),
		2*authCRPs*trials+authCRPs, 0.10, silicon.Nominal)
	row = ProtocolRow{
		Name: "classic HD (10% threshold)", AuthTrials: trials, CRPsPerAuth: authCRPs,
		EnrollMeasurements: classic.Cost.Measurements, StoredBytes: classic.Cost.StoredBytes,
		DBBound: true,
	}
	for i := 0; i < trials; i++ {
		cond := corners[i%len(corners)]
		d, err := classic.Authenticate(chip, authCRPs, cond)
		if err != nil {
			panic(err)
		}
		if !d.Approved {
			row.FalseRejects++
		}
		d2, err := classic.Authenticate(impostor, authCRPs, silicon.Nominal)
		if err != nil {
			panic(err)
		}
		if d2.Approved {
			row.FalseAccepts++
		}
	}
	res.Rows = append(res.Rows, row)

	// --- Noise bifurcation (ref [6]): relaxed criterion, more CRPs.
	nbCRPs := 4 * authCRPs
	nb := authproto.EnrollNoiseBifurcation(chip, root.Split("nb"),
		2*nbCRPs*trials+nbCRPs, 0.25, 0.10)
	row = ProtocolRow{
		Name: "noise bifurcation (ref [6])", AuthTrials: trials, CRPsPerAuth: nbCRPs,
		EnrollMeasurements: nb.Cost.Measurements, StoredBytes: nb.Cost.StoredBytes,
		DBBound: true,
	}
	for i := 0; i < trials; i++ {
		cond := corners[i%len(corners)]
		d, err := nb.Authenticate(chip, nbCRPs, cond)
		if err != nil {
			panic(err)
		}
		if !d.Approved {
			row.FalseRejects++
		}
		d2, err := nb.Authenticate(impostor, nbCRPs, silicon.Nominal)
		if err != nil {
			panic(err)
		}
		if d2.Approved {
			row.FalseAccepts++
		}
	}
	res.Rows = append(res.Rows, row)

	return res
}

// Table renders the protocol scorecard.
func (r *ProtocolsResult) Table() *Table {
	t := &Table{
		Title:  "Protocol comparison on a 4-XOR chip (FRR across all 9 V/T corners; FAR vs impostor chip)",
		Header: []string{"protocol", "false rejects", "false accepts", "CRPs/auth", "enroll meas.", "server bytes", "DB depletes"},
	}
	for _, row := range r.Rows {
		t.AddRowf(row.Name,
			formatRatio(row.FalseRejects, row.AuthTrials),
			formatRatio(row.FalseAccepts, row.AuthTrials),
			row.CRPsPerAuth, row.EnrollMeasurements, row.StoredBytes, row.DBBound)
	}
	return t
}

func formatRatio(num, den int) string {
	return fmt.Sprintf("%d/%d", num, den)
}
