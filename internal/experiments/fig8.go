package experiments

import (
	"fmt"

	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/stats"
)

// Fig8Result compares measured and model-predicted soft responses on the
// enrollment training set and reports the extracted three-category
// thresholds (paper Fig 8).
type Fig8Result struct {
	Thr0, Thr1 float64
	// Training-set classification counts at β0 = β1 = 1.
	PredStable0, PredUnstable, PredStable1 int
	// MeasuredStableDiscarded counts CRPs that measured 100 %-stable but
	// fall in the predicted-unstable band — the "stable in measurement
	// but discarded" population the paper highlights as marginally
	// stable.
	MeasuredStableDiscarded int
	// MeasuredStable counts training CRPs measured 100 %-stable.
	MeasuredStable int
	TrainingSize   int
	// Pairs holds (measured, predicted) soft-response pairs for plotting.
	Pairs [][2]float64
	// PredHist is the distribution of predicted soft responses — wider
	// than [0,1] but centered at 0.5, as the paper observes.
	PredHist *stats.ValueHistogram
}

// Fig8 enrolls a single PUF with the configured training size and compares
// measurement against prediction on that same training set.
func Fig8(cfg Config) *Fig8Result {
	root := rng.New(cfg.Seed)
	chip := silicon.NewChip(root.Fork("chip", 0), cfg.Params, 1)
	challengeSrc := root.Split("fig8-challenges")
	cs := challenge.RandomBatch(challengeSrc, cfg.TrainingSize, chip.Stages())
	soft := make([]float64, len(cs))
	for i, c := range cs {
		s, err := chip.SoftResponse(0, c, silicon.Nominal)
		if err != nil {
			panic(err)
		}
		soft[i] = s
	}
	model, err := core.FitModel(cs, soft, 0)
	if err != nil {
		panic(err)
	}
	res := &Fig8Result{
		Thr0:         model.Thr0,
		Thr1:         model.Thr1,
		TrainingSize: cfg.TrainingSize,
		PredHist:     stats.NewValueHistogram(-1.5, 2.5, 0.05),
	}
	for i, c := range cs {
		pred := model.PredictSoft(c)
		res.Pairs = append(res.Pairs, [2]float64{soft[i], pred})
		res.PredHist.Add(pred)
		stableMeasured := core.StableMeasurement(soft[i])
		if stableMeasured {
			res.MeasuredStable++
		}
		switch model.Classify(pred, 1, 1) {
		case core.Stable0:
			res.PredStable0++
		case core.Stable1:
			res.PredStable1++
		default:
			res.PredUnstable++
			if stableMeasured {
				res.MeasuredStableDiscarded++
			}
		}
	}
	return res
}

// Table summarizes the threshold extraction.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig 8: measured vs predicted soft response, %d training CRPs", r.TrainingSize),
		Header: []string{"quantity", "value"},
	}
	n := float64(r.TrainingSize)
	t.AddRowf("Thr(0)", r.Thr0)
	t.AddRowf("Thr(1)", r.Thr1)
	t.AddRowf("predicted stable-0 %", 100*float64(r.PredStable0)/n)
	t.AddRowf("predicted unstable %", 100*float64(r.PredUnstable)/n)
	t.AddRowf("predicted stable-1 %", 100*float64(r.PredStable1)/n)
	t.AddRowf("measured stable %", 100*float64(r.MeasuredStable)/n)
	t.AddRowf("measured-stable but discarded %", 100*float64(r.MeasuredStableDiscarded)/n)
	return t
}
