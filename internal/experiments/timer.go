package experiments

import "time"

// timer is a minimal wall-clock stopwatch for the per-experiment timing
// columns (the paper reports wall-clock training costs).
type timer struct{ start time.Time }

func newTimer() timer { return timer{start: time.Now()} }

func (t timer) millis() float64 { return float64(time.Since(t.start).Microseconds()) / 1000 }
