package experiments

import (
	"fmt"

	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/stats"
)

// Fig2Result is the soft-response distribution of a single MUX arbiter PUF
// (paper Fig 2: 1 M random challenges × 100 k trials at 0.9 V / 25 °C;
// Pr(stable 0) = 39.7 %, Pr(stable 1) = 40.1 %).
type Fig2Result struct {
	Hist        *stats.SoftHistogram
	FracStable0 float64
	FracStable1 float64
	Challenges  int
}

// Fig2 measures single-PUF soft responses with the full-depth counter,
// splitting cfg.Challenges across the lot's chips (the paper's Fig 2 pools
// measurements from its 10 test chips; any one chip's stable-0/stable-1
// split is skewed by that chip's arbiter bias).
func Fig2(cfg Config) *Fig2Result {
	root := rng.New(cfg.Seed)
	hist := stats.NewSoftHistogram(0.05)
	perChip := cfg.Challenges / cfg.Chips
	if perChip == 0 {
		perChip = 1
	}
	total := 0
	for chipIdx := 0; chipIdx < cfg.Chips; chipIdx++ {
		chip := silicon.NewChip(root.Fork("chip", chipIdx), cfg.Params, 1)
		challengeSrc := root.Fork("fig2-challenges", chipIdx)
		for i := 0; i < perChip; i++ {
			c := challenge.Random(challengeSrc, chip.Stages())
			soft, err := chip.SoftResponse(0, c, silicon.Nominal)
			if err != nil {
				panic(err) // fuses are never blown in this experiment
			}
			hist.Add(soft)
			total++
		}
	}
	return &Fig2Result{
		Hist:        hist,
		FracStable0: hist.FracStable0(),
		FracStable1: hist.FracStable1(),
		Challenges:  total,
	}
}

// Table renders the histogram bins the way the paper's Fig 2 reports them.
func (r *Fig2Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig 2: soft-response distribution, 1 PUF, %d challenges (paper: Pr(stable0)=39.7%%, Pr(stable1)=40.1%%)",
			r.Challenges),
		Header: []string{"bin", "count", "fraction"},
	}
	total := float64(r.Hist.Total)
	t.AddRowf("=0.00", r.Hist.Exact0, float64(r.Hist.Exact0)/total)
	for i, c := range r.Hist.Interior {
		lo := float64(i) * r.Hist.BinWidth
		t.AddRowf(fmt.Sprintf("(%.2f,%.2f)", lo, lo+r.Hist.BinWidth), c, float64(c)/total)
	}
	t.AddRowf("=1.00", r.Hist.Exact1, float64(r.Hist.Exact1)/total)
	t.AddRowf("Pr(stable0)", "", r.FracStable0)
	t.AddRowf("Pr(stable1)", "", r.FracStable1)
	return t
}
