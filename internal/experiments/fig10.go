package experiments

import (
	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// Fig10Point is one training-set size of the sweep.
type Fig10Point struct {
	TrainSize     int
	MeasuredPct   float64 // % of test challenges measured 100 %-stable
	PredictedPct  float64 // % of test challenges selected by the adjusted model
	Beta0, Beta1  float64
	TrainMillis   float64 // wall-clock regression time (paper: 4.3 ms at 5,000)
	SelectedWrong int     // selected challenges that measured unstable (should be ~0)
}

// Fig10Result sweeps the enrollment training-set size (paper Fig 10:
// predicted stable saturates near 60 % after threshold adjustment, versus
// ~80 % measured; the paper settles on 5,000 CRPs / 4.3 ms training).
type Fig10Result struct {
	Points     []Fig10Point
	Challenges int
}

// Fig10 runs the sweep on a single PUF with a shared test set.
func Fig10(cfg Config) *Fig10Result {
	root := rng.New(cfg.Seed)
	chip := silicon.NewChip(root.Fork("chip", 0), cfg.Params, 1)
	sizes := []int{500, 1000, 2000, 3000, 5000, 7500, 10000}
	res := &Fig10Result{Challenges: cfg.Challenges}
	// Shared test set, measured once.
	testSrc := root.Split("fig10-test")
	cs := challenge.RandomBatch(testSrc, cfg.Challenges, chip.Stages())
	measuredStable := make([]bool, len(cs))
	stableCount := 0
	for i, c := range cs {
		s, err := chip.SoftResponse(0, c, silicon.Nominal)
		if err != nil {
			panic(err)
		}
		measuredStable[i] = core.StableMeasurement(s)
		if measuredStable[i] {
			stableCount++
		}
	}
	measuredPct := 100 * float64(stableCount) / float64(len(cs))
	for _, size := range sizes {
		enrollCfg := core.DefaultEnrollConfig()
		enrollCfg.TrainingSize = size
		enrollCfg.ValidationSize = cfg.ValidationSize
		timer := newTimer()
		model, err := core.EnrollPUF(chip, 0, root.Fork("fig10-train", size), enrollCfg)
		if err != nil {
			panic(err)
		}
		trainMillis := timer.millis()
		betas, err := core.SearchBetas(chip, 0, model, root.Fork("fig10-val", size), enrollCfg)
		if err != nil {
			panic(err)
		}
		selected, wrong := 0, 0
		for i, c := range cs {
			if model.ClassifyChallenge(c, betas.Beta0, betas.Beta1) == core.Unstable {
				continue
			}
			selected++
			if !measuredStable[i] {
				wrong++
			}
		}
		res.Points = append(res.Points, Fig10Point{
			TrainSize:     size,
			MeasuredPct:   measuredPct,
			PredictedPct:  100 * float64(selected) / float64(len(cs)),
			Beta0:         betas.Beta0,
			Beta1:         betas.Beta1,
			TrainMillis:   trainMillis,
			SelectedWrong: wrong,
		})
	}
	return res
}

// Table renders the sweep.
func (r *Fig10Result) Table() *Table {
	t := &Table{
		Title:  "Fig 10: stable-challenge yield vs training-set size (paper: measured ≈80%, predicted saturates ≈60%)",
		Header: []string{"train CRPs", "measured %", "predicted %", "β0", "β1", "train ms", "selected-but-unstable"},
	}
	for _, p := range r.Points {
		t.AddRowf(p.TrainSize, p.MeasuredPct, p.PredictedPct, p.Beta0, p.Beta1,
			p.TrainMillis, p.SelectedWrong)
	}
	return t
}
