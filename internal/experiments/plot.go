package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve for the ASCII renderer.
type Series struct {
	Name   string
	Values []float64
}

// RenderBars draws grouped horizontal bars, one group per label, one bar per
// series — enough to eyeball the exponential decays of Figs 3 and 12 in a
// terminal.  When logScale is set, bar lengths are proportional to
// log10(value) over the data's dynamic range, which turns a clean
// exponential into visually linear steps.
func RenderBars(title string, labels []string, series []Series, width int, logScale bool) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	// Global scale across all series.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if v > 0 && v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(hi, -1) || hi <= 0 {
		b.WriteString("(no positive data)\n")
		return b.String()
	}
	if lo == hi {
		lo = hi / 10
	}
	scale := func(v float64) int {
		if v <= 0 {
			return 0
		}
		var frac float64
		if logScale {
			frac = (math.Log10(v) - math.Log10(lo)) / (math.Log10(hi) - math.Log10(lo))
		} else {
			frac = v / hi
		}
		if frac < 0 {
			frac = 0
		}
		n := int(math.Round(frac * float64(width)))
		if n == 0 && v > 0 {
			n = 1
		}
		return n
	}
	nameWidth := 0
	for _, s := range series {
		if len(s.Name) > nameWidth {
			nameWidth = len(s.Name)
		}
	}
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for i, label := range labels {
		for j, s := range series {
			tag := label
			if j > 0 {
				tag = ""
			}
			v := math.NaN()
			if i < len(s.Values) {
				v = s.Values[i]
			}
			if math.IsNaN(v) {
				continue
			}
			fmt.Fprintf(&b, "%-*s  %-*s %s %.4g\n",
				labelWidth, tag, nameWidth, s.Name,
				strings.Repeat("█", scale(v)), v)
		}
	}
	return b.String()
}

// Plot renders the Fig 3 curve.
func (r *Fig3Result) Plot(width int) string {
	labels := make([]string, len(r.Widths))
	for i, n := range r.Widths {
		labels[i] = fmt.Sprintf("n=%d", n)
	}
	return RenderBars("Fig 3: % stable CRPs vs XOR width (log scale)", labels,
		[]Series{{Name: "measured", Values: percentages(r.Measured)}}, width, true)
}

// Plot renders the Fig 12 three-regime comparison.
func (r *Fig12Result) Plot(width int) string {
	labels := make([]string, len(r.Widths))
	for i, n := range r.Widths {
		labels[i] = fmt.Sprintf("n=%d", n)
	}
	return RenderBars("Fig 12: % usable CRPs vs XOR width (log scale)", labels,
		[]Series{
			{Name: "measured", Values: r.MeasuredPct},
			{Name: "nominal-β", Values: r.PredNomPct},
			{Name: "V/T-β", Values: r.PredVTPct},
		}, width, true)
}

func percentages(fracs []float64) []float64 {
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		out[i] = 100 * f
	}
	return out
}
