package experiments

import (
	"fmt"

	"xorpuf/internal/core"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// Fig9Result is the threshold-scaling study at the nominal condition
// (paper Fig 9): per-PUF β0/β1 found by tightening until the validation set
// has no unstable selections, pooled to the most conservative pair (the
// paper's 10 PUFs gave β0 ∈ 0.74–0.93, β1 ∈ 1.04–1.08, pooled (0.74, 1.08)).
type Fig9Result struct {
	PerPUF       []core.BetaSearchResult
	Thr0s, Thr1s []float64
	Pooled0      float64
	Pooled1      float64
}

// Fig9 enrolls PUF 0 of each chip in the lot at nominal conditions and runs
// the β search with the configured validation size.
func Fig9(cfg Config) *Fig9Result {
	root := rng.New(cfg.Seed)
	res := &Fig9Result{Pooled0: 1, Pooled1: 1}
	enrollCfg := core.DefaultEnrollConfig()
	enrollCfg.TrainingSize = cfg.TrainingSize
	enrollCfg.ValidationSize = cfg.ValidationSize
	for chipIdx := 0; chipIdx < cfg.Chips; chipIdx++ {
		chip := silicon.NewChip(root.Fork("chip", chipIdx), cfg.Params, 1)
		model, err := core.EnrollPUF(chip, 0, root.Fork("fig9-train", chipIdx), enrollCfg)
		if err != nil {
			panic(err)
		}
		betas, err := core.SearchBetas(chip, 0, model, root.Fork("fig9-val", chipIdx), enrollCfg)
		if err != nil {
			panic(err)
		}
		res.PerPUF = append(res.PerPUF, betas)
		res.Thr0s = append(res.Thr0s, model.Thr0)
		res.Thr1s = append(res.Thr1s, model.Thr1)
		if betas.Beta0 < res.Pooled0 {
			res.Pooled0 = betas.Beta0
		}
		if betas.Beta1 > res.Pooled1 {
			res.Pooled1 = betas.Beta1
		}
	}
	return res
}

// Table lists per-PUF β values and the pooled conservative pair.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:  "Fig 9: β threshold scaling at 0.9V/25°C (paper: β0 ∈ 0.74–0.93, β1 ∈ 1.04–1.08; pooled 0.74/1.08)",
		Header: []string{"PUF", "Thr(0)", "Thr(1)", "β0", "β1", "violations0", "violations1"},
	}
	for i, b := range r.PerPUF {
		t.AddRowf(fmt.Sprintf("chip%d", i), r.Thr0s[i], r.Thr1s[i], b.Beta0, b.Beta1,
			b.Violations0, b.Violations1)
	}
	t.AddRowf("pooled", "", "", r.Pooled0, r.Pooled1, "", "")
	return t
}
