package experiments

import (
	"fmt"

	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/stats"
)

// Fig12Result is the culminating plot: the fraction of usable CRPs versus
// XOR width for three selection regimes (paper Fig 12):
//
//   - measured at nominal          — ≈0.800ⁿ (10.9 % at n = 10)
//   - model-selected, nominal β    — ≈0.545ⁿ (0.238 % at n = 10)
//   - model-selected, V/T β        — ≈0.342ⁿ (0.00246 % at n = 10)
type Fig12Result struct {
	Widths       []int
	MeasuredPct  []float64
	PredNomPct   []float64
	PredVTPct    []float64
	BaseMeasured float64
	BaseNom      float64
	BaseVT       float64
	Challenges   int
	Beta0Nom     float64
	Beta1Nom     float64
	Beta0VT      float64
	Beta1VT      float64
}

// Fig12 enrolls every PUF of a 10-wide chip, derives nominal and V/T-
// hardened β pairs, and scores all three curves on a shared test set.
func Fig12(cfg Config) *Fig12Result {
	root := rng.New(cfg.Seed)
	width := cfg.PUFsPerChip
	if width > 10 {
		width = 10
	}
	chip := silicon.NewChip(root.Fork("chip", 0), cfg.Params, width)

	// Enroll each PUF once; run both β searches on the shared models.
	enrollCfg := core.DefaultEnrollConfig()
	enrollCfg.TrainingSize = cfg.TrainingSize
	enrollCfg.ValidationSize = cfg.ValidationSize
	vtCfg := enrollCfg
	vtCfg.Conditions = silicon.Corners()

	models := make([]*core.PUFModel, width)
	b0Nom, b1Nom, b0VT, b1VT := 1.0, 1.0, 1.0, 1.0
	for i := 0; i < width; i++ {
		model, err := core.EnrollPUF(chip, i, root.Fork("fig12-train", i), enrollCfg)
		if err != nil {
			panic(err)
		}
		models[i] = model
		nom, err := core.SearchBetas(chip, i, model, root.Fork("fig12-valnom", i), enrollCfg)
		if err != nil {
			panic(err)
		}
		vt, err := core.SearchBetas(chip, i, model, root.Fork("fig12-valvt", i), vtCfg)
		if err != nil {
			panic(err)
		}
		b0Nom = min2(b0Nom, nom.Beta0)
		b1Nom = max2(b1Nom, nom.Beta1)
		b0VT = min2(b0VT, vt.Beta0)
		b1VT = max2(b1VT, vt.Beta1)
	}

	res := &Fig12Result{
		Challenges: cfg.Challenges,
		Beta0Nom:   b0Nom, Beta1Nom: b1Nom,
		Beta0VT: b0VT, Beta1VT: b1VT,
	}
	measured := make([]int, width+1)
	predNom := make([]int, width+1)
	predVT := make([]int, width+1)
	testSrc := root.Split("fig12-test")
	for i := 0; i < cfg.Challenges; i++ {
		c := challenge.Random(testSrc, chip.Stages())
		measuredOK, nomOK, vtOK := true, true, true
		for j := 0; j < width; j++ {
			if measuredOK {
				s, err := chip.SoftResponse(j, c, silicon.Nominal)
				if err != nil {
					panic(err)
				}
				measuredOK = core.StableMeasurement(s)
			}
			if nomOK || vtOK {
				pred := models[j].PredictSoft(c)
				if nomOK && models[j].Classify(pred, b0Nom, b1Nom) == core.Unstable {
					nomOK = false
				}
				if vtOK && models[j].Classify(pred, b0VT, b1VT) == core.Unstable {
					vtOK = false
				}
			}
			if measuredOK {
				measured[j+1]++
			}
			if nomOK {
				predNom[j+1]++
			}
			if vtOK {
				predVT[j+1]++
			}
			if !measuredOK && !nomOK && !vtOK {
				break
			}
		}
	}
	n := float64(cfg.Challenges)
	for w := 1; w <= width; w++ {
		res.Widths = append(res.Widths, w)
		res.MeasuredPct = append(res.MeasuredPct, 100*float64(measured[w])/n)
		res.PredNomPct = append(res.PredNomPct, 100*float64(predNom[w])/n)
		res.PredVTPct = append(res.PredVTPct, 100*float64(predVT[w])/n)
	}
	res.BaseMeasured, _, _ = stats.ExpFit(res.Widths, fracs(res.MeasuredPct))
	res.BaseNom, _, _ = stats.ExpFit(res.Widths, fracs(res.PredNomPct))
	res.BaseVT, _, _ = stats.ExpFit(res.Widths, fracs(res.PredVTPct))
	return res
}

func fracs(pcts []float64) []float64 {
	out := make([]float64, len(pcts))
	for i, p := range pcts {
		out[i] = p / 100
	}
	return out
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Table renders the three curves with their fitted bases.
func (r *Fig12Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig 12: %% stable CRPs vs XOR width (fits: measured %.3fⁿ, predicted-nominal %.3fⁿ, predicted-V/T %.3fⁿ; paper: 0.800ⁿ / 0.545ⁿ / 0.342ⁿ)",
			r.BaseMeasured, r.BaseNom, r.BaseVT),
		Header: []string{"n", "measured %", "predicted (nominal β) %", "predicted (V/T β) %"},
	}
	for i, n := range r.Widths {
		t.AddRowf(n, r.MeasuredPct[i], r.PredNomPct[i], r.PredVTPct[i])
	}
	t.AddRowf("β", "—", fmt.Sprintf("(%.2f, %.2f)", r.Beta0Nom, r.Beta1Nom),
		fmt.Sprintf("(%.2f, %.2f)", r.Beta0VT, r.Beta1VT))
	return t
}
