// Package registry is the verification server's chip-model database at fleet
// scale: a sharded concurrent in-memory store of enrolled core.ChipModels
// and their stateful challenge selectors, made durable by an append-only WAL
// of mutations with periodic compacted snapshots.
//
// The paper's Fig 7 protocol has the server hold a "model database" and
// *record every issued challenge* so none is reused.  Both halves of that
// state are security-critical across process lifetimes: losing enrollments
// is an availability failure, but losing the used-challenge sets silently
// re-arms replay — a restarted verifier would hand an eavesdropper the same
// challenge twice, exactly what the zero-HD protocol's never-reuse rule
// exists to prevent.  The registry therefore journals challenge issuance
// (and lockout transitions) alongside registrations, and crash recovery
// replays the journal over the latest snapshot, so the guarantee holds
// through kill -9.
//
// Lifetime reliability: each entry owns a health.Tracker fed by RecordAuth
// after every authentication verdict.  Tracker state is journaled with each
// outcome (recHealth) and captured in snapshots, so a chip quarantined for
// drift stays quarantined across kill -9; Replace atomically swaps in a
// re-enrolled model while burning the old challenge history (recReenroll).
//
// Concurrency: chip IDs are fnv-1a-sharded over N independent RWMutex-guarded
// maps, so lookups from thousands of concurrent authentication sessions
// never contend on one global lock (the sharded-vs-single-mutex benchmark
// quantifies the win).  Each entry additionally owns a mutex for its mutable
// per-chip state, so two sessions for different chips never serialize.
//
// Lock order (must hold everywhere): opmu → shard.mu / Entry.mu → pmu.
package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/health"
	"xorpuf/internal/rng"
)

// ErrDuplicate is returned when registering a chip ID that already exists.
var ErrDuplicate = errors.New("registry: chip already registered")

// ErrClosed is returned for mutations after Close.
var ErrClosed = errors.New("registry: closed")

// Options configures a Registry.
type Options struct {
	// Seed drives per-chip challenge-generation streams.  A restarted
	// registry opened with the same seed regenerates the same candidate
	// streams; the persisted used-challenge sets filter out everything
	// already issued, so determinism costs nothing in security.
	Seed uint64
	// Shards is the shard count, rounded up to a power of two (default 64).
	Shards int
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// journal records (0 = default 4096; negative = never auto-compact,
	// Compact must be called explicitly).
	SnapshotEvery int
	// Fsync forces an fsync per WAL append.  Off by default: appends are
	// still single write syscalls (data survives process death), fsync
	// additionally survives OS/power failure at a large throughput cost.
	Fsync bool
	// Health tunes the per-chip drift detectors (zero value = defaults).
	Health health.Config
}

func (o Options) normalized() Options {
	if o.Shards <= 0 {
		o.Shards = 64
	}
	n := 1
	for n < o.Shards {
		n <<= 1
	}
	o.Shards = n
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	return o
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*Entry
}

// Registry is a persistent sharded chip-model store.  All methods are safe
// for concurrent use.
type Registry struct {
	opts Options

	shards []shard
	mask   uint64

	// opmu is held R by every mutating operation and W by Compact/Close,
	// so compaction observes a quiescent store without stopping reads.
	opmu sync.RWMutex

	// pmu serializes WAL appends and sequence-number assignment.
	pmu       sync.Mutex
	dir       string
	wal       *walFile
	seq       uint64
	sinceSnap int

	closed     atomic.Bool
	compacting atomic.Bool

	// closeOnce/closeDone make Close idempotent and concurrent-safe: every
	// caller observes the one real shutdown complete before returning.
	closeOnce sync.Once
	closeDone chan struct{}
	closeErr  error

	// Replication hooks (nil when the registry is not replicated).  The
	// observer list is copy-on-write behind an atomic pointer so the append
	// path never takes obsMu: a replication primary and a live migration
	// source can tap the journal simultaneously while traffic is hot.
	obsMu      sync.Mutex
	obsSeq     uint64
	obsSlots   map[uint64]AppendObserver
	appendObs  atomic.Pointer[[]AppendObserver]
	commitWait atomic.Pointer[CommitWaiter]

	// Migration/ownership state (see migrate.go).  ownMu is a leaf lock:
	// taken under opmu/shard/entry locks, never holding them or pmu.
	ownMu sync.Mutex
	own   ownState
}

// Open creates or recovers a registry.  dir == "" yields a volatile
// in-memory registry (no WAL, no snapshots) that never fails to open;
// otherwise dir is created if needed, the latest snapshot is loaded, and the
// WAL tail is replayed over it.
func Open(dir string, opts Options) (*Registry, error) {
	r := &Registry{opts: opts.normalized(), dir: dir, closeDone: make(chan struct{})}
	r.own.init()
	r.obsSlots = make(map[uint64]AppendObserver)
	r.shards = make([]shard, r.opts.Shards)
	r.mask = uint64(r.opts.Shards - 1)
	for i := range r.shards {
		r.shards[i].m = make(map[string]*Entry)
	}
	if dir == "" {
		return r, nil
	}
	if err := r.recover(); err != nil {
		return nil, err
	}
	return r, nil
}

// fnv-1a over the chip ID picks the shard; inlined so the hot lookup path
// allocates nothing.
func (r *Registry) shard(id string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return &r.shards[h&r.mask]
}

func (r *Registry) newSelector(id string, model *core.ChipModel) *core.Selector {
	// Fresh parent per chip, so streams are independent of registration
	// order and reproducible after restart.
	return core.NewSelector(model, rng.New(r.opts.Seed).Split("chip-"+id))
}

// Register adds an enrolled chip model under id with a lifetime challenge
// budget (0 = unlimited), durably journaling the registration.
func (r *Registry) Register(id string, model *core.ChipModel, budget int) error {
	switch {
	case id == "" || len(id) > maxIDLen:
		return fmt.Errorf("registry: invalid chip ID %q", id)
	case model == nil || model.Width() == 0:
		return errors.New("registry: nil or empty model")
	case model.Width() > maxWidth || model.Stages() < 1 || model.Stages() > maxStages:
		return fmt.Errorf("registry: unsupported model geometry %d×%d", model.Width(), model.Stages())
	}
	if r.closed.Load() {
		return ErrClosed
	}
	r.opmu.RLock()
	defer r.opmu.RUnlock()
	// Under opmu.R so the check cannot race SetRangeFence/CutoverSource,
	// which hold opmu.W.
	switch st, redirect := r.Ownership(id); st {
	case OwnershipDeparted:
		// The range was migrated away; registering here would create a
		// second owner for the ID.  Enroll at the current owner instead.
		return fmt.Errorf("registry: chip %q is in a range migrated to %s", id, redirect)
	case OwnershipFenced:
		// Mid-handoff: a registration journaled now would land after the
		// migration's final delta drain and never reach the new owner.
		return ErrMigrating
	}
	sel := r.newSelector(id, model)
	sel.SetBudget(budget)
	e := &Entry{id: id, reg: r, model: model, selector: sel,
		tracker: health.NewTracker(r.opts.Health)}
	sh := r.shard(id)
	sh.mu.Lock()
	if _, dup := sh.m[id]; dup {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicate, id)
	}
	sh.m[id] = e
	sh.mu.Unlock()
	if err := r.appendRecord(recRegister, registerPayload(id, budget, model)); err != nil {
		// Not durable — roll back visibility so callers can retry.
		sh.mu.Lock()
		delete(sh.m, id)
		sh.mu.Unlock()
		return err
	}
	chipsGauge.Inc()
	return nil
}

// Lookup returns the live entry for id, or nil.
func (r *Registry) Lookup(id string) *Entry {
	sh := r.shard(id)
	// TryRLock first: a failure means a writer (or writer-waiting reader
	// queue) held the shard, which is exactly the contention the
	// registry_shard_contention_total counter is sizing.  The fallback
	// blocks as before, so behavior is unchanged.
	if !sh.mu.TryRLock() {
		shardContention.Inc()
		sh.mu.RLock()
	}
	e := sh.m[id]
	sh.mu.RUnlock()
	return e
}

// Deregister revokes a chip's enrollment (journaled), reporting whether the
// chip was registered.  A deregistered chip's used-challenge history is
// dropped with it; re-registering the same ID starts a fresh selector, so
// revoked IDs should not be recycled for distrusted silicon.
func (r *Registry) Deregister(id string) bool {
	if r.closed.Load() {
		return false
	}
	r.opmu.RLock()
	defer r.opmu.RUnlock()
	sh := r.shard(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	if ok {
		_ = r.appendRecord(recDeregister, appendString(nil, id))
		chipsGauge.Dec()
	}
	return ok
}

// Len returns the number of registered chips.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Close compacts (when persistent) and releases the WAL.  A registry that is
// killed without Close loses nothing — recovery replays the WAL — Close just
// makes the next Open a pure snapshot load.
//
// Close is idempotent and safe under concurrent use (including a concurrent
// Range whose callback is mid-flight): exactly one caller performs the
// shutdown, and every caller — first or repeat — returns only after it has
// finished, with the same error.
func (r *Registry) Close() error {
	r.closeOnce.Do(func() {
		defer close(r.closeDone)
		r.closed.Store(true)
		r.opmu.Lock()
		defer r.opmu.Unlock()
		if r.wal == nil {
			return
		}
		cerr := r.compactLocked()
		werr := r.wal.close()
		r.wal = nil
		if cerr != nil {
			r.closeErr = cerr
		} else {
			r.closeErr = werr
		}
	})
	<-r.closeDone
	return r.closeErr
}

// Status is a point-in-time snapshot of one chip's accounting.
type Status struct {
	// Issued is how many distinct challenges the chip has burned.
	Issued int
	// Remaining is the unissued remainder of the budget, or -1 if
	// unbudgeted.
	Remaining int
	// Denials counts denied verdicts since the last approval.
	Denials int
	// Locked reports whether the chip is locked out for abuse (consecutive
	// denials); distinct from health quarantine, which tracks drift.
	Locked bool
	// Health is the chip's lifetime-reliability classification.
	Health health.State
	// HealthStats is the drift-detector state behind the classification.
	HealthStats health.TrackerState
}

// Entry is one live registered chip.  All methods are safe for concurrent
// use; per-entry state is guarded by the entry's own mutex so sessions for
// different chips never serialize on each other.
type Entry struct {
	id  string
	reg *Registry

	mu          sync.Mutex
	model       *core.ChipModel
	selector    *core.Selector
	tracker     *health.Tracker
	lastAttempt time.Time
	denials     int
	locked      bool
	// arriving is the migration ID while this chip is streaming in from a
	// rebalance source ("" once live).  An arriving chip refuses issuance —
	// the source is still authoritative until cutover.
	arriving string
}

// ID returns the chip identifier.
func (e *Entry) ID() string { return e.id }

// Model returns the chip's current enrolled model.  Individual models are
// immutable, but Replace swaps which model an entry holds, so the pointer
// read takes the entry lock.
func (e *Entry) Model() *core.ChipModel {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.model
}

// Status reports the chip's current accounting.
func (e *Entry) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Status{
		Issued:      e.selector.Issued(),
		Remaining:   e.selector.Remaining(),
		Denials:     e.denials,
		Locked:      e.locked,
		Health:      e.tracker.State(),
		HealthStats: e.tracker.Snapshot(),
	}
}

// HealthState returns the chip's lifetime-reliability classification.
func (e *Entry) HealthState() health.State {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tracker.State()
}

// Admit performs per-chip admission control for one authentication attempt:
// it reports the lockout flag and whether the attempt violates the throttle
// interval, recording the attempt time when it does not.  The attempt
// timestamp is deliberately volatile (not journaled): a restart reopens the
// throttle window, which is harmless — lockout, the security-critical flag,
// is durable.
func (e *Entry) Admit(now time.Time, throttle time.Duration) (locked, throttled bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	throttled = throttle > 0 && !e.lastAttempt.IsZero() && now.Sub(e.lastAttempt) < throttle
	if !throttled {
		e.lastAttempt = now
	}
	return e.locked, throttled
}

// Issue draws fresh never-reused challenges from the chip's selector and
// journals their identities before returning, so the never-reuse guarantee
// survives a crash between issuance and the device's answer.  On selection
// failure any partially recorded challenges are still journaled — they are
// burned either way.
func (e *Entry) Issue(count, maxExamined int) ([]challenge.Challenge, []uint8, error) {
	return e.issueBurned(context.Background(), recIssued, count, maxExamined)
}

// IssueCtx is Issue with a request context.  ctx carries observability state
// only (a dtrace trace context threads through to the replication quorum
// wait, which records its ack latency as a child span); it does not cancel
// the issuance — once the burn is journaled the wait runs to its own
// verdict, exactly as in Issue.
func (e *Entry) IssueCtx(ctx context.Context, count, maxExamined int) ([]challenge.Challenge, []uint8, error) {
	return e.issueBurned(ctx, recIssued, count, maxExamined)
}

// IssueKey draws challenges for a key-derivation handshake.  They burn from
// the same never-reuse budget as authentication challenges — a chosen-
// challenge adversary does not care which protocol carried a challenge off
// the server — but are journaled under their own record type so the WAL
// stays auditable by workload.
func (e *Entry) IssueKey(count, maxExamined int) ([]challenge.Challenge, []uint8, error) {
	return e.issueBurned(context.Background(), recKeyIssued, count, maxExamined)
}

// IssueKeyCtx is IssueKey with a request context (see IssueCtx).
func (e *Entry) IssueKeyCtx(ctx context.Context, count, maxExamined int) ([]challenge.Challenge, []uint8, error) {
	return e.issueBurned(ctx, recKeyIssued, count, maxExamined)
}

// issueBurned is the shared issuance path: select, journal under rectype,
// quorum-commit, and only then release the challenges.
func (e *Entry) issueBurned(ctx context.Context, rectype byte, count, maxExamined int) ([]challenge.Challenge, []uint8, error) {
	if e.reg.closed.Load() {
		return nil, nil, ErrClosed
	}
	e.reg.opmu.RLock()
	defer e.reg.opmu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	// Migration fail-closed check, re-done under opmu.R and the entry lock
	// so it cannot race a fence being set (SetRangeFence holds opmu.W):
	// a fenced or still-arriving chip gets a structured retryable refusal,
	// never a challenge that the other owner might also issue.
	if err := e.reg.issueAllowed(e.id, e.arriving); err != nil {
		return nil, nil, err
	}
	cs, bits, err := e.selector.Next(count, maxExamined)
	if len(cs) > 0 {
		payload := appendString(nil, e.id)
		payload = appendU32(payload, uint32(len(cs)))
		for _, c := range cs {
			payload = appendU64(payload, c.Word())
		}
		seq, werr := e.reg.appendRecordSeq(rectype, payload)
		if werr == nil {
			// Replication-aware issuance: when a commit waiter is attached
			// the burned words must also be acknowledged by the follower
			// quorum before they leave the server, so never-reuse holds
			// across primary loss, not just primary restart.
			werr = e.reg.waitCommitted(ctx, seq)
		}
		if werr != nil {
			// The words are recorded in memory (and possibly on disk) but
			// not safely committed; refuse to hand them out.  Conservative:
			// challenges burn, none reissue.
			return nil, nil, werr
		}
	}
	return cs, bits, err
}

// Verdict records the outcome of one authentication: an approval clears the
// denial streak, a denial extends it and — with lockoutK > 0 — quarantines
// the chip at K consecutive denials.  The resulting streak and lockout flag
// are journaled.  It returns whether the chip is now locked.
func (e *Entry) Verdict(approved bool, lockoutK int) bool {
	e.reg.opmu.RLock()
	defer e.reg.opmu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if approved {
		e.denials = 0
	} else {
		e.denials++
		if lockoutK > 0 && e.denials >= lockoutK {
			e.locked = true
		}
	}
	// A journal failure here degrades durability of the abuse counters
	// only; the in-memory lockout still enforces, so don't fail the
	// already-decided verdict.
	_ = e.reg.appendRecord(recAbuse, abusePayload(e.id, e.denials, e.locked))
	return e.locked
}

// Lock forces a lockout immediately, bypassing the consecutive-denial
// streak — the enforcement path for a suspected-modeling-attack alert or
// an operator decision.  Journaled like any abuse-state change.  It
// reports whether the chip was previously unlocked.
func (e *Entry) Lock() bool {
	e.reg.opmu.RLock()
	defer e.reg.opmu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.locked {
		return false
	}
	e.locked = true
	_ = e.reg.appendRecord(recAbuse, abusePayload(e.id, e.denials, true))
	return true
}

// Unlock lifts a lockout (an operator decision), journaled.  It reports
// whether the chip was locked.
func (e *Entry) Unlock() bool {
	e.reg.opmu.RLock()
	defer e.reg.opmu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.locked {
		return false
	}
	e.locked = false
	e.denials = 0
	_ = e.reg.appendRecord(recAbuse, abusePayload(e.id, 0, false))
	return true
}

// RecordAuth folds one authentication session's outcome into the chip's
// drift detectors and journals the updated detector state, so the health
// classification survives kill -9.  The transition event, if any, carries
// the chip ID.  Like Verdict, a journal failure degrades durability only —
// the in-memory classification still enforces.
func (e *Entry) RecordAuth(o health.Outcome) (health.Event, bool) {
	if e.reg.closed.Load() {
		return health.Event{}, false
	}
	e.reg.opmu.RLock()
	defer e.reg.opmu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	ev, ok := e.tracker.Record(o)
	_ = e.reg.appendRecord(recHealth, healthPayload(e.id, e.tracker.Snapshot()))
	if ok {
		ev.ChipID = e.id
	}
	return ev, ok
}

// ForceHealth moves the chip to health state s unconditionally (an operator
// decision), journaled.  It reports the transition if the state changed.
func (e *Entry) ForceHealth(s health.State) (health.Event, bool) {
	if e.reg.closed.Load() {
		return health.Event{}, false
	}
	e.reg.opmu.RLock()
	defer e.reg.opmu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	ev, ok := e.tracker.Force(s)
	if ok {
		ev.ChipID = e.id
		_ = e.reg.appendRecord(recHealth, healthPayload(e.id, e.tracker.Snapshot()))
	}
	return ev, ok
}

// Replace atomically swaps a chip's enrollment for a freshly re-enrolled
// model: the new model and budget go live, the drift detectors and abuse
// counters reset, and — security-critical — every challenge the retired
// model ever issued stays burned in the new selector, so re-enrollment can
// never resurrect a challenge an eavesdropper has already seen.  The swap
// is journaled (recReenroll) before it is acknowledged; on journal failure
// the old enrollment is restored and the error returned.
func (r *Registry) Replace(id string, model *core.ChipModel, budget int) error {
	switch {
	case model == nil || model.Width() == 0:
		return errors.New("registry: nil or empty model")
	case model.Width() > maxWidth || model.Stages() < 1 || model.Stages() > maxStages:
		return fmt.Errorf("registry: unsupported model geometry %d×%d", model.Width(), model.Stages())
	}
	if r.closed.Load() {
		return ErrClosed
	}
	r.opmu.RLock()
	defer r.opmu.RUnlock()
	e := r.Lookup(id)
	if e == nil {
		return fmt.Errorf("registry: replace: chip %q not registered", id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	sel := r.newSelector(id, model)
	sel.SetBudget(budget)
	sel.MarkUsed(e.selector.ExportState().Used...)

	prevModel, prevSel := e.model, e.selector
	prevDenials, prevLocked := e.denials, e.locked
	prevTracker := e.tracker.Snapshot()
	e.model, e.selector = model, sel
	e.denials, e.locked = 0, false
	e.tracker.Reset()
	if err := r.appendRecord(recReenroll, registerPayload(id, budget, model)); err != nil {
		// Not durable — a crash now would recover the old enrollment, so
		// don't let the new one serve.
		e.model, e.selector = prevModel, prevSel
		e.denials, e.locked = prevDenials, prevLocked
		e.tracker.Restore(prevTracker)
		return err
	}
	return nil
}

// Range calls fn for every registered chip until fn returns false.  The
// entries of each shard are collected under its read lock but fn runs with
// no registry lock held, so it may freely call entry methods.  Iteration
// order is unspecified; chips registered or dropped concurrently may or may
// not be visited.
func (r *Registry) Range(fn func(*Entry) bool) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		entries := make([]*Entry, 0, len(sh.m))
		for _, e := range sh.m {
			entries = append(entries, e)
		}
		sh.mu.RUnlock()
		for _, e := range entries {
			if !fn(e) {
				return
			}
		}
	}
}

func registerPayload(id string, budget int, model *core.ChipModel) []byte {
	b := appendString(nil, id)
	b = appendU32(b, uint32(budget))
	return appendModel(b, model)
}

func healthPayload(id string, st health.TrackerState) []byte {
	return appendTrackerState(appendString(nil, id), st)
}

func abusePayload(id string, denials int, locked bool) []byte {
	b := appendString(nil, id)
	b = appendU32(b, uint32(denials))
	if locked {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b
}

// install places a recovered entry into its shard (recovery is
// single-threaded; no locks needed, but take them for uniformity).
func (r *Registry) install(e *Entry) {
	sh := r.shard(e.id)
	sh.mu.Lock()
	sh.m[e.id] = e
	sh.mu.Unlock()
	chipsGauge.Inc()
}
