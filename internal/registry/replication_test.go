package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"xorpuf/internal/health"
)

// replayInto pipes every record a mutation on src produces straight into
// dst via ApplyReplicated — an in-process WAL ship with no wire.
func replayInto(t *testing.T, src, dst *Registry) {
	t.Helper()
	src.SetAppendObserver(func(seq uint64, typ byte, payload []byte) {
		p := append([]byte(nil), payload...)
		if err := dst.ApplyReplicated(seq, typ, p); err != nil {
			t.Errorf("ApplyReplicated(seq %d, type %d): %v", seq, typ, err)
		}
	})
}

func TestApplyReplicatedMirrorsEveryRecordType(t *testing.T) {
	src, err := Open("", Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Open("", Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	defer dst.Close()
	replayInto(t, src, dst)

	model := syntheticModel(2, 16)
	if err := src.Register("chip-a", model, 100); err != nil {
		t.Fatal(err)
	}
	if err := src.Register("chip-b", model, 0); err != nil {
		t.Fatal(err)
	}
	e := src.Lookup("chip-a")
	wantWords := issueWords(t, e, 6)
	e.Verdict(false, 3)
	e.Verdict(false, 3)
	e.RecordAuth(health.Outcome{Challenges: 5, Mismatches: 1})
	if err := src.Replace("chip-a", syntheticModel(2, 16), 50); err != nil {
		t.Fatal(err)
	}
	src.Deregister("chip-b")

	if got, want := dst.Seq(), src.Seq(); got != want {
		t.Fatalf("follower at seq %d, primary at %d", got, want)
	}
	if dst.Lookup("chip-b") != nil {
		t.Fatal("deregister did not replicate")
	}
	de := dst.Lookup("chip-a")
	if de == nil {
		t.Fatal("chip-a missing on follower")
	}
	ds, ss := de.Status(), e.Status()
	if ds.Issued != ss.Issued || ds.Denials != ss.Denials || ds.Locked != ss.Locked {
		t.Fatalf("follower status %+v, primary %+v", ds, ss)
	}
	// The replicated re-enrollment must keep every old word burned: issue
	// from the follower copy and check for overlap.
	cs, _, err := de.Issue(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if wantWords[c.Word()] {
			t.Fatalf("word %#x reissued by replicated entry", c.Word())
		}
	}
}

func TestApplyReplicatedRefusesGapsAndGarbage(t *testing.T) {
	reg, err := Open("", Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	if err := reg.ApplyReplicated(2, recDeregister, appendString(nil, "x")); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap apply: %v, want ErrSeqGap", err)
	}
	if err := reg.ApplyReplicated(1, 99, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown type: %v, want ErrCorrupt", err)
	}
	if err := reg.ApplyReplicated(1, recRegister, []byte{0xff}); err == nil {
		t.Fatal("truncated register payload applied")
	}
	if got := reg.Seq(); got != 0 {
		t.Fatalf("failed applies advanced seq to %d", got)
	}
	// A valid record at the right seq still applies afterwards.
	if err := reg.ApplyReplicated(1, recRegister, registerPayload("chip-a", 0, syntheticModel(2, 16))); err != nil {
		t.Fatal(err)
	}
	if reg.Lookup("chip-a") == nil {
		t.Fatal("valid replicated register missing")
	}
}

func TestSnapshotBytesInstallRoundTrip(t *testing.T) {
	src, err := Open("", Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.Register("chip-a", syntheticModel(2, 16), 20); err != nil {
		t.Fatal(err)
	}
	issued := issueWords(t, src.Lookup("chip-a"), 4)

	dir := t.TempDir()
	dst, err := Open(dir, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-existing state must be wiped by the install.
	if err := dst.Register("stale", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	snap, seq, err := src.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if dst.Lookup("stale") != nil {
		t.Fatal("stale entry survived snapshot install")
	}
	if got := dst.Seq(); got != seq {
		t.Fatalf("installed seq %d, want %d", got, seq)
	}
	// Corrupt snapshots must be rejected without touching state.
	bad := append([]byte(nil), snap...)
	bad[len(bad)/2] ^= 0x80
	if err := dst.InstallSnapshot(bad); err == nil {
		t.Fatal("corrupt snapshot installed")
	}

	// The install is durable: a kill -9 right after it recovers at the cut
	// with the burned words intact.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	e := re.Lookup("chip-a")
	if e == nil {
		t.Fatal("chip-a lost across reopen")
	}
	if got := e.Status().Issued; got != 4 {
		t.Fatalf("recovered %d issued, want 4", got)
	}
	cs, _, err := e.Issue(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if issued[c.Word()] {
			t.Fatalf("word %#x reissued after snapshot install + reopen", c.Word())
		}
	}
}

func TestCommitWaiterGatesIssuance(t *testing.T) {
	reg, err := Open("", Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.Register("chip-a", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	quorumDown := errors.New("quorum down")
	var gotSeq uint64
	reg.SetCommitWaiter(func(_ context.Context, seq uint64) error {
		gotSeq = seq
		return quorumDown
	})
	e := reg.Lookup("chip-a")
	before := e.Status().Issued
	if _, _, err := e.Issue(3, 0); !errors.Is(err, quorumDown) {
		t.Fatalf("gated Issue: %v, want the waiter's error", err)
	}
	if gotSeq != reg.Seq() {
		t.Fatalf("waiter saw seq %d, registry at %d", gotSeq, reg.Seq())
	}
	// Refused challenges stay burned; a retry draws fresh ones.
	if got := e.Status().Issued; got != before+3 {
		t.Fatalf("refused issuance burned %d, want 3", got-before)
	}
	reg.SetCommitWaiter(nil)
	if _, _, err := e.Issue(3, 0); err != nil {
		t.Fatalf("detached waiter still gating: %v", err)
	}
}

func TestCloseIdempotentUnderConcurrentRange(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(dir, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := reg.Register(fmt.Sprintf("chip-%d", i), syntheticModel(2, 16), 0); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reg.Range(func(e *Entry) bool {
				_ = e.Status()
				_, _, _ = e.Issue(1, 0) // racing Close may refuse; must not panic
				return true
			})
			errs[g] = reg.Close()
		}(g)
	}
	wg.Wait()
	// Every Close call observes the one real shutdown and its error.
	for g, err := range errs {
		if err != errs[0] {
			t.Fatalf("Close %d returned %v, Close 0 returned %v", g, err, errs[0])
		}
	}
	if err := reg.Close(); err != errs[0] {
		t.Fatalf("late Close returned %v, want %v", err, errs[0])
	}
	// The registry reopens cleanly after the concurrent shutdown.
	re, err := Open(dir, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 32 {
		t.Fatalf("recovered %d chips, want 32", got)
	}
}
