package rebalance

import "xorpuf/internal/telemetry"

// Instruments shared by Source and Acceptor.  All land in telemetry.Default
// so the serve admin endpoint and the SLO evaluator pick them up without
// extra wiring; rebalance_fence_seconds feeds the migration fence-window
// objective in the SLO catalog.
var (
	mActive        = telemetry.Default.Gauge("rebalance_active")
	mChipsMigrated = telemetry.Default.Counter("rebalance_chips_migrated_total")
	mDeltaRecords  = telemetry.Default.Counter("rebalance_delta_records_total")
	mRestarts      = telemetry.Default.Counter("rebalance_restarts_total")
	mFenceSeconds  = telemetry.Default.Histogram("rebalance_fence_seconds", telemetry.LatencyBuckets)
	mDuration      = telemetry.Default.Histogram("rebalance_duration_seconds", telemetry.LatencyBuckets)
)
