package rebalance

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"xorpuf/internal/registry"
	"xorpuf/internal/registry/repl"
)

// snapChunkSize is how much range-snapshot data rides in one mSnapChunk.
const snapChunkSize = 256 << 10

// SourceConfig parameterizes one outbound migration.
type SourceConfig struct {
	// MigrationID names the migration; both sides journal it, and restarts
	// must reuse it so the target's cutover record can be matched.
	MigrationID string
	// Lo/Hi bound the chip-ID range [Lo, Hi) being migrated, compared
	// lexicographically.  Hi == "" means unbounded above.
	Lo, Hi string
	// TargetAddr is the target's migration acceptor (host:port).
	TargetAddr string
	// Redirect is the address redirected clients should dial after cutover —
	// normally the target's auth listener, not its migration listener.
	Redirect string
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// AckTimeout bounds each wait for a target acknowledgement (default 10s).
	AckTimeout time.Duration
	// RetryBackoff is the initial delay between session attempts, doubling up
	// to 16x (default 200ms).
	RetryBackoff time.Duration
	// MaxAttempts caps session attempts; 0 retries indefinitely until Abort.
	MaxAttempts int
	// QueueSize bounds the live-delta queue; overflow restarts the stream
	// from a fresh snapshot rather than blocking issuance (default 4096).
	QueueSize int
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...interface{})
}

// Source phases, in the order a clean run visits them.
const (
	PhaseConnecting = "connecting"
	PhaseSnapshot   = "snapshot"
	PhaseStreaming  = "streaming"
	PhaseFenced     = "fenced"
	PhaseDone       = "done"
	PhaseAborted    = "aborted"
	PhaseFailed     = "failed"
)

// SourceStatus is a point-in-time snapshot of a migration's progress,
// serializable for the serve admin endpoint and the CLI.
type SourceStatus struct {
	MigrationID  string `json:"migration_id"`
	Lo           string `json:"lo"`
	Hi           string `json:"hi"`
	Target       string `json:"target"`
	Phase        string `json:"phase"`
	Chips        int    `json:"chips"`
	DeltaRecords uint64 `json:"delta_records"`
	Restarts     int    `json:"restarts"`
	Epoch        uint64 `json:"epoch,omitempty"`
	FenceMillis  int64  `json:"fence_millis,omitempty"`
	Error        string `json:"error,omitempty"`
}

// Source drives one range migration out of a registry: snapshot, live delta
// tail, fence, final drain, two-phase cutover.  One goroutine owns the whole
// session; every blocking point watches the abort channel.  The only state
// that deliberately survives a failed attempt is the issuance fence once
// mCutover has been sent — an unacknowledged cutover is ambiguous (the
// target may have journaled it), and unfencing then could issue challenges
// for chips the target now owns.  The next successful hello resolves the
// ambiguity in whichever direction the target's journal says.
type Source struct {
	reg *registry.Registry
	cfg SourceConfig

	mu          sync.Mutex
	phase       string
	chips       int
	deltas      uint64
	restarts    int
	epoch       uint64
	fenceMillis int64
	err         error

	fenceHeld   bool // fence set and not yet cleared/finalized
	cutoverSent atomic.Bool

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// errRestart marks attempt failures that the run loop should retry.
var errRestart = errors.New("rebalance: restart")

// ErrAborted is returned from Wait when the migration was aborted.
var ErrAborted = errors.New("rebalance: migration aborted")

// StartSource validates cfg and launches the migration.
func StartSource(reg *registry.Registry, cfg SourceConfig) (*Source, error) {
	if cfg.MigrationID == "" {
		return nil, errors.New("rebalance: migration ID required")
	}
	if cfg.Lo == "" && cfg.Hi == "" {
		return nil, errors.New("rebalance: refusing to migrate the full keyspace; set lo and/or hi")
	}
	if cfg.Hi != "" && cfg.Lo >= cfg.Hi {
		return nil, fmt.Errorf("rebalance: empty range [%q, %q)", cfg.Lo, cfg.Hi)
	}
	if cfg.TargetAddr == "" {
		return nil, errors.New("rebalance: target address required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 10 * time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 200 * time.Millisecond
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 4096
	}
	if cfg.Redirect == "" {
		cfg.Redirect = cfg.TargetAddr
	}
	s := &Source{
		reg:   reg,
		cfg:   cfg,
		phase: PhaseConnecting,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	mActive.Inc()
	go s.run()
	return s, nil
}

func (s *Source) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Status reports current progress.
func (s *Source) Status() SourceStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SourceStatus{
		MigrationID:  s.cfg.MigrationID,
		Lo:           s.cfg.Lo,
		Hi:           s.cfg.Hi,
		Target:       s.cfg.TargetAddr,
		Phase:        s.phase,
		Chips:        s.chips,
		DeltaRecords: s.deltas,
		Restarts:     s.restarts,
		Epoch:        s.epoch,
		FenceMillis:  s.fenceMillis,
	}
	if s.err != nil {
		st.Error = s.err.Error()
	}
	return st
}

// Done is closed when the migration reaches a terminal phase.
func (s *Source) Done() <-chan struct{} { return s.done }

// Wait blocks until terminal and returns nil only for a completed cutover.
func (s *Source) Wait() error {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.phase == PhaseDone {
		return nil
	}
	if s.err != nil {
		return s.err
	}
	return ErrAborted
}

// Abort requests a pre-cutover cancellation.  Once mCutover has been sent
// the outcome is owned by the target's journal and abort is refused — the
// source must keep (re)connecting until the hello exchange resolves it.
func (s *Source) Abort() error {
	if s.cutoverSent.Load() {
		return errors.New("rebalance: cutover in flight; outcome is decided by the target's journal and cannot be aborted")
	}
	s.stopOnce.Do(func() { close(s.stop) })
	return nil
}

func (s *Source) setPhase(p string) {
	s.mu.Lock()
	s.phase = p
	s.mu.Unlock()
}

func (s *Source) aborting() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

func (s *Source) finish(phase string, err error) {
	s.mu.Lock()
	s.phase = phase
	s.err = err
	s.mu.Unlock()
	mActive.Dec()
	close(s.done)
}

func (s *Source) run() {
	start := time.Now()
	backoff := s.cfg.RetryBackoff
	attempts := 0
	for {
		if s.aborting() && !s.cutoverSent.Load() {
			s.abortCleanup()
			s.finish(PhaseAborted, nil)
			return
		}
		err := s.attempt()
		if err == nil {
			mDuration.ObserveSince(start)
			s.finish(PhaseDone, nil)
			return
		}
		if s.aborting() && !s.cutoverSent.Load() {
			s.abortCleanup()
			s.finish(PhaseAborted, nil)
			return
		}
		var me *MigError
		if errors.As(err, &me) && me.Code == CodeAborted {
			// The target refused the migration outright; retrying is futile.
			s.clearFenceIfSafe()
			s.finish(PhaseFailed, err)
			return
		}
		attempts++
		if s.cfg.MaxAttempts > 0 && attempts >= s.cfg.MaxAttempts {
			s.clearFenceIfSafe()
			s.finish(PhaseFailed, fmt.Errorf("rebalance: giving up after %d attempts: %w", attempts, err))
			return
		}
		mRestarts.Inc()
		s.mu.Lock()
		s.restarts++
		s.mu.Unlock()
		s.logf("rebalance %s: attempt %d failed (%v); retrying in %s", s.cfg.MigrationID, attempts, err, backoff)
		s.setPhase(PhaseConnecting)
		select {
		case <-time.After(backoff):
		case <-s.stop:
		}
		if backoff < 16*s.cfg.RetryBackoff {
			backoff *= 2
		}
	}
}

// clearFenceIfSafe lifts the issuance fence unless a cutover is in flight —
// after mCutover the target may own the range, and unfencing would risk
// dual issuance of the same challenge space.
func (s *Source) clearFenceIfSafe() {
	if s.cutoverSent.Load() {
		s.logf("rebalance %s: leaving fence in place — cutover outcome unresolved", s.cfg.MigrationID)
		return
	}
	s.mu.Lock()
	held := s.fenceHeld
	s.fenceHeld = false
	s.mu.Unlock()
	if held {
		if err := s.reg.ClearRangeFence(s.cfg.MigrationID); err != nil {
			s.logf("rebalance %s: clearing fence: %v", s.cfg.MigrationID, err)
		}
	}
}

// abortCleanup tells the target to drop arriving state, best-effort, and
// lifts the local fence.
func (s *Source) abortCleanup() {
	s.clearFenceIfSafe()
	conn, err := net.DialTimeout("tcp", s.cfg.TargetAddr, s.cfg.DialTimeout)
	if err != nil {
		return
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(s.cfg.AckTimeout))
	if err := repl.WriteFrame(conn, mHello, helloPayload(s.reg.OwnershipEpoch()+1, s.cfg.MigrationID, s.cfg.Lo, s.cfg.Hi)); err != nil {
		return
	}
	br := bufio.NewReader(conn)
	typ, payload, err := repl.ReadFrame(br)
	if err != nil || typ != mHelloAck {
		return
	}
	if state, _, err := decodeHelloAck(payload); err != nil || state != helloFresh {
		return // already cut over: nothing to abort
	}
	_ = repl.WriteFrame(conn, mAbort, []byte("operator abort"))
}

// obsRec is one live WAL record captured by the range observer.
type obsRec struct {
	seq     uint64
	typ     byte
	payload []byte
}

// attempt runs one full migration session; nil means cutover completed.
func (s *Source) attempt() error {
	conn, err := net.DialTimeout("tcp", s.cfg.TargetAddr, s.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("%w: dial: %v", errRestart, err)
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)

	// Hello: propose the next epoch; learn whether the target already cut
	// over (resolving a previously ambiguous cutover).
	_ = conn.SetDeadline(time.Now().Add(s.cfg.AckTimeout))
	proposed := s.reg.OwnershipEpoch() + 1
	if err := repl.WriteFrame(conn, mHello, helloPayload(proposed, s.cfg.MigrationID, s.cfg.Lo, s.cfg.Hi)); err != nil {
		return fmt.Errorf("%w: hello: %v", errRestart, err)
	}
	typ, payload, err := s.readReply(br)
	if err != nil {
		return err
	}
	if typ != mHelloAck {
		return migErrf(CodeProto, "expected hello-ack, got frame type %d", typ)
	}
	state, epoch, err := decodeHelloAck(payload)
	if err != nil {
		return err
	}
	if state == helloCutover {
		// The target's journaled cutover wins, whether we remember sending
		// mCutover or not (we may be a restarted process).  Finalize.
		return s.finalize(epoch)
	}
	// Fresh session: the target holds no cutover for this migration.  Any
	// fence left from a failed attempt can be lifted — issuance is safe again
	// because the source is still the sole owner.
	s.cutoverSent.Store(false)
	s.mu.Lock()
	s.fenceHeld = false
	s.mu.Unlock()
	if err := s.reg.ClearRangeFence(s.cfg.MigrationID); err != nil {
		return fmt.Errorf("clearing stale fence: %w", err)
	}

	// Subscribe to live appends BEFORE cutting the snapshot so no range
	// record can fall between snapshot and tail.  The observer runs under
	// the registry's journal lock and must never block: overflow drops the
	// stream coherence flag and forces a restart from a fresh snapshot.
	queue := make(chan obsRec, s.cfg.QueueSize)
	var overflowed atomic.Bool
	remove := s.reg.AddAppendObserver(func(seq uint64, typ byte, payload []byte) {
		id := registry.RecordChipID(typ, payload)
		if id == "" || id < s.cfg.Lo || (s.cfg.Hi != "" && id >= s.cfg.Hi) {
			return
		}
		p := make([]byte, len(payload))
		copy(p, payload)
		select {
		case queue <- obsRec{seq: seq, typ: typ, payload: p}:
		default:
			overflowed.Store(true)
		}
	})
	defer remove()

	s.setPhase(PhaseSnapshot)
	data, cutSeq, count, err := s.reg.RangeSnapshot(s.cfg.Lo, s.cfg.Hi)
	if err != nil {
		return fmt.Errorf("range snapshot: %w", err)
	}
	s.mu.Lock()
	s.chips = count
	s.mu.Unlock()
	s.logf("rebalance %s: shipping %d chips, %d snapshot bytes, cut at seq %d",
		s.cfg.MigrationID, count, len(data), cutSeq)

	_ = conn.SetDeadline(time.Now().Add(s.cfg.AckTimeout))
	if err := repl.WriteFrame(conn, mSnapBegin, snapBeginPayload(cutSeq, uint64(len(data)), uint32(count))); err != nil {
		return fmt.Errorf("%w: snap begin: %v", errRestart, err)
	}
	for off := 0; off < len(data); off += snapChunkSize {
		end := off + snapChunkSize
		if end > len(data) {
			end = len(data)
		}
		_ = conn.SetDeadline(time.Now().Add(s.cfg.AckTimeout))
		if err := repl.WriteFrame(conn, mSnapChunk, data[off:end]); err != nil {
			return fmt.Errorf("%w: snap chunk: %v", errRestart, err)
		}
	}
	if err := repl.WriteFrame(conn, mSnapEnd, nil); err != nil {
		return fmt.Errorf("%w: snap end: %v", errRestart, err)
	}
	// The target acks the snapshot install via mDeltaAck(cutSeq).
	if err := s.awaitAck(br, conn, cutSeq); err != nil {
		return err
	}

	// Live tail: forward range records as traffic burns challenges.  Once
	// the queue drains we are caught up to within the in-flight window and
	// can fence.
	s.setPhase(PhaseStreaming)
	for {
		if s.aborting() {
			return errRestart // run loop turns this into the abort path
		}
		if overflowed.Load() {
			return fmt.Errorf("%w: delta queue overflow; restarting from snapshot", errRestart)
		}
		select {
		case rec := <-queue:
			if rec.seq <= cutSeq {
				continue // already inside the snapshot
			}
			if err := s.shipDelta(br, conn, rec); err != nil {
				return err
			}
		default:
			goto fence
		}
	}

fence:
	// Handoff window: fence issuance for the range (journaled, so a crashed
	// source recovers fenced), drain the final delta, then hand ownership to
	// the target with a two-phase cutover.
	fenceStart := time.Now()
	s.setPhase(PhaseFenced)
	s.mu.Lock()
	s.fenceHeld = true
	s.mu.Unlock()
	fenceSeq, err := s.reg.SetRangeFence(s.cfg.MigrationID, s.cfg.Lo, s.cfg.Hi)
	if err != nil {
		return fmt.Errorf("setting fence: %w", err)
	}
	// SetRangeFence journals under the same lock the observer runs under, so
	// by the time it returns every range record with seq < fenceSeq is
	// already in the queue.  Drain it.
	for {
		select {
		case rec := <-queue:
			if rec.seq <= cutSeq {
				continue
			}
			if err := s.shipDelta(br, conn, rec); err != nil {
				s.clearFenceIfSafe()
				return err
			}
		default:
			goto cutover
		}
	}

cutover:
	s.cutoverSent.Store(true)
	_ = conn.SetDeadline(time.Now().Add(s.cfg.AckTimeout))
	if err := repl.WriteFrame(conn, mCutover, u64Payload(fenceSeq)); err != nil {
		return fmt.Errorf("%w: cutover send: %v", errRestart, err)
	}
	typ, payload, err = s.readReply(br)
	if err != nil {
		// Ambiguous: the target may have journaled the cutover before the
		// link died.  The fence stays; the next hello resolves it.
		return fmt.Errorf("%w: cutover ack: %v", errRestart, err)
	}
	if typ != mCutoverAck {
		return migErrf(CodeProto, "expected cutover-ack, got frame type %d", typ)
	}
	ackEpoch, err := decodeU64(payload, "cutover-ack")
	if err != nil {
		return err
	}
	mFenceSeconds.ObserveSince(fenceStart)
	s.mu.Lock()
	s.fenceMillis = time.Since(fenceStart).Milliseconds()
	s.mu.Unlock()
	return s.finalize(ackEpoch)
}

// finalize journals the source-side cutover: the range departs, the fence
// lifts, resurrected-source requests get a redirect to the new owner.
func (s *Source) finalize(epoch uint64) error {
	if err := s.reg.CutoverSource(s.cfg.MigrationID, epoch, s.cfg.Lo, s.cfg.Hi, s.cfg.Redirect); err != nil {
		return fmt.Errorf("source cutover: %w", err)
	}
	s.mu.Lock()
	s.epoch = epoch
	s.fenceHeld = false
	chips := s.chips
	s.mu.Unlock()
	mChipsMigrated.Add(uint64(chips))
	s.logf("rebalance %s: cutover complete at epoch %d; range [%q,%q) now owned by %s",
		s.cfg.MigrationID, epoch, s.cfg.Lo, s.cfg.Hi, s.cfg.Redirect)
	return nil
}

// shipDelta sends one live record and waits for the target's journal ack.
func (s *Source) shipDelta(br *bufio.Reader, conn net.Conn, rec obsRec) error {
	_ = conn.SetDeadline(time.Now().Add(s.cfg.AckTimeout))
	if err := repl.WriteFrame(conn, mDelta, deltaPayload(rec.seq, rec.typ, rec.payload)); err != nil {
		return fmt.Errorf("%w: delta send: %v", errRestart, err)
	}
	if err := s.awaitAck(br, conn, rec.seq); err != nil {
		return err
	}
	mDeltaRecords.Inc()
	s.mu.Lock()
	s.deltas++
	s.mu.Unlock()
	return nil
}

// awaitAck reads frames until the expected mDeltaAck arrives.
func (s *Source) awaitAck(br *bufio.Reader, conn net.Conn, want uint64) error {
	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.AckTimeout))
	typ, payload, err := s.readReply(br)
	if err != nil {
		return err
	}
	if typ != mDeltaAck {
		return migErrf(CodeProto, "expected delta-ack, got frame type %d", typ)
	}
	got, err := decodeU64(payload, "delta-ack")
	if err != nil {
		return err
	}
	if got != want {
		return migErrf(CodeProto, "delta-ack for seq %d, want %d", got, want)
	}
	return nil
}

// readReply reads one frame, converting mError frames and transport errors.
func (s *Source) readReply(br *bufio.Reader) (byte, []byte, error) {
	typ, payload, err := repl.ReadFrame(br)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: read: %v", errRestart, err)
	}
	if typ == mError {
		me, derr := decodeError(payload)
		if derr != nil {
			return 0, nil, derr
		}
		if me.Code == CodeAborted {
			return 0, nil, me
		}
		return 0, nil, fmt.Errorf("%w: target: %v", errRestart, me)
	}
	return typ, payload, nil
}
