package rebalance

import (
	"errors"
	"net"
	"testing"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/registry"
)

// syntheticModel mirrors the registry tests' cheap deterministic model:
// every challenge is predicted Stable0, so selection never stalls.
func syntheticModel(width, stages int) *core.ChipModel {
	m := &core.ChipModel{PUFs: make([]*core.PUFModel, width), Beta0: 1, Beta1: 1}
	for i := range m.PUFs {
		p := &core.PUFModel{Theta: make([]float64, stages+1), Thr0: 0.4, Thr1: 0.6}
		for j := range p.Theta {
			p.Theta[j] = float64((i+1)*(j+1)) * 1e-6
		}
		m.PUFs[i] = p
	}
	return m
}

func openReg(t *testing.T, dir string) *registry.Registry {
	t.Helper()
	reg, err := registry.Open(dir, registry.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func startAcceptor(t *testing.T, reg *registry.Registry) (*Acceptor, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a := NewAcceptor(reg, ln, AcceptorConfig{SessionTimeout: 5 * time.Second, Logf: t.Logf})
	t.Cleanup(func() { a.Close() })
	return a, ln.Addr().String()
}

func sourceCfg(migID, lo, hi, target string) SourceConfig {
	return SourceConfig{
		MigrationID:  migID,
		Lo:           lo,
		Hi:           hi,
		TargetAddr:   target,
		Redirect:     "new-owner:9000",
		DialTimeout:  time.Second,
		AckTimeout:   2 * time.Second,
		RetryBackoff: 10 * time.Millisecond,
		QueueSize:    256,
	}
}

func TestMigrationEndToEnd(t *testing.T) {
	src := openReg(t, "")
	dst := openReg(t, "")
	defer src.Close()
	defer dst.Close()

	ids := []string{"chip-a", "chip-b", "chip-c", "chip-d", "chip-e"}
	for _, id := range ids {
		if err := src.Register(id, syntheticModel(2, 16), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-migration burns must travel with the snapshot.
	if _, _, err := src.Lookup("chip-b").Issue(7, 0); err != nil {
		t.Fatal(err)
	}
	_, addr := startAcceptor(t, dst)

	s, err := StartSource(src, sourceCfg("mig-1", "chip-b", "chip-e", addr))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("migration failed: %v", err)
	}

	// Source: range departed with a redirect, rest untouched.
	for _, id := range []string{"chip-b", "chip-c", "chip-d"} {
		st, redirect := src.Ownership(id)
		if st != registry.OwnershipDeparted || redirect != "new-owner:9000" {
			t.Fatalf("source ownership of %s: %v/%q, want departed/new-owner:9000", id, st, redirect)
		}
		if src.Lookup(id) != nil {
			t.Fatalf("source still holds entry for departed chip %s", id)
		}
	}
	for _, id := range []string{"chip-a", "chip-e"} {
		if st, _ := src.Ownership(id); st != registry.OwnershipOwned {
			t.Fatalf("source ownership of %s: %v, want owned", id, st)
		}
	}
	if err := src.Register("chip-bb", syntheticModel(2, 16), 0); err == nil {
		t.Fatal("source accepted registration inside a departed range")
	}

	// Target: range live and issuing, burn history intact.
	e := dst.Lookup("chip-b")
	if e == nil {
		t.Fatal("chip-b missing on target")
	}
	if got := e.Status().Issued; got != 7 {
		t.Fatalf("target sees %d issued words for chip-b, want 7", got)
	}
	if _, _, err := e.Issue(3, 0); err != nil {
		t.Fatalf("target issuance after cutover: %v", err)
	}
	if dst.OwnershipEpoch() == 0 || src.OwnershipEpoch() != dst.OwnershipEpoch() {
		t.Fatalf("epoch mismatch: source %d target %d", src.OwnershipEpoch(), dst.OwnershipEpoch())
	}
	if st := s.Status(); st.Phase != PhaseDone || st.Chips != 3 {
		t.Fatalf("status %+v, want done with 3 chips", st)
	}
	if len(src.Fences()) != 0 {
		t.Fatalf("fence left behind: %+v", src.Fences())
	}
}

func TestLiveTrafficDuringMigration(t *testing.T) {
	src := openReg(t, "")
	dst := openReg(t, "")
	defer src.Close()
	defer dst.Close()
	for _, id := range []string{"chip-a", "chip-b"} {
		if err := src.Register(id, syntheticModel(2, 16), 0); err != nil {
			t.Fatal(err)
		}
	}
	_, addr := startAcceptor(t, dst)

	// Hammer issuance on the migrating chip while the stream runs.  Burns
	// that race the fence must either land in the delta stream or be
	// refused with the retryable ErrMigrating — never lost.
	stop := make(chan struct{})
	issued := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				issued <- n
				return
			default:
			}
			// Throttled so the synthetic model's finite stable-challenge
			// stream outlasts the migration.
			if e := src.Lookup("chip-a"); e != nil && n < 500 {
				if cs, _, err := e.Issue(1, 0); err == nil {
					n += len(cs)
				} else if !errors.Is(err, registry.ErrMigrating) {
					t.Errorf("unexpected issue error: %v", err)
					issued <- n
					return
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	s, err := StartSource(src, sourceCfg("mig-2", "chip-a", "chip-b", addr))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("migration failed: %v", err)
	}
	close(stop)
	n := <-issued

	e := dst.Lookup("chip-a")
	if e == nil {
		t.Fatal("chip-a missing on target")
	}
	if got := e.Status().Issued; got != n {
		t.Fatalf("target accounts %d issued words for chip-a, source issued %d — a burn was lost or duplicated", got, n)
	}
}

// TestTargetRestartMidStream kills the target's first session after the
// hello and lets a fresh acceptor take over the same address: the source
// must restart from a new snapshot and still complete exactly once.
func TestTargetRestartMidStream(t *testing.T) {
	src := openReg(t, "")
	dst := openReg(t, "")
	defer src.Close()
	defer dst.Close()
	for _, id := range []string{"chip-a", "chip-b"} {
		if err := src.Register(id, syntheticModel(2, 16), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := src.Lookup("chip-a").Issue(4, 0); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// First connection: accept and slam the door mid-handshake.
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		conn, err := ln.Accept()
		if err == nil {
			conn.Close()
		}
	}()

	s, err := StartSource(src, sourceCfg("mig-3", "chip-a", "chip-b", ln.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	<-firstDone
	// Now the real acceptor owns the listener.
	a := NewAcceptor(dst, ln, AcceptorConfig{SessionTimeout: 5 * time.Second, Logf: t.Logf})
	defer a.Close()

	if err := s.Wait(); err != nil {
		t.Fatalf("migration failed after target restart: %v", err)
	}
	if st := s.Status(); st.Restarts == 0 {
		t.Fatalf("status %+v, want at least one restart", st)
	}
	e := dst.Lookup("chip-a")
	if e == nil || e.Status().Issued != 4 {
		t.Fatalf("chip-a burn history did not survive the restart")
	}
}

// TestHelloResolvesCompletedCutover models a source that crashed after the
// target journaled the cutover: the reconnecting source must finalize from
// the target's journal, not restart the stream.
func TestHelloResolvesCompletedCutover(t *testing.T) {
	src := openReg(t, "")
	dst := openReg(t, "")
	defer src.Close()
	defer dst.Close()
	for _, id := range []string{"chip-a", "chip-b"} {
		if err := src.Register(id, syntheticModel(2, 16), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Seed the target with the already-cut-over state directly.
	data, _, _, err := src.RangeSnapshot("chip-a", "chip-b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.InstallMigrating("mig-4", "chip-a", "chip-b", data); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.CutoverTarget("mig-4", 9); err != nil {
		t.Fatal(err)
	}
	_, addr := startAcceptor(t, dst)

	s, err := StartSource(src, sourceCfg("mig-4", "chip-a", "chip-b", addr))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("finalize from target journal failed: %v", err)
	}
	if st, _ := src.Ownership("chip-a"); st != registry.OwnershipDeparted {
		t.Fatalf("source ownership %v, want departed", st)
	}
	if src.OwnershipEpoch() != 9 {
		t.Fatalf("source epoch %d, want the target's journaled 9", src.OwnershipEpoch())
	}
	if st := s.Status(); st.DeltaRecords != 0 && st.Phase != PhaseDone {
		t.Fatalf("status %+v, want immediate finalize", st)
	}
}

func TestAbortPreCutover(t *testing.T) {
	src := openReg(t, "")
	defer src.Close()
	if err := src.Register("chip-a", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	// A listener that accepts but never speaks: the source hangs in the
	// hello and the abort must cut through on the next attempt boundary.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	cfg := sourceCfg("mig-5", "chip-a", "", ln.Addr().String())
	cfg.AckTimeout = 100 * time.Millisecond
	s, err := StartSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); !errors.Is(err, ErrAborted) {
		t.Fatalf("Wait = %v, want ErrAborted", err)
	}
	if len(src.Fences()) != 0 {
		t.Fatalf("abort left a fence: %+v", src.Fences())
	}
	if _, _, err := src.Lookup("chip-a").Issue(1, 0); err != nil {
		t.Fatalf("issuance after abort: %v", err)
	}
}

func TestSourceConfigValidation(t *testing.T) {
	src := openReg(t, "")
	defer src.Close()
	for _, cfg := range []SourceConfig{
		{Lo: "a", Hi: "b", TargetAddr: "x"},                   // no migration ID
		{MigrationID: "m", TargetAddr: "x"},                   // full keyspace
		{MigrationID: "m", Lo: "b", Hi: "a", TargetAddr: "x"}, // empty range
		{MigrationID: "m", Lo: "a", Hi: "b"},                  // no target
	} {
		if _, err := StartSource(src, cfg); err == nil {
			t.Fatalf("StartSource accepted invalid config %+v", cfg)
		}
	}
}

// TestDualOwnerInstallRefused drives a migration at a target that already
// owns a chip in the range: the install must fail closed and the source
// must not cut over.
func TestDualOwnerInstallRefused(t *testing.T) {
	src := openReg(t, "")
	dst := openReg(t, "")
	defer src.Close()
	defer dst.Close()
	if err := src.Register("chip-a", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	if err := dst.Register("chip-a", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	_, addr := startAcceptor(t, dst)
	cfg := sourceCfg("mig-6", "chip-a", "chip-b", addr)
	cfg.MaxAttempts = 2
	s, err := StartSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err == nil {
		t.Fatal("migration into a dual-owner range succeeded")
	}
	if st, _ := src.Ownership("chip-a"); st != registry.OwnershipOwned {
		t.Fatalf("source gave up ownership on a refused install: %v", st)
	}
	if _, _, err := src.Lookup("chip-a").Issue(1, 0); err != nil {
		t.Fatalf("source issuance after refused migration: %v", err)
	}
}
