// Package rebalance moves a contiguous chip range between shard owners while
// issuance continues everywhere else — the live-topology half of the paper's
// never-reuse rule.  PR 2 made burned-challenge history survive kill -9 and
// PR 6 made it survive node loss; this package makes it survive *ownership
// change*: a migration that forked or replayed the used-challenge sets would
// hand identical CRPs to two servers, exactly the reuse the Fig 7 protocol
// exists to prevent.
//
// Protocol (source dials the target's acceptor; frames are the repl package's
// framed-TCP codec, with a disjoint type space so a mis-wired link fails the
// CRC/type check instead of being misinterpreted):
//
//	mHello      s→t  version(1) epoch(u64) migID(str) lo(str) hi(str)
//	mHelloAck   t→s  state(u8: 0 fresh / 1 already-cut-over) epoch(u64)
//	mSnapBegin  s→t  cutSeq(u64) dataLen(u64) count(u32)
//	mSnapChunk  s→t  raw XPR1 range-snapshot bytes
//	mSnapEnd    s→t  (empty)
//	mDelta      s→t  srcSeq(u64) rectype(1) payload  (one live WAL record)
//	mDeltaAck   t→s  srcSeq(u64)   (sent only after the target journaled it)
//	mCutover    s→t  finalSeq(u64)
//	mCutoverAck t→s  epoch(u64)    (sent only after the target's cutover
//	                                record is journaled and quorum-acked)
//	mAbort      s→t  reason(str)
//	mError      ↔    code(str16) message(rest)
//
// A session is: hello → (already-cut-over shortcut, or) snapshot → live
// delta tail → fence on the source → final drain → cutover.  Everything is
// restartable: the hello exchange tells a reconnecting source whether the
// target's cutover record won (the source then finalizes its own side) or
// the stream must restart from a fresh snapshot (reinstalling arriving
// chips idempotently — the source stays authoritative until cutover).
package rebalance

import (
	"encoding/binary"
	"fmt"
)

const protocolVersion = 1

// Frame types.  The space starts at 16 so no rebalance frame can be confused
// with a repl frame (1–8) if a link is ever cross-wired.
const (
	mHello      byte = 16
	mHelloAck   byte = 17
	mSnapBegin  byte = 18
	mSnapChunk  byte = 19
	mSnapEnd    byte = 20
	mDelta      byte = 21
	mDeltaAck   byte = 22
	mCutover    byte = 23
	mCutoverAck byte = 24
	mAbort      byte = 25
	mError      byte = 26
)

// Hello-ack states.
const (
	helloFresh   byte = 0
	helloCutover byte = 1
)

// maxSnapshotBytes bounds an advertised range-snapshot transfer.
const maxSnapshotBytes = 1 << 32

// Error codes carried in mError frames.
const (
	CodeProto    = "proto"    // malformed or unexpected frame
	CodeApply    = "apply"    // target could not journal/apply
	CodeQuorum   = "quorum"   // target cutover could not reach its follower quorum
	CodeAborted  = "aborted"  // migration aborted by the peer
	CodeShutdown = "shutdown" // orderly close
)

// MigError is the structured error that ends a migration session attempt.
type MigError struct {
	Code string
	Msg  string
}

func (e *MigError) Error() string { return "rebalance: " + e.Code + ": " + e.Msg }

func migErrf(code, format string, args ...interface{}) *MigError {
	return &MigError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

func appendStr(b []byte, s string) []byte {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// strCursor decodes length-prefixed strings with sticky bounds checking.
type strCursor struct {
	b  []byte
	ok bool
}

func (c *strCursor) str() string {
	if !c.ok || len(c.b) < 2 {
		c.ok = false
		return ""
	}
	n := int(binary.LittleEndian.Uint16(c.b[:2]))
	if len(c.b) < 2+n {
		c.ok = false
		return ""
	}
	s := string(c.b[2 : 2+n])
	c.b = c.b[2+n:]
	return s
}

func (c *strCursor) u64() uint64 {
	if !c.ok || len(c.b) < 8 {
		c.ok = false
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[:8])
	c.b = c.b[8:]
	return v
}

func (c *strCursor) u8() byte {
	if !c.ok || len(c.b) < 1 {
		c.ok = false
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func helloPayload(epoch uint64, migID, lo, hi string) []byte {
	b := []byte{protocolVersion}
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = appendStr(b, migID)
	b = appendStr(b, lo)
	return appendStr(b, hi)
}

func decodeHello(p []byte) (version byte, epoch uint64, migID, lo, hi string, err error) {
	c := &strCursor{b: p, ok: true}
	version = c.u8()
	epoch = c.u64()
	migID = c.str()
	lo = c.str()
	hi = c.str()
	if !c.ok || len(c.b) != 0 {
		return 0, 0, "", "", "", migErrf(CodeProto, "malformed hello payload")
	}
	return version, epoch, migID, lo, hi, nil
}

func helloAckPayload(state byte, epoch uint64) []byte {
	b := []byte{state}
	return binary.LittleEndian.AppendUint64(b, epoch)
}

func decodeHelloAck(p []byte) (state byte, epoch uint64, err error) {
	if len(p) != 9 {
		return 0, 0, migErrf(CodeProto, "hello-ack payload %d bytes, want 9", len(p))
	}
	if p[0] != helloFresh && p[0] != helloCutover {
		return 0, 0, migErrf(CodeProto, "unknown hello-ack state %d", p[0])
	}
	return p[0], binary.LittleEndian.Uint64(p[1:]), nil
}

func snapBeginPayload(cutSeq, dataLen uint64, count uint32) []byte {
	b := binary.LittleEndian.AppendUint64(nil, cutSeq)
	b = binary.LittleEndian.AppendUint64(b, dataLen)
	return binary.LittleEndian.AppendUint32(b, count)
}

func decodeSnapBegin(p []byte) (cutSeq, dataLen uint64, count uint32, err error) {
	if len(p) != 20 {
		return 0, 0, 0, migErrf(CodeProto, "snap-begin payload %d bytes, want 20", len(p))
	}
	dataLen = binary.LittleEndian.Uint64(p[8:16])
	if dataLen > maxSnapshotBytes {
		return 0, 0, 0, migErrf(CodeProto, "snapshot length %d exceeds cap", dataLen)
	}
	return binary.LittleEndian.Uint64(p[0:8]), dataLen, binary.LittleEndian.Uint32(p[16:20]), nil
}

func deltaPayload(srcSeq uint64, rectype byte, rec []byte) []byte {
	b := binary.LittleEndian.AppendUint64(nil, srcSeq)
	b = append(b, rectype)
	return append(b, rec...)
}

func decodeDelta(p []byte) (srcSeq uint64, rectype byte, rec []byte, err error) {
	if len(p) < 9 {
		return 0, 0, nil, migErrf(CodeProto, "delta payload %d bytes, want ≥ 9", len(p))
	}
	return binary.LittleEndian.Uint64(p[0:8]), p[8], p[9:], nil
}

func u64Payload(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(make([]byte, 0, 8), v)
}

func decodeU64(p []byte, what string) (uint64, error) {
	if len(p) != 8 {
		return 0, migErrf(CodeProto, "%s payload %d bytes, want 8", what, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

func errorPayload(code, msg string) []byte {
	b := appendStr(nil, code)
	return append(b, msg...)
}

func decodeError(p []byte) (*MigError, error) {
	c := &strCursor{b: p, ok: true}
	code := c.str()
	if !c.ok {
		return nil, migErrf(CodeProto, "malformed error frame")
	}
	return &MigError{Code: code, Msg: string(c.b)}, nil
}
