package rebalance

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"xorpuf/internal/registry"
	"xorpuf/internal/registry/repl"
)

// AcceptorConfig parameterizes the target side of migrations.
type AcceptorConfig struct {
	// SessionTimeout bounds inactivity on one migration session (default 30s).
	SessionTimeout time.Duration
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...interface{})
}

// Acceptor serves inbound migrations on a listener: each connection is one
// source session (hello → snapshot → deltas → cutover).  The acceptor is the
// authority on migration outcome: a cutover exists once — and only once —
// its journal holds the recCutover record, and the acknowledgement that
// releases the source is sent only after that record is both journaled and
// quorum-acked by the target's own followers.  A source reconnecting after
// any crash learns the outcome from the hello exchange.
type Acceptor struct {
	reg *registry.Registry
	cfg AcceptorConfig
	ln  net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewAcceptor starts serving migrations on ln.
func NewAcceptor(reg *registry.Registry, ln net.Listener, cfg AcceptorConfig) *Acceptor {
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = 30 * time.Second
	}
	a := &Acceptor{reg: reg, cfg: cfg, ln: ln, conns: make(map[net.Conn]struct{})}
	a.wg.Add(1)
	go a.acceptLoop()
	return a
}

// Addr returns the listener address.
func (a *Acceptor) Addr() net.Addr { return a.ln.Addr() }

// Close stops accepting and tears down live sessions.
func (a *Acceptor) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	for c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
	err := a.ln.Close()
	a.wg.Wait()
	return err
}

func (a *Acceptor) logf(format string, args ...interface{}) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

func (a *Acceptor) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			conn.Close()
			return
		}
		a.conns[conn] = struct{}{}
		a.wg.Add(1)
		a.mu.Unlock()
		go func() {
			defer a.wg.Done()
			a.serve(conn)
			a.mu.Lock()
			delete(a.conns, conn)
			a.mu.Unlock()
		}()
	}
}

func (a *Acceptor) serve(conn net.Conn) {
	defer conn.Close()
	if err := a.session(conn); err != nil && !errors.Is(err, io.EOF) {
		var me *MigError
		if errors.As(err, &me) {
			_ = repl.WriteFrame(conn, mError, errorPayload(me.Code, me.Msg))
		} else if !isNetClose(err) {
			_ = repl.WriteFrame(conn, mError, errorPayload(CodeApply, err.Error()))
		}
		a.logf("rebalance acceptor: session from %s: %v", conn.RemoteAddr(), err)
	}
}

func isNetClose(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) || errors.Is(err, net.ErrClosed)
}

func (a *Acceptor) session(conn net.Conn) error {
	br := bufio.NewReaderSize(conn, 1<<16)
	_ = conn.SetDeadline(time.Now().Add(a.cfg.SessionTimeout))
	typ, payload, err := repl.ReadFrame(br)
	if err != nil {
		return err
	}
	if typ != mHello {
		return migErrf(CodeProto, "expected hello, got frame type %d", typ)
	}
	version, helloEpoch, migID, lo, hi, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if version != protocolVersion {
		return migErrf(CodeProto, "protocol version %d, want %d", version, protocolVersion)
	}
	if migID == "" {
		return migErrf(CodeProto, "empty migration ID")
	}

	// Outcome resolution: if this migration already cut over here, say so —
	// but only after the cutover record is quorum-committed, because telling
	// the source "I own the range" releases it to drop its copy.
	if epoch, done := a.reg.MigrationCutover(migID); done {
		if err := a.reg.WaitCommitted(a.reg.Seq()); err != nil {
			return migErrf(CodeQuorum, "cutover not yet quorum-committed: %v", err)
		}
		return repl.WriteFrame(conn, mHelloAck, helloAckPayload(helloCutover, epoch))
	}
	if err := repl.WriteFrame(conn, mHelloAck, helloAckPayload(helloFresh, a.reg.OwnershipEpoch())); err != nil {
		return err
	}

	// Snapshot phase.
	_ = conn.SetDeadline(time.Now().Add(a.cfg.SessionTimeout))
	typ, payload, err = repl.ReadFrame(br)
	if err != nil {
		return err
	}
	switch typ {
	case mAbort:
		a.logf("rebalance acceptor: migration %s aborted by source: %s", migID, payload)
		return a.reg.AbortMigrationIn(migID)
	case mSnapBegin:
	default:
		return migErrf(CodeProto, "expected snap-begin, got frame type %d", typ)
	}
	cutSeq, dataLen, count, err := decodeSnapBegin(payload)
	if err != nil {
		return err
	}
	data := make([]byte, 0, dataLen)
	for uint64(len(data)) < dataLen {
		_ = conn.SetDeadline(time.Now().Add(a.cfg.SessionTimeout))
		typ, payload, err = repl.ReadFrame(br)
		if err != nil {
			return err
		}
		if typ != mSnapChunk {
			return migErrf(CodeProto, "expected snap chunk, got frame type %d", typ)
		}
		if uint64(len(data)+len(payload)) > dataLen {
			return migErrf(CodeProto, "snapshot overran advertised length")
		}
		data = append(data, payload...)
	}
	_ = conn.SetDeadline(time.Now().Add(a.cfg.SessionTimeout))
	typ, _, err = repl.ReadFrame(br)
	if err != nil {
		return err
	}
	if typ != mSnapEnd {
		return migErrf(CodeProto, "expected snap end, got frame type %d", typ)
	}
	installed, err := a.reg.InstallMigrating(migID, lo, hi, data)
	if err != nil {
		return migErrf(CodeApply, "installing %d-chip snapshot: %v", count, err)
	}
	a.logf("rebalance acceptor: migration %s installed %d arriving chips [%q,%q)", migID, installed, lo, hi)
	// Ack the install so the source moves to streaming.
	if err := repl.WriteFrame(conn, mDeltaAck, u64Payload(cutSeq)); err != nil {
		return err
	}

	// Delta phase: journal-then-ack, exactly like a repl follower — the
	// source treats an ack as "this burn is durable at the target".
	for {
		_ = conn.SetDeadline(time.Now().Add(a.cfg.SessionTimeout))
		typ, payload, err = repl.ReadFrame(br)
		if err != nil {
			return err
		}
		switch typ {
		case mDelta:
			srcSeq, rectype, rec, err := decodeDelta(payload)
			if err != nil {
				return err
			}
			if _, err := a.reg.ApplyMigrated(migID, rectype, rec); err != nil {
				return migErrf(CodeApply, "delta seq %d: %v", srcSeq, err)
			}
			if err := repl.WriteFrame(conn, mDeltaAck, u64Payload(srcSeq)); err != nil {
				return err
			}
		case mCutover:
			if _, err := decodeU64(payload, "cutover"); err != nil {
				return err
			}
			// Epoch rule: strictly above both the source's proposal and our
			// own history, so a swapped gateway table can reject staleness.
			epoch := a.reg.OwnershipEpoch() + 1
			if helloEpoch > epoch {
				epoch = helloEpoch
			}
			seq, err := a.reg.CutoverTarget(migID, epoch)
			if err != nil {
				return migErrf(CodeApply, "target cutover: %v", err)
			}
			if err := a.reg.WaitCommitted(seq); err != nil {
				return migErrf(CodeQuorum, "cutover quorum: %v", err)
			}
			a.logf("rebalance acceptor: migration %s cut over at epoch %d", migID, epoch)
			return repl.WriteFrame(conn, mCutoverAck, u64Payload(epoch))
		case mAbort:
			a.logf("rebalance acceptor: migration %s aborted by source: %s", migID, payload)
			return a.reg.AbortMigrationIn(migID)
		default:
			return migErrf(CodeProto, "unexpected frame type %d in delta phase", typ)
		}
	}
}
