package rebalance

import (
	"bufio"
	"bytes"
	"testing"

	"xorpuf/internal/registry"
	"xorpuf/internal/registry/repl"
)

// frameBytes encodes one wire frame via the shared repl codec.
func frameBytes(f *testing.F, typ byte, payload []byte) []byte {
	var buf bytes.Buffer
	if err := repl.WriteFrame(&buf, typ, payload); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// seedMigrationFrames builds a corpus from a real migration's wire traffic:
// an XPR1 range snapshot and live delta records captured from a live source
// registry, so the decoders see realistic payloads alongside the degenerate
// hand-rolled ones.
func seedMigrationFrames(f *testing.F) {
	src, err := registry.Open("", registry.Options{Seed: 5})
	if err != nil {
		f.Fatal(err)
	}
	defer src.Close()
	var deltas [][]byte
	src.SetAppendObserver(func(seq uint64, typ byte, payload []byte) {
		if registry.RecordChipID(typ, payload) != "" {
			deltas = append(deltas, frameBytes(f, mDelta, deltaPayload(seq, typ, payload)))
		}
	})
	if err := src.Register("chip-0", syntheticModel(2, 16), 64); err != nil {
		f.Fatal(err)
	}
	e := src.Lookup("chip-0")
	if _, _, err := e.Issue(3, 0); err != nil {
		f.Fatal(err)
	}
	e.Verdict(false, 2)
	snap, cutSeq, count, err := src.RangeSnapshot("chip-0", "chip-1")
	if err != nil {
		f.Fatal(err)
	}

	f.Add(frameBytes(f, mHello, helloPayload(1, "mig-f", "chip-0", "chip-1")))
	f.Add(frameBytes(f, mHelloAck, helloAckPayload(helloFresh, 0)))
	f.Add(frameBytes(f, mHelloAck, helloAckPayload(helloCutover, 3)))
	f.Add(frameBytes(f, mSnapBegin, snapBeginPayload(cutSeq, uint64(len(snap)), uint32(count))))
	f.Add(frameBytes(f, mSnapChunk, snap))
	f.Add(frameBytes(f, mSnapEnd, nil))
	f.Add(frameBytes(f, mDeltaAck, u64Payload(7)))
	f.Add(frameBytes(f, mCutover, u64Payload(cutSeq)))
	f.Add(frameBytes(f, mCutoverAck, u64Payload(2)))
	f.Add(frameBytes(f, mAbort, []byte("operator abort")))
	f.Add(frameBytes(f, mError, errorPayload(CodeApply, "wal append failed")))
	for _, d := range deltas {
		f.Add(d)
	}
	// One whole session on the wire: hello, snapshot, deltas, cutover.
	stream := frameBytes(f, mHello, helloPayload(1, "mig-f", "chip-0", "chip-1"))
	stream = append(stream, frameBytes(f, mSnapBegin, snapBeginPayload(cutSeq, uint64(len(snap)), uint32(count)))...)
	stream = append(stream, frameBytes(f, mSnapChunk, snap)...)
	stream = append(stream, frameBytes(f, mSnapEnd, nil)...)
	for _, d := range deltas {
		stream = append(stream, d...)
	}
	stream = append(stream, frameBytes(f, mCutover, u64Payload(cutSeq))...)
	f.Add(stream)
	// Degenerate inputs.
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add([]byte{mDelta, 0xff, 0xff, 0xff, 0x7f})
}

// FuzzRebalanceStream drives the acceptor-side decoding path — frame reader,
// per-type payload decoders, XPR1 snapshot install, and migrated-delta apply
// — with adversarial byte streams.  The contract mirrors the acceptor's
// fail-closed posture: garbage must surface as an error that drops the
// session, never a panic, a giant allocation, or arriving chips installed
// from a snapshot that did not validate.
func FuzzRebalanceStream(f *testing.F) {
	seedMigrationFrames(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		reg, err := registry.Open("", registry.Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		defer reg.Close()
		br := bufio.NewReader(bytes.NewReader(data))
		migID, lo, hi := "mig-f", "chip-0", "chip-1"
		var snap []byte
		var snapLen uint64
		for {
			typ, payload, err := repl.ReadFrame(br)
			if err != nil {
				return // torn or corrupt stream: the session would drop here
			}
			switch typ {
			case mHello:
				if _, _, m, l, h, err := decodeHello(payload); err == nil && m != "" {
					migID, lo, hi = m, l, h
				}
			case mHelloAck:
				_, _, _ = decodeHelloAck(payload)
			case mSnapBegin:
				_, snapLen, _, _ = decodeSnapBegin(payload)
				snap = nil
			case mSnapChunk:
				if uint64(len(snap)+len(payload)) > snapLen || len(snap)+len(payload) > 1<<22 {
					return
				}
				snap = append(snap, payload...)
			case mSnapEnd:
				_, _ = reg.InstallMigrating(migID, lo, hi, snap) // must not panic, corrupt or not
			case mDelta:
				_, rectype, rec, err := decodeDelta(payload)
				if err != nil {
					return
				}
				_, _ = reg.ApplyMigrated(migID, rectype, rec)
			case mDeltaAck, mCutoverAck:
				_, _ = decodeU64(payload, "ack")
			case mCutover:
				if _, err := decodeU64(payload, "cutover"); err != nil {
					return
				}
				_, _ = reg.CutoverTarget(migID, reg.OwnershipEpoch()+1)
			case mAbort:
				_ = reg.AbortMigrationIn(migID)
			case mError:
				_, _ = decodeError(payload)
			}
		}
	})
}
