package registry

import (
	"bytes"
	"testing"

	"xorpuf/internal/core"
	"xorpuf/internal/health"
	"xorpuf/internal/rng"
)

// fuzzModel builds a tiny but well-formed chip model for seed payloads.
func fuzzModel() *core.ChipModel {
	return &core.ChipModel{
		Beta0: 1, Beta1: 1,
		PUFs: []*core.PUFModel{
			{Theta: []float64{0.1, -0.2, 0.3}, Thr0: 0.4, Thr1: 0.6},
			{Theta: []float64{-0.3, 0.2, -0.1}, Thr0: 0.4, Thr1: 0.6},
		},
	}
}

// FuzzWALRecord drives the journal replay decoder with adversarial record
// payloads of every type.  The invariant is the recovery contract: a corrupt
// record must surface as an error (or be a harmless no-op for unknown IDs),
// never as a panic or a giant allocation.
func FuzzWALRecord(f *testing.F) {
	model := fuzzModel()
	f.Add(recRegister, registerPayload("chip-0", 64, model))
	f.Add(recIssued, appendU64(appendU32(appendString(nil, "chip-0"), 2), 7))
	f.Add(recAbuse, abusePayload("chip-0", 3, true))
	f.Add(recDeregister, appendString(nil, "chip-0"))
	f.Add(recHealth, healthPayload("chip-0", health.TrackerState{State: health.Degraded, FailEWMA: 0.5}))
	f.Add(recReenroll, registerPayload("chip-0", 64, model))
	f.Add(byte(0), []byte{})
	f.Add(byte(255), bytes.Repeat([]byte{0xff}, 64))
	// A register record claiming an enormous geometry on a short payload.
	f.Add(recRegister, append(appendString(nil, "x"), 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		reg, err := Open("", Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer reg.Close()
		// Pre-register one chip so ID-matching record types exercise their
		// mutate-an-entry paths, not just the unknown-ID early returns.
		if err := reg.Register("chip-0", fuzzModel(), 64); err != nil {
			t.Fatal(err)
		}
		_ = reg.applyRecord(typ, payload) // must not panic
	})
}

// FuzzSelectorState drives the selector-state decoder, then checks that any
// state it accepts round-trips through a live Selector: import → export must
// preserve the used-challenge set (deduplicated and sorted) and the budget,
// because that set IS the never-reuse guarantee.
func FuzzSelectorState(f *testing.F) {
	f.Add(appendSelectorState(nil, core.SelectorState{Budget: 10, Used: []uint64{1, 2, 99}}))
	f.Add(appendSelectorState(nil, core.SelectorState{}))
	// Claimed count far beyond the payload.
	f.Add([]byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := &reader{b: data}
		st := rd.readSelectorState()
		if rd.err != nil {
			return
		}
		sel := core.NewSelector(fuzzModel(), rng.New(1))
		sel.ImportState(st)
		out := sel.ExportState()
		want := make(map[uint64]struct{}, len(st.Used))
		for _, w := range st.Used {
			want[w] = struct{}{}
		}
		if len(out.Used) != len(want) {
			t.Fatalf("round-trip lost words: imported %d distinct, exported %d", len(want), len(out.Used))
		}
		for _, w := range out.Used {
			if _, ok := want[w]; !ok {
				t.Fatalf("exported word %d was never imported", w)
			}
		}
		wantBudget := st.Budget
		if wantBudget < 0 {
			wantBudget = 0
		}
		if out.Budget != wantBudget {
			t.Fatalf("budget %d round-tripped to %d", st.Budget, out.Budget)
		}
	})
}
