package repl

import (
	"bufio"
	"bytes"
	"testing"

	"xorpuf/internal/registry"
)

// seedFrames builds a corpus of well-formed wire traffic: a full session's
// worth of handshake, snapshot, record, and control frames, with the record
// and snapshot bytes captured from a live registry so the decoders see
// realistic payloads, not just hand-rolled ones.
func seedFrames(f *testing.F) {
	reg, err := registry.Open("", registry.Options{Seed: 5})
	if err != nil {
		f.Fatal(err)
	}
	defer reg.Close()
	var records [][]byte
	reg.SetAppendObserver(func(seq uint64, typ byte, payload []byte) {
		records = append(records, encodeFrame(fRecord, recordPayload(seq, typ, payload)))
	})
	if err := reg.Register("chip-0", syntheticModel(2, 16), 64); err != nil {
		f.Fatal(err)
	}
	e := reg.Lookup("chip-0")
	if _, _, err := e.Issue(3, 0); err != nil {
		f.Fatal(err)
	}
	e.Verdict(false, 2)
	reg.Deregister("chip-0")
	snap, snapSeq, err := reg.SnapshotBytes()
	if err != nil {
		f.Fatal(err)
	}

	f.Add(encodeFrame(fHello, helloPayload(0)))
	f.Add(encodeFrame(fSnapBegin, snapBeginPayload(snapSeq, uint64(len(snap)), 4096)))
	f.Add(encodeFrame(fSnapChunk, snap))
	f.Add(encodeFrame(fSnapEnd, nil))
	f.Add(encodeFrame(fAck, u64Payload(7)))
	f.Add(encodeFrame(fHeartbeat, heartbeatPayload(9, 1<<20)))
	f.Add(encodeFrame(fError, errorPayload(CodeApply, "wal append failed")))
	for _, rec := range records {
		f.Add(rec)
	}
	// One whole session on the wire: snapshot phase then the record tail.
	stream := encodeFrame(fSnapBegin, snapBeginPayload(0, uint64(len(snap)), 0))
	stream = append(stream, encodeFrame(fSnapChunk, snap)...)
	stream = append(stream, encodeFrame(fSnapEnd, nil)...)
	for _, rec := range records {
		stream = append(stream, rec...)
	}
	f.Add(stream)
	// Degenerate inputs.
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add([]byte{fRecord, 0xff, 0xff, 0xff, 0x7f})
}

// FuzzReplStream drives the replication stream decoder — frame reader,
// per-type payload decoders, snapshot install, and replicated record apply —
// with adversarial byte streams.  The invariant mirrors the follower's
// degrade-never-fork contract: garbage must surface as an error (dropping
// the link), never as a panic, a giant allocation, or a state change that
// skips sequence numbers.
func FuzzReplStream(f *testing.F) {
	seedFrames(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		reg, err := registry.Open("", registry.Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		defer reg.Close()
		br := bufio.NewReader(bytes.NewReader(data))
		var snap []byte
		var snapLen uint64
		for {
			typ, payload, err := readFrame(br)
			if err != nil {
				return // torn or corrupt stream: the link would drop here
			}
			switch typ {
			case fHello:
				_, _, _ = decodeHello(payload)
			case fSnapBegin:
				_, snapLen, _, _ = decodeSnapBegin(payload)
				snap = nil
			case fSnapChunk:
				if uint64(len(snap)+len(payload)) > snapLen || len(snap)+len(payload) > 1<<22 {
					return
				}
				snap = append(snap, payload...)
			case fSnapEnd:
				_ = reg.InstallSnapshot(snap) // must not panic, corrupt or not
			case fRecord:
				seq, rectype, rec, err := decodeRecord(payload)
				if err != nil {
					return
				}
				before := reg.Seq()
				if aerr := reg.ApplyReplicated(seq, rectype, rec); aerr != nil {
					if got := reg.Seq(); got != before {
						t.Fatalf("failed apply moved seq %d → %d", before, got)
					}
					return
				}
				if got := reg.Seq(); got != before+1 {
					t.Fatalf("apply moved seq %d → %d, want +1", before, got)
				}
			case fAck:
				_, _ = decodeU64(payload, "ack")
			case fHeartbeat:
				_, _, _ = decodeHeartbeat(payload)
			case fError:
				_, _ = decodeError(payload)
			}
		}
	})
}
