package repl

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/faultnet"
	"xorpuf/internal/registry"
	"xorpuf/internal/telemetry/dtrace"
)

// syntheticModel mirrors the registry tests' cheap deterministic model:
// every challenge is predicted Stable0, so selection never stalls.
func syntheticModel(width, stages int) *core.ChipModel {
	m := &core.ChipModel{PUFs: make([]*core.PUFModel, width), Beta0: 1, Beta1: 1}
	for i := range m.PUFs {
		p := &core.PUFModel{Theta: make([]float64, stages+1), Thr0: 0.4, Thr1: 0.6}
		for j := range p.Theta {
			p.Theta[j] = float64((i+1)*(j+1)) * 1e-6
		}
		m.PUFs[i] = p
	}
	return m
}

const testRegSeed = 99

func openReg(t *testing.T, dir string) *registry.Registry {
	t.Helper()
	reg, err := registry.Open(dir, registry.Options{Seed: testRegSeed})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// cluster is a primary + one follower wired over a (possibly faulty) local
// TCP listener.
type cluster struct {
	primReg, follReg *registry.Registry
	prim             *Primary
	foll             *Follower
	cancel           context.CancelFunc
	runDone          chan struct{}
}

func startCluster(t *testing.T, primReg, follReg *registry.Registry, pcfg PrimaryConfig, fault *faultnet.Config) *cluster {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	prim := NewPrimary(primReg, pcfg)
	var serveLn net.Listener = ln
	fcfg := FollowerConfig{ReconnectMin: 10 * time.Millisecond, ReconnectMax: 100 * time.Millisecond}
	if fault != nil {
		serveLn = faultnet.WrapListener(ln, *fault)
	}
	go prim.Serve(serveLn) //nolint:errcheck
	foll := NewFollower(follReg, ln.Addr().String(), fcfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		foll.Run(ctx)
	}()
	c := &cluster{primReg: primReg, follReg: follReg, prim: prim, foll: foll,
		cancel: cancel, runDone: done}
	t.Cleanup(func() {
		cancel()
		prim.Close()
		<-done
	})
	return c
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSnapshotBootstrapAndStream(t *testing.T) {
	primReg := openReg(t, "")
	follReg := openReg(t, "")
	defer primReg.Close()
	defer follReg.Close()

	// Pre-connect history exercises the snapshot path.
	for _, id := range []string{"chip-a", "chip-b", "chip-c"} {
		if err := primReg.Register(id, syntheticModel(2, 16), 0); err != nil {
			t.Fatal(err)
		}
	}
	c := startCluster(t, primReg, follReg, PrimaryConfig{Quorum: 1, Strict: true}, nil)

	waitFor(t, "snapshot bootstrap", func() bool { return c.follReg.Len() == 3 })

	// Post-connect mutations exercise the record stream, and strict quorum 1
	// means Issue only returns after the follower durably applied the burn.
	if err := primReg.Register("chip-d", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	e := primReg.Lookup("chip-a")
	cs, _, err := e.Issue(5, 0)
	if err != nil || len(cs) != 5 {
		t.Fatalf("Issue under strict quorum: %d challenges, %v", len(cs), err)
	}
	// The ack the issuance waited on covers exactly this burn: the follower
	// must already account for all 5 words, with no further waiting.
	fe := follReg.Lookup("chip-a")
	if fe == nil {
		t.Fatal("chip-a missing on follower")
	}
	if got := fe.Status().Issued; got != 5 {
		t.Fatalf("follower sees %d issued challenges at ack time, want 5", got)
	}
	waitFor(t, "register record", func() bool { return follReg.Lookup("chip-d") != nil })

	if st := c.foll.Status(); st.State != StateStreaming {
		t.Fatalf("follower state %s, want %s", st.State, StateStreaming)
	}
	if st := c.prim.Status(); len(st.Followers) != 1 || st.Followers[0].Acked == 0 {
		t.Fatalf("primary status %+v, want one acked follower", st)
	}
}

func TestStrictQuorumRefusesWithoutFollowers(t *testing.T) {
	reg := openReg(t, "")
	defer reg.Close()
	prim := NewPrimary(reg, PrimaryConfig{Quorum: 1, Strict: true, AckTimeout: 50 * time.Millisecond})
	defer prim.Close()
	if err := reg.Register("chip-a", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	e := reg.Lookup("chip-a")
	before := e.Status().Issued
	if _, _, err := e.Issue(3, 0); err == nil {
		t.Fatal("Issue succeeded with strict quorum and no followers")
	}
	// Conservative failure: the challenges burn even though none were
	// released, so a retry can never hand out what the first call drew.
	if got := e.Status().Issued; got != before+3 {
		t.Fatalf("burned %d challenges across refused issuance, want %d", got-before, 3)
	}
}

func TestSemiSyncServesStandalone(t *testing.T) {
	reg := openReg(t, "")
	defer reg.Close()
	prim := NewPrimary(reg, PrimaryConfig{Quorum: 1})
	defer prim.Close()
	if err := reg.Register("chip-a", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Lookup("chip-a").Issue(3, 0); err != nil {
		t.Fatalf("semi-sync standalone issuance failed: %v", err)
	}
}

func TestFaultyLinkDegradesNeverForks(t *testing.T) {
	primReg := openReg(t, "")
	follReg := openReg(t, "")
	defer primReg.Close()
	defer follReg.Close()

	for _, id := range []string{"chip-a", "chip-b"} {
		if err := primReg.Register(id, syntheticModel(2, 16), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Resets, stalls, corruption, and partial writes on every link the
	// follower ever gets; the follower must reconnect through it and end
	// sequence-exact, never applying a record out of order.
	c := startCluster(t, primReg, follReg, PrimaryConfig{Quorum: 0}, &faultnet.Config{
		Seed: 7, ResetProb: 0.01, CorruptProb: 0.01, PartialWriteProb: 0.005,
		StallProb: 0.002, Stall: 5 * time.Millisecond,
	})

	for i := 0; i < 40; i++ {
		id := []string{"chip-a", "chip-b"}[i%2]
		if _, _, err := primReg.Lookup(id).Issue(2, 0); err != nil {
			t.Fatalf("issue %d: %v", i, err)
		}
	}
	target := primReg.Seq()
	waitFor(t, "follower convergence through faults", func() bool {
		return follReg.Seq() == target
	})
	for _, id := range []string{"chip-a", "chip-b"} {
		p, f := primReg.Lookup(id).Status(), follReg.Lookup(id).Status()
		if p.Issued != f.Issued {
			t.Fatalf("%s: primary %d issued, follower %d — log forked", id, p.Issued, f.Issued)
		}
	}
	if c.foll.Status().Disconnects == 0 {
		t.Skip("fault schedule produced no disconnect; seeds changed?")
	}
}

func TestPromoteNeverReusesChallenge(t *testing.T) {
	primReg := openReg(t, "")
	follReg := openReg(t, "")
	defer primReg.Close()
	defer follReg.Close()
	if err := primReg.Register("chip-a", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, primReg, follReg, PrimaryConfig{Quorum: 1, Strict: true}, nil)
	waitFor(t, "follower link", func() bool { return c.foll.Status().State == StateStreaming })

	issued := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		cs, _, err := primReg.Lookup("chip-a").Issue(4, 0)
		if err != nil {
			t.Fatalf("primary issue %d: %v", i, err)
		}
		for _, ch := range cs {
			issued[ch.Word()] = true
		}
	}

	// Primary dies; follower is promoted and issues for the same chip.
	c.prim.Close()
	c.cancel()
	<-c.runDone
	seq := c.foll.Promote()
	if seq != primReg.Seq() {
		t.Fatalf("promoted at seq %d, primary was at %d", seq, primReg.Seq())
	}
	for i := 0; i < 10; i++ {
		cs, _, err := follReg.Lookup("chip-a").Issue(4, 0)
		if err != nil {
			t.Fatalf("promoted issue %d: %v", i, err)
		}
		for _, ch := range cs {
			if issued[ch.Word()] {
				t.Fatalf("challenge %#x issued twice across failover", ch.Word())
			}
			issued[ch.Word()] = true
		}
	}
	if got := c.foll.Status().State; got != StatePromoted {
		t.Fatalf("follower state %s, want %s", got, StatePromoted)
	}
}

func TestDivergedFollowerRefused(t *testing.T) {
	primReg := openReg(t, "")
	follReg := openReg(t, "")
	defer primReg.Close()
	defer follReg.Close()
	// The "follower" has local history the primary never saw.
	if err := follReg.Register("rogue", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := follReg.Lookup("rogue").Issue(3, 0); err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, primReg, follReg, PrimaryConfig{}, nil)
	waitFor(t, "diverged refusal", func() bool {
		st := c.foll.Status()
		return st.State == StateDegraded && strings.Contains(st.LastError, CodeDiverged)
	})
	if follReg.Lookup("rogue") == nil {
		t.Fatal("refused follower lost local state")
	}
}

func TestApplyFailureNotAcked(t *testing.T) {
	primReg := openReg(t, "")
	follReg := openReg(t, "")
	defer primReg.Close()
	if err := primReg.Register("chip-a", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, primReg, follReg, PrimaryConfig{}, nil)
	waitFor(t, "bootstrap", func() bool { return follReg.Len() == 1 })

	// Close the follower's registry out from under it: the next apply must
	// fail, degrade the follower, and never be acknowledged.
	follReg.Close()
	if _, _, err := primReg.Lookup("chip-a").Issue(2, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "degraded follower", func() bool {
		st := c.foll.Status()
		return st.State == StateDegraded && st.LastError != ""
	})
	st := c.foll.Status()
	if !strings.Contains(st.LastError, CodeApply) && !strings.Contains(st.LastError, "closed") {
		t.Fatalf("degraded with %q, want a structured apply error", st.LastError)
	}
	if st.AppliedSeq >= primReg.Seq() {
		t.Fatalf("follower claims applied seq %d ≥ primary %d after failed apply",
			st.AppliedSeq, primReg.Seq())
	}
}

func TestSeqGapIsTerminal(t *testing.T) {
	reg := openReg(t, "")
	defer reg.Close()
	// A record that skips ahead must be refused with ErrSeqGap.
	err := reg.ApplyReplicated(5, 4 /* recDeregister */, append([]byte{6, 0}, "chip-a"...))
	if !errors.Is(err, registry.ErrSeqGap) {
		t.Fatalf("gap apply returned %v, want ErrSeqGap", err)
	}
}

func TestTraceMarkSpansCrossProcesses(t *testing.T) {
	primReg := openReg(t, "")
	follReg := openReg(t, "")
	defer primReg.Close()
	defer follReg.Close()
	if err := primReg.Register("chip-a", syntheticModel(2, 16), 0); err != nil {
		t.Fatal(err)
	}
	c := startCluster(t, primReg, follReg, PrimaryConfig{Quorum: 1, Strict: true}, nil)
	waitFor(t, "snapshot bootstrap", func() bool { return c.follReg.Len() == 1 })

	tid := dtrace.NewTraceID()
	root := dtrace.Context{Trace: tid, Span: dtrace.NewSpanID()}
	ctx := dtrace.Inject(context.Background(), root)
	e := primReg.Lookup("chip-a")
	if _, _, err := e.IssueCtx(ctx, 3, 0); err != nil {
		t.Fatalf("traced Issue under strict quorum: %v", err)
	}

	// The quorum-wait span is recorded synchronously by the primary; the
	// follower's apply-ack span arrives via the best-effort fTraceMark frame.
	var wait, ack *dtrace.Span
	waitFor(t, "quorum_wait and apply_ack spans", func() bool {
		wait, ack = nil, nil
		for _, v := range dtrace.Default.ByTrace(tid) {
			v := v
			switch v.Name {
			case "repl.quorum_wait":
				wait = &v
			case "repl.apply_ack":
				ack = &v
			}
		}
		return wait != nil && ack != nil
	})
	if wait.Parent != root.Span {
		t.Fatalf("quorum_wait parent %s, want issuing span %s", wait.Parent, root.Span)
	}
	// The follower span nests under the quorum wait, so a collector renders
	// gateway → shard → follower as one tree.
	if ack.Parent != wait.ID {
		t.Fatalf("apply_ack parent %s, want quorum_wait span %s", ack.Parent, wait.ID)
	}
	if ack.Attrs["seq"] != wait.Attrs["seq"] {
		t.Fatalf("seq attrs diverge: ack %q, wait %q", ack.Attrs["seq"], wait.Attrs["seq"])
	}

	// An untraced issuance must not grow the trace's span set.
	n := len(dtrace.Default.ByTrace(tid))
	if _, _, err := e.Issue(2, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := len(dtrace.Default.ByTrace(tid)); got != n {
		t.Fatalf("untraced issuance added spans: %d -> %d", n, got)
	}
}
