package repl

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strconv"
	"sync"
	"time"

	"xorpuf/internal/registry"
	"xorpuf/internal/telemetry/dtrace"
)

// State is a follower's replication state.
type State string

const (
	StateConnecting State = "connecting" // dialing or handshaking
	StateSyncing    State = "syncing"    // installing a bootstrap snapshot
	StateStreaming  State = "streaming"  // tailing the primary's log
	StateDegraded   State = "degraded"   // link lost or terminal error; will reconnect
	StatePromoted   State = "promoted"   // replication stopped; serving as primary
)

// FollowerConfig tunes a replication follower.
type FollowerConfig struct {
	// Dial opens the link to the primary (default net.Dialer; tests inject
	// a faultnet dialer here).
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// ReconnectMin/Max bound the exponential reconnect backoff
	// (defaults 100ms / 5s).
	ReconnectMin, ReconnectMax time.Duration
	// IOTimeout bounds handshake and snapshot frame reads (default 10s).
	IOTimeout time.Duration
	// IdleTimeout is the longest silence tolerated on a streaming link
	// before it is declared dead; the primary heartbeats every 500ms by
	// default (default 10s).
	IdleTimeout time.Duration
}

func (c FollowerConfig) normalized() FollowerConfig {
	if c.Dial == nil {
		var d net.Dialer
		c.Dial = d.DialContext
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = 100 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 5 * time.Second
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 10 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Second
	}
	return c
}

// FollowerStatus is a point-in-time summary for /healthz and /repl.
type FollowerStatus struct {
	State       State  `json:"state"`
	Primary     string `json:"primary"`
	AppliedSeq  uint64 `json:"applied_seq"`
	PrimarySeq  uint64 `json:"primary_seq"`
	LagRecords  uint64 `json:"lag_records"`
	LagBytes    uint64 `json:"lag_bytes"`
	Disconnects uint64 `json:"disconnects"`
	LastError   string `json:"last_error,omitempty"`
}

// Follower tails a primary's log into a local registry.  The local registry
// must take no other mutations while the follower runs; Promote stops
// replication and hands the registry over for serving.
type Follower struct {
	reg  *registry.Registry
	addr string
	cfg  FollowerConfig

	mu          sync.Mutex
	state       State
	lastErr     error
	appliedSeq  uint64
	primarySeq  uint64
	appliedByte uint64 // primary's byte counter at our applied position
	primaryByte uint64
	disconnects uint64
	promoted    bool
	cancel      context.CancelFunc
	done        chan struct{}
	started     bool
}

// NewFollower prepares a follower replicating from the primary's repl
// address into reg.  Call Run to start.
func NewFollower(reg *registry.Registry, addr string, cfg FollowerConfig) *Follower {
	return &Follower{reg: reg, addr: addr, cfg: cfg.normalized(),
		state: StateConnecting, done: make(chan struct{})}
}

// Run replicates until ctx is canceled or Promote is called.  Link loss and
// terminal link errors degrade the follower (visible in Status and
// telemetry) and trigger reconnection with backoff; they never stop Run.
func (f *Follower) Run(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	f.mu.Lock()
	if f.started || f.promoted {
		f.mu.Unlock()
		cancel()
		return
	}
	f.started = true
	f.cancel = cancel
	f.mu.Unlock()
	defer close(f.done)

	backoff := f.cfg.ReconnectMin
	for {
		if ctx.Err() != nil {
			return
		}
		err := f.session(ctx)
		if ctx.Err() != nil {
			return
		}
		f.degrade(err)
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.cfg.ReconnectMax {
			backoff = f.cfg.ReconnectMax
		}
	}
}

func (f *Follower) degrade(err error) {
	f.mu.Lock()
	f.state = StateDegraded
	f.lastErr = err
	f.disconnects++
	f.mu.Unlock()
	replDegraded.Inc()
}

func (f *Follower) setState(s State) {
	f.mu.Lock()
	f.state = s
	f.mu.Unlock()
}

// session runs one replication link end to end; any returned error is
// terminal for the link but not for the follower.
func (f *Follower) session(ctx context.Context) error {
	f.setState(StateConnecting)
	dctx, dcancel := context.WithTimeout(ctx, f.cfg.IOTimeout)
	conn, err := f.cfg.Dial(dctx, "tcp", f.addr)
	dcancel()
	if err != nil {
		return err
	}
	defer conn.Close()
	// A canceled context (shutdown or promotion) must unblock any read.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	br := bufio.NewReader(conn)
	conn.SetDeadline(time.Now().Add(f.cfg.IOTimeout))
	if err := writeFrame(conn, fHello, helloPayload(f.reg.Seq())); err != nil {
		return err
	}

	// Snapshot phase: always announced, possibly empty.
	f.setState(StateSyncing)
	typ, payload, err := readFrame(br)
	if err != nil {
		return err
	}
	if typ == fError {
		if le, derr := decodeError(payload); derr == nil {
			return le
		}
		return linkErrf(CodeProto, "undecodable error frame")
	}
	if typ != fSnapBegin {
		return linkErrf(CodeProto, "want snap-begin, got frame type %d", typ)
	}
	snapSeq, dataLen, baseBytes, err := decodeSnapBegin(payload)
	if err != nil {
		return err
	}
	var snap []byte
	if dataLen > 0 {
		snap = make([]byte, 0, dataLen)
	}
	for {
		conn.SetDeadline(time.Now().Add(f.cfg.IOTimeout))
		typ, payload, err := readFrame(br)
		if err != nil {
			return err
		}
		if typ == fSnapEnd {
			break
		}
		if typ != fSnapChunk {
			return linkErrf(CodeProto, "want snap-chunk, got frame type %d", typ)
		}
		if uint64(len(snap)+len(payload)) > dataLen {
			return linkErrf(CodeProto, "snapshot overruns announced length %d", dataLen)
		}
		snap = append(snap, payload...)
	}
	applied := f.reg.Seq()
	if len(snap) > 0 {
		if uint64(len(snap)) != dataLen {
			return linkErrf(CodeProto, "snapshot %d bytes, announced %d", len(snap), dataLen)
		}
		if err := f.reg.InstallSnapshot(snap); err != nil {
			f.sendError(conn, CodeApply, err)
			return linkErrf(CodeApply, "install snapshot: %v", err)
		}
		applied = snapSeq
		replSnapshots.Inc()
	}

	f.mu.Lock()
	f.appliedSeq = applied
	f.appliedByte = baseBytes
	if f.primarySeq < snapSeq {
		f.primarySeq = snapSeq
	}
	if f.primaryByte < baseBytes {
		f.primaryByte = baseBytes
	}
	f.state = StateStreaming
	f.mu.Unlock()
	f.publishLag()
	conn.SetDeadline(time.Now().Add(f.cfg.IdleTimeout))
	if err := writeFrame(conn, fAck, u64Payload(applied)); err != nil {
		return err
	}

	// Stream phase: apply, then acknowledge — never the other way around.
	// lastApply* remember the most recent record's apply timing so a trace
	// marker arriving right behind it (markers ship after their record on
	// the same ordered link) can reconstruct the apply+ack span.
	var lastApplyStart time.Time
	var lastApplySeconds float64
	for {
		conn.SetDeadline(time.Now().Add(f.cfg.IdleTimeout))
		typ, payload, err := readFrame(br)
		if err != nil {
			return err
		}
		switch typ {
		case fRecord:
			seq, rectype, rec, err := decodeRecord(payload)
			if err != nil {
				return err
			}
			if seq > applied {
				start := time.Now()
				err := f.reg.ApplyReplicated(seq, rectype, rec)
				replApplySeconds.ObserveSince(start)
				lastApplyStart = start
				lastApplySeconds = time.Since(start).Seconds()
				if err != nil {
					// Terminal: a WAL append/fsync failure or sequence gap
					// means this record is not durably ours.  Degrade and
					// drop the link without acknowledging it.
					code := CodeApply
					if errors.Is(err, registry.ErrSeqGap) {
						code = CodeSeqGap
					}
					f.sendError(conn, code, err)
					return linkErrf(code, "apply seq %d: %v", seq, err)
				}
				applied = seq
				replApplied.Inc()
				f.mu.Lock()
				f.appliedSeq = applied
				f.appliedByte += uint64(len(payload)) + 9 // frame header + crc
				if f.primarySeq < seq {
					f.primarySeq = seq
				}
				f.mu.Unlock()
			}
			if err := writeFrame(conn, fAck, u64Payload(applied)); err != nil {
				return err
			}
		case fHeartbeat:
			pseq, pbytes, err := decodeHeartbeat(payload)
			if err != nil {
				return err
			}
			f.mu.Lock()
			if f.primarySeq < pseq {
				f.primarySeq = pseq
			}
			if f.primaryByte < pbytes {
				f.primaryByte = pbytes
			}
			f.mu.Unlock()
			if err := writeFrame(conn, fAck, u64Payload(applied)); err != nil {
				return err
			}
		case fTraceMark:
			// Observability only, tolerant end to end: a malformed marker
			// or unparseable context is dropped, never a link error.  The
			// marker ships behind its record on the same ordered link, so
			// by the time it arrives the record is applied (or was covered
			// by the snapshot) and the follower can record its leg of the
			// distributed trace in its own process ring.
			seq, tctx, derr := decodeTraceMark(payload)
			if derr != nil || seq > applied {
				break
			}
			if tc, ok := dtrace.ParseContext(tctx); ok {
				start, secs := lastApplyStart, lastApplySeconds
				if start.IsZero() {
					start, secs = time.Now(), 0 // record predates this link (snapshot-covered)
				}
				dtrace.Default.Record(dtrace.Span{
					Trace:   tc.Trace,
					ID:      dtrace.NewSpanID(),
					Parent:  tc.Span,
					Name:    "repl.apply_ack",
					Start:   start,
					Seconds: secs,
					Status:  "ok",
					Attrs: map[string]string{
						"seq":     strconv.FormatUint(seq, 10),
						"primary": f.addr,
					},
				})
			}
		case fError:
			if le, derr := decodeError(payload); derr == nil {
				return le
			}
			return linkErrf(CodeProto, "undecodable error frame")
		default:
			return linkErrf(CodeProto, "unexpected frame type %d", typ)
		}
		f.publishLag()
	}
}

func (f *Follower) sendError(conn net.Conn, code string, err error) {
	conn.SetWriteDeadline(time.Now().Add(f.cfg.IOTimeout))
	writeFrame(conn, fError, errorPayload(code, err.Error())) //nolint:errcheck
}

// publishLag refreshes the replication-lag gauges from the follower's view.
func (f *Follower) publishLag() {
	f.mu.Lock()
	var recs, bytes uint64
	if f.primarySeq > f.appliedSeq {
		recs = f.primarySeq - f.appliedSeq
	}
	if f.primaryByte > f.appliedByte {
		bytes = f.primaryByte - f.appliedByte
	}
	f.mu.Unlock()
	replLagRecords.Set(int64(recs))
	replLagBytes.Set(int64(bytes))
}

// Status reports the follower's replication state.
func (f *Follower) Status() FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStatus{
		State: f.state, Primary: f.addr,
		AppliedSeq: f.appliedSeq, PrimarySeq: f.primarySeq,
		Disconnects: f.disconnects,
	}
	if f.primarySeq > f.appliedSeq {
		st.LagRecords = f.primarySeq - f.appliedSeq
	}
	if f.primaryByte > f.appliedByte {
		st.LagBytes = f.primaryByte - f.appliedByte
	}
	if f.lastErr != nil {
		st.LastError = f.lastErr.Error()
	}
	return st
}

// Promote stops replication and returns the sequence number of the last
// locally durable record.  The registry is then a sequence-exact copy of
// everything it acknowledged and is ready to serve as the new primary: every
// challenge the old primary released under quorum is already burned here.
// Promote is idempotent; it waits for the replication loop to fully stop.
func (f *Follower) Promote() uint64 {
	f.mu.Lock()
	already := f.promoted
	f.promoted = true
	cancel, started := f.cancel, f.started
	f.mu.Unlock()
	if !already && cancel != nil {
		cancel()
	}
	if started {
		<-f.done
	}
	f.mu.Lock()
	f.state = StatePromoted
	f.mu.Unlock()
	replLagRecords.Set(0)
	replLagBytes.Set(0)
	return f.reg.Seq()
}
