// Package repl replicates a registry by WAL shipping: a primary streams
// every journaled record to connected followers over framed TCP, new or
// lagging followers bootstrap from a full XPS2 snapshot and then tail the
// log, and challenge issuance can be gated on follower acknowledgements so
// the paper's never-reuse invariant holds across primary loss, not just
// primary restart.
//
// Wire format (one TCP connection per follower, follower dials):
//
//	frame: type(1) | len(u32 LE) | payload | crc32(IEEE, over type..payload)
//
//	fHello     f→p  version(1) lastSeq(u64)
//	fSnapBegin p→f  snapSeq(u64) dataLen(u64) walBytes(u64)
//	fSnapChunk p→f  raw snapshot bytes
//	fSnapEnd   p→f  (empty)
//	fRecord    p→f  seq(u64) rectype(1) payload (one WAL record)
//	fAck       f→p  appliedSeq(u64)
//	fHeartbeat p→f  primarySeq(u64) walBytes(u64)
//	fError     ↔    code(str16) message(rest)
//	fTraceMark p→f  seq(u64) trace-context(rest, see internal/telemetry/dtrace)
//
// fTraceMark is pure observability: it tags an already-shipped record with
// the distributed-trace context of the session that burned it, so the
// follower can record its apply+ack as a span in its own process ring.  A
// marker is best-effort end to end — dropped under backpressure, ignored
// when malformed — and is never acknowledged; trace loss is acceptable,
// log divergence is not.
//
// Every session starts hello → snapshot (dataLen 0 when the follower is
// already at the cut) → record stream.  The follower acknowledges a record
// only after Registry.ApplyReplicated has durably journaled and applied it;
// anything that cannot be applied exactly — a sequence gap, a corrupt frame,
// a local WAL failure — is terminal for the link: the follower degrades and
// reconnects (re-bootstrapping from a snapshot), it never forks the log.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const protocolVersion = 1

const (
	fHello     byte = 1
	fSnapBegin byte = 2
	fSnapChunk byte = 3
	fSnapEnd   byte = 4
	fRecord    byte = 5
	fAck       byte = 6
	fHeartbeat byte = 7
	fError     byte = 8
	fTraceMark byte = 9
)

const (
	// maxFramePayload bounds one frame so a corrupted length field cannot
	// trigger a giant allocation: the registry caps WAL record payloads at
	// 1<<26, plus the seq/type prefix of an fRecord frame.
	maxFramePayload = 1<<26 + 16

	// snapChunkSize is how much snapshot data rides in one fSnapChunk.
	snapChunkSize = 256 << 10

	// maxSnapshotBytes bounds an advertised snapshot transfer.
	maxSnapshotBytes = 1 << 32
)

// Link error codes carried by fError frames and LinkError values.
const (
	CodeSeqGap   = "seq_gap"  // record does not extend the local log
	CodeApply    = "apply"    // local journal/apply failure (WAL append, fsync, decode)
	CodeProto    = "proto"    // malformed or unexpected frame
	CodeShutdown = "shutdown" // orderly close of the other end
	CodeOverflow = "overflow" // follower fell behind the primary's send buffer
	CodeDiverged = "diverged" // follower log is ahead of the primary's
)

// LinkError is the structured, terminal error that ends a replication
// session.  The same code travels in the fError frame so the peer can
// attribute the drop.
type LinkError struct {
	Code string
	Msg  string
}

func (e *LinkError) Error() string { return "repl: " + e.Code + ": " + e.Msg }

func linkErrf(code, format string, args ...interface{}) *LinkError {
	return &LinkError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// encodeFrame builds one wire frame.
func encodeFrame(typ byte, payload []byte) []byte {
	buf := make([]byte, 0, 5+len(payload)+4)
	buf = append(buf, typ)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[:len(buf)]))
}

// writeFrame sends one frame as a single write.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	_, err := w.Write(encodeFrame(typ, payload))
	return err
}

// WriteFrame exposes the frame codec to sibling packages that ride the same
// framing — the rebalance engine ships migration traffic in repl frames
// (with its own type space) so there is exactly one framed-TCP dialect to
// fuzz and audit.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	return writeFrame(w, typ, payload)
}

// ReadFrame is the exported read side of WriteFrame.
func ReadFrame(br *bufio.Reader) (byte, []byte, error) {
	return readFrame(br)
}

// readFrame reads and integrity-checks one frame.
func readFrame(br *bufio.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > maxFramePayload {
		return 0, nil, linkErrf(CodeProto, "frame payload %d exceeds cap", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, err
	}
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return 0, nil, err
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if crc != binary.LittleEndian.Uint32(trailer[:]) {
		return 0, nil, linkErrf(CodeProto, "frame checksum mismatch")
	}
	return hdr[0], payload, nil
}

func helloPayload(lastSeq uint64) []byte {
	buf := make([]byte, 0, 9)
	buf = append(buf, protocolVersion)
	return binary.LittleEndian.AppendUint64(buf, lastSeq)
}

func decodeHello(p []byte) (version byte, lastSeq uint64, err error) {
	if len(p) != 9 {
		return 0, 0, linkErrf(CodeProto, "hello payload %d bytes, want 9", len(p))
	}
	return p[0], binary.LittleEndian.Uint64(p[1:]), nil
}

func snapBeginPayload(snapSeq, dataLen, walBytes uint64) []byte {
	buf := make([]byte, 0, 24)
	buf = binary.LittleEndian.AppendUint64(buf, snapSeq)
	buf = binary.LittleEndian.AppendUint64(buf, dataLen)
	return binary.LittleEndian.AppendUint64(buf, walBytes)
}

func decodeSnapBegin(p []byte) (snapSeq, dataLen, walBytes uint64, err error) {
	if len(p) != 24 {
		return 0, 0, 0, linkErrf(CodeProto, "snap-begin payload %d bytes, want 24", len(p))
	}
	snapSeq = binary.LittleEndian.Uint64(p[0:8])
	dataLen = binary.LittleEndian.Uint64(p[8:16])
	walBytes = binary.LittleEndian.Uint64(p[16:24])
	if dataLen > maxSnapshotBytes {
		return 0, 0, 0, linkErrf(CodeProto, "snapshot length %d exceeds cap", dataLen)
	}
	return snapSeq, dataLen, walBytes, nil
}

func recordPayload(seq uint64, rectype byte, rec []byte) []byte {
	buf := make([]byte, 0, 9+len(rec))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, rectype)
	return append(buf, rec...)
}

func decodeRecord(p []byte) (seq uint64, rectype byte, rec []byte, err error) {
	if len(p) < 9 {
		return 0, 0, nil, linkErrf(CodeProto, "record payload %d bytes, want ≥ 9", len(p))
	}
	return binary.LittleEndian.Uint64(p[0:8]), p[8], p[9:], nil
}

func u64Payload(v uint64) []byte {
	return binary.LittleEndian.AppendUint64(make([]byte, 0, 8), v)
}

func decodeU64(p []byte, what string) (uint64, error) {
	if len(p) != 8 {
		return 0, linkErrf(CodeProto, "%s payload %d bytes, want 8", what, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

func heartbeatPayload(primarySeq, walBytes uint64) []byte {
	buf := make([]byte, 0, 16)
	buf = binary.LittleEndian.AppendUint64(buf, primarySeq)
	return binary.LittleEndian.AppendUint64(buf, walBytes)
}

func decodeHeartbeat(p []byte) (primarySeq, walBytes uint64, err error) {
	if len(p) != 16 {
		return 0, 0, linkErrf(CodeProto, "heartbeat payload %d bytes, want 16", len(p))
	}
	return binary.LittleEndian.Uint64(p[0:8]), binary.LittleEndian.Uint64(p[8:16]), nil
}

func traceMarkPayload(seq uint64, traceCtx string) []byte {
	buf := make([]byte, 0, 8+len(traceCtx))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	return append(buf, traceCtx...)
}

func decodeTraceMark(p []byte) (seq uint64, traceCtx string, err error) {
	if len(p) < 8 {
		return 0, "", linkErrf(CodeProto, "trace-mark payload %d bytes, want ≥ 8", len(p))
	}
	return binary.LittleEndian.Uint64(p[0:8]), string(p[8:]), nil
}

func errorPayload(code, msg string) []byte {
	if len(code) > 0xFFFF {
		code = code[:0xFFFF]
	}
	buf := make([]byte, 0, 2+len(code)+len(msg))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(code)))
	buf = append(buf, code...)
	return append(buf, msg...)
}

func decodeError(p []byte) (*LinkError, error) {
	if len(p) < 2 {
		return nil, linkErrf(CodeProto, "error payload %d bytes, want ≥ 2", len(p))
	}
	n := int(binary.LittleEndian.Uint16(p[0:2]))
	if len(p) < 2+n {
		return nil, linkErrf(CodeProto, "error code truncated")
	}
	return &LinkError{Code: string(p[2 : 2+n]), Msg: string(p[2+n:])}, nil
}
