package repl

import "xorpuf/internal/telemetry"

// Replication instruments, captured once from the Default registry.  Like
// the registry's WAL instruments these are process-wide: a process normally
// plays one replication role, and tests that host both roles share series
// whose semantics keep them distinguishable (lag is follower-side, follower
// counts are primary-side).
var (
	// Follower side.
	replLagRecords   = telemetry.Default.Gauge("repl_lag_records")
	replLagBytes     = telemetry.Default.Gauge("repl_lag_bytes")
	replApplySeconds = telemetry.Default.Histogram("repl_apply_seconds", telemetry.LatencyBuckets)
	replApplied      = telemetry.Default.Counter("repl_records_applied_total")
	replSnapshots    = telemetry.Default.Counter("repl_snapshots_installed_total")
	replDegraded     = telemetry.Default.Counter("repl_degraded_total")

	// Primary side.
	replFollowers     = telemetry.Default.Gauge("repl_followers_connected")
	replShipped       = telemetry.Default.Counter("repl_records_shipped_total")
	replLinkDrops     = telemetry.Default.Counter("repl_link_drops_total")
	replCommitSeconds = telemetry.Default.Histogram("repl_commit_wait_seconds", telemetry.LatencyBuckets)
	replUnreplicated  = telemetry.Default.Counter("repl_unreplicated_issues_total")
	replCommitTimeout = telemetry.Default.Counter("repl_commit_timeouts_total")
)
