package repl

import (
	"bufio"
	"context"
	"errors"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xorpuf/internal/registry"
	"xorpuf/internal/telemetry/dtrace"
)

// ErrQuorum is returned (wrapped in a LinkError-free path) by WaitCommitted
// in strict mode when the follower quorum cannot acknowledge an issued
// record: no followers are connected or the ack timeout expired.  The
// issuance path refuses to release the challenges.
var ErrQuorum = errors.New("repl: follower quorum not acknowledged")

// PrimaryConfig tunes a replication primary.
type PrimaryConfig struct {
	// Quorum is how many follower acknowledgements an issued challenge
	// needs before it leaves the server (default 1; 0 replicates fully
	// asynchronously).
	Quorum int
	// Strict makes quorum a hard gate: issuance fails when no followers
	// are connected or the quorum does not acknowledge within AckTimeout.
	// The default (semi-synchronous) prefers availability: a primary with
	// no followers serves standalone and a timeout falls back to async,
	// both visibly counted (repl_unreplicated_issues_total,
	// repl_commit_timeouts_total).
	Strict bool
	// AckTimeout bounds the per-issuance quorum wait (default 2s).
	AckTimeout time.Duration
	// Heartbeat is the idle-link heartbeat interval (default 500ms).
	Heartbeat time.Duration
	// Buffer is the per-follower in-flight record buffer; a follower that
	// falls further behind than this is dropped and re-bootstraps from a
	// snapshot (default 4096).
	Buffer int
	// IOTimeout bounds each frame write (default 10s).
	IOTimeout time.Duration
}

func (c PrimaryConfig) normalized() PrimaryConfig {
	if c.Quorum < 0 {
		c.Quorum = 0
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.Buffer <= 0 {
		c.Buffer = 4096
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 10 * time.Second
	}
	return c
}

// link is one connected follower.
type link struct {
	conn  net.Conn
	addr  string
	ch    chan shipped
	stop  chan struct{}
	once  sync.Once
	acked atomic.Uint64
}

// shipped is one record frame fanned out to followers.  The frame bytes are
// shared read-only across links.
type shipped struct {
	seq   uint64
	frame []byte
}

func (l *link) close() {
	l.once.Do(func() { close(l.stop) })
}

// Primary attaches to a registry as its replication source: it taps every
// durably journaled record via the append observer, fans records out to
// connected followers, and gates challenge issuance on follower
// acknowledgements via the commit waiter.
type Primary struct {
	reg *registry.Registry
	cfg PrimaryConfig

	mu      sync.Mutex
	cond    *sync.Cond
	links   map[*link]struct{}
	ln      net.Listener
	closed  bool
	lastSeq uint64 // highest seq shipped (observer-maintained)
	bytes   uint64 // cumulative record-frame bytes shipped

	wg sync.WaitGroup
}

// NewPrimary wires a primary onto reg.  From this call on, issuance on reg
// waits for the configured quorum; call Close to detach.
func NewPrimary(reg *registry.Registry, cfg PrimaryConfig) *Primary {
	p := &Primary{reg: reg, cfg: cfg.normalized(), links: make(map[*link]struct{})}
	p.cond = sync.NewCond(&p.mu)
	p.lastSeq = reg.Seq() // journal position at attach: pre-existing records ship by snapshot
	reg.SetAppendObserver(p.observe)
	reg.SetCommitWaiter(p.WaitCommittedCtx)
	return p
}

// observe runs under the registry's journal lock: it must only do the
// per-link fan-out.  A follower whose buffer is full is marked dead here
// (its writer notices and drops the link) — blocking would stall every
// journal append in the process.
func (p *Primary) observe(seq uint64, typ byte, payload []byte) {
	frame := encodeFrame(fRecord, recordPayload(seq, typ, payload))
	p.mu.Lock()
	p.lastSeq = seq
	p.bytes += uint64(len(frame))
	for l := range p.links {
		select {
		case l.ch <- shipped{seq: seq, frame: frame}:
		default:
			l.close() // overflow: terminal for the link, never for the log
		}
	}
	p.mu.Unlock()
	replShipped.Inc()
}

// Serve accepts follower connections on ln until Close.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return errors.New("repl: primary closed")
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// handle runs one follower session: handshake, snapshot, then stream.
func (p *Primary) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)

	conn.SetDeadline(time.Now().Add(p.cfg.IOTimeout))
	typ, payload, err := readFrame(br)
	if err != nil || typ != fHello {
		return
	}
	version, lastSeq, err := decodeHello(payload)
	if err != nil || version != protocolVersion {
		writeFrame(conn, fError, errorPayload(CodeProto, "unsupported hello")) //nolint:errcheck
		return
	}

	// Subscribe before snapshotting: every record after the snapshot cut is
	// then either in the snapshot (seq ≤ cut) or in the buffer (seq > cut),
	// with overlap resolved by the follower skipping seqs it already has.
	l := &link{conn: conn, addr: conn.RemoteAddr().String(),
		ch: make(chan shipped, p.cfg.Buffer), stop: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.links[l] = struct{}{}
	p.mu.Unlock()
	replFollowers.Inc()
	defer p.drop(l)

	// The snapshot is a consistent cut: SnapshotBytes quiesces the store,
	// so no record with seq > cut exists before the subscription above.
	snap, snapSeq, err := p.reg.SnapshotBytes()
	if err != nil {
		writeFrame(conn, fError, errorPayload(CodeApply, err.Error())) //nolint:errcheck
		return
	}
	p.mu.Lock()
	baseBytes := p.bytes
	p.mu.Unlock()
	if lastSeq > snapSeq {
		// The follower's log is ahead of ours: it has history we never
		// wrote (e.g. it used to be a primary).  Shipping anything would
		// fork its log; refuse instead.
		writeFrame(conn, fError, errorPayload(CodeDiverged, "follower log ahead of primary")) //nolint:errcheck
		return
	}
	if lastSeq == snapSeq {
		snap = nil // already at the cut; baseline-only snapshot phase
	}
	conn.SetDeadline(time.Now().Add(p.cfg.IOTimeout))
	if err := writeFrame(conn, fSnapBegin, snapBeginPayload(snapSeq, uint64(len(snap)), baseBytes)); err != nil {
		return
	}
	for off := 0; off < len(snap); off += snapChunkSize {
		end := off + snapChunkSize
		if end > len(snap) {
			end = len(snap)
		}
		conn.SetDeadline(time.Now().Add(p.cfg.IOTimeout))
		if err := writeFrame(conn, fSnapChunk, snap[off:end]); err != nil {
			return
		}
	}
	if err := writeFrame(conn, fSnapEnd, nil); err != nil {
		return
	}
	conn.SetDeadline(time.Time{})

	// Ack reader: every fAck advances the link's high-water mark and wakes
	// commit waiters.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer l.close()
		for {
			typ, payload, err := readFrame(br)
			if err != nil {
				return
			}
			switch typ {
			case fAck:
				seq, err := decodeU64(payload, "ack")
				if err != nil {
					return
				}
				for {
					cur := l.acked.Load()
					if seq <= cur || l.acked.CompareAndSwap(cur, seq) {
						break
					}
				}
				p.mu.Lock()
				p.cond.Broadcast()
				p.mu.Unlock()
			case fError:
				return
			}
		}
	}()

	// Writer: stream buffered records and heartbeats until the link dies.
	hb := time.NewTicker(p.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-l.stop:
			return
		case sh := <-l.ch:
			if sh.seq <= snapSeq {
				continue // the snapshot already covers it
			}
			conn.SetWriteDeadline(time.Now().Add(p.cfg.IOTimeout))
			if _, err := conn.Write(sh.frame); err != nil {
				return
			}
		case <-hb.C:
			p.mu.Lock()
			seq, bytes := p.lastSeq, p.bytes
			p.mu.Unlock()
			conn.SetWriteDeadline(time.Now().Add(p.cfg.IOTimeout))
			if err := writeFrame(conn, fHeartbeat, heartbeatPayload(seq, bytes)); err != nil {
				return
			}
		}
	}
}

func (p *Primary) drop(l *link) {
	l.close()
	p.mu.Lock()
	_, ok := p.links[l]
	delete(p.links, l)
	p.cond.Broadcast()
	p.mu.Unlock()
	if ok {
		replFollowers.Dec()
		replLinkDrops.Inc()
	}
}

// WaitCommitted blocks until the configured quorum of followers has
// acknowledged seq, the ack timeout expires, or the primary closes.  It is
// the registry's commit waiter: a non-nil return keeps the issued
// challenges on the server.
func (p *Primary) WaitCommitted(seq uint64) error {
	return p.WaitCommittedCtx(context.Background(), seq)
}

// WaitCommittedCtx is WaitCommitted carrying request-scoped observability:
// when ctx holds a dtrace context (injected by the traced issuance path),
// the quorum wait is recorded as a child span — the ack-latency leg of the
// session's distributed trace — and an fTraceMark rides the record stream so
// each follower can record its apply+ack in its own process ring, extending
// the trace tree across machines.  ctx never cancels the wait: the burn is
// journaled, so the quorum verdict must be reached either way.
func (p *Primary) WaitCommittedCtx(ctx context.Context, seq uint64) error {
	tc := dtrace.FromContext(ctx)
	var span *dtrace.Span
	if tc.Valid() {
		span = dtrace.Default.StartSpan(tc, "repl.quorum_wait")
		span.SetAttr("seq", strconv.FormatUint(seq, 10))
		p.shipTraceMark(seq, span.Context())
	}
	err := p.waitCommitted(seq)
	if span != nil {
		if err != nil {
			span.SetStatus("error:" + err.Error())
		} else {
			span.SetStatus("ok")
		}
		span.End()
	}
	return err
}

// shipTraceMark fans a trace marker to every connected follower.  Unlike
// observe, a full buffer silently drops the marker instead of killing the
// link: markers are observability, not log.
func (p *Primary) shipTraceMark(seq uint64, tc dtrace.Context) {
	frame := encodeFrame(fTraceMark, traceMarkPayload(seq, tc.String()))
	p.mu.Lock()
	for l := range p.links {
		select {
		case l.ch <- shipped{seq: seq, frame: frame}:
		default:
		}
	}
	p.mu.Unlock()
}

func (p *Primary) waitCommitted(seq uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.Quorum == 0 {
		return nil
	}
	start := time.Now()
	defer func() { replCommitSeconds.ObserveSince(start) }()
	deadline := start.Add(p.cfg.AckTimeout)
	timer := time.AfterFunc(p.cfg.AckTimeout, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	for {
		if p.closed || len(p.links) == 0 {
			// No followers to wait for.  Strict refuses; semi-sync serves
			// standalone and counts the unreplicated issuance.
			if p.cfg.Strict {
				return linkErrf(CodeShutdown, "%v: no followers connected", ErrQuorum)
			}
			replUnreplicated.Inc()
			return nil
		}
		acked := 0
		for l := range p.links {
			if l.acked.Load() >= seq {
				acked++
			}
		}
		need := p.cfg.Quorum
		if !p.cfg.Strict && need > len(p.links) {
			need = len(p.links)
		}
		if acked >= need {
			return nil
		}
		if time.Now().After(deadline) {
			replCommitTimeout.Inc()
			if p.cfg.Strict {
				return linkErrf(CodeShutdown, "%v: %d/%d acks after %v",
					ErrQuorum, acked, need, p.cfg.AckTimeout)
			}
			return nil // semi-sync: fall back to async, visibly
		}
		p.cond.Wait()
	}
}

// FollowerLink is one connected follower's view in PrimaryStatus.
type FollowerLink struct {
	Addr  string `json:"addr"`
	Acked uint64 `json:"acked_seq"`
	Lag   uint64 `json:"lag_records"`
}

// PrimaryStatus is a point-in-time summary for /healthz and /repl.
type PrimaryStatus struct {
	Seq       uint64         `json:"seq"`
	Quorum    int            `json:"quorum"`
	Strict    bool           `json:"strict"`
	Followers []FollowerLink `json:"followers"`
}

// Status reports the primary's replication state.
func (p *Primary) Status() PrimaryStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PrimaryStatus{Seq: p.lastSeq, Quorum: p.cfg.Quorum, Strict: p.cfg.Strict}
	for l := range p.links {
		acked := l.acked.Load()
		fl := FollowerLink{Addr: l.addr, Acked: acked}
		if p.lastSeq > acked {
			fl.Lag = p.lastSeq - acked
		}
		st.Followers = append(st.Followers, fl)
	}
	return st
}

// Close detaches from the registry, drops every follower link, and stops
// Serve.  Issuance on the registry reverts to local-only journaling.
func (p *Primary) Close() {
	p.reg.SetAppendObserver(nil)
	p.reg.SetCommitWaiter(nil)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	ln := p.ln
	for l := range p.links {
		l.close()
		l.conn.Close()
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	p.wg.Wait()
}
