package registry

import (
	"hash/crc32"
	"os"
	"testing"

	"xorpuf/internal/core"
	"xorpuf/internal/health"
)

func failedSession() health.Outcome {
	return health.Outcome{Approved: false, Mismatches: 5, Challenges: 25}
}

// driveToQuarantine feeds failing sessions until the chip quarantines.
func driveToQuarantine(t *testing.T, e *Entry) {
	t.Helper()
	for i := 0; i < 100; i++ {
		e.RecordAuth(failedSession())
		if e.HealthState() == health.Quarantined {
			return
		}
	}
	t.Fatalf("chip never quarantined: %+v", e.Status().HealthStats)
}

func TestTrackerStateCodecRoundTrip(t *testing.T) {
	want := health.TrackerState{
		State: health.Degraded, FailEWMA: 0.42, CUSUM: 0.17,
		Sessions: 1234, Failures: 99,
	}
	rd := &reader{b: appendTrackerState(nil, want)}
	got := rd.readTrackerState()
	if rd.err != nil {
		t.Fatalf("readTrackerState: %v", rd.err)
	}
	if len(rd.b) != 0 {
		t.Fatalf("%d trailing bytes", len(rd.b))
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	bad := appendTrackerState(nil, want)
	bad[0] = 9 // undefined state byte
	rd = &reader{b: bad}
	if rd.readTrackerState(); rd.err == nil {
		t.Fatal("invalid state byte decoded successfully")
	}
}

func TestHealthStateSurvivesHardStop(t *testing.T) {
	dir := t.TempDir()
	r1, err := Open(dir, Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Register("drifter", syntheticModel(2, 32), 0); err != nil {
		t.Fatal(err)
	}
	if err := r1.Register("steady", syntheticModel(2, 32), 0); err != nil {
		t.Fatal(err)
	}
	driveToQuarantine(t, r1.Lookup("drifter"))
	for i := 0; i < 20; i++ {
		r1.Lookup("steady").RecordAuth(health.Outcome{Approved: true, Challenges: 25})
	}
	wantStats := r1.Lookup("drifter").Status().HealthStats

	// kill -9: abandon r1 without Close, then recover from WAL alone.
	r2, err := Open(dir, Options{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Lookup("drifter").HealthState(); got != health.Quarantined {
		t.Errorf("drifter recovered as %v, want quarantined", got)
	}
	if got := r2.Lookup("drifter").Status().HealthStats; got != wantStats {
		t.Errorf("detector stats not recovered: %+v vs %+v", got, wantStats)
	}
	if got := r2.Lookup("steady").HealthState(); got != health.Healthy {
		t.Errorf("steady recovered as %v, want healthy", got)
	}
}

func TestHealthStateSurvivesSnapshot(t *testing.T) {
	dir := t.TempDir()
	r1, err := Open(dir, Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Register("c", syntheticModel(2, 32), 0); err != nil {
		t.Fatal(err)
	}
	driveToQuarantine(t, r1.Lookup("c"))
	if err := r1.Compact(); err != nil {
		t.Fatal(err)
	}
	// The WAL is now empty; classification must come from the XPS2 snapshot.
	r2, err := Open(dir, Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Lookup("c").HealthState(); got != health.Quarantined {
		t.Errorf("snapshot recovered health %v, want quarantined", got)
	}
}

func TestForceHealthJournaled(t *testing.T) {
	dir := t.TempDir()
	r1, err := Open(dir, Options{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Register("c", syntheticModel(2, 32), 0); err != nil {
		t.Fatal(err)
	}
	ev, ok := r1.Lookup("c").ForceHealth(health.Quarantined)
	if !ok || ev.Cause != health.CauseForced || ev.ChipID != "c" {
		t.Fatalf("ForceHealth: %v %v", ev, ok)
	}
	if _, ok := r1.Lookup("c").ForceHealth(health.Quarantined); ok {
		t.Error("no-op force reported a transition")
	}
	r2, err := Open(dir, Options{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Lookup("c").HealthState(); got != health.Quarantined {
		t.Errorf("forced quarantine not durable: %v", got)
	}
}

func TestReplaceSwapsModelAndBurnsHistory(t *testing.T) {
	dir := t.TempDir()
	r1, err := Open(dir, Options{Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	oldModel := syntheticModel(2, 32)
	if err := r1.Register("c", oldModel, 0); err != nil {
		t.Fatal(err)
	}
	e := r1.Lookup("c")
	oldWords := issueWords(t, e, 64)
	driveToQuarantine(t, e)

	newModel := syntheticModel(2, 32)
	newModel.Beta0 = 0.91 // distinguishable from the old model
	if err := r1.Replace("c", newModel, 0); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	st := e.Status()
	if st.Health != health.Healthy || st.Denials != 0 || st.Locked {
		t.Errorf("post-replace status %+v, want clean healthy", st)
	}
	if e.Model().Beta0 != 0.91 {
		t.Error("replace did not swap the model")
	}
	// The retired model's challenges stay burned: the new selector must
	// never reissue any of them.
	if st.Issued < len(oldWords) {
		t.Errorf("issued count %d lost the burned history (%d old words)", st.Issued, len(oldWords))
	}
	for w := range issueWords(t, e, 64) {
		if oldWords[w] {
			t.Fatalf("replace reissued burned challenge %#x", w)
		}
	}

	// The whole swap — model, detectors, burned history — survives kill -9.
	r2, err := Open(dir, Options{Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	e2 := r2.Lookup("c")
	if e2.Model().Beta0 != 0.91 {
		t.Error("recovered registry lost the replacement model")
	}
	if got := e2.HealthState(); got != health.Healthy {
		t.Errorf("recovered health %v, want healthy", got)
	}
	for w := range issueWords(t, e2, 64) {
		if oldWords[w] {
			t.Fatalf("recovered registry reissued burned challenge %#x", w)
		}
	}
}

func TestReplaceErrors(t *testing.T) {
	r, err := Open("", Options{Seed: 46})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Replace("ghost", syntheticModel(1, 32), 0); err == nil {
		t.Error("Replace of unregistered chip succeeded")
	}
	if err := r.Register("c", syntheticModel(1, 32), 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Replace("c", nil, 0); err == nil {
		t.Error("Replace with nil model succeeded")
	}
}

func TestRangeVisitsAllChips(t *testing.T) {
	r, err := Open("", Options{Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := r.Register(id, syntheticModel(1, 32), 0); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	r.Range(func(e *Entry) bool {
		seen[e.ID()] = true
		return true
	})
	if len(seen) != 4 {
		t.Errorf("Range visited %d chips, want 4: %v", len(seen), seen)
	}
	n := 0
	r.Range(func(e *Entry) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("Range ignored early stop: %d visits", n)
	}
}

// TestSnapshotV1Compat hand-writes a pre-health "XPS1" snapshot and verifies
// the registry still loads it, defaulting every chip to pristine healthy
// detectors.
func TestSnapshotV1Compat(t *testing.T) {
	dir := t.TempDir()
	model := syntheticModel(2, 32)

	// Build a v1 body: seq, count, then id/selector/model/denials/locked
	// with no tracker state.
	body := appendU64(nil, 9)
	body = appendU32(body, 1)
	body = appendString(body, "legacy")
	body = appendSelectorState(body, core.SelectorState{Used: []uint64{5, 6, 7}, Budget: 100})
	body = appendModel(body, model)
	body = appendU32(body, 2) // denials
	body = append(body, 1)    // locked
	buf := append([]byte{}, snapMagicV1[:]...)
	buf = append(buf, body...)
	buf = appendU32(buf, crc32.ChecksumIEEE(body))
	if err := os.WriteFile(dir+"/"+snapName, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{Seed: 48})
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	defer r.Close()
	e := r.Lookup("legacy")
	if e == nil {
		t.Fatal("legacy chip not recovered")
	}
	st := e.Status()
	if st.Health != health.Healthy || st.HealthStats != (health.TrackerState{}) {
		t.Errorf("legacy chip health %+v, want pristine healthy", st.HealthStats)
	}
	if st.Issued != 3 || st.Denials != 2 || !st.Locked {
		t.Errorf("legacy accounting %+v, want 3 issued, 2 denials, locked", st)
	}
	// And the next compaction upgrades the snapshot to XPS2 in place.
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/" + snapName)
	if err != nil {
		t.Fatal(err)
	}
	if [4]byte(data[:4]) != snapMagic {
		t.Errorf("compaction kept magic %q, want upgrade to %q", data[:4], snapMagic)
	}
}
