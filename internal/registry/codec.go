// Binary serialization of registry state, extending the crpstore format
// family (compact little-endian records behind a 4-byte magic).  The unit of
// serialization is one enrolled chip: its core.ChipModel (per-member θ
// vectors, raw thresholds, chip-wide β pair), its core.SelectorState (budget
// plus the used-challenge words that carry the never-reuse guarantee), and
// its abuse-control state (denial streak, lockout flag).
//
// A 6-XOR 32-stage model costs 6×(33+2)×8 + 2×8 + 4 ≈ 1.7 KiB — the paper's
// §1 storage argument in code: delay parameters, not CRP tables.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"xorpuf/internal/core"
	"xorpuf/internal/health"
)

// ErrCorrupt is returned when decoding bytes that are not a well-formed
// registry record.
var ErrCorrupt = errors.New("registry: corrupt record")

// Decode-side sanity bounds: a corrupted length field must not trigger an
// absurd allocation (same defensive posture as crpstore's maxCount).
const (
	maxIDLen     = 1 << 10
	maxWidth     = 1 << 8
	maxStages    = 1 << 12
	maxUsedWords = 1 << 28
)

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendString(b []byte, s string) []byte {
	b = appendU16(b, uint16(len(s)))
	return append(b, s...)
}

// appendModel encodes a chip model: width, stages, β pair, then per member
// PUF the raw thresholds and θ vector (stages+1 coefficients).
func appendModel(b []byte, m *core.ChipModel) []byte {
	b = appendU16(b, uint16(m.Width()))
	b = appendU16(b, uint16(m.Stages()))
	b = appendF64(b, m.Beta0)
	b = appendF64(b, m.Beta1)
	for _, p := range m.PUFs {
		b = appendF64(b, p.Thr0)
		b = appendF64(b, p.Thr1)
		for _, th := range p.Theta {
			b = appendF64(b, th)
		}
	}
	return b
}

// appendSelectorState encodes budget plus the sorted used-challenge words.
func appendSelectorState(b []byte, st core.SelectorState) []byte {
	b = appendU32(b, uint32(st.Budget))
	b = appendU32(b, uint32(len(st.Used)))
	for _, w := range st.Used {
		b = appendU64(b, w)
	}
	return b
}

// appendTrackerState encodes one chip's drift-detector state.
func appendTrackerState(b []byte, st health.TrackerState) []byte {
	b = append(b, byte(st.State))
	b = appendF64(b, st.FailEWMA)
	b = appendF64(b, st.CUSUM)
	b = appendU64(b, st.Sessions)
	b = appendU64(b, st.Failures)
	return b
}

// reader is a little-endian cursor with sticky error state, so decode paths
// read straight through and check err once.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail("truncated: want %d bytes, have %d", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 {
	v := math.Float64frombits(r.u64())
	if r.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		r.fail("non-finite float")
	}
	return v
}

func (r *reader) str() string {
	n := int(r.u16())
	if r.err == nil && n > maxIDLen {
		r.fail("string length %d exceeds cap", n)
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// readModel decodes and validates one chip model.
func (r *reader) readModel() *core.ChipModel {
	width := int(r.u16())
	stages := int(r.u16())
	if r.err != nil {
		return nil
	}
	if width < 1 || width > maxWidth || stages < 1 || stages > maxStages {
		r.fail("implausible model geometry %d×%d", width, stages)
		return nil
	}
	// The remaining payload must hold β pair + per-PUF thresholds and θ;
	// checking up front keeps a corrupt geometry from allocating megabytes
	// just to fail on truncation.
	if need := 16 + width*(2+stages+1)*8; need > len(r.b) {
		r.fail("model geometry %d×%d needs %d bytes, have %d", width, stages, need, len(r.b))
		return nil
	}
	m := &core.ChipModel{PUFs: make([]*core.PUFModel, width)}
	m.Beta0 = r.f64()
	m.Beta1 = r.f64()
	for i := range m.PUFs {
		p := &core.PUFModel{Theta: make([]float64, stages+1)}
		p.Thr0 = r.f64()
		p.Thr1 = r.f64()
		for j := range p.Theta {
			p.Theta[j] = r.f64()
		}
		m.PUFs[i] = p
	}
	if r.err != nil {
		return nil
	}
	return m
}

// readTrackerState decodes one chip's drift-detector state.
func (r *reader) readTrackerState() health.TrackerState {
	s := health.State(r.u8())
	if r.err == nil && !s.Valid() {
		r.fail("invalid health state %d", s)
	}
	return health.TrackerState{
		State:    s,
		FailEWMA: r.f64(),
		CUSUM:    r.f64(),
		Sessions: r.u64(),
		Failures: r.u64(),
	}
}

// readSelectorState decodes one selector state.
func (r *reader) readSelectorState() core.SelectorState {
	budget := int(r.u32())
	count := int(r.u32())
	if r.err == nil && count > maxUsedWords {
		r.fail("implausible used-word count %d", count)
	}
	// Same defensive posture as readModel: the words must actually be in
	// the payload before a count-sized slice is allocated.
	if r.err == nil && count*8 > len(r.b) {
		r.fail("used-word count %d needs %d bytes, have %d", count, count*8, len(r.b))
	}
	if r.err != nil {
		return core.SelectorState{}
	}
	st := core.SelectorState{Budget: budget, Used: make([]uint64, count)}
	for i := range st.Used {
		st.Used[i] = r.u64()
	}
	return st
}
