// Re-enrollment pipeline: the repair half of the lifetime-reliability loop.
// Drift detection (internal/health) quarantines a chip whose responses have
// walked out of its enrolled model; the ReEnroller brings it back by
// re-running the paper's Fig 6 enrollment against the *fielded* (aged)
// silicon — fresh soft-response measurements, a refit regression model,
// re-pooled β0/β1 thresholds — and atomically swapping the registry entry
// with registry.Replace.  The swap keeps every previously issued challenge
// burned, so a re-enrolled chip can never be probed with a challenge an
// eavesdropper has already seen, and it resets the drift detectors, so the
// chip re-earns its healthy classification under the new model.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/health"
	"xorpuf/internal/registry"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// ChipProvider returns the fielded device for a chip ID — the aged silicon
// as it exists in the field, fuses intact, ready for soft-response
// re-measurement.  Providers must return an independent chip object per
// call (re-enrollment measures it concurrently with live authentication
// traffic against the original).  In simulation this is typically
// fleet.Chip(seed, i, ...) replayed through the chip's stress history.
type ChipProvider func(id string) (*silicon.Chip, error)

// ReEnrollConfig parameterizes a ReEnroller.
type ReEnrollConfig struct {
	// Seed derives per-chip, per-generation measurement randomness: the
	// n-th re-enrollment of chip id draws from
	// rng.New(Seed).Split("reenroll:"+id).SplitIndex(n), so repeated
	// re-enrollments of one chip never reuse a measurement stream.
	Seed uint64
	// Enroll is the enrollment configuration (zero value = defaults).  Use
	// silicon.Corners() conditions to re-harden β against V/T excursions.
	Enroll core.EnrollConfig
	// Budget is the lifetime challenge budget for the new enrollment
	// (0 = unlimited).  The old enrollment's issued challenges count
	// against it — history stays burned.
	Budget int
	// Chip supplies the fielded device to re-measure.  Required.
	Chip ChipProvider
	// Workers caps concurrent re-enrollments triggered through Handle
	// (default 2); enrollment is measurement-heavy and should not starve
	// live authentication traffic.
	Workers int
	// TriggerAt is the minimum health state Handle reacts to (default
	// Quarantined; Degraded re-enrolls proactively, before service is
	// interrupted).
	TriggerAt health.State
	// OnResult, when non-nil, observes each completed re-enrollment.  It
	// must be safe for concurrent use.
	OnResult func(id string, err error)
}

func (cfg ReEnrollConfig) normalized() ReEnrollConfig {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Enroll.TrainingSize == 0 {
		cfg.Enroll = core.DefaultEnrollConfig()
	}
	if cfg.TriggerAt == health.Healthy {
		cfg.TriggerAt = health.Quarantined
	}
	return cfg
}

// ReEnroller repairs drifted chips in a registry.  Wire Handle into
// netauth.Server.SetHealthHandler for automatic repair, or call ReEnroll
// directly for operator-driven repair.  All methods are safe for concurrent
// use.
type ReEnroller struct {
	cfg ReEnrollConfig
	reg *registry.Registry

	mu      sync.Mutex
	pending map[string]bool // chips with a re-enrollment in flight
	gen     map[string]int  // per-chip re-enrollment count
	closed  bool
	wg      sync.WaitGroup
	sem     chan struct{}
}

// NewReEnroller creates a re-enroller over reg.
func NewReEnroller(reg *registry.Registry, cfg ReEnrollConfig) (*ReEnroller, error) {
	if reg == nil {
		return nil, errors.New("fleet: nil registry")
	}
	if cfg.Chip == nil {
		return nil, errors.New("fleet: ReEnrollConfig.Chip provider is required")
	}
	cfg = cfg.normalized()
	return &ReEnroller{
		cfg:     cfg,
		reg:     reg,
		pending: make(map[string]bool),
		gen:     make(map[string]int),
		sem:     make(chan struct{}, cfg.Workers),
	}, nil
}

// Handle reacts to a health transition: when the chip reaches TriggerAt (or
// worse), a re-enrollment is scheduled asynchronously.  Duplicate events
// for a chip whose repair is already in flight are ignored, so Handle can
// be wired directly to a server's health handler without debouncing.
func (re *ReEnroller) Handle(ev health.Event) {
	if ev.To < re.cfg.TriggerAt {
		return
	}
	re.mu.Lock()
	if re.closed || re.pending[ev.ChipID] {
		re.mu.Unlock()
		return
	}
	re.pending[ev.ChipID] = true
	re.wg.Add(1)
	re.mu.Unlock()
	go func(id string) {
		defer re.wg.Done()
		re.sem <- struct{}{}
		defer func() { <-re.sem }()
		err := re.reenroll(id)
		re.mu.Lock()
		delete(re.pending, id)
		re.mu.Unlock()
		if re.cfg.OnResult != nil {
			re.cfg.OnResult(id, err)
		}
	}(ev.ChipID)
}

// ReEnroll synchronously re-enrolls one chip, regardless of its current
// health state (an operator decision).
func (re *ReEnroller) ReEnroll(id string) error {
	re.mu.Lock()
	if re.closed {
		re.mu.Unlock()
		return errors.New("fleet: re-enroller closed")
	}
	if re.pending[id] {
		re.mu.Unlock()
		return fmt.Errorf("fleet: re-enrollment of %q already in flight", id)
	}
	re.pending[id] = true
	re.mu.Unlock()
	err := re.reenroll(id)
	re.mu.Lock()
	delete(re.pending, id)
	re.mu.Unlock()
	return err
}

// reenroll measures, refits, and swaps one chip.
func (re *ReEnroller) reenroll(id string) (err error) {
	defer reenrollSecs.ObserveSince(time.Now())
	defer func() {
		if err != nil {
			reenrollFailed.Inc()
		} else {
			reenrollTotal.Inc()
		}
	}()
	if re.reg.Lookup(id) == nil {
		return fmt.Errorf("fleet: re-enroll: chip %q not registered", id)
	}
	chip, err := re.cfg.Chip(id)
	if err != nil {
		return fmt.Errorf("fleet: re-enroll %q: chip provider: %w", id, err)
	}
	if chip.FusesBlown() {
		// The Fig 6 measurement path needs the per-PUF counters; a chip
		// whose fuses are blown can only be replaced, not re-enrolled.
		return fmt.Errorf("fleet: re-enroll %q: fuses blown, soft responses unavailable", id)
	}
	re.mu.Lock()
	gen := re.gen[id]
	re.gen[id] = gen + 1
	re.mu.Unlock()
	src := rng.New(re.cfg.Seed).Split("reenroll:" + id).SplitIndex(gen)
	enr, err := core.EnrollChip(chip, src, re.cfg.Enroll)
	if err != nil {
		return fmt.Errorf("fleet: re-enroll %q: %w", id, err)
	}
	if err := re.reg.Replace(id, enr.Model, re.cfg.Budget); err != nil {
		return fmt.Errorf("fleet: re-enroll %q: %w", id, err)
	}
	return nil
}

// Wait blocks until every in-flight re-enrollment completes.
func (re *ReEnroller) Wait() { re.wg.Wait() }

// Close stops accepting new work and waits for in-flight repairs.
func (re *ReEnroller) Close() {
	re.mu.Lock()
	re.closed = true
	re.mu.Unlock()
	re.wg.Wait()
}
