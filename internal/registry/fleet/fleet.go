// Package fleet is the parallel enrollment pipeline that fills a registry at
// manufacturing scale: a worker pool fabricates simulated silicon.Chips,
// runs the paper's Fig 6 enrollment on each (soft-response measurement →
// core.EnrollChip), and writes the resulting models into a
// registry.Registry.
//
// Determinism: every chip's silicon and enrollment randomness derive from
// per-chip sub-streams of a single seed (rng.New(seed).Fork("chip", i) /
// Fork("enroll", i)), so the enrolled fleet is bit-identical regardless of
// worker count or scheduling — and identical to what `puflab auth` re-derives
// on the device side from the same seed.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/registry"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/telemetry"
)

// Pipeline instruments, captured once from the Default registry.  Enrollment
// is seconds-per-chip work, so per-chip histogram observes are free by
// comparison.
var (
	enrolledTotal  = telemetry.Default.Counter("fleet_enrolled_total")
	skippedTotal   = telemetry.Default.Counter("fleet_skipped_total")
	failedTotal    = telemetry.Default.Counter("fleet_failed_total")
	enrollSeconds  = telemetry.Default.Histogram("fleet_enroll_seconds", telemetry.LatencyBuckets)
	activeWorkers  = telemetry.Default.Gauge("fleet_active_workers")
	reenrollTotal  = telemetry.Default.Counter("fleet_reenroll_total")
	reenrollFailed = telemetry.Default.Counter("fleet_reenroll_failed_total")
	reenrollSecs   = telemetry.Default.Histogram("fleet_reenroll_seconds", telemetry.LatencyBuckets)
)

// Config parameterizes one fleet enrollment run.
type Config struct {
	// Chips is the fleet size; chips are registered as <IDPrefix>0 …
	// <IDPrefix>{Chips-1}.
	Chips int
	// Workers is the enrollment worker-pool size (0 = GOMAXPROCS).
	Workers int
	// XORWidth is each chip's XOR width (0 = 6, matching `puflab serve`).
	XORWidth int
	// Seed derives all per-chip randomness.
	Seed uint64
	// Params are the fabrication/measurement parameters (zero value =
	// silicon.DefaultParams()).
	Params silicon.Params
	// Enroll is the per-chip enrollment configuration (zero value =
	// core.DefaultEnrollConfig()).
	Enroll core.EnrollConfig
	// Budget is the lifetime challenge budget registered per chip
	// (0 = unlimited).
	Budget int
	// IDPrefix prefixes chip indices to form IDs (default "chip-").
	IDPrefix string
	// SkipExisting makes the pipeline a resumable upsert: chips already in
	// the registry (e.g. recovered from a previous run's WAL) are skipped
	// instead of failing with a duplicate error.
	SkipExisting bool
	// Progress, when non-nil, is invoked after each chip completes with
	// (completed, total).  It must be safe for concurrent use.
	Progress func(done, total int)
}

func (cfg Config) normalized() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.XORWidth <= 0 {
		cfg.XORWidth = 6
	}
	if cfg.Params == (silicon.Params{}) {
		cfg.Params = silicon.DefaultParams()
	}
	if cfg.Enroll.TrainingSize == 0 {
		cfg.Enroll = core.DefaultEnrollConfig()
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "chip-"
	}
	return cfg
}

// Report summarizes a fleet run.
type Report struct {
	// Enrolled counts chips newly enrolled and registered by this run.
	Enrolled int
	// Skipped counts chips already present (SkipExisting).
	Skipped int
	// Failed counts chips whose enrollment or registration failed.
	Failed int
	// Duration is the wall-clock time of the run.
	Duration time.Duration
	// PerSecond is Enrolled/Duration.
	PerSecond float64
}

// Chip re-fabricates fleet member i — the same silicon a genuine device
// holds.  Exposed so clients/tests can authenticate against a
// fleet-enrolled server without re-running enrollment.
func Chip(seed uint64, i int, params silicon.Params, xorWidth int) *silicon.Chip {
	return silicon.NewChip(rng.New(seed).Fork("chip", i), params, xorWidth)
}

// Run enrolls the configured fleet into reg using a worker pool.  Individual
// chip failures do not abort the run; they are counted in Report.Failed and
// joined into the returned error.
func Run(cfg Config, reg *registry.Registry) (Report, error) {
	cfg = cfg.normalized()
	if cfg.Chips <= 0 {
		return Report{}, errors.New("fleet: Chips must be positive")
	}
	if reg == nil {
		return Report{}, errors.New("fleet: nil registry")
	}

	start := time.Now()
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		done     atomic.Int64
		enrolled atomic.Int64
		skipped  atomic.Int64
		errMu    sync.Mutex
		errs     []error
	)
	fail := func(i int, err error) {
		errMu.Lock()
		// Keep the joined error bounded; the count is in the report.
		if len(errs) < 8 {
			errs = append(errs, fmt.Errorf("fleet: chip %d: %w", i, err))
		}
		errMu.Unlock()
	}
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			activeWorkers.Inc()
			defer activeWorkers.Dec()
			for i := range jobs {
				id := fmt.Sprintf("%s%d", cfg.IDPrefix, i)
				// A chip is "existing" if it is resident here OR its range
				// migrated away: a resurrected source must not re-enroll a
				// departed chip, which would fork its identity (and its
				// never-reuse history) across two owners.
				departed := func() bool {
					st, _ := reg.Ownership(id)
					return st == registry.OwnershipDeparted
				}
				if cfg.SkipExisting && (reg.Lookup(id) != nil || departed()) {
					skipped.Add(1)
					skippedTotal.Inc()
				} else {
					chipStart := time.Now()
					err := enrollOne(cfg, reg, i, id)
					enrollSeconds.ObserveSince(chipStart)
					if err != nil {
						fail(i, err)
						failedTotal.Inc()
					} else {
						enrolled.Add(1)
						enrolledTotal.Inc()
					}
				}
				if cfg.Progress != nil {
					cfg.Progress(int(done.Add(1)), cfg.Chips)
				}
			}
		}()
	}
	for i := 0; i < cfg.Chips; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep := Report{
		Enrolled: int(enrolled.Load()),
		Skipped:  int(skipped.Load()),
		Duration: time.Since(start),
	}
	rep.Failed = cfg.Chips - rep.Enrolled - rep.Skipped
	if secs := rep.Duration.Seconds(); secs > 0 {
		rep.PerSecond = float64(rep.Enrolled) / secs
	}
	return rep, errors.Join(errs...)
}

// enrollOne measures, fits, and registers a single fleet member.
func enrollOne(cfg Config, reg *registry.Registry, i int, id string) error {
	chip := Chip(cfg.Seed, i, cfg.Params, cfg.XORWidth)
	enr, err := core.EnrollChip(chip, rng.New(cfg.Seed).Fork("enroll", i), cfg.Enroll)
	if err != nil {
		return err
	}
	return reg.Register(id, enr.Model, cfg.Budget)
}
