package fleet_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"xorpuf/internal/core"
	"xorpuf/internal/health"
	"xorpuf/internal/registry"
	"xorpuf/internal/registry/fleet"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

const reenrollFleetSeed = 77

// agedChip refabricates fleet chip i and applies the same heavy aging drift —
// the deterministic stand-in for "the fielded device, as it exists today".
func agedChip(i int) *silicon.Chip {
	chip := fleet.Chip(reenrollFleetSeed, i, silicon.DefaultParams(), 2)
	chip.Age(rng.New(9000).SplitIndex(i), 0.5)
	return chip
}

// enrollOne builds a registry holding exactly fleet chip 0.
func enrollOne(t *testing.T) *registry.Registry {
	t.Helper()
	reg, err := registry.Open("", registry.Options{Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	if rep, err := fleet.Run(testFleetConfig(1, 1), reg); err != nil || rep.Enrolled != 1 {
		t.Fatalf("fleet.Run: %+v, %v", rep, err)
	}
	return reg
}

// TestReEnrollRepairsAgedChip is the pipeline's acceptance test: a chip that
// aged out of its enrollment is re-measured, refit, and swapped back in —
// after which the aged silicon authenticates at zero HD again while the
// burned challenge history stays burned.
func TestReEnrollRepairsAgedChip(t *testing.T) {
	reg := enrollOne(t)
	e := reg.Lookup("chip-0")
	oldModel := e.Model()
	aged := agedChip(0)

	// The drift is real: the aged device no longer matches its factory
	// enrollment.
	res, err := core.Authenticate(oldModel, aged, rng.New(1), 25, silicon.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Approved {
		t.Skip("aging drift too mild to distinguish models; tighten DriftSigma")
	}
	if _, ok := e.ForceHealth(health.Quarantined); !ok {
		t.Fatal("force-quarantine reported no transition")
	}

	re, err := fleet.NewReEnroller(reg, fleet.ReEnrollConfig{
		Seed:   7,
		Enroll: fastEnroll(),
		Chip: func(id string) (*silicon.Chip, error) {
			if id != "chip-0" {
				t.Errorf("provider asked for %q", id)
			}
			return agedChip(0), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.ReEnroll("chip-0"); err != nil {
		t.Fatalf("ReEnroll: %v", err)
	}
	if got := e.HealthState(); got != health.Healthy {
		t.Errorf("post-re-enroll health %v, want healthy", got)
	}
	if modelsEqual(e.Model(), oldModel) {
		t.Error("re-enrollment kept the stale model")
	}
	// The refit model fits the aged silicon: zero HD.
	res, err = core.Authenticate(e.Model(), aged, rng.New(2), 25, silicon.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved || res.Mismatches != 0 {
		t.Errorf("aged device vs refit model: %+v, want zero-HD approval", res)
	}
}

// TestHandleTriggersOnceAndRespectsThreshold: Handle wired as a health
// handler re-enrolls asynchronously, deduplicates overlapping triggers, and
// ignores events below TriggerAt.
func TestHandleTriggersOnceAndRespectsThreshold(t *testing.T) {
	reg := enrollOne(t)
	reg.Lookup("chip-0").ForceHealth(health.Quarantined) //nolint:errcheck

	var providerCalls, results atomic.Int32
	var block sync.WaitGroup
	block.Add(1)
	re, err := fleet.NewReEnroller(reg, fleet.ReEnrollConfig{
		Seed:   8,
		Enroll: fastEnroll(),
		Chip: func(id string) (*silicon.Chip, error) {
			providerCalls.Add(1)
			block.Wait() // hold the first repair in flight
			return agedChip(0), nil
		},
		OnResult: func(id string, err error) {
			if err != nil {
				t.Errorf("OnResult(%s): %v", id, err)
			}
			results.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := health.Event{ChipID: "chip-0", From: health.Degraded, To: health.Quarantined}
	re.Handle(ev)
	re.Handle(ev) // duplicate while the first is still measuring
	re.Handle(health.Event{ChipID: "chip-0", From: health.Healthy, To: health.Degraded})
	block.Done()
	re.Wait()
	if got := providerCalls.Load(); got != 1 {
		t.Errorf("provider called %d times, want 1 (dedup + threshold)", got)
	}
	if got := results.Load(); got != 1 {
		t.Errorf("OnResult called %d times, want 1", got)
	}
	if got := reg.Lookup("chip-0").HealthState(); got != health.Healthy {
		t.Errorf("post-handle health %v, want healthy", got)
	}
}

func TestReEnrollErrors(t *testing.T) {
	reg := enrollOne(t)
	if _, err := fleet.NewReEnroller(reg, fleet.ReEnrollConfig{}); err == nil {
		t.Error("nil chip provider accepted")
	}
	if _, err := fleet.NewReEnroller(nil, fleet.ReEnrollConfig{Chip: func(string) (*silicon.Chip, error) { return nil, nil }}); err == nil {
		t.Error("nil registry accepted")
	}

	re, err := fleet.NewReEnroller(reg, fleet.ReEnrollConfig{
		Seed:   9,
		Enroll: fastEnroll(),
		Chip: func(id string) (*silicon.Chip, error) {
			switch id {
			case "chip-0":
				c := agedChip(0)
				c.BlowFuses()
				return c, nil
			default:
				return nil, errors.New("device unreachable")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.ReEnroll("ghost"); err == nil {
		t.Error("re-enrolled an unregistered chip")
	}
	// Blown fuses: soft responses are gone, the repair must refuse rather
	// than fit a model to hard readouts.
	if err := re.ReEnroll("chip-0"); err == nil {
		t.Error("re-enrolled a chip with blown fuses")
	}
	if got := reg.Lookup("chip-0").HealthState(); got != health.Healthy {
		t.Errorf("failed re-enroll disturbed health: %v", got)
	}
	re.Close()
	if err := re.ReEnroll("chip-0"); err == nil {
		t.Error("closed re-enroller accepted work")
	}
}
