package fleet_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/netauth"
	"xorpuf/internal/registry"
	"xorpuf/internal/registry/fleet"
	"xorpuf/internal/silicon"
)

// fastEnroll keeps per-chip enrollment cheap enough to do by the thousand in
// a test while still running the real Fig 6 pipeline.
func fastEnroll() core.EnrollConfig {
	cfg := core.DefaultEnrollConfig()
	cfg.TrainingSize = 400
	cfg.ValidationSize = 1500
	return cfg
}

func testFleetConfig(chips, workers int) fleet.Config {
	return fleet.Config{
		Chips:    chips,
		Workers:  workers,
		XORWidth: 2,
		Seed:     77,
		Enroll:   fastEnroll(),
	}
}

func modelsEqual(a, b *core.ChipModel) bool {
	if a.Width() != b.Width() || a.Stages() != b.Stages() ||
		a.Beta0 != b.Beta0 || a.Beta1 != b.Beta1 {
		return false
	}
	for i := range a.PUFs {
		p, q := a.PUFs[i], b.PUFs[i]
		if p.Thr0 != q.Thr0 || p.Thr1 != q.Thr1 {
			return false
		}
		for j := range p.Theta {
			if p.Theta[j] != q.Theta[j] {
				return false
			}
		}
	}
	return true
}

// TestDeterminismAcrossWorkerCounts is the pipeline's core promise: the
// enrolled fleet is a function of the seed alone, not of parallelism or
// scheduling.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	const chips = 6
	var regs [2]*registry.Registry
	for i, workers := range []int{1, 4} {
		r, err := registry.Open("", registry.Options{Seed: 1})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer r.Close()
		var calls int32
		var mu sync.Mutex
		cfg := testFleetConfig(chips, workers)
		cfg.Progress = func(done, total int) {
			mu.Lock()
			calls++
			mu.Unlock()
			if total != chips {
				t.Errorf("Progress total = %d, want %d", total, chips)
			}
		}
		rep, err := fleet.Run(cfg, r)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		if rep.Enrolled != chips || rep.Skipped != 0 || rep.Failed != 0 {
			t.Fatalf("Run(workers=%d) report %+v", workers, rep)
		}
		if calls != chips {
			t.Fatalf("Progress called %d times, want %d", calls, chips)
		}
		regs[i] = r
	}
	for i := 0; i < chips; i++ {
		id := fmt.Sprintf("chip-%d", i)
		e1, e2 := regs[0].Lookup(id), regs[1].Lookup(id)
		if e1 == nil || e2 == nil {
			t.Fatalf("%s missing from one of the registries", id)
		}
		if !modelsEqual(e1.Model(), e2.Model()) {
			t.Fatalf("%s enrolled differently under 1 vs 4 workers", id)
		}
	}
}

// TestSkipExistingResumes verifies the pipeline can resume over a
// WAL-recovered registry: already-present chips are skipped, the remainder
// enrolled.
func TestSkipExistingResumes(t *testing.T) {
	dir := t.TempDir()
	r1, err := registry.Open(dir, registry.Options{Seed: 2, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rep, err := fleet.Run(testFleetConfig(4, 2), r1); err != nil || rep.Enrolled != 4 {
		t.Fatalf("first Run: %+v, %v", rep, err)
	}
	// Hard stop (no Close); resume over the recovered registry with a
	// larger target.
	r2, err := registry.Open(dir, registry.Options{Seed: 2, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer r2.Close()
	cfg := testFleetConfig(10, 2)
	cfg.SkipExisting = true
	rep, err := fleet.Run(cfg, r2)
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if rep.Enrolled != 6 || rep.Skipped != 4 || rep.Failed != 0 {
		t.Fatalf("resumed report %+v, want 6 enrolled / 4 skipped", rep)
	}
	if r2.Len() != 10 {
		t.Fatalf("Len = %d, want 10", r2.Len())
	}
	// Without SkipExisting the same run must report duplicate failures.
	rep, err = fleet.Run(testFleetConfig(10, 2), r2)
	if err == nil || rep.Failed != 10 {
		t.Fatalf("duplicate Run: %+v, err %v — want 10 failures", rep, err)
	}
}

// TestSkipExistingSkipsDeparted: a resurrected source whose range migrated
// away must treat departed chips as existing — re-enrolling one locally
// would fork its identity (and its never-reuse history) across two owners.
func TestSkipExistingSkipsDeparted(t *testing.T) {
	r, err := registry.Open("", registry.Options{Seed: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if rep, err := fleet.Run(testFleetConfig(4, 2), r); err != nil || rep.Enrolled != 4 {
		t.Fatalf("first Run: %+v, %v", rep, err)
	}
	// chips 1 and 2 migrate away (lexicographic range [chip-1, chip-3)).
	if err := r.CutoverSource("m1", 1, "chip-1", "chip-3", "new-owner:1"); err != nil {
		t.Fatalf("CutoverSource: %v", err)
	}
	cfg := testFleetConfig(4, 2)
	cfg.SkipExisting = true
	rep, err := fleet.Run(cfg, r)
	if err != nil {
		t.Fatalf("resumed Run over departed range: %v", err)
	}
	if rep.Skipped != 4 || rep.Enrolled != 0 || rep.Failed != 0 {
		t.Fatalf("resumed report %+v, want all 4 skipped", rep)
	}
	if r.Lookup("chip-1") != nil {
		t.Fatal("departed chip re-enrolled on the source")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	r, err := registry.Open("", registry.Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if _, err := fleet.Run(fleet.Config{Chips: 0}, r); err == nil {
		t.Error("Chips=0 accepted")
	}
	if _, err := fleet.Run(fleet.Config{Chips: 1}, nil); err == nil {
		t.Error("nil registry accepted")
	}
}

// wireFrame mirrors netauth's JSON envelope for raw-wire inspection;
// CRC-less frames are accepted by the server (legacy-peer path).
type wireFrame struct {
	Type       string   `json:"type"`
	ChipID     string   `json:"chip_id,omitempty"`
	Session    string   `json:"session,omitempty"`
	Challenges []string `json:"challenges,omitempty"`
	Message    string   `json:"message,omitempty"`
	Code       string   `json:"code,omitempty"`
}

// grabChallenges opens a raw session, records the challenge set the server
// issues for chipID, and abandons the session (the challenges stay burned —
// Issue journals before sending).
func grabChallenges(t *testing.T, addr, chipID string) map[string]bool {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	hello, _ := json.Marshal(wireFrame{Type: "hello", ChipID: chipID})
	if _, err := conn.Write(append(hello, '\n')); err != nil {
		t.Fatalf("write hello: %v", err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("read challenges: %v", err)
	}
	var frame wireFrame
	if err := json.Unmarshal(line, &frame); err != nil {
		t.Fatalf("parse frame: %v", err)
	}
	if frame.Type != "challenges" {
		t.Fatalf("got %q frame (code %q: %s), want challenges", frame.Type, frame.Code, frame.Message)
	}
	set := make(map[string]bool, len(frame.Challenges))
	for _, c := range frame.Challenges {
		set[c] = true
	}
	return set
}

// TestKillAndRestartFleet is the subsystem acceptance test: enroll ≥1000
// chips through the parallel pipeline into a persistent registry, serve
// authentications against it, hard-stop the process state (no Close),
// recover from snapshot + WAL, and verify (a) every enrollment survived,
// (b) no previously issued challenge is ever reissued, (c) genuine and
// impostor verdicts are unchanged.
func TestKillAndRestartFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale test skipped in -short mode")
	}
	dir := t.TempDir()
	const (
		fleetSeed  = 77
		regSeed    = 5
		chips      = 1000
		perSession = 20
	)

	r1, err := registry.Open(dir, registry.Options{Seed: regSeed, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cfg := testFleetConfig(chips, 8)
	rep, err := fleet.Run(cfg, r1)
	if err != nil {
		t.Fatalf("fleet.Run: %v", err)
	}
	if rep.Enrolled != chips {
		t.Fatalf("enrolled %d of %d (failed %d)", rep.Enrolled, chips, rep.Failed)
	}
	// Compact now so recovery exercises snapshot + WAL tail together: the
	// enrollments live in the snapshot, the issuance journal in the tail.
	if err := r1.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}

	srv1 := netauth.NewServerWithRegistry(perSession, 9, r1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv1.Serve(ln) //nolint:errcheck
	addr := ln.Addr().String()

	// Authenticate a sample of genuine devices and one impostor.
	genuineIDs := []string{"chip-0", "chip-1", "chip-42", "chip-500", "chip-999"}
	for _, id := range genuineIDs {
		var idx int
		fmt.Sscanf(id, "chip-%d", &idx) //nolint:errcheck
		dev := fleet.Chip(fleetSeed, idx, silicon.DefaultParams(), 2)
		res, err := netauth.Authenticate(addr, id, dev, silicon.Nominal, 10*time.Second)
		if err != nil {
			t.Fatalf("genuine auth %s: %v", id, err)
		}
		if !res.Approved {
			t.Fatalf("genuine %s denied pre-restart (%d mismatches)", id, res.Mismatches)
		}
	}
	impostor := fleet.Chip(^uint64(fleetSeed), 0, silicon.DefaultParams(), 2)
	res, err := netauth.Authenticate(addr, "chip-7", impostor, silicon.Nominal, 10*time.Second)
	if err != nil {
		t.Fatalf("impostor auth: %v", err)
	}
	if res.Approved {
		t.Fatal("impostor approved pre-restart")
	}
	// Burn one more session's challenges for chip-7 and remember them.
	preChallenges := grabChallenges(t, addr, "chip-7")
	if len(preChallenges) != perSession {
		t.Fatalf("pre-restart session issued %d challenges, want %d", len(preChallenges), perSession)
	}

	// Pre-stop accounting to compare after recovery.
	type chipState struct{ issued, remaining int }
	preStatus := make(map[string]chipState)
	for _, id := range append(append([]string{}, genuineIDs...), "chip-7", "chip-300") {
		st := r1.Lookup(id).Status()
		preStatus[id] = chipState{st.Issued, st.Remaining}
	}

	// Hard stop: stop the listener but never Close the registry — its state
	// must survive on disk (snapshot + WAL tail) alone.
	srv1.Close()

	start := time.Now()
	r2, err := registry.Open(dir, registry.Options{Seed: regSeed, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer r2.Close()
	t.Logf("recovered %d chips in %v", r2.Len(), time.Since(start))

	// (a) Every enrollment survived, bit-exact.
	if r2.Len() != chips {
		t.Fatalf("recovered %d chips, want %d", r2.Len(), chips)
	}
	for _, id := range []string{"chip-0", "chip-321", "chip-999"} {
		e := r2.Lookup(id)
		if e == nil {
			t.Fatalf("%s missing after recovery", id)
		}
		if !modelsEqual(e.Model(), r1.Lookup(id).Model()) {
			t.Fatalf("%s model changed across restart", id)
		}
	}
	for id, want := range preStatus {
		st := r2.Lookup(id).Status()
		if st.Issued != want.issued || st.Remaining != want.remaining {
			t.Fatalf("%s accounting %+v after recovery, want %+v", id, st, want)
		}
	}

	srv2 := netauth.NewServerWithRegistry(perSession, 9, r2)
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2) //nolint:errcheck
	defer srv2.Close()
	addr2 := ln2.Addr().String()

	// (b) The registry reopened with the SAME seed, so its selectors
	// regenerate the same candidate streams that produced every pre-stop
	// session — only the recovered used-challenge history prevents reissue.
	postChallenges := grabChallenges(t, addr2, "chip-7")
	if len(postChallenges) != perSession {
		t.Fatalf("post-restart session issued %d challenges, want %d", len(postChallenges), perSession)
	}
	for c := range postChallenges {
		if preChallenges[c] {
			t.Fatalf("challenge %s reissued after restart", c)
		}
	}

	// (c) Verdicts unchanged: genuine devices still approve, the impostor is
	// still denied.
	for _, id := range genuineIDs {
		var idx int
		fmt.Sscanf(id, "chip-%d", &idx) //nolint:errcheck
		dev := fleet.Chip(fleetSeed, idx, silicon.DefaultParams(), 2)
		res, err := netauth.Authenticate(addr2, id, dev, silicon.Nominal, 10*time.Second)
		if err != nil {
			t.Fatalf("genuine auth %s post-restart: %v", id, err)
		}
		if !res.Approved {
			t.Fatalf("genuine %s denied post-restart (%d mismatches)", id, res.Mismatches)
		}
	}
	res, err = netauth.Authenticate(addr2, "chip-7", impostor, silicon.Nominal, 10*time.Second)
	if err != nil {
		t.Fatalf("impostor auth post-restart: %v", err)
	}
	if res.Approved {
		t.Fatal("impostor approved post-restart")
	}
}
