// Replication surface: the hooks a WAL-shipping layer (internal/registry/repl)
// uses to turn one registry into a primary and another into a follower.
//
// Primary side: SetAppendObserver taps every durably journaled record, in
// exact sequence order, as the shipping source; SetCommitWaiter lets the
// issuance path (Entry.Issue) block until the configured follower quorum has
// acknowledged the recIssued record, so a challenge never leaves the server
// before the burn is replicated.
//
// Follower side: ApplyReplicated journals a record from the primary at the
// primary's sequence number — refusing gaps, so the log can degrade but never
// fork — and then applies it to the live store under the normal entry/shard
// locking.  InstallSnapshot bootstraps a new or lagging follower from a full
// XPS2 snapshot.  A follower registry must not take local mutations while it
// is replicating; promotion simply stops feeding ApplyReplicated and starts
// serving, since the store is already a sequence-exact copy.
package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"xorpuf/internal/health"
)

// ErrSeqGap is returned by ApplyReplicated when a record does not directly
// extend the local log.  It is terminal for a replication link: applying it
// would fork the log, so the follower must drop the link and re-bootstrap.
var ErrSeqGap = errors.New("registry: replicated record out of sequence")

// AppendObserver sees every record after it is durably appended, under the
// registry's journal lock (exact seq order, no concurrent calls).  It must
// return quickly and must copy payload if it retains it.
type AppendObserver func(seq uint64, typ byte, payload []byte)

// CommitWaiter gates challenge issuance on replication: Entry.Issue calls it
// with the recIssued record's sequence number and refuses to release the
// challenges unless it returns nil.  ctx carries request-scoped observability
// state — a distributed-trace context injected by IssueCtx travels through
// here so the replication layer can record the quorum wait as a child span —
// and is never used for cancellation: the burn is already journaled, so the
// wait must run to its own verdict.
type CommitWaiter func(ctx context.Context, seq uint64) error

// primaryObsSlot is the reserved slot ID for SetAppendObserver, which keeps
// its replace-the-one-observer semantics for the replication primary while
// AddAppendObserver multiplexes additional taps (a live migration source).
const primaryObsSlot = 0

// SetAppendObserver attaches (or, with nil, detaches) the replication
// primary's append observer.  Additional observers registered with
// AddAppendObserver are unaffected.
func (r *Registry) SetAppendObserver(fn AppendObserver) {
	r.obsMu.Lock()
	defer r.obsMu.Unlock()
	if fn == nil {
		delete(r.obsSlots, primaryObsSlot)
	} else {
		r.obsSlots[primaryObsSlot] = fn
	}
	r.rebuildObsLocked()
}

// AddAppendObserver registers an additional append observer — the hook a
// migration source uses to tail the live WAL for its range while a
// replication primary keeps shipping the full log.  The returned function
// removes it.  Observers run under the journal lock in registration order;
// like SetAppendObserver's, they must be fast and copy retained payloads.
func (r *Registry) AddAppendObserver(fn AppendObserver) (remove func()) {
	r.obsMu.Lock()
	r.obsSeq++
	id := r.obsSeq
	r.obsSlots[id] = fn
	r.rebuildObsLocked()
	r.obsMu.Unlock()
	return func() {
		r.obsMu.Lock()
		delete(r.obsSlots, id)
		r.rebuildObsLocked()
		r.obsMu.Unlock()
	}
}

// rebuildObsLocked republishes the copy-on-write observer list (obsMu held).
// The primary slot (0) always runs first; additional taps follow in
// registration order.
func (r *Registry) rebuildObsLocked() {
	if len(r.obsSlots) == 0 {
		r.appendObs.Store(nil)
		return
	}
	ids := make([]uint64, 0, len(r.obsSlots))
	for id := range r.obsSlots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	list := make([]AppendObserver, 0, len(ids))
	for _, id := range ids {
		list = append(list, r.obsSlots[id])
	}
	r.appendObs.Store(&list)
}

// SetCommitWaiter attaches (or, with nil, detaches) the issuance commit
// waiter.
func (r *Registry) SetCommitWaiter(fn CommitWaiter) {
	if fn == nil {
		r.commitWait.Store(nil)
		return
	}
	r.commitWait.Store(&fn)
}

func (r *Registry) waitCommitted(ctx context.Context, seq uint64) error {
	if w := r.commitWait.Load(); w != nil {
		return (*w)(ctx, seq)
	}
	return nil
}

// WaitCommitted blocks until the attached commit waiter (the replication
// quorum) acknowledges seq, or returns immediately when no waiter is
// attached.  The migration acceptor gates its cutover acknowledgement on
// this, so an ownership transfer is quorum-safe on the target before the
// source drops the range.
func (r *Registry) WaitCommitted(seq uint64) error {
	return r.waitCommitted(context.Background(), seq)
}

// Seq returns the sequence number of the last record in the local log.
func (r *Registry) Seq() uint64 {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	return r.seq
}

// ApplyReplicated applies one record shipped from a replication primary.
// The record is validated first, then journaled locally at the primary's
// sequence number, then applied to the live store — so an error at any step
// means the record took no effect and the caller must NOT acknowledge it.
//
// seq must directly extend the local log (Seq()+1); anything else returns
// ErrSeqGap, which is terminal for the link.  A WAL append or fsync failure
// is likewise returned as a structured error with nothing applied.
func (r *Registry) ApplyReplicated(seq uint64, typ byte, payload []byte) error {
	if r.closed.Load() {
		return ErrClosed
	}
	r.opmu.RLock()
	defer r.opmu.RUnlock()
	apply, err := r.decodeReplicated(typ, payload)
	if err != nil {
		return err
	}
	if err := r.journalReplicated(seq, typ, payload); err != nil {
		return err
	}
	apply()
	return nil
}

// journalReplicated appends one record at an explicit (primary-assigned)
// sequence number, enforcing continuity.  Caller holds opmu.R.
func (r *Registry) journalReplicated(seq uint64, typ byte, payload []byte) error {
	r.pmu.Lock()
	if r.wal == nil && r.dir != "" {
		r.pmu.Unlock()
		return ErrClosed
	}
	if seq != r.seq+1 {
		want := r.seq + 1
		r.pmu.Unlock()
		return fmt.Errorf("%w: got seq %d, want %d", ErrSeqGap, seq, want)
	}
	needCompact, err := r.appendLocked(seq, typ, payload)
	if err == nil {
		r.seq = seq
	}
	r.pmu.Unlock()
	r.maybeCompactAsync(needCompact)
	return err
}

// decodeReplicated validates a record payload and returns a closure that
// applies it under the normal shard/entry locking.  Decoding before
// journaling keeps a malformed record from entering the local log.
func (r *Registry) decodeReplicated(typ byte, payload []byte) (func(), error) {
	rd := &reader{b: payload}
	switch typ {
	case recRegister, recReenroll:
		id := rd.str()
		budget := int(rd.u32())
		model := rd.readModel()
		if rd.err != nil {
			return nil, fmt.Errorf("register/reenroll record: %w", rd.err)
		}
		return func() {
			e := r.Lookup(id)
			if e == nil {
				sel := r.newSelector(id, model)
				sel.SetBudget(budget)
				r.install(&Entry{id: id, reg: r, model: model, selector: sel,
					tracker: health.NewTracker(r.opts.Health)})
				return
			}
			if typ == recRegister {
				return // duplicate registration: primary already rejected it
			}
			// Mirror Replace: new model goes live, every previously issued
			// challenge stays burned, abuse counters and detectors reset.
			sel := r.newSelector(id, model)
			sel.SetBudget(budget)
			e.mu.Lock()
			sel.MarkUsed(e.selector.ExportState().Used...)
			e.model, e.selector = model, sel
			e.denials, e.locked = 0, false
			e.tracker.Reset()
			e.mu.Unlock()
		}, nil
	case recIssued, recKeyIssued:
		id := rd.str()
		n := int(rd.u32())
		if rd.err == nil && n > maxUsedWords {
			rd.fail("implausible issued count %d", n)
		}
		if rd.err != nil {
			return nil, fmt.Errorf("issued record: %w", rd.err)
		}
		words := make([]uint64, n)
		for i := range words {
			words[i] = rd.u64()
		}
		if rd.err != nil {
			return nil, fmt.Errorf("issued record: %w", rd.err)
		}
		return func() {
			if e := r.Lookup(id); e != nil {
				e.mu.Lock()
				e.selector.MarkUsed(words...)
				e.mu.Unlock()
			}
		}, nil
	case recAbuse:
		id := rd.str()
		denials := int(rd.u32())
		locked := rd.u8() == 1
		if rd.err != nil {
			return nil, fmt.Errorf("abuse record: %w", rd.err)
		}
		return func() {
			if e := r.Lookup(id); e != nil {
				e.mu.Lock()
				e.denials, e.locked = denials, locked
				e.mu.Unlock()
			}
		}, nil
	case recDeregister:
		id := rd.str()
		if rd.err != nil {
			return nil, fmt.Errorf("deregister record: %w", rd.err)
		}
		return func() {
			sh := r.shard(id)
			sh.mu.Lock()
			_, ok := sh.m[id]
			delete(sh.m, id)
			sh.mu.Unlock()
			if ok {
				chipsGauge.Dec()
			}
		}, nil
	case recHealth:
		id := rd.str()
		st := rd.readTrackerState()
		if rd.err != nil {
			return nil, fmt.Errorf("health record: %w", rd.err)
		}
		return func() {
			if e := r.Lookup(id); e != nil {
				e.mu.Lock()
				e.tracker.Restore(st)
				e.mu.Unlock()
			}
		}, nil
	case recMigratedBurn:
		id := rd.str()
		n := int(rd.u32())
		if rd.err == nil && n > maxUsedWords {
			rd.fail("implausible issued count %d", n)
		}
		if rd.err != nil {
			return nil, fmt.Errorf("migrated-burn record: %w", rd.err)
		}
		words := make([]uint64, n)
		for i := range words {
			words[i] = rd.u64()
		}
		if rd.err != nil {
			return nil, fmt.Errorf("migrated-burn record: %w", rd.err)
		}
		return func() {
			if e := r.Lookup(id); e != nil {
				e.mu.Lock()
				e.selector.MarkUsed(words...)
				e.mu.Unlock()
			}
		}, nil
	case recRangeFence:
		migID, lo, hi, mode := rd.readFence()
		if rd.err != nil {
			return nil, fmt.Errorf("fence record: %w", rd.err)
		}
		return func() {
			r.ownMu.Lock()
			r.own.fences = deleteFence(r.own.fences, migID)
			if mode == fenceSet {
				r.own.fences = append(r.own.fences, MigRange{ID: migID, Lo: lo, Hi: hi})
			}
			r.ownMu.Unlock()
		}, nil
	case recMigrateIn:
		migID := rd.str()
		lo := rd.str()
		hi := rd.str()
		e := r.readEntryState(rd)
		if rd.err != nil {
			return nil, fmt.Errorf("migrate-in record: %w", rd.err)
		}
		return func() {
			e.arriving = migID
			r.installArriving(e)
			r.ownMu.Lock()
			a := r.own.arrivals[migID]
			if a == nil {
				a = &arrival{lo: lo, hi: hi, chips: make(map[string]struct{})}
				r.own.arrivals[migID] = a
			}
			a.lo, a.hi = lo, hi
			a.chips[e.id] = struct{}{}
			r.ownMu.Unlock()
		}, nil
	case recCutover:
		migID, epoch, lo, hi, role, redirect := rd.readCutover()
		if rd.err != nil {
			return nil, fmt.Errorf("cutover record: %w", rd.err)
		}
		return func() {
			if role == cutoverSource {
				r.applyCutoverSource(migID, epoch, lo, hi, redirect)
			} else {
				r.applyCutoverTarget(migID, epoch, lo, hi)
			}
		}, nil
	case recMigrateAbort:
		migID := rd.str()
		if rd.err != nil {
			return nil, fmt.Errorf("migrate-abort record: %w", rd.err)
		}
		return func() { r.applyMigrateAbort(migID) }, nil
	default:
		return nil, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, typ)
	}
}

// SnapshotBytes returns a full XPS2-framed snapshot of the store and the
// sequence cut it reflects: every record with seq ≤ the cut is included, so a
// follower that installs it need only tail records after the cut.  The store
// is quiesced (opmu.W) for the duration, exactly like Compact.
func (r *Registry) SnapshotBytes() ([]byte, uint64, error) {
	if r.closed.Load() {
		return nil, 0, ErrClosed
	}
	r.opmu.Lock()
	defer r.opmu.Unlock()
	r.pmu.Lock()
	defer r.pmu.Unlock()
	return encodeSnapshot(r.snapshotBodyLocked()), r.seq, nil
}

// InstallSnapshot replaces the entire store with the contents of an
// XPS2-framed snapshot (as produced by SnapshotBytes) — the follower
// bootstrap path.  The snapshot is fully validated before any live state is
// touched.  On a persistent registry the snapshot is also written to disk
// and the WAL reset, so a follower that crashes right after install recovers
// at the snapshot cut instead of an older local state.
func (r *Registry) InstallSnapshot(data []byte) error {
	if r.closed.Load() {
		return ErrClosed
	}
	entries, own, seq, err := r.decodeSnapshot(data)
	if err != nil {
		return err
	}
	r.opmu.Lock()
	defer r.opmu.Unlock()
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for id := range sh.m {
			delete(sh.m, id)
			chipsGauge.Dec()
		}
		sh.mu.Unlock()
	}
	for _, e := range entries {
		r.install(e)
	}
	r.ownMu.Lock()
	r.own = own
	r.ownMu.Unlock()
	r.pmu.Lock()
	defer r.pmu.Unlock()
	r.seq = seq
	if r.wal == nil {
		return nil
	}
	if err := r.writeSnapshotFile(data); err != nil {
		return err
	}
	return r.resetWALLocked()
}
