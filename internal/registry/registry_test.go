package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"xorpuf/internal/core"
)

// syntheticModel builds a cheap deterministic chip model whose every
// challenge is predicted Stable0 (zero θ ⇒ prediction 0.0 < Thr0), so
// selection never stalls and tests never pay for real enrollment.
func syntheticModel(width, stages int) *core.ChipModel {
	m := &core.ChipModel{PUFs: make([]*core.PUFModel, width), Beta0: 1, Beta1: 1}
	for i := range m.PUFs {
		p := &core.PUFModel{Theta: make([]float64, stages+1), Thr0: 0.4, Thr1: 0.6}
		for j := range p.Theta {
			// Non-trivial but tiny coefficients keep predictions inside the
			// stable-0 band while exercising float round-tripping.
			p.Theta[j] = float64((i+1)*(j+1)) * 1e-6
		}
		m.PUFs[i] = p
	}
	return m
}

func issueWords(t *testing.T, e *Entry, n int) map[uint64]bool {
	t.Helper()
	cs, bits, err := e.Issue(n, 0)
	if err != nil {
		t.Fatalf("Issue(%d): %v", n, err)
	}
	if len(cs) != n || len(bits) != n {
		t.Fatalf("Issue(%d) returned %d challenges, %d bits", n, len(cs), len(bits))
	}
	words := make(map[uint64]bool, n)
	for _, c := range cs {
		words[c.Word()] = true
	}
	if len(words) != n {
		t.Fatalf("Issue returned duplicate challenges within one call")
	}
	return words
}

func TestModelCodecRoundTrip(t *testing.T) {
	want := syntheticModel(3, 32)
	want.Beta0, want.Beta1 = 0.87, 1.13
	rd := &reader{b: appendModel(nil, want)}
	got := rd.readModel()
	if rd.err != nil {
		t.Fatalf("readModel: %v", rd.err)
	}
	if len(rd.b) != 0 {
		t.Fatalf("%d trailing bytes after decode", len(rd.b))
	}
	if got.Width() != want.Width() || got.Stages() != want.Stages() {
		t.Fatalf("geometry %d×%d, want %d×%d", got.Width(), got.Stages(), want.Width(), want.Stages())
	}
	if got.Beta0 != want.Beta0 || got.Beta1 != want.Beta1 {
		t.Fatalf("betas (%v,%v), want (%v,%v)", got.Beta0, got.Beta1, want.Beta0, want.Beta1)
	}
	for i, p := range want.PUFs {
		q := got.PUFs[i]
		if q.Thr0 != p.Thr0 || q.Thr1 != p.Thr1 {
			t.Fatalf("PUF %d thresholds differ", i)
		}
		for j := range p.Theta {
			if q.Theta[j] != p.Theta[j] {
				t.Fatalf("PUF %d θ[%d] = %v, want %v", i, j, q.Theta[j], p.Theta[j])
			}
		}
	}
}

func TestModelCodecRejectsCorruption(t *testing.T) {
	enc := appendModel(nil, syntheticModel(2, 16))
	// Every strict prefix must fail cleanly, not panic or mis-decode.
	for n := 0; n < len(enc); n++ {
		rd := &reader{b: enc[:n]}
		if rd.readModel(); rd.err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Implausible geometry must be rejected before allocation.
	bad := appendU16(nil, 0xffff) // width 65535 > maxWidth
	bad = appendU16(bad, 16)
	rd := &reader{b: bad}
	if rd.readModel(); !errors.Is(rd.err, ErrCorrupt) {
		t.Fatalf("implausible width err = %v, want ErrCorrupt", rd.err)
	}
}

func TestSelectorStateCodecRoundTrip(t *testing.T) {
	want := core.SelectorState{Used: []uint64{3, 17, 0xdeadbeefcafe}, Budget: 250}
	rd := &reader{b: appendSelectorState(nil, want)}
	got := rd.readSelectorState()
	if rd.err != nil {
		t.Fatalf("readSelectorState: %v", rd.err)
	}
	if got.Budget != want.Budget || len(got.Used) != len(want.Used) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want.Used {
		if got.Used[i] != want.Used[i] {
			t.Fatalf("word %d = %d, want %d", i, got.Used[i], want.Used[i])
		}
	}
}

func TestVolatileRegistryBasics(t *testing.T) {
	r, err := Open("", Options{Seed: 7})
	if err != nil {
		t.Fatalf("Open volatile: %v", err)
	}
	defer r.Close()

	if err := r.Register("", syntheticModel(2, 32), 0); err == nil {
		t.Fatal("empty chip ID accepted")
	}
	if err := r.Register("chip-A", nil, 0); err == nil {
		t.Fatal("nil model accepted")
	}
	if err := r.Register("chip-A", syntheticModel(2, 32), 0); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register("chip-A", syntheticModel(2, 32), 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate Register err = %v, want ErrDuplicate", err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	e := r.Lookup("chip-A")
	if e == nil || e.ID() != "chip-A" {
		t.Fatal("Lookup failed after Register")
	}
	if r.Lookup("chip-B") != nil {
		t.Fatal("Lookup of unregistered chip returned an entry")
	}
	first := issueWords(t, e, 8)
	second := issueWords(t, e, 8)
	for w := range second {
		if first[w] {
			t.Fatalf("challenge word %d issued twice", w)
		}
	}
	if st := e.Status(); st.Issued != 16 || st.Remaining != -1 {
		t.Fatalf("Status = %+v, want Issued 16, Remaining -1", st)
	}
	if !r.Deregister("chip-A") {
		t.Fatal("Deregister reported not-registered")
	}
	if r.Deregister("chip-A") {
		t.Fatal("second Deregister reported registered")
	}
	if r.Lookup("chip-A") != nil || r.Len() != 0 {
		t.Fatal("entry survived Deregister")
	}
}

func TestRegistryClosedMutations(t *testing.T) {
	r, err := Open(t.TempDir(), Options{Seed: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := r.Register("chip-0", syntheticModel(2, 32), 0); err != nil {
		t.Fatalf("Register: %v", err)
	}
	e := r.Lookup("chip-0")
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := r.Register("chip-1", syntheticModel(2, 32), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register after Close err = %v, want ErrClosed", err)
	}
	if _, _, err := e.Issue(1, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Issue after Close err = %v, want ErrClosed", err)
	}
	if r.Deregister("chip-0") {
		t.Fatal("Deregister succeeded after Close")
	}
}

// TestRecoveryAfterHardStop is the core durability contract: a registry that
// is abandoned without Close (kill -9) must recover every registration, the
// full used-challenge history, abuse-control state, and budgets from the WAL
// alone — and, reopened with the same seed (so the candidate challenge
// streams replay identically), must never reissue a previously issued
// challenge.
func TestRecoveryAfterHardStop(t *testing.T) {
	dir := t.TempDir()
	const seed = 42

	r1, err := Open(dir, Options{Seed: seed, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := r1.Register(fmt.Sprintf("chip-%d", i), syntheticModel(2, 32), 100); err != nil {
			t.Fatalf("Register chip-%d: %v", i, err)
		}
	}
	before := make(map[string]map[uint64]bool)
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("chip-%d", i)
		before[id] = issueWords(t, r1.Lookup(id), 10+i)
	}
	// Abuse state: two denials lock chip-3 at K=2; chip-4 denies once then
	// recovers with an approval.
	r1.Lookup("chip-3").Verdict(false, 2)
	if !r1.Lookup("chip-3").Verdict(false, 2) {
		t.Fatal("chip-3 not locked after 2 denials with K=2")
	}
	r1.Lookup("chip-4").Verdict(false, 2)
	r1.Lookup("chip-4").Verdict(true, 2)
	// Revocation must be durable too.
	if !r1.Deregister("chip-1") {
		t.Fatal("Deregister chip-1 failed")
	}
	// Hard stop: r1 is abandoned, never Closed, no snapshot was written.

	r2, err := Open(dir, Options{Seed: seed, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer r2.Close()
	if r2.Len() != 4 {
		t.Fatalf("recovered Len = %d, want 4", r2.Len())
	}
	if r2.Lookup("chip-1") != nil {
		t.Fatal("deregistered chip-1 resurrected by recovery")
	}
	for i := 0; i < 5; i++ {
		if i == 1 {
			continue
		}
		id := fmt.Sprintf("chip-%d", i)
		e := r2.Lookup(id)
		if e == nil {
			t.Fatalf("%s missing after recovery", id)
		}
		st := e.Status()
		if st.Issued != 10+i {
			t.Fatalf("%s Issued = %d, want %d", id, st.Issued, 10+i)
		}
		if st.Remaining != 100-(10+i) {
			t.Fatalf("%s Remaining = %d, want %d", id, st.Remaining, 100-(10+i))
		}
		switch id {
		case "chip-3":
			if !st.Locked || st.Denials != 2 {
				t.Fatalf("chip-3 status %+v, want locked with 2 denials", st)
			}
		case "chip-4":
			if st.Locked || st.Denials != 0 {
				t.Fatalf("chip-4 status %+v, want unlocked with 0 denials", st)
			}
		}
		// The adversarial replay: same seed ⇒ the selector's rng regenerates
		// the exact candidate stream that produced the pre-crash issuance.
		// Only the recovered used-set stands between us and reissue.
		after := issueWords(t, e, 10)
		for w := range after {
			if before[id][w] {
				t.Fatalf("%s reissued challenge word %d after recovery", id, w)
			}
		}
	}
	// Unlock is journaled: lift chip-3's lockout, hard-stop again, recover.
	if !r2.Lookup("chip-3").Unlock() {
		t.Fatal("Unlock chip-3 reported not-locked")
	}

	r3, err := Open(dir, Options{Seed: seed, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("second recovery Open: %v", err)
	}
	defer r3.Close()
	if st := r3.Lookup("chip-3").Status(); st.Locked || st.Denials != 0 {
		t.Fatalf("chip-3 status after unlock+recovery = %+v, want clear", st)
	}
}

// TestRecoverySnapshotPlusTail exercises the combined path: some state lives
// only in the compacted snapshot, some only in the WAL tail written after it.
func TestRecoverySnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	const seed = 9

	r1, err := Open(dir, Options{Seed: seed, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := r1.Register("old", syntheticModel(2, 32), 50); err != nil {
		t.Fatalf("Register old: %v", err)
	}
	oldWords := issueWords(t, r1.Lookup("old"), 7)
	if err := r1.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Post-snapshot mutations land only in the fresh WAL.
	moreOld := issueWords(t, r1.Lookup("old"), 5)
	if err := r1.Register("new", syntheticModel(2, 32), 0); err != nil {
		t.Fatalf("Register new: %v", err)
	}
	newWords := issueWords(t, r1.Lookup("new"), 3)
	// Hard stop.

	r2, err := Open(dir, Options{Seed: seed, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer r2.Close()
	if r2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r2.Len())
	}
	if st := r2.Lookup("old").Status(); st.Issued != 12 || st.Remaining != 38 {
		t.Fatalf("old status %+v, want Issued 12 Remaining 38", st)
	}
	if st := r2.Lookup("new").Status(); st.Issued != 3 || st.Remaining != -1 {
		t.Fatalf("new status %+v, want Issued 3 Remaining -1", st)
	}
	for w := range issueWords(t, r2.Lookup("old"), 10) {
		if oldWords[w] || moreOld[w] {
			t.Fatalf("old reissued word %d", w)
		}
	}
	for w := range issueWords(t, r2.Lookup("new"), 10) {
		if newWords[w] {
			t.Fatalf("new reissued word %d", w)
		}
	}
}

// TestRecoveryTruncatesTornTail simulates a crash mid-append: trailing
// garbage after the last good record must be detected, dropped, and the log
// must accept appends again.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	r1, err := Open(dir, Options{Seed: 3, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := r1.Register("chip-A", syntheticModel(2, 32), 0); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r1.Register("chip-B", syntheticModel(2, 32), 0); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Hard stop, then a torn half-record at the tail.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	torn := appendU64(nil, 99)                        // seq
	torn = append(torn, recRegister)                  // type
	torn = appendU32(torn, 4096)                      // claims 4 KiB payload...
	torn = append(torn, []byte("only a fragment")...) // ...delivers 15 bytes
	if _, err := f.Write(torn); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()
	sizeWithTail, _ := os.Stat(walPath)

	r2, err := Open(dir, Options{Seed: 3, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("recovery Open over torn tail: %v", err)
	}
	if r2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r2.Len())
	}
	sizeAfter, _ := os.Stat(walPath)
	if sizeAfter.Size() >= sizeWithTail.Size() {
		t.Fatalf("torn tail not truncated: %d → %d bytes", sizeWithTail.Size(), sizeAfter.Size())
	}
	// The log must be appendable again, on a clean record boundary.
	if err := r2.Register("chip-C", syntheticModel(2, 32), 0); err != nil {
		t.Fatalf("Register after tail truncation: %v", err)
	}
	// Hard stop again; the post-truncation append must replay.
	r3, err := Open(dir, Options{Seed: 3, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("third Open: %v", err)
	}
	defer r3.Close()
	if r3.Len() != 3 {
		t.Fatalf("Len after torn-tail + append recovery = %d, want 3", r3.Len())
	}
}

// TestRecoveryRejectsCorruptSnapshot verifies a bit-flipped snapshot fails
// loudly (refuse to serve from an untrustworthy never-reuse history) rather
// than silently losing state.
func TestRecoveryRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	r1, err := Open(dir, Options{Seed: 5, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := r1.Register("chip-A", syntheticModel(2, 32), 0); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r1.Close(); err != nil { // Close compacts: state now in snapshot
		t.Fatalf("Close: %v", err)
	}
	snap := filepath.Join(dir, snapName)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatalf("write corrupted snapshot: %v", err)
	}
	if _, err := Open(dir, Options{Seed: 5}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt snapshot err = %v, want ErrCorrupt", err)
	}
}

// TestConcurrentMixedOperations hammers a persistent registry with
// concurrent registration, lookup, issuance, verdicts, and status reads
// while auto-compaction fires, then verifies the survivors recover.  Run
// under -race this is the registry's concurrency contract.
func TestConcurrentMixedOperations(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{Seed: 11, Shards: 8, SnapshotEvery: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	model := syntheticModel(2, 32)
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("chip-%d-%d", w, i)
				if err := r.Register(id, model, 0); err != nil {
					t.Errorf("Register %s: %v", id, err)
					return
				}
				e := r.Lookup(id)
				if e == nil {
					t.Errorf("Lookup %s after Register: nil", id)
					return
				}
				if _, _, err := e.Issue(2, 0); err != nil {
					t.Errorf("Issue %s: %v", id, err)
					return
				}
				e.Verdict(i%3 != 0, 5)
				_ = e.Status()
				// Read someone else's entry too, to cross shards.
				if other := r.Lookup(fmt.Sprintf("chip-%d-%d", (w+1)%workers, i)); other != nil {
					_ = other.Status()
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", r.Len(), workers*perWorker)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r2, err := Open(dir, Options{Seed: 11, Shards: 8})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer r2.Close()
	if r2.Len() != workers*perWorker {
		t.Fatalf("recovered Len = %d, want %d", r2.Len(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			id := fmt.Sprintf("chip-%d-%d", w, i)
			e := r2.Lookup(id)
			if e == nil {
				t.Fatalf("%s lost across restart", id)
			}
			if st := e.Status(); st.Issued != 2 {
				t.Fatalf("%s Issued = %d, want 2", id, st.Issued)
			}
		}
	}
}
