package registry

import (
	"testing"
)

// TestIssueKeySharesNeverReuseBudget is the chosen-challenge invariant for
// the key-exchange workload: challenges issued for key derivation and for
// authentication draw from one budget, and neither path can ever re-issue a
// word the other burned.
func TestIssueKeySharesNeverReuseBudget(t *testing.T) {
	r, err := Open("", Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Register("chip-0", syntheticModel(2, 32), 100); err != nil {
		t.Fatal(err)
	}
	e := r.Lookup("chip-0")

	keyWords := make(map[uint64]bool)
	cs, bits, err := e.IssueKey(20, 0)
	if err != nil {
		t.Fatalf("IssueKey: %v", err)
	}
	if len(cs) != 20 || len(bits) != 20 {
		t.Fatalf("IssueKey returned %d challenges, %d bits", len(cs), len(bits))
	}
	for _, c := range cs {
		keyWords[c.Word()] = true
	}
	if len(keyWords) != 20 {
		t.Fatal("IssueKey returned duplicates within one call")
	}

	// Auth issuance afterwards must avoid every key-derivation word, and a
	// second key issuance must avoid both earlier sets.
	authWords := issueWords(t, e, 30)
	for w := range authWords {
		if keyWords[w] {
			t.Fatalf("auth Issue re-issued key-derivation word %#x", w)
		}
	}
	cs2, _, err := e.IssueKey(20, 0)
	if err != nil {
		t.Fatalf("second IssueKey: %v", err)
	}
	for _, c := range cs2 {
		if keyWords[c.Word()] || authWords[c.Word()] {
			t.Fatalf("IssueKey re-issued burned word %#x", c.Word())
		}
	}

	// Budget is shared: 20 + 30 + 20 issued of 100 leaves 30.
	if st := e.Status(); st.Issued != 70 || st.Remaining != 30 {
		t.Fatalf("Status = issued %d remaining %d, want 70/30", st.Issued, st.Remaining)
	}
}

// TestIssueKeySurvivesHardStop: key-derivation burns are journaled under
// recKeyIssued and must replay across an un-Closed reopen exactly like auth
// burns — no word issued before the crash is ever issued after it.
func TestIssueKeySurvivesHardStop(t *testing.T) {
	dir := t.TempDir()
	const seed = 11

	r1, err := Open(dir, Options{Seed: seed, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Register("chip-0", syntheticModel(2, 32), 200); err != nil {
		t.Fatal(err)
	}
	burned := make(map[uint64]bool)
	cs, _, err := r1.Lookup("chip-0").IssueKey(40, 0)
	if err != nil {
		t.Fatalf("IssueKey: %v", err)
	}
	for _, c := range cs {
		burned[c.Word()] = true
	}
	for w := range issueWords(t, r1.Lookup("chip-0"), 25) {
		burned[w] = true
	}
	// Hard stop: r1 abandoned without Close, WAL replay only.

	r2, err := Open(dir, Options{Seed: seed, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer r2.Close()
	e := r2.Lookup("chip-0")
	if e == nil {
		t.Fatal("chip-0 missing after recovery")
	}
	if st := e.Status(); st.Issued != 65 {
		t.Fatalf("recovered Issued = %d, want 65", st.Issued)
	}
	cs2, _, err := e.IssueKey(40, 0)
	if err != nil {
		t.Fatalf("post-recovery IssueKey: %v", err)
	}
	for _, c := range cs2 {
		if burned[c.Word()] {
			t.Fatalf("word %#x re-issued after hard stop", c.Word())
		}
	}
	for w := range issueWords(t, e, 25) {
		if burned[w] {
			t.Fatalf("auth word %#x re-issued after hard stop", w)
		}
	}
}

// TestReplicatedKeyIssueApplies: a follower receiving a recKeyIssued record
// marks the words burned exactly like recIssued, so never-reuse holds after
// failover in the key-exchange workload too.
func TestReplicatedKeyIssueApplies(t *testing.T) {
	primary, err := Open("", Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	follower, err := Open("", Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	type rec struct {
		seq     uint64
		typ     byte
		payload []byte
	}
	var stream []rec
	primary.SetAppendObserver(func(seq uint64, typ byte, payload []byte) {
		stream = append(stream, rec{seq, typ, append([]byte(nil), payload...)})
	})
	if err := primary.Register("chip-0", syntheticModel(2, 32), 100); err != nil {
		t.Fatal(err)
	}
	cs, _, err := primary.Lookup("chip-0").IssueKey(15, 0)
	if err != nil {
		t.Fatalf("IssueKey: %v", err)
	}
	sawKeyRecord := false
	for _, r := range stream {
		if r.typ == recKeyIssued {
			sawKeyRecord = true
		}
		if err := follower.ApplyReplicated(r.seq, r.typ, r.payload); err != nil {
			t.Fatalf("ApplyReplicated seq %d type %d: %v", r.seq, r.typ, err)
		}
	}
	if !sawKeyRecord {
		t.Fatal("IssueKey did not journal a recKeyIssued record")
	}

	// Promote the follower: its selector must refuse every replicated word.
	burned := make(map[uint64]bool, len(cs))
	for _, c := range cs {
		burned[c.Word()] = true
	}
	cs2, _, err := follower.Lookup("chip-0").IssueKey(15, 0)
	if err != nil {
		t.Fatalf("follower IssueKey: %v", err)
	}
	for _, c := range cs2 {
		if burned[c.Word()] {
			t.Fatalf("promoted follower re-issued word %#x", c.Word())
		}
	}
	if st := follower.Lookup("chip-0").Status(); st.Issued != 30 {
		t.Fatalf("follower Issued = %d, want 30", st.Issued)
	}
}
