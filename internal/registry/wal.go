// Durability layer: an append-only write-ahead log of registry mutations
// plus periodically compacted snapshots, in the crpstore binary format
// family.
//
// WAL file ("registry.wal"):
//
//	magic   [4]byte  "XPW1"
//	records, each:
//	  seq     uint64   strictly increasing across the registry's lifetime
//	  type    uint8    rec* constant
//	  len     uint32   payload byte count
//	  payload len bytes
//	  crc     uint32   IEEE CRC32 over seq..payload
//
// Snapshot file ("registry.snap"):
//
//	magic   [4]byte  "XPS3"
//	body:
//	  seq     uint64   every WAL record with seq ≤ this is reflected here
//	  count   uint32   number of chips
//	  per chip: id, budgeted selector state, model, denials, locked,
//	            health tracker state (XPS2+)
//	  ownership tail (XPS3 only): epoch, active fences, departed ranges,
//	            in-flight arrivals with chip sets, completed migration IDs
//	crc     uint32   IEEE CRC32 over body
//
// Read compatibility runs two versions back: snapshots written by
// pre-migration builds ("XPS2") load with empty ownership state, and
// pre-health builds ("XPS1", no tracker state) additionally recover their
// chips as healthy with pristine detectors; any recHealth records in the
// WAL tail re-apply whatever classification the old process had journaled
// after its last compaction.
//
// Recovery loads the snapshot (if any), then replays WAL records with
// seq > snapshot seq.  Compaction writes the snapshot to a temp file,
// fsyncs, renames it into place, and only then truncates the WAL; a crash
// anywhere in that window leaves records whose seq the snapshot already
// covers, which replay skips.  A torn final record (crash mid-append) is
// detected by length/CRC and truncated away so the log can be appended to
// again.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"xorpuf/internal/health"
	"xorpuf/internal/telemetry"
)

// Durability-path instruments, captured once from the Default registry.
// They are process-wide (all Registry instances feed the same series): the
// WAL and snapshot latencies being watched are properties of the storage
// stack underneath the process, not of one registry.
var (
	walAppendSeconds  = telemetry.Default.Histogram("registry_wal_append_seconds", telemetry.LatencyBuckets)
	walFsyncSeconds   = telemetry.Default.Histogram("registry_wal_fsync_seconds", telemetry.LatencyBuckets)
	walRecordsTotal   = telemetry.Default.Counter("registry_wal_records_total")
	walBytesTotal     = telemetry.Default.Counter("registry_wal_bytes_total")
	compactionSeconds = telemetry.Default.Histogram("registry_compaction_seconds", telemetry.LatencyBuckets)
	shardContention   = telemetry.Default.Counter("registry_shard_contention_total")
	chipsGauge        = telemetry.Default.Gauge("registry_chips")
)

var (
	walMagic    = [4]byte{'X', 'P', 'W', '1'}
	snapMagic   = [4]byte{'X', 'P', 'S', '3'}
	snapMagicV2 = [4]byte{'X', 'P', 'S', '2'}
	snapMagicV1 = [4]byte{'X', 'P', 'S', '1'}
)

const (
	walName  = "registry.wal"
	snapName = "registry.snap"

	recRegister   byte = 1
	recIssued     byte = 2
	recAbuse      byte = 3
	recDeregister byte = 4
	recHealth     byte = 5
	recReenroll   byte = 6
	// recKeyIssued burns challenges issued for key derivation.  The payload
	// and replay semantics are identical to recIssued — one never-reuse
	// budget covers both workloads (chosen-challenge attacks do not care why
	// a challenge left the server) — but the distinct type keeps the journal
	// auditable by workload.
	recKeyIssued byte = 7

	// Migration record types (see migrate.go).  recRangeFence opens/closes
	// an outbound handoff window; recMigrateIn installs one arriving chip on
	// the target; recCutover is the two-phase ownership transfer journaled on
	// both sides; recMigrateAbort drops an inbound migration's arriving
	// chips.  recMigratedBurn is how the target re-journals a source's
	// recIssued/recKeyIssued delta under its own sequence: the burn semantics
	// are identical, but the distinct type keeps the WAL auditable — a
	// never-reuse audit counts fresh issuance once, at the server that
	// issued it, and recognizes migrated copies as copies.
	recRangeFence   byte = 8
	recMigrateIn    byte = 9
	recCutover      byte = 10
	recMigrateAbort byte = 11
	recMigratedBurn byte = 12

	// recHeaderLen is seq(8) + type(1) + len(4); recTrailerLen the crc.
	recHeaderLen  = 13
	recTrailerLen = 4

	// maxRecordPayload bounds one record so a corrupted length field cannot
	// trigger a giant allocation during replay.
	maxRecordPayload = 1 << 26
)

// walFile is the open append handle.
type walFile struct {
	f *os.File
}

func (w *walFile) append(buf []byte, fsync bool) error {
	start := time.Now()
	_, err := w.f.Write(buf)
	walAppendSeconds.ObserveSince(start)
	if err != nil {
		return fmt.Errorf("registry: wal append: %w", err)
	}
	walRecordsTotal.Inc()
	walBytesTotal.Add(uint64(len(buf)))
	if fsync {
		syncStart := time.Now()
		err := w.f.Sync()
		walFsyncSeconds.ObserveSince(syncStart)
		if err != nil {
			return fmt.Errorf("registry: wal fsync: %w", err)
		}
	}
	return nil
}

func (w *walFile) close() error { return w.f.Close() }

func (r *Registry) walPath() string  { return filepath.Join(r.dir, walName) }
func (r *Registry) snapPath() string { return filepath.Join(r.dir, snapName) }

// appendRecord journals one mutation.  Callers hold opmu.R (and usually an
// entry lock); pmu serializes sequence assignment with the physical append
// so the on-disk order equals the seq order.
func (r *Registry) appendRecord(typ byte, payload []byte) error {
	_, err := r.appendRecordSeq(typ, payload)
	return err
}

// appendRecordSeq is appendRecord returning the assigned sequence number so
// replication-aware callers (Entry.Issue) can wait for follower acks on it.
// Volatile registries still assign sequence numbers and feed the append
// observer — their "durability" is the in-memory store itself — so a
// volatile primary can replicate.
func (r *Registry) appendRecordSeq(typ byte, payload []byte) (uint64, error) {
	r.pmu.Lock()
	if r.wal == nil && r.dir != "" {
		// Persistent registry whose WAL is gone: Close won the race with
		// this mutation.  Refuse rather than mutate without a journal.
		r.pmu.Unlock()
		return 0, ErrClosed
	}
	r.seq++
	seq := r.seq
	needCompact, err := r.appendLocked(seq, typ, payload)
	r.pmu.Unlock()
	r.maybeCompactAsync(needCompact)
	return seq, err
}

// appendLocked writes one framed record at seq (pmu held), notifies the
// append observer on success, and reports whether auto-compaction is due.
func (r *Registry) appendLocked(seq uint64, typ byte, payload []byte) (needCompact bool, err error) {
	if r.wal != nil {
		buf := make([]byte, 0, recHeaderLen+len(payload)+recTrailerLen)
		buf = appendU64(buf, seq)
		buf = append(buf, typ)
		buf = appendU32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
		buf = appendU32(buf, crc32.ChecksumIEEE(buf))
		if err = r.wal.append(buf, r.opts.Fsync); err != nil {
			return false, err
		}
		r.sinceSnap++
		needCompact = r.opts.SnapshotEvery > 0 && r.sinceSnap >= r.opts.SnapshotEvery
	}
	if list := r.appendObs.Load(); list != nil {
		// Called under pmu so observers see records in exact seq order.
		// Observers must be fast and must copy payload if they retain it.
		for _, obs := range *list {
			obs(seq, typ, payload)
		}
	}
	return needCompact, nil
}

func (r *Registry) maybeCompactAsync(needCompact bool) {
	if needCompact && r.compacting.CompareAndSwap(false, true) {
		// Compact needs opmu.W; the triggering mutation still holds
		// opmu.R, so compaction must run asynchronously.
		go func() {
			defer r.compacting.Store(false)
			_ = r.Compact()
		}()
	}
}

// Compact writes a full snapshot and resets the WAL.  It excludes all
// mutations for its duration (reads proceed) and is a no-op for volatile
// registries.
func (r *Registry) Compact() error {
	r.opmu.Lock()
	defer r.opmu.Unlock()
	return r.compactLocked()
}

// compactLocked requires opmu.W (a quiescent store).
func (r *Registry) compactLocked() error {
	if r.wal == nil {
		return nil
	}
	defer compactionSeconds.ObserveSince(time.Now())
	r.pmu.Lock()
	defer r.pmu.Unlock()

	if err := r.writeSnapshotFile(encodeSnapshot(r.snapshotBodyLocked())); err != nil {
		return err
	}
	// Snapshot durable; the WAL prefix is now redundant.  Recreate it
	// empty.  A crash before this point leaves seq ≤ snapshot-seq records
	// behind, which replay skips.
	return r.resetWALLocked()
}

// snapshotBodyLocked serializes the full store at the current sequence cut.
// Requires opmu.W (quiescent store: reading entry state without e.mu is
// race-free) and pmu (stable seq).
func (r *Registry) snapshotBodyLocked() []byte {
	body := appendU64(nil, r.seq)
	count := 0
	for i := range r.shards {
		count += len(r.shards[i].m)
	}
	body = appendU32(body, uint32(count))
	for i := range r.shards {
		for _, e := range r.shards[i].m {
			body = appendEntryState(body, e)
		}
	}
	return appendOwnershipState(body, &r.own)
}

// appendOwnershipState serializes the migration/ownership tail of an XPS3
// snapshot: epoch, active fences, departed ranges, in-flight arrivals (with
// their chip sets, so arriving flags survive a snapshot load), and completed
// inbound migration IDs (the idempotence memory a restarted source queries).
func appendOwnershipState(b []byte, o *ownState) []byte {
	b = appendU64(b, o.epoch)
	b = appendU32(b, uint32(len(o.fences)))
	for _, f := range o.fences {
		b = appendString(b, f.ID)
		b = appendString(b, f.Lo)
		b = appendString(b, f.Hi)
	}
	b = appendU32(b, uint32(len(o.departed)))
	for _, d := range o.departed {
		b = appendString(b, d.Lo)
		b = appendString(b, d.Hi)
		b = appendU64(b, d.Epoch)
		b = appendString(b, d.Redirect)
	}
	b = appendU32(b, uint32(len(o.arrivals)))
	for migID, a := range o.arrivals {
		b = appendString(b, migID)
		b = appendString(b, a.lo)
		b = appendString(b, a.hi)
		b = appendU64(b, a.epoch)
		b = appendU32(b, uint32(len(a.chips)))
		for id := range a.chips {
			b = appendString(b, id)
		}
	}
	b = appendU32(b, uint32(len(o.completed)))
	for migID, epoch := range o.completed {
		b = appendString(b, migID)
		b = appendU64(b, epoch)
	}
	return b
}

// readOwnershipState decodes the XPS3 ownership tail.
func (rd *reader) readOwnershipState() ownState {
	var o ownState
	o.init()
	o.epoch = rd.u64()
	nf := int(rd.u32())
	for i := 0; i < nf && rd.err == nil; i++ {
		o.fences = append(o.fences, MigRange{ID: rd.str(), Lo: rd.str(), Hi: rd.str()})
	}
	nd := int(rd.u32())
	for i := 0; i < nd && rd.err == nil; i++ {
		o.departed = append(o.departed, DepartedRange{
			Lo: rd.str(), Hi: rd.str(), Epoch: rd.u64(), Redirect: rd.str()})
	}
	na := int(rd.u32())
	for i := 0; i < na && rd.err == nil; i++ {
		migID := rd.str()
		a := &arrival{lo: rd.str(), hi: rd.str(), epoch: rd.u64(), chips: make(map[string]struct{})}
		nc := int(rd.u32())
		if rd.err == nil && nc > maxUsedWords {
			rd.fail("implausible arrival chip count %d", nc)
		}
		for j := 0; j < nc && rd.err == nil; j++ {
			a.chips[rd.str()] = struct{}{}
		}
		o.arrivals[migID] = a
	}
	ncp := int(rd.u32())
	for i := 0; i < ncp && rd.err == nil; i++ {
		id := rd.str()
		o.completed[id] = rd.u64()
	}
	return o
}

// encodeSnapshot frames a snapshot body in the XPS3 file format.
func encodeSnapshot(body []byte) []byte {
	buf := make([]byte, 0, 4+len(body)+4)
	buf = append(buf, snapMagic[:]...)
	buf = append(buf, body...)
	return appendU32(buf, crc32.ChecksumIEEE(body))
}

// writeSnapshotFile atomically replaces the snapshot file with data (an
// XPS2-framed snapshot): temp file, fsync, rename.
func (r *Registry) writeSnapshotFile(data []byte) error {
	tmp := r.snapPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, r.snapPath()); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// resetWALLocked closes the current WAL and recreates it empty (pmu held).
func (r *Registry) resetWALLocked() error {
	if err := r.wal.close(); err != nil {
		return err
	}
	f, err := os.Create(r.walPath())
	if err != nil {
		return err
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		return err
	}
	r.wal = &walFile{f: f}
	r.sinceSnap = 0
	return nil
}

// recover loads snapshot + WAL tail and leaves the WAL open for append.
func (r *Registry) recover() error {
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return err
	}
	snapSeq, err := r.loadSnapshot()
	if err != nil {
		return err
	}
	r.seq = snapSeq
	if err := r.replayWAL(snapSeq); err != nil {
		return err
	}
	return nil
}

// loadSnapshot installs all entries (and the ownership state) from the
// snapshot file, returning its sequence cut (0 when no snapshot exists).
func (r *Registry) loadSnapshot() (uint64, error) {
	data, err := os.ReadFile(r.snapPath())
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	entries, own, seq, err := r.decodeSnapshot(data)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		r.install(e)
	}
	r.own = own
	return seq, nil
}

// decodeSnapshot validates an XPS1/XPS2/XPS3-framed snapshot and
// materializes its entries and ownership state without installing them, so
// callers can reject a corrupt snapshot before touching live state.
// Pre-migration snapshots (XPS1/XPS2) decode with empty ownership state, and
// XPS1 additionally recovers its chips with pristine drift detectors.
func (r *Registry) decodeSnapshot(data []byte) ([]*Entry, ownState, uint64, error) {
	var own ownState
	own.init()
	if len(data) < 4+8+4+4 {
		return nil, own, 0, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	magic := [4]byte(data[:4])
	if magic != snapMagic && magic != snapMagicV2 && magic != snapMagicV1 {
		return nil, own, 0, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	hasHealth := magic != snapMagicV1
	hasOwnership := magic == snapMagic
	body, trailer := data[4:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, own, 0, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	rd := &reader{b: body}
	seq := rd.u64()
	count := int(rd.u32())
	var entries []*Entry
	for i := 0; i < count && rd.err == nil; i++ {
		var e *Entry
		if hasHealth {
			e = r.readEntryState(rd)
		} else {
			id := rd.str()
			st := rd.readSelectorState()
			model := rd.readModel()
			denials := int(rd.u32())
			locked := rd.u8() == 1
			if rd.err != nil {
				break
			}
			sel := r.newSelector(id, model)
			sel.ImportState(st)
			e = &Entry{id: id, reg: r, model: model, selector: sel,
				denials: denials, locked: locked,
				tracker: health.NewTracker(r.opts.Health)}
		}
		if e != nil {
			entries = append(entries, e)
		}
	}
	if rd.err == nil && hasOwnership {
		own = rd.readOwnershipState()
	}
	if rd.err != nil {
		return nil, own, 0, fmt.Errorf("snapshot entry decode: %w", rd.err)
	}
	// Re-flag arriving chips from the persisted arrival sets.
	for migID, a := range own.arrivals {
		for _, e := range entries {
			if _, ok := a.chips[e.id]; ok {
				e.arriving = migID
			}
		}
	}
	return entries, own, seq, nil
}

// replayWAL applies records with seq > snapSeq, truncates any torn tail, and
// opens the file for append (creating it when absent).
func (r *Registry) replayWAL(snapSeq uint64) error {
	path := r.walPath()
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return r.createWAL()
	}
	if err != nil {
		return err
	}
	if len(data) < 4 || [4]byte(data[:4]) != walMagic {
		// Unrecognizable log: refuse to guess rather than silently drop
		// the never-reuse history.
		return fmt.Errorf("%w: bad WAL magic", ErrCorrupt)
	}
	good := 4
	records := 0
	for off := 4; off < len(data); {
		rest := data[off:]
		if len(rest) < recHeaderLen+recTrailerLen {
			break // torn header
		}
		plen := int(binary.LittleEndian.Uint32(rest[9:13]))
		if plen > maxRecordPayload || len(rest) < recHeaderLen+plen+recTrailerLen {
			break // torn or garbage payload
		}
		frame := rest[:recHeaderLen+plen]
		crc := binary.LittleEndian.Uint32(rest[recHeaderLen+plen : recHeaderLen+plen+4])
		if crc32.ChecksumIEEE(frame) != crc {
			break // corrupt record; everything after is untrustworthy
		}
		seq := binary.LittleEndian.Uint64(frame[:8])
		typ := frame[8]
		if seq > snapSeq {
			if err := r.applyRecord(typ, frame[recHeaderLen:]); err != nil {
				return err
			}
		}
		if seq > r.seq {
			r.seq = seq
		}
		off += recHeaderLen + plen + recTrailerLen
		good = off
		records++
	}
	r.sinceSnap = records
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// Drop a torn/corrupt tail so subsequent appends land on a clean
	// record boundary.
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return err
	}
	r.wal = &walFile{f: f}
	return nil
}

func (r *Registry) createWAL() error {
	f, err := os.Create(r.walPath())
	if err != nil {
		return err
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		return err
	}
	r.wal = &walFile{f: f}
	return nil
}

// applyRecord replays one journal record during recovery (single-threaded).
func (r *Registry) applyRecord(typ byte, payload []byte) error {
	rd := &reader{b: payload}
	switch typ {
	case recRegister:
		id := rd.str()
		budget := int(rd.u32())
		model := rd.readModel()
		if rd.err != nil {
			return fmt.Errorf("register record: %w", rd.err)
		}
		if r.Lookup(id) != nil {
			return nil // snapshot already covers it
		}
		sel := r.newSelector(id, model)
		sel.SetBudget(budget)
		r.install(&Entry{id: id, reg: r, model: model, selector: sel,
			tracker: health.NewTracker(r.opts.Health)})
	case recIssued, recKeyIssued:
		id := rd.str()
		n := int(rd.u32())
		if rd.err == nil && n > maxUsedWords {
			rd.fail("implausible issued count %d", n)
		}
		if rd.err != nil {
			return fmt.Errorf("issued record: %w", rd.err)
		}
		words := make([]uint64, n)
		for i := range words {
			words[i] = rd.u64()
		}
		if rd.err != nil {
			return fmt.Errorf("issued record: %w", rd.err)
		}
		if e := r.Lookup(id); e != nil {
			e.selector.MarkUsed(words...)
		}
	case recAbuse:
		id := rd.str()
		denials := int(rd.u32())
		locked := rd.u8() == 1
		if rd.err != nil {
			return fmt.Errorf("abuse record: %w", rd.err)
		}
		if e := r.Lookup(id); e != nil {
			e.denials = denials
			e.locked = locked
		}
	case recDeregister:
		id := rd.str()
		if rd.err != nil {
			return fmt.Errorf("deregister record: %w", rd.err)
		}
		sh := r.shard(id)
		if _, ok := sh.m[id]; ok {
			delete(sh.m, id)
			chipsGauge.Dec()
		}
	case recHealth:
		id := rd.str()
		st := rd.readTrackerState()
		if rd.err != nil {
			return fmt.Errorf("health record: %w", rd.err)
		}
		if e := r.Lookup(id); e != nil {
			e.tracker.Restore(st)
		}
	case recReenroll:
		id := rd.str()
		budget := int(rd.u32())
		model := rd.readModel()
		if rd.err != nil {
			return fmt.Errorf("reenroll record: %w", rd.err)
		}
		e := r.Lookup(id)
		if e == nil {
			// The registration this replaces was dropped (e.g. deregistered
			// before the snapshot cut); treat as a fresh registration.
			sel := r.newSelector(id, model)
			sel.SetBudget(budget)
			r.install(&Entry{id: id, reg: r, model: model, selector: sel,
				tracker: health.NewTracker(r.opts.Health)})
			return nil
		}
		// Mirror Replace: swap the model, keep every previously issued
		// challenge burned, reset abuse counters and drift detectors.
		sel := r.newSelector(id, model)
		sel.SetBudget(budget)
		sel.MarkUsed(e.selector.ExportState().Used...)
		e.model, e.selector = model, sel
		e.denials, e.locked = 0, false
		e.tracker.Reset()
	case recMigratedBurn:
		id := rd.str()
		n := int(rd.u32())
		if rd.err == nil && n > maxUsedWords {
			rd.fail("implausible issued count %d", n)
		}
		if rd.err != nil {
			return fmt.Errorf("migrated-burn record: %w", rd.err)
		}
		words := make([]uint64, n)
		for i := range words {
			words[i] = rd.u64()
		}
		if rd.err != nil {
			return fmt.Errorf("migrated-burn record: %w", rd.err)
		}
		if e := r.Lookup(id); e != nil {
			e.selector.MarkUsed(words...)
		}
	case recRangeFence:
		migID, lo, hi, mode := rd.readFence()
		if rd.err != nil {
			return fmt.Errorf("fence record: %w", rd.err)
		}
		r.ownMu.Lock()
		r.own.fences = deleteFence(r.own.fences, migID)
		if mode == fenceSet {
			r.own.fences = append(r.own.fences, MigRange{ID: migID, Lo: lo, Hi: hi})
		}
		r.ownMu.Unlock()
	case recMigrateIn:
		migID := rd.str()
		lo := rd.str()
		hi := rd.str()
		e := r.readEntryState(rd)
		if rd.err != nil {
			return fmt.Errorf("migrate-in record: %w", rd.err)
		}
		e.arriving = migID
		r.installArriving(e)
		r.ownMu.Lock()
		a := r.own.arrivals[migID]
		if a == nil {
			a = &arrival{lo: lo, hi: hi, chips: make(map[string]struct{})}
			r.own.arrivals[migID] = a
		}
		a.lo, a.hi = lo, hi
		a.chips[e.id] = struct{}{}
		r.ownMu.Unlock()
	case recCutover:
		migID, epoch, lo, hi, role, redirect := rd.readCutover()
		if rd.err != nil {
			return fmt.Errorf("cutover record: %w", rd.err)
		}
		if role == cutoverSource {
			r.applyCutoverSource(migID, epoch, lo, hi, redirect)
		} else {
			r.applyCutoverTarget(migID, epoch, lo, hi)
		}
	case recMigrateAbort:
		migID := rd.str()
		if rd.err != nil {
			return fmt.Errorf("migrate-abort record: %w", rd.err)
		}
		r.applyMigrateAbort(migID)
	default:
		return fmt.Errorf("%w: unknown record type %d", ErrCorrupt, typ)
	}
	return nil
}
