package registry

import (
	"fmt"
	"sync"
	"testing"

	"xorpuf/internal/core"
	"xorpuf/internal/rng"
)

// singleMutexDB is the pre-registry design netauth used: one flat map behind
// one mutex.  It exists here only as the benchmark baseline the sharded
// registry is measured against.
type singleMutexDB struct {
	mu sync.Mutex
	m  map[string]*singleMutexEntry
}

type singleMutexEntry struct {
	model    *core.ChipModel
	selector *core.Selector
	denials  int
	locked   bool
}

func newSingleMutexDB(n int, model *core.ChipModel) *singleMutexDB {
	db := &singleMutexDB{m: make(map[string]*singleMutexEntry, n)}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("chip-%d", i)
		db.m[id] = &singleMutexEntry{
			model:    model,
			selector: core.NewSelector(model, rng.New(1).Split("chip-"+id)),
		}
	}
	return db
}

// status mirrors what netauth's admission + ChipStatus path reads per
// authentication: entry existence, issuance accounting, abuse flags — all
// under the one global lock.
func (db *singleMutexDB) status(id string) (Status, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	e := db.m[id]
	if e == nil {
		return Status{}, false
	}
	return Status{
		Issued:    e.selector.Issued(),
		Remaining: e.selector.Remaining(),
		Denials:   e.denials,
		Locked:    e.locked,
	}, true
}

const benchFleetSize = 4096

func benchRegistry(b *testing.B, shards int) *Registry {
	b.Helper()
	r, err := Open("", Options{Seed: 1, Shards: shards})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	model := syntheticModel(2, 32)
	for i := 0; i < benchFleetSize; i++ {
		if err := r.Register(fmt.Sprintf("chip-%d", i), model, 0); err != nil {
			b.Fatalf("Register: %v", err)
		}
	}
	return r
}

// The benchmarks pair each contended server operation across the two
// designs: the old flat map behind one global mutex, and the sharded
// registry with per-entry locks.  The sharded win is a function of hardware
// parallelism — on a single-core runner the two tie (with the sharded store
// paying one extra uncontended lock), so compare with e.g.
//
//	go test -bench 'Status|Issue' -cpu 8 ./internal/registry/
//
// on a multi-core machine, where the global mutex serializes every session
// behind every other session's selection work.

// BenchmarkStatusSingleMutex vs BenchmarkStatusSharded measure the per-auth
// admission read path (lookup + status) under parallel load — the contended
// operation a verification server performs once per session.
func BenchmarkStatusSingleMutex(b *testing.B) {
	db := newSingleMutexDB(benchFleetSize, syntheticModel(2, 32))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			id := fmt.Sprintf("chip-%d", i%benchFleetSize)
			if _, ok := db.status(id); !ok {
				b.Fatal("missing entry")
			}
			i++
		}
	})
}

func BenchmarkStatusSharded(b *testing.B) {
	r := benchRegistry(b, 64)
	defer r.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			e := r.Lookup(fmt.Sprintf("chip-%d", i%benchFleetSize))
			if e == nil {
				b.Fatal("missing entry")
			}
			_ = e.Status()
			i++
		}
	})
}

// BenchmarkLookupSharded isolates the hash + shard-read itself.
func BenchmarkLookupSharded(b *testing.B) {
	r := benchRegistry(b, 64)
	defer r.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if r.Lookup(fmt.Sprintf("chip-%d", i%benchFleetSize)) == nil {
				b.Fatal("missing entry")
			}
			i++
		}
	})
}

// BenchmarkIssueSingleMutex reproduces the old netauth critical section:
// the ONE global mutex is held for the entire challenge selection (candidate
// generation + model prediction), so concurrent sessions for different chips
// fully serialize.
func BenchmarkIssueSingleMutex(b *testing.B) {
	db := newSingleMutexDB(benchFleetSize, syntheticModel(2, 32))
	var next int64
	var seed sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		seed.Lock()
		worker := next
		next++
		seed.Unlock()
		i := int(worker)
		for pb.Next() {
			id := fmt.Sprintf("chip-%d", i%benchFleetSize)
			db.mu.Lock()
			e := db.m[id]
			_, _, err := e.selector.Next(1, 0)
			db.mu.Unlock()
			if err != nil {
				b.Fatalf("Next: %v", err)
			}
			i += 16 // stride so workers touch different entries
		}
	})
}

// BenchmarkIssueSharded measures the same issuance (selection + never-reuse
// bookkeeping) on the registry, where only the chip's own entry lock is held
// — different chips never serialize.
func BenchmarkIssueSharded(b *testing.B) {
	r := benchRegistry(b, 64)
	defer r.Close()
	var next int64
	var seed sync.Mutex
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		seed.Lock()
		worker := next
		next++
		seed.Unlock()
		i := int(worker)
		for pb.Next() {
			e := r.Lookup(fmt.Sprintf("chip-%d", i%benchFleetSize))
			if _, _, err := e.Issue(1, 0); err != nil {
				b.Fatalf("Issue: %v", err)
			}
			i += 16 // stride so workers touch different entries
		}
	})
}
