// Migration surface: the registry-side state machine that lets a chip range
// move between shard owners without ever weakening the paper's never-reuse
// rule (Fig 7).  The rebalance engine (internal/registry/rebalance) drives
// these APIs; everything here is journaled through the same WAL as normal
// mutations, so ownership — like the burned-challenge history — survives
// kill -9 on either side of a migration.
//
// The ownership model:
//
//   - A chip is OWNED by the registry that serves it (the common case).
//   - While an outbound migration is in its handoff window the range is
//     FENCED: issuance returns ErrMigrating (a structured, retryable
//     refusal — never a silent drop), and the fence itself is a WAL record
//     (recRangeFence), so a source that crashes mid-handoff comes back
//     still refusing to issue for the range until the migration resolves.
//   - On the target, chips stream in as ARRIVING (recMigrateIn): present,
//     replicating to the target's own followers, but refusing issuance
//     until cutover.
//   - Cutover is a two-phase record (recCutover) journaled on BOTH sides:
//     the target's record makes the arriving chips live; the source's
//     record drops the range and leaves a durable DEPARTED marker carrying
//     the new owner's address, so a resurrected source answers "moved to X"
//     instead of issuing — dual ownership fails closed.
//
// Epochs order ownership transfers: every cutover carries an epoch one
// greater than any either side has seen, and the gateway rejects stale
// epoch swaps, so a delayed retry of an old migration can never regress
// the routing table.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"xorpuf/internal/health"
)

func le32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }
func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// newTrackerFrom builds a drift tracker pre-loaded with persisted state.
func newTrackerFrom(r *Registry, st health.TrackerState) *health.Tracker {
	t := health.NewTracker(r.opts.Health)
	t.Restore(st)
	return t
}

// readWALBytes loads and magic-checks a WAL file for offline iteration.
func readWALBytes(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 4 || [4]byte(data[:4]) != walMagic {
		return nil, fmt.Errorf("%w: bad WAL magic", ErrCorrupt)
	}
	return data, nil
}

// ErrMigrating is returned by issuance for a chip whose range is fenced for
// an in-flight migration (on the source) or still arriving (on the target).
// It is retryable: the caller should back off and retry, by which time the
// handoff window has resolved one way or the other.
var ErrMigrating = errors.New("registry: chip range is migrating")

// OwnershipStatus classifies a chip ID relative to this registry's ownership.
type OwnershipStatus int

const (
	// OwnershipOwned: this registry serves the chip normally.
	OwnershipOwned OwnershipStatus = iota
	// OwnershipFenced: an outbound migration's handoff window is open;
	// issuance is refused with ErrMigrating until cutover or unfence.
	OwnershipFenced
	// OwnershipArriving: the chip is streaming in from a source and is not
	// yet live here.
	OwnershipArriving
	// OwnershipDeparted: the range was migrated away; the Redirect of the
	// Ownership call names the new owner.
	OwnershipDeparted
)

func (s OwnershipStatus) String() string {
	switch s {
	case OwnershipOwned:
		return "owned"
	case OwnershipFenced:
		return "fenced"
	case OwnershipArriving:
		return "arriving"
	case OwnershipDeparted:
		return "departed"
	}
	return fmt.Sprintf("ownership(%d)", int(s))
}

// MigRange is a lexicographic chip-ID interval [Lo, Hi); Hi == "" means
// unbounded above.  Ranges are compared as raw strings, matching how the
// fleet's zero-padded or prefix-grouped IDs sort.
type MigRange struct {
	ID string // migration ID the range belongs to
	Lo string
	Hi string
}

// Contains reports whether the chip ID falls inside the range.
func (m MigRange) Contains(id string) bool {
	return id >= m.Lo && (m.Hi == "" || id < m.Hi)
}

func (m MigRange) overlaps(lo, hi string) bool {
	if hi != "" && m.Lo >= hi {
		return false
	}
	if m.Hi != "" && lo >= m.Hi {
		return false
	}
	return true
}

// DepartedRange is a range this registry used to own, with the epoch of the
// cutover that moved it and the address of the new owner.
type DepartedRange struct {
	Lo       string `json:"lo"`
	Hi       string `json:"hi"`
	Epoch    uint64 `json:"epoch"`
	Redirect string `json:"redirect"`
}

func (d DepartedRange) contains(id string) bool {
	return id >= d.Lo && (d.Hi == "" || id < d.Hi)
}

// arrival tracks one inbound migration's chips while they are arriving.
type arrival struct {
	lo, hi string
	epoch  uint64
	chips  map[string]struct{}
}

// ownState is the registry's ownership book-keeping.  mu is a leaf lock:
// it is taken under opmu/shard/entry locks and never holds them (or pmu).
type ownState struct {
	epoch     uint64
	fences    []MigRange
	departed  []DepartedRange
	arrivals  map[string]*arrival
	completed map[string]uint64 // migration ID → epoch of a finished inbound cutover
}

func (o *ownState) init() {
	if o.arrivals == nil {
		o.arrivals = make(map[string]*arrival)
	}
	if o.completed == nil {
		o.completed = make(map[string]uint64)
	}
}

// Ownership classifies id against this registry's ownership state and, for
// departed ranges, returns the new owner's address.  The check is cheap in
// steady state — one leaf mutex and three empty-slice scans — which is what
// the gateway/admit hot path relies on.
func (r *Registry) Ownership(id string) (OwnershipStatus, string) {
	r.ownMu.Lock()
	defer r.ownMu.Unlock()
	for _, a := range r.own.arrivals {
		if id >= a.lo && (a.hi == "" || id < a.hi) {
			return OwnershipArriving, ""
		}
	}
	for _, f := range r.own.fences {
		if f.Contains(id) {
			return OwnershipFenced, ""
		}
	}
	for _, d := range r.own.departed {
		if d.contains(id) {
			return OwnershipDeparted, d.Redirect
		}
	}
	return OwnershipOwned, ""
}

// OwnershipEpoch returns the highest cutover epoch this registry has
// journaled (0 when it has never taken part in a migration).
func (r *Registry) OwnershipEpoch() uint64 {
	r.ownMu.Lock()
	defer r.ownMu.Unlock()
	return r.own.epoch
}

// Departed returns the ranges this registry has migrated away.
func (r *Registry) Departed() []DepartedRange {
	r.ownMu.Lock()
	defer r.ownMu.Unlock()
	out := make([]DepartedRange, len(r.own.departed))
	copy(out, r.own.departed)
	return out
}

// Fences returns the currently active outbound issuance fences.
func (r *Registry) Fences() []MigRange {
	r.ownMu.Lock()
	defer r.ownMu.Unlock()
	out := make([]MigRange, len(r.own.fences))
	copy(out, r.own.fences)
	return out
}

// MigrationCutover reports whether an inbound migration has already cut over
// on this registry, and at which epoch — the idempotence check a restarted
// source uses to learn that the target's cutover record won.
func (r *Registry) MigrationCutover(migID string) (uint64, bool) {
	r.ownMu.Lock()
	defer r.ownMu.Unlock()
	epoch, ok := r.own.completed[migID]
	return epoch, ok
}

// issueAllowed is the fail-closed issuance check, called under opmu.R and
// the entry lock so it cannot race a fence being set (SetRangeFence holds
// opmu.W).  arriving is the entry's own flag, authoritative on the target.
func (r *Registry) issueAllowed(id, arriving string) error {
	if arriving != "" {
		return ErrMigrating
	}
	r.ownMu.Lock()
	defer r.ownMu.Unlock()
	for _, f := range r.own.fences {
		if f.Contains(id) {
			return ErrMigrating
		}
	}
	return nil
}

// --- record payload codecs -------------------------------------------------

const (
	fenceSet   byte = 1
	fenceClear byte = 0

	cutoverSource byte = 1
	cutoverTarget byte = 2
)

func fencePayload(migID, lo, hi string, mode byte) []byte {
	b := appendString(nil, migID)
	b = appendString(b, lo)
	b = appendString(b, hi)
	return append(b, mode)
}

func (rd *reader) readFence() (migID, lo, hi string, mode byte) {
	migID = rd.str()
	lo = rd.str()
	hi = rd.str()
	mode = rd.u8()
	if rd.err == nil && mode != fenceSet && mode != fenceClear {
		rd.fail("invalid fence mode %d", mode)
	}
	return
}

func cutoverPayload(migID string, epoch uint64, lo, hi string, role byte, redirect string) []byte {
	b := appendString(nil, migID)
	b = appendU64(b, epoch)
	b = appendString(b, lo)
	b = appendString(b, hi)
	b = append(b, role)
	return appendString(b, redirect)
}

func (rd *reader) readCutover() (migID string, epoch uint64, lo, hi string, role byte, redirect string) {
	migID = rd.str()
	epoch = rd.u64()
	lo = rd.str()
	hi = rd.str()
	role = rd.u8()
	redirect = rd.str()
	if rd.err == nil && role != cutoverSource && role != cutoverTarget {
		rd.fail("invalid cutover role %d", role)
	}
	return
}

func migrateInPayload(migID, lo, hi string, entryBlob []byte) []byte {
	b := appendString(nil, migID)
	b = appendString(b, lo)
	b = appendString(b, hi)
	return append(b, entryBlob...)
}

// appendEntryState serializes one entry's full per-chip state — the same
// layout the snapshot body uses per chip.  The caller must hold the entry
// lock or have quiesced the store.
func appendEntryState(b []byte, e *Entry) []byte {
	b = appendString(b, e.id)
	b = appendSelectorState(b, e.selector.ExportState())
	b = appendModel(b, e.model)
	b = appendU32(b, uint32(e.denials))
	if e.locked {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return appendTrackerState(b, e.tracker.Snapshot())
}

// readEntryState decodes one per-chip state blob into a fresh entry owned by
// r.  Returns nil with rd.err set on malformed input.
func (r *Registry) readEntryState(rd *reader) *Entry {
	id := rd.str()
	st := rd.readSelectorState()
	model := rd.readModel()
	denials := int(rd.u32())
	locked := rd.u8() == 1
	trackerState := rd.readTrackerState()
	if rd.err != nil {
		return nil
	}
	sel := r.newSelector(id, model)
	sel.ImportState(st)
	tracker := newTrackerFrom(r, trackerState)
	return &Entry{id: id, reg: r, model: model, selector: sel,
		denials: denials, locked: locked, tracker: tracker}
}

// --- range snapshot (XPR1) -------------------------------------------------

var rangeSnapMagic = [4]byte{'X', 'P', 'R', '1'}

// RangeSnapshot serializes every entry in [lo, hi) at a consistent sequence
// cut: the store is quiesced (opmu.W) for the duration, so no record for the
// range can land between the cut and the returned bytes.  Format:
//
//	magic "XPR1" | cutSeq u64 | count u32 | per-chip state ... | crc32(body)
func (r *Registry) RangeSnapshot(lo, hi string) (data []byte, cutSeq uint64, count int, err error) {
	if r.closed.Load() {
		return nil, 0, 0, ErrClosed
	}
	r.opmu.Lock()
	defer r.opmu.Unlock()
	r.pmu.Lock()
	cutSeq = r.seq
	r.pmu.Unlock()
	body := appendU64(nil, cutSeq)
	// Count first: collect matching entries, then encode.
	var matched []*Entry
	rng := MigRange{Lo: lo, Hi: hi}
	for i := range r.shards {
		for id, e := range r.shards[i].m {
			if rng.Contains(id) {
				matched = append(matched, e)
			}
		}
	}
	body = appendU32(body, uint32(len(matched)))
	for _, e := range matched {
		body = appendEntryState(body, e)
	}
	buf := make([]byte, 0, 4+len(body)+4)
	buf = append(buf, rangeSnapMagic[:]...)
	buf = append(buf, body...)
	buf = appendU32(buf, crc32.ChecksumIEEE(body))
	return buf, cutSeq, len(matched), nil
}

// decodeRangeSnapshot validates an XPR1 blob and materializes its entries
// without installing them.
func (r *Registry) decodeRangeSnapshot(data []byte) ([]*Entry, uint64, error) {
	if len(data) < 4+8+4+4 || [4]byte(data[:4]) != rangeSnapMagic {
		return nil, 0, fmt.Errorf("%w: bad range-snapshot magic", ErrCorrupt)
	}
	body, trailer := data[4:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != le32(trailer) {
		return nil, 0, fmt.Errorf("%w: range-snapshot checksum mismatch", ErrCorrupt)
	}
	rd := &reader{b: body}
	cutSeq := rd.u64()
	count := int(rd.u32())
	if rd.err == nil && count > maxUsedWords {
		rd.fail("implausible chip count %d", count)
	}
	var entries []*Entry
	for i := 0; i < count && rd.err == nil; i++ {
		if e := r.readEntryState(rd); e != nil {
			entries = append(entries, e)
		}
	}
	if rd.err != nil {
		return nil, 0, fmt.Errorf("range-snapshot decode: %w", rd.err)
	}
	return entries, cutSeq, nil
}

// --- source-side APIs ------------------------------------------------------

// SetRangeFence opens the handoff window for an outbound migration: it
// quiesces the store, journals the fence, and activates it — so the returned
// sequence number strictly follows every issuance record for the range, and
// no issuance for the range can be journaled after it.  Idempotent per
// migration ID.
func (r *Registry) SetRangeFence(migID, lo, hi string) (uint64, error) {
	if migID == "" {
		return 0, errors.New("registry: fence needs a migration ID")
	}
	if r.closed.Load() {
		return 0, ErrClosed
	}
	r.opmu.Lock()
	defer r.opmu.Unlock()
	r.ownMu.Lock()
	for _, f := range r.own.fences {
		if f.ID == migID {
			r.ownMu.Unlock()
			return r.Seq(), nil
		}
	}
	r.ownMu.Unlock()
	seq, err := r.appendRecordSeq(recRangeFence, fencePayload(migID, lo, hi, fenceSet))
	if err != nil {
		return 0, err
	}
	r.ownMu.Lock()
	r.own.fences = append(r.own.fences, MigRange{ID: migID, Lo: lo, Hi: hi})
	r.ownMu.Unlock()
	return seq, nil
}

// ClearRangeFence closes the handoff window without cutting over (the
// migration failed or was aborted pre-cutover): issuance for the range
// resumes.  Journaled; idempotent.
func (r *Registry) ClearRangeFence(migID string) error {
	if r.closed.Load() {
		return ErrClosed
	}
	r.opmu.RLock()
	defer r.opmu.RUnlock()
	r.ownMu.Lock()
	idx := -1
	var f MigRange
	for i := range r.own.fences {
		if r.own.fences[i].ID == migID {
			idx, f = i, r.own.fences[i]
			break
		}
	}
	r.ownMu.Unlock()
	if idx < 0 {
		return nil
	}
	if err := r.appendRecord(recRangeFence, fencePayload(migID, f.Lo, f.Hi, fenceClear)); err != nil {
		return err
	}
	r.ownMu.Lock()
	r.own.fences = deleteFence(r.own.fences, migID)
	r.ownMu.Unlock()
	return nil
}

func deleteFence(fences []MigRange, migID string) []MigRange {
	out := fences[:0]
	for _, f := range fences {
		if f.ID != migID {
			out = append(out, f)
		}
	}
	return out
}

// CutoverSource finalizes an outbound migration on the source: the cutover
// record is journaled, the range's entries are dropped from the live store,
// the fence lifts, and a durable departed marker with the new owner's
// address takes its place.  The store is quiesced for the swap.  Idempotent:
// a second call for an already-departed range is a no-op.
func (r *Registry) CutoverSource(migID string, epoch uint64, lo, hi, redirect string) error {
	if r.closed.Load() {
		return ErrClosed
	}
	r.opmu.Lock()
	defer r.opmu.Unlock()
	r.ownMu.Lock()
	for _, d := range r.own.departed {
		if d.Lo == lo && d.Hi == hi && d.Epoch >= epoch {
			r.ownMu.Unlock()
			return nil
		}
	}
	r.ownMu.Unlock()
	if _, err := r.appendRecordSeq(recCutover, cutoverPayload(migID, epoch, lo, hi, cutoverSource, redirect)); err != nil {
		return err
	}
	r.applyCutoverSource(migID, epoch, lo, hi, redirect)
	return nil
}

// applyCutoverSource mutates live state for a source-side cutover.  Callers
// hold opmu (either mode) — replay runs single-threaded.
func (r *Registry) applyCutoverSource(migID string, epoch uint64, lo, hi, redirect string) {
	rng := MigRange{Lo: lo, Hi: hi}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for id := range sh.m {
			if rng.Contains(id) {
				delete(sh.m, id)
				chipsGauge.Dec()
			}
		}
		sh.mu.Unlock()
	}
	r.ownMu.Lock()
	r.own.fences = deleteFence(r.own.fences, migID)
	r.own.departed = append(r.own.departed, DepartedRange{Lo: lo, Hi: hi, Epoch: epoch, Redirect: redirect})
	if epoch > r.own.epoch {
		r.own.epoch = epoch
	}
	r.ownMu.Unlock()
}

// --- target-side APIs ------------------------------------------------------

// InstallMigrating installs an XPR1 range snapshot as arriving chips: each
// chip is journaled (recMigrateIn) and placed in the store flagged arriving,
// so it replicates to the target's own followers but refuses issuance until
// cutover.  A restarted migration reinstalls idempotently — the source is
// authoritative for the range until cutover, so overwriting a previous
// partial install is safe.  If any chip in the range is already live here
// (not arriving), the install fails closed: that is dual ownership.
func (r *Registry) InstallMigrating(migID, lo, hi string, data []byte) (int, error) {
	if migID == "" {
		return 0, errors.New("registry: install needs a migration ID")
	}
	if r.closed.Load() {
		return 0, ErrClosed
	}
	entries, _, err := r.decodeRangeSnapshot(data)
	if err != nil {
		return 0, err
	}
	rng := MigRange{Lo: lo, Hi: hi}
	for _, e := range entries {
		if !rng.Contains(e.id) {
			return 0, fmt.Errorf("registry: migrating chip %q outside range [%q,%q)", e.id, lo, hi)
		}
	}
	r.opmu.RLock()
	defer r.opmu.RUnlock()
	if _, done := r.MigrationCutover(migID); done {
		return 0, fmt.Errorf("registry: migration %q already cut over", migID)
	}
	// Dual-owner detection before any mutation: a live (non-arriving) chip
	// in the range means two registries both believe they own it.  Refuse.
	for _, e := range entries {
		if cur := r.Lookup(e.id); cur != nil {
			cur.mu.Lock()
			live := cur.arriving == ""
			cur.mu.Unlock()
			if live {
				return 0, fmt.Errorf("registry: chip %q already live here; refusing dual-owner install", e.id)
			}
		}
	}
	r.ownMu.Lock()
	a := r.own.arrivals[migID]
	if a == nil {
		a = &arrival{lo: lo, hi: hi, chips: make(map[string]struct{})}
		r.own.arrivals[migID] = a
	}
	a.lo, a.hi = lo, hi
	r.ownMu.Unlock()
	installed := 0
	for _, e := range entries {
		e.arriving = migID
		if err := r.appendRecord(recMigrateIn, migrateInPayload(migID, lo, hi, entryBlob(e))); err != nil {
			return installed, err
		}
		r.installArriving(e)
		r.ownMu.Lock()
		a.chips[e.id] = struct{}{}
		r.ownMu.Unlock()
		installed++
	}
	return installed, nil
}

// entryBlob serializes a fresh (not yet installed) entry — no locks needed.
func entryBlob(e *Entry) []byte { return appendEntryState(nil, e) }

// installArriving places (or replaces) an arriving entry in its shard.
func (r *Registry) installArriving(e *Entry) {
	sh := r.shard(e.id)
	sh.mu.Lock()
	if _, had := sh.m[e.id]; !had {
		chipsGauge.Inc()
	}
	sh.m[e.id] = e
	sh.mu.Unlock()
}

// ApplyMigrated applies one live WAL delta shipped from the migration
// source: the record is re-journaled under the target's own sequence (burns
// under the distinct recMigratedBurn type, so the local WAL stays auditable:
// fresh issuance vs migrated copy), then applied to the arriving entry.  The
// returned sequence is the local one; cutover quorum-waits on its high-water
// mark.  Only per-chip record types are accepted, and only for chips inside
// the migration's range.
func (r *Registry) ApplyMigrated(migID string, rectype byte, payload []byte) (uint64, error) {
	if r.closed.Load() {
		return 0, ErrClosed
	}
	r.opmu.RLock()
	defer r.opmu.RUnlock()
	r.ownMu.Lock()
	a := r.own.arrivals[migID]
	r.ownMu.Unlock()
	if a == nil {
		return 0, fmt.Errorf("registry: no arriving migration %q", migID)
	}
	id := RecordChipID(rectype, payload)
	if id == "" {
		return 0, fmt.Errorf("registry: record type %d is not a per-chip migration delta", rectype)
	}
	if !(MigRange{Lo: a.lo, Hi: a.hi}).Contains(id) {
		return 0, fmt.Errorf("registry: delta for chip %q outside migration range", id)
	}
	rd := &reader{b: payload}
	switch rectype {
	case recIssued, recKeyIssued, recMigratedBurn:
		_ = rd.str()
		n := int(rd.u32())
		if rd.err == nil && n > maxUsedWords {
			rd.fail("implausible issued count %d", n)
		}
		if rd.err != nil {
			return 0, fmt.Errorf("issued delta: %w", rd.err)
		}
		words := make([]uint64, n)
		for i := range words {
			words[i] = rd.u64()
		}
		if rd.err != nil {
			return 0, fmt.Errorf("issued delta: %w", rd.err)
		}
		e := r.Lookup(id)
		if e == nil {
			return 0, fmt.Errorf("registry: burn delta for unknown arriving chip %q", id)
		}
		seq, err := r.appendRecordSeq(recMigratedBurn, payload)
		if err != nil {
			return 0, err
		}
		e.mu.Lock()
		e.selector.MarkUsed(words...)
		e.mu.Unlock()
		return seq, nil
	case recRegister:
		_ = rd.str()
		budget := int(rd.u32())
		model := rd.readModel()
		if rd.err != nil {
			return 0, fmt.Errorf("register delta: %w", rd.err)
		}
		sel := r.newSelector(id, model)
		sel.SetBudget(budget)
		e := &Entry{id: id, reg: r, model: model, selector: sel,
			tracker: health.NewTracker(r.opts.Health), arriving: migID}
		seq, err := r.appendRecordSeq(recMigrateIn, migrateInPayload(migID, a.lo, a.hi, entryBlob(e)))
		if err != nil {
			return 0, err
		}
		r.installArriving(e)
		r.ownMu.Lock()
		a.chips[id] = struct{}{}
		r.ownMu.Unlock()
		return seq, nil
	case recReenroll:
		_ = rd.str()
		budget := int(rd.u32())
		model := rd.readModel()
		if rd.err != nil {
			return 0, fmt.Errorf("reenroll delta: %w", rd.err)
		}
		seq, err := r.appendRecordSeq(recReenroll, payload)
		if err != nil {
			return 0, err
		}
		if e := r.Lookup(id); e != nil {
			sel := r.newSelector(id, model)
			sel.SetBudget(budget)
			e.mu.Lock()
			sel.MarkUsed(e.selector.ExportState().Used...)
			e.model, e.selector = model, sel
			e.denials, e.locked = 0, false
			e.tracker.Reset()
			e.mu.Unlock()
		}
		return seq, nil
	case recAbuse:
		_ = rd.str()
		denials := int(rd.u32())
		locked := rd.u8() == 1
		if rd.err != nil {
			return 0, fmt.Errorf("abuse delta: %w", rd.err)
		}
		seq, err := r.appendRecordSeq(recAbuse, payload)
		if err != nil {
			return 0, err
		}
		if e := r.Lookup(id); e != nil {
			e.mu.Lock()
			e.denials, e.locked = denials, locked
			e.mu.Unlock()
		}
		return seq, nil
	case recHealth:
		_ = rd.str()
		st := rd.readTrackerState()
		if rd.err != nil {
			return 0, fmt.Errorf("health delta: %w", rd.err)
		}
		seq, err := r.appendRecordSeq(recHealth, payload)
		if err != nil {
			return 0, err
		}
		if e := r.Lookup(id); e != nil {
			e.mu.Lock()
			e.tracker.Restore(st)
			e.mu.Unlock()
		}
		return seq, nil
	case recDeregister:
		if rd.str(); rd.err != nil {
			return 0, fmt.Errorf("deregister delta: %w", rd.err)
		}
		seq, err := r.appendRecordSeq(recDeregister, payload)
		if err != nil {
			return 0, err
		}
		sh := r.shard(id)
		sh.mu.Lock()
		if _, ok := sh.m[id]; ok {
			delete(sh.m, id)
			chipsGauge.Dec()
		}
		sh.mu.Unlock()
		r.ownMu.Lock()
		delete(a.chips, id)
		r.ownMu.Unlock()
		return seq, nil
	}
	return 0, fmt.Errorf("registry: record type %d cannot be migrated", rectype)
}

// CutoverTarget makes an inbound migration's arriving chips live: the
// cutover record is journaled (and replicates to the target's followers),
// every arriving entry's flag clears, the epoch advances, and any departed
// marker the range previously carried here (a range migrating back) is
// dropped.  Returns the cutover record's local sequence so the caller can
// quorum-wait on it before acknowledging the source.  Idempotent.
func (r *Registry) CutoverTarget(migID string, epoch uint64) (uint64, error) {
	if r.closed.Load() {
		return 0, ErrClosed
	}
	r.opmu.RLock()
	defer r.opmu.RUnlock()
	if _, done := r.MigrationCutover(migID); done {
		return r.Seq(), nil
	}
	r.ownMu.Lock()
	a := r.own.arrivals[migID]
	r.ownMu.Unlock()
	if a == nil {
		return 0, fmt.Errorf("registry: no arriving migration %q to cut over", migID)
	}
	seq, err := r.appendRecordSeq(recCutover, cutoverPayload(migID, epoch, a.lo, a.hi, cutoverTarget, ""))
	if err != nil {
		return 0, err
	}
	r.applyCutoverTarget(migID, epoch, a.lo, a.hi)
	return seq, nil
}

// applyCutoverTarget mutates live state for a target-side cutover.
func (r *Registry) applyCutoverTarget(migID string, epoch uint64, lo, hi string) {
	r.ownMu.Lock()
	a := r.own.arrivals[migID]
	delete(r.own.arrivals, migID)
	r.own.completed[migID] = epoch
	if epoch > r.own.epoch {
		r.own.epoch = epoch
	}
	kept := r.own.departed[:0]
	for _, d := range r.own.departed {
		if !(MigRange{Lo: d.Lo, Hi: d.Hi}).overlaps(lo, hi) {
			kept = append(kept, d)
		}
	}
	r.own.departed = kept
	r.ownMu.Unlock()
	if a == nil {
		return
	}
	for id := range a.chips {
		if e := r.Lookup(id); e != nil {
			e.mu.Lock()
			if e.arriving == migID {
				e.arriving = ""
			}
			e.mu.Unlock()
		}
	}
}

// AbortMigrationIn drops an inbound migration's arriving chips (journaled).
// Only valid before cutover; after cutover the chips are live and the
// source must finalize instead.
func (r *Registry) AbortMigrationIn(migID string) error {
	if r.closed.Load() {
		return ErrClosed
	}
	r.opmu.RLock()
	defer r.opmu.RUnlock()
	if _, done := r.MigrationCutover(migID); done {
		return fmt.Errorf("registry: migration %q already cut over; cannot abort", migID)
	}
	r.ownMu.Lock()
	a := r.own.arrivals[migID]
	r.ownMu.Unlock()
	if a == nil {
		return nil
	}
	if err := r.appendRecord(recMigrateAbort, appendString(nil, migID)); err != nil {
		return err
	}
	r.applyMigrateAbort(migID)
	return nil
}

// applyMigrateAbort drops all arriving entries for migID.
func (r *Registry) applyMigrateAbort(migID string) {
	r.ownMu.Lock()
	a := r.own.arrivals[migID]
	delete(r.own.arrivals, migID)
	r.ownMu.Unlock()
	if a == nil {
		return
	}
	for id := range a.chips {
		sh := r.shard(id)
		sh.mu.Lock()
		if e, ok := sh.m[id]; ok && e.arriving == migID {
			delete(sh.m, id)
			chipsGauge.Dec()
		}
		sh.mu.Unlock()
	}
}

// --- WAL tooling -----------------------------------------------------------

// RecordChipID returns the chip ID a per-chip WAL record pertains to, or ""
// for record types that are not chip-scoped (fences, cutovers, aborts) or a
// malformed payload.  This is how range-scoped shipping filters the live
// delta without the shipping layer knowing payload layouts.
func RecordChipID(typ byte, payload []byte) string {
	switch typ {
	case recRegister, recIssued, recAbuse, recDeregister, recHealth,
		recReenroll, recKeyIssued, recMigratedBurn:
		rd := &reader{b: payload}
		id := rd.str()
		if rd.err != nil {
			return ""
		}
		return id
	}
	return ""
}

// RecordIssuedWords decodes the challenge words a WAL record burned.  fresh
// is true for records representing challenges that left THIS server
// (recIssued, recKeyIssued) and false for migrated copies (recMigratedBurn),
// which an audit must count once — at the server that issued them — not
// twice.  ok is false for non-burn records.
func RecordIssuedWords(typ byte, payload []byte) (id string, words []uint64, fresh, ok bool) {
	switch typ {
	case recIssued, recKeyIssued:
		fresh = true
	case recMigratedBurn:
	default:
		return "", nil, false, false
	}
	rd := &reader{b: payload}
	id = rd.str()
	n := int(rd.u32())
	if rd.err != nil || n > maxUsedWords {
		return "", nil, false, false
	}
	words = make([]uint64, n)
	for i := range words {
		words[i] = rd.u64()
	}
	if rd.err != nil {
		return "", nil, false, false
	}
	return id, words, fresh, true
}

// IterateWAL streams every intact record of a WAL file to fn in order,
// stopping at the first torn or corrupt record (the same tolerance recovery
// applies) or when fn returns an error.  Offline tooling — the never-reuse
// audit — reads journals this way without opening a registry.
func IterateWAL(path string, fn func(seq uint64, typ byte, payload []byte) error) error {
	data, err := readWALBytes(path)
	if err != nil {
		return err
	}
	for off := 4; off < len(data); {
		rest := data[off:]
		if len(rest) < recHeaderLen+recTrailerLen {
			break
		}
		plen := int(le32(rest[9:13]))
		if plen > maxRecordPayload || len(rest) < recHeaderLen+plen+recTrailerLen {
			break
		}
		frame := rest[:recHeaderLen+plen]
		if crc32.ChecksumIEEE(frame) != le32(rest[recHeaderLen+plen:recHeaderLen+plen+4]) {
			break
		}
		if err := fn(le64(frame[:8]), frame[8], frame[recHeaderLen:]); err != nil {
			return err
		}
		off += recHeaderLen + plen + recTrailerLen
	}
	return nil
}
