package core

import (
	"fmt"
	"math"

	"xorpuf/internal/challenge"
	"xorpuf/internal/linalg"
)

// IncrementalFit fits the soft-response regression online with recursive
// least squares (RLS), so an enrollment tester can stream counter
// measurements into the model as they arrive instead of batching a design
// matrix — the natural fit for production test flows where the 5,000
// measurements trickle out of the chip over seconds.
//
// The RLS recursion maintains θ and P = (XᵀX + δI)⁻¹ via Sherman–Morrison
// rank-one updates, so each measurement costs O(d²) with d = stages+1.
// Samples are also retained (one packed word + one float each) so the final
// three-category thresholds can be extracted against the converged model,
// exactly as the batch FitModel does.
type IncrementalFit struct {
	stages int
	theta  []float64
	p      *linalg.Matrix
	phi    []float64 // scratch feature vector
	px     []float64 // scratch P·x

	words []uint64
	softs []float64
}

// NewIncrementalFit starts an online fit for k-stage challenges with
// regularization δ > 0 (P starts at I/δ; small δ ≈ unregularized).
func NewIncrementalFit(stages int, delta float64) *IncrementalFit {
	if stages <= 0 || stages > 63 {
		panic(fmt.Sprintf("core: IncrementalFit stages %d outside [1,63]", stages))
	}
	if delta <= 0 {
		panic("core: IncrementalFit delta must be positive")
	}
	d := stages + 1
	p := linalg.NewMatrix(d, d)
	for i := 0; i < d; i++ {
		p.Set(i, i, 1/delta)
	}
	return &IncrementalFit{
		stages: stages,
		theta:  make([]float64, d),
		p:      p,
		phi:    make([]float64, d),
		px:     make([]float64, d),
	}
}

// Count returns the number of absorbed measurements.
func (f *IncrementalFit) Count() int { return len(f.softs) }

// Update absorbs one (challenge, soft response) measurement.
func (f *IncrementalFit) Update(c challenge.Challenge, soft float64) error {
	if len(c) != f.stages {
		return fmt.Errorf("core: challenge length %d, want %d", len(c), f.stages)
	}
	if soft < 0 || soft > 1 || math.IsNaN(soft) {
		return fmt.Errorf("core: soft response %v outside [0,1]", soft)
	}
	challenge.FeaturesInto(c, f.phi)
	// px = P·φ  (P is symmetric).
	for i := range f.px {
		f.px[i] = linalg.Dot(f.p.Row(i), f.phi)
	}
	denom := 1 + linalg.Dot(f.phi, f.px)
	resid := soft - linalg.Dot(f.theta, f.phi)
	inv := 1 / denom
	// θ += (P·φ)·resid/denom ;  P −= (P·φ)(P·φ)ᵀ/denom.
	for i := range f.theta {
		f.theta[i] += f.px[i] * resid * inv
		rowI := f.p.Row(i)
		pi := f.px[i] * inv
		for j := range rowI {
			rowI[j] -= pi * f.px[j]
		}
	}
	f.words = append(f.words, c.Word())
	f.softs = append(f.softs, soft)
	return nil
}

// Theta returns a copy of the current coefficient estimate.
func (f *IncrementalFit) Theta() []float64 { return linalg.Copy(f.theta) }

// Model extracts the PUFModel: the converged θ plus three-category
// thresholds derived from every retained measurement, mirroring FitModel.
func (f *IncrementalFit) Model() (*PUFModel, error) {
	if len(f.softs) == 0 {
		return nil, fmt.Errorf("core: IncrementalFit has no measurements")
	}
	m := &PUFModel{Theta: linalg.Copy(f.theta)}
	thr0 := math.Inf(1)
	thr1 := math.Inf(-1)
	for i, w := range f.words {
		c := challenge.FromWord(w, f.stages)
		pred := m.PredictSoft(c)
		if f.softs[i] > 0 && pred < thr0 {
			thr0 = pred
		}
		if f.softs[i] < 1 && pred > thr1 {
			thr1 = pred
		}
	}
	if math.IsInf(thr0, 1) || math.IsInf(thr1, -1) {
		return nil, ErrDegenerateTraining
	}
	if thr0 <= 0 {
		thr0 = 1e-3
	}
	if thr1 >= 1 {
		thr1 = 1 - 1e-3
	}
	m.Thr0, m.Thr1 = thr0, thr1
	return m, nil
}
