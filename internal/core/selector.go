package core

import (
	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
)

// Selector is the server-side stateful challenge source of paper Fig 7: it
// draws random challenges, keeps only those predicted stable, and *records*
// every challenge it has ever issued so none is reused across
// authentication sessions (reuse would hand an eavesdropper consistent CRPs
// and invite replay).
//
// A Selector is not safe for concurrent use; wrap it in the caller's lock
// (netauth.Server does).
type Selector struct {
	model *ChipModel
	src   *rng.Source
	used  map[uint64]struct{}
}

// NewSelector creates a selector for an enrolled chip model.  src drives
// challenge generation.
func NewSelector(model *ChipModel, src *rng.Source) *Selector {
	if model == nil || model.Width() == 0 {
		panic("core: NewSelector with empty model")
	}
	return &Selector{model: model, src: src, used: make(map[uint64]struct{})}
}

// Issued returns how many distinct challenges have been handed out.
func (s *Selector) Issued() int { return len(s.used) }

// Next returns count fresh predicted-stable challenges and their predicted
// XOR bits.  Challenges issued by earlier calls are never repeated.
// maxExamined bounds the search (0 = 10,000 × count).
func (s *Selector) Next(count, maxExamined int) ([]challenge.Challenge, []uint8, error) {
	if maxExamined <= 0 {
		maxExamined = 10000 * count
	}
	cs := make([]challenge.Challenge, 0, count)
	bits := make([]uint8, 0, count)
	examined := 0
	for len(cs) < count && examined < maxExamined {
		c := challenge.Random(s.src, s.model.Stages())
		examined++
		// Word() keys on the first 64 stages, which covers every
		// configuration this repository fabricates; for longer
		// challenges the dedup would need a wider key.
		key := c.Word()
		if _, dup := s.used[key]; dup {
			continue
		}
		bit, stable := s.model.PredictXOR(c)
		if !stable {
			continue
		}
		s.used[key] = struct{}{}
		cs = append(cs, c)
		bits = append(bits, bit)
	}
	if len(cs) < count {
		return cs, bits, &ErrSelectionExhausted{Wanted: count, Found: len(cs), Examined: examined}
	}
	return cs, bits, nil
}
