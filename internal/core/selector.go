package core

import (
	"fmt"
	"sort"

	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
)

// Selector is the server-side stateful challenge source of paper Fig 7: it
// draws random challenges, keeps only those predicted stable, and *records*
// every challenge it has ever issued so none is reused across
// authentication sessions (reuse would hand an eavesdropper consistent CRPs
// and invite replay).
//
// A Selector is not safe for concurrent use; wrap it in the caller's lock
// (netauth.Server does).
type Selector struct {
	model  *ChipModel
	src    *rng.Source
	used   map[uint64]struct{}
	budget int       // lifetime cap on issued challenges; 0 = unlimited
	phi    []float64 // scratch feature vector shared across candidates
}

// NewSelector creates a selector for an enrolled chip model.  src drives
// challenge generation.
func NewSelector(model *ChipModel, src *rng.Source) *Selector {
	if model == nil || model.Width() == 0 {
		panic("core: NewSelector with empty model")
	}
	return &Selector{model: model, src: src, used: make(map[uint64]struct{})}
}

// Issued returns how many distinct challenges have been handed out.
func (s *Selector) Issued() int { return len(s.used) }

// SetBudget caps the lifetime number of challenges this selector may
// issue; 0 removes the cap.  Because issued challenges are never reused,
// every authentication attempt — including ones that fail in transit —
// permanently burns budget, so a verifier can bound how many CRPs a chip
// exposes to eavesdroppers and modeling attacks over its lifetime.
func (s *Selector) SetBudget(n int) {
	if n < 0 {
		n = 0
	}
	s.budget = n
}

// Budget returns the lifetime cap (0 = unlimited).
func (s *Selector) Budget() int { return s.budget }

// Remaining returns how many challenges may still be issued, or -1 if the
// selector is unbudgeted.
func (s *Selector) Remaining() int {
	if s.budget == 0 {
		return -1
	}
	if r := s.budget - len(s.used); r > 0 {
		return r
	}
	return 0
}

// ErrBudgetExhausted is returned when issuing the requested challenges
// would exceed the selector's lifetime budget.  Nothing is issued — a
// partial session would burn CRPs without ever producing a verdict.
type ErrBudgetExhausted struct {
	Budget, Issued, Wanted int
}

func (e *ErrBudgetExhausted) Error() string {
	return fmt.Sprintf("core: challenge budget exhausted: %d issued of %d, cannot issue %d more",
		e.Issued, e.Budget, e.Wanted)
}

// SelectorState is the portable persistent state of a Selector: everything a
// verifier must retain across process lifetimes to keep the never-reuse
// guarantee.  The rng stream deliberately is NOT part of the state — a
// restarted selector may regenerate old candidate challenges, but the Used
// set filters them out, so no challenge is ever issued twice.
type SelectorState struct {
	// Used holds the Word() keys of every challenge ever issued, sorted
	// ascending so that equal states serialize identically.
	Used []uint64
	// Budget is the lifetime issuance cap (0 = unlimited).
	Budget int
}

// ExportState returns a deterministic snapshot of the selector's
// issued-challenge set and budget.
func (s *Selector) ExportState() SelectorState {
	words := make([]uint64, 0, len(s.used))
	for w := range s.used {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	return SelectorState{Used: words, Budget: s.budget}
}

// ImportState replaces the selector's issued set and budget with st —
// typically state exported by an earlier process lifetime.
func (s *Selector) ImportState(st SelectorState) {
	used := make(map[uint64]struct{}, len(st.Used))
	for _, w := range st.Used {
		used[w] = struct{}{}
	}
	s.used = used
	s.budget = st.Budget
	if s.budget < 0 {
		s.budget = 0
	}
}

// MarkUsed records challenge words as already issued without generating
// anything — the hook for replaying an issuance journal over an imported
// snapshot.  Marking a word twice is harmless.
func (s *Selector) MarkUsed(words ...uint64) {
	for _, w := range words {
		s.used[w] = struct{}{}
	}
}

// Next returns count fresh predicted-stable challenges and their predicted
// XOR bits.  Challenges issued by earlier calls are never repeated.
// maxExamined bounds the search (0 = 10,000 × count).
func (s *Selector) Next(count, maxExamined int) ([]challenge.Challenge, []uint8, error) {
	if s.budget > 0 && len(s.used)+count > s.budget {
		return nil, nil, &ErrBudgetExhausted{Budget: s.budget, Issued: len(s.used), Wanted: count}
	}
	if maxExamined <= 0 {
		maxExamined = 10000 * count
	}
	cs := make([]challenge.Challenge, 0, count)
	bits := make([]uint8, 0, count)
	if len(s.phi) != challenge.FeatureDim(s.model.Stages()) {
		s.phi = make([]float64, challenge.FeatureDim(s.model.Stages()))
	}
	examined := 0
	for len(cs) < count && examined < maxExamined {
		c := challenge.Random(s.src, s.model.Stages())
		examined++
		// Word() keys on the first 64 stages, which covers every
		// configuration this repository fabricates; for longer
		// challenges the dedup would need a wider key.
		key := c.Word()
		if _, dup := s.used[key]; dup {
			continue
		}
		challenge.FeaturesInto(c, s.phi)
		bit, stable := s.model.PredictXORFeatures(s.phi)
		if !stable {
			continue
		}
		s.used[key] = struct{}{}
		cs = append(cs, c)
		bits = append(bits, bit)
	}
	if len(cs) < count {
		return cs, bits, &ErrSelectionExhausted{Wanted: count, Found: len(cs), Examined: examined}
	}
	return cs, bits, nil
}
