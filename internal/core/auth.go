package core

import (
	"encoding/json"
	"fmt"

	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// Device is the authentication-time view of a chip: only the XOR output is
// observable (the fuses are blown).  *silicon.Chip satisfies it.
type Device interface {
	ReadXOR(c challenge.Challenge, cond silicon.Condition) uint8
}

// SubsetDevice adapts a chip so that only its first N PUFs participate in
// the XOR — used by the width sweeps, which evaluate XOR PUFs of every width
// from one fabricated 10-PUF chip exactly as the paper does.
type SubsetDevice struct {
	Chip *silicon.Chip
	N    int
}

// ReadXOR implements Device.
func (d SubsetDevice) ReadXOR(c challenge.Challenge, cond silicon.Condition) uint8 {
	return d.Chip.ReadXORSubset(d.N, c, cond)
}

// ErrSelectionExhausted is returned when the challenge selector cannot find
// enough predicted-stable challenges within its examination budget.
type ErrSelectionExhausted struct {
	Wanted, Found, Examined int
}

func (e *ErrSelectionExhausted) Error() string {
	return fmt.Sprintf("core: found only %d/%d predicted-stable challenges after examining %d",
		e.Found, e.Wanted, e.Examined)
}

// SelectChallenges draws random challenges and keeps those predicted stable
// on every member PUF (paper Fig 7 "Select Stable Challenges" loop), along
// with the server-predicted XOR bit for each.  maxExamined bounds the search
// (0 means 10,000× the requested count).
func (cm *ChipModel) SelectChallenges(src *rng.Source, count, maxExamined int) (cs []challenge.Challenge, predicted []uint8, examined int, err error) {
	if count <= 0 {
		return nil, nil, 0, fmt.Errorf("core: SelectChallenges count %d, want > 0", count)
	}
	if maxExamined <= 0 {
		maxExamined = 10000 * count
	}
	cs = make([]challenge.Challenge, 0, count)
	predicted = make([]uint8, 0, count)
	for len(cs) < count && examined < maxExamined {
		c := challenge.Random(src, cm.Stages())
		examined++
		bit, stable := cm.PredictXOR(c)
		if !stable {
			continue
		}
		cs = append(cs, c)
		predicted = append(predicted, bit)
	}
	if len(cs) < count {
		return cs, predicted, examined, &ErrSelectionExhausted{Wanted: count, Found: len(cs), Examined: examined}
	}
	return cs, predicted, examined, nil
}

// AuthResult summarizes one authentication attempt.
type AuthResult struct {
	// Approved is true iff every response matched the prediction
	// (the paper's zero-Hamming-distance criterion).
	Approved bool
	// Challenges is the number of CRPs exchanged.
	Challenges int
	// Mismatches counts response bits that disagreed with the server's
	// prediction.
	Mismatches int
	// Examined is the number of random challenges the server drew to find
	// the predicted-stable ones.
	Examined int
}

// Authenticate runs the paper's Fig 7 protocol against a device: select
// `count` predicted-stable challenges, obtain one-shot XOR responses (a
// single sample suffices because the selected CRPs are 100 % stable), and
// approve only on a perfect match.
func Authenticate(cm *ChipModel, dev Device, src *rng.Source, count int, cond silicon.Condition) (AuthResult, error) {
	cs, predicted, examined, err := cm.SelectChallenges(src, count, 0)
	if err != nil {
		return AuthResult{Examined: examined}, err
	}
	res := AuthResult{Challenges: count, Examined: examined}
	for i, c := range cs {
		if dev.ReadXOR(c, cond) != predicted[i] {
			res.Mismatches++
		}
	}
	res.Approved = res.Mismatches == 0
	return res, nil
}

// MarshalJSON/UnmarshalJSON round-trip support lives on the plain struct
// fields; EncodeChipModel/DecodeChipModel provide the server-database
// serialization explicitly.

// EncodeChipModel serializes a chip model for the server database.
func EncodeChipModel(cm *ChipModel) ([]byte, error) {
	return json.Marshal(cm)
}

// DecodeChipModel deserializes a chip model from the server database.
func DecodeChipModel(data []byte) (*ChipModel, error) {
	var cm ChipModel
	if err := json.Unmarshal(data, &cm); err != nil {
		return nil, fmt.Errorf("core: decoding chip model: %w", err)
	}
	if len(cm.PUFs) == 0 {
		return nil, fmt.Errorf("core: decoded chip model has no PUFs")
	}
	stages := cm.PUFs[0].Stages()
	for i, m := range cm.PUFs {
		if m == nil || len(m.Theta) == 0 {
			return nil, fmt.Errorf("core: decoded PUF model %d is empty", i)
		}
		if m.Stages() != stages {
			return nil, fmt.Errorf("core: decoded PUF model %d has %d stages, want %d",
				i, m.Stages(), stages)
		}
	}
	return &cm, nil
}
