package core

import (
	"errors"
	"fmt"
	"math"

	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// EnrollConfig controls the enrollment phase (paper Fig 6).
type EnrollConfig struct {
	// TrainingSize is the number of challenges measured for the
	// regression and raw-threshold extraction (paper: 5,000).
	TrainingSize int
	// ValidationSize is the number of fresh challenges used by the β
	// threshold-adjustment search (paper Fig 9 used the 1M test set; the
	// default trades that for 50,000, which pins β to the same grid
	// values in practice).
	ValidationSize int
	// Ridge is the Tikhonov regularization applied to the regression.
	Ridge float64
	// BetaStep is the grid on which β0/β1 are searched (paper quotes
	// two-decimal values, so 0.01).
	BetaStep float64
	// Conditions are the operating corners the β search hardens against.
	// Nil means nominal only; use silicon.Corners() for the paper's
	// Section 5.2 voltage/temperature hardening.
	Conditions []silicon.Condition
	// BlowFuses, when set, blows the chip's one-time fuses after
	// enrollment so individual PUF access is permanently disabled.
	BlowFuses bool
}

// DefaultEnrollConfig mirrors the paper's nominal-condition setup.
func DefaultEnrollConfig() EnrollConfig {
	return EnrollConfig{
		TrainingSize:   5000,
		ValidationSize: 50000,
		Ridge:          0,
		BetaStep:       0.01,
		Conditions:     nil,
		BlowFuses:      false,
	}
}

func (cfg EnrollConfig) validate() error {
	switch {
	case cfg.TrainingSize < 100:
		return fmt.Errorf("core: TrainingSize %d too small", cfg.TrainingSize)
	case cfg.ValidationSize < 0:
		return fmt.Errorf("core: negative ValidationSize")
	case cfg.BetaStep <= 0 || cfg.BetaStep > 0.5:
		return fmt.Errorf("core: BetaStep %g outside (0, 0.5]", cfg.BetaStep)
	case cfg.Ridge < 0:
		return fmt.Errorf("core: negative Ridge")
	}
	// The V/T model is only calibrated inside the paper's envelope;
	// enrolling against an extrapolated corner would bake meaningless
	// thresholds into the chip's database entry.
	for _, cond := range cfg.Conditions {
		if err := cond.Validate(); err != nil {
			return fmt.Errorf("core: enrollment condition %v: %w", cond, err)
		}
	}
	return nil
}

func (cfg EnrollConfig) conditions() []silicon.Condition {
	if len(cfg.Conditions) == 0 {
		return []silicon.Condition{silicon.Nominal}
	}
	return cfg.Conditions
}

// ChipModel is the server-side database entry for one enrolled chip: a
// model per member PUF plus the chip-wide β-adjusted threshold factors.
type ChipModel struct {
	PUFs  []*PUFModel `json:"pufs"`
	Beta0 float64     `json:"beta0"`
	Beta1 float64     `json:"beta1"`
}

// Width returns the number of member PUFs (the XOR width n).
func (cm *ChipModel) Width() int { return len(cm.PUFs) }

// Stages returns the challenge length the models expect.
func (cm *ChipModel) Stages() int { return cm.PUFs[0].Stages() }

// Narrow returns a model covering only the first n member PUFs, sharing the
// underlying per-PUF models — used for the paper's width sweeps.
func (cm *ChipModel) Narrow(n int) *ChipModel {
	if n <= 0 || n > len(cm.PUFs) {
		panic(fmt.Sprintf("core: Narrow(%d) out of range [1,%d]", n, len(cm.PUFs)))
	}
	return &ChipModel{PUFs: cm.PUFs[:n], Beta0: cm.Beta0, Beta1: cm.Beta1}
}

// PredictedStable reports whether every member PUF classifies the challenge
// as stable (0 or 1) under the chip's β-adjusted thresholds.
func (cm *ChipModel) PredictedStable(c challenge.Challenge) bool {
	for _, m := range cm.PUFs {
		if m.ClassifyChallenge(c, cm.Beta0, cm.Beta1) == Unstable {
			return false
		}
	}
	return true
}

// PredictXOR returns the predicted XOR response and whether the challenge is
// predicted stable on all members; the bit is only meaningful when stable.
func (cm *ChipModel) PredictXOR(c challenge.Challenge) (bit uint8, stable bool) {
	for _, m := range cm.PUFs {
		cat := m.ClassifyChallenge(c, cm.Beta0, cm.Beta1)
		if cat == Unstable {
			return 0, false
		}
		bit ^= cat.PredictBit()
	}
	return bit, true
}

// PredictXORFeatures is PredictXOR over a precomputed feature vector
// Φ(c) (see challenge.FeaturesInto).  The feature transform is O(stages)
// and identical for every member PUF, so hot paths that evaluate the
// whole XOR model — challenge selection, synthetic devices — compute it
// once and pay only a dot product per member.
func (cm *ChipModel) PredictXORFeatures(phi []float64) (bit uint8, stable bool) {
	for _, m := range cm.PUFs {
		cat := m.Classify(m.PredictSoftFeatures(phi), cm.Beta0, cm.Beta1)
		if cat == Unstable {
			return 0, false
		}
		bit ^= cat.PredictBit()
	}
	return bit, true
}

// EnrollPUF measures TrainingSize soft responses of PUF pufIdx through the
// chip's counters (fuses must be intact) and fits its model.  Challenges are
// drawn from challengeSrc.
func EnrollPUF(chip *silicon.Chip, pufIdx int, challengeSrc *rng.Source, cfg EnrollConfig) (*PUFModel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cs := challenge.RandomBatch(challengeSrc, cfg.TrainingSize, chip.Stages())
	soft := make([]float64, len(cs))
	for i, c := range cs {
		s, err := chip.SoftResponse(pufIdx, c, silicon.Nominal)
		if err != nil {
			return nil, fmt.Errorf("core: enrolling PUF %d: %w", pufIdx, err)
		}
		soft[i] = s
	}
	return FitModel(cs, soft, cfg.Ridge)
}

// BetaSearchResult reports the per-PUF outcome of the threshold adjustment.
type BetaSearchResult struct {
	Beta0, Beta1 float64
	// Violations0/Violations1 count validation challenges that forced
	// each bound tighter than 1.0.
	Violations0, Violations1 int
}

// SearchBetas finds the most permissive β0 ≤ 1 and β1 ≥ 1 on the BetaStep
// grid such that no validation challenge the model classifies as stable is
// measured unstable at any of the given conditions (paper Fig 9 procedure:
// start at 1.00 and tighten until all unstable responses are filtered out).
//
// Measurement goes through the chip's counters, so fuses must be intact.
func SearchBetas(chip *silicon.Chip, pufIdx int, model *PUFModel, challengeSrc *rng.Source, cfg EnrollConfig) (BetaSearchResult, error) {
	if err := cfg.validate(); err != nil {
		return BetaSearchResult{}, err
	}
	res := BetaSearchResult{Beta0: 1, Beta1: 1}
	conds := cfg.conditions()
	for i := 0; i < cfg.ValidationSize; i++ {
		c := challenge.Random(challengeSrc, chip.Stages())
		pred := model.PredictSoft(c)
		// Only challenges inside the raw stable bands can force a
		// tighter β.
		if pred >= model.Thr0 && pred <= model.Thr1 {
			continue
		}
		unstable := false
		for _, cond := range conds {
			s, err := chip.SoftResponse(pufIdx, c, cond)
			if err != nil {
				return res, fmt.Errorf("core: beta search on PUF %d: %w", pufIdx, err)
			}
			if !StableMeasurement(s) {
				unstable = true
				break
			}
		}
		if !unstable {
			continue
		}
		if pred < model.Thr0 {
			// Need β0·Thr0 ≤ pred so this challenge is excluded;
			// round down to the grid (more stringent).
			res.Violations0++
			b := math.Floor(pred/model.Thr0/cfg.BetaStep) * cfg.BetaStep
			if b < res.Beta0 {
				res.Beta0 = b
			}
		} else {
			res.Violations1++
			b := math.Ceil(pred/model.Thr1/cfg.BetaStep) * cfg.BetaStep
			if b > res.Beta1 {
				res.Beta1 = b
			}
		}
	}
	return res, nil
}

// Enrollment is the full result of enrolling a chip.
type Enrollment struct {
	Model *ChipModel
	// PerPUF records the individual β search outcomes before pooling.
	PerPUF []BetaSearchResult
}

// EnrollChip runs the complete enrollment flow on a chip: fit one model per
// member PUF, search per-PUF βs, pool them conservatively (min β0, max β1 —
// the paper applies common β values chip-wide), and optionally blow the
// fuses.  All randomness comes from src.
func EnrollChip(chip *silicon.Chip, src *rng.Source, cfg EnrollConfig) (*Enrollment, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if chip.FusesBlown() {
		return nil, errors.New("core: cannot enroll a chip whose fuses are already blown")
	}
	enr := &Enrollment{
		Model: &ChipModel{
			PUFs:  make([]*PUFModel, chip.NumPUFs()),
			Beta0: 1,
			Beta1: 1,
		},
		PerPUF: make([]BetaSearchResult, chip.NumPUFs()),
	}
	for i := 0; i < chip.NumPUFs(); i++ {
		model, err := EnrollPUF(chip, i, src.Fork("train", i), cfg)
		if err != nil {
			return nil, err
		}
		betas, err := SearchBetas(chip, i, model, src.Fork("validate", i), cfg)
		if err != nil {
			return nil, err
		}
		enr.Model.PUFs[i] = model
		enr.PerPUF[i] = betas
		if betas.Beta0 < enr.Model.Beta0 {
			enr.Model.Beta0 = betas.Beta0
		}
		if betas.Beta1 > enr.Model.Beta1 {
			enr.Model.Beta1 = betas.Beta1
		}
	}
	if cfg.BlowFuses {
		chip.BlowFuses()
	}
	return enr, nil
}

// PoolBetas returns the most conservative β pair across several enrollments
// (min β0, max β1), mirroring the paper's choice of β0 = 0.74, β1 = 1.08 as
// the extreme values over its 10 chips.
func PoolBetas(enrollments []*Enrollment) (beta0, beta1 float64) {
	beta0, beta1 = 1, 1
	for _, e := range enrollments {
		if e.Model.Beta0 < beta0 {
			beta0 = e.Model.Beta0
		}
		if e.Model.Beta1 > beta1 {
			beta1 = e.Model.Beta1
		}
	}
	return beta0, beta1
}
