// Package core implements the paper's contribution: model-assisted stable
// challenge selection and zero-Hamming-distance authentication for wide XOR
// arbiter PUFs.
//
// The pipeline (paper Figs 6–7):
//
//  1. Enrollment — while the chip's one-time fuses are intact, measure soft
//     responses of each individual arbiter PUF on a few thousand random
//     challenges and fit a linear regression from parity features Φ(c) to the
//     soft response.  The fitted coefficients are the PUF's extracted delay
//     parameters, stored in the server database.
//  2. Thresholding — compare model predictions with the measured soft
//     responses on the training set and derive Thr(0)/Thr(1): the lowest
//     prediction ever observed with a measured soft response > 0.00, and the
//     highest prediction ever observed with a measured soft response < 1.00.
//     Predictions below/above the thresholds are classified stable-0/stable-1;
//     the band in between is unstable (three categories, paper §4).
//  3. β adjustment — scale Thr(0) by β0 < 1 and Thr(1) by β1 > 1, tightening
//     both boundaries until no challenge the model selects is measured
//     unstable on a validation set, optionally across all V/T corners
//     (paper §5).
//  4. Authentication — the server generates random challenges, keeps only
//     those predicted stable on every member PUF, predicts the XOR response
//     from the per-PUF models, and approves the chip only on a 100 % match
//     of one-shot XOR responses.
package core

import (
	"errors"
	"fmt"
	"math"

	"xorpuf/internal/challenge"
	"xorpuf/internal/linalg"
)

// Category is the three-way stability classification of a predicted soft
// response (paper §4: stable 0, unstable, stable 1).
type Category uint8

const (
	// Stable0 predicts a 100 %-stable response of 0.
	Stable0 Category = iota
	// Unstable predicts an intermittently flipping response.
	Unstable
	// Stable1 predicts a 100 %-stable response of 1.
	Stable1
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Stable0:
		return "stable 0"
	case Unstable:
		return "unstable"
	case Stable1:
		return "stable 1"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// PUFModel is the server-side model of one arbiter PUF: regression
// coefficients over parity features plus the raw training-set thresholds.
type PUFModel struct {
	// Theta are the linear-regression coefficients mapping Φ(c) to the
	// predicted soft response (length stages+1).  Up to an affine
	// transform these are the PUF's extracted delay parameters.
	Theta []float64 `json:"theta"`
	// Thr0 is the raw stable-0 threshold: the lowest training prediction
	// whose measured soft response exceeded 0.00.
	Thr0 float64 `json:"thr0"`
	// Thr1 is the raw stable-1 threshold: the highest training prediction
	// whose measured soft response was below 1.00.
	Thr1 float64 `json:"thr1"`
}

// Stages returns the number of PUF stages the model covers.
func (m *PUFModel) Stages() int { return len(m.Theta) - 1 }

// PredictSoft returns the model's predicted soft response Φ(c)·θ.  The
// prediction is unclamped: values below 0 / above 1 indicate challenges deep
// inside the stable regions (the "wider range" of paper Fig 8).
func (m *PUFModel) PredictSoft(c challenge.Challenge) float64 {
	if len(c) != m.Stages() {
		panic(fmt.Sprintf("core: challenge length %d, want %d", len(c), m.Stages()))
	}
	k := len(c)
	sum := m.Theta[k]
	acc := 1.0
	for i := k - 1; i >= 0; i-- {
		if c[i] == 1 {
			acc = -acc
		}
		sum += m.Theta[i] * acc
	}
	return sum
}

// PredictSoftFeatures is PredictSoft on a precomputed feature vector.
func (m *PUFModel) PredictSoftFeatures(phi []float64) float64 {
	return linalg.Dot(m.Theta, phi)
}

// Classify applies the β-scaled thresholds to a predicted soft response:
// stable 0 below β0·Thr0, stable 1 above β1·Thr1, unstable in between.
// β0 = β1 = 1 reproduces the raw training thresholds.
func (m *PUFModel) Classify(predicted, beta0, beta1 float64) Category {
	switch {
	case predicted < beta0*m.Thr0:
		return Stable0
	case predicted > beta1*m.Thr1:
		return Stable1
	default:
		return Unstable
	}
}

// ClassifyChallenge is Classify applied to PredictSoft(c).
func (m *PUFModel) ClassifyChallenge(c challenge.Challenge, beta0, beta1 float64) Category {
	return m.Classify(m.PredictSoft(c), beta0, beta1)
}

// PredictBit returns the hard response bit implied by a stable category; it
// panics on Unstable (callers must filter first).
func (c Category) PredictBit() uint8 {
	switch c {
	case Stable0:
		return 0
	case Stable1:
		return 1
	default:
		panic("core: PredictBit on unstable category")
	}
}

// ErrDegenerateTraining is returned when the training set cannot support
// threshold extraction (e.g. it contains no partially unstable responses).
var ErrDegenerateTraining = errors.New("core: training set has no unstable soft responses; cannot derive thresholds")

// FitModel fits the linear soft-response regression and extracts raw
// thresholds from a training set of challenges and their measured soft
// responses.  ridge ≥ 0 adds Tikhonov regularization to the regression.
func FitModel(cs []challenge.Challenge, soft []float64, ridge float64) (*PUFModel, error) {
	if len(cs) == 0 {
		return nil, errors.New("core: empty training set")
	}
	if len(cs) != len(soft) {
		return nil, fmt.Errorf("core: %d challenges but %d soft responses", len(cs), len(soft))
	}
	for i, s := range soft {
		if s < 0 || s > 1 || math.IsNaN(s) {
			return nil, fmt.Errorf("core: soft response %d = %v outside [0,1]", i, s)
		}
	}
	design := challenge.FeatureMatrix(cs)
	theta, err := linalg.LeastSquares(design, soft, ridge)
	if err != nil {
		return nil, fmt.Errorf("core: regression failed: %w", err)
	}
	m := &PUFModel{Theta: theta}
	// Threshold extraction (paper Fig 8): scan the training set comparing
	// predictions with measurements.
	thr0 := math.Inf(1)
	thr1 := math.Inf(-1)
	for i, c := range cs {
		pred := m.PredictSoft(c)
		if soft[i] > 0 && pred < thr0 {
			thr0 = pred
		}
		if soft[i] < 1 && pred > thr1 {
			thr1 = pred
		}
	}
	if math.IsInf(thr0, 1) || math.IsInf(thr1, -1) {
		return nil, ErrDegenerateTraining
	}
	// The β scaling semantics (β0 < 1 tightens the 0 side, β1 > 1 the 1
	// side) require Thr0 > 0 and Thr1 < 1, which holds whenever the model
	// is a reasonable fit; clamp pathological fits conservatively.
	if thr0 <= 0 {
		thr0 = 1e-3
	}
	if thr1 >= 1 {
		thr1 = 1 - 1e-3
	}
	m.Thr0, m.Thr1 = thr0, thr1
	return m, nil
}

// StableMeasurement reports whether a measured soft response is 100 % stable
// (exactly 0.00 or 1.00 over the counter window).
func StableMeasurement(soft float64) bool { return soft == 0 || soft == 1 }
