package core

import (
	"testing"

	"xorpuf/internal/rng"
)

// propModel is a synthetic model whose predictions are cheap and mostly
// stable, so the property sweep spends its time in Selector bookkeeping, not
// enrollment.
func propModel(seed uint64, stages int) *ChipModel {
	src := rng.New(seed)
	theta := make([]float64, stages+1)
	for i := range theta {
		theta[i] = src.Float64()*0.5 - 0.25
	}
	theta[stages] = 0.5
	return &ChipModel{
		Beta0: 1, Beta1: 1,
		PUFs: []*PUFModel{{Theta: theta, Thr0: 0.45, Thr1: 0.55}},
	}
}

// TestSelectorNeverReuseProperty is the randomized statement of the Fig 7
// never-reuse rule: across 1,000 random seeds, arbitrary batch sizes, and
// interleaved Export/Import cycles (simulated process restarts, which reset
// the rng stream but carry the used set), a selector never issues the same
// challenge twice and a budgeted selector's Remaining never increases.
func TestSelectorNeverReuseProperty(t *testing.T) {
	const iterations = 1000
	for iter := 0; iter < iterations; iter++ {
		seed := uint64(iter + 1)
		drive := rng.New(seed).Split("drive")
		model := propModel(seed, 24)
		budget := 0
		if drive.Float64() < 0.5 {
			budget = 20 + int(drive.Float64()*80)
		}
		sel := NewSelector(model, rng.New(seed))
		sel.SetBudget(budget)

		everIssued := make(map[uint64]struct{})
		lastRemaining := sel.Remaining()
		rounds := 2 + int(drive.Float64()*6)
		for round := 0; round < rounds; round++ {
			if drive.Float64() < 0.3 {
				// Simulated restart: export, build a fresh selector with the
				// SAME rng seed (so it regenerates old candidates), import.
				// Only the used set may keep the never-reuse guarantee.
				st := sel.ExportState()
				sel = NewSelector(model, rng.New(seed))
				sel.ImportState(st)
				if got := sel.Remaining(); got != lastRemaining {
					t.Fatalf("iter %d round %d: Remaining changed across export/import: %d → %d",
						iter, round, lastRemaining, got)
				}
			}
			count := 1 + int(drive.Float64()*8)
			cs, bits, err := sel.Next(count, 0)
			if err != nil {
				if _, ok := err.(*ErrBudgetExhausted); ok && budget > 0 {
					if sel.Issued()+count <= budget {
						t.Fatalf("iter %d: budget refusal with %d issued of %d, wanted %d",
							iter, sel.Issued(), budget, count)
					}
					continue
				}
				t.Fatalf("iter %d round %d: Next: %v", iter, round, err)
			}
			if len(cs) != count || len(bits) != count {
				t.Fatalf("iter %d: Next returned %d challenges, %d bits, want %d",
					iter, len(cs), len(bits), count)
			}
			for _, c := range cs {
				key := c.Word()
				if _, dup := everIssued[key]; dup {
					t.Fatalf("iter %d round %d: challenge %x issued twice", iter, round, key)
				}
				everIssued[key] = struct{}{}
				bit, stable := model.PredictXOR(c)
				if !stable {
					t.Fatalf("iter %d: issued unstable challenge %x", iter, key)
				}
				_ = bit
			}
			rem := sel.Remaining()
			if budget == 0 {
				if rem != -1 {
					t.Fatalf("iter %d: unbudgeted Remaining = %d, want -1", iter, rem)
				}
			} else {
				if rem > lastRemaining {
					t.Fatalf("iter %d round %d: Remaining increased %d → %d",
						iter, round, lastRemaining, rem)
				}
				if want := budget - sel.Issued(); rem != max(want, 0) {
					t.Fatalf("iter %d: Remaining = %d, want %d (budget %d, issued %d)",
						iter, rem, max(want, 0), budget, sel.Issued())
				}
			}
			lastRemaining = rem
			if sel.Issued() != len(everIssued) {
				t.Fatalf("iter %d: Issued() = %d, distinct issued = %d",
					iter, sel.Issued(), len(everIssued))
			}
		}
	}
}
