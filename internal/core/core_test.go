package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

func testConfig() EnrollConfig {
	cfg := DefaultEnrollConfig()
	cfg.TrainingSize = 2000
	cfg.ValidationSize = 8000
	return cfg
}

func enrollTestChip(t *testing.T, seed uint64, width int, cfg EnrollConfig) (*silicon.Chip, *Enrollment) {
	t.Helper()
	chip := silicon.NewChip(rng.New(seed), silicon.DefaultParams(), width)
	enr, err := EnrollChip(chip, rng.New(seed+1000), cfg)
	if err != nil {
		t.Fatalf("EnrollChip: %v", err)
	}
	return chip, enr
}

func TestFitModelRecoversDelayDirection(t *testing.T) {
	// The regression coefficients must align with the PUF's ground-truth
	// weight vector (cosine similarity ≈ 1): the linear model extracts
	// the delay parameters up to scale.
	chip := silicon.NewChip(rng.New(1), silicon.DefaultParams(), 1)
	model, err := EnrollPUF(chip, 0, rng.New(2), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := chip.PUF(0).Weights(silicon.Nominal)
	// Ignore the constant-feature coefficient, which absorbs the 0.5
	// soft-response offset on top of the arbiter bias.
	var dot, nw, nt float64
	for i := 0; i < len(w)-1; i++ {
		dot += w[i] * model.Theta[i]
		nw += w[i] * w[i]
		nt += model.Theta[i] * model.Theta[i]
	}
	cos := dot / math.Sqrt(nw*nt)
	if cos < 0.97 {
		t.Errorf("cosine(theta, weights) = %.4f, want > 0.97", cos)
	}
}

func TestFitModelThresholdGeometry(t *testing.T) {
	chip := silicon.NewChip(rng.New(3), silicon.DefaultParams(), 1)
	model, err := EnrollPUF(chip, 0, rng.New(4), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !(model.Thr0 > 0 && model.Thr0 < 0.5) {
		t.Errorf("Thr0 = %v, want in (0, 0.5)", model.Thr0)
	}
	if !(model.Thr1 > 0.5 && model.Thr1 < 1) {
		t.Errorf("Thr1 = %v, want in (0.5, 1)", model.Thr1)
	}
	if model.Thr0 >= model.Thr1 {
		t.Errorf("Thr0 %v >= Thr1 %v", model.Thr0, model.Thr1)
	}
}

func TestPredictSoftMatchesFeatureDot(t *testing.T) {
	chip := silicon.NewChip(rng.New(5), silicon.DefaultParams(), 1)
	model, err := EnrollPUF(chip, 0, rng.New(6), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := quick.Check(func(word uint32) bool {
		c := challenge.FromWord(uint64(word), model.Stages())
		phi := challenge.Features(c)
		return math.Abs(model.PredictSoft(c)-model.PredictSoftFeatures(phi)) < 1e-12
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictionTracksTrueSoftResponse(t *testing.T) {
	// Predicted and true soft responses must agree in ordering: challenges
	// predicted deep stable-0 must have response probability ≈ 0, etc.
	chip := silicon.NewChip(rng.New(7), silicon.DefaultParams(), 1)
	model, err := EnrollPUF(chip, 0, rng.New(8), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	for i := 0; i < 3000; i++ {
		c := challenge.Random(src, model.Stages())
		pred := model.PredictSoft(c)
		p := chip.PUF(0).ResponseProbability(c, silicon.Nominal)
		if pred < -0.2 && p > 1e-3 {
			t.Fatalf("pred %v but true P(1) = %v", pred, p)
		}
		if pred > 1.2 && p < 1-1e-3 {
			t.Fatalf("pred %v but true P(1) = %v", pred, p)
		}
	}
}

func TestClassifyBoundaries(t *testing.T) {
	m := &PUFModel{Thr0: 0.3, Thr1: 0.7}
	cases := []struct {
		pred, b0, b1 float64
		want         Category
	}{
		{0.1, 1, 1, Stable0},
		{0.3, 1, 1, Unstable}, // boundary is exclusive
		{0.5, 1, 1, Unstable},
		{0.7, 1, 1, Unstable},
		{0.9, 1, 1, Stable1},
		{0.25, 0.74, 1.08, Unstable}, // 0.74·0.3 = 0.222: tightened out
		{0.2, 0.74, 1.08, Stable0},
		{0.74, 0.74, 1.08, Unstable}, // 1.08·0.7 = 0.756
		{0.8, 0.74, 1.08, Stable1},
	}
	for _, c := range cases {
		if got := m.Classify(c.pred, c.b0, c.b1); got != c.want {
			t.Errorf("Classify(%v, %v, %v) = %v, want %v", c.pred, c.b0, c.b1, got, c.want)
		}
	}
}

func TestCategoryStringAndBit(t *testing.T) {
	if Stable0.String() != "stable 0" || Stable1.String() != "stable 1" || Unstable.String() != "unstable" {
		t.Error("category strings wrong")
	}
	if Stable0.PredictBit() != 0 || Stable1.PredictBit() != 1 {
		t.Error("category bits wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("PredictBit on Unstable should panic")
		}
	}()
	_ = Unstable.PredictBit()
}

func TestFitModelInputValidation(t *testing.T) {
	if _, err := FitModel(nil, nil, 0); err == nil {
		t.Error("empty training set should fail")
	}
	cs := challenge.RandomBatch(rng.New(10), 10, 32)
	if _, err := FitModel(cs, make([]float64, 9), 0); err == nil {
		t.Error("length mismatch should fail")
	}
	bad := make([]float64, 10)
	bad[3] = 1.5
	if _, err := FitModel(cs, bad, 0); err == nil {
		t.Error("out-of-range soft response should fail")
	}
}

func TestFitModelDegenerate(t *testing.T) {
	// All responses exactly 0: thresholds cannot be derived.
	cs := challenge.RandomBatch(rng.New(11), 200, 32)
	soft := make([]float64, 200)
	if _, err := FitModel(cs, soft, 0); !errors.Is(err, ErrDegenerateTraining) {
		t.Errorf("err = %v, want ErrDegenerateTraining", err)
	}
}

func TestBetaSearchDirection(t *testing.T) {
	// β0 ≤ 1 and β1 ≥ 1 always; hardening across V/T corners must be at
	// least as stringent as nominal-only.
	cfgNom := testConfig()
	cfgVT := testConfig()
	cfgVT.Conditions = silicon.Corners()
	chip := silicon.NewChip(rng.New(12), silicon.DefaultParams(), 1)
	model, err := EnrollPUF(chip, 0, rng.New(13), cfgNom)
	if err != nil {
		t.Fatal(err)
	}
	nom, err := SearchBetas(chip, 0, model, rng.New(14), cfgNom)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := SearchBetas(chip, 0, model, rng.New(14), cfgVT)
	if err != nil {
		t.Fatal(err)
	}
	if nom.Beta0 > 1 || nom.Beta1 < 1 {
		t.Errorf("nominal betas (%v, %v) outside (≤1, ≥1)", nom.Beta0, nom.Beta1)
	}
	if vt.Beta0 > nom.Beta0 || vt.Beta1 < nom.Beta1 {
		t.Errorf("V/T betas (%v, %v) must be at least as stringent as nominal (%v, %v)",
			vt.Beta0, vt.Beta1, nom.Beta0, nom.Beta1)
	}
}

func TestSelectedChallengesAreTrulyStable(t *testing.T) {
	// The heart of the paper: challenges the model selects must be
	// measured 100 % stable.
	chip, enr := enrollTestChip(t, 15, 4, testConfig())
	cs, _, _, err := enr.Model.SelectChallenges(rng.New(16), 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, c := range cs {
		// Exact per-window stability probability of the XOR output.
		prob := chip.XORStabilityProbability(chip.NumPUFs(), c, silicon.Nominal)
		if prob < 0.9999 {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(cs)); frac > 0.01 {
		t.Errorf("%.2f%% of selected challenges are not near-certainly stable", 100*frac)
	}
}

func TestPredictXORMatchesGroundTruth(t *testing.T) {
	chip, enr := enrollTestChip(t, 17, 4, testConfig())
	cs, predicted, _, err := enr.Model.SelectChallenges(rng.New(18), 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i, c := range cs {
		var want uint8
		for j := 0; j < chip.NumPUFs(); j++ {
			if chip.PUF(j).Delay(c, silicon.Nominal) > 0 {
				want ^= 1
			}
		}
		if predicted[i] != want {
			wrong++
		}
	}
	if wrong > 0 {
		t.Errorf("%d/%d predicted XOR bits differ from noiseless ground truth", wrong, len(cs))
	}
}

func TestAuthenticateGenuineChip(t *testing.T) {
	chip, enr := enrollTestChip(t, 19, 4, testConfig())
	res, err := Authenticate(enr.Model, chip, rng.New(20), 100, silicon.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved {
		t.Errorf("genuine chip denied: %d/%d mismatches", res.Mismatches, res.Challenges)
	}
}

func TestAuthenticateRejectsImpostorChip(t *testing.T) {
	_, enr := enrollTestChip(t, 21, 4, testConfig())
	impostor := silicon.NewChip(rng.New(9999), silicon.DefaultParams(), 4)
	res, err := Authenticate(enr.Model, impostor, rng.New(22), 100, silicon.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Approved {
		t.Error("impostor chip approved")
	}
	// An uncorrelated chip should mismatch on roughly half the CRPs.
	if res.Mismatches < 20 {
		t.Errorf("impostor only mismatched %d/100", res.Mismatches)
	}
}

func TestAuthenticateAfterFusesBlown(t *testing.T) {
	// The protocol must keep working after enrollment access is revoked.
	cfg := testConfig()
	cfg.BlowFuses = true
	chip, enr := enrollTestChip(t, 23, 4, cfg)
	if !chip.FusesBlown() {
		t.Fatal("fuses should be blown after enrollment with BlowFuses")
	}
	res, err := Authenticate(enr.Model, chip, rng.New(24), 50, silicon.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved {
		t.Errorf("genuine chip denied post-fuse: %d mismatches", res.Mismatches)
	}
}

func TestEnrollChipFailsOnBlownFuses(t *testing.T) {
	chip := silicon.NewChip(rng.New(25), silicon.DefaultParams(), 2)
	chip.BlowFuses()
	if _, err := EnrollChip(chip, rng.New(26), testConfig()); err == nil {
		t.Error("enrolling a blown chip should fail")
	}
}

func TestNarrowSharesModels(t *testing.T) {
	_, enr := enrollTestChip(t, 27, 4, testConfig())
	n2 := enr.Model.Narrow(2)
	if n2.Width() != 2 {
		t.Fatalf("Narrow width %d, want 2", n2.Width())
	}
	if n2.PUFs[0] != enr.Model.PUFs[0] || n2.PUFs[1] != enr.Model.PUFs[1] {
		t.Error("Narrow must share the underlying PUF models")
	}
	if n2.Beta0 != enr.Model.Beta0 || n2.Beta1 != enr.Model.Beta1 {
		t.Error("Narrow must keep the chip betas")
	}
}

func TestSelectionYieldDropsWithWidth(t *testing.T) {
	_, enr := enrollTestChip(t, 28, 6, testConfig())
	var prevYield float64 = 2
	for _, width := range []int{1, 3, 6} {
		cm := enr.Model.Narrow(width)
		_, _, examined, err := cm.SelectChallenges(rng.New(29), 200, 2_000_000)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		yield := 200 / float64(examined)
		if yield >= prevYield {
			t.Errorf("yield did not drop at width %d: %v vs %v", width, yield, prevYield)
		}
		prevYield = yield
	}
}

func TestSelectChallengesExhaustion(t *testing.T) {
	// An impossible model (thresholds excluding everything) must fail
	// with ErrSelectionExhausted.
	m := &PUFModel{Theta: make([]float64, 33), Thr0: 0.4, Thr1: 0.6}
	// Zero theta predicts 0.0 for every challenge... that's < Thr0, so
	// stable. Force unstable instead with impossible thresholds.
	m.Thr0 = -10
	m.Thr1 = 10
	cm := &ChipModel{PUFs: []*PUFModel{m}, Beta0: 1, Beta1: 1}
	_, _, _, err := cm.SelectChallenges(rng.New(30), 5, 1000)
	var exhausted *ErrSelectionExhausted
	if !errors.As(err, &exhausted) {
		t.Fatalf("err = %v, want ErrSelectionExhausted", err)
	}
	if exhausted.Examined != 1000 {
		t.Errorf("Examined = %d, want 1000", exhausted.Examined)
	}
}

func TestChipModelJSONRoundTrip(t *testing.T) {
	_, enr := enrollTestChip(t, 31, 3, testConfig())
	data, err := EncodeChipModel(enr.Model)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeChipModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Beta0 != enr.Model.Beta0 || decoded.Beta1 != enr.Model.Beta1 {
		t.Error("betas did not round-trip")
	}
	if decoded.Width() != 3 {
		t.Fatalf("width %d, want 3", decoded.Width())
	}
	c := challenge.Random(rng.New(32), decoded.Stages())
	for i := range decoded.PUFs {
		a := enr.Model.PUFs[i].PredictSoft(c)
		b := decoded.PUFs[i].PredictSoft(c)
		if a != b {
			t.Errorf("PUF %d prediction changed after round trip: %v vs %v", i, a, b)
		}
	}
}

func TestDecodeChipModelRejectsGarbage(t *testing.T) {
	if _, err := DecodeChipModel([]byte("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := DecodeChipModel([]byte(`{"pufs":[],"beta0":1,"beta1":1}`)); err == nil {
		t.Error("empty PUF list should fail")
	}
	if _, err := DecodeChipModel([]byte(`{"pufs":[{"theta":[1,2,3]},{"theta":[1,2]}],"beta0":1,"beta1":1}`)); err == nil {
		t.Error("mismatched stage counts should fail")
	}
}

func TestPoolBetasConservative(t *testing.T) {
	e1 := &Enrollment{Model: &ChipModel{Beta0: 0.9, Beta1: 1.05}}
	e2 := &Enrollment{Model: &ChipModel{Beta0: 0.74, Beta1: 1.02}}
	e3 := &Enrollment{Model: &ChipModel{Beta0: 0.85, Beta1: 1.08}}
	b0, b1 := PoolBetas([]*Enrollment{e1, e2, e3})
	if b0 != 0.74 || b1 != 1.08 {
		t.Errorf("pooled betas (%v, %v), want (0.74, 1.08)", b0, b1)
	}
}

func TestEnrollConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.TrainingSize = 10
	if _, err := EnrollChip(silicon.NewChip(rng.New(33), silicon.DefaultParams(), 1), rng.New(34), cfg); err == nil {
		t.Error("tiny training size should fail")
	}
	cfg = testConfig()
	cfg.BetaStep = 0
	if err := cfg.validate(); err == nil {
		t.Error("zero beta step should fail")
	}
}

func TestSubsetDevice(t *testing.T) {
	chip := silicon.NewChip(rng.New(35), silicon.DefaultParams(), 5)
	dev := SubsetDevice{Chip: chip, N: 3}
	src := rng.New(36)
	// On a challenge where all of the first 3 PUFs are stable, the subset
	// device's read must equal the XOR of their sign bits.
	for tries := 0; tries < 1000; tries++ {
		c := challenge.Random(src, chip.Stages())
		stable := true
		var want uint8
		for i := 0; i < 3; i++ {
			p := chip.PUF(i).ResponseProbability(c, silicon.Nominal)
			if p > 1e-9 && p < 1-1e-9 {
				stable = false
				break
			}
			if p >= 0.5 {
				want ^= 1
			}
		}
		if !stable {
			continue
		}
		if got := dev.ReadXOR(c, silicon.Nominal); got != want {
			t.Fatalf("SubsetDevice.ReadXOR = %d, want %d", got, want)
		}
		return
	}
	t.Fatal("no stable challenge found")
}

func TestSelectorNeverRepeats(t *testing.T) {
	_, enr := enrollTestChip(t, 40, 3, testConfig())
	sel := NewSelector(enr.Model, rng.New(41))
	seen := map[uint64]bool{}
	for round := 0; round < 20; round++ {
		cs, bits, err := sel.Next(50, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) != 50 || len(bits) != 50 {
			t.Fatalf("round %d: got %d/%d", round, len(cs), len(bits))
		}
		for _, c := range cs {
			w := c.Word()
			if seen[w] {
				t.Fatalf("round %d: challenge reused", round)
			}
			seen[w] = true
		}
	}
	if sel.Issued() != 1000 {
		t.Errorf("Issued = %d, want 1000", sel.Issued())
	}
}

func TestSelectorPredictionsMatchModel(t *testing.T) {
	_, enr := enrollTestChip(t, 42, 3, testConfig())
	sel := NewSelector(enr.Model, rng.New(43))
	cs, bits, err := sel.Next(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cs {
		bit, stable := enr.Model.PredictXOR(c)
		if !stable {
			t.Fatal("selector issued an unstable challenge")
		}
		if bit != bits[i] {
			t.Fatal("selector bit disagrees with model prediction")
		}
	}
}

func TestSelectorExhaustion(t *testing.T) {
	m := &PUFModel{Theta: make([]float64, 33), Thr0: -10, Thr1: 10} // everything unstable
	cm := &ChipModel{PUFs: []*PUFModel{m}, Beta0: 1, Beta1: 1}
	sel := NewSelector(cm, rng.New(44))
	_, _, err := sel.Next(5, 500)
	var exhausted *ErrSelectionExhausted
	if !errors.As(err, &exhausted) {
		t.Fatalf("err = %v, want ErrSelectionExhausted", err)
	}
}

func TestClassifyScalesWithBetaProperty(t *testing.T) {
	// Property: tightening β can only move challenges from stable
	// categories to Unstable, never the other way.
	m := &PUFModel{Thr0: 0.35, Thr1: 0.65}
	if err := quick.Check(func(predRaw int16, tighten uint8) bool {
		pred := float64(predRaw) / 10000 // ±3.27
		loose := m.Classify(pred, 1, 1)
		f := 1 + float64(tighten%50)/100
		tight := m.Classify(pred, 1/f, f)
		if loose == Unstable {
			return tight == Unstable
		}
		return tight == loose || tight == Unstable
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictSoftLinearityProperty(t *testing.T) {
	// PredictSoft is linear in θ: model with θ=a+b predicts sum of parts.
	chipA := silicon.NewChip(rng.New(45), silicon.DefaultParams(), 1)
	chipB := silicon.NewChip(rng.New(46), silicon.DefaultParams(), 1)
	ma, err := EnrollPUF(chipA, 0, rng.New(47), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	mb, err := EnrollPUF(chipB, 0, rng.New(48), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := &PUFModel{Theta: make([]float64, len(ma.Theta))}
	for i := range sum.Theta {
		sum.Theta[i] = ma.Theta[i] + mb.Theta[i]
	}
	src := rng.New(49)
	for i := 0; i < 200; i++ {
		c := challenge.Random(src, 32)
		want := ma.PredictSoft(c) + mb.PredictSoft(c)
		if math.Abs(sum.PredictSoft(c)-want) > 1e-12 {
			t.Fatal("PredictSoft not linear in theta")
		}
	}
}

func TestIncrementalFitMatchesBatch(t *testing.T) {
	// RLS over the full stream must converge to the batch least-squares
	// solution (up to the tiny δ regularization).
	chip := silicon.NewChip(rng.New(60), silicon.DefaultParams(), 1)
	src := rng.New(61)
	const n = 3000
	cs := challenge.RandomBatch(src, n, chip.Stages())
	soft := make([]float64, n)
	inc := NewIncrementalFit(chip.Stages(), 1e-8)
	for i, c := range cs {
		s, err := chip.SoftResponse(0, c, silicon.Nominal)
		if err != nil {
			t.Fatal(err)
		}
		soft[i] = s
		if err := inc.Update(c, s); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := FitModel(cs, soft, 0)
	if err != nil {
		t.Fatal(err)
	}
	incModel, err := inc.Model()
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch.Theta {
		if math.Abs(batch.Theta[i]-incModel.Theta[i]) > 1e-6 {
			t.Fatalf("theta[%d]: batch %v vs RLS %v", i, batch.Theta[i], incModel.Theta[i])
		}
	}
	if math.Abs(batch.Thr0-incModel.Thr0) > 1e-5 || math.Abs(batch.Thr1-incModel.Thr1) > 1e-5 {
		t.Errorf("thresholds differ: batch (%v,%v) vs RLS (%v,%v)",
			batch.Thr0, batch.Thr1, incModel.Thr0, incModel.Thr1)
	}
	if inc.Count() != n {
		t.Errorf("Count = %d, want %d", inc.Count(), n)
	}
}

func TestIncrementalFitValidation(t *testing.T) {
	inc := NewIncrementalFit(32, 1e-6)
	if err := inc.Update(make(challenge.Challenge, 16), 0.5); err == nil {
		t.Error("wrong challenge length should fail")
	}
	if err := inc.Update(make(challenge.Challenge, 32), 1.5); err == nil {
		t.Error("out-of-range soft should fail")
	}
	if _, err := inc.Model(); err == nil {
		t.Error("empty fit should not produce a model")
	}
}

func TestIncrementalFitStreamingUsable(t *testing.T) {
	// A model snapshot taken mid-stream already classifies reasonably:
	// selected challenges from the early model must be mostly stable.
	chip := silicon.NewChip(rng.New(62), silicon.DefaultParams(), 1)
	src := rng.New(63)
	inc := NewIncrementalFit(chip.Stages(), 1e-8)
	for i := 0; i < 1200; i++ {
		c := challenge.Random(src, chip.Stages())
		s, err := chip.SoftResponse(0, c, silicon.Nominal)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Update(c, s); err != nil {
			t.Fatal(err)
		}
	}
	model, err := inc.Model()
	if err != nil {
		t.Fatal(err)
	}
	test := rng.New(64)
	selected, wrong := 0, 0
	for i := 0; i < 4000; i++ {
		c := challenge.Random(test, chip.Stages())
		if model.ClassifyChallenge(c, 1, 1) == Unstable {
			continue
		}
		selected++
		if chip.PUF(0).StabilityProbability(c, silicon.Nominal, chip.Params().CounterDepth) < 0.99 {
			wrong++
		}
	}
	if selected < 1000 {
		t.Fatalf("early model selected only %d/4000", selected)
	}
	if frac := float64(wrong) / float64(selected); frac > 0.02 {
		t.Errorf("early-model selection error %.3f, want < 0.02", frac)
	}
}

func TestSelectorBudgetAccounting(t *testing.T) {
	_, enr := enrollTestChip(t, 46, 3, testConfig())
	sel := NewSelector(enr.Model, rng.New(47))
	if sel.Remaining() != -1 {
		t.Fatalf("unbudgeted Remaining = %d, want -1", sel.Remaining())
	}
	sel.SetBudget(120)
	if got := sel.Remaining(); got != 120 {
		t.Fatalf("Remaining = %d, want 120", got)
	}
	if _, _, err := sel.Next(50, 0); err != nil {
		t.Fatal(err)
	}
	if got := sel.Remaining(); got != 70 {
		t.Errorf("after 50 issued, Remaining = %d, want 70", got)
	}
	// A request that would overrun the budget fails without issuing
	// anything: a partial session burns CRPs with no verdict.
	_, _, err := sel.Next(71, 0)
	var exhausted *ErrBudgetExhausted
	if !errors.As(err, &exhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if exhausted.Budget != 120 || exhausted.Issued != 50 || exhausted.Wanted != 71 {
		t.Errorf("exhausted = %+v", exhausted)
	}
	if sel.Issued() != 50 {
		t.Errorf("failed request burned budget: Issued = %d, want 50", sel.Issued())
	}
	// Exactly consuming the remainder still works.
	if _, _, err := sel.Next(70, 0); err != nil {
		t.Fatal(err)
	}
	if sel.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", sel.Remaining())
	}
	// Lifting the cap re-enables issuing.
	sel.SetBudget(0)
	if _, _, err := sel.Next(10, 0); err != nil {
		t.Errorf("after lifting budget: %v", err)
	}
}
