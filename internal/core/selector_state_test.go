package core

import (
	"reflect"
	"testing"

	"xorpuf/internal/rng"
)

// TestSelectorStateRoundTrip proves ExportState/ImportState preserve the
// never-reuse guarantee across selector lifetimes: a fresh selector hydrated
// from exported state never re-issues a challenge the old one handed out,
// even when its rng stream replays the exact same candidate sequence.
func TestSelectorStateRoundTrip(t *testing.T) {
	_, enr := enrollTestChip(t, 61, 2, testConfig())

	old := NewSelector(enr.Model, rng.New(71))
	old.SetBudget(500)
	cs, _, err := old.Next(120, 0)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	issued := map[uint64]struct{}{}
	for _, c := range cs {
		issued[c.Word()] = struct{}{}
	}

	st := old.ExportState()
	if len(st.Used) != 120 || st.Budget != 500 {
		t.Fatalf("exported state: %d used, budget %d; want 120, 500", len(st.Used), st.Budget)
	}
	for i := 1; i < len(st.Used); i++ {
		if st.Used[i-1] >= st.Used[i] {
			t.Fatalf("exported Used not strictly ascending at %d", i)
		}
	}
	// Export is deterministic: same state, identical serialization.
	if !reflect.DeepEqual(st, old.ExportState()) {
		t.Fatal("two exports of the same selector differ")
	}

	// Hydrate a new selector with the SAME rng seed — the adversarial case,
	// where the generator replays the old candidate stream verbatim.
	fresh := NewSelector(enr.Model, rng.New(71))
	fresh.ImportState(st)
	if fresh.Issued() != 120 || fresh.Budget() != 500 || fresh.Remaining() != 380 {
		t.Fatalf("hydrated selector: issued %d budget %d remaining %d",
			fresh.Issued(), fresh.Budget(), fresh.Remaining())
	}
	cs2, _, err := fresh.Next(120, 0)
	if err != nil {
		t.Fatalf("Next after import: %v", err)
	}
	for _, c := range cs2 {
		if _, dup := issued[c.Word()]; dup {
			t.Fatalf("challenge %s reissued after state import", c)
		}
	}

	// Round trip through export again: union of both batches.
	st2 := fresh.ExportState()
	if len(st2.Used) != 240 {
		t.Fatalf("second export has %d used, want 240", len(st2.Used))
	}
}

func TestSelectorMarkUsed(t *testing.T) {
	_, enr := enrollTestChip(t, 62, 2, testConfig())
	sel := NewSelector(enr.Model, rng.New(72))
	cs, _, err := sel.Next(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	words := make([]uint64, len(cs))
	for i, c := range cs {
		words[i] = c.Word()
	}

	replay := NewSelector(enr.Model, rng.New(72))
	replay.MarkUsed(words...)
	replay.MarkUsed(words...) // idempotent
	if replay.Issued() != 50 {
		t.Fatalf("Issued = %d after MarkUsed, want 50", replay.Issued())
	}
	cs2, _, err := replay.Next(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]struct{}{}
	for _, w := range words {
		seen[w] = struct{}{}
	}
	for _, c := range cs2 {
		if _, dup := seen[c.Word()]; dup {
			t.Fatalf("challenge %s reissued after MarkUsed", c)
		}
	}
}
