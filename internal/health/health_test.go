package health

import (
	"sync"
	"testing"
)

func clean() Outcome  { return Outcome{Approved: true, Mismatches: 0, Challenges: 25} }
func failed() Outcome { return Outcome{Approved: false, Mismatches: 5, Challenges: 25} }

func TestTrackerStaysHealthyOnCleanTraffic(t *testing.T) {
	tr := NewTracker(Config{})
	for i := 0; i < 1000; i++ {
		if ev, ok := tr.Record(clean()); ok {
			t.Fatalf("clean session %d caused transition %v", i, ev)
		}
	}
	if tr.State() != Healthy {
		t.Fatalf("state = %v after clean traffic", tr.State())
	}
}

func TestTrackerToleratesIsolatedUpsets(t *testing.T) {
	// One single-bit-mismatch denial every 10 sessions is the healthy-chip
	// noise floor the detectors must absorb (the whole point of selected
	// CRPs is that this is already rarer than reality).
	tr := NewTracker(Config{})
	for i := 0; i < 500; i++ {
		o := clean()
		if i%10 == 9 {
			o = Outcome{Approved: false, Mismatches: 1, Challenges: 25}
		}
		if ev, ok := tr.Record(o); ok {
			t.Fatalf("isolated upsets at session %d caused transition %v", i, ev)
		}
	}
}

func TestTrackerDegradesThenQuarantinesOnSustainedDrift(t *testing.T) {
	tr := NewTracker(Config{})
	var events []Event
	for i := 0; i < 100; i++ {
		if ev, ok := tr.Record(failed()); ok {
			events = append(events, ev)
		}
		if tr.State() == Quarantined {
			break
		}
	}
	if len(events) != 2 {
		t.Fatalf("got %d transitions, want degrade then quarantine: %v", len(events), events)
	}
	if events[0].From != Healthy || events[0].To != Degraded {
		t.Errorf("first transition %v, want healthy→degraded", events[0])
	}
	if events[1].From != Degraded || events[1].To != Quarantined {
		t.Errorf("second transition %v, want degraded→quarantined", events[1])
	}
	if tr.State() != Quarantined {
		t.Errorf("final state %v", tr.State())
	}
	// Quarantine is sticky under any further traffic, even clean.
	for i := 0; i < 200; i++ {
		if ev, ok := tr.Record(clean()); ok {
			t.Fatalf("quarantined tracker transitioned on clean traffic: %v", ev)
		}
	}
	if tr.State() != Quarantined {
		t.Errorf("quarantine not sticky: %v", tr.State())
	}
}

func TestTrackerMinSessionsWarmup(t *testing.T) {
	cfg := DefaultConfig()
	tr := NewTracker(cfg)
	for i := 0; i < cfg.MinSessions-1; i++ {
		if ev, ok := tr.Record(failed()); ok {
			t.Fatalf("transition %v during warm-up session %d", ev, i)
		}
	}
	if _, ok := tr.Record(failed()); !ok {
		t.Error("no transition at end of warm-up despite every session failing")
	}
}

func TestTrackerRecoversFromTransientDegradation(t *testing.T) {
	tr := NewTracker(Config{})
	// Drive into degraded with mild failures (single-bit mismatches), so the
	// CUSUM stays well under the quarantine limit and a recovery is possible.
	for tr.State() != Degraded {
		tr.Record(Outcome{Approved: false, Mismatches: 1, Challenges: 25})
	}
	// ...then a long run of clean sessions must bring it home.
	var recovered bool
	for i := 0; i < 500 && !recovered; i++ {
		if ev, ok := tr.Record(clean()); ok {
			if ev.From != Degraded || ev.To != Healthy || ev.Cause != CauseRecovered {
				t.Fatalf("unexpected transition %v", ev)
			}
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("degraded tracker never recovered on clean traffic")
	}
}

func TestTrackerCUSUMCatchesSubFailureDrift(t *testing.T) {
	// A drifting chip that still passes most sessions: every session has a
	// mismatch fraction of 0.08 (2/25) but only some fail outright.  The
	// failure-rate EWMA alone would need many sessions; CUSUM must fire.
	tr := NewTracker(Config{})
	fired := false
	for i := 0; i < 40; i++ {
		approved := i%3 != 0 // 67% of sessions still "pass"
		ev, ok := tr.Record(Outcome{Approved: approved, Mismatches: 2, Challenges: 25})
		if ok {
			if ev.Cause != CauseCUSUM {
				t.Fatalf("expected CUSUM to fire first, got %v", ev)
			}
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("CUSUM never detected persistent sub-failure drift")
	}
}

func TestTrackerForceAndReset(t *testing.T) {
	tr := NewTracker(Config{})
	ev, ok := tr.Force(Quarantined)
	if !ok || ev.To != Quarantined || ev.Cause != CauseForced {
		t.Fatalf("Force: %v %v", ev, ok)
	}
	if _, ok := tr.Force(Quarantined); ok {
		t.Error("no-op Force reported a transition")
	}
	ev, ok = tr.Reset()
	if !ok || ev.From != Quarantined || ev.To != Healthy || ev.Cause != CauseReEnrolled {
		t.Fatalf("Reset: %v %v", ev, ok)
	}
	if st := tr.Snapshot(); st != (TrackerState{}) {
		t.Errorf("Reset left residual state %+v", st)
	}
	if _, ok := tr.Reset(); ok {
		t.Error("Reset of a pristine tracker reported a transition")
	}
}

func TestTrackerSnapshotRestoreRoundTrip(t *testing.T) {
	a := NewTracker(Config{})
	for i := 0; i < 7; i++ {
		a.Record(failed())
	}
	st := a.Snapshot()

	b := NewTracker(Config{})
	b.Restore(st)
	if b.Snapshot() != st {
		t.Fatal("restore did not reproduce snapshot")
	}
	// The restored tracker must continue exactly where the original left off.
	for i := 0; i < 50; i++ {
		evA, okA := a.Record(failed())
		evB, okB := b.Record(failed())
		if okA != okB || evA.To != evB.To || evA.Cause != evB.Cause {
			t.Fatalf("diverged at session %d: (%v,%v) vs (%v,%v)", i, evA, okA, evB, okB)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{DegradeCUSUM: 0.5, QuarantineCUSUM: 0.2},
		{DegradeFailRate: 0.7, QuarantineFailRate: 0.3},
		{RecoverFailRate: 0.5, DegradeFailRate: 0.4},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestStateStringAndValid(t *testing.T) {
	for s, want := range map[State]string{Healthy: "healthy", Degraded: "degraded", Quarantined: "quarantined"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
		if !s.Valid() {
			t.Errorf("%v not Valid()", s)
		}
	}
	if State(7).Valid() {
		t.Error("State(7) claims Valid()")
	}
}

func TestMonitorConcurrent(t *testing.T) {
	m := NewMonitor(Config{})
	var evMu sync.Mutex
	events := map[string][]Event{}
	m.OnEvent(func(ev Event) {
		evMu.Lock()
		events[ev.ChipID] = append(events[ev.ChipID], ev)
		evMu.Unlock()
	})

	// Chip "bad-N" drifts; chip "good-N" stays clean.  Hammer from many
	// goroutines (one per chip, so per-chip ordering holds).
	var wg sync.WaitGroup
	ids := []string{"good-0", "bad-0", "good-1", "bad-1", "good-2", "bad-2"}
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				o := clean()
				if id[0] == 'b' {
					o = failed()
				}
				m.Record(id, o)
			}
		}(id)
	}
	wg.Wait()

	for _, id := range ids {
		want := Healthy
		if id[0] == 'b' {
			want = Quarantined
		}
		if got := m.State(id); got != want {
			t.Errorf("%s: state %v, want %v", id, got, want)
		}
	}
	evMu.Lock()
	for _, id := range ids {
		if id[0] == 'b' {
			if n := len(events[id]); n != 2 {
				t.Errorf("%s: %d events, want 2 (degrade, quarantine): %v", id, n, events[id])
			}
			for _, ev := range events[id] {
				if ev.ChipID != id {
					t.Errorf("event carries wrong chip id: %v", ev)
				}
			}
		} else if len(events[id]) != 0 {
			t.Errorf("%s: unexpected events %v", id, events[id])
		}
	}
	evMu.Unlock() // Force/Reset below re-enter the callback, which locks evMu

	// Unknown chips read healthy; snapshot covers all tracked chips.
	if m.State("never-seen") != Healthy {
		t.Error("unknown chip not healthy")
	}
	if snap := m.Snapshot(); len(snap) != len(ids) {
		t.Errorf("snapshot has %d chips, want %d", len(snap), len(ids))
	}

	// Force + Reset round-trip through the monitor.
	if ev, ok := m.Force("good-0", Quarantined); !ok || ev.ChipID != "good-0" {
		t.Errorf("Force: %v %v", ev, ok)
	}
	if m.State("good-0") != Quarantined {
		t.Error("Force did not stick")
	}
	if ev, ok := m.Reset("good-0"); !ok || ev.To != Healthy {
		t.Errorf("Reset: %v %v", ev, ok)
	}
}
