// Package health is the lifetime-reliability subsystem: it watches per-chip
// authentication outcomes for drift out of the enrolled model and classifies
// each chip as healthy, degraded, or quarantined.
//
// Why it exists.  The paper's β0/β1 threshold machinery guarantees that
// *selected* CRPs are 100 %-stable across the 0.8–1.0 V / 0–60 °C envelope —
// at enrollment time.  Permanent BTI/HCI aging (silicon.Age) then walks the
// fielded chip away from the model the server enrolled, and the zero-HD
// criterion starts failing on challenges the model still predicts stable.
// The server must never respond by loosening acceptance (a softened
// Hamming-distance threshold is exactly the side channel chosen-challenge
// and reliability-based modeling attacks feed on); it must detect the
// drift, quarantine the chip behind an explicit denial, and re-enroll it so
// zero-HD authentication holds again.  This package is the detection and
// classification half of that loop; internal/registry journals its state
// and internal/registry/fleet re-enrolls.
//
// Detectors.  Two complementary drift statistics run per chip:
//
//   - An EWMA of the session failure indicator (1 = denied).  It answers
//     "what fraction of recent sessions fail?" and drives the degraded →
//     quarantined escalation: a chip failing most of its sessions is
//     unusable regardless of why.
//   - A one-sided CUSUM over the per-session mismatch *fraction*
//     S ← max(0, S + m − k).  Selected CRPs mismatch at rate ≈ 0 for a
//     healthy chip, so even a small persistent mismatch rate — a drifting
//     chip that still occasionally passes — accumulates and crosses the
//     decision limit long before the failure-rate EWMA reacts.  CUSUM is
//     the classical minimal-detection-delay test for small persistent mean
//     shifts, which is precisely what cumulative aging looks like.
//
// Both detectors are O(1) state per chip — two floats and two counters — so
// a million-chip fleet costs megabytes, in keeping with the paper's
// delay-parameters-not-CRP-tables storage argument.
package health

import (
	"errors"
	"fmt"

	"xorpuf/internal/telemetry"
)

// Transition counters by destination state, captured once from the Default
// registry.  Transitions are rare (state changes, not sessions), so plain
// counters are all the plane needs to watch fleet-wide drift pressure.
var (
	transitionsHealthy     = telemetry.Default.Counter("health_transitions_healthy_total")
	transitionsDegraded    = telemetry.Default.Counter("health_transitions_degraded_total")
	transitionsQuarantined = telemetry.Default.Counter("health_transitions_quarantined_total")
)

func countTransition(to State) {
	switch to {
	case Healthy:
		transitionsHealthy.Inc()
	case Degraded:
		transitionsDegraded.Inc()
	case Quarantined:
		transitionsQuarantined.Inc()
	}
}

// State is a chip's lifetime-reliability classification.
type State uint8

const (
	// Healthy: the chip authenticates inside its enrolled model.
	Healthy State = iota
	// Degraded: drift detected; the chip still participates in
	// authentication but should be scheduled for re-enrollment.
	Degraded
	// Quarantined: drift severe enough that the verifier refuses sessions
	// with an explicit denial until the chip is re-enrolled.  Acceptance is
	// never loosened instead.
	Quarantined
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether s is a defined state (used when decoding persisted
// bytes).
func (s State) Valid() bool { return s <= Quarantined }

// Outcome is one authentication session's result, as fed to a tracker.
type Outcome struct {
	// Approved is the zero-HD verdict.
	Approved bool
	// Mismatches is the number of response bits that disagreed with the
	// server's prediction.
	Mismatches int
	// Challenges is the session's CRP count.
	Challenges int
}

// mismatchFraction is the CUSUM observation: mismatched bits per challenge.
func (o Outcome) mismatchFraction() float64 {
	if o.Challenges <= 0 {
		return 0
	}
	return float64(o.Mismatches) / float64(o.Challenges)
}

// Cause labels why a transition fired.
type Cause string

const (
	// CauseCUSUM: the mismatch-fraction CUSUM crossed a decision limit.
	CauseCUSUM Cause = "cusum"
	// CauseFailureRate: the session failure-rate EWMA crossed a limit.
	CauseFailureRate Cause = "failure-rate"
	// CauseRecovered: sustained clean sessions decayed the detectors back
	// under the recovery limits.
	CauseRecovered Cause = "recovered"
	// CauseForced: an operator forced the transition.
	CauseForced Cause = "forced"
	// CauseReEnrolled: the chip was re-enrolled and its detectors reset.
	CauseReEnrolled Cause = "re-enrolled"
)

// Event is a typed health-state transition.
type Event struct {
	// ChipID identifies the chip (empty for bare trackers; filled by the
	// Monitor and the registry).
	ChipID string
	// From and To are the states on either side of the transition.
	From, To State
	// Cause labels the detector or actor that fired it.
	Cause Cause
	// Stats is the tracker state at the moment of the transition.
	Stats TrackerState
}

func (e Event) String() string {
	return fmt.Sprintf("health: chip %q %s → %s (%s; fail-rate %.3f, cusum %.3f, %d sessions)",
		e.ChipID, e.From, e.To, e.Cause, e.Stats.FailEWMA, e.Stats.CUSUM, e.Stats.Sessions)
}

// Config tunes the drift detectors.  The zero value takes every default.
type Config struct {
	// Alpha is the EWMA smoothing factor over the session failure
	// indicator (default 0.15; higher reacts faster, noisier).
	Alpha float64
	// CUSUMSlack is the CUSUM allowance k: per-session mismatch fractions
	// below it are absorbed as noise (default 0.02).
	CUSUMSlack float64
	// DegradeCUSUM is the CUSUM decision limit h for healthy → degraded
	// (default 0.15).
	DegradeCUSUM float64
	// QuarantineCUSUM is the higher CUSUM limit for escalation to
	// quarantined (default 0.5).
	QuarantineCUSUM float64
	// DegradeFailRate is the failure-rate EWMA limit for healthy →
	// degraded (default 0.35).
	DegradeFailRate float64
	// QuarantineFailRate is the failure-rate EWMA limit for escalation to
	// quarantined (default 0.6).
	QuarantineFailRate float64
	// RecoverFailRate: a degraded chip whose EWMA decays below this AND
	// whose CUSUM decays below DegradeCUSUM/2 returns to healthy (default
	// 0.05).  Quarantined chips never auto-recover — only re-enrollment or
	// an operator releases them.
	RecoverFailRate float64
	// MinSessions is the warm-up before any detector-driven transition
	// (default 5): one unlucky first session must not classify a chip.
	MinSessions int
}

// DefaultConfig returns the default detector tuning.  With 20+-challenge
// sessions a healthy chip's occasional single-bit upset (mismatch fraction
// ≈ 0.04) stays under every limit, while a drifted chip failing most
// sessions at mismatch fractions ≥ 0.1 is degraded within ~3 sessions of
// warm-up ending and quarantined a few sessions later.
func DefaultConfig() Config {
	return Config{
		Alpha:              0.15,
		CUSUMSlack:         0.02,
		DegradeCUSUM:       0.15,
		QuarantineCUSUM:    0.5,
		DegradeFailRate:    0.35,
		QuarantineFailRate: 0.6,
		RecoverFailRate:    0.05,
		MinSessions:        5,
	}
}

// normalized fills zero fields with defaults.
func (c Config) normalized() Config {
	def := DefaultConfig()
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = def.Alpha
	}
	if c.CUSUMSlack <= 0 {
		c.CUSUMSlack = def.CUSUMSlack
	}
	if c.DegradeCUSUM <= 0 {
		c.DegradeCUSUM = def.DegradeCUSUM
	}
	if c.QuarantineCUSUM <= 0 {
		c.QuarantineCUSUM = def.QuarantineCUSUM
	}
	if c.DegradeFailRate <= 0 {
		c.DegradeFailRate = def.DegradeFailRate
	}
	if c.QuarantineFailRate <= 0 {
		c.QuarantineFailRate = def.QuarantineFailRate
	}
	if c.RecoverFailRate <= 0 {
		c.RecoverFailRate = def.RecoverFailRate
	}
	if c.MinSessions <= 0 {
		c.MinSessions = def.MinSessions
	}
	return c
}

// Validate rejects self-contradictory tunings.
func (c Config) Validate() error {
	c = c.normalized()
	switch {
	case c.QuarantineCUSUM < c.DegradeCUSUM:
		return errors.New("health: QuarantineCUSUM below DegradeCUSUM")
	case c.QuarantineFailRate < c.DegradeFailRate:
		return errors.New("health: QuarantineFailRate below DegradeFailRate")
	case c.RecoverFailRate >= c.DegradeFailRate:
		return errors.New("health: RecoverFailRate must sit below DegradeFailRate (hysteresis)")
	}
	return nil
}

// TrackerState is the portable persistent state of one chip's tracker —
// what the registry journals and snapshots so classification survives
// kill -9.
type TrackerState struct {
	// State is the current classification.
	State State
	// FailEWMA is the failure-rate EWMA.
	FailEWMA float64
	// CUSUM is the one-sided mismatch-fraction CUSUM statistic.
	CUSUM float64
	// Sessions and Failures are lifetime totals.
	Sessions, Failures uint64
}

// Tracker runs the drift detectors for one chip.  It is NOT safe for
// concurrent use — the registry guards it with the entry lock, and the
// Monitor with its own; see those for concurrent fronts.
type Tracker struct {
	cfg Config
	st  TrackerState
}

// NewTracker returns a healthy tracker under cfg (zero value → defaults).
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.normalized()}
}

// State returns the current classification.
func (t *Tracker) State() State { return t.st.State }

// Snapshot returns the persistable tracker state.
func (t *Tracker) Snapshot() TrackerState { return t.st }

// Restore replaces the tracker state with st — the recovery hook for state
// journaled by an earlier process lifetime.
func (t *Tracker) Restore(st TrackerState) { t.st = st }

// Record folds one session outcome into the detectors and returns the
// transition it caused, if any.
func (t *Tracker) Record(o Outcome) (Event, bool) {
	fail := 0.0
	if !o.Approved {
		fail = 1
		t.st.Failures++
	}
	t.st.Sessions++
	t.st.FailEWMA += t.cfg.Alpha * (fail - t.st.FailEWMA)
	t.st.CUSUM += o.mismatchFraction() - t.cfg.CUSUMSlack
	if t.st.CUSUM < 0 {
		t.st.CUSUM = 0
	}

	if t.st.Sessions < uint64(t.cfg.MinSessions) {
		return Event{}, false
	}
	switch t.st.State {
	case Healthy:
		if t.st.CUSUM >= t.cfg.DegradeCUSUM {
			return t.transition(Degraded, CauseCUSUM), true
		}
		if t.st.FailEWMA >= t.cfg.DegradeFailRate {
			return t.transition(Degraded, CauseFailureRate), true
		}
	case Degraded:
		if t.st.CUSUM >= t.cfg.QuarantineCUSUM {
			return t.transition(Quarantined, CauseCUSUM), true
		}
		if t.st.FailEWMA >= t.cfg.QuarantineFailRate {
			return t.transition(Quarantined, CauseFailureRate), true
		}
		if t.st.FailEWMA <= t.cfg.RecoverFailRate && t.st.CUSUM <= t.cfg.DegradeCUSUM/2 {
			return t.transition(Healthy, CauseRecovered), true
		}
	case Quarantined:
		// Sticky: no detector path out — only Reset (re-enrollment) or
		// Force (operator).  A quarantined chip should not normally be
		// fed outcomes at all, but replayed journals may do so.
	}
	return Event{}, false
}

// Force moves the tracker to state s unconditionally (operator action),
// reporting the transition if the state actually changed.
func (t *Tracker) Force(s State) (Event, bool) {
	if s == t.st.State {
		return Event{}, false
	}
	return t.transition(s, CauseForced), true
}

// Reset returns the tracker to a pristine healthy state — the re-enrollment
// hook: fresh model, fresh detectors.  The session totals reset too; they
// describe the retired model's lifetime, not the new one's.
func (t *Tracker) Reset() (Event, bool) {
	from := t.st.State
	t.st = TrackerState{}
	if from == Healthy {
		return Event{}, false
	}
	countTransition(Healthy)
	return Event{From: from, To: Healthy, Cause: CauseReEnrolled, Stats: t.st}, true
}

func (t *Tracker) transition(to State, cause Cause) Event {
	from := t.st.State
	t.st.State = to
	countTransition(to)
	return Event{From: from, To: to, Cause: cause, Stats: t.st}
}
