package health

import "sync"

// Monitor is a concurrency-safe fleet front over per-chip trackers: callers
// feed it (chip, outcome) pairs from any goroutine and subscribe to the
// transition events that result.  The registry embeds trackers directly in
// its entries (it already owns a per-entry lock and needs to journal state
// changes atomically with them); Monitor is for verifiers that run without
// a registry — tests, examples, and standalone servers.
type Monitor struct {
	mu       sync.Mutex
	cfg      Config
	trackers map[string]*Tracker
	onEvent  func(Event)
}

// NewMonitor returns an empty monitor under cfg (zero value → defaults).
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.normalized(), trackers: make(map[string]*Tracker)}
}

// OnEvent registers fn to be called with every health transition.  The
// callback runs with the monitor lock released, so it may call back into
// the monitor; events for a single chip are still delivered in order only
// if that chip's outcomes are recorded from a single goroutine.
func (m *Monitor) OnEvent(fn func(Event)) {
	m.mu.Lock()
	m.onEvent = fn
	m.mu.Unlock()
}

// tracker returns (creating if needed) the tracker for id; callers hold mu.
func (m *Monitor) tracker(id string) *Tracker {
	t, ok := m.trackers[id]
	if !ok {
		t = NewTracker(m.cfg)
		m.trackers[id] = t
	}
	return t
}

// Record folds one session outcome into chip id's detectors.
func (m *Monitor) Record(id string, o Outcome) (Event, bool) {
	m.mu.Lock()
	ev, ok := m.tracker(id).Record(o)
	fn := m.onEvent
	m.mu.Unlock()
	return m.deliver(ev, ok, id, fn)
}

// State returns chip id's classification (Healthy for unknown chips).
func (m *Monitor) State(id string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.trackers[id]; ok {
		return t.State()
	}
	return Healthy
}

// Force moves chip id to state s unconditionally.
func (m *Monitor) Force(id string, s State) (Event, bool) {
	m.mu.Lock()
	ev, ok := m.tracker(id).Force(s)
	fn := m.onEvent
	m.mu.Unlock()
	return m.deliver(ev, ok, id, fn)
}

// Reset returns chip id's tracker to pristine healthy (re-enrollment hook).
func (m *Monitor) Reset(id string) (Event, bool) {
	m.mu.Lock()
	ev, ok := m.tracker(id).Reset()
	fn := m.onEvent
	m.mu.Unlock()
	return m.deliver(ev, ok, id, fn)
}

// Snapshot returns every tracked chip's persistent state.
func (m *Monitor) Snapshot() map[string]TrackerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]TrackerState, len(m.trackers))
	for id, t := range m.trackers {
		out[id] = t.Snapshot()
	}
	return out
}

func (m *Monitor) deliver(ev Event, ok bool, id string, fn func(Event)) (Event, bool) {
	if !ok {
		return Event{}, false
	}
	ev.ChipID = id
	if fn != nil {
		fn(ev)
	}
	return ev, true
}
