// Package challenge defines arbiter-PUF challenges and the parity feature
// transform used by every linear and machine-learning model in this
// repository.
//
// A challenge for a k-stage MUX arbiter PUF is a vector of k select bits.
// The standard linear additive delay model (paper §4, refs [1-3]) expresses
// the arbiter's delay difference as Δ(c) = w·Φ(c), where Φ(c) ∈ {−1,+1}^{k+1}
// is the parity ("transformed challenge") vector
//
//	Φ_i(c) = Π_{j=i}^{k-1} (1 − 2·c_j)   for i = 0..k−1,   Φ_k(c) = 1.
//
// Φ_i flips sign whenever an odd number of downstream stages swap the two
// racing paths; the constant last component absorbs the arbiter's own bias.
package challenge

import (
	"fmt"
	"math"

	"xorpuf/internal/linalg"
	"xorpuf/internal/rng"
)

// Challenge is a vector of MUX select bits, one per stage, each 0 or 1.
type Challenge []uint8

// Validate returns an error if any bit is not 0 or 1.
func (c Challenge) Validate() error {
	for i, b := range c {
		if b > 1 {
			return fmt.Errorf("challenge: bit %d is %d, want 0 or 1", i, b)
		}
	}
	return nil
}

// Clone returns a deep copy of the challenge.
func (c Challenge) Clone() Challenge {
	out := make(Challenge, len(c))
	copy(out, c)
	return out
}

// String renders the challenge as a bit string, stage 0 first.
func (c Challenge) String() string {
	buf := make([]byte, len(c))
	for i, b := range c {
		buf[i] = '0' + b
	}
	return string(buf)
}

// Word packs the first 64 bits of the challenge into a uint64 (stage 0 in the
// least significant bit); used as a compact map key for dedup and CRP stores.
func (c Challenge) Word() uint64 {
	var w uint64
	n := len(c)
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		w |= uint64(c[i]) << uint(i)
	}
	return w
}

// FromWord unpacks a uint64 into a k-bit challenge (inverse of Word for
// k ≤ 64).
func FromWord(w uint64, k int) Challenge {
	c := make(Challenge, k)
	for i := 0; i < k && i < 64; i++ {
		c[i] = uint8((w >> uint(i)) & 1)
	}
	return c
}

// Random returns a uniformly random k-bit challenge drawn from src.
func Random(src *rng.Source, k int) Challenge {
	c := make(Challenge, k)
	for i := 0; i < k; i += 64 {
		w := src.Uint64()
		for j := i; j < i+64 && j < k; j++ {
			c[j] = uint8(w & 1)
			w >>= 1
		}
	}
	return c
}

// RandomBatch returns n independent uniformly random k-bit challenges.
func RandomBatch(src *rng.Source, n, k int) []Challenge {
	out := make([]Challenge, n)
	for i := range out {
		out[i] = Random(src, k)
	}
	return out
}

// RandomBatchDistinct returns n distinct uniformly random k-bit challenges
// (rejection-sampled); it panics if n exceeds 2^k.
func RandomBatchDistinct(src *rng.Source, n, k int) []Challenge {
	if k < 63 && uint64(n) > 1<<uint(k) {
		panic("challenge: more distinct challenges requested than exist")
	}
	seen := make(map[uint64]struct{}, n)
	out := make([]Challenge, 0, n)
	for len(out) < n {
		c := Random(src, k)
		w := c.Word()
		if _, dup := seen[w]; dup && k <= 64 {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, c)
	}
	return out
}

// FeatureDim returns the length of the parity feature vector for k stages.
func FeatureDim(k int) int { return k + 1 }

// Features computes the parity feature vector Φ(c) ∈ {−1,+1}^{k+1}.
func Features(c Challenge) []float64 {
	phi := make([]float64, len(c)+1)
	FeaturesInto(c, phi)
	return phi
}

// FeaturesInto computes Φ(c) into dst, which must have length len(c)+1.
// The suffix products are accumulated right-to-left in O(k).
func FeaturesInto(c Challenge, dst []float64) {
	k := len(c)
	if len(dst) != k+1 {
		panic(fmt.Sprintf("challenge: feature buffer length %d, want %d", len(dst), k+1))
	}
	dst[k] = 1
	acc := 1.0
	for i := k - 1; i >= 0; i-- {
		// Branchless sign flip: challenge bits are effectively random, so
		// a compare here mispredicts half the time on the issuance hot
		// path.  XORing the sign bit negates exactly (±1 stays exact).
		acc = math.Float64frombits(math.Float64bits(acc) ^ uint64(c[i]&1)<<63)
		dst[i] = acc
	}
}

// FeatureMatrix builds the n×(k+1) design matrix whose rows are Φ(c) for
// each challenge; this is the input to both the linear enrollment regression
// and the modeling attacks.
func FeatureMatrix(cs []Challenge) *linalg.Matrix {
	if len(cs) == 0 {
		return linalg.NewMatrix(0, 0)
	}
	k := len(cs[0])
	m := linalg.NewMatrix(len(cs), k+1)
	for i, c := range cs {
		if len(c) != k {
			panic(fmt.Sprintf("challenge: mixed challenge lengths %d and %d", k, len(c)))
		}
		FeaturesInto(c, m.Row(i))
	}
	return m
}

// All enumerates every k-bit challenge in counting order, invoking fn for
// each; it stops early if fn returns false.  Only practical for small k
// (tests, exhaustive CRP-space checks).
func All(k int, fn func(Challenge) bool) {
	if k > 30 {
		panic("challenge: exhaustive enumeration limited to k <= 30")
	}
	c := make(Challenge, k)
	total := uint64(1) << uint(k)
	for w := uint64(0); w < total; w++ {
		for i := 0; i < k; i++ {
			c[i] = uint8((w >> uint(i)) & 1)
		}
		if !fn(c) {
			return
		}
	}
}
