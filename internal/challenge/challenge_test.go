package challenge

import (
	"math"
	"testing"
	"testing/quick"

	"xorpuf/internal/rng"
)

func TestFeaturesKnown(t *testing.T) {
	// k=3, c = [0,1,0]: suffix parities from stage i to k-1.
	// Φ_3 = 1; Φ_2 = (1-2*0) = 1; Φ_1 = (1-2*1)*1 = -1; Φ_0 = (1-2*0)*-1 = -1.
	c := Challenge{0, 1, 0}
	got := Features(c)
	want := []float64{-1, -1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Features(%v) = %v, want %v", c, got, want)
		}
	}
}

func TestFeaturesAllZero(t *testing.T) {
	c := make(Challenge, 8)
	for _, v := range Features(c) {
		if v != 1 {
			t.Fatal("all-zero challenge must give all-ones features")
		}
	}
}

func TestFeaturesSignStructure(t *testing.T) {
	// Property: Φ_i = (1-2c_i) · Φ_{i+1}, and every entry is ±1.
	if err := quick.Check(func(w uint64) bool {
		c := FromWord(w, 32)
		phi := Features(c)
		if phi[32] != 1 {
			return false
		}
		for i := 31; i >= 0; i-- {
			want := (1 - 2*float64(c[i])) * phi[i+1]
			if phi[i] != want || math.Abs(phi[i]) != 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipLastBitFlipsAllFeatures(t *testing.T) {
	// Flipping the final stage bit negates every non-constant feature.
	c := Random(rng.New(1), 16)
	phi := Features(c)
	c2 := c.Clone()
	c2[15] ^= 1
	phi2 := Features(c2)
	for i := 0; i < 16; i++ {
		if phi2[i] != -phi[i] {
			t.Fatalf("feature %d did not flip", i)
		}
	}
	if phi2[16] != 1 {
		t.Fatal("constant feature must stay 1")
	}
}

func TestWordRoundTrip(t *testing.T) {
	if err := quick.Check(func(w uint64) bool {
		c := FromWord(w, 64)
		return c.Word() == w
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestWordRoundTripShort(t *testing.T) {
	if err := quick.Check(func(w uint32) bool {
		c := FromWord(uint64(w), 32)
		return c.Word() == uint64(w)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomChallengeBits(t *testing.T) {
	src := rng.New(2)
	const k, n = 32, 20000
	ones := make([]int, k)
	for i := 0; i < n; i++ {
		c := Random(src, k)
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		for j, b := range c {
			ones[j] += int(b)
		}
	}
	for j, o := range ones {
		frac := float64(o) / n
		if math.Abs(frac-0.5) > 0.02 {
			t.Errorf("bit %d biased: %v", j, frac)
		}
	}
}

func TestRandomBatchDistinct(t *testing.T) {
	src := rng.New(3)
	cs := RandomBatchDistinct(src, 200, 10)
	seen := map[uint64]bool{}
	for _, c := range cs {
		w := c.Word()
		if seen[w] {
			t.Fatal("duplicate challenge in distinct batch")
		}
		seen[w] = true
	}
}

func TestFeatureMatrixRows(t *testing.T) {
	src := rng.New(4)
	cs := RandomBatch(src, 50, 24)
	m := FeatureMatrix(cs)
	if m.Rows != 50 || m.Cols != 25 {
		t.Fatalf("shape %dx%d, want 50x25", m.Rows, m.Cols)
	}
	for i, c := range cs {
		phi := Features(c)
		row := m.Row(i)
		for j := range phi {
			if row[j] != phi[j] {
				t.Fatalf("row %d differs from Features", i)
			}
		}
	}
}

func TestAllEnumeratesExactly(t *testing.T) {
	seen := map[uint64]bool{}
	All(6, func(c Challenge) bool {
		seen[c.Word()] = true
		return true
	})
	if len(seen) != 64 {
		t.Fatalf("enumerated %d challenges, want 64", len(seen))
	}
}

func TestAllEarlyStop(t *testing.T) {
	count := 0
	All(8, func(c Challenge) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop after %d, want 10", count)
	}
}

func TestValidateRejectsBadBit(t *testing.T) {
	c := Challenge{0, 1, 2}
	if err := c.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestStringRendering(t *testing.T) {
	c := Challenge{1, 0, 1, 1}
	if c.String() != "1011" {
		t.Fatalf("String = %q", c.String())
	}
}

func BenchmarkFeatures64(b *testing.B) {
	c := Random(rng.New(1), 64)
	dst := make([]float64, 65)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FeaturesInto(c, dst)
	}
}
