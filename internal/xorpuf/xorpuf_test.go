package xorpuf

import (
	"math"
	"testing"

	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

func testChip(seed uint64, n int) *silicon.Chip {
	return silicon.NewChip(rng.New(seed), silicon.DefaultParams(), n)
}

func TestWidthAndStages(t *testing.T) {
	chip := testChip(1, 6)
	x := FromChip(chip, 4)
	if x.Width() != 4 {
		t.Errorf("Width = %d, want 4", x.Width())
	}
	if x.Stages() != chip.Stages() {
		t.Errorf("Stages = %d, want %d", x.Stages(), chip.Stages())
	}
}

func TestNoiselessResponseIsXOROfMembers(t *testing.T) {
	chip := testChip(2, 5)
	x := FromChip(chip, 5)
	src := rng.New(3)
	for i := 0; i < 500; i++ {
		c := challenge.Random(src, x.Stages())
		var want uint8
		for j := 0; j < 5; j++ {
			if chip.PUF(j).Delay(c, silicon.Nominal) > 0 {
				want ^= 1
			}
		}
		if got := x.NoiselessResponse(c, silicon.Nominal); got != want {
			t.Fatalf("NoiselessResponse = %d, want %d", got, want)
		}
	}
}

func TestResponseProbabilityParityIdentity(t *testing.T) {
	// For width 2: P(xor=1) = p1(1-p2) + p2(1-p1).
	chip := testChip(4, 2)
	x := FromChip(chip, 2)
	src := rng.New(5)
	for i := 0; i < 500; i++ {
		c := challenge.Random(src, x.Stages())
		p1 := chip.PUF(0).ResponseProbability(c, silicon.Nominal)
		p2 := chip.PUF(1).ResponseProbability(c, silicon.Nominal)
		want := p1*(1-p2) + p2*(1-p1)
		if got := x.ResponseProbability(c, silicon.Nominal); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(xor=1) = %v, want %v", got, want)
		}
	}
}

func TestResponseProbabilityMatchesEval(t *testing.T) {
	chip := testChip(6, 3)
	x := FromChip(chip, 3)
	src := rng.New(7)
	noise := rng.New(8)
	// Find a challenge with a genuinely uncertain XOR output.
	var c challenge.Challenge
	for {
		c = challenge.Random(src, x.Stages())
		if p := x.ResponseProbability(c, silicon.Nominal); p > 0.3 && p < 0.7 {
			break
		}
	}
	p := x.ResponseProbability(c, silicon.Nominal)
	const n = 40000
	ones := 0
	for i := 0; i < n; i++ {
		ones += int(x.Eval(noise, c, silicon.Nominal))
	}
	got := float64(ones) / n
	if math.Abs(got-p) > 0.02 {
		t.Errorf("empirical P(xor=1) = %v, want %v", got, p)
	}
}

func TestStabilityDecaysExponentially(t *testing.T) {
	// Fig 3: the stable fraction of an n-input XOR PUF is ≈ (stable
	// fraction of one PUF)ⁿ because members are uncorrelated.
	chip := testChip(9, 10)
	const trials = 4000
	fracs := make([]float64, 11)   // index = width: XOR-level stable fraction
	members := make([]float64, 10) // per-member stable fraction
	for width := 1; width <= 10; width++ {
		x := FromChip(chip, width)
		var sum float64
		src := rng.New(11) // same challenge set at every width
		for i := 0; i < trials; i++ {
			c := challenge.Random(src, x.Stages())
			sum += x.StabilityProbability(c, silicon.Nominal)
		}
		fracs[width] = sum / trials
	}
	for m := 0; m < 10; m++ {
		src := rng.New(11)
		var sum float64
		for i := 0; i < trials; i++ {
			c := challenge.Random(src, chip.Stages())
			sum += chip.PUF(m).StabilityProbability(c, silicon.Nominal, chip.Params().CounterDepth)
		}
		members[m] = sum / trials
		if members[m] < 0.72 || members[m] > 0.88 {
			t.Fatalf("member %d stable fraction %.3f, want ≈0.80", m, members[m])
		}
	}
	// XOR-level stability must track the product of its members' individual
	// stable fractions (independence up to challenge-level correlation).
	prod := 1.0
	for width := 1; width <= 10; width++ {
		prod *= members[width-1]
		if fracs[width] <= 0 {
			t.Fatalf("width %d: zero stable fraction", width)
		}
		ratio := fracs[width] / prod
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("width %d: stable fraction %.4f, want ≈%.4f (Π member fractions)",
				width, fracs[width], prod)
		}
	}
	if fracs[10] < 0.05 || fracs[10] > 0.18 {
		t.Errorf("width 10 stable fraction %.4f, want ≈0.109 (Fig 3)", fracs[10])
	}
}

func TestStabilityProbabilityIsProduct(t *testing.T) {
	chip := testChip(12, 4)
	x := FromChip(chip, 4)
	c := challenge.Random(rng.New(13), x.Stages())
	want := 1.0
	for i := 0; i < 4; i++ {
		want *= chip.PUF(i).StabilityProbability(c, silicon.Nominal, x.CounterDepth())
	}
	if got := x.StabilityProbability(c, silicon.Nominal); math.Abs(got-want) > 1e-15 {
		t.Errorf("stability %v, want product %v", got, want)
	}
}

func TestMeasureSoftStableChallenge(t *testing.T) {
	chip := testChip(14, 4)
	x := FromChip(chip, 4)
	src := rng.New(15)
	meas := rng.New(16)
	crps, _ := x.StableCRPs(src, 20, silicon.Nominal, 0.999999)
	for _, crp := range crps {
		soft := x.MeasureSoft(meas, crp.Challenge, silicon.Nominal, 100000)
		if soft != float64(crp.Response) {
			t.Fatalf("stable CRP measured soft %v, want exactly %d", soft, crp.Response)
		}
	}
}

func TestStableCRPsYieldMatchesStability(t *testing.T) {
	chip := testChip(17, 6)
	x := FromChip(chip, 6)
	src := rng.New(18)
	crps, examined := x.StableCRPs(src, 300, silicon.Nominal, 0.999)
	if len(crps) != 300 {
		t.Fatalf("got %d CRPs, want 300", len(crps))
	}
	yield := float64(len(crps)) / float64(examined)
	want := math.Pow(0.8, 6) // ≈ 0.262
	if yield < want*0.6 || yield > want*1.6 {
		t.Errorf("stable yield %.3f, want ≈%.3f", yield, want)
	}
	for _, crp := range crps {
		if crp.Stability < 0.999 {
			t.Fatal("returned CRP below stability floor")
		}
	}
}

func TestOutputAgreeProbabilityAtLeastMemberStability(t *testing.T) {
	// XOR-level agreement can only exceed the all-members-stable bound
	// (instabilities can cancel), never fall below it for the same window.
	chip := testChip(19, 3)
	x := FromChip(chip, 3)
	src := rng.New(20)
	for i := 0; i < 300; i++ {
		c := challenge.Random(src, x.Stages())
		agree := x.OutputAgreeProbability(c, silicon.Nominal, x.CounterDepth())
		stab := x.StabilityProbability(c, silicon.Nominal)
		if agree < stab-1e-9 {
			t.Fatalf("agree %v < member stability %v", agree, stab)
		}
	}
}

func TestEvalUniformityForWideXOR(t *testing.T) {
	// XOR of many PUFs should produce nearly perfectly uniform responses.
	chip := testChip(21, 10)
	x := FromChip(chip, 10)
	src := rng.New(22)
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		c := challenge.Random(src, x.Stages())
		ones += int(x.NoiselessResponse(c, silicon.Nominal))
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("XOR-10 uniformity %.3f, want ≈0.5", frac)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty member list")
		}
	}()
	New(nil, 1000)
}

func BenchmarkXORStability10(b *testing.B) {
	chip := testChip(23, 10)
	x := FromChip(chip, 10)
	cs := challenge.RandomBatch(rng.New(24), 1024, x.Stages())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.StabilityProbability(cs[i%len(cs)], silicon.Nominal)
	}
}
