// Package xorpuf composes parallel MUX arbiter PUFs into an n-input XOR
// arbiter PUF (paper Fig 1) and provides the exact response/stability
// arithmetic for the composed output.
//
// All n member PUFs see the same challenge; their single-bit responses are
// XOR-ed into the final response.  Because each member's evaluation noise is
// independent, the XOR output's per-evaluation response-1 probability has the
// closed form
//
//	P(xor = 1) = (1 − Π_i (1 − 2·p_i)) / 2,
//
// where p_i is member i's response-1 probability — the parity version of the
// inclusion–exclusion identity.  The XOR output is 100 %-stable over a
// counter window exactly when every member is individually stable, which is
// why the usable-CRP fraction decays like 0.8ⁿ (paper Figs 3 and 12).
package xorpuf

import (
	"fmt"

	"xorpuf/internal/challenge"
	"xorpuf/internal/dist"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// XORPUF is an n-input XOR arbiter PUF over member arbiter PUFs.
type XORPUF struct {
	members []*silicon.ArbiterPUF
	depth   int // counter depth for stability accounting
}

// New composes the given member PUFs into an XOR PUF.  counterDepth is the
// measurement window used for stability accounting (the chips' 100,000).
func New(members []*silicon.ArbiterPUF, counterDepth int) *XORPUF {
	if len(members) == 0 {
		panic("xorpuf: need at least one member PUF")
	}
	if counterDepth <= 0 {
		panic("xorpuf: counter depth must be positive")
	}
	stages := members[0].Stages()
	for i, m := range members {
		if m.Stages() != stages {
			panic(fmt.Sprintf("xorpuf: member %d has %d stages, want %d", i, m.Stages(), stages))
		}
	}
	return &XORPUF{members: members, depth: counterDepth}
}

// FromChip composes the first n PUFs of a fabricated chip, using the chip's
// counter depth.
func FromChip(chip *silicon.Chip, n int) *XORPUF {
	if n <= 0 || n > chip.NumPUFs() {
		panic(fmt.Sprintf("xorpuf: width %d out of range [1,%d]", n, chip.NumPUFs()))
	}
	members := make([]*silicon.ArbiterPUF, n)
	for i := range members {
		members[i] = chip.PUF(i)
	}
	return New(members, chip.Params().CounterDepth)
}

// Width returns the number of member PUFs (the paper's n).
func (x *XORPUF) Width() int { return len(x.members) }

// Stages returns the number of MUX stages per member.
func (x *XORPUF) Stages() int { return x.members[0].Stages() }

// Member returns member PUF i (oracle access for experiments/tests).
func (x *XORPUF) Member(i int) *silicon.ArbiterPUF { return x.members[i] }

// CounterDepth returns the stability-accounting window.
func (x *XORPUF) CounterDepth() int { return x.depth }

// Eval performs one noisy evaluation: each member evaluates with independent
// noise from src and the bits are XOR-ed.
func (x *XORPUF) Eval(src *rng.Source, c challenge.Challenge, cond silicon.Condition) uint8 {
	var out uint8
	for _, m := range x.members {
		out ^= m.Eval(src, c, cond)
	}
	return out
}

// NoiselessResponse returns the XOR of the members' sign responses — the
// majority outcome for a stable challenge.
func (x *XORPUF) NoiselessResponse(c challenge.Challenge, cond silicon.Condition) uint8 {
	var out uint8
	for _, m := range x.members {
		if m.Delay(c, cond) > 0 {
			out ^= 1
		}
	}
	return out
}

// ResponseProbability returns the exact single-evaluation probability that
// the XOR output is 1.
func (x *XORPUF) ResponseProbability(c challenge.Challenge, cond silicon.Condition) float64 {
	prod := 1.0
	for _, m := range x.members {
		prod *= 1 - 2*m.ResponseProbability(c, cond)
	}
	return (1 - prod) / 2
}

// StabilityProbability returns the probability that a counter window of the
// configured depth reads the XOR output as 100 %-stable, i.e. that every
// member is individually stable over the window.
func (x *XORPUF) StabilityProbability(c challenge.Challenge, cond silicon.Condition) float64 {
	prob := 1.0
	for _, m := range x.members {
		prob *= m.StabilityProbability(c, cond, x.depth)
	}
	return prob
}

// AllMembersStable reports whether every member's response probability is
// saturated enough that the configured counter window would read 100 %
// stable with probability ≥ minProb.
func (x *XORPUF) AllMembersStable(c challenge.Challenge, cond silicon.Condition, minProb float64) bool {
	return x.StabilityProbability(c, cond) >= minProb
}

// MeasureSoft measures the XOR output's soft response over trials combined
// evaluations using the exact Binomial counter shortcut.
func (x *XORPUF) MeasureSoft(src *rng.Source, c challenge.Challenge, cond silicon.Condition, trials int) float64 {
	if trials <= 0 {
		panic("xorpuf: MeasureSoft with non-positive trials")
	}
	p := x.ResponseProbability(c, cond)
	return float64(src.Binomial(trials, p)) / float64(trials)
}

// OutputAgreeProbability returns the probability that `trials` repeated XOR
// evaluations all agree.  Unlike StabilityProbability this also counts the
// measure-zero-ish cases where individual members are unstable but their
// instabilities cancel in the XOR.
func (x *XORPUF) OutputAgreeProbability(c challenge.Challenge, cond silicon.Condition, trials int) float64 {
	return dist.AllAgreeProbability(trials, x.ResponseProbability(c, cond))
}

// CRP is one challenge–response pair of the XOR PUF, annotated with the
// exact stability probability it had when generated.
type CRP struct {
	Challenge challenge.Challenge
	Response  uint8
	Stability float64
}

// StableCRPs draws random challenges from challengeSrc and returns the first
// `count` whose XOR output is 100 %-stable (stability probability ≥ minStab)
// together with the noiseless response — the CRP population the paper uses
// for both attack training and authentication.  It also returns the total
// number of challenges examined, so callers can report yield.
func (x *XORPUF) StableCRPs(challengeSrc *rng.Source, count int, cond silicon.Condition, minStab float64) (crps []CRP, examined int) {
	crps = make([]CRP, 0, count)
	for len(crps) < count {
		c := challenge.Random(challengeSrc, x.Stages())
		examined++
		st := x.StabilityProbability(c, cond)
		if st >= minStab {
			crps = append(crps, CRP{
				Challenge: c,
				Response:  x.NoiselessResponse(c, cond),
				Stability: st,
			})
		}
	}
	return crps, examined
}
