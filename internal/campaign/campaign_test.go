package campaign

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"xorpuf/internal/silicon"
)

func testConfig() Config {
	return Config{
		Seed:       1,
		Params:     silicon.DefaultParams(),
		Chips:      2,
		PUFsEach:   3,
		Challenges: 50,
		Conditions: []silicon.Condition{silicon.Nominal},
	}
}

func TestRunProducesExpectedRowCount(t *testing.T) {
	var buf bytes.Buffer
	sum, err := Run(testConfig(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 3 * 50 // chips × pufs × challenges × 1 condition
	if sum.Records != want {
		t.Errorf("records %d, want %d", sum.Records, want)
	}
	if sum.Evaluations != int64(want)*100000 {
		t.Errorf("evaluations %d, want %d", sum.Evaluations, int64(want)*100000)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != want+1 { // +1 header
		t.Errorf("CSV lines %d, want %d", lines, want+1)
	}
}

func TestRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.Conditions = []silicon.Condition{silicon.Nominal, {VDD: 0.8, TempC: 60}}
	var buf bytes.Buffer
	sum, err := Run(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != sum.Records {
		t.Fatalf("parsed %d records, want %d", len(recs), sum.Records)
	}
	// Records must be reproducible: re-running the same campaign on the
	// same seed yields identical soft responses.
	var buf2 bytes.Buffer
	if _, err := Run(cfg, &buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() == "" {
		t.Fatal("second run empty")
	}
	recs2, err := ReadAll(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if recs[i].Soft != recs2[i].Soft || recs[i].Challenge.Word() != recs2[i].Challenge.Word() {
			t.Fatalf("record %d differs between identical campaigns", i)
		}
	}
	// Sanity on fields.
	for _, r := range recs {
		if r.Chip < 0 || r.Chip >= cfg.Chips || r.PUF < 0 || r.PUF >= cfg.PUFsEach {
			t.Fatalf("record indices out of range: %+v", r)
		}
		if len(r.Challenge) != cfg.Params.Stages {
			t.Fatalf("challenge length %d", len(r.Challenge))
		}
	}
}

func TestStableFracNearCalibration(t *testing.T) {
	cfg := testConfig()
	cfg.Challenges = 1500
	cfg.PUFsEach = 1
	cfg.Chips = 4
	var buf bytes.Buffer
	sum, err := Run(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.StableFrac-0.80) > 0.05 {
		t.Errorf("campaign stable fraction %.3f, want ≈0.80", sum.StableFrac)
	}
}

func TestSoftPrecisionExact(t *testing.T) {
	// Counter values are multiples of 1/depth; the CSV must preserve them
	// exactly through the round trip.
	cfg := testConfig()
	cfg.Challenges = 300
	var buf bytes.Buffer
	if _, err := Run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	depth := float64(cfg.Params.CounterDepth)
	for i, r := range recs {
		count := r.Soft * depth
		if math.Abs(count-math.Round(count)) > 1e-6 {
			t.Fatalf("record %d: soft %v is not a counter multiple", i, r.Soft)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.Chips = 0
	if _, err := Run(bad, &bytes.Buffer{}); err == nil {
		t.Error("zero chips should fail")
	}
	bad = testConfig()
	bad.Conditions = nil
	if _, err := Run(bad, &bytes.Buffer{}); err == nil {
		t.Error("no conditions should fail")
	}
	bad = testConfig()
	bad.Params.Stages = 0
	if _, err := Run(bad, &bytes.Buffer{}); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestReadAllRejectsGarbage(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadAll(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("wrong header should fail")
	}
	header := "chip,puf,vdd,temp_c,challenge,soft\n"
	if _, err := ReadAll(strings.NewReader(header + "x,0,0.9,25,0101,0.5\n")); err == nil {
		t.Error("bad chip index should fail")
	}
	if _, err := ReadAll(strings.NewReader(header + "0,0,0.9,25,01x1,0.5\n")); err == nil {
		t.Error("bad challenge should fail")
	}
	if _, err := ReadAll(strings.NewReader(header + "0,0,0.9,25,0101,1.5\n")); err == nil {
		t.Error("out-of-range soft should fail")
	}
}
