// Package campaign orchestrates measurement campaigns over a chip lot —
// the simulated equivalent of the paper's PXI test infrastructure that
// produced the "1 trillion CRP" dataset (10 chips × 1 M challenges ×
// 100,000 evaluations × V/T corners) — and streams the results to a CSV
// dataset for external analysis.
//
// CSV schema (header included):
//
//	chip,puf,vdd,temp_c,challenge,soft
//
// where challenge is a bit string (stage 0 first) and soft is the counter-
// averaged soft response in [0,1] with enough digits to be exact for the
// configured counter depth.
package campaign

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"xorpuf/internal/challenge"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// Config describes a measurement campaign.
type Config struct {
	Seed       uint64
	Params     silicon.Params
	Chips      int
	PUFsEach   int
	Challenges int // per chip; the same challenges are applied to every PUF
	Conditions []silicon.Condition
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Chips <= 0:
		return errors.New("campaign: need at least one chip")
	case c.PUFsEach <= 0:
		return errors.New("campaign: need at least one PUF per chip")
	case c.Challenges <= 0:
		return errors.New("campaign: need at least one challenge")
	case len(c.Conditions) == 0:
		return errors.New("campaign: need at least one condition")
	}
	return c.Params.Validate()
}

// Record is one measurement row.
type Record struct {
	Chip, PUF int
	Condition silicon.Condition
	Challenge challenge.Challenge
	Soft      float64
}

// Summary aggregates a finished campaign.
type Summary struct {
	Records      int
	StableCount  int // rows with soft exactly 0 or 1
	Evaluations  int64
	StableFrac   float64
	ChipsCovered int
}

// Run executes the campaign and writes the CSV dataset to w.  It returns
// the summary.  Measurement order is chip-major, then challenge, then PUF,
// then condition — the order a real tester would sweep.
func Run(cfg Config, w io.Writer) (Summary, error) {
	if err := cfg.Validate(); err != nil {
		return Summary{}, err
	}
	root := rng.New(cfg.Seed)
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"chip", "puf", "vdd", "temp_c", "challenge", "soft"}); err != nil {
		return Summary{}, err
	}
	var sum Summary
	depth := float64(cfg.Params.CounterDepth)
	for chipIdx := 0; chipIdx < cfg.Chips; chipIdx++ {
		chip := silicon.NewChip(root.Fork("chip", chipIdx), cfg.Params, cfg.PUFsEach)
		cs := root.Fork("challenges", chipIdx)
		sum.ChipsCovered++
		for i := 0; i < cfg.Challenges; i++ {
			c := challenge.Random(cs, cfg.Params.Stages)
			bits := c.String()
			for puf := 0; puf < cfg.PUFsEach; puf++ {
				for _, cond := range cfg.Conditions {
					soft, err := chip.SoftResponse(puf, c, cond)
					if err != nil {
						return sum, fmt.Errorf("campaign: chip %d puf %d: %w", chipIdx, puf, err)
					}
					sum.Records++
					sum.Evaluations += int64(cfg.Params.CounterDepth)
					if soft == 0 || soft == 1 {
						sum.StableCount++
					}
					row := []string{
						strconv.Itoa(chipIdx),
						strconv.Itoa(puf),
						strconv.FormatFloat(cond.VDD, 'g', -1, 64),
						strconv.FormatFloat(cond.TempC, 'g', -1, 64),
						bits,
						formatSoft(soft, depth),
					}
					if err := cw.Write(row); err != nil {
						return sum, err
					}
				}
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return sum, err
	}
	if err := bw.Flush(); err != nil {
		return sum, err
	}
	if sum.Records > 0 {
		sum.StableFrac = float64(sum.StableCount) / float64(sum.Records)
	}
	return sum, nil
}

// formatSoft renders the soft response exactly: counter values are integer
// multiples of 1/depth, so print the count over the depth.
func formatSoft(soft, depth float64) string {
	return strconv.FormatFloat(soft, 'f', digitsFor(depth), 64)
}

func digitsFor(depth float64) int {
	d := 0
	for v := 1.0; v < depth; v *= 10 {
		d++
	}
	return d
}

// ReadAll parses a campaign CSV back into records.
func ReadAll(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("campaign: reading header: %w", err)
	}
	if len(header) != 6 || header[0] != "chip" || header[5] != "soft" {
		return nil, fmt.Errorf("campaign: unexpected header %v", header)
	}
	var out []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		rec, err := parseRecord(row)
		if err != nil {
			return nil, fmt.Errorf("campaign: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

func parseRecord(row []string) (Record, error) {
	var rec Record
	var err error
	if rec.Chip, err = strconv.Atoi(row[0]); err != nil {
		return rec, fmt.Errorf("chip: %w", err)
	}
	if rec.PUF, err = strconv.Atoi(row[1]); err != nil {
		return rec, fmt.Errorf("puf: %w", err)
	}
	if rec.Condition.VDD, err = strconv.ParseFloat(row[2], 64); err != nil {
		return rec, fmt.Errorf("vdd: %w", err)
	}
	if rec.Condition.TempC, err = strconv.ParseFloat(row[3], 64); err != nil {
		return rec, fmt.Errorf("temp: %w", err)
	}
	rec.Challenge = make(challenge.Challenge, len(row[4]))
	for i := 0; i < len(row[4]); i++ {
		switch row[4][i] {
		case '0':
			rec.Challenge[i] = 0
		case '1':
			rec.Challenge[i] = 1
		default:
			return rec, fmt.Errorf("challenge: invalid bit %q", row[4][i])
		}
	}
	if rec.Soft, err = strconv.ParseFloat(row[5], 64); err != nil {
		return rec, fmt.Errorf("soft: %w", err)
	}
	if rec.Soft < 0 || rec.Soft > 1 {
		return rec, fmt.Errorf("soft %v outside [0,1]", rec.Soft)
	}
	return rec, nil
}
