package keygen

import (
	"errors"
	"testing"

	"xorpuf/internal/core"
	"xorpuf/internal/ecc"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

func enrolledSelector(t *testing.T, chip *silicon.Chip, conditions []silicon.Condition) *core.Selector {
	t.Helper()
	cfg := core.DefaultEnrollConfig()
	cfg.TrainingSize = 2000
	cfg.ValidationSize = 6000
	cfg.Conditions = conditions
	enr, err := core.EnrollChip(chip, rng.New(100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewSelector(enr.Model, rng.New(101))
}

func TestFuzzyExtractorRoundTrip(t *testing.T) {
	code, err := ecc.NewBCH(7, 6)
	if err != nil {
		t.Fatal(err)
	}
	fe := ecc.NewFuzzyExtractor(code)
	src := rng.New(1)
	w := make([]uint8, code.N)
	for i := range w {
		w[i] = src.Bit()
	}
	key, helper, err := fe.Generate(src, w)
	if err != nil {
		t.Fatal(err)
	}
	// Exact reproduction.
	key2, fixed, err := fe.Reproduce(w, helper)
	if err != nil || fixed != 0 || key2 != key {
		t.Fatalf("exact reproduce: err=%v fixed=%d match=%v", err, fixed, key2 == key)
	}
	// Within-budget noise.
	wNoisy := append([]uint8(nil), w...)
	for _, pos := range src.Perm(code.N)[:code.T] {
		wNoisy[pos] ^= 1
	}
	key3, fixed, err := fe.Reproduce(wNoisy, helper)
	if err != nil || key3 != key {
		t.Fatalf("noisy reproduce: err=%v match=%v", err, key3 == key)
	}
	if fixed != code.T {
		t.Errorf("fixed %d, want %d", fixed, code.T)
	}
}

func TestFuzzyExtractorFailsBeyondBudget(t *testing.T) {
	code, err := ecc.NewBCH(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	fe := ecc.NewFuzzyExtractor(code)
	src := rng.New(2)
	w := make([]uint8, code.N)
	for i := range w {
		w[i] = src.Bit()
	}
	key, helper, err := fe.Generate(src, w)
	if err != nil {
		t.Fatal(err)
	}
	sawFailure := false
	for trial := 0; trial < 50 && !sawFailure; trial++ {
		wBad := append([]uint8(nil), w...)
		for _, pos := range src.Perm(code.N)[:6*code.T] {
			wBad[pos] ^= 1
		}
		key2, _, err := fe.Reproduce(wBad, helper)
		if errors.Is(err, ecc.ErrReproduceFailed) || (err == nil && key2 != key) {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Error("heavy noise never failed or changed the key")
	}
}

func TestHelperDataDoesNotDetermineKey(t *testing.T) {
	// Two devices enrolling with the same code must get different keys,
	// and an attacker holding only the helper cannot reproduce with
	// all-zero responses.
	code, err := ecc.NewBCH(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	fe := ecc.NewFuzzyExtractor(code)
	src := rng.New(3)
	w1 := make([]uint8, code.N)
	w2 := make([]uint8, code.N)
	for i := range w1 {
		w1[i] = src.Bit()
		w2[i] = src.Bit()
	}
	k1, h1, err := fe.Generate(src, w1)
	if err != nil {
		t.Fatal(err)
	}
	k2, _, err := fe.Generate(src, w2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("independent devices derived the same key")
	}
	zero := make([]uint8, code.N)
	kAttack, _, err := fe.Reproduce(zero, h1)
	if err == nil && kAttack == k1 {
		t.Error("all-zero guess reproduced the key")
	}
}

func TestKeyFromXORPUFAcrossCorners(t *testing.T) {
	// The paper's payoff: with model-selected stable challenges, the key
	// reproduces at every V/T corner with (near-)zero corrections even
	// from one-shot reads of a 4-XOR PUF.
	chip := silicon.NewChip(rng.New(4), silicon.DefaultParams(), 4)
	sel := enrolledSelector(t, chip, silicon.Corners())
	cfg := Config{M: 7, T: 6, Selector: sel}
	enr, enrolledKey, err := Enroll(chip, chip.Stages(), rng.New(5), silicon.Nominal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cond := range silicon.Corners() {
		key, fixed, err := Reproduce(chip, enr, cond, cfg)
		if err != nil {
			t.Fatalf("at %v: %v", cond, err)
		}
		if key != enrolledKey {
			t.Fatalf("at %v: key mismatch", cond)
		}
		if fixed > 2 {
			t.Errorf("at %v: needed %d corrections; selected challenges should be stable", cond, fixed)
		}
	}
}

func TestRandomChallengesNeedTheCode(t *testing.T) {
	// Baseline: with random (unselected) challenges on a 4-XOR PUF, the
	// raw error rate is high enough that reproduction consumes real
	// error-correction budget — and a too-weak code fails outright.
	chip := silicon.NewChip(rng.New(6), silicon.DefaultParams(), 4)
	strong := Config{M: 7, T: 15}
	enr, enrolledKey, err := Enroll(chip, chip.Stages(), rng.New(7), silicon.Nominal, strong)
	if err != nil {
		t.Fatal(err)
	}
	corner := silicon.Condition{VDD: 0.8, TempC: 60}
	_, fixedStrong, errStrong := Reproduce(chip, enr, corner, strong)
	// One-shot reads of unselected 4-XOR CRPs flip on ~15–25 % of bits at
	// the worst corner, so either the code burns real correction budget
	// or it is overwhelmed outright — both demonstrate the cost of
	// skipping challenge selection.
	if errStrong == nil && fixedStrong == 0 {
		t.Error("random challenges reproduced with zero corrections; expected real noise")
	}
	// Reproducing through a different (too weak) code must not yield the
	// enrolled key: the near-perfect t=1 code miscorrects silently, and
	// the key-check commitment turns that into a hard error.
	weak := Config{M: 7, T: 1}
	if keyWeak, _, err := Reproduce(chip, enr, corner, weak); err == nil && keyWeak == enrolledKey {
		t.Error("weak-code reproduce with mismatched enrollment returned the enrolled key")
	}
	// At the nominal condition the raw noise is lower; a strong code plus
	// majority-free one-shot reads should usually survive there.
	if _, _, err := Reproduce(chip, enr, silicon.Nominal, strong); err != nil {
		t.Logf("note: even nominal one-shot reproduction failed (%v) — raw 4-XOR noise is that high", err)
	}
}

func TestSelectedVsRandomCorrectionBudget(t *testing.T) {
	// Direct comparison on one chip: corrections needed at the worst
	// corner with selected vs random challenges.
	chip := silicon.NewChip(rng.New(8), silicon.DefaultParams(), 4)
	sel := enrolledSelector(t, chip, silicon.Corners())
	corner := silicon.Condition{VDD: 0.8, TempC: 60}

	selCfg := Config{M: 7, T: 10, Selector: sel}
	selEnr, _, err := Enroll(chip, chip.Stages(), rng.New(9), silicon.Nominal, selCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, fixedSel, err := Reproduce(chip, selEnr, corner, selCfg)
	if err != nil {
		t.Fatal(err)
	}

	rndCfg := Config{M: 7, T: 10}
	rndEnr, _, err := Enroll(chip, chip.Stages(), rng.New(10), silicon.Nominal, rndCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, fixedRnd, errRnd := Reproduce(chip, rndEnr, corner, rndCfg)
	// Random challenges may even exceed the t=10 budget; both outcomes
	// support the claim.
	if errRnd == nil && fixedRnd <= fixedSel {
		t.Errorf("random challenges needed %d corrections vs selected %d; expected more",
			fixedRnd, fixedSel)
	}
	if fixedSel > 1 {
		t.Errorf("selected challenges needed %d corrections, want ≤1", fixedSel)
	}
}

func TestEnrollRejectsBadCode(t *testing.T) {
	chip := silicon.NewChip(rng.New(11), silicon.DefaultParams(), 2)
	for _, cfg := range []Config{{M: 2, T: 1}, {M: 4, T: 9}, {M: 7, T: 0}, {M: 15, T: 3}} {
		_, _, err := Enroll(chip, chip.Stages(), rng.New(12), silicon.Nominal, cfg)
		var pe *ecc.ParamError
		if !errors.As(err, &pe) {
			t.Errorf("Config{M:%d,T:%d}: want *ecc.ParamError, got %v", cfg.M, cfg.T, err)
		}
		if err := cfg.Validate(); !errors.As(err, &pe) {
			t.Errorf("Config{M:%d,T:%d}.Validate(): want *ecc.ParamError, got %v", cfg.M, cfg.T, err)
		}
		if _, _, err := Reproduce(chip, &Enrollment{}, silicon.Nominal, cfg); !errors.As(err, &pe) {
			t.Errorf("Reproduce Config{M:%d,T:%d}: want *ecc.ParamError, got %v", cfg.M, cfg.T, err)
		}
	}
}

func TestKeyCheckFailsClosed(t *testing.T) {
	// Tampered helper data makes the decoder converge on a wrong codeword
	// for some patterns; whatever it converges on, Reproduce must never
	// return success with a key that differs from enrollment.
	chip := silicon.NewChip(rng.New(14), silicon.DefaultParams(), 4)
	sel := enrolledSelector(t, chip, silicon.Corners())
	cfg := Config{M: 7, T: 4, Selector: sel}
	enr, enrolledKey, err := Enroll(chip, chip.Stages(), rng.New(15), silicon.Nominal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a run of helper bits well past the correction budget.
	for i := 0; i < 6*cfg.T; i++ {
		enr.Helper[i*3%len(enr.Helper)] ^= 1
	}
	key, _, err := Reproduce(chip, enr, silicon.Nominal, cfg)
	if err == nil {
		t.Fatal("tampered helper reproduced without error")
	}
	if key == enrolledKey {
		t.Fatal("tampered helper still yielded the enrolled key")
	}
	if key != ([32]byte{}) {
		t.Fatal("failed Reproduce leaked a non-zero key")
	}
}

func TestZeroizeKey(t *testing.T) {
	key := [32]byte{1, 2, 3}
	ZeroizeKey(&key)
	if key != ([32]byte{}) {
		t.Fatal("ZeroizeKey left material behind")
	}
}
