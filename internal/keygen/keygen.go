// Package keygen derives device-unique cryptographic keys from XOR arbiter
// PUF responses — the second canonical PUF application next to
// authentication, and the one where the paper's stable-challenge selection
// pays off most directly: responses that never flip need little or no error
// correction, so the key rate rises and the helper-data leakage falls.
//
// Enrollment (fuses intact): pick N challenges (either at random or via the
// model-based selector), read the XOR responses, and bind them to a random
// BCH codeword with the code-offset fuzzy extractor.  The challenge list and
// helper string are public; the key is never stored.
//
// Reproduction (in the field, any V/T corner): re-read the same challenges
// with single-shot XOR evaluations and run the fuzzy extractor's Reproduce.
package keygen

import (
	"errors"
	"fmt"

	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/ecc"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// Enrollment is the public data needed to reproduce a key (plus the key
// itself, returned once at enrollment and never persisted).
type Enrollment struct {
	Challenges []challenge.Challenge
	Helper     []uint8
	Key        [32]byte
}

// Config selects the code strength and challenge policy.
type Config struct {
	// M and T parameterize the BCH(2^M−1, ·, T) code.
	M, T int
	// Selector, when non-nil, supplies model-selected stable challenges;
	// when nil, challenges are drawn uniformly (the baseline).
	Selector *core.Selector
}

// Enroll reads the chip and produces an enrollment.  src drives challenge
// generation (when no selector is given) and the codeword choice.
func Enroll(dev core.Device, stages int, src *rng.Source, cond silicon.Condition, cfg Config) (*Enrollment, error) {
	code, err := ecc.NewBCH(cfg.M, cfg.T)
	if err != nil {
		return nil, err
	}
	fe := ecc.NewFuzzyExtractor(code)
	var cs []challenge.Challenge
	if cfg.Selector != nil {
		sel, _, err := cfg.Selector.Next(code.N, 0)
		if err != nil {
			return nil, fmt.Errorf("keygen: selecting challenges: %w", err)
		}
		cs = sel
	} else {
		cs = challenge.RandomBatch(src.Split("challenges"), code.N, stages)
	}
	w := make([]uint8, code.N)
	for i, c := range cs {
		w[i] = dev.ReadXOR(c, cond)
	}
	key, helper, err := fe.Generate(src.Split("codeword"), w)
	if err != nil {
		return nil, err
	}
	return &Enrollment{Challenges: cs, Helper: helper, Key: key}, nil
}

// ErrKeyMismatch is returned when reproduction yields a different key than
// enrollment (only detectable here because tests hold both; real devices
// would detect it via a stored key hash).
var ErrKeyMismatch = errors.New("keygen: reproduced key differs")

// Reproduce re-derives the key on the device.  It returns the key and the
// number of response bits the code had to correct.
func Reproduce(dev core.Device, enr *Enrollment, cond silicon.Condition, cfg Config) ([32]byte, int, error) {
	code, err := ecc.NewBCH(cfg.M, cfg.T)
	if err != nil {
		return [32]byte{}, 0, err
	}
	if len(enr.Challenges) != code.N || len(enr.Helper) != code.N {
		return [32]byte{}, 0, fmt.Errorf("keygen: enrollment sized for a different code")
	}
	fe := ecc.NewFuzzyExtractor(code)
	w := make([]uint8, code.N)
	for i, c := range enr.Challenges {
		w[i] = dev.ReadXOR(c, cond)
	}
	return reproduceFrom(fe, w, enr.Helper)
}

func reproduceFrom(fe *ecc.FuzzyExtractor, w, helper []uint8) ([32]byte, int, error) {
	key, fixed, err := fe.Reproduce(w, helper)
	if err != nil {
		return [32]byte{}, fixed, err
	}
	return key, fixed, nil
}
