// Package keygen derives device-unique cryptographic keys from XOR arbiter
// PUF responses — the second canonical PUF application next to
// authentication, and the one where the paper's stable-challenge selection
// pays off most directly: responses that never flip need little or no error
// correction, so the key rate rises and the helper-data leakage falls.
//
// Enrollment (fuses intact): pick N challenges (either at random or via the
// model-based selector), read the XOR responses, and bind them to a random
// BCH codeword with the code-offset fuzzy extractor.  The challenge list,
// helper string, and key-check commitment are public; the key itself is
// returned exactly once and never stored in the enrollment record.
//
// Reproduction (in the field, any V/T corner): re-read the same challenges
// with single-shot XOR evaluations, run the fuzzy extractor's Reproduce, and
// verify the result against the enrollment's key-check commitment — a
// bounded-distance BCH decode can miscorrect silently past its budget, and
// the commitment turns that into a hard ErrKeyMismatch instead of a wrong
// key reaching the caller.
package keygen

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/ecc"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// Enrollment is the public data needed to reproduce a key.  It deliberately
// does not hold the key: Enroll returns the key once, callers hand it off
// (or wrap it into a session) and then ZeroizeKey their copy.
type Enrollment struct {
	Challenges []challenge.Challenge
	Helper     []uint8
	// KeyCheck commits to the derived key (a domain-separated hash) so
	// reproduction fails closed when the decoder silently miscorrects.  It
	// is one-way: publishing it reveals nothing usable about the key.
	KeyCheck [32]byte
}

// Config selects the code strength and challenge policy.
type Config struct {
	// M and T parameterize the BCH(2^M−1, ·, T) code.
	M, T int
	// Selector, when non-nil, supplies model-selected stable challenges;
	// when nil, challenges are drawn uniformly (the baseline).
	Selector *core.Selector
}

// Validate checks M and T against the BCH code bounds, returning the typed
// *ecc.ParamError on violation — operator- or wire-supplied configurations
// fail here with structure instead of deep inside code construction.
func (c Config) Validate() error { return ecc.CheckParams(c.M, c.T) }

// keyCheck commits to a derived key.
func keyCheck(key [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("xorpuf keygen check"))
	h.Write(key[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// ZeroizeKey clears a key in place after handoff.
func ZeroizeKey(key *[32]byte) {
	for i := range key {
		key[i] = 0
	}
}

// Enroll reads the chip and produces an enrollment plus the derived key.
// The key is returned exactly once and is absent from the Enrollment; src
// drives challenge generation (when no selector is given) and the codeword
// choice.
func Enroll(dev core.Device, stages int, src *rng.Source, cond silicon.Condition, cfg Config) (*Enrollment, [32]byte, error) {
	var key [32]byte
	if err := cfg.Validate(); err != nil {
		return nil, key, err
	}
	code, err := ecc.NewBCH(cfg.M, cfg.T)
	if err != nil {
		return nil, key, err
	}
	fe := ecc.NewFuzzyExtractor(code)
	var cs []challenge.Challenge
	if cfg.Selector != nil {
		sel, _, err := cfg.Selector.Next(code.N, 0)
		if err != nil {
			return nil, key, fmt.Errorf("keygen: selecting challenges: %w", err)
		}
		cs = sel
	} else {
		cs = challenge.RandomBatch(src.Split("challenges"), code.N, stages)
	}
	w := make([]uint8, code.N)
	for i, c := range cs {
		w[i] = dev.ReadXOR(c, cond)
	}
	key, helper, err := fe.Generate(src.Split("codeword"), w)
	if err != nil {
		return nil, key, err
	}
	return &Enrollment{Challenges: cs, Helper: helper, KeyCheck: keyCheck(key)}, key, nil
}

// ErrKeyMismatch is returned when the reproduced key fails the enrollment's
// key-check commitment — the decoder converged, but on the wrong codeword.
var ErrKeyMismatch = errors.New("keygen: reproduced key failed the enrollment key check")

// Reproduce re-derives the key on the device and verifies it against the
// enrollment commitment.  It returns the key and the number of response
// bits the code had to correct.
func Reproduce(dev core.Device, enr *Enrollment, cond silicon.Condition, cfg Config) ([32]byte, int, error) {
	if err := cfg.Validate(); err != nil {
		return [32]byte{}, 0, err
	}
	code, err := ecc.NewBCH(cfg.M, cfg.T)
	if err != nil {
		return [32]byte{}, 0, err
	}
	if len(enr.Challenges) != code.N || len(enr.Helper) != code.N {
		return [32]byte{}, 0, fmt.Errorf("keygen: enrollment sized for a different code")
	}
	fe := ecc.NewFuzzyExtractor(code)
	w := make([]uint8, code.N)
	for i, c := range enr.Challenges {
		w[i] = dev.ReadXOR(c, cond)
	}
	key, fixed, err := fe.Reproduce(w, enr.Helper)
	if err != nil {
		return [32]byte{}, fixed, err
	}
	if keyCheck(key) != enr.KeyCheck {
		ZeroizeKey(&key)
		return [32]byte{}, fixed, ErrKeyMismatch
	}
	return key, fixed, nil
}
