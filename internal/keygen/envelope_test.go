package keygen

import (
	"errors"
	"testing"

	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/ecc"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// modelDevice answers challenges deterministically from an enrolled model,
// which makes error injection exact: flipping k recorded bits produces a
// read vector at Hamming distance exactly k from the enrollment reads.
type modelDevice struct {
	model *core.ChipModel
	flip  map[uint64]bool
}

func (d modelDevice) ReadXOR(c challenge.Challenge, _ silicon.Condition) uint8 {
	bit, _ := d.model.PredictXOR(c)
	if d.flip[c.Word()] {
		bit ^= 1
	}
	return bit
}

// TestReproduceAcrossEnvelopeProperty is the reliability property the paper's
// challenge selection promises: a key enrolled at nominal from model-selected
// stable challenges reproduces at every corner of the full operating envelope
// (0.8–1.0 V × 0–60 °C) within the configured correction budget T — and the
// extractor fails closed the moment the error pattern goes one bit past T.
func TestReproduceAcrossEnvelopeProperty(t *testing.T) {
	chip := silicon.NewChip(rng.New(40), silicon.DefaultParams(), 4)
	sel := enrolledSelector(t, chip, silicon.Corners())

	for _, cfg := range []Config{
		{M: 7, T: 4, Selector: sel},
		{M: 7, T: 10, Selector: sel},
	} {
		enr, enrolledKey, err := Enroll(chip, chip.Stages(), rng.New(41), silicon.Nominal, cfg)
		if err != nil {
			t.Fatalf("T=%d: %v", cfg.T, err)
		}

		// Part 1: single-shot reproduction succeeds at every envelope
		// corner, spending no more than T corrections.
		for _, cond := range silicon.Corners() {
			if err := cond.Validate(); err != nil {
				t.Fatalf("corner %v outside the paper's envelope: %v", cond, err)
			}
			key, fixed, err := Reproduce(chip, enr, cond, cfg)
			if err != nil {
				t.Fatalf("T=%d at %v: %v", cfg.T, cond, err)
			}
			if key != enrolledKey {
				t.Fatalf("T=%d at %v: reproduced a different key", cfg.T, cond)
			}
			if fixed > cfg.T {
				t.Fatalf("T=%d at %v: decoder claims %d corrections past its budget", cfg.T, cond, fixed)
			}
		}

		// Part 2: with exact error injection against a deterministic
		// device, every error weight up to T recovers the key and weight
		// T+1 fails closed — an error, never a silently wrong key.
		detCfg := cfg
		detCfg.Selector = nil // challenges come from the enrollment below
		src := rng.New(42)
		enrCfg := core.DefaultEnrollConfig()
		enrCfg.TrainingSize = 2000
		enrCfg.ValidationSize = 5000
		chipEnr, err := core.EnrollChip(chip, rng.New(43), enrCfg)
		if err != nil {
			t.Fatal(err)
		}
		clean := modelDevice{model: chipEnr.Model}
		detEnr, detKey, err := Enroll(clean, chip.Stages(), src, silicon.Nominal, detCfg)
		if err != nil {
			t.Fatalf("T=%d deterministic enroll: %v", cfg.T, err)
		}
		for weight := 0; weight <= cfg.T+1; weight++ {
			noisy := modelDevice{model: chipEnr.Model, flip: map[uint64]bool{}}
			for _, c := range detEnr.Challenges[:weight] {
				noisy.flip[c.Word()] = true
			}
			key, fixed, err := Reproduce(noisy, detEnr, silicon.Nominal, detCfg)
			if weight <= cfg.T {
				if err != nil {
					t.Fatalf("T=%d weight=%d: %v", cfg.T, weight, err)
				}
				if key != detKey {
					t.Fatalf("T=%d weight=%d: wrong key", cfg.T, weight)
				}
				if fixed != weight {
					t.Fatalf("T=%d weight=%d: decoder fixed %d", cfg.T, weight, fixed)
				}
				continue
			}
			// One bit past the budget: fail closed.
			if err == nil {
				t.Fatalf("T=%d weight=%d: reproduction succeeded past the budget", cfg.T, weight)
			}
			if !errors.Is(err, ecc.ErrReproduceFailed) && !errors.Is(err, ErrKeyMismatch) {
				t.Fatalf("T=%d weight=%d: unexpected failure mode %v", cfg.T, weight, err)
			}
			if key != ([32]byte{}) {
				t.Fatalf("T=%d weight=%d: failed reproduction leaked a key", cfg.T, weight)
			}
		}
	}
}
