// Package faultnet wraps net.Listener and net.Conn with deterministic,
// seeded fault injection: connection resets, latency jitter, stalls,
// partial writes, and byte corruption, each with a configurable
// probability.  Every wrapped connection draws its faults from an
// independent child of one seeded rng stream, so a given (seed, connection
// order) reproduces the exact same fault schedule run after run — failure
// modes seen once in production chaos can be pinned down in a unit test.
//
// The wrappers sit below any protocol: netauth's resilience tests drive the
// full Fig 7 authentication protocol through them, but nothing in this
// package knows about PUFs.
//
// Fault semantics per I/O operation:
//
//   - reset: the underlying connection is aborted (SO_LINGER 0 on TCP, so
//     the peer sees RST rather than a clean FIN) and the operation fails
//     with a *FaultError of kind "reset".
//   - stall: the operation sleeps for Config.Stall before proceeding —
//     long stalls trip the peer's deadline, modelling a hung middlebox.
//   - latency: every operation sleeps a uniform [0, MaxLatency) jitter.
//   - corrupt (writes only): one byte of the payload is XORed with 0x80
//     before hitting the wire; the write still reports success.
//   - partial (writes only): a strict prefix of the payload is written,
//     then the connection is aborted, and the write fails with a
//     *FaultError of kind "partial-write".
package faultnet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"xorpuf/internal/rng"
)

// Config sets per-operation fault probabilities (each in [0,1]) and
// magnitudes.  The zero value injects nothing and passes I/O through
// untouched.
type Config struct {
	// Seed drives the fault schedule; connections wrapped by the same
	// listener/dialer in the same order see the same faults.
	Seed uint64
	// ResetProb aborts the connection at the start of a read or write.
	ResetProb float64
	// StallProb sleeps Stall before a read or write proceeds.
	StallProb float64
	// Stall is how long a stalled operation sleeps (default 500 ms).
	Stall time.Duration
	// CorruptProb flips one byte (XOR 0x80) of a written payload.  The
	// 0x80 flip guarantees the corrupted frame is no longer clean ASCII,
	// so JSON peers fail to parse it rather than silently accepting a
	// flipped bit.
	CorruptProb float64
	// PartialWriteProb writes a strict prefix of the payload and then
	// aborts the connection.
	PartialWriteProb float64
	// MaxLatency adds a uniform [0, MaxLatency) delay to every
	// operation; 0 disables latency injection.
	MaxLatency time.Duration
}

func (c Config) stall() time.Duration {
	if c.Stall <= 0 {
		return 500 * time.Millisecond
	}
	return c.Stall
}

// FaultError reports an injected fault.  It satisfies net.Error with
// Timeout() == false, so protocol code treats it like any other broken
// connection.
type FaultError struct {
	Op   string // "read" or "write"
	Kind string // "reset" or "partial-write"
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("faultnet: injected %s fault during %s", e.Kind, e.Op)
}

// Timeout implements net.Error.
func (e *FaultError) Timeout() bool { return false }

// Temporary implements the historical net.Error method; injected faults
// are transient by construction.
func (e *FaultError) Temporary() bool { return true }

// Listener wraps an inner listener so every accepted connection injects
// faults from its own deterministic stream.
type Listener struct {
	net.Listener
	cfg Config

	mu   sync.Mutex
	src  *rng.Source
	next int
}

// WrapListener wraps ln with fault injection configured by cfg.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg, src: rng.New(cfg.Seed)}
}

// Accept accepts from the inner listener and returns a fault-injecting
// connection.  The i-th accepted connection always draws from the same
// rng child, regardless of what earlier connections did.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	src := l.src.SplitIndex(l.next)
	l.next++
	l.mu.Unlock()
	return WrapConn(conn, l.cfg, src), nil
}

// Dialer produces fault-injecting client connections; the i-th dial draws
// from the i-th rng child, mirroring Listener.
type Dialer struct {
	cfg    Config
	dialer net.Dialer

	mu   sync.Mutex
	src  *rng.Source
	next int
}

// NewDialer creates a dialer whose connections inject faults per cfg.
func NewDialer(cfg Config) *Dialer {
	return &Dialer{cfg: cfg, src: rng.New(cfg.Seed)}
}

// DialContext dials like net.Dialer and wraps the result.  Its signature
// matches netauth.Client.DialContext.
func (d *Dialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	conn, err := d.dialer.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	src := d.src.SplitIndex(d.next)
	d.next++
	d.mu.Unlock()
	return WrapConn(conn, d.cfg, src), nil
}

// Conn injects faults into one connection's reads and writes.  Deadlines,
// addresses, and Close pass through to the wrapped connection.
type Conn struct {
	net.Conn
	cfg Config

	mu  sync.Mutex
	src *rng.Source
}

// WrapConn wraps conn with fault injection drawing randomness from src.
func WrapConn(conn net.Conn, cfg Config, src *rng.Source) *Conn {
	return &Conn{Conn: conn, cfg: cfg, src: src}
}

// roll consumes one uniform draw; the caller holds c.mu.  Drawing even for
// p == 0 keeps the stream position identical across configs, so enabling
// one fault class does not reshuffle another's schedule.
func (c *Conn) roll(p float64) bool { return c.src.Float64() < p }

// latency draws the per-op jitter; the caller holds c.mu.
func (c *Conn) latency() time.Duration {
	if c.cfg.MaxLatency <= 0 {
		return 0
	}
	return time.Duration(c.src.Float64() * float64(c.cfg.MaxLatency))
}

// abort tears the connection down abruptly.  On TCP, SO_LINGER 0 makes the
// kernel send RST, so the peer observes a genuine connection reset.
func (c *Conn) abort() {
	if tcp, ok := c.Conn.(*net.TCPConn); ok {
		_ = tcp.SetLinger(0)
	}
	_ = c.Conn.Close()
}

// Read injects reset/stall/latency faults, then reads from the wrapped
// connection.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	reset := c.roll(c.cfg.ResetProb)
	stall := c.roll(c.cfg.StallProb)
	lat := c.latency()
	c.mu.Unlock()
	if reset {
		c.abort()
		return 0, &FaultError{Op: "read", Kind: "reset"}
	}
	if stall {
		time.Sleep(c.cfg.stall())
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	return c.Conn.Read(p)
}

// Write injects reset/stall/latency/corruption/partial-write faults, then
// writes to the wrapped connection.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	reset := c.roll(c.cfg.ResetProb)
	stall := c.roll(c.cfg.StallProb)
	corrupt := c.roll(c.cfg.CorruptProb)
	partial := c.roll(c.cfg.PartialWriteProb)
	corruptAt, partialLen := 0, 0
	if len(p) > 0 {
		corruptAt = c.src.Intn(len(p))
	}
	if len(p) > 1 {
		partialLen = 1 + c.src.Intn(len(p)-1)
	}
	lat := c.latency()
	c.mu.Unlock()

	if reset {
		c.abort()
		return 0, &FaultError{Op: "write", Kind: "reset"}
	}
	if stall {
		time.Sleep(c.cfg.stall())
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	buf := p
	if corrupt && len(p) > 0 {
		buf = append([]byte(nil), p...)
		buf[corruptAt] ^= 0x80
	}
	if partial && len(buf) > 1 {
		n, err := c.Conn.Write(buf[:partialLen])
		c.abort()
		if err == nil {
			err = &FaultError{Op: "write", Kind: "partial-write"}
		}
		return n, err
	}
	return c.Conn.Write(buf)
}
