package faultnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"xorpuf/internal/rng"
)

// pipePair returns two ends of a loopback TCP connection, the client end
// optionally wrapped with cfg.
func pipePair(t *testing.T, cfg Config, seed uint64) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- c
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server = <-done
	if server == nil {
		t.Fatal("accept failed")
	}
	client = WrapConn(raw, cfg, rng.New(seed))
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestZeroConfigPassesThrough(t *testing.T) {
	client, server := pipePair(t, Config{}, 1)
	msg := []byte("hello through an inert faultnet\n")
	go func() {
		if _, err := client.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("payload altered: %q", got)
	}
	// And the reverse direction, through the wrapped Read.
	go server.Write(msg) //nolint:errcheck
	got2 := make([]byte, len(msg))
	if _, err := io.ReadFull(client, got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, msg) {
		t.Errorf("read altered payload: %q", got2)
	}
}

func TestCorruptionFlipsExactlyOneByte(t *testing.T) {
	client, server := pipePair(t, Config{CorruptProb: 1}, 2)
	msg := []byte("0123456789abcdef")
	go client.Write(msg) //nolint:errcheck
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	diffs := 0
	for i := range msg {
		if got[i] != msg[i] {
			diffs++
			if got[i] != msg[i]^0x80 {
				t.Errorf("byte %d corrupted to %#x, want %#x", i, got[i], msg[i]^0x80)
			}
		}
	}
	if diffs != 1 {
		t.Errorf("corrupted %d bytes, want exactly 1", diffs)
	}
}

func TestResetAbortsConnection(t *testing.T) {
	client, server := pipePair(t, Config{ResetProb: 1}, 3)
	_, err := client.Write([]byte("doomed"))
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != "reset" {
		t.Fatalf("err = %v, want reset FaultError", err)
	}
	// The peer sees the connection die, not silence.
	server.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := server.Read(make([]byte, 1)); err == nil {
		t.Error("peer read succeeded after injected reset")
	}
}

func TestPartialWriteDeliversStrictPrefix(t *testing.T) {
	client, server := pipePair(t, Config{PartialWriteProb: 1}, 4)
	msg := []byte("a long enough payload to be cut somewhere in the middle")
	n, err := client.Write(msg)
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != "partial-write" {
		t.Fatalf("err = %v (n=%d), want partial-write FaultError", err, n)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("partial write wrote %d of %d bytes, want a strict prefix", n, len(msg))
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	got, _ := io.ReadAll(server)
	if !bytes.Equal(got, msg[:len(got)]) {
		t.Errorf("delivered bytes are not a prefix: %q", got)
	}
	if len(got) >= len(msg) {
		t.Errorf("peer received %d bytes, want fewer than %d", len(got), len(msg))
	}
}

func TestStallDelaysOperation(t *testing.T) {
	client, server := pipePair(t, Config{StallProb: 1, Stall: 120 * time.Millisecond}, 5)
	start := time.Now()
	go client.Write([]byte("slow\n")) //nolint:errcheck
	got := make([]byte, 5)
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Errorf("stalled write arrived after %v, want ≥ ~120ms", d)
	}
}

// TestDeterministicSchedule runs the same 32-connection workload twice and
// checks the per-connection fault outcomes are identical.
func TestDeterministicSchedule(t *testing.T) {
	run := func() []bool {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		fln := WrapListener(ln, Config{Seed: 42, ResetProb: 0.4})
		outcomes := make([]bool, 32)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(outcomes); i++ {
				conn, err := fln.Accept()
				if err != nil {
					t.Error(err)
					return
				}
				// One echo read per connection; record whether the
				// injected schedule reset it.
				buf := make([]byte, 4)
				_, err = io.ReadFull(conn, buf)
				var fe *FaultError
				outcomes[i] = errors.As(err, &fe)
				conn.Close()
			}
		}()
		for i := 0; i < len(outcomes); i++ {
			c, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			c.Write([]byte("ping")) //nolint:errcheck
			// Wait for the server to finish with this connection before
			// dialing the next, so accept order is deterministic.
			c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
			io.ReadAll(c)                                      //nolint:errcheck
			c.Close()
		}
		wg.Wait()
		return outcomes
	}
	a, b := run(), run()
	resets := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("connection %d: run A reset=%v, run B reset=%v", i, a[i], b[i])
		}
		if a[i] {
			resets++
		}
	}
	if resets == 0 || resets == len(a) {
		t.Errorf("reset schedule degenerate: %d/%d connections reset", resets, len(a))
	}
}

func TestDialerWrapsConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(io.Discard, c) //nolint:errcheck
				c.Close()
			}(c)
		}
	}()
	d := NewDialer(Config{ResetProb: 1, Seed: 9})
	conn, err := d.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, ok := conn.(*Conn); !ok {
		t.Fatalf("DialContext returned %T, want *faultnet.Conn", conn)
	}
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Error("write succeeded despite ResetProb=1")
	}
}
