// Package linalg provides the dense linear algebra needed by the delay-model
// regression (least squares via QR or Cholesky) and the neural-network attack
// (matrix products, vector arithmetic, L-BFGS direction updates).
//
// Matrices are dense, row-major float64.  The package deliberately implements
// only what the repository needs, with predictable O(n³)/O(n²) loops that the
// Go compiler vectorizes well, rather than wrapping BLAS (the module must be
// stdlib-only).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged row %d: len %d, want %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul returns the product m × other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch (%dx%d)×(%dx%d)",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	// ikj loop order: the inner loop streams over contiguous rows of both
	// `other` and `out`, which is the cache-friendly order for row-major
	// storage.
	for i := 0; i < m.Rows; i++ {
		mRow := m.Row(i)
		outRow := out.Row(i)
		for k, a := range mRow {
			if a == 0 {
				continue
			}
			oRow := other.Row(k)
			for j, b := range oRow {
				outRow[j] += a * b
			}
		}
	}
	return out
}

// MulVec returns m × v for a column vector v (len == m.Cols).
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch (%dx%d)×%d",
			m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out
}

// MulTVec returns mᵀ × v for a column vector v (len == m.Rows), without
// materializing the transpose.
func (m *Matrix) MulTVec(v []float64) []float64 {
	if m.Rows != len(v) {
		panic(fmt.Sprintf("linalg: MulTVec shape mismatch (%dx%d)ᵀ×%d",
			m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Cols)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := m.Row(i)
		for j, a := range row {
			out[j] += vi * a
		}
	}
	return out
}

// Dot returns the dot product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute element of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Copy returns a fresh copy of x.
func Copy(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// Sub returns a-b as a new vector.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: Sub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
