package linalg

import "math"

// SymEig computes the eigendecomposition of a symmetric matrix A = V·diag(λ)·Vᵀ
// using the cyclic Jacobi rotation method, which is simple, unconditionally
// stable, and fast enough for the ≤100-dimensional covariance matrices the
// CMA-ES attack adapts.  It returns the eigenvalues (ascending) and the
// matrix whose COLUMNS are the corresponding orthonormal eigenvectors.
//
// Only the lower triangle of a is read; a is not modified.
func SymEig(a *Matrix) (values []float64, vectors *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: SymEig of non-square matrix")
	}
	n := a.Rows
	// Work on a symmetric copy.
	w := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := a.At(i, j)
			w.Set(i, j, v)
			w.Set(j, i, v)
		}
	}
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm for convergence.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Rotation angle: tan(2θ) = 2apq/(app−aqq).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation to rows/columns p and q.
				for k := 0; k < n; k++ {
					akp := w.At(k, p)
					akq := w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := w.At(p, k)
					aqk := w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := range values {
		values[i] = w.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && values[idx[j]] < values[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedVals := make([]float64, n)
	vectors = NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			vectors.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, vectors
}
