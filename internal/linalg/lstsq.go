package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// Cholesky factors a symmetric positive-definite matrix A as L·Lᵀ and
// returns the lower-triangular factor L.  Only the lower triangle of A is
// read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lRowJ := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lRowJ[k] * lRowJ[k]
		}
		if d <= 0 {
			return nil, fmt.Errorf("%w: non-positive pivot %g at column %d",
				ErrSingular, d, j)
		}
		djj := math.Sqrt(d)
		lRowJ[j] = djj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lRowI := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lRowI[k] * lRowJ[k]
			}
			lRowI[j] = s / djj
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A, via forward
// then backward substitution.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveCholesky length mismatch")
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// LeastSquares solves min‖A·x − b‖₂ for a tall matrix A (Rows ≥ Cols) using
// Householder QR, which is backward stable even when AᵀA would be
// ill-conditioned.  ridge ≥ 0 adds Tikhonov regularization (solving the
// augmented system [A; √ridge·I]·x = [b; 0]).
func LeastSquares(a *Matrix, b []float64, ridge float64) ([]float64, error) {
	if a.Rows != len(b) {
		panic("linalg: LeastSquares shape mismatch")
	}
	if ridge < 0 {
		panic("linalg: negative ridge")
	}
	m, n := a.Rows, a.Cols
	if ridge > 0 {
		// Augment with √ridge·I rows; reuse the plain path on the
		// augmented system.
		aug := NewMatrix(m+n, n)
		copy(aug.Data[:m*n], a.Data)
		s := math.Sqrt(ridge)
		for i := 0; i < n; i++ {
			aug.Set(m+i, i, s)
		}
		bAug := make([]float64, m+n)
		copy(bAug, b)
		return LeastSquares(aug, bAug, 0)
	}
	if m < n {
		return nil, fmt.Errorf("linalg: underdetermined system (%d rows, %d cols)", m, n)
	}
	r := a.Clone()
	rhs := Copy(b)
	// Householder QR, applying reflectors to the RHS as we go.
	for k := 0; k < n; k++ {
		// Build the reflector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm == 0 {
			return nil, fmt.Errorf("%w: zero column %d", ErrSingular, k)
		}
		// Choose the reflector sign that avoids cancellation in v_k.
		if r.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			r.Set(i, k, r.At(i, k)/norm)
		}
		r.Set(k, k, r.At(k, k)+1)
		// Apply reflector to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += r.At(i, k) * r.At(i, j)
			}
			s = -s / r.At(k, k)
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)+s*r.At(i, k))
			}
		}
		// Apply reflector to the RHS.
		var s float64
		for i := k; i < m; i++ {
			s += r.At(i, k) * rhs[i]
		}
		s = -s / r.At(k, k)
		for i := k; i < m; i++ {
			rhs[i] += s * r.At(i, k)
		}
		r.Set(k, k, -norm) // store R's diagonal
	}
	// Back substitution on the upper triangle. The stored diagonal R(k,k)
	// is -norm; guard tiny pivots.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-300 {
			return nil, fmt.Errorf("%w: zero pivot %d", ErrSingular, i)
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveSPD solves A·x = b for symmetric positive-definite A via Cholesky.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b), nil
}

// NormalEquations forms AᵀA and Aᵀb for the least-squares system; useful
// when the same design matrix is reused with many right-hand sides.
func NormalEquations(a *Matrix, b []float64) (*Matrix, []float64) {
	if a.Rows != len(b) {
		panic("linalg: NormalEquations shape mismatch")
	}
	n := a.Cols
	ata := NewMatrix(n, n)
	atb := make([]float64, n)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, vj := range row {
			atb[j] += vj * b[i]
			dst := ata.Row(j)
			for k := j; k < n; k++ {
				dst[k] += vj * row[k]
			}
		}
	}
	// Mirror the upper triangle into the lower.
	for j := 0; j < n; j++ {
		for k := j + 1; k < n; k++ {
			ata.Set(k, j, ata.At(j, k))
		}
	}
	return ata, atb
}
