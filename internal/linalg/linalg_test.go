package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"xorpuf/internal/rng"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	s := rng.New(1)
	a := randomMatrix(s, 7, 5)
	v := randomVector(s, 5)
	got := a.MulVec(v)
	col := NewMatrix(5, 1)
	copy(col.Data, v)
	want := a.Mul(col)
	for i := range got {
		if !approxEq(got[i], want.At(i, 0), 1e-12) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestMulTVecMatchesTranspose(t *testing.T) {
	s := rng.New(2)
	a := randomMatrix(s, 6, 4)
	v := randomVector(s, 6)
	got := a.MulTVec(v)
	want := a.T().MulVec(v)
	for i := range got {
		if !approxEq(got[i], want[i], 1e-12) {
			t.Fatalf("MulTVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	s := rng.New(3)
	a := randomMatrix(s, 5, 9)
	tt := a.T().T()
	for i := range a.Data {
		if a.Data[i] != tt.Data[i] {
			t.Fatal("transpose is not an involution")
		}
	}
}

func TestMulAssociativity(t *testing.T) {
	s := rng.New(4)
	a := randomMatrix(s, 4, 3)
	b := randomMatrix(s, 3, 5)
	c := randomMatrix(s, 5, 2)
	left := a.Mul(b).Mul(c)
	right := a.Mul(b.Mul(c))
	for i := range left.Data {
		if !approxEq(left.Data[i], right.Data[i], 1e-10) {
			t.Fatal("matrix multiplication not associative within tolerance")
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	s := rng.New(5)
	// Build SPD matrix A = BᵀB + I.
	b := randomMatrix(s, 8, 6)
	a := b.T().Mul(b)
	for i := 0; i < 6; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := l.Mul(l.T())
	for i := range a.Data {
		if !approxEq(a.Data[i], recon.Data[i], 1e-9) {
			t.Fatalf("LLᵀ differs from A at %d: %v vs %v", i, recon.Data[i], a.Data[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	s := rng.New(6)
	b := randomMatrix(s, 10, 4)
	a := b.T().Mul(b)
	for i := 0; i < 4; i++ {
		a.Set(i, i, a.At(i, i)+0.5)
	}
	xTrue := randomVector(s, 4)
	rhs := a.MulVec(xTrue)
	x, err := SolveSPD(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !approxEq(x[i], xTrue[i], 1e-8) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square, consistent system: solution must be exact.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := LeastSquares(a, []float64{5, 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 1, 1e-12) || !approxEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestLeastSquaresRecoversPlantedModel(t *testing.T) {
	s := rng.New(7)
	const m, n = 400, 12
	a := randomMatrix(s, m, n)
	xTrue := randomVector(s, n)
	b := a.MulVec(xTrue)
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !approxEq(x[i], xTrue[i], 1e-9) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// Least-squares optimality: Aᵀ(Ax − b) must vanish.
	s := rng.New(8)
	const m, n = 50, 6
	a := randomMatrix(s, m, n)
	b := randomVector(s, m)
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	resid := Sub(a.MulVec(x), b)
	grad := a.MulTVec(resid)
	if NormInf(grad) > 1e-9 {
		t.Fatalf("normal-equation residual too large: %v", NormInf(grad))
	}
}

func TestLeastSquaresRidgeShrinks(t *testing.T) {
	s := rng.New(9)
	const m, n = 30, 5
	a := randomMatrix(s, m, n)
	b := randomVector(s, m)
	x0, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := LeastSquares(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(x1) >= Norm2(x0) {
		t.Fatalf("ridge did not shrink the solution: %v vs %v", Norm2(x1), Norm2(x0))
	}
}

func TestLeastSquaresMatchesNormalEquations(t *testing.T) {
	s := rng.New(10)
	const m, n = 80, 7
	a := randomMatrix(s, m, n)
	b := randomVector(s, m)
	xQR, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	ata, atb := NormalEquations(a, b)
	xNE, err := SolveSPD(ata, atb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xQR {
		if !approxEq(xQR[i], xNE[i], 1e-8) {
			t.Fatalf("QR and normal equations disagree at %d: %v vs %v", i, xQR[i], xNE[i])
		}
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := LeastSquares(a, []float64{1, 2}, 0); err == nil {
		t.Fatal("expected error for underdetermined system")
	}
}

func TestDotAxpyScale(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Errorf("Dot = %v, want 32", Dot(x, y))
	}
	Axpy(2, x, y)
	want := []float64{6, 9, 12}
	for i := range y {
		if y[i] != want[i] {
			t.Errorf("Axpy: y = %v, want %v", y, want)
			break
		}
	}
	Scale(0.5, y)
	want = []float64{3, 4.5, 6}
	for i := range y {
		if y[i] != want[i] {
			t.Errorf("Scale: y = %v, want %v", y, want)
			break
		}
	}
}

func TestNorm2AgainstDot(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		x := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				x = append(x, v)
			}
		}
		n := Norm2(x)
		want := math.Sqrt(Dot(x, x))
		if want == 0 {
			return n == 0
		}
		return math.Abs(n-want)/want < 1e-12
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Norm2 must survive values whose squares overflow float64.
	x := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if got := Norm2(x); math.Abs(got-want)/want > 1e-14 {
		t.Errorf("Norm2 overflow-safe path: got %v, want %v", got, want)
	}
}

func randomMatrix(s *rng.Source, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = s.Norm()
	}
	return m
}

func randomVector(s *rng.Source, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = s.Norm()
	}
	return v
}
