package linalg

import (
	"runtime"
	"sync"
)

// parallelRowThreshold is the row count above which matrix products fan out
// across CPUs.  Small products stay single-threaded to avoid goroutine
// overhead in the many tiny solves the enrollment pipeline performs.
const parallelRowThreshold = 512

// parallelRows runs fn over [0, rows) split into contiguous blocks across
// GOMAXPROCS workers.  Each worker owns disjoint output rows, so fn must
// only write state derived from its row range.
func parallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if rows < parallelRowThreshold || workers <= 1 {
		fn(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulPar returns m × other, fanning the row loop across CPUs for large
// inputs.  Results are bit-identical to Mul (same per-row arithmetic order).
func (m *Matrix) MulPar(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic("linalg: MulPar shape mismatch")
	}
	out := NewMatrix(m.Rows, other.Cols)
	parallelRows(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mRow := m.Row(i)
			outRow := out.Row(i)
			for k, a := range mRow {
				if a == 0 {
					continue
				}
				oRow := other.Row(k)
				for j, b := range oRow {
					outRow[j] += a * b
				}
			}
		}
	})
	return out
}

// MulABt returns a × bᵀ without materializing the transpose; rows of the
// result are dot products of rows of a with rows of b.  Parallel over rows.
func MulABt(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("linalg: MulABt shape mismatch")
	}
	out := NewMatrix(a.Rows, b.Rows)
	parallelRows(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			aRow := a.Row(i)
			outRow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				outRow[j] = Dot(aRow, b.Row(j))
			}
		}
	})
	return out
}

// MulAtB returns aᵀ × b without materializing the transpose.  The result is
// small (a.Cols × b.Cols) while the shared dimension (a.Rows) is the batch
// size, so the reduction is parallelized over batch blocks with per-worker
// accumulators.
func MulAtB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("linalg: MulAtB shape mismatch")
	}
	workers := runtime.GOMAXPROCS(0)
	if a.Rows < parallelRowThreshold || workers <= 1 {
		out := NewMatrix(a.Cols, b.Cols)
		mulAtBRange(a, b, 0, a.Rows, out)
		return out
	}
	if workers > a.Rows {
		workers = a.Rows
	}
	partials := make([]*Matrix, workers)
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	idx := 0
	for lo := 0; lo < a.Rows; lo += chunk {
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		part := NewMatrix(a.Cols, b.Cols)
		partials[idx] = part
		wg.Add(1)
		go func(lo, hi int, part *Matrix) {
			defer wg.Done()
			mulAtBRange(a, b, lo, hi, part)
		}(lo, hi, part)
		idx++
	}
	wg.Wait()
	out := partials[0]
	for _, p := range partials[1:idx] {
		for i := range out.Data {
			out.Data[i] += p.Data[i]
		}
	}
	return out
}

func mulAtBRange(a, b *Matrix, lo, hi int, out *Matrix) {
	for r := lo; r < hi; r++ {
		aRow := a.Row(r)
		bRow := b.Row(r)
		for i, av := range aRow {
			if av == 0 {
				continue
			}
			outRow := out.Row(i)
			for j, bv := range bRow {
				outRow[j] += av * bv
			}
		}
	}
}
