package linalg

import (
	"math"
	"testing"

	"xorpuf/internal/rng"
)

func TestMulParMatchesMul(t *testing.T) {
	s := rng.New(41)
	for _, rows := range []int{3, 100, 700} { // below and above the threshold
		a := randomMatrix(s, rows, 17)
		b := randomMatrix(s, 17, 9)
		seq := a.Mul(b)
		par := a.MulPar(b)
		for i := range seq.Data {
			if seq.Data[i] != par.Data[i] {
				t.Fatalf("rows=%d: MulPar differs from Mul at %d", rows, i)
			}
		}
	}
}

func TestMulABtMatchesExplicitTranspose(t *testing.T) {
	s := rng.New(42)
	for _, rows := range []int{5, 600} {
		a := randomMatrix(s, rows, 11)
		b := randomMatrix(s, 13, 11)
		got := MulABt(a, b)
		want := a.Mul(b.T())
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range got.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
				t.Fatalf("rows=%d: MulABt differs at %d", rows, i)
			}
		}
	}
}

func TestMulAtBMatchesExplicitTranspose(t *testing.T) {
	s := rng.New(43)
	for _, rows := range []int{5, 2000} { // exercise sequential and parallel paths
		a := randomMatrix(s, rows, 7)
		b := randomMatrix(s, rows, 6)
		got := MulAtB(a, b)
		want := a.T().Mul(b)
		if got.Rows != 7 || got.Cols != 6 {
			t.Fatalf("shape %dx%d, want 7x6", got.Rows, got.Cols)
		}
		for i := range got.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("rows=%d: MulAtB differs at %d: %v vs %v",
					rows, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func BenchmarkMulPar100kx33x35(b *testing.B) {
	// The MLP attack's first-layer product at a 100k-CRP training set.
	s := rng.New(44)
	x := randomMatrix(s, 100000, 33)
	w := randomMatrix(s, 33, 35)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.MulPar(w)
	}
}
