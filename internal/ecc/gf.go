// Package ecc implements binary BCH error-correcting codes over GF(2^m) and
// a code-offset fuzzy extractor on top of them — the standard machinery for
// deriving stable cryptographic keys from noisy PUF responses.
//
// The paper's challenge-selection scheme makes responses 100 %-stable, so a
// key can in principle be reproduced with no error correction at all; this
// package quantifies that advantage: the fuzzy-extractor experiments compare
// the error-correction budget (and hence helper-data leakage and code rate)
// needed with raw responses versus model-selected ones.
package ecc

import "fmt"

// primitivePolys[m] is a primitive polynomial of degree m over GF(2),
// encoded with bit i = coefficient of x^i (the x^m term included).
var primitivePolys = map[int]uint32{
	3:  0b1011,            // x³+x+1
	4:  0b10011,           // x⁴+x+1
	5:  0b100101,          // x⁵+x²+1
	6:  0b1000011,         // x⁶+x+1
	7:  0b10001001,        // x⁷+x³+1
	8:  0b100011101,       // x⁸+x⁴+x³+x²+1
	9:  0b1000010001,      // x⁹+x⁴+1
	10: 0b10000001001,     // x¹⁰+x³+1
	11: 0b100000000101,    // x¹¹+x²+1
	12: 0b1000001010011,   // x¹²+x⁶+x⁴+x+1
	13: 0b10000000011011,  // x¹³+x⁴+x³+x+1
	14: 0b100010001000011, // x¹⁴+x¹⁰+x⁶+x+1
}

// Field is GF(2^m) with exp/log tables over a primitive element α.
type Field struct {
	M    int
	Size int // 2^m
	N    int // 2^m − 1, the multiplicative order
	exp  []uint32
	log  []int
}

// NewField constructs GF(2^m) for 3 ≤ m ≤ 14.
func NewField(m int) (*Field, error) {
	poly, ok := primitivePolys[m]
	if !ok {
		return nil, fmt.Errorf("ecc: no primitive polynomial for m=%d", m)
	}
	f := &Field{M: m, Size: 1 << uint(m), N: (1 << uint(m)) - 1}
	f.exp = make([]uint32, 2*f.N)
	f.log = make([]int, f.Size)
	for i := range f.log {
		f.log[i] = -1
	}
	x := uint32(1)
	for i := 0; i < f.N; i++ {
		f.exp[i] = x
		f.exp[i+f.N] = x // doubled table: mod-free products
		f.log[x] = i
		x <<= 1
		if x&(1<<uint(m)) != 0 {
			x ^= poly
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("ecc: polynomial %#b is not primitive for m=%d", poly, m)
	}
	return f, nil
}

// Add returns a + b (XOR in characteristic 2).
func (f *Field) Add(a, b uint32) uint32 { return a ^ b }

// Mul returns a·b.
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns a⁻¹; it panics on 0.
func (f *Field) Inv(a uint32) uint32 {
	if a == 0 {
		panic("ecc: inverse of zero")
	}
	return f.exp[f.N-f.log[a]]
}

// Div returns a/b; it panics when b is 0.
func (f *Field) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("ecc: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[(f.log[a]-f.log[b]+f.N)%f.N]
}

// Exp returns α^i for any integer i (negative allowed).
func (f *Field) Exp(i int) uint32 {
	i %= f.N
	if i < 0 {
		i += f.N
	}
	return f.exp[i]
}

// Log returns log_α(a); it panics on 0.
func (f *Field) Log(a uint32) int {
	if a == 0 {
		panic("ecc: log of zero")
	}
	return f.log[a]
}

// PolyEval evaluates a polynomial with GF(2^m) coefficients (index i =
// coefficient of x^i) at point x by Horner's rule.
func (f *Field) PolyEval(p []uint32, x uint32) uint32 {
	var acc uint32
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), p[i])
	}
	return acc
}
