package ecc

import (
	"errors"
	"testing"
	"testing/quick"

	"xorpuf/internal/rng"
)

func TestFieldConstruction(t *testing.T) {
	for m := 3; m <= 14; m++ {
		f, err := NewField(m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if f.N != (1<<uint(m))-1 {
			t.Fatalf("m=%d: N=%d", m, f.N)
		}
	}
	if _, err := NewField(2); err == nil {
		t.Error("m=2 should be unsupported")
	}
}

func TestFieldAxioms(t *testing.T) {
	f, err := NewField(8)
	if err != nil {
		t.Fatal(err)
	}
	mask := uint32(f.N)
	if err := quick.Check(func(ar, br, cr uint32) bool {
		a, b, c := ar&mask, br&mask, cr&mask
		// Commutativity and associativity of multiplication.
		if f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		// Distributivity.
		if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
			return false
		}
		// Inverses.
		if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
			return false
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldExpLogRoundTrip(t *testing.T) {
	f, err := NewField(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.N; i++ {
		if f.Log(f.Exp(i)) != i {
			t.Fatalf("log(exp(%d)) = %d", i, f.Log(f.Exp(i)))
		}
	}
	// Exp is N-periodic including negatives.
	if f.Exp(-1) != f.Exp(f.N-1) {
		t.Error("negative exponent broken")
	}
}

func TestPolyEval(t *testing.T) {
	f, err := NewField(4)
	if err != nil {
		t.Fatal(err)
	}
	// p(x) = 1 + x: p(α) = 1 ^ α.
	alpha := f.Exp(1)
	if got := f.PolyEval([]uint32{1, 1}, alpha); got != (1 ^ alpha) {
		t.Fatalf("PolyEval = %d, want %d", got, 1^alpha)
	}
	if f.PolyEval(nil, 5) != 0 {
		t.Error("empty polynomial should evaluate to 0")
	}
}

func mustBCH(t testing.TB, m, tcap int) *BCH {
	t.Helper()
	c, err := NewBCH(m, tcap)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBCHKnownParameters(t *testing.T) {
	// Classic codes: BCH(15,7,2), BCH(15,5,3), BCH(127,64,10).
	cases := []struct{ m, t, wantK int }{
		{4, 2, 7},
		{4, 3, 5},
		{7, 10, 64},
		{7, 1, 120},
		{8, 2, 239},
	}
	for _, tc := range cases {
		c := mustBCH(t, tc.m, tc.t)
		if c.K != tc.wantK {
			t.Errorf("BCH(m=%d,t=%d): K=%d, want %d", tc.m, tc.t, c.K, tc.wantK)
		}
	}
}

func TestBCHEncodeIsCodeword(t *testing.T) {
	// Every encoded word must have all syndromes zero (decode fixes 0).
	c := mustBCH(t, 7, 5)
	src := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		msg := randomBits(src, c.K)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		decoded, fixed, err := c.Decode(cw)
		if err != nil || fixed != 0 {
			t.Fatalf("clean codeword decoded with err=%v fixed=%d", err, fixed)
		}
		if !bitsEqual(decoded, cw) {
			t.Fatal("clean decode altered the codeword")
		}
		if !bitsEqual(c.Message(cw), msg) {
			t.Fatal("systematic message extraction failed")
		}
	}
}

func TestBCHCorrectsUpToT(t *testing.T) {
	c := mustBCH(t, 7, 6) // BCH(127,·,6)
	src := rng.New(2)
	for trial := 0; trial < 30; trial++ {
		msg := randomBits(src, c.K)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		nErr := 1 + src.Intn(c.T)
		corrupted := append([]uint8(nil), cw...)
		for _, pos := range src.Perm(c.N)[:nErr] {
			corrupted[pos] ^= 1
		}
		decoded, fixed, err := c.Decode(corrupted)
		if err != nil {
			t.Fatalf("trial %d: decode failed with %d errors: %v", trial, nErr, err)
		}
		if fixed != nErr {
			t.Fatalf("trial %d: fixed %d, want %d", trial, fixed, nErr)
		}
		if !bitsEqual(decoded, cw) {
			t.Fatalf("trial %d: wrong correction", trial)
		}
	}
}

func TestBCHDetectsBeyondT(t *testing.T) {
	// With substantially more than T errors the decoder must not silently
	// return the original codeword: either it errors, or it "corrects" to
	// a different codeword (miscorrection) — never to the true one.
	c := mustBCH(t, 7, 3)
	src := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		msg := randomBits(src, c.K)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		corrupted := append([]uint8(nil), cw...)
		for _, pos := range src.Perm(c.N)[:3*c.T] {
			corrupted[pos] ^= 1
		}
		decoded, _, err := c.Decode(corrupted)
		if err == nil && bitsEqual(decoded, cw) {
			t.Fatalf("trial %d: %d errors silently corrected to the true codeword", trial, 3*c.T)
		}
	}
}

func TestBCHLinearity(t *testing.T) {
	// The sum (XOR) of two codewords is a codeword.
	c := mustBCH(t, 4, 2)
	src := rng.New(4)
	a, err := c.Encode(randomBits(src, c.K))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Encode(randomBits(src, c.K))
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]uint8, c.N)
	for i := range sum {
		sum[i] = a[i] ^ b[i]
	}
	if _, fixed, err := c.Decode(sum); err != nil || fixed != 0 {
		t.Fatalf("codeword sum not a codeword: err=%v fixed=%d", err, fixed)
	}
}

func TestBCHValidation(t *testing.T) {
	if _, err := NewBCH(4, 0); err == nil {
		t.Error("t=0 should fail")
	}
	if _, err := NewBCH(4, 8); err == nil {
		t.Error("t too large for m=4 should fail")
	}
	c := mustBCH(t, 4, 2)
	if _, err := c.Encode(make([]uint8, 3)); err == nil {
		t.Error("wrong message length should fail")
	}
	if _, _, err := c.Decode(make([]uint8, 3)); err == nil {
		t.Error("wrong received length should fail")
	}
}

func TestBCHExhaustiveSingleAndDoubleErrors(t *testing.T) {
	// BCH(15,7,2): every 1- and 2-error pattern on one codeword must
	// decode exactly.
	c := mustBCH(t, 4, 2)
	src := rng.New(5)
	cw, err := c.Encode(randomBits(src, c.K))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.N; i++ {
		for j := i; j < c.N; j++ {
			corrupted := append([]uint8(nil), cw...)
			corrupted[i] ^= 1
			if j != i {
				corrupted[j] ^= 1
			}
			decoded, _, err := c.Decode(corrupted)
			if err != nil || !bitsEqual(decoded, cw) {
				t.Fatalf("error pattern (%d,%d) not corrected: %v", i, j, err)
			}
		}
	}
}

func randomBits(src *rng.Source, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = src.Bit()
	}
	return out
}

func bitsEqual(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestErrTooManyErrorsWrapped(t *testing.T) {
	// Note: the t=1 BCH(15,11) is the perfect Hamming code — every word
	// is within distance 1 of a codeword, so nothing is *detectable*
	// there.  Use the non-perfect t=2 BCH(15,7) with 5-error patterns.
	c := mustBCH(t, 4, 2)
	src := rng.New(6)
	cw, err := c.Encode(randomBits(src, c.K))
	if err != nil {
		t.Fatal(err)
	}
	sawError := false
	for trial := 0; trial < 200 && !sawError; trial++ {
		corrupted := append([]uint8(nil), cw...)
		for _, pos := range src.Perm(c.N)[:5] {
			corrupted[pos] ^= 1
		}
		if _, _, err := c.Decode(corrupted); errors.Is(err, ErrTooManyErrors) {
			sawError = true
		}
	}
	if !sawError {
		t.Error("never observed ErrTooManyErrors on 5-error patterns of the (15,7,2) code")
	}
}

func BenchmarkBCHDecode127(b *testing.B) {
	c := mustBCH(b, 7, 10)
	src := rng.New(7)
	cw, err := c.Encode(randomBits(src, c.K))
	if err != nil {
		b.Fatal(err)
	}
	corrupted := append([]uint8(nil), cw...)
	for _, pos := range src.Perm(c.N)[:10] {
		corrupted[pos] ^= 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Decode(corrupted); err != nil {
			b.Fatal(err)
		}
	}
}
