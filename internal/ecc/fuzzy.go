package ecc

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// FuzzyExtractor is the code-offset construction (Dodis et al.): Generate
// binds a random codeword to a noisy secret w via helper = w ⊕ c, and
// Reproduce recovers the same key from any w' within T bit flips of w.
// The helper data reveals at most N−K bits about w, which is why a smaller
// error-correction budget (more stable responses) means both a higher key
// rate and less leakage.
type FuzzyExtractor struct {
	Code *BCH
}

// NewFuzzyExtractor wraps a BCH code.
func NewFuzzyExtractor(code *BCH) *FuzzyExtractor {
	if code == nil {
		panic("ecc: nil code")
	}
	return &FuzzyExtractor{Code: code}
}

// Generate derives a 256-bit key from the secret bit string w (length
// Code.N) and returns the public helper data.  random supplies the codeword
// choice; the codeword is the key material, so wherever the helper data is
// exposed to an adversary this MUST be a cryptographic source
// (crypto/rand.Reader) — a deterministic rng.Source is acceptable only in
// closed simulations and benchmarks.
func (fe *FuzzyExtractor) Generate(random io.Reader, w []uint8) (key [32]byte, helper []uint8, err error) {
	if len(w) != fe.Code.N {
		return key, nil, fmt.Errorf("ecc: secret length %d, want %d", len(w), fe.Code.N)
	}
	buf := make([]byte, (fe.Code.K+7)/8)
	if _, err := io.ReadFull(random, buf); err != nil {
		return key, nil, fmt.Errorf("ecc: reading codeword randomness: %w", err)
	}
	msg := make([]uint8, fe.Code.K)
	for i := range msg {
		msg[i] = (buf[i/8] >> uint(i%8)) & 1
	}
	codeword, err := fe.Code.Encode(msg)
	if err != nil {
		return key, nil, err
	}
	helper = make([]uint8, fe.Code.N)
	for i := range helper {
		if w[i] > 1 {
			return key, nil, fmt.Errorf("ecc: secret bit %d invalid", i)
		}
		helper[i] = w[i] ^ codeword[i]
	}
	return keyFromCodeword(codeword), helper, nil
}

// ErrReproduceFailed is returned when w' is too far from the enrolled
// secret for the code to bridge.
var ErrReproduceFailed = errors.New("ecc: key reproduction failed (too many response errors)")

// Reproduce recovers the key from a noisy re-reading w' and the helper.
func (fe *FuzzyExtractor) Reproduce(wPrime, helper []uint8) (key [32]byte, corrected int, err error) {
	if len(wPrime) != fe.Code.N || len(helper) != fe.Code.N {
		return key, 0, fmt.Errorf("ecc: lengths %d/%d, want %d", len(wPrime), len(helper), fe.Code.N)
	}
	noisy := make([]uint8, fe.Code.N)
	for i := range noisy {
		noisy[i] = wPrime[i] ^ helper[i]
	}
	codeword, fixed, err := fe.Code.Decode(noisy)
	if err != nil {
		return key, 0, fmt.Errorf("%w: %v", ErrReproduceFailed, err)
	}
	return keyFromCodeword(codeword), fixed, nil
}

func keyFromCodeword(codeword []uint8) [32]byte {
	packed := make([]byte, (len(codeword)+7)/8)
	for i, b := range codeword {
		packed[i/8] |= b << uint(i%8)
	}
	return sha256.Sum256(packed)
}
