package ecc

import (
	"errors"
	"fmt"
)

// BCH is a binary primitive BCH code of length n = 2^m − 1 correcting up to
// T errors.  Codewords and messages are bit slices (uint8 values 0/1).
type BCH struct {
	Field *Field
	N     int // code length, 2^m − 1
	K     int // message length
	T     int // designed error-correction capability
	// gen is the generator polynomial over GF(2), index i = coefficient
	// of x^i, degree N−K.
	gen []uint8
}

// NewBCH constructs the binary BCH code of length 2^m − 1 with designed
// correction capability t.  The generator polynomial is the LCM of the
// minimal polynomials of α, α², …, α^{2t}; K follows from its degree.
func NewBCH(m, t int) (*BCH, error) {
	if err := CheckParams(m, t); err != nil {
		return nil, err
	}
	f, err := NewField(m)
	if err != nil {
		return nil, err
	}
	// Collect the union of cyclotomic cosets of 1..2t.
	inCoset := make([]bool, f.N)
	for i := 1; i <= 2*t; i++ {
		j := i % f.N
		for !inCoset[j] {
			inCoset[j] = true
			j = (j * 2) % f.N
		}
	}
	// g(x) = Π (x − α^j) over the marked exponents, expanded in GF(2^m);
	// the result has coefficients in GF(2) by conjugate-closure.
	g := []uint32{1}
	for j := 0; j < f.N; j++ {
		if !inCoset[j] {
			continue
		}
		root := f.Exp(j)
		next := make([]uint32, len(g)+1)
		for d, c := range g {
			next[d+1] ^= c            // x·g
			next[d] ^= f.Mul(c, root) // root·g (− == + in char 2)
		}
		g = next
	}
	gen := make([]uint8, len(g))
	for i, c := range g {
		if c > 1 {
			return nil, fmt.Errorf("ecc: generator coefficient %d not binary (%d)", i, c)
		}
		gen[i] = uint8(c)
	}
	k := f.N - (len(gen) - 1)
	if k <= 0 {
		return nil, fmt.Errorf("ecc: t = %d too large for m = %d (k = %d)", t, m, k)
	}
	return &BCH{Field: f, N: f.N, K: k, T: t, gen: gen}, nil
}

// Encode produces the systematic codeword for a K-bit message: the message
// occupies the high-order positions and the parity the low-order ones.
func (c *BCH) Encode(msg []uint8) ([]uint8, error) {
	if len(msg) != c.K {
		return nil, fmt.Errorf("ecc: message length %d, want %d", len(msg), c.K)
	}
	parityLen := c.N - c.K
	// remainder of msg(x)·x^{n−k} divided by g(x), over GF(2).
	rem := make([]uint8, parityLen)
	for i := c.K - 1; i >= 0; i-- {
		feedback := msg[i] ^ rem[parityLen-1]
		copy(rem[1:], rem[:parityLen-1])
		rem[0] = 0
		if feedback == 1 {
			for j := 0; j < parityLen; j++ {
				rem[j] ^= c.gen[j]
			}
		}
	}
	out := make([]uint8, c.N)
	copy(out, rem)
	copy(out[parityLen:], msg)
	return out, nil
}

// ErrTooManyErrors is returned when decoding fails (more than T errors, or
// an inconsistent error pattern).
var ErrTooManyErrors = errors.New("ecc: uncorrectable error pattern")

// Decode corrects up to T bit errors in place on a copy of the received
// word and returns the corrected codeword and the number of bits fixed.
func (c *BCH) Decode(received []uint8) ([]uint8, int, error) {
	if len(received) != c.N {
		return nil, 0, fmt.Errorf("ecc: received length %d, want %d", len(received), c.N)
	}
	f := c.Field
	// Syndromes S_j = r(α^j), j = 1..2T.
	syn := make([]uint32, 2*c.T)
	allZero := true
	for j := 1; j <= 2*c.T; j++ {
		var s uint32
		for i, bit := range received {
			if bit == 1 {
				s ^= f.Exp(i * j)
			}
		}
		syn[j-1] = s
		if s != 0 {
			allZero = false
		}
	}
	out := append([]uint8(nil), received...)
	if allZero {
		return out, 0, nil
	}
	// Berlekamp–Massey for the error-locator polynomial σ(x).
	sigma := []uint32{1}
	b := []uint32{1}
	var l, mShift int = 0, 1
	var bCoef uint32 = 1
	for n := 0; n < 2*c.T; n++ {
		// discrepancy d = S_n + Σ σ_i·S_{n−i}
		d := syn[n]
		for i := 1; i <= l && i < len(sigma); i++ {
			d ^= f.Mul(sigma[i], syn[n-i])
		}
		if d == 0 {
			mShift++
			continue
		}
		if 2*l <= n {
			tPoly := append([]uint32(nil), sigma...)
			sigma = polyAddShifted(f, sigma, b, f.Div(d, bCoef), mShift)
			l = n + 1 - l
			b = tPoly
			bCoef = d
			mShift = 1
		} else {
			sigma = polyAddShifted(f, sigma, b, f.Div(d, bCoef), mShift)
			mShift++
		}
	}
	if l > c.T {
		return nil, 0, ErrTooManyErrors
	}
	// Chien search: roots of σ give error locations.  σ(α^{−i}) == 0
	// ⇒ error at position i.
	fixed := 0
	for i := 0; i < c.N; i++ {
		if f.PolyEval(sigma, f.Exp(-i)) == 0 {
			out[i] ^= 1
			fixed++
		}
	}
	if fixed != l {
		return nil, 0, ErrTooManyErrors
	}
	// Verify: all syndromes of the corrected word must vanish.
	for j := 1; j <= 2*c.T; j++ {
		var s uint32
		for i, bit := range out {
			if bit == 1 {
				s ^= f.Exp(i * j)
			}
		}
		if s != 0 {
			return nil, 0, ErrTooManyErrors
		}
	}
	return out, fixed, nil
}

// Message extracts the K message bits from a systematic codeword.
func (c *BCH) Message(codeword []uint8) []uint8 {
	return append([]uint8(nil), codeword[c.N-c.K:]...)
}

// polyAddShifted returns a + scale·x^shift·b over GF(2^m).
func polyAddShifted(f *Field, a, b []uint32, scale uint32, shift int) []uint32 {
	size := len(a)
	if len(b)+shift > size {
		size = len(b) + shift
	}
	out := make([]uint32, size)
	copy(out, a)
	for i, c := range b {
		out[i+shift] ^= f.Mul(c, scale)
	}
	return out
}
