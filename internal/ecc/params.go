package ecc

import "fmt"

// ParamError reports BCH code parameters outside the constructible range.
// It is a typed error so callers that receive (M, T) from an untrusted
// source — a wire peer negotiating a fuzzy-extractor code, an operator
// flag — can validate up front and reject with structure, instead of
// surfacing a generator-construction failure (or, for an absurd T, paying
// an attacker-controlled amount of coset arithmetic) deep inside NewBCH.
type ParamError struct {
	M, T   int
	Reason string
}

func (e *ParamError) Error() string {
	return fmt.Sprintf("ecc: invalid BCH parameters m=%d t=%d: %s", e.M, e.T, e.Reason)
}

// Field size limits follow the primitive-polynomial table in gf.go.
const (
	// MinM and MaxM bound the GF(2^m) extension degree.
	MinM = 3
	MaxM = 14
)

// CheckParams validates (m, t) against the BCH code bounds before any
// table or generator construction: m must name a supported field, t must be
// at least 1, and the designed distance 2t+1 must leave room for at least
// one message bit (a loose necessary bound checked exactly by NewBCH, which
// still fails cleanly for codes that pass here but collapse to k ≤ 0).
func CheckParams(m, t int) error {
	if m < MinM || m > MaxM {
		return &ParamError{M: m, T: t, Reason: fmt.Sprintf("m outside [%d, %d]", MinM, MaxM)}
	}
	if t < 1 {
		return &ParamError{M: m, T: t, Reason: "t must be >= 1"}
	}
	n := (1 << uint(m)) - 1
	if 2*t >= n {
		return &ParamError{M: m, T: t, Reason: fmt.Sprintf("2t = %d leaves no message bits in a length-%d code", 2*t, n)}
	}
	return nil
}
