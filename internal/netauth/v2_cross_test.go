package netauth

// Cross-version compatibility: every pairing of protocol versions across
// client, server, and gateway must either interoperate or degrade into a
// clean, classified error — never a hang, never a silent downgrade when
// the caller forbade one, and never a spurious downgrade triggered by a
// transient refusal or a corrupted negotiation reply.

import (
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/faultnet"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/telemetry"
	"xorpuf/internal/wire"
)

// TestV1ClientAgainstV2Server: a JSON client must not notice that the
// server grew a second protocol — the first-byte sniff routes it to the
// v1 path and the per-version counters say so.
func TestV1ClientAgainstV2Server(t *testing.T) {
	tel := telemetry.NewRegistry()
	addr, _, chip := startServerConfigured(t, 30, func(s *Server) { s.SetTelemetry(tel) })
	res, err := Authenticate(addr, "chip-A", chip, silicon.Nominal, 5*time.Second)
	if err != nil || !res.Approved {
		t.Fatalf("v1 client against v2-enabled server: %+v, %v", res, err)
	}
	snap := tel.Snapshot()
	if snap.Counters["netauth_sessions_v1_total"] != 1 || snap.Counters["netauth_sessions_v2_total"] != 0 {
		t.Errorf("version counters v1=%d v2=%d, want 1/0",
			snap.Counters["netauth_sessions_v1_total"], snap.Counters["netauth_sessions_v2_total"])
	}
}

// TestV2ClientAgainstV1OnlyServer: negotiation against a server with v2
// disabled must fall back to the JSON protocol (without burning a retry
// attempt on the discovery), and RequireV2 must turn the same situation
// into a terminal error.
func TestV2ClientAgainstV1OnlyServer(t *testing.T) {
	tel := telemetry.NewRegistry()
	addr, _, chip := startServerConfigured(t, 30, func(s *Server) {
		s.SetV2(false)
		s.SetTelemetry(tel)
	})

	c := &V2Client{Addr: addr, ChipID: "chip-A", Device: chip, Cond: silicon.Nominal,
		Policy: RetryPolicy{MaxAttempts: 1}}
	defer c.Close()
	res, err := c.AuthenticateBatch(context.Background(), 2)
	if err != nil {
		t.Fatalf("fallback batch: %v", err)
	}
	if !res[0].Approved || !res[1].Approved {
		t.Fatalf("fallback results: %+v", res)
	}
	if !c.FellBack() {
		t.Fatal("client did not record the v1 fallback")
	}
	// A later call sticks with v1 — no renegotiation churn.
	if _, err := c.Authenticate(context.Background()); err != nil {
		t.Fatalf("post-fallback session: %v", err)
	}
	snap := tel.Snapshot()
	if snap.Counters["netauth_sessions_v2_total"] != 0 {
		t.Errorf("v1-only server recorded %d v2 sessions", snap.Counters["netauth_sessions_v2_total"])
	}

	strict := &V2Client{Addr: addr, ChipID: "chip-A", Device: chip, Cond: silicon.Nominal,
		RequireV2: true, Policy: RetryPolicy{MaxAttempts: 3}}
	defer strict.Close()
	if _, err := strict.Authenticate(context.Background()); err == nil ||
		!errors.Is(err, errDowngrade) {
		t.Fatalf("RequireV2 against v1-only server: err = %v, want downgrade refusal", err)
	}
}

// TestBusyRefusalIsNotADowngrade: a v2-capable server refusing at the
// connection limit answers in JSON (it refused before sniffing the
// version), and the v2 client must treat that as a transient busy — NOT
// as evidence the server only speaks v1.
func TestBusyRefusalIsNotADowngrade(t *testing.T) {
	addr, srv, chip := startServer(t, 30)
	srv.SetMaxConns(1)

	// Occupy the only slot with an idle connection.
	hog, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the server admit the hog

	c := &V2Client{Addr: addr, ChipID: "chip-A", Device: chip, Cond: silicon.Nominal,
		RequireV2: true, Policy: RetryPolicy{MaxAttempts: 1}}
	defer c.Close()
	_, err = c.Authenticate(context.Background())
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != CodeBusy || !pe.Retryable {
		t.Fatalf("err = %v, want retryable busy", err)
	}
	if c.FellBack() {
		t.Fatal("busy refusal triggered a v1 downgrade")
	}
	hog.Close()

	// With the slot free, the same client's retry succeeds over v2.
	c.Policy = RetryPolicy{MaxAttempts: 5, BaseDelay: 20 * time.Millisecond,
		MaxDelay: 200 * time.Millisecond, Multiplier: 2, Jitter: 0.3}
	res, err := c.Authenticate(context.Background())
	if err != nil || !res.Approved {
		t.Fatalf("post-busy retry: %+v, %v", res, err)
	}
}

// TestCrossVersionThroughGateway: both protocol versions route through
// one gateway to the same backend, each answered in its own format.
func TestCrossVersionThroughGateway(t *testing.T) {
	addr, _, chip := startServer(t, 20)
	gw, err := NewGateway([]GatewayShard{{Name: "s0", Addrs: []string{addr}}}, GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(gln) //nolint:errcheck
	defer gw.Close()
	gaddr := gln.Addr().String()

	res, err := Authenticate(gaddr, "chip-A", chip, silicon.Nominal, 5*time.Second)
	if err != nil || !res.Approved {
		t.Fatalf("v1 through gateway: %+v, %v", res, err)
	}

	before := gatewaySessionsV2.Value()
	c := &V2Client{Addr: gaddr, ChipID: "chip-A", Device: chip, Cond: silicon.Nominal,
		RequireV2: true}
	defer c.Close()
	batch, err := c.AuthenticateBatch(context.Background(), 3)
	if err != nil {
		t.Fatalf("v2 through gateway: %v", err)
	}
	for i, r := range batch {
		if !r.Approved {
			t.Fatalf("v2 stream %d through gateway denied", i)
		}
	}
	if got := gatewaySessionsV2.Value(); got != before+1 {
		t.Errorf("gateway v2 session counter moved %d, want 1 (one connection)", got-before)
	}

	// An unroutable chip gets the gateway's own refusal in v2 format.
	bad := &V2Client{Addr: gaddr, ChipID: "", Device: chip, Cond: silicon.Nominal,
		RequireV2: true, Policy: RetryPolicy{MaxAttempts: 1}}
	defer bad.Close()
	_, err = bad.Authenticate(context.Background())
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != CodeBadMessage {
		t.Fatalf("empty chip through gateway: err = %v, want v2 bad_message", err)
	}
	if bad.FellBack() {
		t.Fatal("gateway refusal triggered a v1 downgrade")
	}
}

// truncatingListener accepts one connection, reads the client's opening
// bytes, writes a partial (or corrupted) v2 frame, and slams the
// connection — the hostile-negotiation case.
func serveTruncated(t *testing.T, reply []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				buf := make([]byte, 4096)
				conn.SetReadDeadline(time.Now().Add(time.Second))
				conn.Read(buf)    //nolint:errcheck
				conn.Write(reply) //nolint:errcheck
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestNegotiationTruncatedOrCorruptedIsRetryable: a half-delivered or
// CRC-broken first reply must classify as transient (the device retries
// and may reach a healthy replica) and must never read as a downgrade.
func TestNegotiationTruncatedOrCorruptedIsRetryable(t *testing.T) {
	hello := wire.AppendFrame(nil, &wire.Msg{Type: wire.TChallenges, Stream: 1,
		Session: make([]byte, wire.SessionLen), Width: 4, Count: 2, Packed: []byte{0xFF}})
	corrupted := append([]byte(nil), hello...)
	corrupted[len(corrupted)-1] ^= 0x40 // break the CRC

	cases := []struct {
		name  string
		reply []byte
	}{
		{"truncated", hello[:5]},
		{"corrupted", corrupted},
		{"empty_close", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := serveTruncated(t, tc.reply)
			c := &V2Client{Addr: addr, ChipID: "chip-A", Device: zeroDevice{},
				Cond: silicon.Nominal, Timeout: 2 * time.Second,
				Policy: RetryPolicy{MaxAttempts: 1}}
			defer c.Close()
			_, err := c.Authenticate(context.Background())
			if err == nil {
				t.Fatal("expected an error from a mangled negotiation reply")
			}
			if !Transient(err) {
				t.Fatalf("mangled negotiation reply classified terminal: %v", err)
			}
			if c.FellBack() {
				t.Fatal("mangled negotiation reply read as a v1 downgrade")
			}
		})
	}
}

// TestV2ThroughChaosLink drives pipelined v2 batches across a faultnet
// transport injecting resets, stalls, and corruption.  Retries must ride
// out the faults, corruption must never flip a verdict (the frame CRC
// catches it first), and a fault must never masquerade as a downgrade.
func TestV2ThroughChaosLink(t *testing.T) {
	const (
		rounds     = 30
		batch      = 4
		msgTimeout = 150 * time.Millisecond
	)
	baseline := runtime.NumGoroutine()
	chip := silicon.NewChip(rng.New(1), silicon.DefaultParams(), 4)
	cfg := core.DefaultEnrollConfig()
	cfg.TrainingSize = 2000
	cfg.ValidationSize = 5000
	enr, err := core.EnrollChip(chip, rng.New(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(10, 3)
	if err := srv.Register("chip-A", enr.Model); err != nil {
		t.Fatal(err)
	}

	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := faultnet.WrapListener(ln2, faultnet.Config{
		Seed:        11,
		ResetProb:   0.04,
		StallProb:   0.04,
		Stall:       250 * time.Millisecond,
		CorruptProb: 0.05,
		MaxLatency:  2 * time.Millisecond,
	})
	go srv.Serve(fln) //nolint:errcheck

	policy := RetryPolicy{MaxAttempts: 10, BaseDelay: 2 * time.Millisecond,
		MaxDelay: 20 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
	approvedBatches, terminal := 0, 0
	for i := 0; i < rounds; i++ {
		c := &V2Client{Addr: ln2.Addr().String(), ChipID: "chip-A", Device: chip,
			Cond: silicon.Nominal, Timeout: msgTimeout, Policy: policy,
			RequireV2: true, Jitter: rng.New(uint64(5000 + i))}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		res, err := c.AuthenticateBatch(ctx, batch)
		cancel()
		c.Close()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			t.Fatalf("round %d hung past the outer deadline", i)
		case errors.Is(err, errDowngrade):
			t.Fatalf("round %d: chaos read as downgrade: %v", i, err)
		case err != nil:
			terminal++
		default:
			for j, r := range res {
				if !r.Approved {
					t.Fatalf("round %d stream %d: genuine device denied (%d mismatches) — "+
						"corruption leaked through the CRC", i, j, r.Mismatches)
				}
			}
			approvedBatches++
		}
	}
	if approvedBatches < rounds*8/10 {
		t.Errorf("only %d/%d batches approved (%d terminal) — retries not riding out faults",
			approvedBatches, rounds, terminal)
	}
	t.Logf("chaos v2: %d/%d batches approved, %d terminal", approvedBatches, rounds, terminal)

	srv.Close()
	waitGoroutines(t, baseline)
}
