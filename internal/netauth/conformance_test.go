package netauth

// Differential v1/v2 conformance suite: every decision the server can
// reach — approve, deny, throttle, lockout, quarantine, migrating, moved,
// key exchange success and key mismatch — is driven twice, through the
// JSON protocol and through the binary protocol, against two servers
// built from identical seeds.  The observable outcomes (verdicts, denial
// codes, retryability, mismatch counts), the challenge-burn accounting,
// and the byte-exact WAL append streams must agree.  The wire format is
// allowed to change; the authentication semantics are not.

import (
	"bufio"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/keyex"
	"xorpuf/internal/registry"
	"xorpuf/internal/silicon"
	"xorpuf/internal/wire"
)

// walRec is one captured WAL append.
type walRec struct {
	typ     byte
	payload string
}

// walCapture tails a registry's append stream.
type walCapture struct {
	mu   sync.Mutex
	recs []walRec
}

func (w *walCapture) observe(_ uint64, typ byte, payload []byte) {
	w.mu.Lock()
	w.recs = append(w.recs, walRec{typ: typ, payload: string(payload)})
	w.mu.Unlock()
}

func (w *walCapture) snapshot() []walRec {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]walRec(nil), w.recs...)
}

// confFixture is one server under test, with its WAL tap.
type confFixture struct {
	addr  string
	srv   *Server
	model *core.ChipModel
	wal   *walCapture
}

const confChip = "chip-A"

// newConfFixture builds a deterministic server: synthetic model (no
// silicon, no randomness beyond the fixed seeds), seeded registry, WAL
// tap attached before any session traffic.
func newConfFixture(t *testing.T, numChallenges int) *confFixture {
	t.Helper()
	model := benchChipModel(7, 4, 64)
	reg, err := registry.Open("", registry.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	if err := reg.Register(confChip, model, 0); err != nil {
		t.Fatal(err)
	}
	srv := NewServerWithRegistry(numChallenges, 7, reg)
	wal := &walCapture{}
	reg.AddAppendObserver(wal.observe)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(srv.Close)
	return &confFixture{addr: ln.Addr().String(), srv: srv, model: model, wal: wal}
}

// confOutcome is the protocol-independent shape of one session's result.
type confOutcome struct {
	kind        string // "approved", "denied", "error"
	code        string
	retryable   bool
	hasRedirect bool
	mismatches  int
	challenges  int
}

func outcomeOf(res Result, err error) confOutcome {
	if err != nil {
		o := confOutcome{kind: "error"}
		var pe *ProtocolError
		if errors.As(err, &pe) {
			o.code = pe.Code
			o.retryable = pe.Retryable
			o.hasRedirect = pe.Redirect != ""
		}
		return o
	}
	o := confOutcome{mismatches: res.Mismatches, challenges: res.Challenges}
	if res.Approved {
		o.kind = "approved"
	} else {
		o.kind = "denied"
	}
	return o
}

// confDriver runs sessions in one protocol version.
type confDriver struct {
	name string
	// auth runs one authentication session for dev against the fixture.
	auth func(t *testing.T, f *confFixture, dev core.Device) confOutcome
	// keyexZeroMAC runs a raw handshake that answers the offer with an
	// all-zero confirmation MAC and returns the structured denial.
	keyexZeroMAC func(t *testing.T, f *confFixture) confOutcome
	// establish runs a full key exchange and one encrypted auth inside it.
	establish func(t *testing.T, f *confFixture, dev core.Device) (confOutcome, confOutcome)
}

func v1Driver() confDriver {
	mk := func(f *confFixture, dev core.Device) *Client {
		return &Client{Addr: f.addr, ChipID: confChip, Device: dev,
			Cond: silicon.Nominal, Policy: RetryPolicy{MaxAttempts: 1}}
	}
	return confDriver{
		name: "v1",
		auth: func(t *testing.T, f *confFixture, dev core.Device) confOutcome {
			res, err := mk(f, dev).Authenticate(context.Background())
			return outcomeOf(res, err)
		},
		keyexZeroMAC: func(t *testing.T, f *confFixture) confOutcome {
			t.Helper()
			conn, err := net.Dial("tcp", f.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			send := func(m message) {
				b, err := encodeFrame(m)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := conn.Write(b); err != nil {
					t.Fatal(err)
				}
			}
			send(message{Type: "keyex_init", ChipID: confChip,
				Caps: []string{keyex.CipherChaCha20Poly1305}})
			offer, _, err := readMessage(r, "keyex_offer")
			if err != nil {
				return outcomeOf(Result{}, err)
			}
			send(message{Type: "keyex_confirm", Session: offer.Session,
				MAC: hex.EncodeToString(make([]byte, 32))})
			_, _, err = readMessage(r, "keyex_accept")
			return outcomeOf(Result{}, err)
		},
		establish: func(t *testing.T, f *confFixture, dev core.Device) (confOutcome, confOutcome) {
			t.Helper()
			c := mk(f, dev)
			c.Timeout = 10 * time.Second
			ss, err := c.Establish(context.Background())
			if err != nil {
				return outcomeOf(Result{}, err), confOutcome{}
			}
			defer ss.Close()
			est := confOutcome{kind: "key_established", challenges: ss.Result.Challenges}
			res, err := ss.Authenticate()
			return est, outcomeOf(res, err)
		},
	}
}

func v2Driver() confDriver {
	mk := func(f *confFixture, dev core.Device) *V2Client {
		return &V2Client{Addr: f.addr, ChipID: confChip, Device: dev,
			Cond: silicon.Nominal, Policy: RetryPolicy{MaxAttempts: 1}, RequireV2: true}
	}
	return confDriver{
		name: "v2",
		auth: func(t *testing.T, f *confFixture, dev core.Device) confOutcome {
			c := mk(f, dev)
			defer c.Close()
			res, err := c.Authenticate(context.Background())
			return outcomeOf(res, err)
		},
		keyexZeroMAC: func(t *testing.T, f *confFixture) confOutcome {
			t.Helper()
			conn, err := net.Dial("tcp", f.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			send := func(m *wire.Msg) {
				b := wire.AppendFrame(nil, m)
				if _, err := conn.Write(b); err != nil {
					t.Fatal(err)
				}
			}
			read := func() (*wire.Msg, error) {
				raw, err := wire.ReadRawFrame(br)
				if err != nil {
					return nil, err
				}
				var m wire.Msg
				if err := wire.Decode(raw, &m); err != nil {
					return nil, err
				}
				if m.Type == wire.TError {
					return nil, &ProtocolError{Code: codeFromByte(m.Code),
						Message: m.ErrMsg, Retryable: m.Retryable, Redirect: m.Redirect}
				}
				return &m, nil
			}
			send(&wire.Msg{Type: wire.TKeyexInit, ChipID: confChip,
				Caps: wire.CapChaCha20Poly1305})
			offer, err := read()
			if err != nil {
				return outcomeOf(Result{}, err)
			}
			send(&wire.Msg{Type: wire.TKeyexConfirm,
				Session: append([]byte(nil), offer.Session...),
				MAC:     make([]byte, wire.MACLen)})
			_, err = read()
			return outcomeOf(Result{}, err)
		},
		establish: func(t *testing.T, f *confFixture, dev core.Device) (confOutcome, confOutcome) {
			t.Helper()
			c := mk(f, dev)
			c.Timeout = 10 * time.Second
			defer c.Close()
			ss, err := c.Establish(context.Background())
			if err != nil {
				return outcomeOf(Result{}, err), confOutcome{}
			}
			defer ss.Close()
			est := confOutcome{kind: "key_established", challenges: ss.Result.Challenges}
			res, err := ss.Authenticate()
			return est, outcomeOf(res, err)
		},
	}
}

// confScenario drives one decision path and returns its outcome script.
type confScenario struct {
	name string
	prep func(t *testing.T, f *confFixture)
	run  func(t *testing.T, f *confFixture, d confDriver) []confOutcome
}

func confScenarios() []confScenario {
	genuine := func(f *confFixture) core.Device { return modelAnswerDevice{m: f.model} }
	return []confScenario{
		{
			name: "approve",
			run: func(t *testing.T, f *confFixture, d confDriver) []confOutcome {
				return []confOutcome{d.auth(t, f, genuine(f))}
			},
		},
		{
			name: "deny_then_lockout",
			prep: func(t *testing.T, f *confFixture) { f.srv.SetLockout(2) },
			run: func(t *testing.T, f *confFixture, d confDriver) []confOutcome {
				return []confOutcome{
					d.auth(t, f, oneDevice{}),
					d.auth(t, f, oneDevice{}),
					d.auth(t, f, oneDevice{}), // locked out, terminal, burns nothing
				}
			},
		},
		{
			name: "throttle",
			prep: func(t *testing.T, f *confFixture) { f.srv.SetThrottle(time.Hour) },
			run: func(t *testing.T, f *confFixture, d confDriver) []confOutcome {
				return []confOutcome{
					d.auth(t, f, genuine(f)),
					d.auth(t, f, genuine(f)), // inside the throttle window
				}
			},
		},
		{
			name: "quarantine",
			run: func(t *testing.T, f *confFixture, d confDriver) []confOutcome {
				var out []confOutcome
				// Sustained drift quarantines the chip; the script captures
				// the denials, the first quarantined refusal, and a probe
				// confirming the refusal is stable.
				for i := 0; i < 40; i++ {
					o := d.auth(t, f, oneDevice{})
					out = append(out, o)
					if o.code == CodeQuarantined {
						break
					}
				}
				out = append(out, d.auth(t, f, genuine(f)))
				return out
			},
		},
		{
			name: "migrating",
			prep: func(t *testing.T, f *confFixture) {
				if _, err := f.srv.Registry().SetRangeFence("m1", confChip, confChip+"~"); err != nil {
					t.Fatal(err)
				}
			},
			run: func(t *testing.T, f *confFixture, d confDriver) []confOutcome {
				return []confOutcome{d.auth(t, f, genuine(f))}
			},
		},
		{
			name: "moved",
			prep: func(t *testing.T, f *confFixture) {
				reg := f.srv.Registry()
				if _, _, _, err := reg.RangeSnapshot(confChip, confChip+"~"); err != nil {
					t.Fatal(err)
				}
				if err := reg.CutoverSource("m1", 1, confChip, confChip+"~", "203.0.113.9:7"); err != nil {
					t.Fatal(err)
				}
			},
			run: func(t *testing.T, f *confFixture, d confDriver) []confOutcome {
				return []confOutcome{d.auth(t, f, genuine(f))}
			},
		},
		{
			name: "keyex_ok",
			prep: func(t *testing.T, f *confFixture) {
				if err := f.srv.SetKeyExchange(keyex.Config{M: 7, T: 8}); err != nil {
					t.Fatal(err)
				}
			},
			run: func(t *testing.T, f *confFixture, d confDriver) []confOutcome {
				est, auth := d.establish(t, f, genuine(f))
				return []confOutcome{est, auth}
			},
		},
		{
			name: "keyex_mismatch",
			prep: func(t *testing.T, f *confFixture) {
				if err := f.srv.SetKeyExchange(keyex.Config{M: 7, T: 8}); err != nil {
					t.Fatal(err)
				}
			},
			run: func(t *testing.T, f *confFixture, d confDriver) []confOutcome {
				return []confOutcome{d.keyexZeroMAC(t, f)}
			},
		},
	}
}

// TestConformanceV1V2 is the differential matrix: identical seeded
// scenario scripts through both protocol versions must produce identical
// outcome scripts, identical challenge-burn accounting, identical verdict
// statistics, and byte-identical WAL append streams.
func TestConformanceV1V2(t *testing.T) {
	for _, sc := range confScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			type arm struct {
				f   *confFixture
				out []confOutcome
			}
			run := func(d confDriver) arm {
				f := newConfFixture(t, 16)
				if sc.prep != nil {
					sc.prep(t, f)
				}
				return arm{f: f, out: sc.run(t, f, d)}
			}
			a1 := run(v1Driver())
			a2 := run(v2Driver())

			if len(a1.out) != len(a2.out) {
				t.Fatalf("script lengths differ: v1=%d v2=%d\nv1=%+v\nv2=%+v",
					len(a1.out), len(a2.out), a1.out, a2.out)
			}
			for i := range a1.out {
				if a1.out[i] != a2.out[i] {
					t.Errorf("step %d: v1=%+v v2=%+v", i, a1.out[i], a2.out[i])
				}
			}

			s1, s2 := a1.f.srv.ChipStatus(confChip), a2.f.srv.ChipStatus(confChip)
			if s1.Issued != s2.Issued {
				t.Errorf("issued challenges: v1=%d v2=%d", s1.Issued, s2.Issued)
			}
			if s1.Locked != s2.Locked || s1.ConsecutiveDenials != s2.ConsecutiveDenials {
				t.Errorf("abuse state: v1={locked=%v denials=%d} v2={locked=%v denials=%d}",
					s1.Locked, s1.ConsecutiveDenials, s2.Locked, s2.ConsecutiveDenials)
			}
			if s1.Health != s2.Health {
				t.Errorf("health: v1=%v v2=%v", s1.Health, s2.Health)
			}
			ap1, de1 := a1.f.srv.Stats()
			ap2, de2 := a2.f.srv.Stats()
			if ap1 != ap2 || de1 != de2 {
				t.Errorf("stats: v1=%d/%d v2=%d/%d", ap1, de1, ap2, de2)
			}

			w1, w2 := a1.f.wal.snapshot(), a2.f.wal.snapshot()
			if len(w1) != len(w2) {
				t.Fatalf("WAL lengths differ: v1=%d v2=%d (types v1=%v v2=%v)",
					len(w1), len(w2), walTypes(w1), walTypes(w2))
			}
			for i := range w1 {
				if w1[i].typ != w2[i].typ {
					t.Fatalf("WAL record %d type: v1=%d v2=%d", i, w1[i].typ, w2[i].typ)
				}
				if w1[i].payload != w2[i].payload {
					t.Errorf("WAL record %d (type %d) payloads differ:\nv1=%s\nv2=%s",
						i, w1[i].typ, hex.EncodeToString([]byte(w1[i].payload)),
						hex.EncodeToString([]byte(w2[i].payload)))
				}
			}
		})
	}
}

func walTypes(recs []walRec) []int {
	out := make([]int, len(recs))
	for i, r := range recs {
		out[i] = int(r.typ)
	}
	return out
}

// TestConformanceBatchedBurn pins the one intentional WAL-shape
// difference: a v2 batch of k sessions burns k×N challenges through ONE
// issuance record (one quorum wait, one fsync), where v1 writes k.  The
// union of burned challenge words must still be identical — batching
// changes durability granularity, never the never-reuse guarantee.
func TestConformanceBatchedBurn(t *testing.T) {
	fv1 := newConfFixture(t, 16)
	fv2 := newConfFixture(t, 16)
	const k = 5

	for i := 0; i < k; i++ {
		c := &Client{Addr: fv1.addr, ChipID: confChip,
			Device: modelAnswerDevice{m: fv1.model}, Cond: silicon.Nominal,
			Policy: RetryPolicy{MaxAttempts: 1}}
		if res, err := c.Authenticate(context.Background()); err != nil || !res.Approved {
			t.Fatalf("v1 session %d: %+v %v", i, res, err)
		}
	}
	c2 := &V2Client{Addr: fv2.addr, ChipID: confChip,
		Device: modelAnswerDevice{m: fv2.model}, Cond: silicon.Nominal, RequireV2: true}
	defer c2.Close()
	res, err := c2.AuthenticateBatch(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Approved {
			t.Fatalf("v2 stream %d denied", i)
		}
	}

	if s1, s2 := fv1.srv.ChipStatus(confChip).Issued, fv2.srv.ChipStatus(confChip).Issued; s1 != s2 {
		t.Errorf("issued: v1=%d v2=%d", s1, s2)
	}
	issued := func(recs []walRec) int {
		n := 0
		for _, r := range recs {
			if r.typ == 2 { // recIssued
				n++
			}
		}
		return n
	}
	if got := issued(fv1.wal.snapshot()); got != k {
		t.Errorf("v1 wrote %d issuance records, want %d", got, k)
	}
	if got := issued(fv2.wal.snapshot()); got != 1 {
		t.Errorf("v2 batch wrote %d issuance records, want 1", got)
	}
}

var _ = fmt.Sprintf // keep fmt imported if assertions above change
