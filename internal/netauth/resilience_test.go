package netauth

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// waitGoroutines polls until the goroutine count drops back to at most
// want, failing the test if it never does.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, want ≤ %d", runtime.NumGoroutine(), want)
}

func TestReadLineCapsOversizedFrames(t *testing.T) {
	huge := append(bytes.Repeat([]byte{'x'}, maxLineBytes+4096), '\n')
	_, err := readLine(bufio.NewReader(bytes.NewReader(huge)))
	if !errors.Is(err, errLineTooLong) {
		t.Fatalf("err = %v, want errLineTooLong", err)
	}
	// A line exactly at the cap (including '\n') still parses.
	ok := append(bytes.Repeat([]byte{'y'}, maxLineBytes-1), '\n')
	line, err := readLine(bufio.NewReader(bytes.NewReader(ok)))
	if err != nil || len(line) != maxLineBytes {
		t.Fatalf("cap-sized line: len=%d err=%v", len(line), err)
	}
}

func TestOversizedHelloTerminatedCleanly(t *testing.T) {
	addr, _, _ := startServer(t, 5)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Stream junk without a newline; the server must cut us off at the
	// frame cap instead of buffering without bound.
	junk := bytes.Repeat([]byte{'z'}, 64<<10)
	wrote := 0
	conn.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	for wrote < maxLineBytes+(128<<10) {
		n, err := conn.Write(junk)
		wrote += n
		if err != nil {
			return // server tore the session down — the defended outcome
		}
	}
	// If every write was accepted, the server must still answer with an
	// error (or a reset) rather than keep reading forever.
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		return
	}
	var m message
	if json.Unmarshal(line, &m) == nil && m.Type != "error" {
		t.Errorf("oversized hello got non-error reply %+v", m)
	}
}

// rawSession dials and performs the hello exchange, returning the decoder
// state for protocol-violation probes.
func rawSession(t *testing.T, addr string) (net.Conn, *json.Encoder, *bufio.Reader, *message) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	enc := json.NewEncoder(conn)
	r := bufio.NewReader(conn)
	if err := enc.Encode(message{Type: "hello", ChipID: "chip-A"}); err != nil {
		t.Fatal(err)
	}
	ch, _, err := readMessage(r, "challenges")
	if err != nil {
		t.Fatal(err)
	}
	return conn, enc, r, ch
}

// expectProtocolError reads the next frame and asserts it is an error with
// the given code and retryability.
func expectProtocolError(t *testing.T, r *bufio.Reader, code string, retryable bool) *ProtocolError {
	t.Helper()
	_, _, err := readMessage(r, "verdict")
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want ProtocolError", err)
	}
	if pe.Code != code || pe.Retryable != retryable {
		t.Fatalf("got [%s, retryable=%v] %q, want [%s, retryable=%v]",
			pe.Code, pe.Retryable, pe.Message, code, retryable)
	}
	return pe
}

func TestTruncatedJSONRejected(t *testing.T) {
	addr, _, _ := startServer(t, 5)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"type":"hello","chip_id":"chip-A"` + "\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	pe := expectProtocolError(t, r, CodeBadMessage, true)
	if !strings.Contains(pe.Message, "bad hello") {
		t.Errorf("message %q does not mention bad hello", pe.Message)
	}
}

func TestNonBitResponsesRejected(t *testing.T) {
	addr, _, _ := startServer(t, 5)
	_, enc, r, ch := rawSession(t, addr)
	resp := message{Type: "responses", Session: ch.Session, Responses: make([]uint8, len(ch.Challenges))}
	resp.Responses[2] = 7
	if err := enc.Encode(resp); err != nil {
		t.Fatal(err)
	}
	pe := expectProtocolError(t, r, CodeBadMessage, true)
	if !strings.Contains(pe.Message, "not a bit") {
		t.Errorf("message %q does not mention non-bit response", pe.Message)
	}
}

func TestDuplicateHelloRejected(t *testing.T) {
	addr, _, _ := startServer(t, 5)
	_, enc, r, _ := rawSession(t, addr)
	if err := enc.Encode(message{Type: "hello", ChipID: "chip-A"}); err != nil {
		t.Fatal(err)
	}
	pe := expectProtocolError(t, r, CodeBadMessage, true)
	if !strings.Contains(pe.Message, `unexpected message type "hello"`) {
		t.Errorf("message %q does not flag the duplicate hello", pe.Message)
	}
}

func TestSilentClientTimesOutWithoutLeak(t *testing.T) {
	addr, srv, _ := startServer(t, 5)
	srv.SetTimeout(150 * time.Millisecond)
	baseline := runtime.NumGoroutine()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Say nothing.  The per-message deadline must fire, the handler must
	// answer with an error frame and exit.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("expected an error frame after the deadline, got %v", err)
	}
	var m message
	if err := json.Unmarshal(line, &m); err != nil || m.Type != "error" {
		t.Fatalf("got %q, want an error frame", line)
	}
	conn.Close()
	waitGoroutines(t, baseline)
}

func TestVerdictDenialExplicitOnWire(t *testing.T) {
	addr, _, _ := startServer(t, 5)
	_, enc, r, ch := rawSession(t, addr)
	// Answer everything wrong is not guaranteed, but all-zeros and
	// all-ones cannot both be right; send all zeros and flip if approved.
	resp := message{Type: "responses", Session: ch.Session, Responses: make([]uint8, len(ch.Challenges))}
	if err := enc.Encode(resp); err != nil {
		t.Fatal(err)
	}
	line, err := readLine(r)
	if err != nil {
		t.Fatal(err)
	}
	var m message
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatal(err)
	}
	if m.Type != "verdict" {
		t.Fatalf("got %s frame, want verdict", m.Type)
	}
	// The denial fields must be spelled out on the wire, not omitted.
	if !bytes.Contains(line, []byte(`"approved":`)) || !bytes.Contains(line, []byte(`"mismatches":`)) {
		t.Errorf("verdict frame omits explicit fields: %s", line)
	}
	if !m.Approved && !bytes.Contains(line, []byte(`"approved":false`)) {
		t.Errorf("denied verdict not explicit: %s", line)
	}
}

func TestRetryClientRecoversFromTransientDialFailures(t *testing.T) {
	addr, _, chip := startServer(t, 30)
	dials := 0
	var d net.Dialer
	c := &Client{
		Addr: addr, ChipID: "chip-A", Device: chip, Cond: silicon.Nominal,
		Timeout: 5 * time.Second,
		Policy:  RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Jitter:  rng.New(1),
		DialContext: func(ctx context.Context, network, a string) (net.Conn, error) {
			dials++
			if dials <= 2 {
				return nil, errors.New("synthetic dial failure")
			}
			return d.DialContext(ctx, network, a)
		},
	}
	res, err := c.Authenticate(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved || res.Attempts != 3 {
		t.Errorf("result %+v, want approved on attempt 3", res)
	}
}

func TestTerminalErrorShortCircuitsRetries(t *testing.T) {
	addr, _, chip := startServer(t, 10)
	c := &Client{
		Addr: addr, ChipID: "no-such-chip", Device: chip, Cond: silicon.Nominal,
		Timeout: 5 * time.Second,
		Policy:  RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		Jitter:  rng.New(2),
	}
	res, err := c.Authenticate(context.Background())
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != CodeUnknownChip {
		t.Fatalf("err = %v, want unknown_chip ProtocolError", err)
	}
	if Transient(err) {
		t.Error("unknown_chip classified transient")
	}
	if res.Attempts != 1 {
		t.Errorf("terminal error took %d attempts, want 1 (no retries burned)", res.Attempts)
	}
}

func TestLockoutAfterConsecutiveDenials(t *testing.T) {
	const k = 3
	addr, srv, _ := startServer(t, 20)
	srv.SetLockout(k)
	impostor := silicon.NewChip(rng.New(999), silicon.DefaultParams(), 4)

	for i := 0; i < k; i++ {
		res, err := Authenticate(addr, "chip-A", impostor, silicon.Nominal, 5*time.Second)
		if err != nil {
			t.Fatalf("denial %d: %v", i+1, err)
		}
		if res.Approved {
			t.Fatalf("impostor approved on attempt %d", i+1)
		}
	}
	st := srv.ChipStatus("chip-A")
	if !st.Locked || st.ConsecutiveDenials != k {
		t.Fatalf("after %d denials: %+v, want locked", k, st)
	}
	burned := st.Issued

	// The locked chip gets a terminal error and burns no challenges.
	_, err := Authenticate(addr, "chip-A", impostor, silicon.Nominal, 5*time.Second)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != CodeLockedOut || pe.Retryable {
		t.Fatalf("locked chip err = %v, want terminal locked_out", err)
	}
	if got := srv.ChipStatus("chip-A").Issued; got != burned {
		t.Errorf("locked-out attempt burned challenges: %d → %d", burned, got)
	}

	// An operator unlock restores service.
	if !srv.Unlock("chip-A") {
		t.Fatal("Unlock reported chip not locked")
	}
	if _, err := Authenticate(addr, "chip-A", impostor, silicon.Nominal, 5*time.Second); err != nil {
		t.Fatalf("after unlock: %v", err)
	}
}

func TestThrottleEnforcesMinimumInterval(t *testing.T) {
	addr, srv, chip := startServer(t, 10)
	srv.SetThrottle(time.Hour)
	if _, err := Authenticate(addr, "chip-A", chip, silicon.Nominal, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	_, err := Authenticate(addr, "chip-A", chip, silicon.Nominal, 5*time.Second)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != CodeThrottled || !pe.Retryable {
		t.Fatalf("err = %v, want retryable throttled", err)
	}
}

func TestMaxConnsRefusesWithBusy(t *testing.T) {
	addr, srv, chip := startServer(t, 10)
	srv.SetMaxConns(1)
	srv.SetTimeout(2 * time.Second)

	// Occupy the only slot with a half-open session.
	hog, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer hog.Close()
	if err := json.NewEncoder(hog).Encode(message{Type: "hello", ChipID: "chip-A"}); err != nil {
		t.Fatal(err)
	}
	// Wait until the hog's session reaches the server handler.
	if _, _, err := readMessage(bufio.NewReader(hog), "challenges"); err != nil {
		t.Fatal(err)
	}

	_, err = Authenticate(addr, "chip-A", chip, silicon.Nominal, 2*time.Second)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != CodeBusy || !pe.Retryable {
		t.Fatalf("err = %v, want retryable busy", err)
	}
}

func TestChallengeBudgetExhaustionIsTerminal(t *testing.T) {
	chip := silicon.NewChip(rng.New(1), silicon.DefaultParams(), 4)
	cfg := core.DefaultEnrollConfig()
	cfg.TrainingSize = 2000
	cfg.ValidationSize = 5000
	enr, err := core.EnrollChip(chip, rng.New(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(60, 3)
	srv.SetChallengeBudget(120) // exactly two sessions' worth
	if err := srv.Register("chip-A", enr.Model); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(srv.Close)
	addr := ln.Addr().String()

	for i := 0; i < 2; i++ {
		if _, err := Authenticate(addr, "chip-A", chip, silicon.Nominal, 5*time.Second); err != nil {
			t.Fatalf("session %d: %v", i+1, err)
		}
	}
	st := srv.ChipStatus("chip-A")
	if st.Issued != 120 || st.Remaining != 0 {
		t.Fatalf("budget accounting off: %+v", st)
	}
	_, err = Authenticate(addr, "chip-A", chip, silicon.Nominal, 5*time.Second)
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != CodeSelectionFailed || pe.Retryable {
		t.Fatalf("err = %v, want terminal selection_failed", err)
	}
}

func TestCloseForceClosesStragglers(t *testing.T) {
	addr, srv, _ := startServer(t, 10)
	srv.SetTimeout(time.Minute) // a straggler could hold a slot for ages
	srv.SetDrainTimeout(200 * time.Millisecond)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Reach the handler, then go silent so the session is in flight.
	if err := json.NewEncoder(conn).Encode(message{Type: "hello", ChipID: "chip-A"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readMessage(bufio.NewReader(conn), "challenges"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	srv.Close()
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("Close took %v despite 200ms drain deadline", d)
	}
}

func TestClientContextCancellation(t *testing.T) {
	// A listener that accepts and then never answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	chip := silicon.NewChip(rng.New(1), silicon.DefaultParams(), 4)
	c := &Client{
		Addr: ln.Addr().String(), ChipID: "chip-A", Device: chip, Cond: silicon.Nominal,
		Timeout: time.Minute, // cancellation, not the deadline, must end this
		Policy:  RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Jitter:  rng.New(3),
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Authenticate(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v to take effect", d)
	}
}

// Frame integrity: the faultnet chaos runs exposed that a corrupted byte
// inside a JSON key can survive json decoding (invalid UTF-8 becomes
// U+FFFD, unknown keys are dropped), turning line noise into a false
// "approved":false verdict.  Every frame therefore carries a CRC32 and
// decoding rejects unknown fields.
func TestFrameIntegrity(t *testing.T) {
	frame, err := encodeFrame(message{Type: "verdict", Approved: true, Mismatches: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Untampered frames round-trip.
	m, err := decodeFrame(bytes.TrimSuffix(frame, []byte{'\n'}))
	if err != nil {
		t.Fatalf("decodeFrame(untampered) = %v", err)
	}
	if !m.Approved || m.Mismatches != 3 {
		t.Fatalf("round-trip lost fields: %+v", m)
	}

	// Tamper a digit of "mismatches" so the JSON still parses with only
	// known fields — exactly the corruption json alone cannot catch.
	tampered := bytes.Replace(frame, []byte(`"mismatches":3`), []byte(`"mismatches":7`), 1)
	if bytes.Equal(tampered, frame) {
		t.Fatal("tamper target not found in frame")
	}
	if _, err := decodeFrame(bytes.TrimSuffix(tampered, []byte{'\n'})); err == nil {
		t.Fatal("decodeFrame accepted a tampered frame")
	} else if !strings.Contains(err.Error(), "integrity") {
		t.Fatalf("err = %v, want frame integrity failure", err)
	}

	// A key corrupted into an unknown field is rejected outright instead
	// of silently dropped (the original false-DENIED failure mode).
	mangled := bytes.Replace(frame, []byte(`"approved"`), []byte(`"app�oved"`), 1)
	if _, err := decodeFrame(bytes.TrimSuffix(mangled, []byte{'\n'})); err == nil {
		t.Fatal("decodeFrame accepted a frame with an unknown key")
	}

	// Legacy peers that omit crc are still accepted.
	legacy := []byte(`{"type":"verdict","approved":true,"mismatches":0}`)
	if m, err := decodeFrame(legacy); err != nil || !m.Approved {
		t.Fatalf("decodeFrame(legacy, no crc) = %+v, %v", m, err)
	}
}
