package netauth

import (
	"context"
	"net"
	"strconv"
	"testing"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/keyex"
	"xorpuf/internal/registry"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/telemetry"
	"xorpuf/internal/telemetry/dtrace"
)

// startMovedPair builds the post-migration topology of
// TestGatewayFollowsMovedRedirect: the source serve answers chip-A with a
// moved redirect to the destination serve, which owns the chip.  Returns
// both auth addresses.
func startMovedPair(t *testing.T, chip *silicon.Chip) (srcAddr, dstAddr string) {
	t.Helper()
	cfg := core.DefaultEnrollConfig()
	cfg.TrainingSize = 2000
	cfg.ValidationSize = 5000
	enr, err := core.EnrollChip(chip, rng.New(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srcReg, err := registry.Open("", registry.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dstReg, err := registry.Open("", registry.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := srcReg.Register("chip-A", enr.Model, 0); err != nil {
		t.Fatal(err)
	}
	snap, _, _, err := srcReg.RangeSnapshot("chip-A", "chip-B")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dstReg.InstallMigrating("m1", "chip-A", "chip-B", snap); err != nil {
		t.Fatal(err)
	}
	if _, err := dstReg.CutoverTarget("m1", 1); err != nil {
		t.Fatal(err)
	}
	srvDst := NewServerWithRegistry(5, 3, dstReg)
	lnDst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srvDst.Serve(lnDst) //nolint:errcheck
	t.Cleanup(srvDst.Close)
	if err := srcReg.CutoverSource("m1", 1, "chip-A", "chip-B", lnDst.Addr().String()); err != nil {
		t.Fatal(err)
	}
	srvSrc := NewServerWithRegistry(5, 3, srcReg)
	lnSrc, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srvSrc.Serve(lnSrc) //nolint:errcheck
	t.Cleanup(srvSrc.Close)
	return lnSrc.Addr().String(), lnDst.Addr().String()
}

// mintTrace fabricates a device-side trace context — what `puflab auth
// -trace` sends.  The minted span itself is never recorded anywhere (the
// device has no recorder to scrape); the server's spans parent to it.
func mintTrace() dtrace.Context {
	return dtrace.Context{Trace: dtrace.NewTraceID(), Span: dtrace.NewSpanID()}
}

// waitSpans polls dtrace.Default until the trace has at least n spans or the
// deadline passes.  The session span ends in a server-side defer that races
// the client's verdict read, so every assertion on recorded spans polls.
func waitSpans(t *testing.T, tid dtrace.TraceID, n int) []dtrace.Span {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans := dtrace.Default.ByTrace(tid)
		if len(spans) >= n {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s: %d spans recorded, want ≥ %d: %+v", tid, len(spans), n, spans)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func spanNamed(spans []dtrace.Span, name string) *dtrace.Span {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
	}
	return nil
}

// TestTraceV1SessionSpans: a traced v1 session records the full server-side
// subtree — netauth.session under the device's context, select and
// device_rtt under the session — plus the SessionTrace cross-link and the
// session-latency histogram exemplar.
func TestTraceV1SessionSpans(t *testing.T) {
	addr, srv, chip := startServer(t, 30)
	tc := mintTrace()
	c := &Client{
		Addr: addr, ChipID: "chip-A", Device: chip, Cond: silicon.Nominal,
		Timeout: 5 * time.Second, Trace: tc.String(),
	}
	res, err := c.Authenticate(context.Background())
	if err != nil || !res.Approved {
		t.Fatalf("traced session: %+v, %v", res, err)
	}

	spans := waitSpans(t, tc.Trace, 3)
	sess := spanNamed(spans, "netauth.session")
	if sess == nil {
		t.Fatalf("no netauth.session span in %+v", spans)
	}
	if sess.Parent != tc.Span {
		t.Errorf("session parent = %s, want the device span %s", sess.Parent, tc.Span)
	}
	if sess.Status != "ok" || sess.Attrs["chip"] != "chip-A" || sess.Attrs["proto"] != "v1" {
		t.Errorf("session span status=%q attrs=%v", sess.Status, sess.Attrs)
	}
	for _, name := range []string{"select", "device_rtt"} {
		child := spanNamed(spans, name)
		if child == nil {
			t.Fatalf("no %s span in %+v", name, spans)
		}
		if child.Parent != sess.ID {
			t.Errorf("%s parent = %s, want session span %s", name, child.Parent, sess.ID)
		}
	}

	// Cross-link: the SessionTrace carries the trace ID, so /traces rows
	// point into /trace/spans.
	recent := srv.Tracer().Recent(1)
	if len(recent) != 1 || recent[0].TraceID != tc.Trace.String() {
		t.Fatalf("SessionTrace.TraceID = %+v, want %s", recent, tc.Trace)
	}

	// Exemplar: the latency histogram names this trace.
	h := telemetry.Default.FindHistogram("netauth_session_seconds")
	if h == nil {
		t.Fatal("netauth_session_seconds not registered")
	}
	if trace, _ := h.Exemplar(); trace != tc.Trace.String() {
		t.Errorf("session histogram exemplar = %q, want %s", trace, tc.Trace)
	}
}

// TestTraceV2BatchSpans: a traced pipelined batch records one select span
// (with the batch size) and one netauth.session span per stream, all under
// the caller's context, and feeds the pipelined histogram's exemplar.
func TestTraceV2BatchSpans(t *testing.T) {
	addr, _, chip := startServer(t, 10)
	tc := mintTrace()
	c := &V2Client{
		Addr: addr, ChipID: "chip-A", Device: chip, Cond: silicon.Nominal,
		Timeout: 5 * time.Second, Trace: tc.String(),
	}
	defer c.Close()
	const batch = 3
	results, err := c.AuthenticateBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !res.Approved {
			t.Fatalf("stream %d denied: %+v", i, res)
		}
	}

	// batch sessions + 1 select + batch device_rtt.
	spans := waitSpans(t, tc.Trace, 2*batch+1)
	sel := spanNamed(spans, "select")
	if sel == nil || sel.Parent != tc.Span || sel.Attrs["batch"] != strconv.Itoa(batch) {
		t.Fatalf("select span %+v, want parent %s batch=%d", sel, tc.Span, batch)
	}
	var sessions int
	for _, s := range spans {
		if s.Name != "netauth.session" {
			continue
		}
		sessions++
		if s.Parent != tc.Span {
			t.Errorf("stream session parent = %s, want %s", s.Parent, tc.Span)
		}
		if s.Status != "ok" || s.Attrs["proto"] != "v2" || s.Attrs["stream"] == "" {
			t.Errorf("stream session status=%q attrs=%v", s.Status, s.Attrs)
		}
	}
	if sessions != batch {
		t.Errorf("%d netauth.session spans, want %d", sessions, batch)
	}
	h := telemetry.Default.FindHistogram("netauth_v2_pipelined_session_seconds")
	if h == nil {
		t.Fatal("netauth_v2_pipelined_session_seconds not registered")
	}
	if trace, _ := h.Exemplar(); trace != tc.Trace.String() {
		t.Errorf("pipelined histogram exemplar = %q, want %s", trace, tc.Trace)
	}
}

// TestTraceKeyexSpans: a traced key exchange records netauth.keyex with a
// keyex.derive child covering the burn + helper generation.
func TestTraceKeyexSpans(t *testing.T) {
	addr, _, chip := startKeyexServer(t, 20, keyex.Config{M: 7, T: 8})
	tc := mintTrace()
	c := keyexClient(addr, chip, silicon.Nominal)
	c.Trace = tc.String()
	ss, err := c.Establish(context.Background())
	if err != nil {
		t.Fatalf("Establish: %v", err)
	}
	_ = ss.Close()

	spans := waitSpans(t, tc.Trace, 2)
	sess := spanNamed(spans, "netauth.keyex")
	if sess == nil || sess.Parent != tc.Span {
		t.Fatalf("netauth.keyex span %+v, want parent %s", sess, tc.Span)
	}
	derive := spanNamed(spans, "keyex.derive")
	if derive == nil || derive.Parent != sess.ID {
		t.Fatalf("keyex.derive span %+v, want parent %s", derive, sess.ID)
	}
	if derive.Status != "ok" {
		t.Errorf("keyex.derive status = %q", derive.Status)
	}
}

// TestTraceHostileV1Values: malformed and oversized trace contexts in the
// v1 hello are dropped — the session authenticates exactly as if untraced,
// and the server records nothing for them.  The wire-level v2 twin lives in
// internal/wire/trace_ext_test.go.
func TestTraceHostileV1Values(t *testing.T) {
	addr, srv, chip := startServer(t, 20)
	big := make([]byte, 4096)
	for i := range big {
		big[i] = 'a'
	}
	cases := []struct {
		name  string
		trace string
	}{
		{"garbage", "not-a-trace"},
		{"missing_span", "00112233445566778899aabbccddeeff"},
		{"bad_separator", "00112233445566778899aabbccddeeff_0011223344556677"},
		{"non_hex", "zz112233445566778899aabbccddeeff-0011223344556677"},
		{"zero_ids", "00000000000000000000000000000000-0000000000000000"},
		{"oversized", string(big)},
		{"truncated", "00112233-00112233"},
	}
	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			c := &Client{
				Addr: addr, ChipID: "chip-A", Device: chip, Cond: silicon.Nominal,
				Timeout: 5 * time.Second, Trace: tcase.trace,
			}
			res, err := c.Authenticate(context.Background())
			if err != nil || !res.Approved {
				t.Fatalf("hostile trace %q broke the session: %+v, %v", tcase.trace, res, err)
			}
			recent := srv.Tracer().Recent(1)
			if len(recent) != 1 || recent[0].TraceID != "" {
				t.Fatalf("hostile trace %q leaked into SessionTrace: %+v", tcase.trace, recent)
			}
		})
	}
}

// TestGatewayTraceAdoptsDeviceContext: a traced session through the gateway
// produces one connected tree — gateway.session under the device's span,
// gateway.hop and the backend's netauth.session under gateway.session.
// (Gateway and backend share dtrace.Default in-process; across real
// processes `puflab trace collect` merges the two rings.)
func TestGatewayTraceAdoptsDeviceContext(t *testing.T) {
	addr, _, chip := startServer(t, 10)
	_, gwAddr := startGateway(t, []GatewayShard{
		{Name: "shard-0", Addrs: []string{addr}},
	}, GatewayConfig{})

	tc := mintTrace()
	c := &Client{
		Addr: gwAddr, ChipID: "chip-A", Device: chip, Cond: silicon.Nominal,
		Timeout: 10 * time.Second, Trace: tc.String(),
	}
	res, err := c.Authenticate(context.Background())
	if err != nil || !res.Approved {
		t.Fatalf("traced session via gateway: %+v, %v", res, err)
	}

	// gateway.session + gateway.hop + netauth.session + select + device_rtt.
	spans := waitSpans(t, tc.Trace, 5)
	gw := spanNamed(spans, "gateway.session")
	if gw == nil {
		t.Fatalf("no gateway.session span in %+v", spans)
	}
	if gw.Parent != tc.Span {
		t.Errorf("gateway.session parent = %s, want device span %s", gw.Parent, tc.Span)
	}
	if gw.Status != "ok" || gw.Attrs["chip"] != "chip-A" {
		t.Errorf("gateway.session status=%q attrs=%v", gw.Status, gw.Attrs)
	}
	hop := spanNamed(spans, "gateway.hop")
	if hop == nil || hop.Parent != gw.ID {
		t.Fatalf("gateway.hop span %+v, want parent %s", hop, gw.ID)
	}
	if hop.Attrs["backend"] == "" {
		t.Errorf("gateway.hop missing backend attr: %v", hop.Attrs)
	}
	sess := spanNamed(spans, "netauth.session")
	if sess == nil || sess.Parent != gw.ID {
		t.Fatalf("netauth.session %+v, want parent gateway.session %s", sess, gw.ID)
	}
}

// TestGatewayTraceMintsRootForUntracedDevice: a device that sends no trace
// context still gets a gateway-minted trace, so operators can find sessions
// that devices did not instrument.
func TestGatewayTraceMintsRootForUntracedDevice(t *testing.T) {
	addr, _, chip := startServer(t, 10)
	_, gwAddr := startGateway(t, []GatewayShard{
		{Name: "shard-0", Addrs: []string{addr}},
	}, GatewayConfig{})

	begin := time.Now()
	res, err := Authenticate(gwAddr, "chip-A", chip, silicon.Nominal, 10*time.Second)
	if err != nil || !res.Approved {
		t.Fatalf("untraced session via gateway: %+v, %v", res, err)
	}

	// Find the freshly minted root: the newest gateway.session span started
	// after this test began.  It must be a root (no parent) and the
	// backend's netauth.session must hang beneath it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var gw *dtrace.Span
		for _, s := range dtrace.Default.Spans() {
			if s.Name == "gateway.session" && !s.Start.Before(begin) {
				cp := s
				gw = &cp
				break
			}
		}
		if gw != nil {
			if !gw.Parent.IsZero() {
				t.Fatalf("minted gateway.session has parent %s, want root", gw.Parent)
			}
			spans := waitSpans(t, gw.Trace, 3)
			sess := spanNamed(spans, "netauth.session")
			if sess == nil || sess.Parent != gw.ID {
				t.Fatalf("netauth.session %+v, want parent minted span %s", sess, gw.ID)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("gateway never recorded a minted gateway.session span")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGatewayTraceRedirectHop: when the backend answers moved, the gateway
// records one hop per attempt — the first with status "redirect" and the
// redirect target, the second against the new owner.
func TestGatewayTraceRedirectHop(t *testing.T) {
	chip := silicon.NewChip(rng.New(1), silicon.DefaultParams(), 4)
	srcAddr, dstAddr := startMovedPair(t, chip)
	_, gwAddr := startGateway(t, []GatewayShard{
		{Name: "shard-0", Addrs: []string{srcAddr}},
	}, GatewayConfig{})

	tc := mintTrace()
	c := &Client{
		Addr: gwAddr, ChipID: "chip-A", Device: chip, Cond: silicon.Nominal,
		Timeout: 10 * time.Second, Trace: tc.String(),
	}
	res, err := c.Authenticate(context.Background())
	if err != nil || !res.Approved {
		t.Fatalf("redirected session: %+v, %v", res, err)
	}

	spans := waitSpans(t, tc.Trace, 4)
	var redirectHop, servedHop *dtrace.Span
	for i := range spans {
		if spans[i].Name != "gateway.hop" {
			continue
		}
		if spans[i].Status == "redirect" {
			redirectHop = &spans[i]
		} else {
			servedHop = &spans[i]
		}
	}
	if redirectHop == nil {
		t.Fatalf("no redirect hop in %+v", spans)
	}
	if redirectHop.Attrs["redirect"] != dstAddr {
		t.Errorf("redirect hop target = %q, want %s", redirectHop.Attrs["redirect"], dstAddr)
	}
	if servedHop == nil || servedHop.Status != "ok" {
		t.Fatalf("no ok hop after redirect: %+v", spans)
	}
}
