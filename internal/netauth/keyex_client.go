// Device side of the reverse fuzzy-extractor key exchange.  The device's
// share of the work is deliberately tiny: one XOR readout per challenge and
// a bounded-distance BCH decode — no code generation, no randomness, which
// is exactly why the reverse construction suits a constrained PUF token.
package netauth

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"time"

	"xorpuf/internal/keyex"
	"xorpuf/internal/wire"
)

// KeyexResult describes an established key-exchange session.
type KeyexResult struct {
	// Session is the server-assigned session identifier.
	Session string
	// Challenges is how many key-derivation challenges were burned.
	Challenges int
	// Corrected is how many bit errors the code-offset extractor fixed in
	// the device's noisy reading — a live reliability measurement.
	Corrected int
	// Cipher is the negotiated channel cipher; empty means the exchange
	// was confirm-only (mutual proof of key possession, no channel).
	Cipher string
}

// SecureSession is an established, mutually key-confirmed session.  When a
// cipher was negotiated it carries an AEAD-encrypted channel over the same
// connection; Authenticate and SendPayload then run the v1 JSON protocol
// inside it.  Not safe for concurrent use.  Close it when done.
type SecureSession struct {
	Result KeyexResult

	c    *Client
	conn net.Conn
	ch   *keyex.Channel // nil when no cipher was negotiated
	stop func() bool    // cancels the context watchdog on the conn
	bin  bool           // inner frames use the binary v2 codec
}

// Establish dials the server and runs the key exchange: it requests helper
// data, reads the chip once per challenge, reproduces the session key with
// the code-offset extractor, and exchanges key-confirmation MACs (device
// first).  On success the returned session holds the encrypted channel.
//
// Unlike Authenticate there is no retry loop: every handshake burns
// fresh challenges, so retrying is an explicit caller decision.
func (c *Client) Establish(ctx context.Context) (*SecureSession, error) {
	c.init()
	if c.Device == nil {
		return nil, errors.New("netauth: client has no device")
	}
	if err := c.Cond.Validate(); err != nil {
		return nil, fmt.Errorf("netauth: operating condition: %w", err)
	}
	dialCtx, cancel := context.WithTimeout(ctx, c.Timeout)
	defer cancel()
	conn, err := c.DialContext(dialCtx, "tcp", c.Addr)
	if err != nil {
		return nil, err
	}
	// Cancellation must interrupt blocked handshake I/O, not just the gaps
	// between messages: closing the connection fails the pending op.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	ss, err := c.establish(conn)
	if err != nil {
		stop()
		conn.Close()
		return nil, ctxErr(ctx, err)
	}
	ss.stop = stop
	return ss, nil
}

// establish runs the handshake frames on an open connection.
func (c *Client) establish(conn net.Conn) (*SecureSession, error) {
	pf := &clientPlainFrames{conn: conn, timeout: c.Timeout, r: bufio.NewReader(conn)}

	caps := []string{keyex.CipherChaCha20Poly1305}
	if err := pf.write(message{
		Type: "keyex_init", ChipID: c.ChipID, Caps: caps, Trace: c.Trace,
	}); err != nil {
		return nil, err
	}
	offer, err := pf.read("keyex_offer")
	if err != nil {
		return nil, err
	}
	// Downgrade check: the server must pick a cipher we actually offered.
	// Accepting anything else — in particular cipher "" (confirm-only, no
	// encrypted channel) — would let an active attacker who tampers with
	// the negotiation silently strip the session's encryption.  The caps
	// list is also bound into the transcript below, so even a tampered
	// keyex_init that survives this check fails key confirmation.
	offered := false
	for _, c := range caps {
		if offer.Cipher == c {
			offered = true
			break
		}
	}
	if !offered {
		return nil, fmt.Errorf("netauth: server chose cipher %q, which this client did not offer", offer.Cipher)
	}
	cfg := keyex.Config{M: offer.BchM, T: offer.BchT}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("netauth: server offered bad code parameters: %w", err)
	}
	n := cfg.N()
	if len(offer.Challenges) != n {
		return nil, fmt.Errorf("netauth: offer carries %d challenges, code needs %d", len(offer.Challenges), n)
	}
	helper, err := keyex.ParseBits(offer.Helper, n)
	if err != nil || len(helper) != n {
		return nil, fmt.Errorf("netauth: bad helper data: %v", err)
	}

	// One single-shot XOR readout per challenge — the protocol's designed
	// device workload, same as authentication.
	w := make([]uint8, n)
	for i, bits := range offer.Challenges {
		cc, err := parseChallenge(bits)
		if err != nil {
			return nil, err
		}
		w[i] = c.Device.ReadXOR(cc, c.Cond)
	}
	master, corrected, err := keyex.Reproduce(cfg, w, helper)
	if err != nil {
		return nil, fmt.Errorf("netauth: key reproduction failed: %w", err)
	}

	// Bind the key schedule to the exact offer we answered.  A tampered
	// offer (different challenges, helper, or cipher) yields a different
	// transcript, so the server's confirm MAC will not verify.
	o := keyex.Offer{
		Session:    offer.Session,
		ChipID:     c.ChipID,
		Caps:       caps,
		Challenges: offer.Challenges,
		Helper:     offer.Helper,
		M:          offer.BchM,
		T:          offer.BchT,
		Cipher:     offer.Cipher,
	}
	transcript := keyex.Transcript(o)
	keys := keyex.DeriveSession(master, transcript)
	keyex.Zeroize(master[:])

	devMAC := keyex.ConfirmMAC(keys, keyex.RoleDevice, transcript)
	if err := pf.write(message{
		Type: "keyex_confirm", Session: offer.Session, MAC: hex.EncodeToString(devMAC[:]),
	}); err != nil {
		return nil, err
	}
	accept, err := pf.read("keyex_accept")
	if err != nil {
		return nil, err // includes the structured key_mismatch denial
	}
	srvMAC, err := hex.DecodeString(accept.MAC)
	if err != nil || !keyex.VerifyConfirm(keys, keyex.RoleServer, transcript, srvMAC) {
		return nil, errors.New("netauth: server failed key confirmation")
	}

	ss := &SecureSession{
		Result: KeyexResult{
			Session:    offer.Session,
			Challenges: n,
			Corrected:  corrected,
			Cipher:     offer.Cipher,
		},
		c:    c,
		conn: conn,
	}
	if offer.Cipher == keyex.CipherChaCha20Poly1305 {
		ss.ch = keyex.NewChannel(readWriter{pf.r, conn}, keys, transcript, true)
	}
	return ss, nil
}

// Authenticate runs one full authentication exchange inside the encrypted
// channel — the same challenge/response/verdict protocol, now opaque to a
// network observer.
func (s *SecureSession) Authenticate() (Result, error) {
	if err := s.write(message{Type: "hello", ChipID: s.c.ChipID}); err != nil {
		return Result{}, err
	}
	ch, err := s.read("challenges")
	if err != nil {
		return Result{}, err
	}
	resp := message{Type: "responses", Session: ch.Session, Responses: make([]uint8, len(ch.Challenges))}
	for i, bits := range ch.Challenges {
		cc, err := parseChallenge(bits)
		if err != nil {
			return Result{}, err
		}
		resp.Responses[i] = s.c.Device.ReadXOR(cc, s.c.Cond)
	}
	if err := s.write(resp); err != nil {
		return Result{}, err
	}
	verdict, err := s.read("verdict")
	if err != nil {
		return Result{}, err
	}
	return Result{
		Approved:   verdict.Approved,
		Mismatches: verdict.Mismatches,
		Challenges: len(ch.Challenges),
		Attempts:   1,
	}, nil
}

// SendPayload ships application data over the encrypted channel and
// verifies the server's acknowledged digest end to end.
func (s *SecureSession) SendPayload(data []byte) error {
	sum := sha256.Sum256(data)
	digest := hex.EncodeToString(sum[:])
	if err := s.write(message{
		Type:    "payload",
		Session: s.Result.Session,
		Payload: base64.StdEncoding.EncodeToString(data),
		Digest:  digest,
	}); err != nil {
		return err
	}
	ack, err := s.read("payload_ack")
	if err != nil {
		return err
	}
	if ack.Digest != digest {
		return fmt.Errorf("netauth: server acknowledged digest %s, want %s", ack.Digest, digest)
	}
	return nil
}

// Close says bye (best effort), tears down the channel, and closes the
// connection.  Safe to call more than once.
func (s *SecureSession) Close() error {
	if s.ch != nil && !s.ch.Broken() {
		if err := s.write(message{Type: "bye"}); err == nil {
			_, _ = s.read("bye")
		}
	}
	if s.ch != nil {
		s.ch.Close()
	}
	if s.stop != nil {
		s.stop()
	}
	return s.conn.Close()
}

// write sends one message through the encrypted channel — CRC-framed JSON
// for a session established over protocol v1, a binary frame for v2.
func (s *SecureSession) write(m message) error {
	if s.ch == nil {
		return errors.New("netauth: no encrypted channel was negotiated")
	}
	var b []byte
	if s.bin {
		var w wire.Msg
		if err := messageToWire(m, &w); err != nil {
			return err
		}
		b = wire.AppendFrame(nil, &w)
	} else {
		var err error
		b, err = encodeFrame(m)
		if err != nil {
			return err
		}
	}
	_ = s.conn.SetWriteDeadline(time.Now().Add(s.c.Timeout))
	return s.ch.WriteFrame(b)
}

// read receives one message from the encrypted channel.
func (s *SecureSession) read(wantTypes ...string) (*message, error) {
	if s.ch == nil {
		return nil, errors.New("netauth: no encrypted channel was negotiated")
	}
	_ = s.conn.SetReadDeadline(time.Now().Add(s.c.Timeout))
	payload, err := s.ch.ReadFrame()
	if err != nil {
		return nil, err
	}
	var m *message
	if s.bin {
		var w wire.Msg
		if err := wire.Decode(payload, &w); err != nil {
			return nil, err
		}
		if m, err = wireToMessage(&w); err != nil {
			return nil, err
		}
	} else {
		if m, err = decodeFrame(payload); err != nil {
			return nil, err
		}
	}
	return checkMessage(m, wantTypes...)
}

// clientPlainFrames is the client's plain-phase frame I/O (handshake
// messages before the channel upgrade).
type clientPlainFrames struct {
	conn    net.Conn
	timeout time.Duration
	r       *bufio.Reader
}

func (p *clientPlainFrames) write(m message) error {
	b, err := encodeFrame(m)
	if err != nil {
		return err
	}
	_ = p.conn.SetWriteDeadline(time.Now().Add(p.timeout))
	_, err = p.conn.Write(b)
	return err
}

func (p *clientPlainFrames) read(wantTypes ...string) (*message, error) {
	_ = p.conn.SetReadDeadline(time.Now().Add(p.timeout))
	m, _, err := readMessageAny(p.r, wantTypes...)
	return m, err
}
