package netauth

// Pipelining soak: many concurrent V2 clients multiplex batches over a
// registry-backed server, the server is force-killed mid-traffic, the
// registry is reopened from its WAL, and traffic resumes against a fresh
// server instance.  Invariants: no goroutine leaks across the kill, and
// zero challenge reuse — not within a batch, not across retries, and not
// across the restart (the WAL-replayed issuance counter must continue,
// never rewind).  Run under -race; the challenge log is exactly the kind
// of cross-goroutine aggregation the detector audits.

import (
	"context"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/registry"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// challengeLog aggregates every challenge any worker's device was asked,
// flagging repeats.  Challenge.String() copies, so recording is safe even
// though the client reuses its challenge scratch buffer between frames.
type challengeLog struct {
	mu   sync.Mutex
	seen map[string]int
	dups []string
	n    int
}

func newChallengeLog() *challengeLog {
	return &challengeLog{seen: make(map[string]int)}
}

func (l *challengeLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

func (l *challengeLog) duplicates() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.dups...)
}

// loggedDevice interposes the challenge log in front of a real device.
type loggedDevice struct {
	log *challengeLog
	d   core.Device
}

func (d loggedDevice) ReadXOR(c challenge.Challenge, cond silicon.Condition) uint8 {
	s := c.String()
	d.log.mu.Lock()
	d.log.n++
	d.log.seen[s]++
	if d.log.seen[s] == 2 {
		d.log.dups = append(d.log.dups, s)
	}
	d.log.mu.Unlock()
	return d.d.ReadXOR(c, cond)
}

func TestV2PipeliningSoakKillRestart(t *testing.T) {
	const (
		workers          = 6
		batch            = 4
		batchesPerWorker = 6
		numChallenges    = 16
	)
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	model := benchChipModel(7, 4, 64)
	log := newChallengeLog()

	reg, err := registry.Open(dir, registry.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("chip-A", model, 0); err != nil {
		t.Fatal(err)
	}
	srv := NewServerWithRegistry(numChallenges, 7, reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck

	// runTraffic drives `workers` concurrent clients, each multiplexing
	// `batchesPerWorker` batches over one persistent connection.  If kill
	// is armed, errors after the kill flag flips are expected; any other
	// failure is a real one.
	runTraffic := func(addr string, seedBase uint64, killed *atomic.Bool) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := &V2Client{
					Addr: addr, ChipID: "chip-A",
					Device:    loggedDevice{log: log, d: modelAnswerDevice{m: model}},
					Cond:      silicon.Nominal,
					Timeout:   2 * time.Second,
					RequireV2: true,
					Policy: RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond,
						MaxDelay: 50 * time.Millisecond, Multiplier: 2, Jitter: 0.3},
					Jitter: rng.New(seedBase + uint64(w)),
				}
				defer c.Close()
				for i := 0; i < batchesPerWorker; i++ {
					res, err := c.AuthenticateBatch(context.Background(), batch)
					if err != nil {
						if killed != nil && killed.Load() {
							return // mid-stream kill: expected
						}
						t.Errorf("worker %d batch %d: %v", w, i, err)
						return
					}
					for j, r := range res {
						if !r.Approved {
							t.Errorf("worker %d batch %d stream %d denied (%d mismatches)",
								w, i, j, r.Mismatches)
						}
					}
				}
			}(w)
		}
		wg.Wait()
	}

	// Phase 1: kill the server once traffic is genuinely in flight.
	var killed atomic.Bool
	go func() {
		// Wait until at least one full batch of challenges has been
		// answered, then force-close mid-traffic.
		for log.count() < workers*batch*numChallenges {
			time.Sleep(time.Millisecond)
		}
		killed.Store(true)
		srv.Close()
	}()
	runTraffic(ln.Addr().String(), 9000, &killed)
	if !killed.Load() {
		// All workers finished before the killer fired; make the restart
		// half of the test still meaningful by closing now.
		killed.Store(true)
		srv.Close()
	}
	phase1 := log.count()
	if phase1 == 0 {
		t.Fatal("phase 1 issued no challenges")
	}

	// The kill must not strand session goroutines.
	waitGoroutines(t, baseline+1) // +1: the killer goroutine may still be draining

	// Phase 2: reopen the registry from the same directory — WAL replay
	// restores the issuance counter — and serve again.
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	reg2, err := registry.Open(dir, registry.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	srv2 := NewServerWithRegistry(numChallenges, 7, reg2)
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2) //nolint:errcheck
	runTraffic(ln2.Addr().String(), 9500, nil)
	if log.count() <= phase1 {
		t.Fatal("phase 2 issued no challenges after the restart")
	}

	// The whole point: nothing was ever asked twice.
	if dups := log.duplicates(); len(dups) > 0 {
		t.Fatalf("%d challenges reused across kill/restart (first: %q) — "+
			"issuance counter rewound", len(dups), dups[0])
	}

	srv2.Close()
	waitGoroutines(t, baseline)
}
