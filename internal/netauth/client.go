package netauth

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/telemetry"
)

// Result is the outcome of a client-side authentication run.
type Result struct {
	Approved   bool
	Mismatches int
	Challenges int
	// Attempts is how many protocol attempts the run took (1 = no retry).
	Attempts int
}

// RetryPolicy bounds and paces the client's retries of transient failures.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget, including the first try.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Multiplier scales the delay between consecutive retries (≥ 1).
	Multiplier float64
	// Jitter is the fraction of each delay randomized (0 = fixed delays,
	// 1 = delays drawn uniformly from [½d, 1½d)).  Jitter decorrelates
	// retry storms from many devices that failed at the same instant.
	Jitter float64
}

// DefaultRetryPolicy matches a device on a flaky but usable link: four
// attempts, 50 ms–2 s backoff, ×2 growth, 50 % jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

func (p RetryPolicy) normalized() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = def.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = def.MaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = def.Multiplier
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = def.Jitter
	}
	return p
}

// delay returns the jittered backoff before retry number retry (1-based).
func (p RetryPolicy) delay(retry int, src *rng.Source) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter/2 + p.Jitter*src.Float64()
	}
	return time.Duration(d)
}

// Client authenticates a device against a netauth server with bounded
// retries.  The zero value is not usable; set at least Addr, ChipID, and
// Device.
type Client struct {
	// Addr is the server's TCP address.
	Addr string
	// ChipID identifies the enrolled chip.
	ChipID string
	// Device answers challenges (normally the physical chip).
	Device core.Device
	// Cond is the operating condition the device is evaluated at.
	Cond silicon.Condition
	// Timeout is the per-message I/O deadline (default 10 s).
	Timeout time.Duration
	// Policy bounds the retries; zero fields take DefaultRetryPolicy
	// values.
	Policy RetryPolicy
	// DialContext dials the server; nil uses net.Dialer.  Tests inject
	// faultnet.Dialer here.
	DialContext func(ctx context.Context, network, addr string) (net.Conn, error)
	// Jitter seeds backoff jitter; nil lazily seeds from the wall clock.
	Jitter *rng.Source
	// Tracer, when non-nil, records one SessionTrace per Authenticate
	// call (verdict, denial code, retry count, total latency).
	Tracer *telemetry.Tracer
	// Trace, when set, is a distributed-trace context ("32hex-16hex", see
	// internal/telemetry/dtrace) sent in the hello frame: the server's
	// session spans then nest under the caller's span.  The server treats
	// a malformed value as absent — it can never fail a session.
	Trace string

	once sync.Once
}

func (c *Client) init() {
	c.once.Do(func() {
		if c.Timeout <= 0 {
			c.Timeout = 10 * time.Second
		}
		c.Policy = c.Policy.normalized()
		if c.DialContext == nil {
			var d net.Dialer
			c.DialContext = d.DialContext
		}
		if c.Jitter == nil {
			c.Jitter = rng.New(uint64(time.Now().UnixNano()))
		}
	})
}

// Authenticate runs the protocol until a verdict, a terminal error, the
// attempt budget, or ctx ends it.  Transient failures — I/O errors,
// timeouts, and server errors marked retryable — are retried with jittered
// exponential backoff; terminal server errors (unknown_chip, locked_out,
// quarantined, selection_failed) and context cancellation return
// immediately.  An operating condition outside the modeled V/T envelope is
// rejected up front, before any challenge is requested: device reads would
// panic mid-session otherwise, burning the server-side challenges the
// session had already drawn.
func (c *Client) Authenticate(ctx context.Context) (Result, error) {
	c.init()
	start := time.Now()
	res, err := c.authenticate(ctx)
	clientSessions.Inc()
	clientAttempts.Add(uint64(res.Attempts))
	if res.Attempts > 1 {
		clientRetries.Add(uint64(res.Attempts - 1))
	}
	if err != nil {
		clientFailures.Inc()
	}
	clientSessionSeconds.ObserveSince(start)
	if c.Tracer != nil {
		tr := telemetry.SessionTrace{
			ChipID:       c.ChipID,
			Start:        start,
			Mismatches:   res.Mismatches,
			Retries:      res.Attempts - 1,
			TotalSeconds: time.Since(start).Seconds(),
		}
		switch {
		case err == nil && res.Approved:
			tr.Verdict = "approved"
		case err == nil:
			tr.Verdict = "denied"
		default:
			tr.Verdict = "error"
			var pe *ProtocolError
			if errors.As(err, &pe) {
				tr.DenialCode = pe.Code
			}
		}
		c.Tracer.Record(tr)
	}
	return res, err
}

// authenticate is the uninstrumented retry loop behind Authenticate.
func (c *Client) authenticate(ctx context.Context) (Result, error) {
	if err := c.Cond.Validate(); err != nil {
		return Result{}, fmt.Errorf("netauth: operating condition: %w", err)
	}
	var lastErr error
	for attempt := 1; attempt <= c.Policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := sleepCtx(ctx, c.Policy.delay(attempt-1, c.Jitter)); err != nil {
				return Result{Attempts: attempt - 1}, err
			}
		}
		res, err := c.attempt(ctx)
		res.Attempts = attempt
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !Transient(err) {
			return Result{Attempts: attempt}, err
		}
	}
	return Result{Attempts: c.Policy.MaxAttempts}, fmt.Errorf(
		"netauth: giving up after %d attempts: %w", c.Policy.MaxAttempts, lastErr)
}

// attempt runs one full protocol exchange.
func (c *Client) attempt(ctx context.Context) (Result, error) {
	dialCtx, cancel := context.WithTimeout(ctx, c.Timeout)
	defer cancel()
	conn, err := c.DialContext(dialCtx, "tcp", c.Addr)
	if err != nil {
		return Result{}, err
	}
	defer conn.Close()
	// Cancellation must interrupt blocked reads/writes, not just the
	// gaps between them: closing the connection fails the pending I/O.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	r := bufio.NewReader(conn)
	writeMsg := func(m message) error {
		b, err := encodeFrame(m)
		if err != nil {
			return err
		}
		_ = conn.SetWriteDeadline(time.Now().Add(c.Timeout))
		_, err = conn.Write(b)
		return err
	}
	readMsg := func(want string) (*message, error) {
		_ = conn.SetReadDeadline(time.Now().Add(c.Timeout))
		m, _, err := readMessage(r, want)
		return m, err
	}

	if err := writeMsg(message{Type: "hello", ChipID: c.ChipID, Trace: c.Trace}); err != nil {
		return Result{}, ctxErr(ctx, err)
	}
	ch, err := readMsg("challenges")
	if err != nil {
		return Result{}, ctxErr(ctx, err)
	}
	resp := message{Type: "responses", Session: ch.Session, Responses: make([]uint8, len(ch.Challenges))}
	for i, bits := range ch.Challenges {
		cc, err := parseChallenge(bits)
		if err != nil {
			return Result{}, err
		}
		resp.Responses[i] = c.Device.ReadXOR(cc, c.Cond)
	}
	if err := writeMsg(resp); err != nil {
		return Result{}, ctxErr(ctx, err)
	}
	verdict, err := readMsg("verdict")
	if err != nil {
		return Result{}, ctxErr(ctx, err)
	}
	return Result{
		Approved:   verdict.Approved,
		Mismatches: verdict.Mismatches,
		Challenges: len(ch.Challenges),
	}, nil
}

// ctxErr prefers the context's error over the I/O error it caused: a read
// failing because cancellation closed the connection should surface as
// context.Canceled, which the retry loop treats as terminal.
func ctxErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// sleepCtx sleeps d or returns early with the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Transient classifies an error from Authenticate or attempt: true means a
// retry may succeed (network faults, timeouts, retryable server errors),
// false means give up (terminal server errors, context cancellation, bad
// local state).  Erring transient is safe — the attempt budget still
// bounds the session — but a terminal misclassified as transient would
// burn server-side challenges, so server verdict errors always win.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var pe *ProtocolError
	if errors.As(err, &pe) {
		return pe.Retryable
	}
	// Everything else — dial failures, resets, EOFs, deadline
	// expirations, JSON decode failures from corrupted frames — is a
	// channel problem, not a protocol verdict.
	return true
}

// Authenticate connects to the server at addr and authenticates the device
// under chipID, evaluating the chip at cond.  The device answers each
// challenge with a single XOR readout, as the protocol permits for selected
// (100 %-stable) CRPs.  This is the single-shot form — no retries; use
// Client for resilience on lossy links.
func Authenticate(addr, chipID string, dev core.Device, cond silicon.Condition, timeout time.Duration) (Result, error) {
	c := &Client{
		Addr:    addr,
		ChipID:  chipID,
		Device:  dev,
		Cond:    cond,
		Timeout: timeout,
		Policy:  RetryPolicy{MaxAttempts: 1},
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.Authenticate(ctx)
}
