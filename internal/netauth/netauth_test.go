package netauth

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// startServer enrolls a chip, registers it, and serves on a loopback
// listener; it returns the address, the chip, and a shutdown func.
func startServer(t *testing.T, numChallenges int) (addr string, srv *Server, chip *silicon.Chip) {
	return startServerConfigured(t, numChallenges, nil)
}

// startServerConfigured is startServer with a hook that runs before the
// accept loop starts — required for options like SetTelemetry that the
// session hot path reads without a lock (and therefore must be set
// before Serve).
func startServerConfigured(t *testing.T, numChallenges int, configure func(*Server)) (addr string, srv *Server, chip *silicon.Chip) {
	t.Helper()
	chip = silicon.NewChip(rng.New(1), silicon.DefaultParams(), 4)
	cfg := core.DefaultEnrollConfig()
	cfg.TrainingSize = 2000
	cfg.ValidationSize = 5000
	enr, err := core.EnrollChip(chip, rng.New(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv = NewServer(numChallenges, 3)
	if err := srv.Register("chip-A", enr.Model); err != nil {
		t.Fatal(err)
	}
	if configure != nil {
		configure(srv)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(srv.Close)
	return ln.Addr().String(), srv, chip
}

func TestAuthenticateGenuineOverTCP(t *testing.T) {
	addr, srv, chip := startServer(t, 60)
	res, err := Authenticate(addr, "chip-A", chip, silicon.Nominal, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved || res.Mismatches != 0 || res.Challenges != 60 {
		t.Errorf("genuine device: %+v", res)
	}
	approved, denied := srv.Stats()
	if approved != 1 || denied != 0 {
		t.Errorf("stats %d/%d, want 1/0", approved, denied)
	}
}

func TestAuthenticateImpostorOverTCP(t *testing.T) {
	addr, srv, _ := startServer(t, 60)
	impostor := silicon.NewChip(rng.New(999), silicon.DefaultParams(), 4)
	res, err := Authenticate(addr, "chip-A", impostor, silicon.Nominal, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Approved {
		t.Error("impostor approved over TCP")
	}
	if res.Mismatches < 10 {
		t.Errorf("impostor only mismatched %d/60", res.Mismatches)
	}
	_, denied := srv.Stats()
	if denied != 1 {
		t.Errorf("denied count %d, want 1", denied)
	}
}

func TestUnknownChipRejected(t *testing.T) {
	addr, _, chip := startServer(t, 10)
	_, err := Authenticate(addr, "no-such-chip", chip, silicon.Nominal, 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "unknown chip") {
		t.Errorf("err = %v, want unknown-chip error", err)
	}
}

func TestConcurrentAuthentications(t *testing.T) {
	addr, srv, chip := startServer(t, 30)
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	results := make([]Result, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Authenticate(addr, "chip-A", chip, silicon.Nominal, 10*time.Second)
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !results[i].Approved {
			t.Errorf("client %d denied: %+v", i, results[i])
		}
	}
	approved, _ := srv.Stats()
	if approved != clients {
		t.Errorf("approved %d, want %d", approved, clients)
	}
}

func TestFreshChallengesPerSession(t *testing.T) {
	addr, _, chip := startServer(t, 20)
	// Capture challenges from two raw sessions and verify disjointness.
	grab := func() map[string]bool {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		enc := json.NewEncoder(conn)
		r := bufio.NewReader(conn)
		if err := enc.Encode(message{Type: "hello", ChipID: "chip-A"}); err != nil {
			t.Fatal(err)
		}
		m, _, err := readMessage(r, "challenges")
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, c := range m.Challenges {
			out[c] = true
		}
		// Answer honestly so the server completes cleanly.
		resp := message{Type: "responses", Session: m.Session, Responses: make([]uint8, len(m.Challenges))}
		for i, bits := range m.Challenges {
			c, err := parseChallenge(bits)
			if err != nil {
				t.Fatal(err)
			}
			resp.Responses[i] = chip.ReadXOR(c, silicon.Nominal)
		}
		if err := enc.Encode(resp); err != nil {
			t.Fatal(err)
		}
		if _, _, err := readMessage(r, "verdict"); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := grab()
	b := grab()
	for c := range a {
		if b[c] {
			t.Fatalf("challenge %s reused across sessions", c)
		}
	}
}

func TestMalformedHello(t *testing.T) {
	addr, _, _ := startServer(t, 10)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var m message
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatal(err)
	}
	if m.Type != "error" {
		t.Errorf("expected error message, got %+v", m)
	}
}

func TestSessionMismatchRejected(t *testing.T) {
	addr, _, _ := startServer(t, 5)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	r := bufio.NewReader(conn)
	if err := enc.Encode(message{Type: "hello", ChipID: "chip-A"}); err != nil {
		t.Fatal(err)
	}
	m, _, err := readMessage(r, "challenges")
	if err != nil {
		t.Fatal(err)
	}
	resp := message{Type: "responses", Session: "forged", Responses: make([]uint8, len(m.Challenges))}
	if err := enc.Encode(resp); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readMessage(r, "verdict"); err == nil ||
		!strings.Contains(err.Error(), "session mismatch") {
		t.Errorf("err = %v, want session mismatch", err)
	}
}

func TestWrongResponseCountRejected(t *testing.T) {
	addr, _, _ := startServer(t, 5)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	r := bufio.NewReader(conn)
	if err := enc.Encode(message{Type: "hello", ChipID: "chip-A"}); err != nil {
		t.Fatal(err)
	}
	m, _, err := readMessage(r, "challenges")
	if err != nil {
		t.Fatal(err)
	}
	resp := message{Type: "responses", Session: m.Session, Responses: []uint8{0}}
	if err := enc.Encode(resp); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readMessage(r, "verdict"); err == nil ||
		!strings.Contains(err.Error(), "expected") {
		t.Errorf("err = %v, want response-count error", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	srv := NewServer(10, 1)
	if err := srv.Register("", &core.ChipModel{}); err == nil {
		t.Error("empty chip ID should fail")
	}
	if err := srv.Register("x", nil); err == nil {
		t.Error("nil model should fail")
	}
	model := &core.ChipModel{PUFs: []*core.PUFModel{{Theta: make([]float64, 33), Thr0: 0.3, Thr1: 0.7}}, Beta0: 1, Beta1: 1}
	if err := srv.Register("x", model); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("x", model); err == nil {
		t.Error("duplicate registration should fail")
	}
}

func TestParseChallenge(t *testing.T) {
	c, err := parseChallenge("0110")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{0, 1, 1, 0}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("parseChallenge = %v", c)
		}
	}
	if _, err := parseChallenge(""); err == nil {
		t.Error("empty challenge should fail")
	}
	if _, err := parseChallenge("01x1"); err == nil {
		t.Error("invalid character should fail")
	}
}

func TestAuthenticateAtCorner(t *testing.T) {
	// Enroll with V/T hardening; the device authenticates from a harsh
	// corner over the network.
	chip := silicon.NewChip(rng.New(10), silicon.DefaultParams(), 4)
	cfg := core.DefaultEnrollConfig()
	cfg.TrainingSize = 2000
	cfg.ValidationSize = 6000
	cfg.Conditions = silicon.Corners()
	enr, err := core.EnrollChip(chip, rng.New(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(50, 12)
	if err := srv.Register("edge-device", enr.Model); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	res, err := Authenticate(ln.Addr().String(), "edge-device", chip,
		silicon.Condition{VDD: 0.8, TempC: 60}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved {
		t.Errorf("V/T-hardened device denied at 0.8V/60°C: %+v", res)
	}
}
