package netauth

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"xorpuf/internal/challenge"
	"xorpuf/internal/health"
	"xorpuf/internal/silicon"
)

// oneDevice answers 1 to every challenge — every response mismatches
// flatModel's all-zero predictions, modeling a chip that has drifted
// completely out of its enrolled model.
type oneDevice struct{}

func (oneDevice) ReadXOR(challenge.Challenge, silicon.Condition) uint8 { return 1 }

// TestDriftQuarantineLifecycle drives a drifted chip through the full
// detector lifecycle over the wire: sustained mismatching sessions degrade
// then quarantine it (events surfacing through SetHealthHandler), the
// quarantine denial is structured, terminal, and burns no challenges, and a
// registry.Replace re-admits the chip at zero HD.
func TestDriftQuarantineLifecycle(t *testing.T) {
	srv := NewServer(10, 91)
	if err := srv.Register("drifter", flatModel()); err != nil {
		t.Fatal(err)
	}
	var evMu sync.Mutex
	var events []health.Event
	srv.SetHealthHandler(func(ev health.Event) {
		evMu.Lock()
		events = append(events, ev)
		evMu.Unlock()
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	addr := ln.Addr().String()

	// Fail sessions until the detectors quarantine the chip.
	for i := 0; i < 30; i++ {
		res, err := Authenticate(addr, "drifter", oneDevice{}, silicon.Nominal, 5*time.Second)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if res.Approved {
			t.Fatalf("session %d approved with an all-mismatch device", i)
		}
		if srv.ChipStatus("drifter").Health == health.Quarantined {
			break
		}
	}
	if got := srv.ChipStatus("drifter").Health; got != health.Quarantined {
		t.Fatalf("chip health %v after sustained drift, want quarantined", got)
	}
	evMu.Lock()
	if len(events) != 2 || events[0].To != health.Degraded || events[1].To != health.Quarantined {
		t.Fatalf("health handler saw %v, want degrade then quarantine", events)
	}
	evMu.Unlock()

	// Quarantined denial: structured, terminal, and challenge-free.
	burned := srv.ChipStatus("drifter").Issued
	_, err = Authenticate(addr, "drifter", oneDevice{}, silicon.Nominal, 5*time.Second)
	var perr *ProtocolError
	if !errors.As(err, &perr) || perr.Code != CodeQuarantined {
		t.Fatalf("quarantined auth err = %v, want %s", err, CodeQuarantined)
	}
	if perr.Retryable {
		t.Error("quarantined denial marked retryable")
	}
	if got := srv.ChipStatus("drifter").Issued; got != burned {
		t.Errorf("quarantined attempt burned %d challenges", got-burned)
	}
	// Even a device that would now answer correctly is refused — the
	// acceptance path is closed, not loosened.
	if _, err := Authenticate(addr, "drifter", zeroDevice{}, silicon.Nominal, 5*time.Second); !errors.As(err, &perr) || perr.Code != CodeQuarantined {
		t.Fatalf("good-device auth err = %v, want %s", err, CodeQuarantined)
	}

	// Re-enrollment: swap in a fresh model, detectors reset, chip serves
	// again at zero HD.
	if err := srv.Registry().Replace("drifter", flatModel(), 0); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if got := srv.ChipStatus("drifter").Health; got != health.Healthy {
		t.Fatalf("post-replace health %v, want healthy", got)
	}
	res, err := Authenticate(addr, "drifter", zeroDevice{}, silicon.Nominal, 5*time.Second)
	if err != nil || !res.Approved || res.Mismatches != 0 {
		t.Fatalf("post-replace auth: %+v, %v", res, err)
	}
}

// TestHealthyTrafficNeverQuarantines is the wire-level false-positive
// check: a fleet of well-behaved chips authenticating many times must all
// stay healthy.
func TestHealthyTrafficNeverQuarantines(t *testing.T) {
	srv := NewServer(10, 92)
	for i := 0; i < 4; i++ {
		if err := srv.Register(fmt.Sprintf("good-%d", i), flatModel()); err != nil {
			t.Fatal(err)
		}
	}
	srv.SetHealthHandler(func(ev health.Event) {
		t.Errorf("unexpected health transition: %v", ev)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	addr := ln.Addr().String()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("good-%d", i)
			for j := 0; j < 20; j++ {
				res, err := Authenticate(addr, id, zeroDevice{}, silicon.Nominal, 5*time.Second)
				if err != nil || !res.Approved {
					t.Errorf("%s session %d: %+v, %v", id, j, res, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if st := srv.ChipStatus(fmt.Sprintf("good-%d", i)); st.Health != health.Healthy {
			t.Errorf("good-%d ended %v", i, st.Health)
		}
	}
}

// TestClientRejectsOutOfEnvelopeCondition: the client refuses to start a
// session at a condition the silicon model cannot evaluate, before dialing.
func TestClientRejectsOutOfEnvelopeCondition(t *testing.T) {
	c := &Client{
		Addr: "127.0.0.1:1", ChipID: "x", Device: zeroDevice{},
		Cond: silicon.Condition{VDD: 0.5, TempC: 25},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.Authenticate(ctx); err == nil {
		t.Fatal("out-of-envelope condition accepted")
	}
}
