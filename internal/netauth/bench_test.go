package netauth

import (
	"context"
	"net"
	"testing"

	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/registry"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
	"xorpuf/internal/telemetry"
)

// benchChipModel is a synthetic model: random θ, thresholds that keep most
// random challenges stable.  No silicon, no enrollment — benchmark setup in
// microseconds.
func benchChipModel(seed uint64, width, stages int) *core.ChipModel {
	src := rng.New(seed)
	m := &core.ChipModel{Beta0: 1, Beta1: 1}
	for p := 0; p < width; p++ {
		theta := make([]float64, stages+1)
		for i := range theta {
			theta[i] = src.Float64()*0.5 - 0.25
		}
		theta[stages] = 0.5
		m.PUFs = append(m.PUFs, &core.PUFModel{Theta: theta, Thr0: 0.45, Thr1: 0.55})
	}
	return m
}

// modelAnswerDevice answers from the model itself — a perfectly stable
// genuine device, so every session takes the zero-HD approve path.
type modelAnswerDevice struct{ m *core.ChipModel }

func (d modelAnswerDevice) ReadXOR(c challenge.Challenge, _ silicon.Condition) uint8 {
	bit, _ := d.m.PredictXOR(c)
	return bit
}

// startBenchServer brings up a loopback server over one synthetic chip and
// returns a ready client.  instrumented toggles the telemetry plane.
func startBenchServer(tb testing.TB, n int, instrumented bool) *Client {
	tb.Helper()
	model := benchChipModel(7, 4, 64)
	reg, err := registry.Open("", registry.Options{Seed: 7})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { reg.Close() })
	const chipID = "bench-chip"
	if err := reg.Register(chipID, model, 0); err != nil {
		tb.Fatal(err)
	}
	srv := NewServerWithRegistry(n, 7, reg)
	if !instrumented {
		srv.SetTelemetry(nil)
		srv.SetTracer(nil)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	tb.Cleanup(func() { srv.Close() })
	return &Client{
		Addr:   ln.Addr().String(),
		ChipID: chipID,
		Device: modelAnswerDevice{m: model},
		Cond:   silicon.Nominal,
		Policy: RetryPolicy{MaxAttempts: 1},
	}
}

// BenchmarkAuthSessionE2E measures one full authentication session —
// dial, hello, select, challenge round trip, verdict — per iteration, with
// the telemetry plane fully wired (the production configuration).
func BenchmarkAuthSessionE2E(b *testing.B) {
	client := startBenchServer(b, 16, true)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.Authenticate(ctx)
		if err != nil || !res.Approved {
			b.Fatalf("session %d: approved=%v err=%v", i, res.Approved, err)
		}
	}
}

// BenchmarkAuthSessionE2EBare is the control arm: the identical session with
// server telemetry and tracing disabled.  Comparing ns/op against
// BenchmarkAuthSessionE2E bounds the observability plane's overhead (the
// budget is < 5 %).
func BenchmarkAuthSessionE2EBare(b *testing.B) {
	client := startBenchServer(b, 16, false)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.Authenticate(ctx)
		if err != nil || !res.Approved {
			b.Fatalf("session %d: approved=%v err=%v", i, res.Approved, err)
		}
	}
}

// TestServerMetricsRecorded injects a private telemetry registry and checks
// the server's per-session instruments actually move: counters for started /
// completed / approved sessions, the RTT and session histograms, and a
// recorded trace with the expected step names and verdict.
func TestServerMetricsRecorded(t *testing.T) {
	model := benchChipModel(7, 4, 64)
	reg, err := registry.Open("", registry.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := reg.Register("chip-0", model, 0); err != nil {
		t.Fatal(err)
	}
	srv := NewServerWithRegistry(8, 7, reg)
	tel := telemetry.NewRegistry()
	srv.SetTelemetry(tel)
	tracer := telemetry.NewTracer(4)
	srv.SetTracer(tracer)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	client := &Client{
		Addr:   ln.Addr().String(),
		ChipID: "chip-0",
		Device: modelAnswerDevice{m: model},
		Cond:   silicon.Nominal,
		Policy: RetryPolicy{MaxAttempts: 1},
	}
	res, err := client.Authenticate(context.Background())
	if err != nil || !res.Approved {
		t.Fatalf("approved=%v err=%v", res.Approved, err)
	}
	// A second session from an unknown chip exercises a denial counter.
	bad := &Client{
		Addr:   ln.Addr().String(),
		ChipID: "nope",
		Device: modelAnswerDevice{m: model},
		Cond:   silicon.Nominal,
		Policy: RetryPolicy{MaxAttempts: 1},
	}
	if _, err := bad.Authenticate(context.Background()); err == nil {
		t.Fatal("unknown chip must fail")
	}

	snap := tel.Snapshot()
	for name, want := range map[string]uint64{
		"netauth_sessions_started_total":   2,
		"netauth_sessions_completed_total": 1,
		"netauth_approved_total":           1,
		"netauth_denied_total":             0,
		"netauth_deny_unknown_chip_total":  1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Gauges["netauth_active_sessions"] != 0 {
		t.Errorf("active sessions gauge = %d after all sessions ended", snap.Gauges["netauth_active_sessions"])
	}
	for _, name := range []string{"netauth_session_seconds", "netauth_device_rtt_seconds", "netauth_select_seconds"} {
		if snap.Histograms[name].Count == 0 {
			t.Errorf("histogram %s never observed", name)
		}
	}
	if snap.Histograms["netauth_frame_bytes"].Count < 4 {
		t.Errorf("frame bytes observed %d times, want ≥ 4", snap.Histograms["netauth_frame_bytes"].Count)
	}

	traces := tracer.Recent(0)
	if len(traces) != 2 {
		t.Fatalf("tracer retained %d traces, want 2", len(traces))
	}
	// Newest first: the unknown-chip error, then the approval.
	if traces[0].Verdict != "error" || traces[0].DenialCode != CodeUnknownChip {
		t.Errorf("trace[0] = %+v, want unknown_chip error", traces[0])
	}
	ok := traces[1]
	if ok.Verdict != "approved" || ok.ChipID != "chip-0" || ok.Session == "" || ok.TotalSeconds <= 0 {
		t.Errorf("trace[1] = %+v, want approved session for chip-0", ok)
	}
	steps := make(map[string]bool, len(ok.Steps))
	for _, s := range ok.Steps {
		steps[s.Name] = true
	}
	for _, name := range []string{"hello", "select", "device_rtt", "verdict"} {
		if !steps[name] {
			t.Errorf("approved trace missing step %q (has %+v)", name, ok.Steps)
		}
	}
}
