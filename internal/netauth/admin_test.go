package netauth

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"xorpuf/internal/challenge"
	"xorpuf/internal/core"
	"xorpuf/internal/registry"
	"xorpuf/internal/silicon"
)

// flatModel is a synthetic chip model whose every challenge is predicted
// Stable0 (zero θ ⇒ prediction 0.0 < Thr0), so selection never stalls and
// admin tests never pay for enrollment.
func flatModel() *core.ChipModel {
	m := &core.ChipModel{PUFs: make([]*core.PUFModel, 2), Beta0: 1, Beta1: 1}
	for i := range m.PUFs {
		m.PUFs[i] = &core.PUFModel{Theta: make([]float64, 33), Thr0: 0.4, Thr1: 0.6}
	}
	return m
}

// zeroDevice answers 0 to every challenge — a perfect device for flatModel.
type zeroDevice struct{}

func (zeroDevice) ReadXOR(challenge.Challenge, silicon.Condition) uint8 { return 0 }

func TestDeregisterRevokesChip(t *testing.T) {
	addr, srv, chip := startServer(t, 30)

	res, err := Authenticate(addr, "chip-A", chip, silicon.Nominal, 5*time.Second)
	if err != nil || !res.Approved {
		t.Fatalf("genuine auth before Deregister: %+v, %v", res, err)
	}
	if !srv.Deregister("chip-A") {
		t.Fatal("Deregister reported chip-A not registered")
	}
	if srv.Deregister("chip-A") {
		t.Fatal("second Deregister reported chip-A still registered")
	}
	if st := srv.ChipStatus("chip-A"); st.Registered {
		t.Fatal("chip-A still registered per ChipStatus")
	}
	_, err = Authenticate(addr, "chip-A", chip, silicon.Nominal, 5*time.Second)
	var perr *ProtocolError
	if !errors.As(err, &perr) || perr.Code != CodeUnknownChip {
		t.Fatalf("auth after Deregister err = %v, want %s", err, CodeUnknownChip)
	}
	if perr.Retryable {
		t.Error("unknown_chip after Deregister marked retryable")
	}
	// The ID can be re-registered (fresh selector, fresh history).
	if err := srv.Register("chip-A", flatModel()); err != nil {
		t.Fatalf("re-Register after Deregister: %v", err)
	}
}

// TestServerOverRecoveredRegistry authenticates against a server whose
// database was recovered from another process lifetime's WAL, covering the
// NewServerWithRegistry path end to end.
func TestServerOverRecoveredRegistry(t *testing.T) {
	dir := t.TempDir()
	r1, err := registry.Open(dir, registry.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Register("chip-Z", flatModel(), 0); err != nil {
		t.Fatal(err)
	}
	// Hard stop r1; recover into the serving registry.
	r2, err := registry.Open(dir, registry.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	srv := NewServerWithRegistry(25, 4, r2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	res, err := Authenticate(ln.Addr().String(), "chip-Z", zeroDevice{}, silicon.Nominal, 5*time.Second)
	if err != nil || !res.Approved {
		t.Fatalf("auth over recovered registry: %+v, %v", res, err)
	}
}

// TestConcurrentAdminOps exercises the full admin surface — Register,
// Deregister, ChipStatus, Unlock, Stats — against a server that is actively
// authenticating clients.  Under -race this is the server's concurrency
// contract for the sharded-registry rewiring.
func TestConcurrentAdminOps(t *testing.T) {
	srv := NewServer(10, 6)
	for i := 0; i < 4; i++ {
		if err := srv.Register(fmt.Sprintf("auth-%d", i), flatModel()); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	addr := ln.Addr().String()

	const perWorker = 15
	var wg sync.WaitGroup
	// Authenticating clients on stable IDs.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("auth-%d", w)
			for i := 0; i < perWorker; i++ {
				res, err := Authenticate(addr, id, zeroDevice{}, silicon.Nominal, 5*time.Second)
				if err != nil {
					t.Errorf("auth %s: %v", id, err)
					return
				}
				if !res.Approved {
					t.Errorf("auth %s denied (%d mismatches)", id, res.Mismatches)
					return
				}
			}
		}(w)
	}
	// Admin churn on disjoint IDs, interleaved with status/stats reads.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("churn-%d-%d", w, i)
				if err := srv.Register(id, flatModel()); err != nil {
					t.Errorf("Register %s: %v", id, err)
					return
				}
				if st := srv.ChipStatus(id); !st.Registered {
					t.Errorf("ChipStatus %s: not registered", id)
					return
				}
				_ = srv.Unlock(id) // not locked; must be a safe no-op
				srv.Stats()
				_ = srv.ChipStatus(fmt.Sprintf("auth-%d", w))
				if i%2 == 0 {
					if !srv.Deregister(id) {
						t.Errorf("Deregister %s failed", id)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	approved, denied := srv.Stats()
	if approved != 4*perWorker || denied != 0 {
		t.Fatalf("stats %d/%d, want %d/0", approved, denied, 4*perWorker)
	}
	// Half the churn chips (odd i) remain registered.
	want := 4 + 4*perWorker - 4*(perWorker/2+perWorker%2)
	if got := srv.Registry().Len(); got != want {
		t.Fatalf("registry Len = %d, want %d", got, want)
	}
	for w := 0; w < 4; w++ {
		if st := srv.ChipStatus(fmt.Sprintf("auth-%d", w)); st.Issued != perWorker*10 {
			t.Fatalf("auth-%d issued %d challenges, want %d", w, st.Issued, perWorker*10)
		}
	}
}
