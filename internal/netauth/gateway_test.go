package netauth

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// startGateway serves a gateway over the given shards on a loopback
// listener.
func startGateway(t *testing.T, shards []GatewayShard, cfg GatewayConfig) (*Gateway, string) {
	t.Helper()
	g, err := NewGateway(shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go g.Serve(ln) //nolint:errcheck
	t.Cleanup(g.Close)
	return g, ln.Addr().String()
}

func TestGatewayShardRingIsDeterministicAndSpread(t *testing.T) {
	shards := []GatewayShard{
		{Name: "shard-0", Addrs: []string{"127.0.0.1:1"}},
		{Name: "shard-1", Addrs: []string{"127.0.0.1:2"}},
	}
	g1, err := NewGateway(shards, GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGateway(shards, GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		id := "chip-" + string(rune('a'+i%26)) + "-" + time.Duration(i).String()
		a, b := g1.ShardFor(id), g2.ShardFor(id)
		if a.Name != b.Name {
			t.Fatalf("chip %q routed to %s and %s by identical rings", id, a.Name, b.Name)
		}
		counts[a.Name]++
	}
	for _, s := range shards {
		if counts[s.Name] < 40 {
			t.Fatalf("shard %s owns only %d/400 chips — ring badly skewed: %v", s.Name, counts[s.Name], counts)
		}
	}
}

func TestGatewayRoutesAndReroutesOnFailover(t *testing.T) {
	chip := silicon.NewChip(rng.New(1), silicon.DefaultParams(), 4)
	cfg := core.DefaultEnrollConfig()
	cfg.TrainingSize = 2000
	cfg.ValidationSize = 5000
	enr, err := core.EnrollChip(chip, rng.New(2), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Two independent verifiers holding the same enrollment, as primary and
	// promoted-follower would after failover.
	start := func() (*Server, net.Listener) {
		srv := NewServer(5, 3)
		if err := srv.Register("chip-A", enr.Model); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln) //nolint:errcheck
		return srv, ln
	}
	srv1, ln1 := start()
	srv2, ln2 := start()
	defer srv2.Close()

	_, gwAddr := startGateway(t, []GatewayShard{
		{Name: "shard-0", Addrs: []string{ln1.Addr().String(), ln2.Addr().String()}},
	}, GatewayConfig{Cooldown: 200 * time.Millisecond})

	res, err := Authenticate(gwAddr, "chip-A", chip, silicon.Nominal, 10*time.Second)
	if err != nil || !res.Approved {
		t.Fatalf("auth via gateway: %+v, %v", res, err)
	}
	if got := srv1.ChipStatus("chip-A").Issued; got == 0 {
		t.Fatal("primary replica served no challenges — routed to the wrong backend")
	}

	// Primary replica dies; the same device address must keep working.
	srv1.Close()
	res, err = Authenticate(gwAddr, "chip-A", chip, silicon.Nominal, 10*time.Second)
	if err != nil || !res.Approved {
		t.Fatalf("auth after failover: %+v, %v", res, err)
	}
	if got := srv2.ChipStatus("chip-A").Issued; got == 0 {
		t.Fatal("failover replica served no challenges — re-route did not happen")
	}
}

func TestGatewayRefusalsAreStructured(t *testing.T) {
	// A shard whose every replica is unreachable: sessions get a retryable
	// busy error, so devices back off and retry into the failover window.
	_, gwAddr := startGateway(t, []GatewayShard{
		{Name: "shard-0", Addrs: []string{"127.0.0.1:1"}},
	}, GatewayConfig{DialTimeout: 200 * time.Millisecond})

	chip := silicon.NewChip(rng.New(1), silicon.DefaultParams(), 2)
	_, err := Authenticate(gwAddr, "chip-A", chip, silicon.Nominal, 5*time.Second)
	var perr *ProtocolError
	if !errors.As(err, &perr) || perr.Code != CodeBusy || !perr.Retryable {
		t.Fatalf("unroutable session error = %v, want retryable %s", err, CodeBusy)
	}

	// A session that does not open with a hello is refused outright.
	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{\"type\":\"challenges\"}\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var m message
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("refusal frame not JSON: %v", err)
	}
	if m.Type != "error" || m.Code != CodeBadMessage {
		t.Fatalf("refusal frame %+v, want %s", m, CodeBadMessage)
	}
}
