package netauth

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"xorpuf/internal/core"
	"xorpuf/internal/registry"
	"xorpuf/internal/rng"
	"xorpuf/internal/silicon"
)

// startGateway serves a gateway over the given shards on a loopback
// listener.
func startGateway(t *testing.T, shards []GatewayShard, cfg GatewayConfig) (*Gateway, string) {
	t.Helper()
	g, err := NewGateway(shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go g.Serve(ln) //nolint:errcheck
	t.Cleanup(g.Close)
	return g, ln.Addr().String()
}

func TestGatewayShardRingIsDeterministicAndSpread(t *testing.T) {
	shards := []GatewayShard{
		{Name: "shard-0", Addrs: []string{"127.0.0.1:1"}},
		{Name: "shard-1", Addrs: []string{"127.0.0.1:2"}},
	}
	g1, err := NewGateway(shards, GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGateway(shards, GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		id := "chip-" + string(rune('a'+i%26)) + "-" + time.Duration(i).String()
		a, b := g1.ShardFor(id), g2.ShardFor(id)
		if a.Name != b.Name {
			t.Fatalf("chip %q routed to %s and %s by identical rings", id, a.Name, b.Name)
		}
		counts[a.Name]++
	}
	for _, s := range shards {
		if counts[s.Name] < 40 {
			t.Fatalf("shard %s owns only %d/400 chips — ring badly skewed: %v", s.Name, counts[s.Name], counts)
		}
	}
}

func TestGatewayRoutesAndReroutesOnFailover(t *testing.T) {
	chip := silicon.NewChip(rng.New(1), silicon.DefaultParams(), 4)
	cfg := core.DefaultEnrollConfig()
	cfg.TrainingSize = 2000
	cfg.ValidationSize = 5000
	enr, err := core.EnrollChip(chip, rng.New(2), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Two independent verifiers holding the same enrollment, as primary and
	// promoted-follower would after failover.
	start := func() (*Server, net.Listener) {
		srv := NewServer(5, 3)
		if err := srv.Register("chip-A", enr.Model); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln) //nolint:errcheck
		return srv, ln
	}
	srv1, ln1 := start()
	srv2, ln2 := start()
	defer srv2.Close()

	_, gwAddr := startGateway(t, []GatewayShard{
		{Name: "shard-0", Addrs: []string{ln1.Addr().String(), ln2.Addr().String()}},
	}, GatewayConfig{Cooldown: 200 * time.Millisecond})

	res, err := Authenticate(gwAddr, "chip-A", chip, silicon.Nominal, 10*time.Second)
	if err != nil || !res.Approved {
		t.Fatalf("auth via gateway: %+v, %v", res, err)
	}
	if got := srv1.ChipStatus("chip-A").Issued; got == 0 {
		t.Fatal("primary replica served no challenges — routed to the wrong backend")
	}

	// Primary replica dies; the same device address must keep working.
	srv1.Close()
	res, err = Authenticate(gwAddr, "chip-A", chip, silicon.Nominal, 10*time.Second)
	if err != nil || !res.Approved {
		t.Fatalf("auth after failover: %+v, %v", res, err)
	}
	if got := srv2.ChipStatus("chip-A").Issued; got == 0 {
		t.Fatal("failover replica served no challenges — re-route did not happen")
	}
}

func TestGatewayRefusalsAreStructured(t *testing.T) {
	// A shard whose every replica is unreachable: sessions get a retryable
	// busy error, so devices back off and retry into the failover window.
	_, gwAddr := startGateway(t, []GatewayShard{
		{Name: "shard-0", Addrs: []string{"127.0.0.1:1"}},
	}, GatewayConfig{DialTimeout: 200 * time.Millisecond})

	chip := silicon.NewChip(rng.New(1), silicon.DefaultParams(), 2)
	_, err := Authenticate(gwAddr, "chip-A", chip, silicon.Nominal, 5*time.Second)
	var perr *ProtocolError
	if !errors.As(err, &perr) || perr.Code != CodeBusy || !perr.Retryable {
		t.Fatalf("unroutable session error = %v, want retryable %s", err, CodeBusy)
	}

	// A session that does not open with a hello is refused outright.
	conn, err := net.Dial("tcp", gwAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{\"type\":\"challenges\"}\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var m message
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("refusal frame not JSON: %v", err)
	}
	if m.Type != "error" || m.Code != CodeBadMessage {
		t.Fatalf("refusal frame %+v, want %s", m, CodeBadMessage)
	}
}

func TestGatewayFollowsMovedRedirect(t *testing.T) {
	chip := silicon.NewChip(rng.New(1), silicon.DefaultParams(), 4)
	cfg := core.DefaultEnrollConfig()
	cfg.TrainingSize = 2000
	cfg.ValidationSize = 5000
	enr, err := core.EnrollChip(chip, rng.New(2), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Source registry enrolls the chip, then its range migrates away: the
	// target installs the snapshot and cuts over, the source journals the
	// departure with a redirect to the target's auth listener.
	srcReg, err := registry.Open("", registry.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dstReg, err := registry.Open("", registry.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := srcReg.Register("chip-A", enr.Model, 0); err != nil {
		t.Fatal(err)
	}
	snap, _, _, err := srcReg.RangeSnapshot("chip-A", "chip-B")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dstReg.InstallMigrating("m1", "chip-A", "chip-B", snap); err != nil {
		t.Fatal(err)
	}
	if _, err := dstReg.CutoverTarget("m1", 1); err != nil {
		t.Fatal(err)
	}

	srv2 := NewServerWithRegistry(5, 3, dstReg)
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2) //nolint:errcheck
	defer srv2.Close()
	if err := srcReg.CutoverSource("m1", 1, "chip-A", "chip-B", ln2.Addr().String()); err != nil {
		t.Fatal(err)
	}
	srv1 := NewServerWithRegistry(5, 3, srcReg)
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv1.Serve(ln1) //nolint:errcheck
	defer srv1.Close()

	// A direct dial at the resurrected source gets the structured moved
	// error carrying the redirect — never an issuance.
	_, err = Authenticate(ln1.Addr().String(), "chip-A", chip, silicon.Nominal, 5*time.Second)
	var perr *ProtocolError
	if !errors.As(err, &perr) || perr.Code != CodeMoved || !perr.Retryable || perr.Redirect != ln2.Addr().String() {
		t.Fatalf("direct dial at departed source = %v, want retryable %s with redirect %s", err, CodeMoved, ln2.Addr())
	}

	// The gateway still routes to the old owner, follows the redirect, and
	// the device sees a clean approval.
	before := gatewayRedirects.Value()
	_, gwAddr := startGateway(t, []GatewayShard{
		{Name: "shard-0", Addrs: []string{ln1.Addr().String()}},
	}, GatewayConfig{})
	res, err := Authenticate(gwAddr, "chip-A", chip, silicon.Nominal, 10*time.Second)
	if err != nil || !res.Approved {
		t.Fatalf("auth through redirect: %+v, %v", res, err)
	}
	if gatewayRedirects.Value() != before+1 {
		t.Fatalf("gateway followed %d redirects, want 1", gatewayRedirects.Value()-before)
	}
	if got := srv2.ChipStatus("chip-A").Issued; got == 0 {
		t.Fatal("new owner served no challenges — redirect was not followed")
	}
}

func TestGatewayOwnershipOverrides(t *testing.T) {
	g, err := NewGateway([]GatewayShard{
		{Name: "shard-0", Addrs: []string{"127.0.0.1:1"}},
	}, GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Invalid overrides are rejected up front.
	for _, bad := range [][]OwnershipOverride{
		{{Lo: "", Hi: "", Addrs: []string{"x"}}},
		{{Lo: "b", Hi: "a", Addrs: []string{"x"}}},
		{{Lo: "a", Hi: "b"}},
	} {
		if err := g.SetOwnership(1, bad); err == nil {
			t.Fatalf("SetOwnership accepted invalid override %+v", bad)
		}
	}
	if err := g.SetOwnership(2, []OwnershipOverride{
		{Lo: "chip-m", Hi: "chip-q", Addrs: []string{"10.0.0.9:1"}},
	}); err != nil {
		t.Fatal(err)
	}
	// Stale and equal epochs are refused: routing only moves forward.
	if err := g.SetOwnership(2, nil); err == nil {
		t.Fatal("SetOwnership accepted a replayed epoch")
	}
	if err := g.SetOwnership(1, nil); err == nil {
		t.Fatal("SetOwnership accepted a stale epoch")
	}
	if g.OwnershipEpoch() != 2 {
		t.Fatalf("epoch %d, want 2", g.OwnershipEpoch())
	}
	if addrs, _ := g.routeFor("chip-n"); len(addrs) != 1 || addrs[0] != "10.0.0.9:1" {
		t.Fatalf("override route = %v, want the override address", addrs)
	}
	if addrs, _ := g.routeFor("chip-z"); addrs[0] != "127.0.0.1:1" {
		t.Fatalf("out-of-range route = %v, want the ring shard", addrs)
	}
}

func TestGatewayDownMarkBackoffGrowsAndJitters(t *testing.T) {
	g, err := NewGateway([]GatewayShard{
		{Name: "shard-0", Addrs: []string{"127.0.0.1:1"}},
	}, GatewayConfig{Cooldown: 100 * time.Millisecond, MaxCooldown: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	until := func() time.Time {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.down["b"].until
	}
	var waits []time.Duration
	for i := 0; i < 6; i++ {
		g.markDown("b")
		waits = append(waits, time.Until(until()))
	}
	// Jitter is ±50%, so even the widest short backoff stays below the
	// narrowest one three doublings later; and everything respects the cap.
	if waits[0] > 150*time.Millisecond || waits[0] <= 0 {
		t.Fatalf("first backoff %v outside (0, 1.5x base]", waits[0])
	}
	if waits[4] <= waits[0] {
		t.Fatalf("backoff did not grow: first %v, fifth %v", waits[0], waits[4])
	}
	for _, w := range waits {
		if w > 1500*time.Millisecond {
			t.Fatalf("backoff %v exceeds jittered cap", w)
		}
	}
	g.markUp("b")
	if g.isDown("b") {
		t.Fatal("markUp did not clear the down state")
	}
}
