// Session gateway: the fleet-facing front door of a replicated deployment.
// Devices dial one address; the gateway peeks the session's hello frame,
// maps the chip ID onto a consistent-hash ring of registry shards, and
// splices the connection through to the shard's current owner.  Each shard
// lists its replicas in priority order (primary first); when the owner is
// unreachable the gateway marks it down for a cooldown and re-routes the
// session to the next replica — which is how traffic finds a freshly
// promoted follower after failover, with no device-side reconfiguration.
//
// The gateway stays protocol-thin on purpose: it parses exactly one frame
// (the hello, which it forwards verbatim) and never terminates the
// authentication protocol, so the end-to-end CRC and error semantics between
// device and verifier are untouched.
package netauth

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xorpuf/internal/telemetry"
)

var (
	gatewaySessions   = telemetry.Default.Counter("gateway_sessions_total")
	gatewayActive     = telemetry.Default.Gauge("gateway_active_sessions")
	gatewayReroutes   = telemetry.Default.Counter("gateway_reroutes_total")
	gatewayUnroutable = telemetry.Default.Counter("gateway_unroutable_total")
	gatewayDownMarks  = telemetry.Default.Counter("gateway_backend_down_total")
)

// GatewayShard is one registry shard: a name (the hash-ring identity) and
// its replica addresses in routing priority order — the primary first, then
// the followers that may be promoted in its place.
type GatewayShard struct {
	Name  string
	Addrs []string
}

// GatewayConfig tunes a Gateway.
type GatewayConfig struct {
	// VirtualNodes is how many ring points each shard gets; more points
	// smooth the chip distribution (default 64).
	VirtualNodes int
	// DialTimeout bounds one backend dial attempt (default 2s).
	DialTimeout time.Duration
	// Cooldown is how long a backend that failed a dial is skipped before
	// it is probed again (default 3s).
	Cooldown time.Duration
	// HelloTimeout bounds the wait for the session's hello frame
	// (default 5s).
	HelloTimeout time.Duration
}

func (c GatewayConfig) normalized() GatewayConfig {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3 * time.Second
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 5 * time.Second
	}
	return c
}

type ringPoint struct {
	hash  uint64
	shard int
}

// Gateway routes authentication sessions to registry shard owners.
type Gateway struct {
	shards []GatewayShard
	ring   []ringPoint
	cfg    GatewayConfig

	mu     sync.Mutex
	down   map[string]time.Time
	ln     net.Listener
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewGateway builds a gateway over the given shards.
func NewGateway(shards []GatewayShard, cfg GatewayConfig) (*Gateway, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("netauth: gateway needs at least one shard")
	}
	g := &Gateway{shards: shards, cfg: cfg.normalized(), down: make(map[string]time.Time)}
	for i, s := range shards {
		if s.Name == "" || len(s.Addrs) == 0 {
			return nil, fmt.Errorf("netauth: gateway shard %d needs a name and at least one address", i)
		}
		for v := 0; v < g.cfg.VirtualNodes; v++ {
			g.ring = append(g.ring, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", s.Name, v)), shard: i})
		}
	}
	sort.Slice(g.ring, func(a, b int) bool { return g.ring[a].hash < g.ring[b].hash })
	return g, nil
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck
	return h.Sum64()
}

// ShardFor returns the shard that owns chipID.
func (g *Gateway) ShardFor(chipID string) GatewayShard {
	h := ringHash(chipID)
	i := sort.Search(len(g.ring), func(i int) bool { return g.ring[i].hash >= h })
	if i == len(g.ring) {
		i = 0
	}
	return g.shards[g.ring[i].shard]
}

// Serve accepts device connections on ln until Close.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	g.ln = ln
	g.mu.Unlock()
	if g.closed.Load() {
		ln.Close()
		return fmt.Errorf("netauth: gateway closed")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if g.closed.Load() {
				return nil
			}
			var ne net.Error
			if ok := asNetError(err, &ne); ok && ne.Timeout() {
				continue
			}
			return err
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.handle(conn)
		}()
	}
}

func asNetError(err error, target *net.Error) bool {
	ne, ok := err.(net.Error)
	if ok {
		*target = ne
	}
	return ok
}

// Close stops accepting and waits for in-flight sessions to unwind (each is
// bounded by the backend's own session deadlines).
func (g *Gateway) Close() {
	if g.closed.Swap(true) {
		return
	}
	g.mu.Lock()
	ln := g.ln
	g.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	g.wg.Wait()
}

// handle routes one session: peek the hello, pick the shard owner, splice.
func (g *Gateway) handle(client net.Conn) {
	defer client.Close()
	gatewaySessions.Inc()
	gatewayActive.Inc()
	defer gatewayActive.Dec()

	br := bufio.NewReader(client)
	client.SetReadDeadline(time.Now().Add(g.cfg.HelloTimeout))
	line, err := readLine(br)
	if err != nil {
		return
	}
	client.SetReadDeadline(time.Time{})
	hello, err := decodeFrame(line)
	if err != nil || hello.Type != "hello" || hello.ChipID == "" {
		g.refuse(client, CodeBadMessage, "gateway: first frame must be a hello", false)
		return
	}

	shard := g.ShardFor(hello.ChipID)
	backend := g.dialShard(shard)
	if backend == nil {
		gatewayUnroutable.Inc()
		g.refuse(client, CodeBusy, fmt.Sprintf("gateway: no reachable owner for shard %s", shard.Name), true)
		return
	}
	defer backend.Close()
	if _, err := backend.Write(line); err != nil {
		g.refuse(client, CodeBusy, "gateway: shard owner dropped the session", true)
		return
	}

	// Bidirectional splice.  When either side finishes, both close; the
	// surviving copy then unblocks and the session ends.
	done := make(chan struct{}, 2)
	go func() {
		buf := make([]byte, 32<<10)
		copyConn(backend, br, buf) // br first: it may hold bytes past the hello
		done <- struct{}{}
	}()
	go func() {
		buf := make([]byte, 32<<10)
		copyConn(client, backend, buf)
		done <- struct{}{}
	}()
	<-done
	client.Close()
	backend.Close()
	<-done
}

type reader interface{ Read([]byte) (int, error) }

func copyConn(dst net.Conn, src reader, buf []byte) {
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// dialShard tries the shard's replicas in priority order, skipping backends
// inside their down cooldown (unless every replica is marked down, in which
// case all are probed).  A successful later-replica dial is a re-route.
func (g *Gateway) dialShard(shard GatewayShard) net.Conn {
	for pass := 0; pass < 2; pass++ {
		for i, addr := range shard.Addrs {
			if pass == 0 && g.isDown(addr) {
				continue
			}
			conn, err := net.DialTimeout("tcp", addr, g.cfg.DialTimeout)
			if err != nil {
				g.markDown(addr)
				continue
			}
			g.markUp(addr)
			if i > 0 {
				gatewayReroutes.Inc()
			}
			return conn
		}
		// Second pass only if the first skipped someone.
		if !g.anyDown(shard.Addrs) {
			break
		}
	}
	return nil
}

func (g *Gateway) isDown(addr string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	at, ok := g.down[addr]
	return ok && time.Since(at) < g.cfg.Cooldown
}

func (g *Gateway) anyDown(addrs []string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, a := range addrs {
		if at, ok := g.down[a]; ok && time.Since(at) < g.cfg.Cooldown {
			return true
		}
	}
	return false
}

func (g *Gateway) markDown(addr string) {
	g.mu.Lock()
	_, was := g.down[addr]
	g.down[addr] = time.Now()
	g.mu.Unlock()
	if !was {
		gatewayDownMarks.Inc()
	}
}

func (g *Gateway) markUp(addr string) {
	g.mu.Lock()
	delete(g.down, addr)
	g.mu.Unlock()
}

// refuse sends one structured error frame and closes.
func (g *Gateway) refuse(conn net.Conn, code, msg string, retryable bool) {
	frame, err := encodeFrame(message{Type: "error", Code: code, Message: msg, Retryable: retryable})
	if err != nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(g.cfg.HelloTimeout))
	conn.Write(frame) //nolint:errcheck
}
