// Session gateway: the fleet-facing front door of a replicated deployment.
// Devices dial one address; the gateway peeks the session's hello frame,
// maps the chip ID onto a consistent-hash ring of registry shards, and
// splices the connection through to the shard's current owner.  Each shard
// lists its replicas in priority order (primary first); when the owner is
// unreachable the gateway marks it down for a cooldown and re-routes the
// session to the next replica — which is how traffic finds a freshly
// promoted follower after failover, with no device-side reconfiguration.
//
// The gateway stays protocol-thin on purpose: it parses exactly one frame
// (the hello or keyex_init) and never terminates the authentication
// protocol, so the end-to-end CRC and error semantics between device and
// verifier are untouched.  The one extra frame it reads is the backend's
// first reply: a "moved" error there means the chip's range was rebalanced
// to another shard, and the gateway follows the redirect within a
// per-session budget instead of bouncing the device.
//
// The single change the gateway makes to the opening frame is the
// distributed-trace context: it adopts the device's context when the hello
// carries a usable one, mints a fresh trace otherwise, and re-encodes the
// frame with its own "gateway.session" span as the parent — so every
// backend span of the session nests under the gateway's, and one
// `puflab trace show` renders the whole gateway → shard → quorum tree.
// Everything after the opening frame is spliced verbatim.
//
// Both wire protocols route through the same code: the first byte of the
// opening frame says which one the device speaks (0xF2 is the v2 magic and
// can never begin v1 JSON), the chip ID is lifted from either encoding,
// and refusals go back in the format the device used — so a v2 device
// never mistakes a gateway "busy" for a v1-only downgrade signal.
package netauth

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xorpuf/internal/telemetry"
	"xorpuf/internal/telemetry/dtrace"
	"xorpuf/internal/wire"
)

var (
	gatewaySessions   = telemetry.Default.Counter("gateway_sessions_total")
	gatewaySessionsV2 = telemetry.Default.Counter("gateway_sessions_v2_total")
	gatewayActive     = telemetry.Default.Gauge("gateway_active_sessions")
	gatewayReroutes   = telemetry.Default.Counter("gateway_reroutes_total")
	gatewayUnroutable = telemetry.Default.Counter("gateway_unroutable_total")
	gatewayDownMarks  = telemetry.Default.Counter("gateway_backend_down_total")
	gatewayRedirects  = telemetry.Default.Counter("gateway_redirects_total")
	gatewayStaleSwaps = telemetry.Default.Counter("gateway_stale_ownership_total")
)

// GatewayShard is one registry shard: a name (the hash-ring identity) and
// its replica addresses in routing priority order — the primary first, then
// the followers that may be promoted in its place.
type GatewayShard struct {
	Name  string
	Addrs []string
}

// GatewayConfig tunes a Gateway.
type GatewayConfig struct {
	// VirtualNodes is how many ring points each shard gets; more points
	// smooth the chip distribution (default 64).
	VirtualNodes int
	// DialTimeout bounds one backend dial attempt (default 2s).
	DialTimeout time.Duration
	// Cooldown is the base backoff for a backend that failed a dial; each
	// consecutive failure doubles it (with ±50% jitter so a fleet of
	// gateways doesn't re-probe a recovering backend in lockstep) up to
	// MaxCooldown (default 500ms).
	Cooldown time.Duration
	// MaxCooldown caps the down-mark backoff (default 15s).
	MaxCooldown time.Duration
	// HelloTimeout bounds the wait for the session's hello frame
	// (default 5s).
	HelloTimeout time.Duration
	// RedirectBudget caps how many "moved" redirects one session follows
	// before the error is handed to the device (default 3).  A budget stops
	// a misconfigured shard pair that redirects in a cycle from pinning
	// gateway goroutines forever.
	RedirectBudget int
}

func (c GatewayConfig) normalized() GatewayConfig {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 15 * time.Second
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 5 * time.Second
	}
	if c.RedirectBudget <= 0 {
		c.RedirectBudget = 3
	}
	return c
}

type ringPoint struct {
	hash  uint64
	shard int
}

// OwnershipOverride routes a contiguous chip-ID range [Lo, Hi) — compared
// lexicographically, Hi == "" meaning unbounded — to explicit addresses,
// bypassing the hash ring.  This is how a completed rebalance becomes
// routing truth: the operator (or the migration driver) swaps in a table
// whose epoch matches the cutover records on both shards.
type OwnershipOverride struct {
	Lo    string   `json:"lo"`
	Hi    string   `json:"hi"`
	Addrs []string `json:"addrs"`
}

// ownershipTable is the atomically swapped routing override set.
type ownershipTable struct {
	epoch     uint64
	overrides []OwnershipOverride
}

// downState is one backend's failure streak and jittered probe-again time.
type downState struct {
	fails int
	until time.Time
}

// Gateway routes authentication sessions to registry shard owners.
type Gateway struct {
	shards []GatewayShard
	ring   []ringPoint
	cfg    GatewayConfig
	own    atomic.Pointer[ownershipTable]

	mu     sync.Mutex
	down   map[string]downState
	rng    *rand.Rand
	ln     net.Listener
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewGateway builds a gateway over the given shards.
func NewGateway(shards []GatewayShard, cfg GatewayConfig) (*Gateway, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("netauth: gateway needs at least one shard")
	}
	g := &Gateway{shards: shards, cfg: cfg.normalized(), down: make(map[string]downState),
		rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
	for i, s := range shards {
		if s.Name == "" || len(s.Addrs) == 0 {
			return nil, fmt.Errorf("netauth: gateway shard %d needs a name and at least one address", i)
		}
		for v := 0; v < g.cfg.VirtualNodes; v++ {
			g.ring = append(g.ring, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", s.Name, v)), shard: i})
		}
	}
	sort.Slice(g.ring, func(a, b int) bool { return g.ring[a].hash < g.ring[b].hash })
	return g, nil
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck
	return h.Sum64()
}

// ShardFor returns the shard that owns chipID on the hash ring (ownership
// overrides are applied on top by routeFor).
func (g *Gateway) ShardFor(chipID string) GatewayShard {
	h := ringHash(chipID)
	i := sort.Search(len(g.ring), func(i int) bool { return g.ring[i].hash >= h })
	if i == len(g.ring) {
		i = 0
	}
	return g.shards[g.ring[i].shard]
}

// SetOwnership atomically swaps the routing-override table.  The epoch must
// strictly advance: a stale swap — a replayed or out-of-order update from an
// older migration — is rejected so routing can only move forward through the
// same epoch sequence the shards' cutover records journaled.  Epoch 0 with
// no overrides resets an unused gateway.
func (g *Gateway) SetOwnership(epoch uint64, overrides []OwnershipOverride) error {
	for i, o := range overrides {
		if o.Lo == "" && o.Hi == "" {
			return fmt.Errorf("netauth: ownership override %d covers the full keyspace", i)
		}
		if o.Hi != "" && o.Lo >= o.Hi {
			return fmt.Errorf("netauth: ownership override %d has empty range [%q,%q)", i, o.Lo, o.Hi)
		}
		if len(o.Addrs) == 0 {
			return fmt.Errorf("netauth: ownership override %d has no addresses", i)
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if cur := g.own.Load(); cur != nil && epoch <= cur.epoch {
		gatewayStaleSwaps.Inc()
		return fmt.Errorf("netauth: stale ownership epoch %d (current %d)", epoch, cur.epoch)
	}
	cp := make([]OwnershipOverride, len(overrides))
	copy(cp, overrides)
	g.own.Store(&ownershipTable{epoch: epoch, overrides: cp})
	return nil
}

// OwnershipEpoch returns the current override table's epoch (0 when none).
func (g *Gateway) OwnershipEpoch() uint64 {
	if t := g.own.Load(); t != nil {
		return t.epoch
	}
	return 0
}

// routeFor resolves chipID to candidate addresses: the first matching
// ownership override wins, otherwise the hash-ring shard's replica list.
func (g *Gateway) routeFor(chipID string) (addrs []string, label string) {
	if t := g.own.Load(); t != nil {
		for _, o := range t.overrides {
			if chipID >= o.Lo && (o.Hi == "" || chipID < o.Hi) {
				return o.Addrs, fmt.Sprintf("override[%q,%q)", o.Lo, o.Hi)
			}
		}
	}
	s := g.ShardFor(chipID)
	return s.Addrs, s.Name
}

// Serve accepts device connections on ln until Close.
func (g *Gateway) Serve(ln net.Listener) error {
	g.mu.Lock()
	g.ln = ln
	g.mu.Unlock()
	if g.closed.Load() {
		ln.Close()
		return fmt.Errorf("netauth: gateway closed")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if g.closed.Load() {
				return nil
			}
			var ne net.Error
			if ok := asNetError(err, &ne); ok && ne.Timeout() {
				continue
			}
			return err
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.handle(conn)
		}()
	}
}

func asNetError(err error, target *net.Error) bool {
	ne, ok := err.(net.Error)
	if ok {
		*target = ne
	}
	return ok
}

// Close stops accepting and waits for in-flight sessions to unwind (each is
// bounded by the backend's own session deadlines).
func (g *Gateway) Close() {
	if g.closed.Swap(true) {
		return
	}
	g.mu.Lock()
	ln := g.ln
	g.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	g.wg.Wait()
}

// handle routes one session: peek the hello, pick the shard owner, splice.
func (g *Gateway) handle(client net.Conn) {
	defer client.Close()
	gatewaySessions.Inc()
	gatewayActive.Inc()
	defer gatewayActive.Dec()

	br := bufio.NewReader(client)
	client.SetReadDeadline(time.Now().Add(g.cfg.HelloTimeout))
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	v2 := first[0] == wire.Magic
	line, chipID, span, ok := g.readOpening(client, br, v2)
	if !ok {
		return
	}
	client.SetReadDeadline(time.Time{})
	if v2 {
		gatewaySessionsV2.Inc()
	}
	span.SetAttr("chip", chipID)
	defer span.End()

	// Route, forward the opening frame, and peek the backend's first reply:
	// a "moved" error there is a rebalanced range whose redirect the gateway
	// follows (within budget) so the device never sees the topology change.
	// Each attempt gets its own hop span, so redirects and re-routes show up
	// as sibling hops under the gateway session.
	addrs, label := g.routeFor(chipID)
	budget := g.cfg.RedirectBudget
	var backend net.Conn
	var bbr *bufio.Reader
	var firstReply []byte
	for {
		hop := dtrace.Default.StartSpan(span.Context(), "gateway.hop")
		backend = g.dialAddrs(addrs)
		if backend == nil {
			gatewayUnroutable.Inc()
			hop.SetStatus("error:unroutable")
			hop.End()
			span.SetStatus("refused:" + CodeBusy)
			g.refuse(client, v2, CodeBusy, fmt.Sprintf("gateway: no reachable owner for %s", label), true)
			return
		}
		hop.SetAttr("backend", backend.RemoteAddr().String())
		if _, err := backend.Write(line); err != nil {
			backend.Close()
			hop.SetStatus("error:write")
			hop.End()
			span.SetStatus("refused:" + CodeBusy)
			g.refuse(client, v2, CodeBusy, "gateway: shard owner dropped the session", true)
			return
		}
		bbr = bufio.NewReader(backend)
		backend.SetReadDeadline(time.Now().Add(g.cfg.HelloTimeout))
		reply, moved, redirect, err := g.readReply(bbr, v2)
		if err != nil {
			backend.Close()
			hop.SetStatus("error:read")
			hop.End()
			span.SetStatus("refused:" + CodeBusy)
			g.refuse(client, v2, CodeBusy, "gateway: shard owner dropped the session", true)
			return
		}
		backend.SetReadDeadline(time.Time{})
		if moved && redirect != "" && budget > 0 {
			budget--
			backend.Close()
			gatewayRedirects.Inc()
			hop.SetStatus("redirect")
			hop.SetAttr("redirect", redirect)
			hop.End()
			addrs, label = []string{redirect}, "redirect "+redirect
			continue
		}
		hop.SetStatus("ok")
		hop.End()
		firstReply = reply
		break
	}
	span.SetStatus("ok")
	defer backend.Close()
	if _, err := client.Write(firstReply); err != nil {
		return
	}

	// Bidirectional splice.  When either side finishes, both close; the
	// surviving copy then unblocks and the session ends.
	done := make(chan struct{}, 2)
	go func() {
		buf := make([]byte, 32<<10)
		copyConn(backend, br, buf) // br first: it may hold bytes past the hello
		done <- struct{}{}
	}()
	go func() {
		buf := make([]byte, 32<<10)
		copyConn(client, bbr, buf) // bbr: it may hold bytes past the first reply
		done <- struct{}{}
	}()
	<-done
	client.Close()
	backend.Close()
	<-done
}

// readOpening reads the device's opening frame in whichever protocol the
// first byte announced, returning the bytes to forward (for v2, including
// the negotiation guard byte, which each fresh backend also expects), the
// chip ID to route on, and the session's gateway span.
//
// Trace mint-or-adopt: a device hello carrying a parseable trace context
// makes the gateway span a child of the device's; anything else — absent,
// malformed, oversized — mints a fresh root trace.  Either way the frame is
// re-encoded with the gateway span's context, so downstream spans nest
// under it.
func (g *Gateway) readOpening(client net.Conn, br *bufio.Reader, v2 bool) (line []byte, chipID string, span *dtrace.Span, ok bool) {
	if v2 {
		raw, err := wire.ReadRawFrame(br)
		if err != nil {
			g.refuse(client, true, CodeBadMessage, "gateway: bad v2 opening frame", false)
			return nil, "", nil, false
		}
		var m wire.Msg
		if err := wire.Decode(raw, &m); err != nil ||
			(m.Type != wire.THello && m.Type != wire.TKeyexInit) || m.ChipID == "" {
			g.refuse(client, true, CodeBadMessage, "gateway: first frame must be a hello or keyex_init", false)
			return nil, "", nil, false
		}
		span = g.sessionSpan(m.Trace)
		m.Trace = span.Context().String()
		raw = wire.AppendFrame(raw[:0], &m)
		// Forward the negotiation guard byte when it arrived with the
		// frame.  Only already-buffered bytes are examined — a straggling
		// guard reaches the backend through the splice, and both backend
		// protocols tolerate it there (v2 skips it, v1 line-reads it).
		if br.Buffered() > 0 {
			if b, err := br.Peek(1); err == nil && b[0] == wire.Guard {
				br.Discard(1) //nolint:errcheck
				raw = append(raw, wire.Guard)
			}
		}
		return raw, m.ChipID, span, true
	}
	raw, err := readLine(br)
	if err != nil {
		return nil, "", nil, false
	}
	hello, err := decodeFrame(raw)
	if err != nil || (hello.Type != "hello" && hello.Type != "keyex_init") || hello.ChipID == "" {
		g.refuse(client, false, CodeBadMessage, "gateway: first frame must be a hello or keyex_init", false)
		return nil, "", nil, false
	}
	span = g.sessionSpan(hello.Trace)
	hello.Trace = span.Context().String()
	framed, err := encodeFrame(*hello)
	if err != nil {
		return nil, "", nil, false
	}
	return framed, hello.ChipID, span, true
}

// sessionSpan starts the "gateway.session" span: a child of the device's
// context when deviceTrace parses, a fresh root trace otherwise.
func (g *Gateway) sessionSpan(deviceTrace string) *dtrace.Span {
	if tc, adopted := dtrace.ParseContext(deviceTrace); adopted {
		return dtrace.Default.StartSpan(tc, "gateway.session")
	}
	return dtrace.Default.StartRoot("gateway.session")
}

// readReply reads the backend's first reply in the session's protocol and
// reports whether it is a follow-able "moved" redirect.
func (g *Gateway) readReply(bbr *bufio.Reader, v2 bool) (reply []byte, moved bool, redirect string, err error) {
	if v2 {
		raw, err := wire.ReadRawFrame(bbr)
		if err != nil {
			return nil, false, "", err
		}
		var m wire.Msg
		if derr := wire.Decode(raw, &m); derr == nil &&
			m.Type == wire.TError && codeFromByte(m.Code) == CodeMoved {
			return raw, true, m.Redirect, nil
		}
		return raw, false, "", nil
	}
	raw, err := readLine(bbr)
	if err != nil {
		return nil, false, "", err
	}
	if m, derr := decodeFrame(raw); derr == nil && m.Type == "error" && m.Code == CodeMoved {
		return raw, true, m.Redirect, nil
	}
	return raw, false, "", nil
}

type reader interface{ Read([]byte) (int, error) }

func copyConn(dst net.Conn, src reader, buf []byte) {
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// dialAddrs tries candidate addresses in priority order, skipping backends
// inside their down backoff (unless every candidate is marked down, in which
// case all are probed).  A successful later-candidate dial is a re-route.
func (g *Gateway) dialAddrs(addrs []string) net.Conn {
	for pass := 0; pass < 2; pass++ {
		for i, addr := range addrs {
			if pass == 0 && g.isDown(addr) {
				continue
			}
			conn, err := net.DialTimeout("tcp", addr, g.cfg.DialTimeout)
			if err != nil {
				g.markDown(addr)
				continue
			}
			g.markUp(addr)
			if i > 0 {
				gatewayReroutes.Inc()
			}
			return conn
		}
		// Second pass only if the first skipped someone.
		if !g.anyDown(addrs) {
			break
		}
	}
	return nil
}

func (g *Gateway) isDown(addr string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	st, ok := g.down[addr]
	return ok && time.Now().Before(st.until)
}

func (g *Gateway) anyDown(addrs []string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := time.Now()
	for _, a := range addrs {
		if st, ok := g.down[a]; ok && now.Before(st.until) {
			return true
		}
	}
	return false
}

// markDown records a dial failure: the backoff doubles with each consecutive
// failure up to MaxCooldown, jittered into [0.5x, 1.5x) so a fleet of
// gateways spreads its re-probes of a recovering backend instead of
// stampeding it at the same instant.
func (g *Gateway) markDown(addr string) {
	g.mu.Lock()
	st := g.down[addr]
	first := st.fails == 0
	st.fails++
	backoff := g.cfg.Cooldown
	for i := 1; i < st.fails && backoff < g.cfg.MaxCooldown; i++ {
		backoff *= 2
	}
	if backoff > g.cfg.MaxCooldown {
		backoff = g.cfg.MaxCooldown
	}
	jittered := time.Duration(float64(backoff) * (0.5 + g.rng.Float64()))
	st.until = time.Now().Add(jittered)
	g.down[addr] = st
	g.mu.Unlock()
	if first {
		gatewayDownMarks.Inc()
	}
}

func (g *Gateway) markUp(addr string) {
	g.mu.Lock()
	delete(g.down, addr)
	g.mu.Unlock()
}

// refuse sends one structured error frame, in the protocol the device
// spoke, and closes.
func (g *Gateway) refuse(conn net.Conn, v2 bool, code, msg string, retryable bool) {
	var frame []byte
	if v2 {
		frame = wire.AppendFrame(nil, &wire.Msg{
			Type: wire.TError, Code: codeToByte(code), ErrMsg: msg, Retryable: retryable,
		})
	} else {
		var err error
		frame, err = encodeFrame(message{Type: "error", Code: code, Message: msg, Retryable: retryable})
		if err != nil {
			return
		}
	}
	conn.SetWriteDeadline(time.Now().Add(g.cfg.HelloTimeout))
	conn.Write(frame) //nolint:errcheck
}
