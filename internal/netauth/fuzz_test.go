package netauth

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeFrame drives the wire-frame decoder with adversarial bytes.
// Whatever arrives off the network, decodeFrame must return a message or an
// error — never panic — and anything it accepts must re-encode.
func FuzzDecodeFrame(f *testing.F) {
	if b, err := encodeFrame(message{Type: "hello", ChipID: "chip-0"}); err == nil {
		f.Add(b)
	}
	if b, err := encodeFrame(message{Type: "challenges", Session: "abc",
		Challenges: []string{"0101", "1100"}}); err == nil {
		f.Add(b)
	}
	if b, err := encodeFrame(message{Type: "verdict", Approved: true}); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"type":"hello","chip_id":"x","crc":12345}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeFrame(data)
		if err != nil {
			return
		}
		if _, err := encodeFrame(*m); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
	})
}

// FuzzReadMessage layers the line reader on top of the frame decoder: split
// or multi-line adversarial streams must produce errors, not panics or
// unbounded reads.
func FuzzReadMessage(f *testing.F) {
	f.Add([]byte("{\"type\":\"hello\"}\n"))
	f.Add([]byte("garbage\n{\"type\":\"hello\"}\n"))
	f.Add([]byte(strings.Repeat("a", 4096)))
	f.Add([]byte("\n\n\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			if _, _, err := readMessage(r, "hello"); err != nil {
				return
			}
		}
	})
}
