package netauth

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeFrame drives the wire-frame decoder with adversarial bytes.
// Whatever arrives off the network, decodeFrame must return a message or an
// error — never panic — and anything it accepts must re-encode.
func FuzzDecodeFrame(f *testing.F) {
	if b, err := encodeFrame(message{Type: "hello", ChipID: "chip-0"}); err == nil {
		f.Add(b)
	}
	if b, err := encodeFrame(message{Type: "challenges", Session: "abc",
		Challenges: []string{"0101", "1100"}}); err == nil {
		f.Add(b)
	}
	if b, err := encodeFrame(message{Type: "verdict", Approved: true}); err == nil {
		f.Add(b)
	}
	if b, err := encodeFrame(message{Type: "keyex_init", ChipID: "chip-0",
		Caps: []string{"chacha20poly1305"}}); err == nil {
		f.Add(b)
	}
	if b, err := encodeFrame(message{Type: "keyex_offer", Session: "abc",
		Challenges: []string{"0101"}, Helper: "1100", BchM: 7, BchT: 8,
		Cipher: "chacha20poly1305"}); err == nil {
		f.Add(b)
	}
	if b, err := encodeFrame(message{Type: "keyex_confirm", Session: "abc",
		MAC: "00ff"}); err == nil {
		f.Add(b)
	}
	if b, err := encodeFrame(message{Type: "payload", Payload: "aGVsbG8=",
		Digest: "deadbeef"}); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"type":"hello","chip_id":"x","crc":12345}`))
	f.Add([]byte(`{"type":"keyex_offer","bch_m":-1,"bch_t":99999,"helper":"012"}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeFrame(data)
		if err != nil {
			return
		}
		if _, err := encodeFrame(*m); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
	})
}

// FuzzReadMessage layers the line reader on top of the frame decoder: split
// or multi-line adversarial streams must produce errors, not panics or
// unbounded reads.
func FuzzReadMessage(f *testing.F) {
	f.Add([]byte("{\"type\":\"hello\"}\n"))
	f.Add([]byte("garbage\n{\"type\":\"hello\"}\n"))
	f.Add([]byte(strings.Repeat("a", 4096)))
	f.Add([]byte("\n\n\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			if _, _, err := readMessage(r, "hello"); err != nil {
				return
			}
		}
	})
}

// FuzzReadMessageAny drives the server's first-frame dispatch path: any
// byte stream must resolve to a hello, a keyex_init, or an error — and a
// message accepted here must carry the type it was dispatched as.
func FuzzReadMessageAny(f *testing.F) {
	f.Add([]byte("{\"type\":\"hello\",\"chip_id\":\"c\"}\n"))
	f.Add([]byte("{\"type\":\"keyex_init\",\"chip_id\":\"c\",\"caps\":[\"chacha20poly1305\"]}\n"))
	f.Add([]byte("{\"type\":\"keyex_confirm\",\"mac\":\"00\"}\n"))
	f.Add([]byte("{\"type\":\"error\",\"code\":\"key_mismatch\"}\n"))
	f.Add([]byte(strings.Repeat("{", 2048)))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		m, _, err := readMessageAny(r, "hello", "keyex_init")
		if err != nil {
			return
		}
		if m.Type != "hello" && m.Type != "keyex_init" {
			t.Fatalf("dispatch accepted type %q", m.Type)
		}
	})
}
