// Device side of the key exchange over the binary wire protocol.  The
// handshake is the same reverse fuzzy-extractor exchange as v1 — the
// transcript binds the identical canonical offer strings, so both
// versions derive byte-for-byte the same session key — but the offer's
// challenges and helper data travel as packed bits, and the encrypted
// channel's inner frames stay binary for the life of the session.
package netauth

import (
	"bufio"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"time"

	"xorpuf/internal/challenge"
	"xorpuf/internal/keyex"
	"xorpuf/internal/wire"
)

// Establish dials a dedicated connection and runs the key exchange over
// binary framing.  Negotiation mirrors AuthenticateBatch: against a
// v1-only server the client redials and runs the classic JSON handshake
// (unless RequireV2 is set).  Like the v1 Establish there is no retry
// loop — every handshake burns fresh challenges.
func (c *V2Client) Establish(ctx context.Context) (*SecureSession, error) {
	c.init()
	if c.Device == nil {
		return nil, errors.New("netauth: client has no device")
	}
	if err := c.Cond.Validate(); err != nil {
		return nil, fmt.Errorf("netauth: operating condition: %w", err)
	}
	c.mu.Lock()
	fellBack := c.fellBack
	c.mu.Unlock()
	if !fellBack {
		ss, err := c.establishV2(ctx)
		if err == nil {
			return ss, nil
		}
		if !errors.Is(err, errDowngrade) {
			return nil, err
		}
		if c.RequireV2 {
			return nil, fmt.Errorf("%w and RequireV2 is set", errDowngrade)
		}
		c.mu.Lock()
		c.fellBack = true
		c.mu.Unlock()
	}
	return c.v1Keyex().Establish(ctx)
}

// v1Keyex builds (once) the fallback v1 client used after downgrade.
func (c *V2Client) v1Keyex() *Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.v1c == nil {
		c.v1c = &Client{
			Addr: c.Addr, ChipID: c.ChipID, Device: c.Device, Cond: c.Cond,
			Timeout: c.Timeout, Policy: c.Policy, DialContext: c.DialContext,
			Jitter: c.Jitter,
		}
	}
	return c.v1c
}

// establishV2 runs the binary handshake on a fresh connection.  The
// handshake is three frames; ReadRawFrame's fresh buffers keep the code
// simple — key-exchange throughput is bounded by BCH math, not allocs.
func (c *V2Client) establishV2(ctx context.Context) (*SecureSession, error) {
	dialCtx, cancel := context.WithTimeout(ctx, c.Timeout)
	defer cancel()
	conn, err := c.DialContext(dialCtx, "tcp", c.Addr)
	if err != nil {
		return nil, err
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	ss, err := c.keyexFrames(conn)
	if err != nil {
		stop()
		conn.Close()
		return nil, ctxErr(ctx, err)
	}
	ss.stop = stop
	return ss, nil
}

func (c *V2Client) keyexFrames(conn net.Conn) (*SecureSession, error) {
	br := bufio.NewReader(conn)
	init := wire.Msg{Type: wire.TKeyexInit, ChipID: c.ChipID, Caps: wire.CapChaCha20Poly1305, Trace: c.Trace}
	buf := wire.AppendFrame(nil, &init)
	buf = append(buf, wire.Guard)
	_ = conn.SetWriteDeadline(time.Now().Add(c.Timeout))
	if _, err := conn.Write(buf); err != nil {
		return nil, err
	}

	// First-reply version sniff, same discrimination as the auth path:
	// a JSON busy or moved refusal is a structured error from a v2-capable
	// front end, anything else in JSON is a v1-only server.
	_ = conn.SetReadDeadline(time.Now().Add(c.Timeout))
	first, err := br.Peek(1)
	if err != nil {
		return nil, err
	}
	if first[0] != wire.Magic {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		em, err := decodeFrame(line)
		if err != nil {
			return nil, fmt.Errorf("netauth: unintelligible negotiation reply: %w", err)
		}
		if em.Type == "error" && (em.Code == CodeBusy || em.Code == CodeMoved) {
			return nil, &ProtocolError{Code: em.Code, Message: em.Message,
				Retryable: em.Retryable, Redirect: em.Redirect}
		}
		return nil, errDowngrade
	}

	offer, err := c.readKeyexFrame(conn, br, wire.TKeyexOffer)
	if err != nil {
		return nil, err
	}
	// Downgrade check, as in v1: we offered exactly ChaCha20-Poly1305, so
	// the server must pick it.  CipherNone here means an active attacker
	// (or a misconfigured server) tried to strip the channel encryption.
	if offer.Cipher != wire.CipherChaCha20 {
		return nil, fmt.Errorf("netauth: server chose cipher %d, which this client did not offer", offer.Cipher)
	}
	cfg := keyex.Config{M: offer.M, T: offer.T}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("netauth: server offered bad code parameters: %w", err)
	}
	n := cfg.N()
	if offer.Count != n || offer.Width <= 0 {
		return nil, fmt.Errorf("netauth: offer carries %d challenges of width %d, code needs %d",
			offer.Count, offer.Width, n)
	}
	bits := wire.UnpackBits(nil, offer.Packed, n*offer.Width)
	if bits == nil {
		return nil, errors.New("netauth: offer challenge bits are truncated")
	}
	helper := wire.UnpackBits(nil, offer.Helper, n)
	if helper == nil {
		return nil, errors.New("netauth: bad helper data")
	}
	sessRaw := append([]byte(nil), offer.Session...)
	session := hex.EncodeToString(sessRaw)

	// Reconstruct the canonical offer strings: the transcript — and hence
	// the derived key — must match what a v1 exchange would have bound.
	chalStrs := make([]string, n)
	w := make([]uint8, n)
	for i := 0; i < n; i++ {
		cc := challenge.Challenge(bits[i*offer.Width : (i+1)*offer.Width])
		chalStrs[i] = cc.String()
		w[i] = c.Device.ReadXOR(cc, c.Cond)
	}
	master, corrected, err := keyex.Reproduce(cfg, w, helper)
	if err != nil {
		return nil, fmt.Errorf("netauth: key reproduction failed: %w", err)
	}
	o := keyex.Offer{
		Session:    session,
		ChipID:     c.ChipID,
		Caps:       []string{keyex.CipherChaCha20Poly1305},
		Challenges: chalStrs,
		Helper:     keyex.FormatBits(helper),
		M:          offer.M,
		T:          offer.T,
		Cipher:     keyex.CipherChaCha20Poly1305,
	}
	transcript := keyex.Transcript(o)
	keys := keyex.DeriveSession(master, transcript)
	keyex.Zeroize(master[:])

	devMAC := keyex.ConfirmMAC(keys, keyex.RoleDevice, transcript)
	confirm := wire.Msg{Type: wire.TKeyexConfirm, Session: sessRaw, MAC: devMAC[:]}
	buf = wire.AppendFrame(buf[:0], &confirm)
	_ = conn.SetWriteDeadline(time.Now().Add(c.Timeout))
	if _, err := conn.Write(buf); err != nil {
		return nil, err
	}
	accept, err := c.readKeyexFrame(conn, br, wire.TKeyexAccept)
	if err != nil {
		return nil, err // includes the structured key_mismatch denial
	}
	if !keyex.VerifyConfirm(keys, keyex.RoleServer, transcript, accept.MAC) {
		return nil, errors.New("netauth: server failed key confirmation")
	}

	ss := &SecureSession{
		Result: KeyexResult{
			Session:    session,
			Challenges: n,
			Corrected:  corrected,
			Cipher:     keyex.CipherChaCha20Poly1305,
		},
		c:    &Client{ChipID: c.ChipID, Device: c.Device, Cond: c.Cond, Timeout: c.Timeout},
		conn: conn,
		bin:  true,
		ch:   keyex.NewChannel(readWriter{br, conn}, keys, transcript, true),
	}
	return ss, nil
}

// readKeyexFrame reads one handshake frame, surfacing server refusals as
// structured ProtocolErrors.
func (c *V2Client) readKeyexFrame(conn net.Conn, br *bufio.Reader, want byte) (*wire.Msg, error) {
	_ = conn.SetReadDeadline(time.Now().Add(c.Timeout))
	raw, err := wire.ReadRawFrame(br)
	if err != nil {
		return nil, err
	}
	var m wire.Msg
	if err := wire.Decode(raw, &m); err != nil {
		return nil, err
	}
	if m.Type == wire.TError {
		return nil, &ProtocolError{Code: codeFromByte(m.Code), Message: m.ErrMsg,
			Retryable: m.Retryable, Redirect: m.Redirect}
	}
	if m.Type != want {
		return nil, fmt.Errorf("netauth: unexpected frame type 0x%02x, want 0x%02x", m.Type, want)
	}
	return &m, nil
}
